// Package cluster tracks the scheduler-visible resource state of every
// node: which jobs hold how many cores, CAT-allocated LLC ways, and
// estimated memory bandwidth. It provides the node grouping and scoring
// primitives the SNS placement search uses (Section 4.4 of the paper).
package cluster

import (
	"fmt"

	"spreadnshare/internal/hw"
	"spreadnshare/internal/units"
)

// Alloc records one job's reservation on one node.
type Alloc struct {
	JobID int
	// Cores reserved on this node.
	Cores int
	// Ways is the CAT-partitioned LLC allocation; 0 means the job
	// runs with unmanaged cache sharing (CE/CS policies).
	Ways units.Ways
	// BW is the estimated memory-bandwidth reservation
	// (0 when the policy does not account bandwidth).
	BW units.GBps
	// MemGB is the main-memory reservation (0 = unaccounted). Unlike
	// cache and bandwidth, memory capacity is a hard per-node limit:
	// oversubscribing it means swapping, which no scheduler risks.
	MemGB float64
	// IOBW is the estimated parallel-file-system bandwidth
	// reservation (0 = unaccounted) — the third resource
	// dimension the paper's extensible algorithm accommodates.
	IOBW units.GBps
	// Exclusive marks the node as dedicated to this job.
	Exclusive bool
}

// Node is the bookkeeping state of one compute node.
//
// Allocations are kept in a job-ID-sorted slice and the integer
// aggregates (cores, ways, exclusivity) are cached incrementally, so
// the placement search's feasibility probes — called once per node per
// scale factor per scheduling pass — are O(1) field reads instead of
// map iterations. Float aggregates are summed over the sorted slice on
// demand: the reservations per node are few, and summing in job-ID
// order keeps the readings bit-reproducible across runs.
type Node struct {
	ID   int
	spec hw.NodeSpec

	allocs    []Alloc // sorted by JobID
	usedCores int
	allocWays units.Ways
	exclusive int // reservations with Exclusive set
}

// find returns the index of job id in allocs, or -1.
func (n *Node) find(id int) int {
	for i := range n.allocs {
		if n.allocs[i].JobID == id {
			return i
		}
	}
	return -1
}

// insert adds a into allocs, keeping job-ID order.
func (n *Node) insert(a Alloc) {
	i := len(n.allocs)
	for i > 0 && n.allocs[i-1].JobID > a.JobID {
		i--
	}
	n.allocs = append(n.allocs, Alloc{})
	copy(n.allocs[i+1:], n.allocs[i:])
	n.allocs[i] = a
	n.usedCores += a.Cores
	n.allocWays += a.Ways
	if a.Exclusive {
		n.exclusive++
	}
}

// removeAt deletes the i-th reservation with a shift.
func (n *Node) removeAt(i int) {
	a := n.allocs[i]
	n.usedCores -= a.Cores
	n.allocWays -= a.Ways
	if a.Exclusive {
		n.exclusive--
	}
	copy(n.allocs[i:], n.allocs[i+1:])
	n.allocs = n.allocs[:len(n.allocs)-1]
}

// UsedCores returns the number of reserved cores.
func (n *Node) UsedCores() int { return n.usedCores }

// FreeCores returns cores available for new reservations; an exclusively
// held node has none.
func (n *Node) FreeCores() int {
	if n.exclusive > 0 {
		return 0
	}
	return n.spec.Cores.Int() - n.usedCores
}

// AllocWays returns the total CAT-allocated ways.
func (n *Node) AllocWays() units.Ways { return n.allocWays }

// FreeWays returns unallocated LLC ways.
func (n *Node) FreeWays() units.Ways { return n.spec.LLCWays - n.allocWays }

// AllocMem returns the total reserved memory in GB.
func (n *Node) AllocMem() float64 {
	m := 0.0
	for i := range n.allocs {
		m += n.allocs[i].MemGB
	}
	return m
}

// FreeMem returns unreserved main memory.
func (n *Node) FreeMem() float64 { return n.spec.MemoryGB - n.AllocMem() }

// AllocBW returns the total reserved memory bandwidth.
func (n *Node) AllocBW() units.GBps {
	b := units.GBps(0)
	for i := range n.allocs {
		b += n.allocs[i].BW
	}
	return b
}

// FreeBW returns unreserved bandwidth against the node's peak.
func (n *Node) FreeBW() units.GBps { return n.spec.PeakBandwidth - n.AllocBW() }

// AllocIO returns the total reserved file-system bandwidth.
func (n *Node) AllocIO() units.GBps {
	b := units.GBps(0)
	for i := range n.allocs {
		b += n.allocs[i].IOBW
	}
	return b
}

// FreeIO returns unreserved file-system bandwidth.
func (n *Node) FreeIO() units.GBps { return n.spec.IOBandwidth - n.AllocIO() }

// Idle reports whether no job holds any resource on the node.
func (n *Node) Idle() bool { return len(n.allocs) == 0 }

// Exclusive reports whether some job holds the node exclusively.
func (n *Node) Exclusive() bool { return n.exclusive > 0 }

// Jobs returns the ids of jobs with reservations on this node, sorted.
func (n *Node) Jobs() []int {
	ids := make([]int, len(n.allocs))
	for i := range n.allocs {
		ids[i] = n.allocs[i].JobID
	}
	return ids
}

// Alloc returns job id's reservation on this node, if any.
func (n *Node) Alloc(id int) (Alloc, bool) {
	if i := n.find(id); i >= 0 {
		return n.allocs[i], true
	}
	return Alloc{}, false
}

// State is the resource bookkeeping of a whole cluster.
type State struct {
	Spec  hw.ClusterSpec
	Nodes []*Node

	// OnChange, when set, is called with every node id whose allocation
	// set changes (one call per node per Allocate/Release). The
	// scheduler wires the placement score cache's Invalidate here, so
	// every bookkeeping mutation — present and future — feeds the
	// dirty set structurally instead of relying on call-site diligence.
	OnChange func(node int)
}

// New creates an all-idle cluster.
func New(spec hw.ClusterSpec) (*State, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	s := &State{Spec: spec, Nodes: make([]*Node, spec.Nodes)}
	for i := range s.Nodes {
		s.Nodes[i] = &Node{ID: i, spec: spec.Node}
	}
	return s, nil
}

// NodeAlloc names a node and the cores and memory a job takes there.
type NodeAlloc struct {
	Node  int
	Cores int
	MemGB float64
}

// Allocate reserves resources for a job across nodes: per-node core
// counts, plus uniform ways/bandwidth/exclusivity. It validates every
// node before touching any, so a failed allocation leaves the state
// unchanged.
func (s *State) Allocate(jobID int, nodes []NodeAlloc, ways units.Ways, bw units.GBps, exclusive bool) error {
	return s.AllocateIO(jobID, nodes, ways, bw, 0, exclusive)
}

// AllocateIO is Allocate with an additional per-node file-system
// bandwidth reservation.
func (s *State) AllocateIO(jobID int, nodes []NodeAlloc, ways units.Ways, bw, ioBW units.GBps, exclusive bool) error {
	if len(nodes) == 0 {
		return fmt.Errorf("cluster: job %d: empty placement", jobID)
	}
	for k, na := range nodes {
		if na.Node < 0 || na.Node >= len(s.Nodes) {
			return fmt.Errorf("cluster: job %d: node %d out of range", jobID, na.Node)
		}
		for _, prev := range nodes[:k] {
			if prev.Node == na.Node {
				return fmt.Errorf("cluster: job %d: node %d listed twice", jobID, na.Node)
			}
		}
		n := s.Nodes[na.Node]
		if n.find(jobID) >= 0 {
			return fmt.Errorf("cluster: job %d already on node %d", jobID, na.Node)
		}
		if na.Cores <= 0 || na.Cores > n.FreeCores() {
			return fmt.Errorf("cluster: job %d: %d cores unavailable on node %d (%d free)",
				jobID, na.Cores, na.Node, n.FreeCores())
		}
		if exclusive && !n.Idle() {
			return fmt.Errorf("cluster: job %d: node %d not idle for exclusive use", jobID, na.Node)
		}
		if ways > 0 && ways > n.FreeWays() {
			return fmt.Errorf("cluster: job %d: %d ways unavailable on node %d (%d free)",
				jobID, ways, na.Node, n.FreeWays())
		}
		if bw > 0 && bw > n.FreeBW()+1e-9 {
			return fmt.Errorf("cluster: job %d: %.1f GB/s unavailable on node %d (%.1f free)",
				jobID, bw, na.Node, n.FreeBW())
		}
		if na.MemGB > 0 && na.MemGB > n.FreeMem()+1e-9 {
			return fmt.Errorf("cluster: job %d: %.1f GB memory unavailable on node %d (%.1f free)",
				jobID, na.MemGB, na.Node, n.FreeMem())
		}
		if ioBW > 0 && ioBW > n.FreeIO()+1e-9 {
			return fmt.Errorf("cluster: job %d: %.2f GB/s I/O unavailable on node %d (%.2f free)",
				jobID, ioBW, na.Node, n.FreeIO())
		}
	}
	for _, na := range nodes {
		s.Nodes[na.Node].insert(Alloc{
			JobID: jobID, Cores: na.Cores, Ways: ways, BW: bw, MemGB: na.MemGB,
			IOBW: ioBW, Exclusive: exclusive,
		})
		if s.OnChange != nil {
			s.OnChange(na.Node)
		}
	}
	return nil
}

// Release removes all of a job's reservations and returns the node ids it
// occupied.
func (s *State) Release(jobID int) []int {
	var freed []int
	for _, n := range s.Nodes {
		if i := n.find(jobID); i >= 0 {
			n.removeAt(i)
			freed = append(freed, n.ID)
			if s.OnChange != nil {
				s.OnChange(n.ID)
			}
		}
	}
	return freed
}

// IdleNodes returns the ids of completely idle nodes.
func (s *State) IdleNodes() []int {
	var ids []int
	for _, n := range s.Nodes {
		if n.Idle() {
			ids = append(ids, n.ID)
		}
	}
	return ids
}

// TotalUsedCores returns the cluster-wide reserved core count.
func (s *State) TotalUsedCores() int {
	c := 0
	for _, n := range s.Nodes {
		c += n.usedCores
	}
	return c
}
