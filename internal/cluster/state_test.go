package cluster

import (
	"math"
	"testing"
	"testing/quick"

	"spreadnshare/internal/hw"

	"spreadnshare/internal/units"
)

func newState(t *testing.T) *State {
	t.Helper()
	s, err := New(hw.DefaultClusterSpec())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return s
}

func TestNewValidates(t *testing.T) {
	if _, err := New(hw.ClusterSpec{Nodes: 0, Node: hw.DefaultNodeSpec()}); err == nil {
		t.Error("New accepted zero-node cluster")
	}
}

func TestAllocateAndRelease(t *testing.T) {
	s := newState(t)
	err := s.Allocate(1, []NodeAlloc{{Node: 0, Cores: 16}, {Node: 1, Cores: 16}}, 4, 30, false)
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	n0 := s.Nodes[0]
	if got := n0.FreeCores(); got != 12 {
		t.Errorf("FreeCores = %d, want 12", got)
	}
	if got := n0.FreeWays(); got != 16 {
		t.Errorf("FreeWays = %d, want 16", got)
	}
	if got := n0.FreeBW().Float64(); math.Abs(got-(118.26-30)) > 1e-9 {
		t.Errorf("FreeBW = %g, want %g", got, 118.26-30)
	}
	if a, ok := n0.Alloc(1); !ok || a.Cores != 16 || a.Ways != 4 {
		t.Errorf("Alloc(1) = %+v, %v", a, ok)
	}
	freed := s.Release(1)
	if len(freed) != 2 {
		t.Errorf("Release freed %v, want 2 nodes", freed)
	}
	if !n0.Idle() {
		t.Error("node 0 not idle after release")
	}
}

func TestAllocateFailuresAtomic(t *testing.T) {
	s := newState(t)
	if err := s.Allocate(1, []NodeAlloc{{Node: 0, Cores: 28}}, 0, 0, true); err != nil {
		t.Fatalf("exclusive Allocate: %v", err)
	}
	// Second allocation names one good node and one bad node: nothing
	// may be committed.
	err := s.Allocate(2, []NodeAlloc{{Node: 1, Cores: 16}, {Node: 0, Cores: 4}}, 0, 0, false)
	if err == nil {
		t.Fatal("Allocate onto exclusive node succeeded")
	}
	if !s.Nodes[1].Idle() {
		t.Error("failed Allocate left residue on node 1")
	}

	cases := []struct {
		name  string
		nodes []NodeAlloc
		ways  units.Ways
		bw    units.GBps
		excl  bool
	}{
		{"empty", nil, 0, 0, false},
		{"out of range", []NodeAlloc{{Node: 99, Cores: 4}}, 0, 0, false},
		{"duplicate node", []NodeAlloc{{Node: 1, Cores: 4}, {Node: 1, Cores: 4}}, 0, 0, false},
		{"zero cores", []NodeAlloc{{Node: 1, Cores: 0}}, 0, 0, false},
		{"too many cores", []NodeAlloc{{Node: 1, Cores: 29}}, 0, 0, false},
		{"too many ways", []NodeAlloc{{Node: 1, Cores: 4}}, 21, 0, false},
		{"too much bw", []NodeAlloc{{Node: 1, Cores: 4}}, 0, 500, false},
	}
	for _, c := range cases {
		if err := s.Allocate(3, c.nodes, c.ways, c.bw, c.excl); err == nil {
			t.Errorf("%s: Allocate succeeded, want error", c.name)
		}
	}
}

func TestExclusiveBlocksSharing(t *testing.T) {
	s := newState(t)
	if err := s.Allocate(1, []NodeAlloc{{Node: 0, Cores: 16}}, 0, 0, true); err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	if got := s.Nodes[0].FreeCores(); got != 0 {
		t.Errorf("exclusive node FreeCores = %d, want 0", got)
	}
	if err := s.Allocate(2, []NodeAlloc{{Node: 0, Cores: 4}}, 0, 0, false); err == nil {
		t.Error("sharing an exclusive node succeeded")
	}
	// And the reverse: exclusive on a shared node fails.
	if err := s.Allocate(3, []NodeAlloc{{Node: 1, Cores: 4}}, 0, 0, false); err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	if err := s.Allocate(4, []NodeAlloc{{Node: 1, Cores: 4}}, 0, 0, true); err == nil {
		t.Error("exclusive allocation on shared node succeeded")
	}
}

func TestDoubleAllocSameNode(t *testing.T) {
	s := newState(t)
	if err := s.Allocate(1, []NodeAlloc{{Node: 0, Cores: 4}}, 0, 0, false); err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	if err := s.Allocate(1, []NodeAlloc{{Node: 0, Cores: 4}}, 0, 0, false); err == nil {
		t.Error("same job allocated twice on one node")
	}
}

func TestIdleNodes(t *testing.T) {
	s := newState(t)
	if got := len(s.IdleNodes()); got != 8 {
		t.Errorf("fresh cluster has %d idle nodes, want 8", got)
	}
	if err := s.Allocate(1, []NodeAlloc{{Node: 3, Cores: 1}}, 0, 0, false); err != nil {
		t.Fatal(err)
	}
	idle := s.IdleNodes()
	if len(idle) != 7 {
		t.Errorf("%d idle nodes after alloc, want 7", len(idle))
	}
	for _, id := range idle {
		if id == 3 {
			t.Error("node 3 still reported idle")
		}
	}
}

// Property: any sequence of allocations and releases never oversubscribes
// cores or ways on any node, and released resources come back exactly.
func TestStateInvariants(t *testing.T) {
	f := func(ops []uint32) bool {
		s, err := New(hw.DefaultClusterSpec())
		if err != nil {
			return false
		}
		live := map[int]bool{}
		nextID := 1
		for _, op := range ops {
			if op%3 == 0 && len(live) > 0 {
				// Release an arbitrary live job.
				for id := range live {
					s.Release(id)
					delete(live, id)
					break
				}
				continue
			}
			node := int(op>>2) % 8
			cores := int(op>>5)%30 + 1
			ways := units.Ways(op >> 10 % 24)
			if s.Allocate(nextID, []NodeAlloc{{Node: node, Cores: cores}}, ways, 0, op%7 == 0) == nil {
				live[nextID] = true
				nextID++
			}
		}
		used := 0
		for _, n := range s.Nodes {
			if n.UsedCores() > 28 || n.AllocWays() > 20 || n.FreeCores() < 0 {
				return false
			}
			used += n.UsedCores()
		}
		return used == s.TotalUsedCores()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestAllocateMemoryAccounting(t *testing.T) {
	s := newState(t)
	// 128 GB nodes: a 100 GB reservation fits, a second does not.
	if err := s.Allocate(1, []NodeAlloc{{Node: 0, Cores: 8, MemGB: 100}}, 0, 0, false); err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	if got := s.Nodes[0].FreeMem(); got != 28 {
		t.Errorf("FreeMem = %g, want 28", got)
	}
	if err := s.Allocate(2, []NodeAlloc{{Node: 0, Cores: 8, MemGB: 100}}, 0, 0, false); err == nil {
		t.Error("memory oversubscription accepted")
	}
	// Unaccounted (0) reservations are always allowed.
	if err := s.Allocate(3, []NodeAlloc{{Node: 0, Cores: 8}}, 0, 0, false); err != nil {
		t.Errorf("zero-memory alloc rejected: %v", err)
	}
	s.Release(1)
	if got := s.Nodes[0].FreeMem(); got != 128 {
		t.Errorf("FreeMem after release = %g, want 128", got)
	}
}

func TestAllocateIOAccounting(t *testing.T) {
	s := newState(t)
	// 2 GB/s links: a 1.4 reservation fits, a second does not.
	if err := s.AllocateIO(1, []NodeAlloc{{Node: 0, Cores: 14}}, 0, 0, 1.4, false); err != nil {
		t.Fatalf("AllocateIO: %v", err)
	}
	if got := s.Nodes[0].FreeIO(); got < 0.59 || got > 0.61 {
		t.Errorf("FreeIO = %g, want 0.6", got)
	}
	if err := s.AllocateIO(2, []NodeAlloc{{Node: 0, Cores: 14}}, 0, 0, 1.4, false); err == nil {
		t.Error("I/O oversubscription accepted")
	}
	s.Release(1)
	if got := s.Nodes[0].FreeIO(); got != 2.0 {
		t.Errorf("FreeIO after release = %g, want 2.0", got)
	}
}
