package par

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestForEachCoversEveryIndex(t *testing.T) {
	for _, w := range []int{0, 1, 2, 7} {
		prev := SetWorkers(w)
		hits := make([]atomic.Int64, 100)
		if err := ForEach(len(hits), func(i int) error {
			hits[i].Add(1)
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", w, i, got)
			}
		}
		SetWorkers(prev)
	}
}

func TestForEachEmpty(t *testing.T) {
	if err := ForEach(0, func(int) error { return errors.New("must not run") }); err != nil {
		t.Fatal(err)
	}
	if err := ForEach(-3, func(int) error { return errors.New("must not run") }); err != nil {
		t.Fatal(err)
	}
}

// TestForEachLowestIndexError pins the deterministic error contract:
// whatever the interleaving, the reported error is the lowest-index one,
// and every index still runs.
func TestForEachLowestIndexError(t *testing.T) {
	for _, w := range []int{1, 4} {
		prev := SetWorkers(w)
		var ran atomic.Int64
		err := ForEach(64, func(i int) error {
			ran.Add(1)
			if i%10 == 7 {
				return fmt.Errorf("cell %d failed", i)
			}
			return nil
		})
		if err == nil || err.Error() != "cell 7 failed" {
			t.Fatalf("workers=%d: got %v, want cell 7 failed", w, err)
		}
		if ran.Load() != 64 {
			t.Fatalf("workers=%d: ran %d of 64 indices", w, ran.Load())
		}
		SetWorkers(prev)
	}
}

func TestSetWorkersRoundTrip(t *testing.T) {
	orig := SetWorkers(3)
	if got := Workers(); got != 3 {
		t.Fatalf("Workers() = %d after SetWorkers(3)", got)
	}
	if prev := SetWorkers(0); prev != 3 {
		t.Fatalf("SetWorkers(0) returned %d, want 3", prev)
	}
	if got := Workers(); got < 1 {
		t.Fatalf("default Workers() = %d, want >= 1", got)
	}
	SetWorkers(orig)
}

// TestForEachMergeOrderIndependence is the determinism pattern in
// miniature: disjoint slot writes merged in index order give the same
// bytes serial and parallel.
func TestForEachMergeOrderIndependence(t *testing.T) {
	run := func(w int) string {
		prev := SetWorkers(w)
		defer SetWorkers(prev)
		out := make([]string, 50)
		if err := ForEach(len(out), func(i int) error {
			out[i] = fmt.Sprintf("cell-%d;", i*i)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		var s string
		for _, c := range out {
			s += c
		}
		return s
	}
	serial, parallel := run(1), run(8)
	if serial != parallel {
		t.Fatalf("merged output differs between serial and parallel runs")
	}
}
