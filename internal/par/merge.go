package par

// Merge is the deterministic k-way merge the sharded placement kernel
// drains its per-shard candidate lists with. The caller owns the
// sequences and their cursors; Merge only supplies the selection
// discipline: repeatedly pick, among the non-exhausted sequences, the
// one whose head element orders first — ties going to the lowest
// sequence index — and consume it via take, until take returns false or
// everything is exhausted.
//
// empty(s) reports whether sequence s has no head; less(a, b) reports
// whether sequence a's head orders strictly before sequence b's (both
// non-empty); take(s) consumes s's head (advancing its cursor) and
// reports whether the merge should continue. Because the selection is a
// pure function of the sequence contents, the output is byte-identical
// no matter how many workers produced those sequences — the same
// argument that makes ForEach's slot discipline reproduce serial
// digests.
//
// Two selection mechanisms implement the one discipline. A handful of
// sequences merges by linear scan — a selection tree would cost more in
// bookkeeping than it saves in comparisons. Wider merges (a 64-shard
// kernel draining a 4096-node query makes k*n probe calls under the
// scan) run a winner tree on a fixed stack array: one empty probe and
// at most log2(k) comparisons per pick instead of k of each. Both pick
// the unique (head order, lowest index) minimum each step, so the
// output sequence is identical.
//
//sns:hotpath
func Merge(k int, empty func(s int) bool, less func(a, b int) bool, take func(s int) bool) {
	if k > treeMergeMin && k <= treeMergeMax {
		mergeTree(k, empty, less, take)
		return
	}
	for {
		best := -1
		for s := 0; s < k; s++ {
			//lint:allocfree empty is the caller's prebuilt cursor probe; the runtime alloc gate verifies the sharded query allocates only its result
			if empty(s) {
				continue
			}
			//lint:allocfree less is the caller's prebuilt head comparator; it reads two cursor positions
			if best < 0 || less(s, best) {
				best = s
			}
		}
		if best < 0 {
			return
		}
		//lint:allocfree take is the caller's prebuilt consumer; it appends within the result's pre-sized capacity
		if !take(best) {
			return
		}
	}
}

const (
	// treeMergeMin is the width below which the linear scan wins: the
	// tree's replay path costs about log2(k) comparator calls, so the
	// crossover sits where k clears a few times that.
	treeMergeMin = 8
	// treeMergeMax bounds the winner tree's stack array. Wider merges
	// (no real shard count comes close) fall back to the linear scan —
	// same output, just slower — rather than allocating.
	treeMergeMax = 128
)

// mergeTree is the winner-tree selection: a perfect binary tournament
// over the next power of two >= k leaves, internal node i holding the
// winning sequence index of its subtree (-1 = subtree exhausted). Left
// children cover strictly lower sequence indexes than right children,
// and an internal node prefers its left child on non-less, so the root
// is exactly the linear scan's pick: lowest index among the first-
// ordering heads. After a take only the taken sequence's head changed,
// so one leaf refresh and a replay of its root path — one empty probe
// plus at most log2(k) comparisons — restores the invariant.
//
//sns:hotpath
func mergeTree(k int, empty func(s int) bool, less func(a, b int) bool, take func(s int) bool) {
	m := 1
	for m < k {
		m <<= 1
	}
	// Nodes 1..2m-1 on the stack; tree[m+s] is sequence s's leaf.
	var tree [2 * treeMergeMax]int32
	for s := 0; s < k; s++ {
		//lint:allocfree empty is the caller's prebuilt cursor probe; the runtime alloc gate verifies the sharded query allocates only its result
		if empty(s) {
			tree[m+s] = -1
		} else {
			tree[m+s] = int32(s)
		}
	}
	for s := k; s < m; s++ {
		tree[m+s] = -1
	}
	winner := func(a, b int32) int32 {
		if a < 0 {
			return b
		}
		if b < 0 {
			return a
		}
		//lint:allocfree less is the caller's prebuilt head comparator; it reads two cursor positions
		if less(int(b), int(a)) {
			return b
		}
		return a
	}
	for i := m - 1; i >= 1; i-- {
		tree[i] = winner(tree[2*i], tree[2*i+1])
	}
	for {
		w := tree[1]
		if w < 0 {
			return
		}
		//lint:allocfree take is the caller's prebuilt consumer; it appends within the result's pre-sized capacity
		if !take(int(w)) {
			return
		}
		leaf := m + int(w)
		//lint:allocfree empty is the caller's prebuilt cursor probe re-read after the consume
		if empty(int(w)) {
			tree[leaf] = -1
		}
		for i := leaf / 2; i >= 1; i /= 2 {
			tree[i] = winner(tree[2*i], tree[2*i+1])
		}
	}
}
