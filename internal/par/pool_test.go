package par

import (
	"sync/atomic"
	"testing"
)

func TestPoolCoversEveryIndex(t *testing.T) {
	for _, w := range []int{1, 3, 8} {
		p := NewPool(w)
		for _, n := range []int{0, 1, 5, 100} {
			hits := make([]atomic.Int64, n)
			p.Run(n, func(i int) { hits[i].Add(1) })
			for i := range hits {
				if got := hits[i].Load(); got != 1 {
					t.Fatalf("width=%d n=%d: index %d ran %d times", w, n, i, got)
				}
			}
		}
		p.Close()
	}
}

// TestPoolReuse pins the point of a persistent pool: the same workers
// serve many Run calls with fresh tasks, and every batch's results are
// visible to the caller when Run returns.
func TestPoolReuse(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	out := make([]int, 64)
	for round := 0; round < 50; round++ {
		p.Run(len(out), func(i int) { out[i] = round*1000 + i })
		for i := range out {
			if out[i] != round*1000+i {
				t.Fatalf("round %d: slot %d holds %d", round, i, out[i])
			}
		}
	}
}

func TestPoolDefaultWidth(t *testing.T) {
	prev := SetWorkers(5)
	defer SetWorkers(prev)
	p := NewPool(0)
	defer p.Close()
	if got := p.Width(); got != 5 {
		t.Fatalf("NewPool(0).Width() = %d with SetWorkers(5)", got)
	}
	// The width is fixed at creation: a later SetWorkers must not change
	// the pool's behavior (it has already spawned its goroutines).
	SetWorkers(2)
	if got := p.Width(); got != 5 {
		t.Fatalf("Width() = %d after SetWorkers(2), want 5", got)
	}
}

// TestPoolRunAfterClose pins the degraded-but-correct contract: a closed
// pool still covers every index, just inline on the caller.
func TestPoolRunAfterClose(t *testing.T) {
	p := NewPool(4)
	p.Close()
	hits := make([]int, 32)
	p.Run(len(hits), func(i int) { hits[i]++ })
	for i := range hits {
		if hits[i] != 1 {
			t.Fatalf("after Close: index %d ran %d times", i, hits[i])
		}
	}
}

// TestPoolWidth1RunsInline pins the single-CPU fast path: a width-1 pool
// spawns no goroutines and a warm Run allocates nothing.
func TestPoolWidth1RunsInline(t *testing.T) {
	p := NewPool(1)
	defer p.Close()
	out := make([]int, 16)
	fn := func(i int) { out[i] = i }
	if allocs := testing.AllocsPerRun(100, func() { p.Run(len(out), fn) }); allocs != 0 {
		t.Fatalf("width-1 Run allocates %.1f per call, want 0", allocs)
	}
}

// TestPoolWarmRunAllocs bounds the steady-state cost of the fan-out
// itself: after warm-up, a multi-worker Run performs no per-call heap
// allocations (the tokens are empty structs, the counter is atomic, the
// wait group parks on runtime semaphores).
func TestPoolWarmRunAllocs(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var sink atomic.Int64
	fn := func(i int) { sink.Add(int64(i)) }
	p.Run(64, fn) // warm up worker scheduling
	if allocs := testing.AllocsPerRun(50, func() { p.Run(64, fn) }); allocs > 0.5 {
		t.Fatalf("warm Run allocates %.1f per call, want 0", allocs)
	}
}
