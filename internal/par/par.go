// Package par is the deterministic fan-out primitive the experiment
// runners share: a bounded worker pool over an index space, with the
// merge discipline that keeps parallel runs byte-identical to serial
// ones.
//
// The contract has two halves. ForEach guarantees only that fn runs
// exactly once per index, with completion order unspecified; callers
// guarantee that fn(i) writes nothing but slot i of pre-sized result
// slices and reads nothing another index writes. Every simulation cell
// already owns its seeded state (a fresh sched.New or trace SimState),
// so the only cross-goroutine data are the disjoint result slots, and
// assembling them in index order afterwards reproduces the serial
// output — including the golden figure digests — bit for bit.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// workers is the configured pool width; 0 selects GOMAXPROCS at call
// time.
var workers atomic.Int64

// Workers returns the effective pool width ForEach will use.
func Workers() int {
	if w := int(workers.Load()); w > 0 {
		return w
	}
	return runtime.GOMAXPROCS(0)
}

// SetWorkers fixes the pool width (n < 1 restores the GOMAXPROCS
// default) and returns the previous setting, 0 meaning the default —
// the shape tests use to restore state. Width 1 makes ForEach run
// inline on the calling goroutine, which is how the digest-equivalence
// tests produce their serial reference.
func SetWorkers(n int) int {
	if n < 1 {
		n = 0
	}
	return int(workers.Swap(int64(n)))
}

// ForEach runs fn(i) exactly once for every i in [0, n), fanning the
// indices over the configured worker pool. It always completes all
// indices — an error does not cancel the remaining work, because a
// partial sweep would make which cells ran depend on scheduling — and
// returns the lowest-index error so the reported failure is the same
// no matter how the goroutines interleave.
func ForEach(n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	w := Workers()
	if w > n {
		w = n
	}
	if w == 1 {
		var first error
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil && first == nil {
				first = err
			}
		}
		return first
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
