package par

import (
	"sync"
	"sync/atomic"
)

// Pool is the reusable fan-out of the sharded placement kernel: a fixed
// set of persistent worker goroutines parked on a wake channel, so one
// Run costs two synchronization rounds and zero allocations — ForEach,
// by contrast, spawns fresh goroutines and an error slice per call,
// which is fine once per experiment cell but not inside a placement
// query that runs millions of times per replay.
//
// The work contract is ForEach's: fn runs exactly once per index in
// [0, n), completion order unspecified, and fn(i) may touch only state
// that index i owns. Errors are the caller's business — the sharded
// search's per-shard scans cannot fail, they fill per-shard scratch —
// so Run carries none.
//
// A Pool is NOT reentrant: one Run at a time. The placement kernel
// honors this structurally (one Search serves one scheduling loop, and
// the coordinator blocks until Run returns).
type Pool struct {
	width int
	start chan struct{}
	wg    sync.WaitGroup

	// fn/n are the active batch, published to the workers by the start
	// sends (channel send happens-before the matching receive) and read
	// back by wg.Wait (Done happens-before Wait returns). That pairing is
	// the "poolbatch" ownership the confine pass pins: only Run and loop
	// may touch these.
	//
	//sns:owner poolbatch
	fn func(i int)
	//sns:owner poolbatch
	n    int
	next atomic.Int64
}

// NewPool builds a pool of the given width; width < 1 selects the
// Workers() setting at creation time (the width is then fixed — a later
// SetWorkers does not resize live pools). Width 1 creates no goroutines
// at all: Run executes inline on the caller, which is both the
// single-CPU fast path and the serial reference the determinism tests
// compare against.
func NewPool(width int) *Pool {
	if width < 1 {
		width = Workers()
	}
	p := &Pool{width: width}
	if width > 1 {
		p.start = make(chan struct{}, width)
		for g := 0; g < width; g++ {
			// The channel is passed by value so a worker never reads the
			// start field itself — Close can nil it without a racing read.
			go p.loop(p.start)
		}
	}
	return p
}

// Width returns the pool's fixed worker count.
func (p *Pool) Width() int { return p.width }

// Run executes fn(i) exactly once for every i in [0, n), returning when
// all indices are done. Indices are claimed from a shared atomic
// counter, so an uneven per-index cost self-balances across workers.
// The result of every fn call is visible to the caller when Run
// returns.
//
// Run is a trusted "poolbatch" context: the pool is not reentrant, and
// the start-send / wg.Wait pair orders its batch-field writes against
// every worker's reads, so whichever goroutine calls Run owns the batch
// for the duration of the call.
//
//sns:hotpath
//sns:goroutine poolbatch
func (p *Pool) Run(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	w := p.width
	if w > n {
		w = n
	}
	if p.start == nil || w == 1 {
		for i := 0; i < n; i++ {
			//lint:allocfree fn is the caller's prebuilt task closure; the runtime alloc gate verifies the sharded query allocates only its result
			fn(i)
		}
		return
	}
	p.fn, p.n = fn, n
	p.next.Store(0)
	//lint:allocfree sync.WaitGroup.Add flips a counter; it never allocates
	p.wg.Add(w)
	for g := 0; g < w; g++ {
		p.start <- struct{}{}
	}
	//lint:allocfree sync.WaitGroup.Wait parks on a runtime semaphore without heap allocation
	p.wg.Wait()
	p.fn = nil
}

// loop is one worker: park on the wake channel, drain the shared index
// counter, report done; exit when the channel closes. A parked worker
// reads the batch fields only between a start receive and its Done —
// the window Run publishes them for — so it is a trusted "poolbatch"
// context too.
//
//sns:goroutine poolbatch
func (p *Pool) loop(start chan struct{}) {
	for range start {
		n := p.n
		for {
			i := int(p.next.Add(1)) - 1
			if i >= n {
				break
			}
			p.fn(i)
		}
		p.wg.Done()
	}
}

// Close releases the workers. The pool must be idle; Run after Close
// falls back to inline execution, so a closed pool is still correct,
// just serial.
func (p *Pool) Close() {
	if p.start != nil {
		close(p.start)
		p.start = nil
	}
}
