package par

import (
	"slices"
	"testing"
)

// mergeLists drains Merge over integer sequences and returns the taken
// values (up to limit; limit < 0 means drain everything).
func mergeLists(lists [][]int, limit int) []int {
	cur := make([]int, len(lists))
	var out []int
	Merge(len(lists),
		func(s int) bool { return cur[s] >= len(lists[s]) },
		func(a, b int) bool { return lists[a][cur[a]] < lists[b][cur[b]] },
		func(s int) bool {
			out = append(out, lists[s][cur[s]])
			cur[s]++
			return limit < 0 || len(out) < limit
		})
	return out
}

func TestMergeOrders(t *testing.T) {
	lists := [][]int{
		{1, 4, 9, 12},
		{2, 3, 10},
		{},
		{5, 6, 7, 8, 11},
	}
	got := mergeLists(lists, -1)
	want := []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}
	if !slices.Equal(got, want) {
		t.Fatalf("merged %v, want %v", got, want)
	}
}

// TestMergeTiesToLowestIndex pins the deterministic tie rule: equal
// heads drain lowest-sequence-first, so the output is a pure function of
// the inputs no matter who produced them.
func TestMergeTiesToLowestIndex(t *testing.T) {
	lists := [][]int{{5, 5}, {5}, {5, 5, 5}}
	taken := make([]int, 0, 6)
	cur := make([]int, len(lists))
	Merge(len(lists),
		func(s int) bool { return cur[s] >= len(lists[s]) },
		func(a, b int) bool { return lists[a][cur[a]] < lists[b][cur[b]] },
		func(s int) bool {
			taken = append(taken, s)
			cur[s]++
			return true
		})
	want := []int{0, 0, 1, 2, 2, 2}
	if !slices.Equal(taken, want) {
		t.Fatalf("tie drain order %v, want %v", taken, want)
	}
}

func TestMergeEarlyStop(t *testing.T) {
	lists := [][]int{{1, 3, 5}, {2, 4, 6}}
	got := mergeLists(lists, 3)
	if want := []int{1, 2, 3}; !slices.Equal(got, want) {
		t.Fatalf("top-3 merge %v, want %v", got, want)
	}
}

// TestMergeTreeMatchesScan differentially pins the winner tree against
// a reference linear scan across widths on both sides of the crossover
// and beyond the tree's stack bound (where Merge must fall back): same
// values, same tie-ordering, same early-stop point.
func TestMergeTreeMatchesScan(t *testing.T) {
	for _, k := range []int{2, 8, 9, 16, 64, 127, 128, 129, 200} {
		lists := make([][]int, k)
		x := uint64(99)
		for s := range lists {
			n := int(x % 7)
			x = x*6364136223846793005 + 1442695040888963407
			for j := 0; j < n; j++ {
				lists[s] = append(lists[s], int(x%32))
				x = x*6364136223846793005 + 1442695040888963407
			}
			slices.Sort(lists[s])
		}
		for _, limit := range []int{-1, 5} {
			got := mergeTaken(lists, limit)
			want := scanTaken(lists, limit)
			if !slices.Equal(got, want) {
				t.Fatalf("k=%d limit=%d: merge drained sequences %v, reference scan %v",
					k, limit, got, want)
			}
		}
	}
}

// mergeTaken drains Merge and records which sequence each pick came
// from — the strongest observable, since equal values from different
// sequences must still drain lowest-index-first.
func mergeTaken(lists [][]int, limit int) []int {
	cur := make([]int, len(lists))
	var taken []int
	Merge(len(lists),
		func(s int) bool { return cur[s] >= len(lists[s]) },
		func(a, b int) bool { return lists[a][cur[a]] < lists[b][cur[b]] },
		func(s int) bool {
			taken = append(taken, s)
			cur[s]++
			return limit < 0 || len(taken) < limit
		})
	return taken
}

// scanTaken is the reference: the linear-scan selection discipline
// restated independently of Merge's implementation.
func scanTaken(lists [][]int, limit int) []int {
	cur := make([]int, len(lists))
	var taken []int
	for limit < 0 || len(taken) < limit {
		best := -1
		for s := range lists {
			if cur[s] >= len(lists[s]) {
				continue
			}
			if best < 0 || lists[s][cur[s]] < lists[best][cur[best]] {
				best = s
			}
		}
		if best < 0 {
			break
		}
		taken = append(taken, best)
		cur[best]++
	}
	return taken
}

func TestMergeEmpty(t *testing.T) {
	if got := mergeLists(nil, -1); len(got) != 0 {
		t.Fatalf("zero-sequence merge produced %v", got)
	}
	if got := mergeLists([][]int{{}, {}}, -1); len(got) != 0 {
		t.Fatalf("all-empty merge produced %v", got)
	}
}
