package workload

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"spreadnshare/internal/sched"
)

// ParseScript reads a batch submission script in an sbatch-like directive
// syntax, one job per directive line:
//
//	#UBERUN --program=MG --ntasks=16
//	#UBERUN --program=TS --ntasks=28 --alpha=0.85 --priority=2 --at=120
//
// Other lines (shell commands, comments, blanks) are ignored, so a real
// launcher script can double as the submission file. Recognized options:
// --program (required), --ntasks (required), --alpha, --priority, --at
// (submission time in seconds).
func ParseScript(r io.Reader) ([]sched.JobSpec, error) {
	sc := bufio.NewScanner(r)
	var seq []sched.JobSpec
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "#UBERUN") {
			continue
		}
		js, err := parseDirective(strings.TrimSpace(strings.TrimPrefix(line, "#UBERUN")))
		if err != nil {
			return nil, fmt.Errorf("workload: line %d: %w", lineNo, err)
		}
		seq = append(seq, js)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("workload: %w", err)
	}
	if len(seq) == 0 {
		return nil, fmt.Errorf("workload: no #UBERUN directives found")
	}
	return seq, nil
}

// parseDirective parses one directive's options.
func parseDirective(s string) (sched.JobSpec, error) {
	var js sched.JobSpec
	for _, field := range strings.Fields(s) {
		if !strings.HasPrefix(field, "--") {
			return js, fmt.Errorf("bad option %q", field)
		}
		kv := strings.SplitN(strings.TrimPrefix(field, "--"), "=", 2)
		if len(kv) != 2 || kv[1] == "" {
			return js, fmt.Errorf("option %q needs =value", field)
		}
		key, val := kv[0], kv[1]
		switch key {
		case "program":
			js.Program = val
		case "ntasks":
			n, err := strconv.Atoi(val)
			if err != nil {
				return js, fmt.Errorf("bad ntasks %q: %v", val, err)
			}
			js.Procs = n
		case "alpha":
			a, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return js, fmt.Errorf("bad alpha %q: %v", val, err)
			}
			js.Alpha = a
		case "priority":
			p, err := strconv.Atoi(val)
			if err != nil {
				return js, fmt.Errorf("bad priority %q: %v", val, err)
			}
			js.Priority = p
		case "at":
			t, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return js, fmt.Errorf("bad at %q: %v", val, err)
			}
			js.Submit = t
		default:
			return js, fmt.Errorf("unknown option --%s", key)
		}
	}
	if js.Program == "" {
		return js, fmt.Errorf("missing --program")
	}
	if js.Procs <= 0 {
		return js, fmt.Errorf("missing or invalid --ntasks")
	}
	return js, nil
}
