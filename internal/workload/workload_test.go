package workload

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"spreadnshare/internal/app"
	"spreadnshare/internal/hw"
	"spreadnshare/internal/profiler"
)

func TestRandomSequenceShape(t *testing.T) {
	cat := app.MustCatalog()
	rng := rand.New(rand.NewSource(7))
	seq := RandomSequence(rng, cat, 20)
	if len(seq) != 20 {
		t.Fatalf("sequence length %d, want 20", len(seq))
	}
	for _, js := range seq {
		if js.Procs != 16 && js.Procs != 28 {
			t.Errorf("job procs %d, want 16 or 28", js.Procs)
		}
		prog, err := cat.Lookup(js.Program)
		if err != nil {
			t.Fatalf("unknown program %q in sequence", js.Program)
		}
		if prog.PowerOf2 && js.Procs != 16 {
			t.Errorf("MPI program %s got %d procs, want 16", js.Program, js.Procs)
		}
		if js.Submit != 0 {
			t.Errorf("job submitted at %g, want 0 (time-segment methodology)", js.Submit)
		}
	}
}

func TestRandomSequenceDeterministic(t *testing.T) {
	cat := app.MustCatalog()
	a := RandomSequence(rand.New(rand.NewSource(3)), cat, 20)
	b := RandomSequence(rand.New(rand.NewSource(3)), cat, 20)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different sequences")
		}
	}
}

func TestRatioMixHitsTarget(t *testing.T) {
	for _, target := range []float64{0, 0.25, 0.5, 0.75, 1.0} {
		seq := RatioMix(rand.New(rand.NewSource(1)), target, 30)
		if len(seq) != 30 {
			t.Fatalf("mix length %d, want 30", len(seq))
		}
		bwHours, total := 0.0, 0.0
		cat := app.MustCatalog()
		for _, js := range seq {
			m, _ := cat.Lookup(js.Program)
			h := m.TargetSoloSec
			total += h
			if js.Program == "BW" {
				bwHours += h
			}
			if js.Procs != 28 {
				t.Errorf("mix job procs %d, want 28 (full node)", js.Procs)
			}
		}
		got := bwHours / total
		if math.Abs(got-target) > 0.05 {
			t.Errorf("target ratio %.2f, achieved %.3f", target, got)
		}
	}
}

func TestCERunTimesCaching(t *testing.T) {
	spec := hw.DefaultClusterSpec()
	cat, err := app.NewCatalog(spec.Node)
	if err != nil {
		t.Fatal(err)
	}
	ce := NewCERunTimes(spec, cat)
	t1, err := ce.Of("MG", 16)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := ce.Of("MG", 16)
	if err != nil {
		t.Fatal(err)
	}
	if t1 != t2 {
		t.Error("cached run time differs")
	}
	mg, _ := cat.Lookup("MG")
	if math.Abs(t1-mg.TargetSoloSec) > 1e-6 {
		t.Errorf("CE run time %g, want calibrated %g", t1, mg.TargetSoloSec)
	}
	if _, err := ce.Of("NOPE", 16); err == nil {
		t.Error("unknown program accepted")
	}
}

func TestScalingRatio(t *testing.T) {
	spec := hw.DefaultClusterSpec()
	cat, err := app.NewCatalog(spec.Node)
	if err != nil {
		t.Fatal(err)
	}
	db := profiler.NewDB()
	k := profiler.New(spec)
	if err := k.ProfileAll(cat, []string{"BW", "HC"}, 28, db); err != nil {
		t.Fatal(err)
	}
	ce := NewCERunTimes(spec, cat)

	// Pure neutral mix: ratio 0. Pure scaling mix: ratio 1.
	allHC := RatioMix(rand.New(rand.NewSource(1)), 0, 10)
	r, err := ScalingRatio(allHC, db, ce)
	if err != nil {
		t.Fatal(err)
	}
	if r != 0 {
		t.Errorf("all-HC ratio = %g, want 0", r)
	}
	allBW := RatioMix(rand.New(rand.NewSource(1)), 1, 10)
	r, err = ScalingRatio(allBW, db, ce)
	if err != nil {
		t.Fatal(err)
	}
	if r != 1 {
		t.Errorf("all-BW ratio = %g, want 1", r)
	}
	// Half mix lands in between.
	half := RatioMix(rand.New(rand.NewSource(1)), 0.5, 10)
	r, err = ScalingRatio(half, db, ce)
	if err != nil {
		t.Fatal(err)
	}
	if r < 0.3 || r > 0.7 {
		t.Errorf("half-mix ratio = %g, want near 0.5", r)
	}
	if r2, _ := ScalingRatio(nil, db, ce); r2 != 0 {
		t.Error("empty sequence ratio not 0")
	}
}

func TestParseJobList(t *testing.T) {
	seq, err := ParseJobList(" MG:16, HC : 28 ,,TS:16 ")
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != 3 {
		t.Fatalf("parsed %d jobs, want 3", len(seq))
	}
	if seq[0].Program != "MG" || seq[0].Procs != 16 {
		t.Errorf("first job = %+v", seq[0])
	}
	if seq[1].Program != "HC" || seq[1].Procs != 28 {
		t.Errorf("second job = %+v", seq[1])
	}
	for _, bad := range []string{"", "MG", "MG:x", "MG:16:4", ",,"} {
		if _, err := ParseJobList(bad); err == nil {
			t.Errorf("ParseJobList(%q) succeeded, want error", bad)
		}
	}
}

func TestParseScript(t *testing.T) {
	script := `#!/bin/sh
# regular comment
#UBERUN --program=MG --ntasks=16
mpirun ./mg   # launcher line, ignored
#UBERUN --program=TS --ntasks=28 --alpha=0.85 --priority=2 --at=120
`
	seq, err := ParseScript(strings.NewReader(script))
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != 2 {
		t.Fatalf("parsed %d jobs, want 2", len(seq))
	}
	if seq[0].Program != "MG" || seq[0].Procs != 16 || seq[0].Alpha != 0 {
		t.Errorf("first job = %+v", seq[0])
	}
	if seq[1].Program != "TS" || seq[1].Procs != 28 || seq[1].Alpha != 0.85 ||
		seq[1].Priority != 2 || seq[1].Submit != 120 {
		t.Errorf("second job = %+v", seq[1])
	}
}

func TestParseScriptErrors(t *testing.T) {
	cases := []string{
		"",                                // no directives
		"#UBERUN --ntasks=16",             // missing program
		"#UBERUN --program=MG",            // missing ntasks
		"#UBERUN --program=MG --ntasks=x", // bad int
		"#UBERUN --program=MG --ntasks=16 badopt", // not --key=value
		"#UBERUN --program=MG --ntasks=16 --alpha=x",
		"#UBERUN --program=MG --ntasks=16 --priority=x",
		"#UBERUN --program=MG --ntasks=16 --at=x",
		"#UBERUN --program=MG --ntasks=16 --mystery=1",
		"#UBERUN --program=",
	}
	for _, c := range cases {
		if _, err := ParseScript(strings.NewReader(c)); err == nil {
			t.Errorf("ParseScript(%q) succeeded, want error", c)
		}
	}
}

func TestPoissonSequence(t *testing.T) {
	cat := app.MustCatalog()
	rng := rand.New(rand.NewSource(5))
	seq := PoissonSequence(rng, cat, 200, 60)
	prev := -1.0
	sum := 0.0
	for i, js := range seq {
		if js.Submit <= prev {
			t.Fatalf("arrivals not strictly increasing at %d", i)
		}
		if i > 0 {
			sum += js.Submit - prev
		}
		prev = js.Submit
	}
	mean := sum / float64(len(seq)-1)
	if mean < 40 || mean > 80 {
		t.Errorf("mean inter-arrival %.1f, want ~60", mean)
	}
}
