// Package workload generates the job sequences of the paper's evaluation:
// random 20-job mixes sampled from the 12 test programs (Section 6.2), and
// controlled-ratio mixes of scaling (BW) and neutral (HC) jobs for the
// scaling-ratio sweep (Section 6.3). It also computes a sequence's scaling
// ratio — the fraction of CE core-hours consumed by scaling-class jobs.
package workload

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"sync"

	"spreadnshare/internal/app"
	"spreadnshare/internal/exec"
	"spreadnshare/internal/hw"
	"spreadnshare/internal/profiler"
	"spreadnshare/internal/sched"
)

// RandomSequence samples n jobs uniformly from the catalog's 12 programs,
// all submitted at time zero (a "time segment" of continuous batch
// scheduling). Process counts are 16 or 28 — MPI programs always get 16,
// keeping their power-of-two splits feasible on the paper's scale factors.
func RandomSequence(rng *rand.Rand, cat *app.Catalog, n int) []sched.JobSpec {
	seq := make([]sched.JobSpec, 0, n)
	names := app.ProgramNames
	for i := 0; i < n; i++ {
		name := names[rng.Intn(len(names))]
		prog, err := cat.Lookup(name)
		if err != nil {
			// The builtin name list and catalog always agree.
			panic(err)
		}
		procs := 16
		if !prog.PowerOf2 && rng.Intn(2) == 0 {
			procs = 28
		}
		seq = append(seq, sched.JobSpec{Program: name, Procs: procs})
	}
	return seq
}

// RatioMix builds a sequence of `count` full-node (28-process) jobs mixing
// BW (scaling) and HC (neutral) instances so that the scaling ratio — the
// BW share of CE core-hours — lands as close as possible to `target`.
// Order is shuffled deterministically by rng.
func RatioMix(rng *rand.Rand, target float64, count int) []sched.JobSpec {
	cat := app.MustCatalog()
	bw, _ := cat.Lookup("BW")
	hc, _ := cat.Lookup("HC")
	// With identical process counts, the core-hour ratio depends only
	// on job counts and CE run times.
	bestN, bestDiff := 0, 2.0
	for nBW := 0; nBW <= count; nBW++ {
		bwHours := float64(nBW) * bw.TargetSoloSec
		hcHours := float64(count-nBW) * hc.TargetSoloSec
		r := 0.0
		if bwHours+hcHours > 0 {
			r = bwHours / (bwHours + hcHours)
		}
		if d := abs(r - target); d < bestDiff {
			bestDiff, bestN = d, nBW
		}
	}
	seq := make([]sched.JobSpec, 0, count)
	for i := 0; i < count; i++ {
		name := "HC"
		if i < bestN {
			name = "BW"
		}
		seq = append(seq, sched.JobSpec{Program: name, Procs: 28})
	}
	rng.Shuffle(len(seq), func(i, j int) { seq[i], seq[j] = seq[j], seq[i] })
	return seq
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// CERunTimes measures (and caches) each sequence entry's exclusive
// compact run time — the CE baseline used for normalization and for the
// scaling-ratio metric.
type CERunTimes struct {
	spec hw.ClusterSpec
	cat  *app.Catalog

	mu    sync.Mutex
	cache map[string]float64
}

// NewCERunTimes returns an empty measurement cache.
func NewCERunTimes(spec hw.ClusterSpec, cat *app.Catalog) *CERunTimes {
	return &CERunTimes{spec: spec, cat: cat, cache: make(map[string]float64)}
}

// Of returns the CE (minimum footprint, exclusive) run time of a program
// at a process count.
func (c *CERunTimes) Of(program string, procs int) (float64, error) {
	key := fmt.Sprintf("%s/%d", program, procs)
	c.mu.Lock()
	t, ok := c.cache[key]
	c.mu.Unlock()
	if ok {
		return t, nil
	}
	prog, err := c.cat.Lookup(program)
	if err != nil {
		return 0, err
	}
	nodes := (procs + c.spec.Node.Cores.Int() - 1) / c.spec.Node.Cores.Int()
	j, err := exec.RunSolo(c.spec, prog, procs, nodes)
	if err != nil {
		return 0, err
	}
	c.mu.Lock()
	c.cache[key] = j.RunTime()
	c.mu.Unlock()
	return j.RunTime(), nil
}

// ScalingRatio computes the fraction of a sequence's CE core-hours
// consumed by scaling-class jobs, per the profile database's
// classification.
func ScalingRatio(seq []sched.JobSpec, db *profiler.DB, ce *CERunTimes) (float64, error) {
	scaling, total := 0.0, 0.0
	for _, js := range seq {
		t, err := ce.Of(js.Program, js.Procs)
		if err != nil {
			return 0, err
		}
		hours := float64(js.Procs) * t
		total += hours
		if p, ok := db.Get(js.Program, js.Procs); ok && p.Class == profiler.Scaling {
			scaling += hours
		}
	}
	if total == 0 {
		return 0, nil
	}
	return scaling / total, nil
}

// ParseJobList parses an explicit workload specification of the form
// "MG:16,HC:28,TS:16" into job specs (whitespace tolerated, empty entries
// skipped).
func ParseJobList(s string) ([]sched.JobSpec, error) {
	var seq []sched.JobSpec
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		bits := strings.Split(part, ":")
		if len(bits) != 2 {
			return nil, fmt.Errorf("workload: bad job spec %q, want PROG:PROCS", part)
		}
		procs, err := strconv.Atoi(strings.TrimSpace(bits[1]))
		if err != nil {
			return nil, fmt.Errorf("workload: bad process count in %q: %w", part, err)
		}
		seq = append(seq, sched.JobSpec{Program: strings.TrimSpace(bits[0]), Procs: procs})
	}
	if len(seq) == 0 {
		return nil, fmt.Errorf("workload: empty job list")
	}
	return seq, nil
}

// PoissonSequence samples n jobs like RandomSequence but with Poisson
// arrivals at the given mean inter-arrival time — an open-system workload
// rather than the paper's all-at-once "time segment". Arrival times are
// cumulative exponential draws from rng.
func PoissonSequence(rng *rand.Rand, cat *app.Catalog, n int, meanInterArrival float64) []sched.JobSpec {
	seq := RandomSequence(rng, cat, n)
	t := 0.0
	for i := range seq {
		t += rng.ExpFloat64() * meanInterArrival
		seq[i].Submit = t
	}
	return seq
}
