// Package trace provides the large-cluster evaluation substrate of
// Section 6.4: a synthetic generator standing in for the LANL Trinity job
// trace (which is not redistributable here), program mapping with a
// controlled scaling-ratio bias, and a trace-driven simulator that replays
// thousands of jobs on clusters of up to tens of thousands of nodes.
//
// Following the paper's methodology, the simulator uses each trace job's
// recorded runtime as its CE runtime and applies program-specific profile
// data — scaling speedups and the IPC-LLC / BW-LLC curves — to simulated
// jobs, rather than re-deriving execution times from the fluid engine
// (which would be intractable at 32K nodes).
package trace

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"math/rand"
	"sort"
	"strconv"
	"strings"
)

// Job is one record of a (synthetic) cluster trace.
type Job struct {
	// ID is the record index.
	ID int
	// SubmitSec is the submission timestamp in seconds from trace
	// start.
	SubmitSec float64
	// Nodes is the job's node-count request.
	Nodes int
	// RuntimeSec is the recorded runtime, used as the CE runtime.
	RuntimeSec float64
	// Program is the mapped test program (set by MapPrograms).
	Program string
}

// GenConfig controls synthesis.
type GenConfig struct {
	// Jobs is the number of parallel jobs (the paper filters Trinity
	// to 7,044).
	Jobs int
	// SpanHours is the trace duration (paper: 1900 simulated hours).
	SpanHours float64
	// MaxNodes filters out larger jobs (paper: 4,096).
	MaxNodes int
}

// DefaultGenConfig mirrors the paper's filtered Trinity trace.
func DefaultGenConfig() GenConfig {
	return GenConfig{Jobs: 7044, SpanHours: 1900, MaxNodes: 4096}
}

// Synthesize builds a deterministic Trinity-like trace: power-of-two-heavy,
// heavy-tailed node counts (HPC capability jobs), log-normal runtimes
// (median tens of minutes, tails of many hours), and bursty Poisson
// arrivals across the span.
func Synthesize(seed int64, cfg GenConfig) []Job {
	rng := rand.New(rand.NewSource(seed))
	jobs := make([]Job, cfg.Jobs)
	span := cfg.SpanHours * 3600
	// Bursty arrivals: homogeneous Poisson modulated by a handful of
	// campaign windows with 4x intensity.
	type window struct{ start, end float64 }
	var bursts []window
	for i := 0; i < 6; i++ {
		s := rng.Float64() * span
		bursts = append(bursts, window{s, s + span/40})
	}
	arrival := func() float64 {
		for {
			t := rng.Float64() * span
			inBurst := false
			for _, b := range bursts {
				if t >= b.start && t < b.end {
					inBurst = true
					break
				}
			}
			// Accept burst samples always, background with p=0.4:
			// thins the background and concentrates arrivals.
			if inBurst || rng.Float64() < 0.4 {
				return t
			}
		}
	}
	for i := range jobs {
		// Node counts: log-uniform over [1, MaxNodes], snapped to a
		// power of two 70% of the time (typical HPC request shapes).
		maxExp := math.Log2(float64(cfg.MaxNodes))
		n := int(math.Pow(2, rng.Float64()*maxExp))
		if rng.Float64() < 0.7 {
			n = 1 << uint(math.Round(math.Log2(float64(n))))
		}
		if n < 1 {
			n = 1
		}
		if n > cfg.MaxNodes {
			n = cfg.MaxNodes
		}
		// Runtimes: log-normal, median ~20 min, sigma ~1.1, clamped
		// to [60 s, 24 h].
		rt := math.Exp(math.Log(1200) + 1.1*rng.NormFloat64())
		rt = math.Max(60, math.Min(rt, 24*3600))
		jobs[i] = Job{ID: i, SubmitSec: arrival(), Nodes: n, RuntimeSec: rt}
	}
	sort.Slice(jobs, func(a, b int) bool { return jobs[a].SubmitSec < jobs[b].SubmitSec })
	for i := range jobs {
		jobs[i].ID = i
	}
	return jobs
}

// MapPrograms assigns each job a program name with the paper's sampling
// bias: a job draws from the scaling group with probability ratio and from
// the non-scaling group otherwise, uniformly within each group.
func MapPrograms(seed int64, jobs []Job, scaling, other []string, ratio float64) {
	rng := rand.New(rand.NewSource(seed))
	for i := range jobs {
		if len(scaling) > 0 && (len(other) == 0 || rng.Float64() < ratio) {
			jobs[i].Program = scaling[rng.Intn(len(scaling))]
		} else {
			jobs[i].Program = other[rng.Intn(len(other))]
		}
	}
}

// Write serializes a trace as CSV: id,submit,nodes,runtime,program.
func Write(w io.Writer, jobs []Job) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "id,submit_sec,nodes,runtime_sec,program"); err != nil {
		return err
	}
	for _, j := range jobs {
		if _, err := fmt.Fprintf(bw, "%d,%.3f,%d,%.3f,%s\n",
			j.ID, j.SubmitSec, j.Nodes, j.RuntimeSec, j.Program); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Parse reads a trace written by Write.
func Parse(r io.Reader) ([]Job, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var jobs []Job
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "id,") || strings.HasPrefix(text, "#") {
			continue
		}
		parts := strings.Split(text, ",")
		if len(parts) < 4 {
			return nil, fmt.Errorf("trace: line %d: want at least 4 fields, got %d", line, len(parts))
		}
		id, err := strconv.Atoi(parts[0])
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad id: %w", line, err)
		}
		submit, err := strconv.ParseFloat(parts[1], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad submit: %w", line, err)
		}
		nodes, err := strconv.Atoi(parts[2])
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad nodes: %w", line, err)
		}
		rt, err := strconv.ParseFloat(parts[3], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad runtime: %w", line, err)
		}
		j := Job{ID: id, SubmitSec: submit, Nodes: nodes, RuntimeSec: rt}
		if len(parts) >= 5 {
			j.Program = parts[4]
		}
		jobs = append(jobs, j)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	return jobs, nil
}
