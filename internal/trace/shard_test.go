package trace

import (
	"reflect"
	"testing"

	"spreadnshare/internal/par"
)

// TestShardedReplayMatchesFlat proves an end-to-end replay through the
// sharded kernel returns exactly what the flat cached replay returns —
// placements, start/finish times, summary floats, bit for bit — at
// several shard counts and pool widths. The 1536-node cluster pushes the
// replay over the auditor's 1024-node threshold, so the stride-sampled
// CheckShardedIndex sweep runs against real scheduling churn too.
func TestShardedReplayMatchesFlat(t *testing.T) {
	db, node := traceDB(t)
	jobs := Synthesize(11, GenConfig{Jobs: 260, SpanHours: 48, MaxNodes: 32})
	MapPrograms(11, jobs, []string{"MG", "BW"}, []string{"HC", "EP"}, 0.8)
	cfg := DefaultSimConfig(1536, SNS)

	want, err := Simulate(jobs, db, node, cfg)
	if err != nil {
		t.Fatal(err)
	}

	for _, shards := range []int{1, 4, 7} {
		for _, w := range []int{1, 4, 7} {
			prev := par.SetWorkers(w)
			scfg := cfg
			scfg.Shards = shards
			got, err := Simulate(jobs, db, node, scfg)
			par.SetWorkers(prev)
			if err != nil {
				t.Fatalf("shards=%d workers=%d: %v", shards, w, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("shards=%d workers=%d: sharded replay differs from flat cached replay", shards, w)
			}
		}
	}
}

// TestShardedReplayAcrossPolicies covers the non-SNS policies' search
// paths under sharding (CS and TwoSlot place through ascendFree and the
// slot scan, which read the flat index; SNS exercises FindDemand) — the
// whole replay must stay bit-identical regardless.
func TestShardedReplayAcrossPolicies(t *testing.T) {
	db, node := traceDB(t)
	jobs := Synthesize(13, GenConfig{Jobs: 120, SpanHours: 24, MaxNodes: 16})
	MapPrograms(13, jobs, []string{"MG", "BW"}, []string{"HC", "EP"}, 0.8)
	for _, p := range []Policy{CE, CS, SNS, TwoSlot} {
		cfg := DefaultSimConfig(256, p)
		want, err := Simulate(jobs, db, node, cfg)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Shards = 5
		got, err := Simulate(jobs, db, node, cfg)
		if err != nil {
			t.Fatalf("%s sharded: %v", p, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: sharded replay differs from flat replay", p)
		}
	}
}
