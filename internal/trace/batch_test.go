package trace

import (
	"math"
	"strings"
	"testing"
)

// burstyTrace synthesizes a trace and quantizes its submission times so
// many jobs share each timestamp — the arrival shape batched admission
// coalesces. Quantization preserves the sort order.
func burstyTrace(seed int64, jobs int, stepSec float64) []Job {
	t := Synthesize(seed, GenConfig{Jobs: jobs, SpanHours: 24, MaxNodes: 16})
	MapPrograms(seed, t, []string{"MG", "BW"}, []string{"HC", "EP"}, 0.7)
	for i := range t {
		t[i].SubmitSec = math.Floor(t[i].SubmitSec/stepSec) * stepSec
	}
	return t
}

// TestSimulateBatchedEquivalence is the acceptance gate for batched
// admission: replaying a bursty trace through single rounds per burst
// must be bit-identical to a round per submission, at every batch size.
func TestSimulateBatchedEquivalence(t *testing.T) {
	db, node := traceDB(t)
	jobs := burstyTrace(41, 400, 1800) // ~48 bursts of ~8 jobs
	for _, pol := range []Policy{CE, SNS, TwoSlot} {
		cfg := DefaultSimConfig(128, pol)
		want, err := Simulate(jobs, db, node, cfg)
		if err != nil {
			t.Fatalf("%v serial: %v", pol, err)
		}
		for _, batch := range []int{1, 64, 4096} {
			got, err := SimulateBatched(jobs, db, node, cfg, batch)
			if err != nil {
				t.Fatalf("%v batch %d: %v", pol, batch, err)
			}
			for i := range want.Jobs {
				a, b := want.Jobs[i], got.Jobs[i]
				if a.Start != b.Start || a.Finish != b.Finish || a.Scale != b.Scale || a.NodesUsed != b.NodesUsed { //lint:floateq bit-identity is the contract under test
					t.Fatalf("%v batch %d job %d diverges: serial {%g %g %d %d}, batched {%g %g %d %d}",
						pol, batch, i, a.Start, a.Finish, a.Scale, a.NodesUsed,
						b.Start, b.Finish, b.Scale, b.NodesUsed)
				}
				for k := range a.Nodes {
					if a.Nodes[k] != b.Nodes[k] {
						t.Fatalf("%v batch %d job %d node sets diverge: %v vs %v",
							pol, batch, i, a.Nodes, b.Nodes)
					}
				}
			}
			if want.Makespan != got.Makespan || want.AvgWait != got.AvgWait { //lint:floateq bit-identity is the contract under test
				t.Fatalf("%v batch %d summaries diverge", pol, batch)
			}
		}
	}
}

func TestSimulateBatchedRejectsBadBatch(t *testing.T) {
	db, node := traceDB(t)
	jobs := burstyTrace(41, 10, 600)
	for _, batch := range []int{0, -3} {
		if _, err := SimulateBatched(jobs, db, node, DefaultSimConfig(64, CE), batch); err == nil {
			t.Errorf("batch %d accepted", batch)
		}
	}
}

func TestSimConfigValidate(t *testing.T) {
	db, node := traceDB(t)
	jobs := burstyTrace(7, 10, 600)
	base := DefaultSimConfig(64, SNS)

	if err := base.Validate(jobs, db, node); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	ceNoDB := DefaultSimConfig(64, CE)
	if err := ceNoDB.Validate(jobs, nil, node); err != nil {
		t.Fatalf("CE must not need a profile DB: %v", err)
	}

	mod := func(f func(*SimConfig)) SimConfig { c := base; f(&c); return c }
	cases := []struct {
		name string
		cfg  SimConfig
		jobs []Job
		db   bool
		want string
	}{
		{"zero nodes", mod(func(c *SimConfig) { c.ClusterNodes = 0 }), jobs, true, "cluster needs nodes"},
		{"bad cores", mod(func(c *SimConfig) { c.CoresPerJobNode = 99 }), jobs, true, "CoresPerJobNode"},
		{"negative shards", mod(func(c *SimConfig) { c.Shards = -2 }), jobs, true, "shard count"},
		{"negative scan", mod(func(c *SimConfig) { c.ScanDepth = -1 }), jobs, true, "scan depth"},
		{"no jobs", base, nil, true, "no jobs"},
		{"nil db", base, jobs, false, "profile DB is nil"},
		{"zero max scale", mod(func(c *SimConfig) { c.MaxScale = 0 }), jobs, true, "MaxScale"},
		{"bad alpha", mod(func(c *SimConfig) { c.Alpha = 1.5 }), jobs, true, "Alpha"},
	}
	for _, tc := range cases {
		d := db
		if !tc.db {
			d = nil
		}
		err := tc.cfg.Validate(tc.jobs, d, node)
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}
