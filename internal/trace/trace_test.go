package trace

import (
	"bytes"
	"strings"
	"testing"

	"spreadnshare/internal/app"
	"spreadnshare/internal/hw"
	"spreadnshare/internal/profiler"
)

func TestSynthesizeShape(t *testing.T) {
	cfg := GenConfig{Jobs: 500, SpanHours: 100, MaxNodes: 1024}
	jobs := Synthesize(1, cfg)
	if len(jobs) != 500 {
		t.Fatalf("got %d jobs, want 500", len(jobs))
	}
	prev := -1.0
	big := 0
	for _, j := range jobs {
		if j.SubmitSec < prev {
			t.Fatal("jobs not sorted by submission time")
		}
		prev = j.SubmitSec
		if j.Nodes < 1 || j.Nodes > 1024 {
			t.Fatalf("job nodes %d out of range", j.Nodes)
		}
		if j.RuntimeSec < 60 || j.RuntimeSec > 24*3600 {
			t.Fatalf("job runtime %g out of range", j.RuntimeSec)
		}
		if j.SubmitSec < 0 || j.SubmitSec > 100*3600 {
			t.Fatalf("submit %g outside span", j.SubmitSec)
		}
		if j.Nodes >= 64 {
			big++
		}
	}
	if big == 0 {
		t.Error("no capability-scale jobs in trace")
	}
	// Determinism.
	again := Synthesize(1, cfg)
	for i := range jobs {
		if jobs[i] != again[i] {
			t.Fatal("same seed produced different trace")
		}
	}
	other := Synthesize(2, cfg)
	same := true
	for i := range jobs {
		if jobs[i] != other[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical traces")
	}
}

func TestMapProgramsBias(t *testing.T) {
	jobs := Synthesize(1, GenConfig{Jobs: 2000, SpanHours: 10, MaxNodes: 64})
	scaling := []string{"MG", "BW"}
	other := []string{"HC", "EP"}
	MapPrograms(5, jobs, scaling, other, 0.9)
	fromScaling := 0
	for _, j := range jobs {
		switch j.Program {
		case "MG", "BW":
			fromScaling++
		case "HC", "EP":
		default:
			t.Fatalf("unexpected program %q", j.Program)
		}
	}
	frac := float64(fromScaling) / float64(len(jobs))
	if frac < 0.85 || frac > 0.95 {
		t.Errorf("scaling fraction %.3f, want ~0.9", frac)
	}
	MapPrograms(5, jobs, scaling, nil, 0.1)
	for _, j := range jobs {
		if j.Program != "MG" && j.Program != "BW" {
			t.Fatal("empty other-group should force scaling programs")
		}
	}
}

func TestWriteParseRoundTrip(t *testing.T) {
	jobs := Synthesize(3, GenConfig{Jobs: 50, SpanHours: 10, MaxNodes: 128})
	MapPrograms(3, jobs, []string{"MG"}, []string{"HC"}, 0.5)
	var buf bytes.Buffer
	if err := Write(&buf, jobs); err != nil {
		t.Fatal(err)
	}
	parsed, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed) != len(jobs) {
		t.Fatalf("parsed %d jobs, want %d", len(parsed), len(jobs))
	}
	for i := range jobs {
		if parsed[i].ID != jobs[i].ID || parsed[i].Nodes != jobs[i].Nodes ||
			parsed[i].Program != jobs[i].Program {
			t.Fatalf("job %d mismatch: %+v vs %+v", i, parsed[i], jobs[i])
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"1,2,3",
		"x,0,4,100,MG",
		"1,x,4,100,MG",
		"1,0,x,100,MG",
		"1,0,4,x,MG",
	}
	for _, c := range cases {
		if _, err := Parse(strings.NewReader(c)); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", c)
		}
	}
	// Headers, comments and blank lines are skipped.
	jobs, err := Parse(strings.NewReader("id,submit_sec,nodes,runtime_sec,program\n# c\n\n1,0,4,100,MG\n"))
	if err != nil || len(jobs) != 1 {
		t.Errorf("Parse with header = %v, %v", jobs, err)
	}
}

func traceDB(t *testing.T) (*profiler.DB, hw.NodeSpec) {
	t.Helper()
	spec := hw.DefaultClusterSpec()
	cat, err := app.NewCatalog(spec.Node)
	if err != nil {
		t.Fatal(err)
	}
	db := profiler.NewDB()
	k := profiler.New(spec)
	if err := k.ProfileAll(cat, []string{"MG", "BW", "HC", "EP"}, 16, db); err != nil {
		t.Fatal(err)
	}
	return db, spec.Node
}

func TestSimulateCEAndSNS(t *testing.T) {
	db, node := traceDB(t)
	jobs := Synthesize(11, GenConfig{Jobs: 300, SpanHours: 48, MaxNodes: 32})
	MapPrograms(11, jobs, []string{"MG", "BW"}, []string{"HC", "EP"}, 0.9)

	ce, err := Simulate(jobs, db, node, DefaultSimConfig(256, CE))
	if err != nil {
		t.Fatalf("CE: %v", err)
	}
	sns, err := Simulate(jobs, db, node, DefaultSimConfig(256, SNS))
	if err != nil {
		t.Fatalf("SNS: %v", err)
	}
	if len(ce.Jobs) != 300 || len(sns.Jobs) != 300 {
		t.Fatal("job count wrong")
	}
	for _, j := range ce.Jobs {
		if j.Scale != 1 || j.NodesUsed != j.Trace.Nodes {
			t.Fatalf("CE job %d ran at scale %d on %d nodes", j.Trace.ID, j.Scale, j.NodesUsed)
		}
		if diff := j.Run() - j.Trace.RuntimeSec; diff > 1e-6 || diff < -1e-6 {
			t.Fatalf("CE job %d run %g, want trace runtime %g", j.Trace.ID, j.Run(), j.Trace.RuntimeSec)
		}
	}
	spread := 0
	for _, j := range sns.Jobs {
		if j.Scale > 1 {
			spread++
			if j.NodesUsed != j.Scale*j.Trace.Nodes {
				t.Fatalf("SNS job %d scale %d but %d nodes (trace %d)",
					j.Trace.ID, j.Scale, j.NodesUsed, j.Trace.Nodes)
			}
			if j.Run() >= j.Trace.RuntimeSec {
				t.Fatalf("SNS spread job %d not faster: %g vs %g",
					j.Trace.ID, j.Run(), j.Trace.RuntimeSec)
			}
		}
	}
	if spread == 0 {
		t.Error("SNS never spread any job in a 90% scaling mix")
	}
	// On an amply-sized cluster, SNS run-time gains must improve
	// average turnaround (the paper's large-cluster result).
	if sns.AvgTurn >= ce.AvgTurn {
		t.Errorf("SNS avg turnaround %.0f s not below CE %.0f s", sns.AvgTurn, ce.AvgTurn)
	}
	if sns.Throughput <= ce.Throughput {
		t.Errorf("SNS throughput %.3g not above CE %.3g", sns.Throughput, ce.Throughput)
	}
}

func TestSimulateValidation(t *testing.T) {
	db, node := traceDB(t)
	jobs := []Job{{ID: 0, Nodes: 100, RuntimeSec: 100, Program: "MG"}}
	if _, err := Simulate(jobs, db, node, DefaultSimConfig(10, CE)); err == nil {
		t.Error("oversized job accepted")
	}
	if _, err := Simulate(jobs, db, node, SimConfig{ClusterNodes: 0, Policy: CE, CoresPerJobNode: 16}); err == nil {
		t.Error("zero-node cluster accepted")
	}
	bad := []Job{{ID: 0, Nodes: 1, RuntimeSec: 100, Program: "UNPROFILED"}}
	if _, err := Simulate(bad, db, node, DefaultSimConfig(10, SNS)); err == nil {
		t.Error("unprofiled program accepted under SNS")
	}
	cfg := DefaultSimConfig(10, CE)
	cfg.CoresPerJobNode = 99
	if _, err := Simulate(bad, db, node, cfg); err == nil {
		t.Error("CoresPerJobNode beyond node size accepted")
	}
}

func TestSimulateConservation(t *testing.T) {
	// After a full replay, every node must be back to fully free.
	db, node := traceDB(t)
	jobs := Synthesize(13, GenConfig{Jobs: 100, SpanHours: 24, MaxNodes: 16})
	MapPrograms(13, jobs, []string{"MG"}, []string{"HC"}, 0.5)
	for _, pol := range []Policy{CE, SNS} {
		res, err := Simulate(jobs, db, node, DefaultSimConfig(64, pol))
		if err != nil {
			t.Fatalf("%v: %v", pol, err)
		}
		for _, j := range res.Jobs {
			if j.Start < j.Trace.SubmitSec {
				t.Fatalf("%v: job started before submit", pol)
			}
			if j.Finish <= j.Start {
				t.Fatalf("%v: non-positive runtime", pol)
			}
		}
	}
}

func TestPolicyString(t *testing.T) {
	if CE.String() != "CE" || SNS.String() != "SNS" {
		t.Error("policy names wrong")
	}
}

func TestSummarize(t *testing.T) {
	jobs := []Job{
		{Nodes: 1, RuntimeSec: 3600, SubmitSec: 0},
		{Nodes: 4, RuntimeSec: 1800, SubmitSec: 7200},
		{Nodes: 3, RuntimeSec: 600, SubmitSec: 3600},
	}
	s := Summarize(jobs)
	if s.Jobs != 3 {
		t.Errorf("Jobs = %d", s.Jobs)
	}
	if s.NodeMax != 4 || s.NodeP50 != 3 {
		t.Errorf("node stats %d/%d", s.NodeP50, s.NodeMax)
	}
	// 1*1 + 4*0.5 + 3*(1/6) = 3.5 node-hours.
	if s.TotalNodeHours < 3.49 || s.TotalNodeHours > 3.51 {
		t.Errorf("TotalNodeHours = %g, want 3.5", s.TotalNodeHours)
	}
	// 1 and 4 are powers of two, 3 is not.
	if s.PowerOfTwoFrac < 0.66 || s.PowerOfTwoFrac > 0.67 {
		t.Errorf("PowerOfTwoFrac = %g", s.PowerOfTwoFrac)
	}
	if s.SpanHours != 2 {
		t.Errorf("SpanHours = %g, want 2", s.SpanHours)
	}
	if !strings.Contains(s.String(), "jobs: 3") {
		t.Error("String() wrong")
	}
	if z := Summarize(nil); z.Jobs != 0 {
		t.Error("empty summary wrong")
	}
}

func TestSynthesizedTraceShape(t *testing.T) {
	jobs := Synthesize(42, DefaultGenConfig())
	s := Summarize(jobs)
	if s.Jobs != 7044 {
		t.Errorf("Jobs = %d, want 7044", s.Jobs)
	}
	if s.PowerOfTwoFrac < 0.6 {
		t.Errorf("power-of-two fraction %.2f, want HPC-typical >= 0.6", s.PowerOfTwoFrac)
	}
	if s.NodeMax > 4096 {
		t.Errorf("NodeMax = %d, want filtered to 4096", s.NodeMax)
	}
	if s.RuntimeP50 < 300 || s.RuntimeP50 > 4000 {
		t.Errorf("median runtime %.0f s, want tens of minutes", s.RuntimeP50)
	}
}

func TestSimulatePercentiles(t *testing.T) {
	db, node := traceDB(t)
	jobs := Synthesize(17, GenConfig{Jobs: 200, SpanHours: 10, MaxNodes: 32})
	MapPrograms(17, jobs, []string{"MG"}, []string{"HC"}, 0.5)
	// A tight 48-node cluster forces queueing.
	res, err := Simulate(jobs, db, node, DefaultSimConfig(48, CE))
	if err != nil {
		t.Fatal(err)
	}
	if !(res.WaitP50 <= res.WaitP90 && res.WaitP90 <= res.WaitP99) {
		t.Errorf("percentiles not ordered: %.0f %.0f %.0f",
			res.WaitP50, res.WaitP90, res.WaitP99)
	}
	if res.WaitP99 <= 0 {
		t.Error("no queueing on a deliberately tight cluster")
	}
}

func TestParseSWF(t *testing.T) {
	swf := `; SWF header comment
; MaxNodes: 128
1	0	5	3600	64	-1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1
2	120	2	1800	16	-1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1
3	240	0	-1	32	-1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1
4	360	9	600	-1	-1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1
5	500	1	60	8	-1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1
`
	jobs, err := ParseSWF(strings.NewReader(swf), 16)
	if err != nil {
		t.Fatal(err)
	}
	// Jobs 3 (runtime -1) and 4 (procs -1) are skipped.
	if len(jobs) != 3 {
		t.Fatalf("parsed %d jobs, want 3", len(jobs))
	}
	if jobs[0].ID != 1 || jobs[0].Nodes != 4 || jobs[0].RuntimeSec != 3600 {
		t.Errorf("job 1 = %+v (64 procs / 16 per node = 4 nodes)", jobs[0])
	}
	if jobs[1].Nodes != 1 || jobs[2].Nodes != 1 {
		t.Errorf("small jobs = %+v, %+v, want 1 node each", jobs[1], jobs[2])
	}
	if jobs[1].SubmitSec != 120 {
		t.Errorf("submit = %g, want 120", jobs[1].SubmitSec)
	}
	// procsPerNode 0: each processor is a node.
	jobs, err = ParseSWF(strings.NewReader(swf), 0)
	if err != nil {
		t.Fatal(err)
	}
	if jobs[0].Nodes != 64 {
		t.Errorf("raw nodes = %d, want 64", jobs[0].Nodes)
	}
}

func TestParseSWFErrors(t *testing.T) {
	for _, bad := range []string{
		"1 2 3",
		"x 0 0 100 4",
		"1 x 0 100 4",
		"1 0 0 x 4",
		"1 0 0 100 x",
	} {
		if _, err := ParseSWF(strings.NewReader(bad), 16); err == nil {
			t.Errorf("ParseSWF(%q) succeeded, want error", bad)
		}
	}
}

func TestSWFReplayEndToEnd(t *testing.T) {
	// A tiny SWF trace replayed through the large-cluster simulator.
	swf := `1 0 0 600 32 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1
2 60 0 1200 64 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1
3 120 0 300 16 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1
`
	jobs, err := ParseSWF(strings.NewReader(swf), 16)
	if err != nil {
		t.Fatal(err)
	}
	MapPrograms(1, jobs, []string{"MG"}, []string{"HC"}, 0.5)
	db, node := traceDB(t)
	res, err := Simulate(jobs, db, node, DefaultSimConfig(16, SNS))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Jobs) != 3 {
		t.Fatalf("replayed %d jobs, want 3", len(res.Jobs))
	}
}
