package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ParseSWF reads a trace in the Standard Workload Format used by the
// Parallel Workloads Archive — the format real cluster logs (including
// the LANL traces the paper replays) are published in. Each
// non-comment line has 18 whitespace-separated fields; the ones the
// simulator needs are:
//
//	field  1: job number
//	field  2: submit time (s)
//	field  4: run time (s)
//	field  5: number of allocated processors
//
// Jobs with unknown (-1) runtime or processor counts are skipped, as are
// header comment lines starting with ';'. Processor counts are converted
// to node counts with procsPerNode (pass the traced machine's cores per
// node; 0 treats each processor as a node).
func ParseSWF(r io.Reader, procsPerNode int) ([]Job, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var jobs []Job
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, ";") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 5 {
			return nil, fmt.Errorf("trace: swf line %d: %d fields, want >= 5", lineNo, len(fields))
		}
		id, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("trace: swf line %d: bad job number: %w", lineNo, err)
		}
		submit, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: swf line %d: bad submit time: %w", lineNo, err)
		}
		runtime, err := strconv.ParseFloat(fields[3], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: swf line %d: bad run time: %w", lineNo, err)
		}
		procs, err := strconv.Atoi(fields[4])
		if err != nil {
			return nil, fmt.Errorf("trace: swf line %d: bad processor count: %w", lineNo, err)
		}
		if runtime <= 0 || procs <= 0 {
			// Cancelled or malformed records; the archive marks
			// unknowns with -1.
			continue
		}
		nodes := procs
		if procsPerNode > 1 {
			nodes = (procs + procsPerNode - 1) / procsPerNode
		}
		jobs = append(jobs, Job{
			ID:         id,
			SubmitSec:  submit,
			Nodes:      nodes,
			RuntimeSec: runtime,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	return jobs, nil
}
