package trace

import (
	"testing"

	"spreadnshare/internal/app"
	"spreadnshare/internal/hw"
	"spreadnshare/internal/invariant"
	"spreadnshare/internal/profiler"
)

// BenchmarkReplay1K measures large-cluster replay throughput: 1,000 jobs
// on a 1,024-node cluster under SNS.
func BenchmarkReplay1K(b *testing.B) {
	defer invariant.Pause()() // measure the unaudited replay path
	spec := hw.DefaultClusterSpec()
	cat, err := app.NewCatalog(spec.Node)
	if err != nil {
		b.Fatal(err)
	}
	db := profiler.NewDB()
	k := profiler.New(spec)
	if err := k.ProfileAll(cat, []string{"MG", "BW", "HC", "EP"}, 16, db); err != nil {
		b.Fatal(err)
	}
	jobs := Synthesize(3, GenConfig{Jobs: 1000, SpanHours: 200, MaxNodes: 256})
	MapPrograms(3, jobs, []string{"MG", "BW"}, []string{"HC", "EP"}, 0.9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(jobs, db, spec.Node, DefaultSimConfig(1024, SNS)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSynthesize measures trace generation.
func BenchmarkSynthesize(b *testing.B) {
	cfg := GenConfig{Jobs: 7044, SpanHours: 1900, MaxNodes: 4096}
	for i := 0; i < b.N; i++ {
		_ = Synthesize(int64(i), cfg)
	}
}
