package trace

import (
	"fmt"
	"sort"

	"spreadnshare/internal/hw"
	"spreadnshare/internal/placement"
	"spreadnshare/internal/profiler"
	"spreadnshare/internal/sim"
	"spreadnshare/internal/stats"
	"spreadnshare/internal/svc"
)

// Policy selects the strategy replayed by the trace simulator. It is the
// shared kernel enum, so the replay exercises the very same placement
// searches as the testbed scheduler; this package only supplies the trace
// generation, the runtime models, and the result summaries. Figure 20
// compares all four policies.
type Policy = placement.Policy

const (
	// CE replays jobs at their trace footprint on dedicated nodes.
	CE = placement.CE
	// CS shares nodes by free cores without scaling or partitioning.
	CS = placement.CS
	// SNS scales jobs per their program profile and co-locates them
	// under (c, w, b) accounting.
	SNS = placement.SNS
	// TwoSlot replays the related-work half-node-slot baseline.
	TwoSlot = placement.TwoSlot
)

// SimConfig tunes a replay.
type SimConfig struct {
	// ClusterNodes is the simulated cluster size (paper: 4K-32K).
	ClusterNodes int
	// Policy is the placement strategy to replay.
	Policy Policy
	// CoresPerJobNode is the per-node process count of trace jobs at
	// scale 1; the paper re-sizes Trinity jobs to 16-core node slices
	// so its testbed profiles remain valid.
	CoresPerJobNode int
	// Alpha is the slowdown threshold for SNS demand estimation.
	Alpha float64
	// MaxScale bounds the scale-factor search.
	MaxScale int
	// ScanDepth bounds how many pending jobs one scheduling pass may
	// try beyond the queue head (backfill depth).
	ScanDepth int
	// NoScoreCache replays with from-scratch scoring instead of the
	// incremental score cache — the reference path the cached-replay
	// equivalence tests and benchmarks compare against. The two paths
	// produce bit-identical placements; only the cost differs.
	NoScoreCache bool
	// Shards, when > 0, partitions the kernel into that many node-range
	// shards and fans placement queries over them concurrently (width =
	// par.Workers() at replay start). Placements stay bit-identical to
	// the flat kernel at any shard count; Shards takes precedence over
	// the flat score cache (each shard carries its own).
	Shards int
	// MutWorkers, when > 1, applies wide reservation spans through the
	// core's parallel mutation pipeline at that worker width (0 or 1 =
	// serial). Replays are bit-identical at any width; only the cost of
	// wide placements and releases changes.
	MutWorkers int
	// CoalesceFinish drains every clump of same-timestamp completion
	// events into one batched release round (svc.ReleaseRound) followed
	// by one scheduling round — the daemon's completeDue semantics —
	// instead of a round per completion event. Unlike batched admission
	// this is NOT bit-identical in general: when simultaneous
	// completions free resources that a backfill round would have
	// consumed incrementally, the coalesced round can place queued jobs
	// earlier or elsewhere (it sees the whole clump's capacity at
	// once). Replays that need the event-per-completion reference
	// digests leave it off; replays standing in for the live daemon turn
	// it on.
	CoalesceFinish bool
}

// DefaultSimConfig returns the paper's settings for a cluster size.
func DefaultSimConfig(nodes int, p Policy) SimConfig {
	return SimConfig{
		ClusterNodes:    nodes,
		Policy:          p,
		CoresPerJobNode: 16,
		Alpha:           0.9,
		MaxScale:        8,
		ScanDepth:       32,
	}
}

// Validate checks a replay configuration against its inputs and node
// type, returning a descriptive error for the first problem found.
// Simulate, SimulateBatched, and SimulateAll all call it before touching
// any state, so a bad config in a parallel fan-out fails fast with its
// own message instead of a mid-replay panic.
func (cfg SimConfig) Validate(jobs []Job, db *profiler.DB, node hw.NodeSpec) error {
	if cfg.ClusterNodes <= 0 {
		return fmt.Errorf("trace: cluster needs nodes, got %d", cfg.ClusterNodes)
	}
	if cfg.CoresPerJobNode <= 0 || cfg.CoresPerJobNode > node.Cores.Int() {
		return fmt.Errorf("trace: bad CoresPerJobNode %d (node has %d cores)", cfg.CoresPerJobNode, node.Cores.Int())
	}
	if cfg.Shards < 0 {
		return fmt.Errorf("trace: negative shard count %d", cfg.Shards)
	}
	if cfg.MutWorkers < 0 {
		return fmt.Errorf("trace: negative mutation worker count %d", cfg.MutWorkers)
	}
	if cfg.ScanDepth < 0 {
		return fmt.Errorf("trace: negative backfill scan depth %d", cfg.ScanDepth)
	}
	if len(jobs) == 0 {
		return fmt.Errorf("trace: no jobs to replay")
	}
	if cfg.Policy != CE {
		if db == nil {
			return fmt.Errorf("trace: policy %s replays profiled programs but the profile DB is nil", cfg.Policy)
		}
		if cfg.Policy == SNS || cfg.Policy == CS {
			if cfg.MaxScale < 1 {
				return fmt.Errorf("trace: policy %s needs MaxScale >= 1, got %d", cfg.Policy, cfg.MaxScale)
			}
		}
		if cfg.Policy == SNS && (cfg.Alpha <= 0 || cfg.Alpha > 1) {
			return fmt.Errorf("trace: SNS slowdown threshold Alpha must be in (0, 1], got %g", cfg.Alpha)
		}
	}
	return nil
}

// SimJob is the outcome of one replayed job.
type SimJob struct {
	Trace         Job
	Start, Finish float64
	Scale         int
	NodesUsed     int
	// Nodes is the placed node set, in the kernel's selection order.
	Nodes []int
}

// Wait returns submit-to-start.
func (j *SimJob) Wait() float64 { return j.Start - j.Trace.SubmitSec }

// Run returns start-to-finish.
func (j *SimJob) Run() float64 { return j.Finish - j.Start }

// Turnaround returns submit-to-finish.
func (j *SimJob) Turnaround() float64 { return j.Finish - j.Trace.SubmitSec }

// Result summarizes a replay.
type Result struct {
	Policy     Policy
	Jobs       []*SimJob
	AvgWait    float64
	AvgRun     float64
	AvgTurn    float64
	Throughput float64
	Makespan   float64
	// Wait-time distribution percentiles, for queueing analysis.
	WaitP50, WaitP90, WaitP99 float64
}

// simulator drives the extracted live scheduler core (internal/svc) with
// a discrete-event clock: submission events admit jobs, completion
// events release them, and every event runs one admission round. All
// placement, reservation, queue, and audit logic lives in the core — the
// replay owns only the clock, the runtime model, and the summaries.
type simulator struct {
	q     *sim.Queue
	core  *svc.Cluster
	model svc.RuntimeModel
	// outs maps a core job ID (admission order) to its output record
	// (trace slice order); the two orders differ when a trace file is
	// not submit-sorted.
	outs []*SimJob
	// coalesce selects the batched finish path: completion events only
	// buffer their job id into finished, and the event loop drains every
	// same-timestamp clump through one ReleaseRound plus one scheduling
	// round (instead of a round per completion event).
	coalesce bool
	finished []int
}

// Simulate replays a mapped trace on a cluster of the given node type.
// Every job's program must be mapped, and — for every policy but CE,
// whose runtime is the trace runtime — profiled in db at the configured
// per-node process count. Each submission runs its own admission round;
// SimulateBatched coalesces same-time bursts and produces bit-identical
// results.
func Simulate(jobs []Job, db *profiler.DB, node hw.NodeSpec, cfg SimConfig) (*Result, error) {
	return simulate(jobs, db, node, cfg, 1)
}

// SimulateBatched replays like Simulate but drains submission bursts —
// runs of consecutive jobs sharing one submission timestamp — into
// single admission rounds of at most batch jobs each. By the core's
// batched-admission invariant the placements, start/finish times, and
// summaries are bit-identical to Simulate at any batch size; only the
// number of queue passes (and therefore the replay cost under heavy
// bursts) changes.
func SimulateBatched(jobs []Job, db *profiler.DB, node hw.NodeSpec, cfg SimConfig, batch int) (*Result, error) {
	if batch < 1 {
		return nil, fmt.Errorf("trace: batch size must be >= 1, got %d", batch)
	}
	return simulate(jobs, db, node, cfg, batch)
}

// simulate constructs a private core and drives it from one
// discrete-event loop on the calling goroutine — nothing escapes, so
// the whole replay is a legitimate "core" owner context.
//
//sns:goroutine core
func simulate(jobs []Job, db *profiler.DB, node hw.NodeSpec, cfg SimConfig, batch int) (*Result, error) {
	if err := cfg.Validate(jobs, db, node); err != nil {
		return nil, err
	}
	core, err := svc.New(svc.Config{
		Node:           node,
		Nodes:          cfg.ClusterNodes,
		Policy:         cfg.Policy,
		MaxScale:       cfg.MaxScale,
		ScanDepth:      cfg.ScanDepth,
		AgingPeriodSec: 1,
		NoScoreCache:   cfg.NoScoreCache,
		Shards:         cfg.Shards,
		MutWorkers:     cfg.MutWorkers,
		AuditLabel:     "trace",
	})
	if err != nil {
		return nil, err
	}
	defer core.Close()
	s := &simulator{
		q:        &sim.Queue{},
		core:     core,
		model:    svc.PolicyRuntime(cfg.Policy, node),
		outs:     make([]*SimJob, 0, len(jobs)),
		coalesce: cfg.CoalesceFinish,
	}
	res := &Result{Policy: cfg.Policy}
	// Build every job's spec (and fail on unplaceable or unprofiled
	// jobs) before the clock starts.
	specs := make([]svc.JobSpec, len(jobs))
	for i := range jobs {
		tj := jobs[i]
		if tj.Nodes > cfg.ClusterNodes {
			return nil, fmt.Errorf("trace: job %d needs %d nodes on a %d-node cluster",
				tj.ID, tj.Nodes, cfg.ClusterNodes)
		}
		var prof *profiler.Profile
		if cfg.Policy != CE {
			p, ok := db.Get(tj.Program, cfg.CoresPerJobNode)
			if !ok {
				return nil, fmt.Errorf("trace: job %d program %q unprofiled", tj.ID, tj.Program)
			}
			prof = p
		}
		res.Jobs = append(res.Jobs, &SimJob{Trace: tj})
		specs[i] = svc.JobSpec{
			Program:      tj.Program,
			BaseNodes:    tj.Nodes,
			CoresPerNode: cfg.CoresPerJobNode,
			RuntimeSec:   tj.RuntimeSec,
			Alpha:        cfg.Alpha,
			MultiNode:    true,
			Profile:      prof,
			Intensive:    cfg.Policy == TwoSlot && svc.BWIntensive(prof, node),
		}
	}
	// One submission event per burst: consecutive jobs sharing a
	// submission timestamp coalesce, up to the batch cap. Simulate runs
	// with batch 1, which degenerates to one event (and one admission
	// round) per job.
	for lo := 0; lo < len(jobs); {
		hi := lo + 1
		//lint:floateq exact timestamp equality defines a burst; near-equal submits are distinct events
		for hi < len(jobs) && hi-lo < batch && jobs[hi].SubmitSec == jobs[lo].SubmitSec {
			hi++
		}
		chunk := specs[lo:hi]
		recs := res.Jobs[lo:hi]
		s.q.At(jobs[lo].SubmitSec, func() {
			now := s.q.Now()
			for i := range chunk {
				if _, err := s.core.Submit(chunk[i], now); err != nil {
					// Specs were validated above; a core rejection here
					// is a programming error.
					panic(err)
				}
				s.outs = append(s.outs, recs[i])
			}
			s.schedule()
		})
		lo = hi
	}
	if s.coalesce {
		// Coalesced finish loop: each PopBatch fires every event sharing
		// one timestamp. Submission events run their own admission round
		// (the pre-registered burst callbacks, which sort before any
		// finish event minted mid-replay); completion events only buffer
		// job ids, and the whole clump releases in one ReleaseRound
		// followed by one round — PR 7's batched admission, mirrored on
		// the finish side.
		for s.q.PopBatch() > 0 {
			if len(s.finished) == 0 {
				continue
			}
			if err := s.core.ReleaseRound(s.finished, s.q.Now()); err != nil {
				// The buffer only ever holds running jobs; a rejection is
				// a programming error, same as the serial Complete path.
				panic(err)
			}
			s.finished = s.finished[:0]
			s.schedule()
		}
	} else {
		s.q.Run(0)
	}
	if n := s.core.QueuedLen(); n > 0 {
		first, _ := s.core.FirstQueued()
		tj := s.outs[first.ID].Trace
		return nil, fmt.Errorf(
			"trace: %d jobs never placed under %s (first stuck: job %d wants %d nodes × %d cores, max free is %d cores/node)",
			n, cfg.Policy, tj.ID, tj.Nodes, cfg.CoresPerJobNode, s.core.MaxFreeCores())
	}
	// Summaries.
	waits := make([]float64, len(res.Jobs))
	runs := make([]float64, len(res.Jobs))
	turns := make([]float64, len(res.Jobs))
	for i, j := range res.Jobs {
		waits[i], runs[i], turns[i] = j.Wait(), j.Run(), j.Turnaround()
		if j.Finish > res.Makespan {
			res.Makespan = j.Finish
		}
	}
	res.AvgWait = stats.Mean(waits)
	res.AvgRun = stats.Mean(runs)
	res.AvgTurn = stats.Mean(turns)
	res.Throughput = stats.Throughput(turns)
	sorted := append([]float64(nil), waits...)
	sort.Float64s(sorted)
	res.WaitP50 = stats.Percentile(sorted, 0.5)
	res.WaitP90 = stats.Percentile(sorted, 0.9)
	res.WaitP99 = stats.Percentile(sorted, 0.99)
	return res, nil
}

// schedule runs one core admission round at the current clock and
// registers a completion event for every job placed.
func (s *simulator) schedule() {
	now := s.q.Now()
	for _, j := range s.core.ScheduleRound(now, s.model) {
		out := s.outs[j.ID]
		out.Start = j.StartSec
		out.Finish = j.FinishSec
		out.Scale = j.Scale
		out.NodesUsed = j.NodesUsed
		out.Nodes = j.Nodes
		id := j.ID
		if s.coalesce {
			s.q.At(j.FinishSec, func() {
				s.finished = append(s.finished, id)
			})
			continue
		}
		s.q.At(j.FinishSec, func() {
			if err := s.core.Complete(id, s.q.Now()); err != nil {
				panic(err)
			}
			s.schedule()
		})
	}
}
