package trace

import (
	"fmt"
	"sort"

	"spreadnshare/internal/core"
	"spreadnshare/internal/hw"
	"spreadnshare/internal/profiler"
	"spreadnshare/internal/sim"
	"spreadnshare/internal/stats"
)

// Policy selects the strategy replayed by the trace simulator. Figure 20
// compares CE against SNS.
type Policy int

const (
	// CE replays jobs at their trace footprint on dedicated nodes.
	CE Policy = iota
	// SNS scales jobs per their program profile and co-locates them
	// under (c, w, b) accounting.
	SNS
)

// String returns the policy name.
func (p Policy) String() string {
	if p == CE {
		return "CE"
	}
	return "SNS"
}

// SimConfig tunes a replay.
type SimConfig struct {
	// ClusterNodes is the simulated cluster size (paper: 4K-32K).
	ClusterNodes int
	// Policy is CE or SNS.
	Policy Policy
	// CoresPerJobNode is the per-node process count of trace jobs at
	// scale 1; the paper re-sizes Trinity jobs to 16-core node slices
	// so its testbed profiles remain valid.
	CoresPerJobNode int
	// Alpha is the slowdown threshold for SNS demand estimation.
	Alpha float64
	// MaxScale bounds the scale-factor search.
	MaxScale int
	// ScanDepth bounds how many pending jobs one scheduling pass may
	// try beyond the queue head (backfill depth).
	ScanDepth int
}

// DefaultSimConfig returns the paper's settings for a cluster size.
func DefaultSimConfig(nodes int, p Policy) SimConfig {
	return SimConfig{
		ClusterNodes:    nodes,
		Policy:          p,
		CoresPerJobNode: 16,
		Alpha:           0.9,
		MaxScale:        8,
		ScanDepth:       32,
	}
}

// SimJob is the outcome of one replayed job.
type SimJob struct {
	Trace         Job
	Start, Finish float64
	Scale         int
	NodesUsed     int
}

// Wait returns submit-to-start.
func (j *SimJob) Wait() float64 { return j.Start - j.Trace.SubmitSec }

// Run returns start-to-finish.
func (j *SimJob) Run() float64 { return j.Finish - j.Start }

// Turnaround returns submit-to-finish.
func (j *SimJob) Turnaround() float64 { return j.Finish - j.Trace.SubmitSec }

// Result summarizes a replay.
type Result struct {
	Policy     Policy
	Jobs       []*SimJob
	AvgWait    float64
	AvgRun     float64
	AvgTurn    float64
	Throughput float64
	Makespan   float64
	// Wait-time distribution percentiles, for queueing analysis.
	WaitP50, WaitP90, WaitP99 float64
}

// simNode is the lightweight per-node state of the large-scale simulator.
type simNode struct {
	freeCores int
	freeWays  int
	freeBW    float64
}

// simulator replays a trace under one policy.
type simulator struct {
	cfg     SimConfig
	spec    hw.NodeSpec
	db      *profiler.DB
	q       *sim.Queue
	nodes   []simNode
	byFree  [][]int // free-core count -> node ids (bucket index)
	bucketP []int   // node id -> position within its bucket
	pending []*simJob
}

type simJob struct {
	out   *SimJob
	nodes []int
	cores int
	ways  int
	bw    float64
	excl  bool
}

// Simulate replays a mapped trace on a cluster of the given node type.
// Every job's program must be mapped and profiled in db at the configured
// per-node process count.
func Simulate(jobs []Job, db *profiler.DB, node hw.NodeSpec, cfg SimConfig) (*Result, error) {
	if cfg.ClusterNodes <= 0 {
		return nil, fmt.Errorf("trace: cluster needs nodes, got %d", cfg.ClusterNodes)
	}
	if cfg.CoresPerJobNode <= 0 || cfg.CoresPerJobNode > node.Cores {
		return nil, fmt.Errorf("trace: bad CoresPerJobNode %d", cfg.CoresPerJobNode)
	}
	s := &simulator{
		cfg:     cfg,
		spec:    node,
		db:      db,
		q:       &sim.Queue{},
		nodes:   make([]simNode, cfg.ClusterNodes),
		byFree:  make([][]int, node.Cores+1),
		bucketP: make([]int, cfg.ClusterNodes),
	}
	for i := range s.nodes {
		s.nodes[i] = simNode{freeCores: node.Cores, freeWays: node.LLCWays, freeBW: node.PeakBandwidth}
		s.byFree[node.Cores] = append(s.byFree[node.Cores], i)
		s.bucketP[i] = i
	}
	res := &Result{Policy: cfg.Policy}
	for i := range jobs {
		tj := jobs[i]
		if tj.Nodes > cfg.ClusterNodes {
			return nil, fmt.Errorf("trace: job %d needs %d nodes on a %d-node cluster",
				tj.ID, tj.Nodes, cfg.ClusterNodes)
		}
		if cfg.Policy == SNS {
			if _, ok := db.Get(tj.Program, cfg.CoresPerJobNode); !ok {
				return nil, fmt.Errorf("trace: job %d program %q unprofiled", tj.ID, tj.Program)
			}
		}
		out := &SimJob{Trace: tj}
		res.Jobs = append(res.Jobs, out)
		sj := &simJob{out: out}
		s.q.At(tj.SubmitSec, func() {
			s.pending = append(s.pending, sj)
			s.schedule()
		})
	}
	s.q.Run(0)
	if len(s.pending) > 0 {
		return nil, fmt.Errorf("trace: %d jobs never placed", len(s.pending))
	}
	// Summaries.
	waits := make([]float64, len(res.Jobs))
	runs := make([]float64, len(res.Jobs))
	turns := make([]float64, len(res.Jobs))
	for i, j := range res.Jobs {
		waits[i], runs[i], turns[i] = j.Wait(), j.Run(), j.Turnaround()
		if j.Finish > res.Makespan {
			res.Makespan = j.Finish
		}
	}
	res.AvgWait = stats.Mean(waits)
	res.AvgRun = stats.Mean(runs)
	res.AvgTurn = stats.Mean(turns)
	res.Throughput = stats.Throughput(turns)
	sorted := append([]float64(nil), waits...)
	sort.Float64s(sorted)
	pct := func(p float64) float64 {
		if len(sorted) == 0 {
			return 0
		}
		return sorted[int(p*float64(len(sorted)-1))]
	}
	res.WaitP50, res.WaitP90, res.WaitP99 = pct(0.5), pct(0.9), pct(0.99)
	return res, nil
}

// moveBucket updates the free-core index after a node's free count changes.
func (s *simulator) moveBucket(id, oldFree, newFree int) {
	if oldFree == newFree {
		return
	}
	b := s.byFree[oldFree]
	pos := s.bucketP[id]
	last := len(b) - 1
	b[pos] = b[last]
	s.bucketP[b[pos]] = pos
	s.byFree[oldFree] = b[:last]
	s.byFree[newFree] = append(s.byFree[newFree], id)
	s.bucketP[id] = len(s.byFree[newFree]) - 1
}

// take reserves resources on a node.
func (s *simulator) take(id, cores, ways int, bw float64) {
	n := &s.nodes[id]
	old := n.freeCores
	n.freeCores -= cores
	n.freeWays -= ways
	n.freeBW -= bw
	s.moveBucket(id, old, n.freeCores)
}

// release returns resources.
func (s *simulator) release(id, cores, ways int, bw float64) {
	n := &s.nodes[id]
	old := n.freeCores
	n.freeCores += cores
	n.freeWays += ways
	n.freeBW += bw
	s.moveBucket(id, old, n.freeCores)
}

// schedule scans the pending queue in FIFO order up to ScanDepth attempts.
func (s *simulator) schedule() {
	attempts := 0
	i := 0
	for i < len(s.pending) && attempts < s.cfg.ScanDepth {
		sj := s.pending[i]
		if s.tryPlace(sj) {
			s.pending = append(s.pending[:i], s.pending[i+1:]...)
			continue
		}
		attempts++
		i++
	}
}

// tryPlace attempts one job under the policy, launching it on success.
func (s *simulator) tryPlace(sj *simJob) bool {
	tj := sj.out.Trace
	switch s.cfg.Policy {
	case CE:
		nodes := s.findNodes(tj.Nodes, s.spec.Cores, 0, 0)
		if nodes == nil {
			return false
		}
		// CE dedicates whole nodes: account all cores.
		s.launch(sj, nodes, s.spec.Cores, 0, 0, tj.RuntimeSec, 1)
		return true
	case SNS:
		prof, _ := s.db.Get(tj.Program, s.cfg.CoresPerJobNode)
		base, ok := prof.AtK(1)
		if !ok {
			base = &prof.Scales[0]
		}
		for _, sp := range prof.ByPerformance() {
			if sp.K > s.cfg.MaxScale {
				continue
			}
			n := sp.K * tj.Nodes
			if n > s.cfg.ClusterNodes {
				continue
			}
			d := core.EstimateDemand(sp, s.cfg.Alpha, s.spec)
			nodes := s.findNodes(n, d.Cores, d.Ways, d.BW)
			if nodes == nil {
				continue
			}
			// The trace runtime is the CE runtime; the profiled
			// exclusive times give the speedup of this scale.
			rt := tj.RuntimeSec * sp.TimeSec / base.TimeSec
			s.launch(sj, nodes, d.Cores, d.Ways, d.BW, rt, sp.K)
			return true
		}
		return false
	}
	return false
}

// findNodes collects n nodes with the per-node demand using the free-core
// bucket index, visiting the emptiest buckets first (idlest-first, the
// cheap large-cluster analogue of the testbed scheduler's scoring).
func (s *simulator) findNodes(n, cores, ways int, bw float64) []int {
	if n <= 0 {
		return nil
	}
	found := make([]int, 0, n)
	for free := s.spec.Cores; free >= cores; free-- {
		for _, id := range s.byFree[free] {
			node := &s.nodes[id]
			if ways > 0 && node.freeWays < ways {
				continue
			}
			if bw > 0 && node.freeBW < bw {
				continue
			}
			found = append(found, id)
			if len(found) == n {
				return found
			}
		}
	}
	return nil
}

// launch reserves resources and schedules completion.
func (s *simulator) launch(sj *simJob, nodes []int, cores, ways int, bw float64, runtime float64, scale int) {
	sj.nodes = nodes
	sj.cores, sj.ways, sj.bw = cores, ways, bw
	for _, id := range nodes {
		s.take(id, cores, ways, bw)
	}
	now := s.q.Now()
	sj.out.Start = now
	sj.out.Finish = now + runtime
	sj.out.Scale = scale
	sj.out.NodesUsed = len(nodes)
	s.q.At(sj.out.Finish, func() {
		for _, id := range sj.nodes {
			s.release(id, sj.cores, sj.ways, sj.bw)
		}
		s.schedule()
	})
}
