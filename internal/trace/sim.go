package trace

import (
	"fmt"
	"sort"

	"spreadnshare/internal/hw"
	"spreadnshare/internal/invariant"
	"spreadnshare/internal/placement"
	"spreadnshare/internal/profiler"
	"spreadnshare/internal/sim"
	"spreadnshare/internal/stats"
)

// Policy selects the strategy replayed by the trace simulator. It is the
// shared kernel enum, so the replay exercises the very same placement
// searches as the testbed scheduler; this package only supplies the trace
// generation, the runtime models, and the result summaries. Figure 20
// compares all four policies.
type Policy = placement.Policy

const (
	// CE replays jobs at their trace footprint on dedicated nodes.
	CE = placement.CE
	// CS shares nodes by free cores without scaling or partitioning.
	CS = placement.CS
	// SNS scales jobs per their program profile and co-locates them
	// under (c, w, b) accounting.
	SNS = placement.SNS
	// TwoSlot replays the related-work half-node-slot baseline.
	TwoSlot = placement.TwoSlot
)

// SimConfig tunes a replay.
type SimConfig struct {
	// ClusterNodes is the simulated cluster size (paper: 4K-32K).
	ClusterNodes int
	// Policy is the placement strategy to replay.
	Policy Policy
	// CoresPerJobNode is the per-node process count of trace jobs at
	// scale 1; the paper re-sizes Trinity jobs to 16-core node slices
	// so its testbed profiles remain valid.
	CoresPerJobNode int
	// Alpha is the slowdown threshold for SNS demand estimation.
	Alpha float64
	// MaxScale bounds the scale-factor search.
	MaxScale int
	// ScanDepth bounds how many pending jobs one scheduling pass may
	// try beyond the queue head (backfill depth).
	ScanDepth int
	// NoScoreCache replays with from-scratch scoring instead of the
	// incremental score cache — the reference path the cached-replay
	// equivalence tests and benchmarks compare against. The two paths
	// produce bit-identical placements; only the cost differs.
	NoScoreCache bool
	// Shards, when > 0, partitions the kernel into that many node-range
	// shards and fans placement queries over them concurrently (width =
	// par.Workers() at replay start). Placements stay bit-identical to
	// the flat kernel at any shard count; Shards takes precedence over
	// the flat score cache (each shard carries its own).
	Shards int
}

// DefaultSimConfig returns the paper's settings for a cluster size.
func DefaultSimConfig(nodes int, p Policy) SimConfig {
	return SimConfig{
		ClusterNodes:    nodes,
		Policy:          p,
		CoresPerJobNode: 16,
		Alpha:           0.9,
		MaxScale:        8,
		ScanDepth:       32,
	}
}

// SimJob is the outcome of one replayed job.
type SimJob struct {
	Trace         Job
	Start, Finish float64
	Scale         int
	NodesUsed     int
	// Nodes is the placed node set, in the kernel's selection order.
	Nodes []int
}

// Wait returns submit-to-start.
func (j *SimJob) Wait() float64 { return j.Start - j.Trace.SubmitSec }

// Run returns start-to-finish.
func (j *SimJob) Run() float64 { return j.Finish - j.Start }

// Turnaround returns submit-to-finish.
func (j *SimJob) Turnaround() float64 { return j.Finish - j.Trace.SubmitSec }

// Result summarizes a replay.
type Result struct {
	Policy     Policy
	Jobs       []*SimJob
	AvgWait    float64
	AvgRun     float64
	AvgTurn    float64
	Throughput float64
	Makespan   float64
	// Wait-time distribution percentiles, for queueing analysis.
	WaitP50, WaitP90, WaitP99 float64
}

// runJob is the in-flight bookkeeping of one replayed job: its kernel
// request plus the effective reservations to return on completion.
type runJob struct {
	out  *SimJob
	req  placement.Request
	prof *profiler.Profile
	// res holds the per-node effective reservations, but only when they
	// can differ across nodes (exclusive takes resolve per node, TwoSlot
	// plans vary core counts). The common SNS/CS footprint plan reserves
	// the same amount on every node, recorded once in res0 — a full
	// 32K-node replay reserves ~19M node-slots, and a per-node slice for
	// each was the replay's dominant allocation.
	res     []placement.Reservation
	res0    placement.Reservation
	uniform bool
}

// simulator replays a trace under one policy, backed by the placement
// kernel's SimState/Search/Pending.
type simulator struct {
	cfg    SimConfig
	spec   hw.NodeSpec
	q      *sim.Queue
	state  *placement.SimState
	search *placement.Search
	queue  *placement.Pending
	jobs   []*runJob

	// auditPass, when set, runs the invariant auditor at every
	// scheduling point.
	auditPass func(now float64)
}

// Simulate replays a mapped trace on a cluster of the given node type.
// Every job's program must be mapped, and — for every policy but CE,
// whose runtime is the trace runtime — profiled in db at the configured
// per-node process count.
func Simulate(jobs []Job, db *profiler.DB, node hw.NodeSpec, cfg SimConfig) (*Result, error) {
	if cfg.ClusterNodes <= 0 {
		return nil, fmt.Errorf("trace: cluster needs nodes, got %d", cfg.ClusterNodes)
	}
	if cfg.CoresPerJobNode <= 0 || cfg.CoresPerJobNode > node.Cores.Int() {
		return nil, fmt.Errorf("trace: bad CoresPerJobNode %d", cfg.CoresPerJobNode)
	}
	state := placement.NewSimState(node, cfg.ClusterNodes)
	s := &simulator{
		cfg:   cfg,
		spec:  node,
		q:     &sim.Queue{},
		state: state,
		queue: &placement.Pending{AgingPeriodSec: 1, ScanDepth: cfg.ScanDepth},
	}
	s.search = &placement.Search{
		View:         state,
		Idx:          state.Index(),
		Spec:         node,
		Nodes:        cfg.ClusterNodes,
		MaxScale:     cfg.MaxScale,
		HasIntensive: state.HasIntensive,
	}
	switch {
	case cfg.Shards > 0:
		ss := state.Shard(cfg.Shards)
		s.search.UseShards(ss)
		defer ss.Close()
	case !cfg.NoScoreCache:
		cache := placement.NewScoreCache(cfg.ClusterNodes, node.Cores.Int())
		state.SetOnChange(cache.Invalidate)
		s.search.Cache = cache
	}
	if invariant.Active() {
		aud := invariant.New("trace")
		// A full SimState sweep is O(nodes); on paper-scale replays
		// (4K-32K nodes) sample every 64th scheduling point so the
		// audit does not dominate the replay it is checking.
		if cfg.ClusterNodes > 1024 {
			aud.Stride = 64
		}
		s.auditPass = func(now float64) {
			aud.ObserveQueue(now, s.queue)
			if aud.Begin() {
				aud.CheckSimState(s.state)
				aud.CheckScoreCache(s.search)
				aud.CheckShardedIndex(s.search)
			}
		}
	}
	res := &Result{Policy: cfg.Policy}
	for i := range jobs {
		tj := jobs[i]
		if tj.Nodes > cfg.ClusterNodes {
			return nil, fmt.Errorf("trace: job %d needs %d nodes on a %d-node cluster",
				tj.ID, tj.Nodes, cfg.ClusterNodes)
		}
		var prof *profiler.Profile
		if cfg.Policy != CE {
			p, ok := db.Get(tj.Program, cfg.CoresPerJobNode)
			if !ok {
				return nil, fmt.Errorf("trace: job %d program %q unprofiled", tj.ID, tj.Program)
			}
			prof = p
		}
		out := &SimJob{Trace: tj}
		res.Jobs = append(res.Jobs, out)
		rj := &runJob{
			out:  out,
			prof: prof,
			req: placement.Request{
				BaseNodes:    tj.Nodes,
				CoresPerNode: cfg.CoresPerJobNode,
				Alpha:        cfg.Alpha,
				MultiNode:    true,
			},
		}
		switch cfg.Policy {
		case SNS:
			rj.req.Profile = prof
		case TwoSlot:
			rj.req.Intensive = bwIntensive(prof, node)
		}
		// Queue bookkeeping is keyed by the job's slice index, not its
		// trace ID (SWF replays may carry colliding IDs).
		idx := len(s.jobs)
		s.jobs = append(s.jobs, rj)
		s.q.At(tj.SubmitSec, func() {
			s.queue.Push(idx, tj.SubmitSec, 0, idx)
			s.schedule()
		})
	}
	s.q.Run(0)
	if s.queue.Len() > 0 {
		first, _ := s.queue.First()
		tj := s.jobs[first.ID].out.Trace
		return nil, fmt.Errorf(
			"trace: %d jobs never placed under %s (first stuck: job %d wants %d nodes × %d cores, max free is %d cores/node)",
			s.queue.Len(), cfg.Policy, tj.ID, tj.Nodes, cfg.CoresPerJobNode, s.state.MaxFreeCores())
	}
	// Summaries.
	waits := make([]float64, len(res.Jobs))
	runs := make([]float64, len(res.Jobs))
	turns := make([]float64, len(res.Jobs))
	for i, j := range res.Jobs {
		waits[i], runs[i], turns[i] = j.Wait(), j.Run(), j.Turnaround()
		if j.Finish > res.Makespan {
			res.Makespan = j.Finish
		}
	}
	res.AvgWait = stats.Mean(waits)
	res.AvgRun = stats.Mean(runs)
	res.AvgTurn = stats.Mean(turns)
	res.Throughput = stats.Throughput(turns)
	sorted := append([]float64(nil), waits...)
	sort.Float64s(sorted)
	res.WaitP50 = stats.Percentile(sorted, 0.5)
	res.WaitP90 = stats.Percentile(sorted, 0.9)
	res.WaitP99 = stats.Percentile(sorted, 0.99)
	return res, nil
}

// schedule runs one kernel queue pass (FIFO by wait, bounded backfill).
func (s *simulator) schedule() {
	now := s.q.Now()
	if s.auditPass != nil {
		s.auditPass(now)
	}
	s.queue.Schedule(now, func(i int) bool {
		return s.tryPlace(s.jobs[i])
	})
}

// tryPlace attempts one job under the policy, launching it on success.
func (s *simulator) tryPlace(rj *runJob) bool {
	pl := s.search.Place(s.cfg.Policy, rj.req)
	if pl == nil {
		return false
	}
	s.launch(rj, pl)
	return true
}

// launch reserves the plan's resources and schedules completion.
func (s *simulator) launch(rj *runJob, pl *placement.Plan) {
	rj.uniform = !pl.Exclusive
	for i := 1; i < len(pl.Cores) && rj.uniform; i++ {
		rj.uniform = pl.Cores[i] == pl.Cores[0]
	}
	if rj.uniform {
		// Non-exclusive reservations come back from Reserve unchanged,
		// so one prototype stands in for every node's record.
		rj.res0 = placement.Reservation{
			Cores:     pl.Cores[0],
			Ways:      pl.Ways,
			BW:        pl.BW,
			IOBW:      pl.IOBW,
			Intensive: rj.req.Intensive,
		}
		for _, id := range pl.Nodes {
			s.state.Reserve(id, rj.res0)
		}
	} else {
		rj.res = make([]placement.Reservation, len(pl.Nodes))
		for i, id := range pl.Nodes {
			rj.res[i] = s.state.Reserve(id, placement.Reservation{
				Cores:     pl.Cores[i],
				Ways:      pl.Ways,
				BW:        pl.BW,
				IOBW:      pl.IOBW,
				Exclusive: pl.Exclusive,
				Intensive: rj.req.Intensive,
			})
		}
	}
	now := s.q.Now()
	rj.out.Start = now
	rj.out.Finish = now + s.runtime(rj, pl)
	rj.out.Scale = pl.K
	rj.out.NodesUsed = len(pl.Nodes)
	rj.out.Nodes = pl.Nodes
	nodes := pl.Nodes
	s.q.At(rj.out.Finish, func() {
		if rj.uniform {
			for _, id := range nodes {
				s.state.Release(id, rj.res0)
			}
		} else {
			for i, id := range nodes {
				s.state.Release(id, rj.res[i])
			}
		}
		s.schedule()
	})
}

// runtime models a placed job's duration. The trace runtime is the CE
// (compact, exclusive) runtime; the profiles supply the corrections:
//
//   - SNS: the profiled exclusive times give the speedup of the chosen
//     scale, and the (c, w, b) reservation protects it from neighbors.
//   - CS: the same scaling ratio (when the footprint was grown), but
//     sharing is unmanaged — the job runs with only its fair share of the
//     LLC, so the profiled IPC ratio at that share becomes a slowdown.
//   - TwoSlot: no scaling; a half-node slot implies half the LLC.
func (s *simulator) runtime(rj *runJob, pl *placement.Plan) float64 {
	tj := rj.out.Trace
	switch s.cfg.Policy {
	case CE:
		return tj.RuntimeSec
	case SNS:
		base := baseScale(rj.prof)
		sp, ok := rj.prof.AtK(pl.K)
		if !ok {
			sp = base
		}
		return tj.RuntimeSec * sp.TimeSec / base.TimeSec
	case CS:
		base := baseScale(rj.prof)
		sp, ok := rj.prof.AtK(pl.K)
		ratio := 1.0
		if ok {
			ratio = sp.TimeSec / base.TimeSec
		} else {
			sp = base
		}
		return tj.RuntimeSec * ratio * cachePenalty(sp, fairWays(s.spec, pl.Cores[0]))
	case TwoSlot:
		return tj.RuntimeSec * cachePenalty(baseScale(rj.prof), s.spec.LLCWays.Int()/2)
	}
	return tj.RuntimeSec
}

// baseScale returns the compact-run reference profile (K=1, or the first
// recorded scale when the compact run is missing).
func baseScale(p *profiler.Profile) *profiler.ScaleProfile {
	if sp, ok := p.AtK(1); ok {
		return sp
	}
	return &p.Scales[0]
}

// fairWays is a co-located job's LLC fair share given its core share.
func fairWays(spec hw.NodeSpec, cores int) int {
	w := spec.LLCWays.Int() * cores / spec.Cores.Int()
	if w < 1 {
		w = 1
	}
	return w
}

// cachePenalty is the static unmanaged-sharing slowdown of running with w
// LLC ways instead of the full cache: the profiled IPC ratio.
func cachePenalty(sp *profiler.ScaleProfile, w int) float64 {
	full := sp.IPCAt(sp.FullWays())
	part := sp.IPCAt(w)
	if full <= 0 || part <= 0 {
		return 1
	}
	return full / part
}

// bwIntensive classifies a program for TwoSlot pairing: its compact-run
// bandwidth drains more than a third of the node's peak.
func bwIntensive(p *profiler.Profile, spec hw.NodeSpec) bool {
	base := baseScale(p)
	return base.BWAt(base.FullWays()) > spec.PeakBandwidth.Float64()/3
}
