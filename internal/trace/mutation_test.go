package trace

import (
	"math"
	"testing"
)

// wideTrace synthesizes a trace biased toward wide jobs — many-node
// reservation spans are what the parallel mutation pipeline fans out, so
// the equivalence gate needs placements that actually cross the span
// threshold. Runtimes are also quantized so finish times collide, giving
// the coalesced-finish path real tied clumps to drain.
func wideTrace(seed int64, jobs int) []Job {
	t := Synthesize(seed, GenConfig{Jobs: jobs, SpanHours: 24, MaxNodes: 96})
	MapPrograms(seed, t, []string{"MG", "BW"}, []string{"HC", "EP"}, 0.8)
	for i := range t {
		t[i].SubmitSec = math.Floor(t[i].SubmitSec/1800) * 1800
		if t[i].Nodes < 8 {
			t[i].Nodes = 8
		}
	}
	return t
}

// TestParallelMutationEquivalence is the acceptance gate for the
// parallel mutation pipeline: every worker width x shard count must
// replay bit-identically to the flat serial simulator. Word-striped
// bitset ownership, per-task population deltas, and shard-local mirrors
// are all exercised; any ordering or float divergence fails here.
func TestParallelMutationEquivalence(t *testing.T) {
	db, node := traceDB(t)
	jobs := wideTrace(43, 250)
	for _, pol := range []Policy{CE, CS, SNS, TwoSlot} {
		base := DefaultSimConfig(192, pol)
		want, err := Simulate(jobs, db, node, base)
		if err != nil {
			t.Fatalf("%v serial: %v", pol, err)
		}
		for _, workers := range []int{1, 4, 7} {
			for _, shards := range []int{1, 4, 7} {
				cfg := base
				cfg.MutWorkers = workers
				cfg.Shards = shards
				got, err := Simulate(jobs, db, node, cfg)
				if err != nil {
					t.Fatalf("%v w=%d s=%d: %v", pol, workers, shards, err)
				}
				for i := range want.Jobs {
					a, b := want.Jobs[i], got.Jobs[i]
					if a.Start != b.Start || a.Finish != b.Finish || a.Scale != b.Scale || a.NodesUsed != b.NodesUsed { //lint:floateq bit-identity is the contract under test
						t.Fatalf("%v w=%d s=%d job %d diverges: serial {%g %g %d %d}, parallel {%g %g %d %d}",
							pol, workers, shards, i, a.Start, a.Finish, a.Scale, a.NodesUsed,
							b.Start, b.Finish, b.Scale, b.NodesUsed)
					}
					for k := range a.Nodes {
						if a.Nodes[k] != b.Nodes[k] {
							t.Fatalf("%v w=%d s=%d job %d node sets diverge: %v vs %v",
								pol, workers, shards, i, a.Nodes, b.Nodes)
						}
					}
				}
				if want.Makespan != got.Makespan || want.AvgTurn != got.AvgTurn { //lint:floateq bit-identity is the contract under test
					t.Fatalf("%v w=%d s=%d summaries diverge", pol, workers, shards)
				}
			}
		}
	}
}

// TestCoalescedFinishEquivalence pins the coalesced-finish event loop
// against itself across mutation widths: CoalesceFinish changes WHICH
// schedule is computed (one release round per tied finish clump, the
// daemon's completeDue semantic) but that schedule must still be
// bit-identical at every worker width and shard count.
func TestCoalescedFinishEquivalence(t *testing.T) {
	db, node := traceDB(t)
	jobs := wideTrace(47, 250)
	for _, pol := range []Policy{CE, SNS, TwoSlot} {
		base := DefaultSimConfig(192, pol)
		base.CoalesceFinish = true
		want, err := Simulate(jobs, db, node, base)
		if err != nil {
			t.Fatalf("%v coalesced serial: %v", pol, err)
		}
		for _, workers := range []int{4, 7} {
			cfg := base
			cfg.MutWorkers = workers
			cfg.Shards = 4
			got, err := Simulate(jobs, db, node, cfg)
			if err != nil {
				t.Fatalf("%v coalesced w=%d: %v", pol, workers, err)
			}
			for i := range want.Jobs {
				a, b := want.Jobs[i], got.Jobs[i]
				if a.Start != b.Start || a.Finish != b.Finish || a.Scale != b.Scale || a.NodesUsed != b.NodesUsed { //lint:floateq bit-identity is the contract under test
					t.Fatalf("%v coalesced w=%d job %d diverges: serial {%g %g %d %d}, parallel {%g %g %d %d}",
						pol, workers, i, a.Start, a.Finish, a.Scale, a.NodesUsed,
						b.Start, b.Finish, b.Scale, b.NodesUsed)
				}
			}
			if want.Makespan != got.Makespan || want.AvgTurn != got.AvgTurn { //lint:floateq bit-identity is the contract under test
				t.Fatalf("%v coalesced w=%d summaries diverge", pol, workers)
			}
		}
	}
}

func TestSimConfigRejectsNegativeMutWorkers(t *testing.T) {
	db, node := traceDB(t)
	jobs := wideTrace(7, 10)
	cfg := DefaultSimConfig(64, CE)
	cfg.MutWorkers = -2
	if _, err := Simulate(jobs, db, node, cfg); err == nil {
		t.Error("negative MutWorkers accepted")
	}
}
