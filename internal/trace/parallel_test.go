package trace

import (
	"reflect"
	"testing"

	"spreadnshare/internal/par"
)

// TestSimulateAllMatchesSerial proves the fanned-out multi-config replay
// returns exactly what serial Simulate calls return, config by config,
// at several pool widths — including Results whose float fields must
// match bit for bit.
func TestSimulateAllMatchesSerial(t *testing.T) {
	db, node := traceDB(t)
	jobs := Synthesize(7, GenConfig{Jobs: 160, SpanHours: 48, MaxNodes: 16})
	MapPrograms(7, jobs, []string{"MG", "BW"}, []string{"HC", "EP"}, 0.8)

	cfgs := make([]SimConfig, 0, 8)
	for _, p := range []Policy{CE, CS, SNS, TwoSlot} {
		for _, size := range []int{128, 256} {
			cfgs = append(cfgs, DefaultSimConfig(size, p))
		}
	}

	want := make([]*Result, len(cfgs))
	for i, cfg := range cfgs {
		r, err := Simulate(jobs, db, node, cfg)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = r
	}

	for _, w := range []int{1, 3, 8} {
		prev := par.SetWorkers(w)
		got, err := SimulateAll(jobs, db, node, cfgs)
		par.SetWorkers(prev)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d results, want %d", w, len(got), len(want))
		}
		for i := range got {
			if !reflect.DeepEqual(got[i], want[i]) {
				t.Fatalf("workers=%d cfg %d (%s on %d nodes): parallel result differs from serial",
					w, i, cfgs[i].Policy, cfgs[i].ClusterNodes)
			}
		}
	}
}

// TestSimulateAllReportsLowestIndexError pins the deterministic error
// contract through the trace layer: an invalid config mid-slice reports
// its own error regardless of pool width, and the other configs still
// run to completion.
func TestSimulateAllReportsLowestIndexError(t *testing.T) {
	db, node := traceDB(t)
	jobs := Synthesize(7, GenConfig{Jobs: 20, SpanHours: 8, MaxNodes: 4})
	MapPrograms(7, jobs, []string{"MG", "BW"}, []string{"HC", "EP"}, 0.8)
	cfgs := []SimConfig{
		DefaultSimConfig(64, CE),
		{Policy: SNS}, // ClusterNodes 0: invalid
		DefaultSimConfig(64, SNS),
	}
	for _, w := range []int{1, 4} {
		prev := par.SetWorkers(w)
		_, err := SimulateAll(jobs, db, node, cfgs)
		par.SetWorkers(prev)
		if err == nil {
			t.Fatalf("workers=%d: no error from invalid config", w)
		}
	}
}
