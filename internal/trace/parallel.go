package trace

import (
	"spreadnshare/internal/hw"
	"spreadnshare/internal/par"
	"spreadnshare/internal/profiler"
)

// SimulateAll replays the same trace under every config, fanning the
// replays over the par worker pool. Each replay builds its own seeded
// SimState and only reads the shared inputs — Simulate copies each Job
// value it schedules and the profile database is immutable during
// replay — so results are independent of the interleaving: slot i holds
// exactly what Simulate(jobs, db, node, cfgs[i]) returns serially,
// digests included. On error the lowest-index failure is reported.
func SimulateAll(jobs []Job, db *profiler.DB, node hw.NodeSpec, cfgs []SimConfig) ([]*Result, error) {
	out := make([]*Result, len(cfgs))
	if err := par.ForEach(len(cfgs), func(i int) error {
		r, err := Simulate(jobs, db, node, cfgs[i])
		out[i] = r
		return err
	}); err != nil {
		return nil, err
	}
	return out, nil
}
