package trace

import (
	"fmt"
	"sort"
	"strings"

	"spreadnshare/internal/stats"
)

// Stats summarizes a trace's shape: the quantities one checks against the
// published Trinity characterization before trusting a synthetic stand-in.
type Stats struct {
	Jobs      int
	SpanHours float64
	// Node-count distribution.
	NodeP50, NodeP90, NodeMax int
	// Runtime distribution in seconds.
	RuntimeP50, RuntimeP90 float64
	// TotalNodeHours is the aggregate CE resource demand.
	TotalNodeHours float64
	// PowerOfTwoFrac is the fraction of jobs requesting a
	// power-of-two node count.
	PowerOfTwoFrac float64
}

// Summarize computes trace statistics.
func Summarize(jobs []Job) Stats {
	var s Stats
	s.Jobs = len(jobs)
	if len(jobs) == 0 {
		return s
	}
	nodes := make([]int, len(jobs))
	runtimes := make([]float64, len(jobs))
	pow2 := 0
	for i, j := range jobs {
		nodes[i] = j.Nodes
		runtimes[i] = j.RuntimeSec
		s.TotalNodeHours += float64(j.Nodes) * j.RuntimeSec / 3600
		if j.Nodes&(j.Nodes-1) == 0 {
			pow2++
		}
		if end := j.SubmitSec / 3600; end > s.SpanHours {
			s.SpanHours = end
		}
	}
	sort.Ints(nodes)
	sort.Float64s(runtimes)
	pct := func(p float64) int { return int(p * float64(len(jobs)-1)) }
	s.NodeP50 = nodes[pct(0.5)]
	s.NodeP90 = nodes[pct(0.9)]
	s.NodeMax = nodes[len(nodes)-1]
	s.RuntimeP50 = stats.Percentile(runtimes, 0.5)
	s.RuntimeP90 = stats.Percentile(runtimes, 0.9)
	s.PowerOfTwoFrac = float64(pow2) / float64(len(jobs))
	return s
}

// String renders the summary.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "jobs: %d over %.0f h, %.0f node-hours total\n",
		s.Jobs, s.SpanHours, s.TotalNodeHours)
	fmt.Fprintf(&b, "nodes: p50=%d p90=%d max=%d, %.0f%% power-of-two\n",
		s.NodeP50, s.NodeP90, s.NodeMax, 100*s.PowerOfTwoFrac)
	fmt.Fprintf(&b, "runtime: p50=%.0f s p90=%.0f s\n", s.RuntimeP50, s.RuntimeP90)
	return b.String()
}
