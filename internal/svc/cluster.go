package svc

import (
	"errors"
	"fmt"

	"spreadnshare/internal/invariant"
	"spreadnshare/internal/placement"
)

// ErrDuplicate is returned by Submit when the spec's Name is already
// taken; the accompanying *Job is the existing record, so idempotent
// clients treat it as success.
var ErrDuplicate = errors.New("svc: job name already submitted")

// Cluster is the live scheduler core: one cluster's mutable online
// state. Not safe for concurrent use — confine it to one goroutine (the
// daemon's scheduler loop) or one event loop (the simulators). The
// confine lint pass enforces this: every method call on a Cluster must
// come from a context proven to run on its owner goroutine.
//
// The statefield lint pass proves every field below round-trips through
// the snapshot mirror or is rebuilt on the restore path.
//
//sns:owner core
//sns:persist snapshot
type Cluster struct {
	cfg     Config
	state   *placement.SimState
	pending *placement.Pending
	jobs    []*Job
	// search wraps state; New rebuilds it on construction and restore.
	//
	//sns:derived New
	search *placement.Search
	// byName and counts are indexes over jobs; Restore rebuilds them
	// record by record.
	//
	//sns:derived Restore
	byName map[string]int
	//sns:derived Restore
	counts [4]int // jobs per JobState

	//sns:derived New
	shards *placement.ShardSet
	//sns:derived New
	audit func(now float64)
	//lint:statefield round-local scratch; the next ScheduleRound rebuilds it from zero
	placed []*Job // ScheduleRound result scratch
}

// New builds an all-idle live cluster core. Construction runs before
// the core has an owner goroutine.
//
//sns:ownerinit
func New(cfg Config) (*Cluster, error) {
	if cfg.Nodes <= 0 {
		return nil, fmt.Errorf("svc: cluster needs nodes, got %d", cfg.Nodes)
	}
	if cfg.Shards < 0 {
		return nil, fmt.Errorf("svc: negative shard count %d", cfg.Shards)
	}
	if cfg.MutWorkers < 0 {
		return nil, fmt.Errorf("svc: negative mutation worker count %d", cfg.MutWorkers)
	}
	if err := cfg.Node.Validate(); err != nil {
		return nil, fmt.Errorf("svc: bad node spec: %w", err)
	}
	state := placement.NewSimState(cfg.Node, cfg.Nodes)
	c := &Cluster{
		cfg:     cfg,
		state:   state,
		pending: &placement.Pending{AgingPeriodSec: cfg.AgingPeriodSec, ScanDepth: cfg.ScanDepth},
		byName:  make(map[string]int),
	}
	c.search = &placement.Search{
		View:         state,
		Idx:          state.Index(),
		Spec:         cfg.Node,
		Nodes:        cfg.Nodes,
		MaxScale:     cfg.MaxScale,
		HasIntensive: state.HasIntensive,
	}
	switch {
	case cfg.Shards > 0:
		c.shards = state.Shard(cfg.Shards)
		c.search.UseShards(c.shards)
	case !cfg.NoScoreCache:
		cache := placement.NewScoreCache(cfg.Nodes, cfg.Node.Cores.Int())
		state.SetOnChange(cache.Invalidate)
		state.SetOnSpanChange(cache.InvalidateSpan)
		c.search.Cache = cache
	}
	if cfg.MutWorkers > 1 {
		state.SetMutWorkers(cfg.MutWorkers)
	}
	if invariant.Active() {
		label := cfg.AuditLabel
		if label == "" {
			label = "svc"
		}
		aud := invariant.New(label)
		// A full SimState sweep is O(nodes); on paper-scale clusters
		// (4K-32K nodes) sample every 64th scheduling point so the
		// audit does not dominate the scheduling it is checking.
		if cfg.Nodes > 1024 {
			aud.Stride = 64
		}
		c.audit = func(now float64) {
			aud.ObserveQueue(now, c.pending)
			if aud.Begin() {
				aud.CheckSimState(c.state)
				aud.CheckScoreCache(c.search)
				aud.CheckShardedIndex(c.search)
			}
		}
	}
	return c, nil
}

// Close releases the sharded kernel's worker pool and the mutation
// pipeline's, if any. The core stays usable afterwards; sharded queries
// and span mutations just run serially.
func (c *Cluster) Close() {
	if c.shards != nil {
		c.shards.Close()
	}
	c.state.CloseMut()
}

// Config returns the core's configuration.
func (c *Cluster) Config() Config { return c.cfg }

// Len returns the cluster size in nodes.
func (c *Cluster) Len() int { return c.cfg.Nodes }

// Submitted returns how many jobs the core has ever admitted.
func (c *Cluster) Submitted() int { return len(c.jobs) }

// QueuedLen returns the number of jobs waiting for placement.
func (c *Cluster) QueuedLen() int { return c.pending.Len() }

// MaxFreeCores returns the largest free-core count on any node — the
// capacity bound quoted by stuck-placement diagnostics.
func (c *Cluster) MaxFreeCores() int { return c.state.MaxFreeCores() }

// Job returns the job with the given core ID.
func (c *Cluster) Job(id int) (*Job, bool) {
	if id < 0 || id >= len(c.jobs) {
		return nil, false
	}
	return c.jobs[id], true
}

// JobByName returns the job submitted under the given dedup name.
func (c *Cluster) JobByName(name string) (*Job, bool) {
	id, ok := c.byName[name]
	if !ok {
		return nil, false
	}
	return c.jobs[id], true
}

// Each visits every admitted job in ID order.
func (c *Cluster) Each(fn func(*Job)) {
	for _, j := range c.jobs {
		fn(j)
	}
}

// FirstQueued returns the highest-ranked stuck job as of the last
// scheduling round, or false when nothing is queued.
func (c *Cluster) FirstQueued() (*Job, bool) {
	it, ok := c.pending.First()
	if !ok {
		return nil, false
	}
	return c.jobs[it.ID], true
}

// Stats summarizes the core's current occupancy.
func (c *Cluster) Stats() Stats {
	return Stats{
		Nodes:        c.cfg.Nodes,
		Submitted:    len(c.jobs),
		Queued:       c.counts[Queued],
		Running:      c.counts[Running],
		Done:         c.counts[Done],
		Cancelled:    c.counts[Cancelled],
		MaxFreeCores: c.state.MaxFreeCores(),
	}
}

// Submit admits one job into the pending queue at time now and returns
// its record. It does not run a placement round: callers batch any
// number of Submits at one timestamp and then call ScheduleRound once —
// the batched-admission invariant guarantees the same placements as a
// round per Submit. A spec whose Name is already taken returns the
// existing job and ErrDuplicate.
func (c *Cluster) Submit(spec JobSpec, now float64) (*Job, error) {
	if spec.Name != "" {
		if id, ok := c.byName[spec.Name]; ok {
			return c.jobs[id], ErrDuplicate
		}
	}
	if spec.BaseNodes <= 0 || spec.BaseNodes > c.cfg.Nodes {
		return nil, fmt.Errorf("svc: job needs %d nodes on a %d-node cluster", spec.BaseNodes, c.cfg.Nodes)
	}
	if spec.CoresPerNode <= 0 || spec.CoresPerNode > c.cfg.Node.Cores.Int() {
		return nil, fmt.Errorf("svc: job wants %d cores per node, nodes have %d", spec.CoresPerNode, c.cfg.Node.Cores.Int())
	}
	if spec.RuntimeSec < 0 {
		return nil, fmt.Errorf("svc: negative runtime %g", spec.RuntimeSec)
	}
	j := &Job{
		ID:        len(c.jobs),
		Spec:      spec,
		State:     Queued,
		SubmitSec: now,
	}
	j.req = c.buildReq(&j.Spec)
	c.jobs = append(c.jobs, j)
	if spec.Name != "" {
		c.byName[spec.Name] = j.ID
	}
	c.counts[Queued]++
	// The job's dense ID doubles as the queue's deterministic tie-break
	// (admission order).
	c.pending.Push(j.ID, now, spec.Priority, j.ID)
	return j, nil
}

// buildReq translates a spec into the kernel request the configured
// policy consumes: SNS reads the scale profile, TwoSlot the intensive
// classification, every policy the footprint and alpha.
func (c *Cluster) buildReq(spec *JobSpec) placement.Request {
	req := placement.Request{
		BaseNodes:    spec.BaseNodes,
		CoresPerNode: spec.CoresPerNode,
		MemGBPerProc: spec.MemGBPerProc,
		Alpha:        spec.Alpha,
		MultiNode:    spec.MultiNode,
	}
	switch c.cfg.Policy {
	case placement.SNS:
		req.Profile = spec.Profile
	case placement.TwoSlot:
		req.Intensive = spec.Intensive
	case placement.CE, placement.CS:
		// Footprint-only policies: the base request already carries
		// everything they read.
	}
	return req
}

// ScheduleRound runs one admission round at time now: rank the pending
// queue, try placements in rank order (bounded backfill per ScanDepth),
// and launch every job the kernel accepts, predicting its completion
// with the runtime model. It returns the jobs placed this round; the
// slice is reused by the next round, so callers consume it immediately.
func (c *Cluster) ScheduleRound(now float64, model RuntimeModel) []*Job {
	if c.audit != nil {
		c.audit(now)
	}
	c.placed = c.placed[:0]
	c.pending.Schedule(now, func(id int) bool {
		j := c.jobs[id]
		if j.State != Queued {
			// The pending queue only holds queued jobs; defend the
			// invariant instead of assuming it.
			return false
		}
		pl := c.search.Place(c.cfg.Policy, j.req)
		if pl == nil {
			return false
		}
		c.launch(j, pl, now, model)
		c.placed = append(c.placed, j)
		return true
	})
	return c.placed
}

// launch reserves a plan's resources and transitions the job to
// Running; callers must already have proven the job queued.
//
//sns:transition Queued
func (c *Cluster) launch(j *Job, pl *placement.Plan, now float64, model RuntimeModel) {
	j.uniform = !pl.Exclusive
	for i := 1; i < len(pl.Cores) && j.uniform; i++ {
		j.uniform = pl.Cores[i] == pl.Cores[0]
	}
	if j.uniform {
		// Non-exclusive uniform reservations come back from Reserve
		// unchanged, so one prototype stands in for every node's record
		// and the whole mutation batches into one span call.
		j.res0 = placement.Reservation{
			Cores:     pl.Cores[0],
			Ways:      pl.Ways,
			BW:        pl.BW,
			IOBW:      pl.IOBW,
			Intensive: j.req.Intensive,
		}
		c.state.ReserveSpan(pl.Nodes, j.res0)
	} else {
		j.res = make([]placement.Reservation, len(pl.Nodes))
		for i, id := range pl.Nodes {
			j.res[i] = c.state.Reserve(id, placement.Reservation{
				Cores:     pl.Cores[i],
				Ways:      pl.Ways,
				BW:        pl.BW,
				IOBW:      pl.IOBW,
				Exclusive: pl.Exclusive,
				Intensive: j.req.Intensive,
			})
		}
	}
	j.StartSec = now
	j.FinishSec = now + model(j, pl)
	j.Scale = pl.K
	j.NodesUsed = len(pl.Nodes)
	j.Nodes = pl.Nodes
	c.toRunning(j)
}

// Complete releases a running job's resources and marks it Done. The
// caller owns the clock, so it also decides whether now is the job's
// predicted FinishSec (simulators) or an observed completion (daemon);
// the record keeps the actual value.
func (c *Cluster) Complete(id int, now float64) error {
	j, ok := c.Job(id)
	if !ok {
		return fmt.Errorf("svc: complete: unknown job %d", id)
	}
	if j.State != Running {
		return fmt.Errorf("svc: complete: job %d is %s, not running", id, j.State)
	}
	c.release(j)
	j.FinishSec = now
	c.toDone(j)
	return nil
}

// ReleaseRound completes every job in ids at time now — the finish-side
// mirror of batched admission. A caller that drained a clump of
// same-timestamp finish events hands the whole clump here and runs one
// ScheduleRound after, instead of a round per event; each job's span
// still releases through the parallel mutation pipeline when one is
// configured. Completion order is the ids order, so callers that need
// determinism pass a deterministically ordered batch (the simulators
// pass event order, the daemon (finish, id) heap order). The first
// failure stops the batch and is returned.
func (c *Cluster) ReleaseRound(ids []int, now float64) error {
	for _, id := range ids {
		if err := c.Complete(id, now); err != nil {
			return err
		}
	}
	return nil
}

// Cancel withdraws a queued job or kills a running one at time now.
// Done and already-cancelled jobs cannot be cancelled.
func (c *Cluster) Cancel(id int, now float64) error {
	j, ok := c.Job(id)
	if !ok {
		return fmt.Errorf("svc: cancel: unknown job %d", id)
	}
	switch j.State {
	case Queued:
		c.pending.Remove(id)
	case Running:
		c.release(j)
		j.FinishSec = now
	case Done, Cancelled:
		// Naming the terminal states (instead of a blanket default)
		// keeps this switch exhaustive over the lifecycle.
		return fmt.Errorf("svc: cancel: job %d already %s", id, j.State)
	default:
		return fmt.Errorf("svc: cancel: job %d in invalid state %d", id, int(j.State))
	}
	c.toCancelled(j)
	return nil
}

// release returns a job's effective reservations to the cluster.
func (c *Cluster) release(j *Job) {
	if j.uniform {
		c.state.ReleaseSpan(j.Nodes, j.res0)
	} else {
		for i, id := range j.Nodes {
			c.state.Release(id, j.res[i])
		}
	}
}

// toRunning, toDone, and toCancelled are the only writers of Job.State
// after admission. Each names its legal predecessors, so the transition
// lint pass checks the proof at every call site instead of inside the
// shared body a generic setState would have hidden it in.

// toRunning places a queued job, keeping the per-state counts.
//
//sns:transition Queued
func (c *Cluster) toRunning(j *Job) {
	c.counts[j.State]--
	c.counts[Running]++
	j.State = Running
}

// toDone completes a running job, keeping the per-state counts.
//
//sns:transition Running
func (c *Cluster) toDone(j *Job) {
	c.counts[j.State]--
	c.counts[Done]++
	j.State = Done
}

// toCancelled withdraws a queued job or kills a running one, keeping
// the per-state counts.
//
//sns:transition Queued Running
func (c *Cluster) toCancelled(j *Job) {
	c.counts[j.State]--
	c.counts[Cancelled]++
	j.State = Cancelled
}
