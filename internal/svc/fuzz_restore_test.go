package svc

import (
	"bytes"
	"encoding/json"
	"sort"
	"strings"
	"testing"
)

// baseSnapshot builds a deterministic snapshot covering every job state:
// a few submitted jobs, an admission round (some run, some stay queued),
// one completion, one cancellation, and one late submit that is still
// queued when the snapshot is taken. The corruption fuzzer mutates these
// bytes, so the richer the state they carry, the more Restore paths a
// mutation can reach.
func baseSnapshot(t *testing.T) []byte {
	t.Helper()
	db, node, err := fuzzProfiles()
	if err != nil {
		t.Fatal(err)
	}
	f := newFuzzCore(t, db, node)
	defer f.c.Close()
	for _, b := range []byte{0, 8, 16, 48, 1, 112, 1, 2, 7, 1, 20} {
		f.apply(t, b)
	}
	var buf bytes.Buffer
	if err := f.c.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// corruptSnapshot applies one structured mutation to snapshot bytes.
// Every branch is a pure function of (data, mode, pos, bit): map keys
// are sorted before indexing and json.Marshal emits sorted keys, so a
// reproducer corpus entry replays the identical corruption.
func corruptSnapshot(data []byte, mode, pos int, bit uint8) []byte {
	if len(data) == 0 {
		return data
	}
	if pos < 0 {
		pos = -pos
	}
	switch mode % 4 {
	case 0: // truncate mid-stream
		return data[:pos%len(data)]
	case 1: // flip one bit
		out := bytes.Clone(data)
		out[pos%len(out)] ^= 1 << (bit % 8)
		return out
	case 2: // drop one top-level field
		var m map[string]json.RawMessage
		if json.Unmarshal(data, &m) != nil || len(m) == 0 {
			return data
		}
		delete(m, sortedKeys(m)[pos%len(m)])
		out, err := json.Marshal(m)
		if err != nil {
			return data
		}
		return out
	default: // drop one field from one job record
		var m map[string]json.RawMessage
		if json.Unmarshal(data, &m) != nil {
			return data
		}
		var jobs []map[string]json.RawMessage
		if json.Unmarshal(m["jobs"], &jobs) != nil || len(jobs) == 0 {
			return data
		}
		rec := jobs[pos%len(jobs)]
		if len(rec) == 0 {
			return data
		}
		delete(rec, sortedKeys(rec)[int(bit)%len(rec)])
		enc, err := json.Marshal(jobs)
		if err != nil {
			return data
		}
		m["jobs"] = enc
		out, err := json.Marshal(m)
		if err != nil {
			return data
		}
		return out
	}
}

func sortedKeys(m map[string]json.RawMessage) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// FuzzRestoreCorrupt feeds Restore structurally corrupted snapshots —
// truncations, single bit flips, and dropped JSON fields — and holds it
// to its error contract: no panic ever, a descriptive "svc:"-prefixed
// error with a nil core on rejection, and on acceptance a core coherent
// enough to dump and re-snapshot. The committed corpus pins regressions
// this fuzzer has caught: a job record whose state byte was flipped out
// of the JobState range used to index the per-state counts array out of
// bounds instead of being rejected (the range check in Restore is the
// fix).
func FuzzRestoreCorrupt(f *testing.F) {
	f.Add(0, 0, uint8(0))   // empty truncation
	f.Add(0, 200, uint8(0)) // mid-object truncation
	f.Add(1, 12, uint8(1))  // bit flip near the version field
	f.Add(2, 0, uint8(0))   // drop a top-level field
	f.Add(3, 0, uint8(4))   // drop a field from the first job record
	f.Add(1, 150, uint8(0)) // bit flip inside a job record
	f.Add(3, 2, uint8(9))   // drop a field from a later record
	f.Fuzz(func(t *testing.T, mode, pos int, bit uint8) {
		db, _, err := fuzzProfiles()
		if err != nil {
			t.Fatal(err)
		}
		data := corruptSnapshot(baseSnapshot(t), mode, pos, bit)
		restored, err := Restore(bytes.NewReader(data), db)
		if err != nil {
			// Rejection must be total: a descriptive error and no core.
			// Restore builds into a private core and returns nil on any
			// failure, so a caller can never observe half-applied state.
			if restored != nil {
				t.Fatalf("Restore returned an error and a non-nil core: %v", err)
			}
			if !strings.HasPrefix(err.Error(), "svc: ") {
				t.Fatalf("corruption error lacks the svc: prefix: %v", err)
			}
			return
		}
		// Some corruptions are semantically invisible (a bit flip in a
		// float's mantissa, dropping an omitempty field that was already
		// zero). An accepted core must still be fully usable.
		defer restored.Close()
		_ = dumpCore(restored)
		var buf bytes.Buffer
		if err := restored.Snapshot(&buf); err != nil {
			t.Fatalf("re-snapshot of an accepted restore failed: %v", err)
		}
	})
}
