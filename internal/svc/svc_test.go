package svc

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"spreadnshare/internal/app"
	"spreadnshare/internal/hw"
	"spreadnshare/internal/placement"
	"spreadnshare/internal/profiler"
)

func testDB(t *testing.T) (*profiler.DB, hw.NodeSpec) {
	t.Helper()
	spec := hw.DefaultClusterSpec()
	cat, err := app.NewCatalog(spec.Node)
	if err != nil {
		t.Fatal(err)
	}
	db := profiler.NewDB()
	k := profiler.New(spec)
	if err := k.ProfileAll(cat, []string{"MG", "BW", "HC", "EP"}, 16, db); err != nil {
		t.Fatal(err)
	}
	return db, spec.Node
}

func testCore(t *testing.T, policy placement.Policy, nodes int) (*Cluster, *profiler.DB, hw.NodeSpec) {
	t.Helper()
	db, node := testDB(t)
	c, err := New(Config{
		Node: node, Nodes: nodes, Policy: policy,
		MaxScale: 8, ScanDepth: 32, AgingPeriodSec: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c, db, node
}

func spec(db *profiler.DB, program string, nodes int, runtime float64) JobSpec {
	s := JobSpec{
		Program:      program,
		BaseNodes:    nodes,
		CoresPerNode: 16,
		RuntimeSec:   runtime,
		Alpha:        0.9,
		MultiNode:    true,
	}
	if db != nil {
		if p, ok := db.Get(program, 16); ok {
			s.Profile = p
		}
	}
	return s
}

func TestConfigValidation(t *testing.T) {
	_, node := testDB(t)
	cases := []Config{
		{Node: node, Nodes: 0},
		{Node: node, Nodes: -4},
		{Node: node, Nodes: 16, Shards: -1},
		{Nodes: 16}, // zero node spec fails hw validation
	}
	for i, cfg := range cases {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: New(%+v) succeeded, want error", i, cfg)
		}
	}
}

func TestLifecycle(t *testing.T) {
	c, db, _ := testCore(t, placement.SNS, 64)
	model := PolicyRuntime(placement.SNS, c.Config().Node)

	j, err := c.Submit(spec(db, "MG", 4, 100), 0)
	if err != nil {
		t.Fatal(err)
	}
	if j.ID != 0 || j.State != Queued || j.SubmitSec != 0 {
		t.Fatalf("submitted job = %+v", j)
	}
	if got := c.Stats(); got.Submitted != 1 || got.Queued != 1 {
		t.Fatalf("stats after submit = %+v", got)
	}

	placed := c.ScheduleRound(0, model)
	if len(placed) != 1 || placed[0] != j {
		t.Fatalf("round placed %v, want job 0", placed)
	}
	if j.State != Running || j.StartSec != 0 || j.FinishSec <= 0 {
		t.Fatalf("placed job = %+v", j)
	}
	if j.NodesUsed == 0 || len(j.Nodes) != j.NodesUsed {
		t.Fatalf("placed footprint = %+v", j)
	}
	if got := c.Stats(); got.Running != 1 || got.Queued != 0 {
		t.Fatalf("stats after round = %+v", got)
	}

	if err := c.Complete(j.ID, j.FinishSec); err != nil {
		t.Fatal(err)
	}
	if j.State != Done {
		t.Fatalf("state after complete = %s", j.State)
	}
	if got := c.Stats(); got.Done != 1 || got.Running != 0 {
		t.Fatalf("stats after complete = %+v", got)
	}
	// All resources must be back.
	if free := c.MaxFreeCores(); free != c.Config().Node.Cores.Int() {
		t.Fatalf("max free cores after complete = %d", free)
	}

	// Lifecycle violations.
	if err := c.Complete(j.ID, 1); err == nil {
		t.Error("double Complete succeeded")
	}
	if err := c.Cancel(j.ID, 1); err == nil {
		t.Error("Cancel of done job succeeded")
	}
	if err := c.Complete(99, 1); err == nil {
		t.Error("Complete of unknown job succeeded")
	}
}

func TestSubmitValidation(t *testing.T) {
	c, db, node := testCore(t, placement.SNS, 16)
	cases := []JobSpec{
		spec(db, "MG", 0, 100),   // no nodes
		spec(db, "MG", 999, 100), // larger than cluster
		spec(db, "MG", 4, -1),    // negative runtime
		{Program: "MG", BaseNodes: 4, CoresPerNode: 0, RuntimeSec: 1},
		{Program: "MG", BaseNodes: 4, CoresPerNode: node.Cores.Int() + 1, RuntimeSec: 1},
	}
	for i, s := range cases {
		if _, err := c.Submit(s, 0); err == nil {
			t.Errorf("case %d: Submit(%+v) succeeded, want error", i, s)
		}
	}
	if got := c.Submitted(); got != 0 {
		t.Fatalf("rejected submissions were admitted: %d", got)
	}
}

func TestSubmitDeduplicatesByName(t *testing.T) {
	c, db, _ := testCore(t, placement.SNS, 64)
	s := spec(db, "MG", 4, 100)
	s.Name = "job-a"
	first, err := c.Submit(s, 0)
	if err != nil {
		t.Fatal(err)
	}
	again, err := c.Submit(s, 5)
	if !errors.Is(err, ErrDuplicate) {
		t.Fatalf("resubmission error = %v, want ErrDuplicate", err)
	}
	if again != first {
		t.Fatalf("resubmission returned job %d, want %d", again.ID, first.ID)
	}
	if c.Submitted() != 1 || c.QueuedLen() != 1 {
		t.Fatalf("dedup admitted a duplicate: %d submitted, %d queued", c.Submitted(), c.QueuedLen())
	}
	got, ok := c.JobByName("job-a")
	if !ok || got != first {
		t.Fatalf("JobByName = %v, %v", got, ok)
	}
}

func TestCancel(t *testing.T) {
	c, db, _ := testCore(t, placement.SNS, 8)
	model := PolicyRuntime(placement.SNS, c.Config().Node)

	// Fill the cluster so the second job stays queued.
	big, _ := c.Submit(spec(db, "EP", 8, 1000), 0)
	queued, _ := c.Submit(spec(db, "MG", 8, 100), 0)
	c.ScheduleRound(0, model)
	if big.State != Running || queued.State != Queued {
		t.Fatalf("setup: big=%s queued=%s", big.State, queued.State)
	}

	// Cancel the queued job: it must leave the queue.
	if err := c.Cancel(queued.ID, 1); err != nil {
		t.Fatal(err)
	}
	if queued.State != Cancelled || c.QueuedLen() != 0 {
		t.Fatalf("after queued cancel: state=%s queue=%d", queued.State, c.QueuedLen())
	}

	// Cancel the running job: its resources must come back.
	if err := c.Cancel(big.ID, 2); err != nil {
		t.Fatal(err)
	}
	if big.State != Cancelled || big.FinishSec != 2 {
		t.Fatalf("after running cancel: %+v", big)
	}
	if free := c.MaxFreeCores(); free != c.Config().Node.Cores.Int() {
		t.Fatalf("max free cores after cancel = %d", free)
	}
	if got := c.Stats(); got.Cancelled != 2 {
		t.Fatalf("stats = %+v", got)
	}

	// A cancelled job cannot be cancelled again or completed.
	if err := c.Cancel(big.ID, 3); err == nil {
		t.Error("double cancel succeeded")
	}
	if err := c.Complete(big.ID, 3); err == nil {
		t.Error("complete of cancelled job succeeded")
	}
}

// TestBatchedAdmissionEquivalence checks the core invariant directly: a
// burst of submissions at one timestamp drained by a single round places
// exactly what a round after every submission places.
func TestBatchedAdmissionEquivalence(t *testing.T) {
	for _, policy := range []placement.Policy{placement.CE, placement.CS, placement.SNS, placement.TwoSlot} {
		db, node := testDB(t)
		progs := []string{"MG", "BW", "HC", "EP"}
		build := func() (*Cluster, RuntimeModel) {
			c, err := New(Config{
				Node: node, Nodes: 32, Policy: policy,
				MaxScale: 8, ScanDepth: 4, AgingPeriodSec: 1,
			})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(c.Close)
			return c, PolicyRuntime(policy, node)
		}
		serial, serialModel := build()
		batched, batchedModel := build()

		mk := func(i int) JobSpec {
			s := spec(db, progs[i%len(progs)], 1+i%6, float64(50+i*13))
			if policy == placement.TwoSlot {
				s.Intensive = i%3 == 0
			}
			return s
		}
		const burst = 24
		for i := 0; i < burst; i++ {
			if _, err := serial.Submit(mk(i), 0); err != nil {
				t.Fatal(err)
			}
			serial.ScheduleRound(0, serialModel)
			if _, err := batched.Submit(mk(i), 0); err != nil {
				t.Fatal(err)
			}
		}
		batched.ScheduleRound(0, batchedModel)

		if serial.QueuedLen() != batched.QueuedLen() {
			t.Fatalf("%s: queue lengths diverge: serial %d, batched %d",
				policy, serial.QueuedLen(), batched.QueuedLen())
		}
		for i := 0; i < burst; i++ {
			a, _ := serial.Job(i)
			b, _ := batched.Job(i)
			if a.State != b.State || a.Scale != b.Scale || a.FinishSec != b.FinishSec { //lint:floateq bit-identity is the contract under test
				t.Fatalf("%s job %d diverges: serial %+v, batched %+v", policy, i, a, b)
			}
			if len(a.Nodes) != len(b.Nodes) {
				t.Fatalf("%s job %d footprints diverge", policy, i)
			}
			for k := range a.Nodes {
				if a.Nodes[k] != b.Nodes[k] {
					t.Fatalf("%s job %d node sets diverge at %d: %v vs %v", policy, i, k, a.Nodes, b.Nodes)
				}
			}
		}
	}
}

// TestSnapshotRestore round-trips a mid-flight core — running jobs,
// queued jobs, finished and cancelled ones — and checks the restored
// core carries bit-identical state and schedules identically afterwards.
func TestSnapshotRestore(t *testing.T) {
	c, db, _ := testCore(t, placement.SNS, 16)
	model := PolicyRuntime(placement.SNS, c.Config().Node)

	named := spec(db, "MG", 4, 100)
	named.Name = "mg-1"
	c.Submit(named, 0)
	c.Submit(spec(db, "BW", 8, 200), 0)
	c.Submit(spec(db, "HC", 16, 300), 0) // whole cluster: stays queued
	c.ScheduleRound(0, model)
	doneJob, _ := c.Submit(spec(db, "EP", 1, 10), 1)
	c.ScheduleRound(1, model)
	c.Complete(doneJob.ID, doneJob.FinishSec)
	cancelled, _ := c.Submit(spec(db, "EP", 16, 10), 2)
	c.Cancel(cancelled.ID, 3)

	var buf bytes.Buffer
	if err := c.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	r, err := Restore(bytes.NewReader(buf.Bytes()), db)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	if got, want := r.Stats(), c.Stats(); got != want {
		t.Fatalf("restored stats = %+v, want %+v", got, want)
	}
	c.Each(func(orig *Job) {
		got, ok := r.Job(orig.ID)
		if !ok {
			t.Fatalf("job %d lost in restore", orig.ID)
		}
		if got.State != orig.State || got.SubmitSec != orig.SubmitSec || //lint:floateq round-trip must be exact
			got.StartSec != orig.StartSec || got.FinishSec != orig.FinishSec || //lint:floateq round-trip must be exact
			got.Scale != orig.Scale || got.NodesUsed != orig.NodesUsed {
			t.Fatalf("job %d restored as %+v, want %+v", orig.ID, got, orig)
		}
		if got.Spec.Profile == nil && orig.Spec.Profile != nil {
			t.Fatalf("job %d profile not re-resolved", orig.ID)
		}
	})
	if _, ok := r.JobByName("mg-1"); !ok {
		t.Fatal("name index lost in restore")
	}

	// Both cores now release the running jobs and run a round: the
	// queued whole-cluster job must place identically.
	finish := func(core *Cluster) *Job {
		core.Each(func(j *Job) {
			if j.State == Running {
				core.Complete(j.ID, 400)
			}
		})
		placed := core.ScheduleRound(400, model)
		if len(placed) != 1 {
			t.Fatalf("post-restore round placed %d jobs", len(placed))
		}
		return placed[0]
	}
	a, b := finish(c), finish(r)
	if a.ID != b.ID || a.FinishSec != b.FinishSec || len(a.Nodes) != len(b.Nodes) { //lint:floateq bit-identity is the contract under test
		t.Fatalf("post-restore rounds diverge: %+v vs %+v", a, b)
	}
	for i := range a.Nodes {
		if a.Nodes[i] != b.Nodes[i] {
			t.Fatalf("post-restore node sets diverge: %v vs %v", a.Nodes, b.Nodes)
		}
	}
}

func TestSnapshotRestoreRejectsCorruption(t *testing.T) {
	c, db, _ := testCore(t, placement.SNS, 16)
	model := PolicyRuntime(placement.SNS, c.Config().Node)
	c.Submit(spec(db, "MG", 4, 100), 0)
	c.ScheduleRound(0, model)
	var buf bytes.Buffer
	if err := c.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.String()

	cases := map[string]string{
		"garbage":       "not json",
		"version":       strings.Replace(good, `"version":1`, `"version":99`, 1),
		"sparse ids":    strings.Replace(good, `"id":0`, `"id":7`, 1),
		"foreign nodes": strings.Replace(good, `"nodes":[`, `"nodes":[9999,`, 1),
	}
	for name, doc := range cases {
		if doc == good {
			t.Fatalf("case %q did not corrupt the snapshot", name)
		}
		if _, err := Restore(strings.NewReader(doc), db); err == nil {
			t.Errorf("Restore of %s snapshot succeeded, want error", name)
		}
	}

	// Unprofiled program on a live job fails; the pristine doc restores.
	if _, err := Restore(strings.NewReader(good), profiler.NewDB()); err == nil {
		t.Error("Restore with empty profile DB succeeded, want error")
	}
	if _, err := Restore(strings.NewReader(good), db); err != nil {
		t.Errorf("Restore of pristine snapshot failed: %v", err)
	}
}

// TestUniformReservationBatching pins the res0 optimization: a
// non-exclusive uniform placement stores one prototype reservation, not
// a per-node slice.
func TestUniformReservationBatching(t *testing.T) {
	c, db, _ := testCore(t, placement.SNS, 16)
	model := PolicyRuntime(placement.SNS, c.Config().Node)
	j, _ := c.Submit(spec(db, "MG", 4, 100), 0)
	c.ScheduleRound(0, model)
	if j.State != Running {
		t.Fatal("setup: job not placed")
	}
	if !j.uniform || j.res != nil {
		t.Fatalf("SNS footprint stored per-node reservations: uniform=%v res=%v", j.uniform, j.res)
	}
	if j.res0.Cores == 0 {
		t.Fatal("prototype reservation empty")
	}
}
