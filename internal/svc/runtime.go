package svc

import (
	"spreadnshare/internal/hw"
	"spreadnshare/internal/placement"
	"spreadnshare/internal/profiler"
)

// RuntimeModel predicts a placed job's run duration in seconds. The core
// calls it once per launch; simulators schedule the completion event at
// the returned horizon and the daemon arms a timer.
type RuntimeModel func(j *Job, pl *placement.Plan) float64

// PolicyRuntime returns the paper's runtime model for a policy on a node
// spec (previously the trace replay's private model; Section 6.4). The
// job's RuntimeSec is its CE (compact, exclusive) runtime; the program's
// scale profile supplies the corrections:
//
//   - SNS: the profiled exclusive times give the speedup of the chosen
//     scale, and the (c, w, b) reservation protects it from neighbors.
//   - CS: the same scaling ratio (when the footprint was grown), but
//     sharing is unmanaged — the job runs with only its fair share of the
//     LLC, so the profiled IPC ratio at that share becomes a slowdown.
//   - TwoSlot: no scaling; a half-node slot implies half the LLC.
//
// A nil profile (an unprofiled program on the daemon's live path) falls
// back to the base runtime; the trace replay never submits one for the
// policies that read it.
func PolicyRuntime(p placement.Policy, spec hw.NodeSpec) RuntimeModel {
	return func(j *Job, pl *placement.Plan) float64 {
		base := j.Spec.RuntimeSec
		prof := j.Spec.Profile
		switch p {
		case placement.CE:
			return base
		case placement.SNS:
			if prof == nil {
				return base
			}
			bs := baseScale(prof)
			sp, ok := prof.AtK(pl.K)
			if !ok {
				sp = bs
			}
			return base * sp.TimeSec / bs.TimeSec
		case placement.CS:
			if prof == nil {
				return base
			}
			bs := baseScale(prof)
			sp, ok := prof.AtK(pl.K)
			ratio := 1.0
			if ok {
				ratio = sp.TimeSec / bs.TimeSec
			} else {
				sp = bs
			}
			return base * ratio * cachePenalty(sp, fairWays(spec, pl.Cores[0]))
		case placement.TwoSlot:
			if prof == nil {
				return base
			}
			return base * cachePenalty(baseScale(prof), spec.LLCWays.Int()/2)
		}
		return base
	}
}

// baseScale returns the compact-run reference profile (K=1, or the first
// recorded scale when the compact run is missing).
func baseScale(p *profiler.Profile) *profiler.ScaleProfile {
	if sp, ok := p.AtK(1); ok {
		return sp
	}
	return &p.Scales[0]
}

// fairWays is a co-located job's LLC fair share given its core share.
func fairWays(spec hw.NodeSpec, cores int) int {
	w := spec.LLCWays.Int() * cores / spec.Cores.Int()
	if w < 1 {
		w = 1
	}
	return w
}

// cachePenalty is the static unmanaged-sharing slowdown of running with w
// LLC ways instead of the full cache: the profiled IPC ratio.
func cachePenalty(sp *profiler.ScaleProfile, w int) float64 {
	full := sp.IPCAt(sp.FullWays())
	part := sp.IPCAt(w)
	if full <= 0 || part <= 0 {
		return 1
	}
	return full / part
}

// BWIntensive classifies a program for TwoSlot pairing: its compact-run
// bandwidth drains more than a third of the node's peak.
func BWIntensive(p *profiler.Profile, spec hw.NodeSpec) bool {
	base := baseScale(p)
	return base.BWAt(base.FullWays()) > spec.PeakBandwidth.Float64()/3
}
