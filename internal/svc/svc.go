// Package svc is the live scheduler core: the mutable online state of a
// cluster admitting jobs as they arrive, extracted from the trace
// replay's event loop so one admission implementation serves both the
// closed-trace simulators and the long-running daemon (cmd/snsd).
//
// The core owns a placement.SimState (capacity bookkeeping + free-core
// index, optionally sharded or score-cached), the aging placement.Pending
// queue, and the job lifecycle:
//
//	submitted ── Submit ──▶ Queued ── ScheduleRound ──▶ Running ── Complete ──▶ Done
//	                          │                            │
//	                          └────────── Cancel ──────────┴──▶ Cancelled
//
// It is deliberately clock-free: every entry point takes `now` as a
// parameter, so a discrete-event replay drives it with simulated seconds
// and the daemon drives it with wall-derived virtual seconds, and the
// same inputs always produce the same placements (the package is under
// the determinism lint). A Cluster is single-owner: the daemon confines
// it to one scheduler goroutine, the simulators to one event loop.
//
// Batched admission invariant (DESIGN.md "Scheduler as a service"): any
// number of Submit calls at one timestamp followed by one ScheduleRound
// places exactly the jobs, on exactly the nodes, that a ScheduleRound
// after each Submit would have placed — placement is monotone in free
// resources and rounds at a fixed timestamp are idempotent — so a burst
// of thousands of submissions legally drains into a single round.
package svc

import (
	"fmt"

	"spreadnshare/internal/hw"
	"spreadnshare/internal/placement"
	"spreadnshare/internal/profiler"
)

// Config shapes a live cluster core.
type Config struct {
	// Node is the per-node hardware spec; Nodes the cluster size.
	Node  hw.NodeSpec
	Nodes int
	// Policy is the placement strategy every admission round runs.
	Policy placement.Policy
	// MaxScale bounds the scale-factor search (SNS/CS).
	MaxScale int
	// ScanDepth bounds failed placement attempts per round (backfill
	// depth; 0 = unlimited).
	ScanDepth int
	// AgingPeriodSec is the wait that promotes a queued job one
	// priority level (<= 0: one second).
	AgingPeriodSec float64
	// NoScoreCache disables the incremental score cache (the
	// from-scratch reference path; placements are bit-identical).
	NoScoreCache bool
	// Shards, when > 0, partitions the kernel into that many node-range
	// shards scanned concurrently. Takes precedence over the flat score
	// cache.
	Shards int
	// MutWorkers, when > 1, applies wide reservation spans through the
	// parallel mutation pipeline at that worker width (0 or 1 = serial).
	// State is bit-identical at any width; only the cost of wide
	// placements and releases changes.
	MutWorkers int
	// AuditLabel names the runtime invariant auditor attached when
	// auditing is active ("" = "svc").
	AuditLabel string
}

// JobState is a job's position in the core lifecycle. The exhaustive
// lint pass keeps every switch over it covering all four states.
//
//sns:enum
type JobState int32

const (
	// Queued: admitted to the pending queue, not yet placed.
	Queued JobState = iota
	// Running: placed; resources reserved until Complete or Cancel.
	Running
	// Done: completed; resources released.
	Done
	// Cancelled: withdrawn while queued, or killed while running.
	Cancelled
)

// String renders the state for logs and API payloads.
func (s JobState) String() string {
	switch s {
	case Queued:
		return "queued"
	case Running:
		return "running"
	case Done:
		return "done"
	case Cancelled:
		return "cancelled"
	default:
		// Out-of-range defense only — every declared state has an arm
		// above. Naming the raw value beats a bare "invalid" in logs.
		return fmt.Sprintf("JobState(%d)", int(s))
	}
}

// JobSpec describes one job to admit, independent of which layer
// submits it (the trace replay or the daemon's REST handlers).
type JobSpec struct {
	// Name is the client's idempotency handle: a resubmission under a
	// taken name returns the existing job instead of a duplicate ("" =
	// no deduplication).
	Name string `json:"name,omitempty"`
	// Program is the job's program, the key profiles are resolved by.
	Program string `json:"program,omitempty"`
	// BaseNodes is the node footprint at scale factor 1.
	BaseNodes int `json:"base_nodes"`
	// CoresPerNode is the per-node process count at scale 1.
	CoresPerNode int `json:"cores_per_node"`
	// RuntimeSec is the job's base (compact, exclusive) runtime; the
	// policy runtime model scales it for the chosen placement.
	RuntimeSec float64 `json:"runtime_sec"`
	// Alpha is the SNS slowdown threshold for demand estimation.
	Alpha float64 `json:"alpha,omitempty"`
	// Priority is the base queue priority (higher first).
	Priority int `json:"priority,omitempty"`
	// MemGBPerProc is the per-process main-memory demand (0 =
	// unaccounted).
	MemGBPerProc float64 `json:"mem_gb_per_proc,omitempty"`
	// MultiNode permits spreading over more nodes than BaseNodes.
	MultiNode bool `json:"multi_node"`
	// Intensive marks the job shared-resource intensive (TwoSlot).
	Intensive bool `json:"intensive,omitempty"`
	// Profile is the program's scale profile, consulted by SNS
	// placement and the policy runtime models. It is resolved from a
	// profiler.DB, never serialized: snapshots persist Program and
	// Restore re-resolves.
	Profile *profiler.Profile `json:"-"`
}

// Job is one admitted job's live record. Fields are written only by the
// core; callers treat placed node lists as read-only. The statefield
// lint pass proves every field round-trips through jobRecord (or is
// rebuilt on restore).
//
//sns:persist jobRecord
type Job struct {
	// ID is the core-assigned handle: dense, ascending in admission
	// order, and the queue's deterministic tie-break.
	ID   int     `json:"id"`
	Spec JobSpec `json:"spec"`
	// State moves only along the lifecycle edges below; the transition
	// lint pass checks every write site.
	//
	//sns:statemachine Queued>Running,Running>Done,Running>Cancelled,Queued>Cancelled
	State JobState `json:"state"`
	// SubmitSec/StartSec/FinishSec are core timestamps (simulated or
	// virtual seconds). StartSec/FinishSec are zero until placed;
	// FinishSec is the model-predicted completion once Running and the
	// actual completion once Done.
	SubmitSec float64 `json:"submit_sec"`
	StartSec  float64 `json:"start_sec"`
	FinishSec float64 `json:"finish_sec"`
	// Scale is the chosen scale factor; NodesUsed the placed footprint.
	Scale     int `json:"scale,omitempty"`
	NodesUsed int `json:"nodes_used,omitempty"`
	// Nodes is the placed node set, in the kernel's selection order.
	Nodes []int `json:"nodes,omitempty"`

	// req is the kernel request, rebuilt from Spec on restore.
	//
	//sns:derived buildReq
	req placement.Request
	// res/res0/uniform hold the effective reservations to return on
	// completion. The common footprint plan reserves the same amount on
	// every node, recorded once in res0 (a 32K-node replay reserves
	// ~19M node-slots; per-node records for each were the replay's
	// dominant allocation); exclusive and TwoSlot plans resolve per
	// node into res.
	res     []placement.Reservation
	res0    placement.Reservation
	uniform bool
}

// Wait returns submit-to-start (only meaningful once placed).
func (j *Job) Wait() float64 { return j.StartSec - j.SubmitSec }

// Stats is a point-in-time cluster summary.
type Stats struct {
	Nodes        int `json:"nodes"`
	Submitted    int `json:"submitted"`
	Queued       int `json:"queued"`
	Running      int `json:"running"`
	Done         int `json:"done"`
	Cancelled    int `json:"cancelled"`
	MaxFreeCores int `json:"max_free_cores"`
}
