package svc

import (
	"encoding/json"
	"fmt"
	"io"

	"spreadnshare/internal/placement"
	"spreadnshare/internal/profiler"
)

// snapshotVersion guards the wire format; Restore rejects mismatches
// instead of misreading a stale file.
const snapshotVersion = 1

// snapshot is the serialized form of a whole core: configuration, every
// job record (with the effective reservations running jobs must return
// on completion), and the pending queue in its current order. Profiles
// are not serialized — Restore re-resolves them by Program from a
// profiler.DB — and neither is the clock: timestamps are core seconds,
// and the driver that owns the clock persists its own epoch alongside.
type snapshot struct {
	Version int         `json:"version"`
	Config  Config      `json:"config"`
	Jobs    []jobRecord `json:"jobs"`
	Queue   []queueItem `json:"queue"`

	// Capacity carries the raw per-node float capacity arrays. Replaying
	// the surviving reservations reconstructs integer state exactly, but
	// the float accumulators keep rounding residue from completed jobs
	// ((peak-a-b)+a vs peak-b), and those ULPs decide (score, id)
	// placement ties — FuzzSnapshotRoundTrip found a restored core
	// picking different nodes than the live one it cloned. Persisting
	// the floats verbatim makes restore bit-identical. Older snapshots
	// without the field still restore, from replayed reservations alone.
	Capacity *placement.Capacity `json:"capacity,omitempty"`
}

// jobRecord mirrors Job plus its unexported release bookkeeping.
type jobRecord struct {
	ID        int      `json:"id"`
	Spec      JobSpec  `json:"spec"`
	State     JobState `json:"state"`
	SubmitSec float64  `json:"submit_sec"`
	StartSec  float64  `json:"start_sec"`
	FinishSec float64  `json:"finish_sec"`
	Scale     int      `json:"scale,omitempty"`
	NodesUsed int      `json:"nodes_used,omitempty"`
	Nodes     []int    `json:"nodes,omitempty"`

	Uniform bool                    `json:"uniform,omitempty"`
	Res0    placement.Reservation   `json:"res0,omitempty"`
	Res     []placement.Reservation `json:"res,omitempty"`
}

// queueItem mirrors placement.Item.
type queueItem struct {
	ID       int     `json:"id"`
	Submit   float64 `json:"submit"`
	Priority int     `json:"priority,omitempty"`
	Order    int     `json:"order"`
}

// Snapshot serializes the core's full state — every job, the effective
// reservations of running jobs, and the pending queue — so a daemon can
// survive a restart. Take it only between scheduling rounds (the daemon's
// scheduler loop owns the core, so any point in its loop qualifies).
func (c *Cluster) Snapshot(w io.Writer) error {
	s := snapshot{
		Version: snapshotVersion,
		Config:  c.cfg,
		Jobs:    make([]jobRecord, 0, len(c.jobs)),
	}
	for _, j := range c.jobs {
		s.Jobs = append(s.Jobs, jobRecord{
			ID:        j.ID,
			Spec:      j.Spec,
			State:     j.State,
			SubmitSec: j.SubmitSec,
			StartSec:  j.StartSec,
			FinishSec: j.FinishSec,
			Scale:     j.Scale,
			NodesUsed: j.NodesUsed,
			Nodes:     j.Nodes,
			Uniform:   j.uniform,
			Res0:      j.res0,
			Res:       j.res,
		})
	}
	capState := c.state.ExportCapacity()
	s.Capacity = &capState
	c.pending.Each(func(it placement.Item) {
		s.Queue = append(s.Queue, queueItem{
			ID: it.ID, Submit: it.Submit, Priority: it.Priority, Order: it.Order,
		})
	})
	enc := json.NewEncoder(w)
	return enc.Encode(&s)
}

// Restore rebuilds a core from a Snapshot stream: jobs are re-admitted
// with their recorded lifecycle, running jobs re-apply their effective
// reservations and the float capacity arrays are then installed
// verbatim (bit-identical capacity state, rounding residue and all),
// and the pending queue
// comes back in its snapshotted order, so the next scheduling round
// behaves exactly as it would have on the original process. Profiles are
// re-resolved from db by program name; db may be nil when no job carries
// a program. Like New, it runs before the rebuilt core has an owner
// goroutine, so it may mutate core state freely.
//
//sns:ownerinit
func Restore(r io.Reader, db *profiler.DB) (*Cluster, error) {
	var s snapshot
	dec := json.NewDecoder(r)
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("svc: decoding snapshot: %w", err)
	}
	if s.Version != snapshotVersion {
		return nil, fmt.Errorf("svc: snapshot version %d, this build reads %d", s.Version, snapshotVersion)
	}
	c, err := New(s.Config)
	if err != nil {
		return nil, fmt.Errorf("svc: restoring config: %w", err)
	}
	for i := range s.Jobs {
		rec := &s.Jobs[i]
		if rec.ID != i {
			return nil, fmt.Errorf("svc: snapshot job %d carries id %d (records must be dense and ordered)", i, rec.ID)
		}
		if rec.State < Queued || rec.State > Cancelled {
			// A corrupt record would otherwise index the counts array
			// out of range below.
			return nil, fmt.Errorf("svc: snapshot job %d carries invalid state %d", rec.ID, int(rec.State))
		}
		spec := rec.Spec
		if spec.Program != "" && db != nil {
			if p, ok := db.Get(spec.Program, spec.CoresPerNode); ok {
				spec.Profile = p
			} else if c.cfg.Policy != placement.CE && (rec.State == Queued || rec.State == Running) {
				return nil, fmt.Errorf("svc: snapshot job %d program %q unprofiled at %d cores",
					rec.ID, spec.Program, spec.CoresPerNode)
			}
		}
		j := &Job{
			ID:   rec.ID,
			Spec: spec,
			//lint:transition a record's state was reached through checked transitions before the snapshot
			State:     rec.State,
			SubmitSec: rec.SubmitSec,
			StartSec:  rec.StartSec,
			FinishSec: rec.FinishSec,
			Scale:     rec.Scale,
			NodesUsed: rec.NodesUsed,
			Nodes:     rec.Nodes,
			uniform:   rec.Uniform,
			res0:      rec.Res0,
			res:       rec.Res,
		}
		j.req = c.buildReq(&j.Spec)
		c.jobs = append(c.jobs, j)
		if spec.Name != "" {
			c.byName[spec.Name] = j.ID
		}
		c.counts[j.State]++
		if j.State != Running {
			continue
		}
		// Re-apply the effective reservations. Exclusive takes were
		// already resolved to concrete core counts when first reserved,
		// so the replayed form must not re-resolve against the (still
		// idle) restored nodes.
		for _, id := range j.Nodes {
			if id < 0 || id >= c.cfg.Nodes {
				return nil, fmt.Errorf("svc: snapshot job %d placed on node %d of a %d-node cluster",
					j.ID, id, c.cfg.Nodes)
			}
		}
		if j.uniform {
			c.state.ReserveSpan(j.Nodes, j.res0)
		} else {
			if len(j.res) != len(j.Nodes) {
				return nil, fmt.Errorf("svc: snapshot job %d has %d reservations for %d nodes",
					j.ID, len(j.res), len(j.Nodes))
			}
			for i, id := range j.Nodes {
				eff := j.res[i]
				eff.Exclusive = false
				c.state.Reserve(id, eff)
			}
		}
	}
	// Overwrite the float capacity arrays with the snapshotted values:
	// reservation replay above rebuilt integer state exactly but cannot
	// reproduce the rounding residue completed jobs left in the float
	// accumulators, and that residue participates in placement ties.
	if s.Capacity != nil {
		if err := c.state.ImportCapacity(*s.Capacity); err != nil {
			return nil, fmt.Errorf("svc: restoring capacity: %w", err)
		}
	}
	for _, it := range s.Queue {
		j, ok := c.Job(it.ID)
		if !ok || j.State != Queued {
			return nil, fmt.Errorf("svc: snapshot queues job %d, which is not a queued job", it.ID)
		}
		c.pending.Push(it.ID, it.Submit, it.Priority, it.Order)
	}
	if q := c.pending.Len(); q != c.counts[Queued] {
		return nil, fmt.Errorf("svc: snapshot queues %d jobs but %d are in state queued", q, c.counts[Queued])
	}
	return c, nil
}
