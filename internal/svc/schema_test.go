package svc

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// schemaField is one field of a persisted struct as it appears on the
// wire: the Go name, the json tag (empty when the Go name is used
// verbatim), and the Go type. A change to any of these changes what
// Snapshot writes and what Restore will accept.
type schemaField struct {
	Name string `json:"name"`
	JSON string `json:"json,omitempty"`
	Type string `json:"type"`
}

// snapshotSchema is the golden fingerprint of the snapshot wire format:
// the version constant plus the reflected shape of every struct that
// crosses the Snapshot/Restore boundary. json.Marshal sorts the Types
// map keys and fields stay in declaration order, so the encoding is
// canonical.
type snapshotSchema struct {
	SnapshotVersion int                      `json:"snapshot_version"`
	Types           map[string][]schemaField `json:"types"`
}

func structSchema(t reflect.Type) []schemaField {
	fields := make([]schemaField, 0, t.NumField())
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		tag := f.Tag.Get("json")
		fields = append(fields, schemaField{Name: f.Name, JSON: tag, Type: f.Type.String()})
	}
	return fields
}

func currentSnapshotSchema() snapshotSchema {
	return snapshotSchema{
		SnapshotVersion: snapshotVersion,
		Types: map[string][]schemaField{
			"snapshot":  structSchema(reflect.TypeOf(snapshot{})),
			"jobRecord": structSchema(reflect.TypeOf(jobRecord{})),
			"queueItem": structSchema(reflect.TypeOf(queueItem{})),
		},
	}
}

// TestSnapshotSchema pins the snapshot wire format against the golden
// file testdata/snapshot.schema.json. Renaming, retyping, adding, or
// removing a persisted field fails this test until the change is made
// deliberate: bump snapshotVersion (old files must be rejected, not
// misread) and regenerate the golden with
//
//	UPDATE_SNAPSHOT_SCHEMA=1 go test ./internal/svc -run TestSnapshotSchema
//
// Regeneration refuses to rewrite the golden when the field set changed
// but snapshotVersion did not — the version bump is the point of the
// gate, not a formality. Purely compatible additions (a new omitempty
// field that old readers ignore and Restore defaults) may keep the
// version, but that exception must be claimed explicitly by deleting
// the golden before regenerating.
func TestSnapshotSchema(t *testing.T) {
	golden := filepath.Join("testdata", "snapshot.schema.json")
	cur := currentSnapshotSchema()
	got, err := json.MarshalIndent(cur, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')

	old, readErr := os.ReadFile(golden)
	if os.Getenv("UPDATE_SNAPSHOT_SCHEMA") == "1" {
		if readErr == nil {
			var prev snapshotSchema
			if err := json.Unmarshal(old, &prev); err != nil {
				t.Fatalf("existing golden %s is not valid JSON: %v", golden, err)
			}
			if !reflect.DeepEqual(prev.Types, cur.Types) && prev.SnapshotVersion == cur.SnapshotVersion {
				t.Fatalf("snapshot field set changed but snapshotVersion is still %d; "+
					"bump snapshotVersion in snapshot.go before regenerating %s "+
					"(or delete the golden first if the change is provably compatible)",
					cur.SnapshotVersion, golden)
			}
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", golden)
		return
	}
	if readErr != nil {
		t.Fatalf("missing golden %s (%v); generate it with UPDATE_SNAPSHOT_SCHEMA=1", golden, readErr)
	}
	if !bytes.Equal(old, got) {
		t.Fatalf("snapshot wire schema drifted from %s.\n"+
			"If the change is intentional, bump snapshotVersion and regenerate with\n"+
			"  UPDATE_SNAPSHOT_SCHEMA=1 go test ./internal/svc -run TestSnapshotSchema\n"+
			"-- golden --\n%s\n-- current --\n%s", golden, old, got)
	}
}
