// Package api serves a live scheduler core (internal/svc) over an
// asynchronous REST protocol, in the style of storage daemons like
// heketi: mutations return 202 Accepted with a pollable operation ID,
// and a single scheduler goroutine owns the core, draining bursts of
// accepted submissions into one batched admission round each.
//
// The daemon clock is virtual: Timescale virtual seconds elapse per wall
// second, so a replayed workload of simulated hours drives the same core
// logic in test seconds. All job timestamps in API payloads are virtual
// core seconds.
package api

import (
	"container/heap"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"spreadnshare/internal/placement"
	"spreadnshare/internal/profiler"
	"spreadnshare/internal/svc"
)

// Config shapes a daemon around a core.
type Config struct {
	// Core is the live cluster; the server takes sole ownership (its
	// scheduler goroutine becomes the only toucher).
	Core *svc.Cluster
	// Model predicts placed-job runtimes; completions fire at the
	// predicted horizon on the virtual clock.
	Model svc.RuntimeModel
	// DB resolves submitted programs to scale profiles: profiles never
	// travel over the wire, so every spec naming a Program is looked up
	// here at admission. May be nil only under CE (which reads no
	// profiles).
	DB *profiler.DB
	// Timescale is virtual seconds per wall second (<= 0: 1). Large
	// values compress long workloads into short walls.
	Timescale float64
	// MaxBatch bounds how many accepted mutations one admission round
	// drains (<= 0: 4096).
	MaxBatch int
	// MaxPendingOps is the admission throttle: mutation requests beyond
	// this many unapplied ops are refused with 429 (<= 0: 8192).
	MaxPendingOps int
	// SnapshotPath, when set, is where the daemon persists its state on
	// shutdown and on POST /v1/snapshot (written atomically).
	SnapshotPath string
}

func (cfg *Config) defaults() {
	if cfg.Timescale <= 0 {
		cfg.Timescale = 1
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 4096
	}
	if cfg.MaxPendingOps <= 0 {
		cfg.MaxPendingOps = 8192
	}
}

// ErrShuttingDown is returned to requests that arrive during shutdown.
var ErrShuttingDown = errors.New("api: daemon is shutting down")

// Server is the daemon: an http.Handler plus the scheduler goroutine
// that owns the core. Construct with New or Load, call Start, serve it,
// and Shutdown to drain and (when configured) snapshot.
type Server struct {
	cfg   Config
	mux   *http.ServeMux
	ops   *opTable
	cmds  chan func(now float64)
	quit  chan struct{}
	done  chan struct{}
	once  sync.Once
	reqID atomic.Int64

	// clock is written only during construction (//sns:ownerinit); after
	// Start it is read-only, so handlers may stamp ops with clock.now().
	clock clock
	// fin is the completion heap, owned by the scheduler goroutine.
	//
	//sns:owner scheduler
	fin finishHeap
	// due is completeDue's batch scratch: the ids of one same-horizon
	// completion clump, handed to ReleaseRound as a unit.
	//
	//sns:owner scheduler
	due []int
	// stopErr is written by the scheduler goroutine during drainAndStop;
	// Shutdown reads it only after <-done orders the write before it.
	//
	//sns:owner scheduler
	stopErr error
}

// clock maps wall time to virtual core seconds.
type clock struct {
	start time.Time
	base  float64
	scale float64
}

func (c clock) now() float64 {
	return c.base + time.Since(c.start).Seconds()*c.scale
}

// New builds a daemon over a fresh (or externally prepared) core. It
// runs before the scheduler goroutine exists, so it may touch the core
// and the scheduler state freely.
//
//sns:ownerinit
func New(cfg Config) (*Server, error) {
	if cfg.Core == nil {
		return nil, errors.New("api: config needs a core")
	}
	if cfg.Model == nil {
		return nil, errors.New("api: config needs a runtime model")
	}
	cfg.defaults()
	s := &Server{
		cfg:  cfg,
		ops:  newOpTable(),
		cmds: make(chan func(now float64), cfg.MaxBatch),
		quit: make(chan struct{}),
		done: make(chan struct{}),
		clock: clock{
			start: time.Now(),
			scale: cfg.Timescale,
		},
	}
	// Cores handed over mid-flight (Load, or a caller that pre-ran
	// rounds) carry running jobs whose completions must still fire, and
	// the virtual clock must resume past every timestamp already dealt
	// out — but not past running jobs' predicted finishes, which are
	// legitimately in the future.
	cfg.Core.Each(func(j *svc.Job) {
		if j.State == svc.Running {
			heap.Push(&s.fin, finishEntry{id: j.ID, finish: j.FinishSec})
		} else if j.FinishSec > s.clock.base {
			s.clock.base = j.FinishSec
		}
		if j.SubmitSec > s.clock.base {
			s.clock.base = j.SubmitSec
		}
		if j.StartSec > s.clock.base {
			s.clock.base = j.StartSec
		}
	})
	s.routes()
	return s, nil
}

// Load rebuilds a daemon from the snapshot at cfg.SnapshotPath: the core
// (with every reservation re-applied), the op table, and the virtual
// clock epoch. Profiles are re-resolved from db. Like New, it runs
// before the scheduler goroutine exists.
//
//sns:ownerinit
func Load(cfg Config, db *profiler.DB) (*Server, error) {
	if cfg.SnapshotPath == "" {
		return nil, errors.New("api: Load needs a snapshot path")
	}
	f, err := os.Open(cfg.SnapshotPath)
	if err != nil {
		return nil, fmt.Errorf("api: opening snapshot: %w", err)
	}
	defer f.Close()
	var snap daemonSnapshot
	if err := json.NewDecoder(f).Decode(&snap); err != nil {
		return nil, fmt.Errorf("api: decoding snapshot: %w", err)
	}
	if snap.Version != daemonSnapshotVersion {
		return nil, fmt.Errorf("api: snapshot version %d, this build reads %d", snap.Version, daemonSnapshotVersion)
	}
	core, err := svc.Restore(bytesReader(snap.Core), db)
	if err != nil {
		return nil, err
	}
	cfg.Core = core
	s, err := New(cfg)
	if err != nil {
		core.Close()
		return nil, err
	}
	s.ops.load(snap.Ops)
	if snap.NowSec > s.clock.base {
		s.clock.base = snap.NowSec
	}
	return s, nil
}

func bytesReader(raw json.RawMessage) io.Reader {
	return &byteReader{b: raw}
}

type byteReader struct {
	b   []byte
	off int
}

func (r *byteReader) Read(p []byte) (int, error) {
	if r.off >= len(r.b) {
		return 0, io.EOF
	}
	n := copy(p, r.b[r.off:])
	r.off += n
	return n, nil
}

// Start launches the scheduler goroutine. Serve the server (it is an
// http.Handler) only after Start.
func (s *Server) Start() {
	go s.run()
}

// Shutdown stops the scheduler goroutine: it drains every accepted
// mutation (no op that got a 202 is lost), runs a final round, writes
// the snapshot when configured, and releases the core's worker pool.
// Stop the HTTP listener before calling it; requests racing shutdown get
// 503.
func (s *Server) Shutdown() error {
	s.once.Do(func() { close(s.quit) })
	<-s.done
	//lint:confine read after <-s.done: the scheduler goroutine's exit (and its stopErr write) happens-before this load
	return s.stopErr
}

// Nodes returns the served cluster's size. It reads configuration, not
// mutable core state, so it is safe from any goroutine.
func (s *Server) Nodes() int {
	//lint:confine Config copies the immutable construction-time config; no mutable core state is read
	return s.cfg.Core.Config().Nodes
}

// ServeHTTP implements http.Handler with the daemon middleware applied.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.withRequestID(s.withThrottle(s.mux)).ServeHTTP(w, r)
}

// ---- scheduler goroutine ----

// finishEntry orders running jobs by predicted completion; ties break by
// job ID so completion order is deterministic.
type finishEntry struct {
	id     int
	finish float64
}

type finishHeap []finishEntry

func (h finishHeap) Len() int { return len(h) }
func (h finishHeap) Less(i, j int) bool {
	if h[i].finish != h[j].finish {
		return h[i].finish < h[j].finish
	}
	return h[i].id < h[j].id
}
func (h finishHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *finishHeap) Push(x any)   { *h = append(*h, x.(finishEntry)) }
func (h *finishHeap) Pop() any     { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

// run is the scheduler goroutine: the one context that owns the core
// and the completion heap. The annotation is the trust root the confine
// pass builds its proof from; Start spawning exactly this function is
// what makes it true.
//
//sns:goroutine scheduler core
func (s *Server) run() {
	defer close(s.done)
	for {
		var timerC <-chan time.Time
		var timer *time.Timer
		if len(s.fin) > 0 {
			delay := (s.fin[0].finish - s.clock.now()) / s.cfg.Timescale
			if delay < 0 {
				delay = 0
			}
			timer = time.NewTimer(time.Duration(delay * float64(time.Second)))
			timerC = timer.C
		}
		select {
		case cmd := <-s.cmds:
			now := s.clock.now()
			cmd(now)
			// Drain the burst: every mutation already accepted joins
			// this round, so a thousand concurrent submissions cost one
			// queue pass, not a thousand.
			for n := 1; n < s.cfg.MaxBatch; n++ {
				select {
				case more := <-s.cmds:
					more(now)
				default:
					n = s.cfg.MaxBatch
				}
			}
			s.completeDue(now)
			s.round(now)
		case <-timerC:
			now := s.clock.now()
			s.completeDue(now)
			s.round(now)
		case <-s.quit:
			if timer != nil {
				timer.Stop()
			}
			s.drainAndStop()
			return
		}
		if timer != nil {
			timer.Stop()
		}
	}
}

// completeDue fires every completion at or before the virtual now. Jobs
// complete at their predicted horizon (not the wall-derived now), so the
// recorded finish times match what a simulation of the same stream
// produces. Heads sharing one predicted horizon drain into a single
// batched release round: the heap pops them in (finish, id) order
// either way and the caller runs the one admission round afterwards, so
// the batch is exactly the per-entry loop with fewer calls — and each
// job's span still releases through the parallel mutation pipeline when
// the core has one.
func (s *Server) completeDue(now float64) {
	s.due = s.due[:0]
	for len(s.fin) > 0 && s.fin[0].finish <= now {
		finish := s.fin[0].finish
		for len(s.fin) > 0 && s.fin[0].finish == finish { //lint:floateq exact tie = one release round
			e := heap.Pop(&s.fin).(finishEntry)
			j, ok := s.cfg.Core.Job(e.id)
			if !ok || j.State != svc.Running {
				continue // cancelled while running: already released
			}
			s.due = append(s.due, e.id)
		}
		if err := s.cfg.Core.ReleaseRound(s.due, finish); err != nil {
			panic(err) // the heap only holds running jobs
		}
		s.due = s.due[:0]
	}
}

// round runs one admission round and arms completions for its placements.
func (s *Server) round(now float64) {
	for _, j := range s.cfg.Core.ScheduleRound(now, s.cfg.Model) {
		heap.Push(&s.fin, finishEntry{id: j.ID, finish: j.FinishSec})
	}
}

// drainAndStop applies every accepted mutation, runs a final round,
// snapshots, and closes the core.
func (s *Server) drainAndStop() {
	now := s.clock.now()
	for {
		select {
		case cmd := <-s.cmds:
			cmd(now)
			continue
		default:
		}
		break
	}
	s.completeDue(now)
	s.round(now)
	if s.cfg.SnapshotPath != "" {
		s.stopErr = s.writeSnapshot(now)
	}
	s.cfg.Core.Close()
}

// exec hands a mutation to the scheduler goroutine: closures passed
// here execute on it (run drains cmds), which is what lets handlers
// touch the core inside them.
//
//sns:dispatch scheduler core
func (s *Server) exec(fn func(now float64)) error {
	select {
	case <-s.quit:
		return ErrShuttingDown
	case s.cmds <- fn:
		return nil
	}
}

// view runs a read on the scheduler goroutine and waits for it, so
// handlers never touch the core concurrently.
//
//sns:dispatch scheduler core
func (s *Server) view(fn func(now float64)) error {
	ready := make(chan struct{})
	if err := s.exec(func(now float64) {
		fn(now)
		close(ready)
	}); err != nil {
		return err
	}
	<-ready
	return nil
}

// ---- snapshot ----

const daemonSnapshotVersion = 1

// daemonSnapshot wraps the core snapshot with the daemon's own state:
// the op table and the virtual clock position.
type daemonSnapshot struct {
	Version int             `json:"version"`
	NowSec  float64         `json:"now_sec"`
	Ops     []Op            `json:"ops"`
	Core    json.RawMessage `json:"core"`
}

// writeSnapshot persists daemon state atomically (temp file + rename).
// Only the scheduler goroutine calls it, so the core is quiescent.
func (s *Server) writeSnapshot(now float64) error {
	var core bytesBuffer
	if err := s.cfg.Core.Snapshot(&core); err != nil {
		return err
	}
	snap := daemonSnapshot{
		Version: daemonSnapshotVersion,
		NowSec:  now,
		Ops:     s.ops.all(),
		Core:    json.RawMessage(core.b),
	}
	raw, err := json.Marshal(&snap)
	if err != nil {
		return err
	}
	tmp := s.cfg.SnapshotPath + ".tmp"
	if err := os.WriteFile(tmp, raw, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, s.cfg.SnapshotPath)
}

type bytesBuffer struct{ b []byte }

func (w *bytesBuffer) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}

// ---- middleware ----

// requestIDHeader propagates a caller-chosen correlation ID through op
// records and responses; the daemon mints one when absent.
const requestIDHeader = "X-Request-Id"

func (s *Server) withRequestID(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get(requestIDHeader)
		if id == "" {
			id = "req-" + strconv.FormatInt(s.reqID.Add(1), 10)
			r.Header.Set(requestIDHeader, id)
		}
		w.Header().Set(requestIDHeader, id)
		next.ServeHTTP(w, r)
	})
}

// withThrottle refuses mutations while too many accepted ops await the
// scheduler goroutine — backpressure instead of an unbounded op table.
func (s *Server) withThrottle(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost || r.Method == http.MethodDelete {
			if s.ops.pendingCount() >= s.cfg.MaxPendingOps {
				w.Header().Set("Retry-After", "1")
				writeErr(w, http.StatusTooManyRequests, errors.New("api: too many pending operations"))
				return
			}
		}
		next.ServeHTTP(w, r)
	})
}

// ---- handlers ----

func (s *Server) routes() {
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /v1/ops/{id}", s.handleOp)
	s.mux.HandleFunc("GET /v1/cluster", s.handleCluster)
	s.mux.HandleFunc("POST /v1/snapshot", s.handleSnapshot)
	s.mux.HandleFunc("GET /v1/debug/goroutines", handleGoroutines)
}

// handleGoroutines reports the process goroutine count, for leak checks:
// the smoke test baselines it after startup and asserts the post-load
// count returns to (near) the baseline, so an orphaned goroutine per
// request fails the gate instead of accumulating silently.
func handleGoroutines(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]int{"goroutines": runtime.NumGoroutine()})
}

// JobView is a job payload: the core record plus the state rendered for
// humans.
type JobView struct {
	svc.Job
	StateName string `json:"state_name"`
}

func viewOf(j *svc.Job) JobView {
	return JobView{Job: *j, StateName: j.State.String()}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	// The status line is already on the wire; an encode failure here is
	// a dead client connection, which the server loop already surfaces.
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

// handleSubmit accepts a JobSpec, registers a pending op, and returns
// 202 with the op's location. The job is admitted (and possibly placed)
// when the scheduler goroutine drains the op into its next batched
// round. Specs with a Name are idempotent: a retry of an already-applied
// submission resolves to the existing job.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec svc.JobSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("api: decoding job spec: %w", err))
		return
	}
	op := s.ops.create("submit", r.Header.Get(requestIDHeader), -1, s.clock.now())
	err := s.exec(func(now float64) {
		if err := s.resolveProfile(&spec); err != nil {
			s.ops.resolve(op.ID, -1, false, err, now)
			return
		}
		j, err := s.cfg.Core.Submit(spec, now)
		deduped := errors.Is(err, svc.ErrDuplicate)
		if deduped {
			err = nil // idempotent retry: resolve to the existing job
		}
		id := -1
		if j != nil {
			id = j.ID
		}
		s.ops.resolve(op.ID, id, deduped, err, now)
	})
	if err != nil {
		s.ops.resolve(op.ID, -1, false, err, s.clock.now())
		writeErr(w, http.StatusServiceUnavailable, err)
		return
	}
	w.Header().Set("Location", "/v1/ops/"+op.ID)
	writeJSON(w, http.StatusAccepted, op)
}

// resolveProfile looks a spec's program up in the daemon's profile DB.
// Profiles never travel over the wire; every policy but CE needs one for
// its placement search or runtime model, so an unprofiled program is an
// admission failure, not a silent unprotected placement.
func (s *Server) resolveProfile(spec *svc.JobSpec) error {
	if spec.Profile != nil || s.cfg.Core.Config().Policy == placement.CE {
		return nil
	}
	if s.cfg.DB != nil && spec.Program != "" {
		if p, ok := s.cfg.DB.Get(spec.Program, spec.CoresPerNode); ok {
			spec.Profile = p
			return nil
		}
	}
	return fmt.Errorf("api: program %q unprofiled at %d cores", spec.Program, spec.CoresPerNode)
}

// handleCancel is the submit path's mirror for withdrawal. Like
// handleJob, it takes a numeric ID or a job name; name resolution
// happens on the scheduler goroutine with the cancel itself, so the
// lookup and the withdrawal see one consistent state.
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("id")
	id, idErr := strconv.Atoi(key)
	if idErr != nil {
		id = -1
	}
	op := s.ops.create("cancel", r.Header.Get(requestIDHeader), id, s.clock.now())
	err := s.exec(func(now float64) {
		if idErr != nil {
			j, ok := s.cfg.Core.JobByName(key)
			if !ok {
				s.ops.resolve(op.ID, -1, false, fmt.Errorf("api: no job %q", key), now)
				return
			}
			id = j.ID
		}
		s.ops.resolve(op.ID, id, false, s.cfg.Core.Cancel(id, now), now)
	})
	if err != nil {
		s.ops.resolve(op.ID, id, false, err, s.clock.now())
		writeErr(w, http.StatusServiceUnavailable, err)
		return
	}
	w.Header().Set("Location", "/v1/ops/"+op.ID)
	writeJSON(w, http.StatusAccepted, op)
}

func (s *Server) handleOp(w http.ResponseWriter, r *http.Request) {
	op, ok := s.ops.get(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("api: no op %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, op)
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	// Names resolve too, so idempotent clients can look up their jobs
	// without holding the numeric ID.
	key := r.PathValue("id")
	var view JobView
	found := false
	err := s.view(func(now float64) {
		if id, err := strconv.Atoi(key); err == nil {
			if j, ok := s.cfg.Core.Job(id); ok {
				view, found = viewOf(j), true
			}
			return
		}
		if j, ok := s.cfg.Core.JobByName(key); ok {
			view, found = viewOf(j), true
		}
	})
	if err != nil {
		writeErr(w, http.StatusServiceUnavailable, err)
		return
	}
	if !found {
		writeErr(w, http.StatusNotFound, fmt.Errorf("api: no job %q", key))
		return
	}
	writeJSON(w, http.StatusOK, view)
}

func (s *Server) handleCluster(w http.ResponseWriter, r *http.Request) {
	var stats svc.Stats
	if err := s.view(func(now float64) { stats = s.cfg.Core.Stats() }); err != nil {
		writeErr(w, http.StatusServiceUnavailable, err)
		return
	}
	writeJSON(w, http.StatusOK, stats)
}

// handleSnapshot persists the daemon synchronously (between rounds, on
// the scheduler goroutine) so operators can checkpoint mid-load.
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if s.cfg.SnapshotPath == "" {
		writeErr(w, http.StatusConflict, errors.New("api: daemon has no snapshot path"))
		return
	}
	var snapErr error
	if err := s.view(func(now float64) { snapErr = s.writeSnapshot(now) }); err != nil {
		writeErr(w, http.StatusServiceUnavailable, err)
		return
	}
	if snapErr != nil {
		writeErr(w, http.StatusInternalServerError, snapErr)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"path": s.cfg.SnapshotPath})
}
