package api

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"spreadnshare/internal/app"
	"spreadnshare/internal/hw"
	"spreadnshare/internal/placement"
	"spreadnshare/internal/profiler"
	"spreadnshare/internal/svc"
)

func testDB(t *testing.T) (*profiler.DB, hw.NodeSpec) {
	t.Helper()
	spec := hw.DefaultClusterSpec()
	cat, err := app.NewCatalog(spec.Node)
	if err != nil {
		t.Fatal(err)
	}
	db := profiler.NewDB()
	k := profiler.New(spec)
	if err := k.ProfileAll(cat, []string{"MG", "BW", "HC", "EP"}, 16, db); err != nil {
		t.Fatal(err)
	}
	return db, spec.Node
}

// startDaemon builds a daemon over a fresh SNS core and serves it from
// an httptest listener. Timescale compresses simulated hours into test
// milliseconds.
func startDaemon(t *testing.T, nodes int, snapshotPath string) (*Server, *Client, *profiler.DB) {
	t.Helper()
	db, node := testDB(t)
	core, err := svc.New(svc.Config{
		Node: node, Nodes: nodes, Policy: placement.SNS,
		MaxScale: 8, ScanDepth: 32, AgingPeriodSec: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{
		Core:         core,
		Model:        svc.PolicyRuntime(placement.SNS, node),
		DB:           db,
		Timescale:    10000,
		SnapshotPath: snapshotPath,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		srv.Shutdown()
	})
	return srv, NewClient(ts.URL), db
}

func mgSpec(name string, nodes int) svc.JobSpec {
	return svc.JobSpec{
		Name: name, Program: "MG", BaseNodes: nodes, CoresPerNode: 16,
		RuntimeSec: 100, Alpha: 0.9, MultiNode: true,
	}
}

func TestSubmitPollLifecycle(t *testing.T) {
	_, c, _ := startDaemon(t, 32, "")

	op, err := c.Submit(mgSpec("job-a", 4))
	if err != nil {
		t.Fatal(err)
	}
	if op.Status != OpPending || op.Kind != "submit" {
		t.Fatalf("accepted op = %+v", op)
	}
	done, err := c.WaitOp(op.ID)
	if err != nil {
		t.Fatal(err)
	}
	if done.JobID < 0 || done.Deduped {
		t.Fatalf("resolved op = %+v", done)
	}

	// The job places and (at timescale 10000) completes within wall
	// milliseconds.
	deadline := time.Now().Add(5 * time.Second)
	for {
		v, err := c.Job(done.JobID)
		if err != nil {
			t.Fatal(err)
		}
		if v.StateName == "done" {
			if v.FinishSec <= v.StartSec {
				t.Fatalf("done job has no duration: %+v", v)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", v.StateName)
		}
		time.Sleep(time.Millisecond)
	}

	// Name lookup resolves to the same job.
	byName, err := c.JobByName("job-a")
	if err != nil || byName.ID != done.JobID {
		t.Fatalf("JobByName = %+v, %v", byName, err)
	}

	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Submitted != 1 || st.Done != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSubmitIdempotency(t *testing.T) {
	_, c, _ := startDaemon(t, 32, "")
	first, err := c.SubmitWait(mgSpec("dup", 4))
	if err != nil {
		t.Fatal(err)
	}
	op, err := c.Submit(mgSpec("dup", 4))
	if err != nil {
		t.Fatal(err)
	}
	op, err = c.WaitOp(op.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !op.Deduped || op.JobID != first {
		t.Fatalf("retry op = %+v, want dedup to job %d", op, first)
	}
	st, _ := c.Stats()
	if st.Submitted != 1 {
		t.Fatalf("duplicate admitted: %+v", st)
	}
}

func TestSubmitFailures(t *testing.T) {
	_, c, _ := startDaemon(t, 8, "")
	// Unprofiled program fails at admission, asynchronously.
	op, err := c.Submit(svc.JobSpec{
		Program: "NOPE", BaseNodes: 2, CoresPerNode: 16, RuntimeSec: 5, MultiNode: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.WaitOp(op.ID); err == nil {
		t.Error("unprofiled submission resolved successfully")
	}
	// Oversized job fails core validation.
	op, err = c.Submit(mgSpec("big", 9999))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.WaitOp(op.ID); err == nil {
		t.Error("oversized submission resolved successfully")
	}
	// Malformed body fails synchronously.
	resp, err := http.Post(c.Base+"/v1/jobs", "application/json", http.NoBody)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty body accepted with %d", resp.StatusCode)
	}
}

func TestCancelEndpoint(t *testing.T) {
	_, c, _ := startDaemon(t, 8, "")
	id, err := c.SubmitWait(mgSpec("victim", 2))
	if err != nil {
		t.Fatal(err)
	}
	op, err := c.Cancel(id)
	if err != nil {
		t.Fatal(err)
	}
	if op, err = c.WaitOp(op.ID); err != nil {
		// The job may have completed first at this timescale; a failed
		// cancel of a done job is the correct answer then.
		v, verr := c.Job(id)
		if verr != nil || v.StateName != "done" {
			t.Fatalf("cancel failed on a %v job: %v", v.StateName, err)
		}
		return
	}
	v, err := c.Job(id)
	if err != nil {
		t.Fatal(err)
	}
	if v.StateName != "cancelled" {
		t.Fatalf("job after cancel = %s", v.StateName)
	}
	// Unknown job: op resolves failed.
	op, err = c.Cancel(9999)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.WaitOp(op.ID); err == nil {
		t.Error("cancel of unknown job resolved successfully")
	}
	// Names resolve on the cancel path too, mirroring GET /v1/jobs.
	id2, err := c.SubmitWait(mgSpec("victim-2", 2))
	if err != nil {
		t.Fatal(err)
	}
	op, err = c.CancelByName("victim-2")
	if err != nil {
		t.Fatal(err)
	}
	if op, err = c.WaitOp(op.ID); err != nil {
		v, verr := c.Job(id2)
		if verr != nil || v.StateName != "done" {
			t.Fatalf("cancel by name failed on a %v job: %v", v.StateName, err)
		}
	} else if op.JobID != id2 {
		t.Fatalf("cancel by name resolved job %d, want %d", op.JobID, id2)
	}
	// Unknown name: the 202 is still issued (resolution happens on the
	// scheduler goroutine); the op itself must fail.
	op, err = c.CancelByName("no-such-name")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.WaitOp(op.ID); err == nil {
		t.Error("cancel of unknown name resolved successfully")
	}
}

func TestRequestIDPropagation(t *testing.T) {
	_, c, _ := startDaemon(t, 8, "")
	req, _ := http.NewRequest(http.MethodGet, c.Base+"/v1/cluster", nil)
	req.Header.Set(requestIDHeader, "my-req-7")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get(requestIDHeader); got != "my-req-7" {
		t.Errorf("request id echoed as %q", got)
	}
	// Absent IDs are minted.
	resp, err = http.Get(c.Base + "/v1/cluster")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.Header.Get(requestIDHeader) == "" {
		t.Error("no request id minted")
	}
}

func TestAdmissionThrottle(t *testing.T) {
	db, node := testDB(t)
	core, err := svc.New(svc.Config{
		Node: node, Nodes: 8, Policy: placement.SNS, MaxScale: 8, AgingPeriodSec: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{
		Core: core, Model: svc.PolicyRuntime(placement.SNS, node), DB: db,
		Timescale: 10000, MaxPendingOps: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Deliberately NOT started: every accepted op stays pending, so the
	// second mutation must bounce off the throttle.
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := NewClient(ts.URL)
	if _, err := c.Submit(mgSpec("a", 2)); err != nil {
		t.Fatal(err)
	}
	_, err = c.Submit(mgSpec("b", 2))
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusTooManyRequests {
		t.Fatalf("throttled submit error = %v, want 429", err)
	}
	srv.Start()
	srv.Shutdown()
}

// TestRestartNoLostOps is the acceptance test for daemon persistence: a
// daemon is killed mid-load, restored from its snapshot, and the client
// retries its in-flight work — nothing is lost, nothing duplicated.
func TestRestartNoLostOps(t *testing.T) {
	snap := filepath.Join(t.TempDir(), "snsd.snapshot")
	srv, c, db := startDaemon(t, 64, snap)

	const jobs = 20
	ids := make(map[string]int, jobs)
	for i := 0; i < jobs; i++ {
		spec := mgSpec("", 1+i%4)
		spec.Name = names(i)
		spec.RuntimeSec = 1e7 // outlives the test: survivors stay running/queued
		id, err := c.SubmitWait(spec)
		if err != nil {
			t.Fatal(err)
		}
		ids[spec.Name] = id
	}
	// Kill: shutdown drains accepted ops and snapshots.
	if err := srv.Shutdown(); err != nil {
		t.Fatal(err)
	}

	restored, err := Load(Config{
		Model:        svc.PolicyRuntime(placement.SNS, hw.DefaultClusterSpec().Node),
		DB:           db,
		Timescale:    10000,
		SnapshotPath: snap,
	}, db)
	if err != nil {
		t.Fatal(err)
	}
	restored.Start()
	ts := httptest.NewServer(restored)
	defer func() {
		ts.Close()
		restored.Shutdown()
	}()
	c2 := NewClient(ts.URL)

	// Every pre-restart job survived with its ID and name.
	st, err := c2.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Submitted != jobs {
		t.Fatalf("restored daemon has %d jobs, want %d", st.Submitted, jobs)
	}
	for name, id := range ids {
		v, err := c2.JobByName(name)
		if err != nil {
			t.Fatalf("job %s lost: %v", name, err)
		}
		if v.ID != id {
			t.Fatalf("job %s restored with id %d, want %d", name, v.ID, id)
		}
	}
	// Pre-restart ops are still resolvable.
	if _, err := c2.Op("op-1"); err != nil {
		t.Fatalf("pre-restart op lost: %v", err)
	}

	// The client retries every submission (it cannot know which were
	// applied): all must dedup, none may double-admit.
	for i := 0; i < jobs; i++ {
		spec := mgSpec("", 1+i%4)
		spec.Name = names(i)
		spec.RuntimeSec = 1e7
		op, err := c2.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		if op, err = c2.WaitOp(op.ID); err != nil {
			t.Fatal(err)
		}
		if !op.Deduped || op.JobID != ids[spec.Name] {
			t.Fatalf("retry of %s = %+v, want dedup to %d", spec.Name, op, ids[spec.Name])
		}
	}
	st, _ = c2.Stats()
	if st.Submitted != jobs {
		t.Fatalf("retries duplicated jobs: %+v", st)
	}
	// And new work still flows.
	if _, err := c2.SubmitWait(mgSpec("post-restart", 2)); err != nil {
		t.Fatalf("post-restart submission: %v", err)
	}
}

func names(i int) string {
	return "persist-" + string(rune('a'+i/10)) + string(rune('0'+i%10))
}

func TestRunLoad(t *testing.T) {
	_, c, _ := startDaemon(t, 128, "")
	res, err := RunLoad(c, LoadConfig{Seed: 3, Jobs: 60, MaxNodes: 8, Concurrency: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 0 || res.Submitted != 60 {
		t.Fatalf("load result = %+v", res)
	}
	if res.P99 <= 0 || res.Max < res.P99 || res.P99 < res.P50 {
		t.Fatalf("latency distribution inconsistent: %+v", res)
	}
	st, _ := c.Stats()
	if st.Submitted != 60 {
		t.Fatalf("daemon saw %d submissions, want 60", st.Submitted)
	}
}

// TestRunLoadDeterministicStream pins the generator: two runs with one
// seed submit identical specs (checked via the daemon's dedup — every
// job of the second run must dedup against the first).
func TestRunLoadDeterministicStream(t *testing.T) {
	_, c, _ := startDaemon(t, 128, "")
	first, err := RunLoad(c, LoadConfig{Seed: 9, Jobs: 30, MaxNodes: 4, Concurrency: 4})
	if err != nil || first.Submitted != 30 {
		t.Fatalf("first run: %+v, %v", first, err)
	}
	second, err := RunLoad(c, LoadConfig{Seed: 9, Jobs: 30, MaxNodes: 4, Concurrency: 4})
	if err != nil {
		t.Fatal(err)
	}
	if second.Deduped != 30 || second.Submitted != 0 {
		t.Fatalf("second run did not fully dedup: %+v", second)
	}
}
