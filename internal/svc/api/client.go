package api

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"spreadnshare/internal/svc"
)

// Client speaks the daemon's async protocol: accepted mutations are
// polled to resolution, reads are plain GETs. A zero PollInterval polls
// every 2ms — tight enough that submission-latency measurements are
// dominated by the daemon, not the poller.
type Client struct {
	Base         string
	HTTP         *http.Client
	PollInterval time.Duration
}

// NewClient builds a client for a daemon base URL (no trailing slash).
func NewClient(base string) *Client {
	return &Client{Base: base, HTTP: &http.Client{Timeout: 30 * time.Second}}
}

func (c *Client) poll() time.Duration {
	if c.PollInterval > 0 {
		return c.PollInterval
	}
	return 2 * time.Millisecond
}

func (c *Client) do(req *http.Request, want int, out any) error {
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != want {
		var e struct {
			Error string `json:"error"`
		}
		// Best-effort: the status code alone is a usable error; a body
		// that is not the error shape just leaves Msg empty.
		_ = json.NewDecoder(resp.Body).Decode(&e)
		return &StatusError{Code: resp.StatusCode, Msg: e.Error}
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// StatusError is a non-2xx daemon response.
type StatusError struct {
	Code int
	Msg  string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("api: status %d: %s", e.Code, e.Msg)
}

// Submit accepts a job spec asynchronously, returning the pending op.
func (c *Client) Submit(spec svc.JobSpec) (Op, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return Op{}, err
	}
	req, err := http.NewRequest(http.MethodPost, c.Base+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		return Op{}, err
	}
	req.Header.Set("Content-Type", "application/json")
	var op Op
	if err := c.do(req, http.StatusAccepted, &op); err != nil {
		return Op{}, err
	}
	return op, nil
}

// Op fetches one op's current state.
func (c *Client) Op(id string) (Op, error) {
	req, err := http.NewRequest(http.MethodGet, c.Base+"/v1/ops/"+id, nil)
	if err != nil {
		return Op{}, err
	}
	var op Op
	if err := c.do(req, http.StatusOK, &op); err != nil {
		return Op{}, err
	}
	return op, nil
}

// WaitOp polls an op until the scheduler goroutine resolves it. A failed
// op returns an error carrying the daemon's message.
func (c *Client) WaitOp(id string) (Op, error) {
	for {
		op, err := c.Op(id)
		if err != nil {
			return Op{}, err
		}
		switch op.Status {
		case OpDone:
			return op, nil
		case OpFailed:
			return op, fmt.Errorf("api: op %s failed: %s", id, op.Error)
		case OpPending:
			// Not resolved yet: fall through to the poll sleep.
		}
		time.Sleep(c.poll())
	}
}

// SubmitWait submits and polls to resolution, returning the admitted
// job's ID.
func (c *Client) SubmitWait(spec svc.JobSpec) (int, error) {
	op, err := c.Submit(spec)
	if err != nil {
		return -1, err
	}
	op, err = c.WaitOp(op.ID)
	if err != nil {
		return -1, err
	}
	return op.JobID, nil
}

// Job fetches a job by numeric ID.
func (c *Client) Job(id int) (JobView, error) {
	return c.jobByKey(fmt.Sprintf("%d", id))
}

// JobByName fetches a job by its idempotency name.
func (c *Client) JobByName(name string) (JobView, error) {
	return c.jobByKey(name)
}

func (c *Client) jobByKey(key string) (JobView, error) {
	req, err := http.NewRequest(http.MethodGet, c.Base+"/v1/jobs/"+key, nil)
	if err != nil {
		return JobView{}, err
	}
	var v JobView
	if err := c.do(req, http.StatusOK, &v); err != nil {
		return JobView{}, err
	}
	return v, nil
}

// Cancel withdraws or kills a job asynchronously.
func (c *Client) Cancel(id int) (Op, error) {
	return c.cancelByKey(strconv.Itoa(id))
}

// CancelByName withdraws a job by its idempotency name.
func (c *Client) CancelByName(name string) (Op, error) {
	return c.cancelByKey(name)
}

func (c *Client) cancelByKey(key string) (Op, error) {
	req, err := http.NewRequest(http.MethodDelete, c.Base+"/v1/jobs/"+url.PathEscape(key), nil)
	if err != nil {
		return Op{}, err
	}
	var op Op
	if err := c.do(req, http.StatusAccepted, &op); err != nil {
		return Op{}, err
	}
	return op, nil
}

// Stats fetches the cluster occupancy summary.
func (c *Client) Stats() (svc.Stats, error) {
	req, err := http.NewRequest(http.MethodGet, c.Base+"/v1/cluster", nil)
	if err != nil {
		return svc.Stats{}, err
	}
	var st svc.Stats
	if err := c.do(req, http.StatusOK, &st); err != nil {
		return svc.Stats{}, err
	}
	return st, nil
}

// Snapshot asks the daemon to checkpoint to its configured path.
func (c *Client) Snapshot() error {
	req, err := http.NewRequest(http.MethodPost, c.Base+"/v1/snapshot", nil)
	if err != nil {
		return err
	}
	return c.do(req, http.StatusOK, nil)
}
