package api

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"spreadnshare/internal/svc"
	"spreadnshare/internal/trace"
)

// LoadConfig shapes a deterministic load run: the same seed and counts
// always synthesize the same job stream (the trace generator underneath
// is the repo's deterministic one), so two runs against equal daemons
// submit identical work.
type LoadConfig struct {
	// Seed drives the synthesized stream.
	Seed int64
	// Jobs is how many submissions to replay.
	Jobs int
	// MaxNodes caps per-job footprints.
	MaxNodes int
	// CoresPerNode is the per-node process count (0: 16, the paper's
	// testbed slice).
	CoresPerNode int
	// Concurrency is the number of parallel submitting clients (0: 8).
	Concurrency int
	// NamePrefix namespaces idempotency names ("" = "load"): job i
	// submits as "<prefix>-<i>", so a rerun against a restored daemon
	// deduplicates instead of double-submitting.
	NamePrefix string
}

// LoadResult is one load run's accounting.
type LoadResult struct {
	Submitted int
	// Deduped counts submissions the daemon resolved to an existing job
	// (idempotent retries after a restart).
	Deduped int
	Failed  int
	Wall    time.Duration
	// Submission latency distribution: accepted-to-applied, per job.
	P50, P90, P99, Max time.Duration
}

func (r *LoadResult) String() string {
	return fmt.Sprintf("submitted=%d deduped=%d failed=%d wall=%s p50=%s p90=%s p99=%s max=%s",
		r.Submitted, r.Deduped, r.Failed, r.Wall.Round(time.Microsecond),
		r.P50.Round(time.Microsecond), r.P90.Round(time.Microsecond),
		r.P99.Round(time.Microsecond), r.Max.Round(time.Microsecond))
}

// RunLoad replays a synthesized arrival stream against a daemon,
// recording per-submission latency (POST accepted to op applied). The
// submitters run flat out, so a small Concurrency with a large Jobs
// count produces exactly the sustained burst the daemon's batched
// admission is built for.
func RunLoad(c *Client, cfg LoadConfig) (*LoadResult, error) {
	if cfg.Jobs <= 0 {
		return nil, fmt.Errorf("api: load needs jobs, got %d", cfg.Jobs)
	}
	if cfg.MaxNodes <= 0 {
		return nil, fmt.Errorf("api: load needs a max footprint, got %d", cfg.MaxNodes)
	}
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 8
	}
	if cfg.CoresPerNode <= 0 {
		cfg.CoresPerNode = 16
	}
	if cfg.NamePrefix == "" {
		cfg.NamePrefix = "load"
	}
	jobs := trace.Synthesize(cfg.Seed, trace.GenConfig{
		Jobs: cfg.Jobs, SpanHours: 24, MaxNodes: cfg.MaxNodes,
	})
	trace.MapPrograms(cfg.Seed, jobs, []string{"MG", "BW"}, []string{"HC", "EP"}, 0.7)

	lats := make([]time.Duration, len(jobs))
	outcomes := make([]int, len(jobs)) // 0 submitted, 1 deduped, 2 failed
	var wg sync.WaitGroup
	next := make(chan int)
	start := time.Now()
	for w := 0; w < cfg.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				spec := specFor(jobs[i], cfg, i)
				t0 := time.Now()
				op, err := c.Submit(spec)
				if err == nil {
					op, err = c.WaitOp(op.ID)
				}
				lats[i] = time.Since(t0)
				switch {
				case err != nil:
					outcomes[i] = 2
				case op.Deduped:
					outcomes[i] = 1
				}
			}
		}()
	}
	for i := range jobs {
		next <- i
	}
	close(next)
	wg.Wait()

	res := &LoadResult{Wall: time.Since(start)}
	for i := range outcomes {
		switch outcomes[i] {
		case 0:
			res.Submitted++
		case 1:
			res.Deduped++
		case 2:
			res.Failed++
		}
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	pct := func(p float64) time.Duration {
		k := int(p * float64(len(lats)-1))
		return lats[k]
	}
	res.P50, res.P90, res.P99, res.Max = pct(0.50), pct(0.90), pct(0.99), lats[len(lats)-1]
	return res, nil
}

// specFor maps a synthesized trace job to a daemon submission.
func specFor(j trace.Job, cfg LoadConfig, i int) svc.JobSpec {
	return svc.JobSpec{
		Name:         fmt.Sprintf("%s-%d", cfg.NamePrefix, i),
		Program:      j.Program,
		BaseNodes:    j.Nodes,
		CoresPerNode: cfg.CoresPerNode,
		RuntimeSec:   j.RuntimeSec,
		Alpha:        0.9,
		MultiNode:    true,
	}
}
