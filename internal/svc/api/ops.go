package api

import (
	"fmt"
	"sort"
	"sync"
)

// OpStatus is an op's position in its tiny lifecycle: created pending
// by the HTTP handler, applied by the scheduler goroutine, and then
// either done or failed; it never moves again. The exhaustive lint
// pass keeps switches over it covering all three states.
//
//sns:enum
type OpStatus string

// Op states.
const (
	OpPending OpStatus = "pending"
	OpDone    OpStatus = "done"
	OpFailed  OpStatus = "failed"
)

// Op is one asynchronous operation: the daemon accepts a mutation with
// 202 Accepted and a pointer to this record, and the client polls it
// until the scheduler goroutine has applied the mutation. The record
// survives daemon restarts (it is part of the snapshot), so a client can
// resolve an op it was polling when the daemon died.
type Op struct {
	ID string `json:"id"`
	// Kind is the mutation: "submit" or "cancel".
	Kind string `json:"kind"`
	// Status resolves exactly once; the transition lint pass checks
	// every write against these edges.
	//
	//sns:statemachine OpPending>OpDone,OpPending>OpFailed
	Status OpStatus `json:"status"`
	// RequestID echoes the X-Request-Id that created the op.
	RequestID string `json:"request_id,omitempty"`
	// JobID is the affected job, valid once Status is done (and from
	// creation for cancel ops).
	JobID int `json:"job_id"`
	// Deduped marks a submit that resolved to an existing job via its
	// idempotency name instead of admitting a duplicate.
	Deduped bool `json:"deduped,omitempty"`
	// Error carries the failure when Status is failed.
	Error string `json:"error,omitempty"`
	// CreatedSec/AppliedSec are core (virtual) timestamps.
	CreatedSec float64 `json:"created_sec"`
	AppliedSec float64 `json:"applied_sec,omitempty"`
}

// opTable is the daemon's operation registry. Handlers create ops from
// request goroutines and the scheduler goroutine resolves them, so the
// table takes a lock; the core itself never does. The statefield lint
// pass proves the table round-trips through the daemon snapshot.
//
//sns:persist daemonSnapshot
type opTable struct {
	mu sync.Mutex
	// seq and pending are recomputed from the records by load.
	//
	//sns:guardedby mu
	//sns:derived load
	seq int
	//sns:guardedby mu
	ops map[string]*Op
	//sns:guardedby mu
	//sns:derived load
	pending int
}

func newOpTable() *opTable {
	return &opTable{ops: make(map[string]*Op)}
}

// create registers a new pending op and returns a copy of it.
func (t *opTable) create(kind, requestID string, jobID int, now float64) Op {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.seq++
	op := &Op{
		ID:         fmt.Sprintf("op-%d", t.seq),
		Kind:       kind,
		Status:     OpPending,
		RequestID:  requestID,
		JobID:      jobID,
		CreatedSec: now,
	}
	t.ops[op.ID] = op
	t.pending++
	return *op
}

// resolve moves a pending op to done or failed.
func (t *opTable) resolve(id string, jobID int, deduped bool, err error, now float64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	op, ok := t.ops[id]
	if !ok || op.Status != OpPending {
		return
	}
	op.JobID = jobID
	op.Deduped = deduped
	op.AppliedSec = now
	if err != nil {
		op.Status = OpFailed
		op.Error = err.Error()
	} else {
		op.Status = OpDone
	}
	t.pending--
}

// get returns a copy of an op.
func (t *opTable) get(id string) (Op, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	op, ok := t.ops[id]
	if !ok {
		return Op{}, false
	}
	return *op, true
}

// pendingCount returns how many ops await the scheduler goroutine — the
// admission throttle's gauge.
func (t *opTable) pendingCount() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.pending
}

// all returns every op ordered by creation (the table's sequence), for
// snapshots.
func (t *opTable) all() []Op {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Op, 0, len(t.ops))
	for _, op := range t.ops {
		out = append(out, *op)
	}
	sort.Slice(out, func(i, j int) bool { return opSeq(out[i].ID) < opSeq(out[j].ID) })
	return out
}

// load rebuilds the table from a snapshot. Ops that were pending when
// the snapshot was taken come back failed: the daemon snapshots only
// after draining its command queue, so a pending op in a snapshot means
// the process died before applying it — the client must retry (Submit
// retries are deduplicated by job name).
func (t *opTable) load(ops []Op) {
	t.mu.Lock()
	defer t.mu.Unlock()
	maxSeq := 0
	for i := range ops {
		op := ops[i]
		if op.Status == OpPending {
			op.Status = OpFailed
			op.Error = "daemon restarted before applying this op; retry"
		}
		t.ops[op.ID] = &op
		if s := opSeq(op.ID); s > maxSeq {
			maxSeq = s
		}
	}
	t.seq = maxSeq
	t.pending = 0
}

// opSeq extracts the numeric suffix of an op ID for ordering. A
// malformed ID (impossible for table-minted ops) scans as 0 and sorts
// first, so the error is deliberately dropped.
func opSeq(id string) int {
	var n int
	_, _ = fmt.Sscanf(id, "op-%d", &n)
	return n
}
