package svc

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"spreadnshare/internal/app"
	"spreadnshare/internal/hw"
	"spreadnshare/internal/placement"
	"spreadnshare/internal/profiler"
)

// Profiling the application catalog dominates a fuzz iteration's cost,
// so the profile DB is built once per process and shared across
// iterations; it is read-only after construction.
var (
	fuzzOnce    sync.Once
	fuzzDB      *profiler.DB
	fuzzNode    hw.NodeSpec
	fuzzProfErr error
)

func fuzzProfiles() (*profiler.DB, hw.NodeSpec, error) {
	fuzzOnce.Do(func() {
		spec := hw.DefaultClusterSpec()
		cat, err := app.NewCatalog(spec.Node)
		if err != nil {
			fuzzProfErr = err
			return
		}
		fuzzDB = profiler.NewDB()
		fuzzProfErr = profiler.New(spec).ProfileAll(cat, []string{"MG", "BW", "HC", "EP"}, 16, fuzzDB)
		fuzzNode = spec.Node
	})
	return fuzzDB, fuzzNode, fuzzProfErr
}

var fuzzPrograms = [4]string{"MG", "BW", "HC", "EP"}

// fuzzCore interprets one action stream over one live core. Two
// interpreters fed the same bytes must traverse identical state
// trajectories — that is the determinism contract the fuzzer leans on.
type fuzzCore struct {
	c     *Cluster
	model RuntimeModel
	db    *profiler.DB
	now   float64
}

func newFuzzCore(t *testing.T, db *profiler.DB, node hw.NodeSpec) *fuzzCore {
	t.Helper()
	c, err := New(Config{
		Node: node, Nodes: 32, Policy: placement.SNS,
		MaxScale: 8, ScanDepth: 32, AgingPeriodSec: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return &fuzzCore{c: c, model: PolicyRuntime(placement.SNS, node), db: db}
}

// apply decodes one byte into a core action: submit, round+advance,
// complete-first-running, or cancel. Every decode is a pure function of
// the byte and the core's (deterministic) state, so two cores replaying
// the same stream perform the same calls with the same arguments.
func (f *fuzzCore) apply(t *testing.T, b byte) {
	t.Helper()
	switch b % 4 {
	case 0: // submit, with a small name space so retries exercise dedup
		prog := fuzzPrograms[(b>>2)%4]
		sp := JobSpec{
			Name:         fmt.Sprintf("f-%d", int(b>>2)%24),
			Program:      prog,
			BaseNodes:    1 + int(b>>4)%8,
			CoresPerNode: 16,
			RuntimeSec:   50 + float64(b>>3),
			Alpha:        0.9,
			MultiNode:    true,
		}
		if p, ok := f.db.Get(prog, 16); ok {
			sp.Profile = p
		}
		if _, err := f.c.Submit(sp, f.now); err != nil && !errors.Is(err, ErrDuplicate) {
			t.Fatalf("submit %+v: %v", sp, err)
		}
	case 1: // admission round, then advance the clock
		f.c.ScheduleRound(f.now, f.model)
		f.now++
	case 2: // complete the lowest-ID running job at its predicted finish
		var target *Job
		f.c.Each(func(j *Job) {
			if j.State == Running && (target == nil || j.ID < target.ID) {
				target = j
			}
		})
		if target != nil {
			if target.FinishSec > f.now {
				f.now = target.FinishSec
			}
			if err := f.c.Complete(target.ID, f.now); err != nil {
				t.Fatalf("complete job %d: %v", target.ID, err)
			}
		}
	case 3: // cancel by dense ID; unknown/finished IDs fail identically
		_ = f.c.Cancel(int(b>>2), f.now)
	}
}

// dump renders every observable bit of job and cluster state; two cores
// are equivalent iff their dumps are byte-identical.
func dumpCore(c *Cluster) string {
	var sb strings.Builder
	c.Each(func(j *Job) {
		fmt.Fprintf(&sb, "%d %q %s sub=%.6f start=%.6f fin=%.6f scale=%d used=%d nodes=%v\n",
			j.ID, j.Spec.Name, j.State, j.SubmitSec, j.StartSec, j.FinishSec,
			j.Scale, j.NodesUsed, j.Nodes)
	})
	fmt.Fprintf(&sb, "stats=%+v queued=%d maxfree=%d", c.Stats(), c.QueuedLen(), c.MaxFreeCores())
	return sb.String()
}

// FuzzSnapshotRoundTrip drives two identical cores with a fuzzed
// submit/round/complete/cancel stream, snapshots one mid-stream,
// restores it, and continues both: the restored core's subsequent
// placements (and every job timestamp, scale, and node set) must be
// bit-identical to the uninterrupted run's. This is the live-daemon
// crash/restore guarantee — a snapshot is a perfect suffix seed, at any
// split point the fuzzer can find.
func FuzzSnapshotRoundTrip(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3})
	f.Add([]byte{0, 0, 4, 1, 0, 1, 2, 2, 1, 3, 1})
	f.Add([]byte{16, 48, 80, 1, 112, 1, 2, 0, 1, 2, 3, 7, 1, 2})
	f.Add(bytes.Repeat([]byte{0, 1, 2}, 20))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 256 {
			data = data[:256] // bound one iteration's work
		}
		db, node, err := fuzzProfiles()
		if err != nil {
			t.Fatal(err)
		}
		full := newFuzzCore(t, db, node) // uninterrupted reference
		snap := newFuzzCore(t, db, node) // snapshotted mid-stream
		defer func() {
			full.c.Close()
			snap.c.Close()
		}()
		split := len(data) / 2
		for _, b := range data[:split] {
			full.apply(t, b)
			snap.apply(t, b)
		}
		var buf bytes.Buffer
		if err := snap.c.Snapshot(&buf); err != nil {
			t.Fatal(err)
		}
		restored, err := Restore(bytes.NewReader(buf.Bytes()), db)
		if err != nil {
			t.Fatal(err)
		}
		snap.c.Close()
		snap.c = restored
		for _, b := range data[split:] {
			full.apply(t, b)
			snap.apply(t, b)
		}
		// A final round each, so work left queued at the end of the
		// stream is placed — and compared — on both sides too.
		full.c.ScheduleRound(full.now, full.model)
		snap.c.ScheduleRound(snap.now, snap.model)
		if a, b := dumpCore(full.c), dumpCore(snap.c); a != b {
			t.Fatalf("restored core diverged from uninterrupted run:\n-- uninterrupted --\n%s\n-- restored --\n%s", a, b)
		}
	})
}
