package hw_test

import (
	"fmt"

	"spreadnshare/internal/hw"

	"spreadnshare/internal/units"
)

// The bandwidth roofline saturates early: four cores already draw more
// than half the node's peak, which is why compact placement starves
// bandwidth-bound programs.
func ExampleNodeSpec_StreamBandwidth() {
	node := hw.DefaultNodeSpec()
	for _, k := range []int{1, 4, 8, 28} {
		fmt.Printf("%2d cores: %6.2f GB/s\n", k, node.StreamBandwidth(units.CoresOf(k)))
	}
	// Output:
	//  1 cores:  18.80 GB/s
	//  4 cores:  59.09 GB/s
	//  8 cores:  88.66 GB/s
	// 28 cores: 118.26 GB/s
}

// Water-filling a saturated memory controller: the small consumer keeps
// its trickle, the two hogs split what remains.
func ExampleWaterFill() {
	grants := hw.WaterFill(100, []float64{5, 80, 80})
	fmt.Printf("%.1f %.1f %.1f\n", grants[0], grants[1], grants[2])
	// Output:
	// 5.0 47.5 47.5
}

// CAT partitions are contiguous way runs, like the hardware's capacity
// bitmasks.
func ExampleWayAllocator() {
	a := hw.NewWayAllocator(hw.DefaultNodeSpec())
	m1, _ := a.Allocate(1, 4)
	m2, _ := a.Allocate(2, 8)
	fmt.Println(m1, m2, a.FreeWays())
	// Output:
	// 0x0000f 0x00ff0 8
}
