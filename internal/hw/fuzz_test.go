package hw

import (
	"math"
	"math/rand"
	"testing"
)

// FuzzWaterFill drives the max-min water-filling kernel with randomized
// supplies and demand vectors and checks its invariants: grants are
// nonnegative, never exceed the (positive part of the) demand, sum to no
// more than the supply, are insensitive to input order, and agree
// between the allocating and the into-storage entry points.
func FuzzWaterFill(f *testing.F) {
	f.Add(10.0, int64(1), uint8(4))
	f.Add(0.0, int64(2), uint8(3))
	f.Add(1e6, int64(3), uint8(16))
	f.Add(0.5, int64(4), uint8(1))
	f.Fuzz(func(t *testing.T, supply float64, seed int64, n uint8) {
		if math.IsNaN(supply) || math.IsInf(supply, 0) || math.Abs(supply) > 1e12 {
			t.Skip("supply outside the physical range")
		}
		rng := rand.New(rand.NewSource(seed))
		demands := make([]float64, int(n))
		for i := range demands {
			// Mostly physical demands, with occasional zero and
			// negative entries to probe the d <= 0 filtering.
			switch rng.Intn(8) {
			case 0:
				demands[i] = 0
			case 1:
				demands[i] = -rng.Float64() * 10
			default:
				demands[i] = rng.Float64() * 100
			}
		}

		grants := WaterFill(supply, demands)
		if len(grants) != len(demands) {
			t.Fatalf("got %d grants for %d demands", len(grants), len(demands))
		}
		const eps = 1e-9
		sum := 0.0
		for i, g := range grants {
			if g < 0 {
				t.Fatalf("grant[%d] = %v is negative", i, g)
			}
			if g > math.Max(demands[i], 0)+eps {
				t.Fatalf("grant[%d] = %v exceeds demand %v", i, g, demands[i])
			}
			sum += g
		}
		if supply > 0 && sum > supply*(1+eps)+eps {
			t.Fatalf("grants sum to %v, exceeding supply %v", sum, supply)
		}

		// The into-storage variant must agree exactly with the
		// allocating wrapper.
		into := make([]float64, len(demands))
		WaterFillInto(into, supply, demands, make([]int, len(demands)))
		for i := range into {
			if into[i] != grants[i] {
				t.Fatalf("WaterFillInto[%d] = %v, WaterFill = %v", i, into[i], grants[i])
			}
		}

		// Max-min fairness is a property of the demand multiset, not
		// its order: permuting the inputs permutes the grants.
		perm := rng.Perm(len(demands))
		shuffled := make([]float64, len(demands))
		for j, src := range perm {
			shuffled[j] = demands[src]
		}
		grants2 := WaterFill(supply, shuffled)
		for j, src := range perm {
			if math.Abs(grants2[j]-grants[src]) > eps {
				t.Fatalf("order sensitivity: demand %v granted %v in place %d but %v after shuffle",
					demands[src], grants[src], src, grants2[j])
			}
		}
	})
}
