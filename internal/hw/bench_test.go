package hw

import (
	"math/rand"
	"testing"

	"spreadnshare/internal/units"
)

func BenchmarkStreamBandwidth(b *testing.B) {
	spec := DefaultNodeSpec()
	for i := 0; i < b.N; i++ {
		_ = spec.StreamBandwidth(units.CoresOf(i%28 + 1))
	}
}

func BenchmarkWaterFill8(b *testing.B) {
	demands := []float64{40, 3, 28, 0.1, 55, 12, 7, 90}
	for i := 0; i < b.N; i++ {
		_ = WaterFill(118.26, demands)
	}
}

func BenchmarkWaterFill64(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	demands := make([]float64, 64)
	for i := range demands {
		demands[i] = rng.Float64() * 20
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = WaterFill(118.26, demands)
	}
}

func BenchmarkWayAllocator(b *testing.B) {
	spec := DefaultNodeSpec()
	for i := 0; i < b.N; i++ {
		a := NewWayAllocator(spec)
		for id := 0; id < 5; id++ {
			if _, err := a.Allocate(id, 4); err != nil {
				b.Fatal(err)
			}
		}
		for id := 0; id < 5; id++ {
			if err := a.Release(id); err != nil {
				b.Fatal(err)
			}
		}
	}
}
