package hw

import (
	"strings"
	"testing"
	"testing/quick"

	"spreadnshare/internal/units"
)

func TestContiguousMask(t *testing.T) {
	cases := []struct {
		lo, n int
		count int
		ok    bool
	}{
		{0, 4, 4, true},
		{3, 2, 2, true},
		{0, 20, 20, true},
		{5, 0, 0, false},
	}
	for _, c := range cases {
		m := ContiguousMask(c.lo, c.n)
		if m.Count() != c.count {
			t.Errorf("ContiguousMask(%d,%d).Count() = %d, want %d", c.lo, c.n, m.Count(), c.count)
		}
		if m.Contiguous() != c.ok {
			t.Errorf("ContiguousMask(%d,%d).Contiguous() = %v, want %v", c.lo, c.n, m.Contiguous(), c.ok)
		}
	}
	if WayMask(0b1011).Contiguous() {
		t.Error("0b1011 reported contiguous")
	}
	if !WayMask(0b0110).Contiguous() {
		t.Error("0b0110 reported non-contiguous")
	}
}

func TestWayAllocatorBasic(t *testing.T) {
	a := NewWayAllocator(DefaultNodeSpec())
	m1, err := a.Allocate(1, 4)
	if err != nil {
		t.Fatalf("Allocate(1, 4): %v", err)
	}
	m2, err := a.Allocate(2, 8)
	if err != nil {
		t.Fatalf("Allocate(2, 8): %v", err)
	}
	if m1.Overlaps(m2) {
		t.Errorf("partitions overlap: %v and %v", m1, m2)
	}
	if got := a.FreeWays(); got != 8 {
		t.Errorf("FreeWays = %d, want 8", got)
	}
	if _, err := a.Allocate(3, 10); err == nil {
		t.Error("Allocate(3, 10) succeeded with only 8 free ways")
	}
	if err := a.Release(1); err != nil {
		t.Fatalf("Release(1): %v", err)
	}
	if got := a.FreeWays(); got != 12 {
		t.Errorf("FreeWays after release = %d, want 12", got)
	}
	if err := a.Release(1); err == nil {
		t.Error("double Release(1) succeeded")
	}
}

func TestWayAllocatorRejectsBelowMinimum(t *testing.T) {
	a := NewWayAllocator(DefaultNodeSpec())
	if _, err := a.Allocate(1, 1); err == nil {
		t.Error("allocation of 1 way below MinWaysPerJob succeeded")
	}
	if _, err := a.Allocate(1, 2); err != nil {
		t.Errorf("allocation of 2 ways failed: %v", err)
	}
	if _, err := a.Allocate(1, 2); err == nil {
		t.Error("double allocation for same job succeeded")
	}
}

func TestWayAllocatorCLOSLimit(t *testing.T) {
	spec := DefaultNodeSpec()
	spec.MaxCLOS = 3
	a := NewWayAllocator(spec)
	for id := 0; id < 3; id++ {
		if _, err := a.Allocate(id, 2); err != nil {
			t.Fatalf("Allocate(%d): %v", id, err)
		}
	}
	if _, err := a.Allocate(9, 2); err == nil {
		t.Error("allocation beyond MaxCLOS succeeded")
	}
}

// Property: any sequence of allocations yields pairwise-disjoint contiguous
// partitions whose total never exceeds the LLC way count.
func TestWayAllocatorInvariants(t *testing.T) {
	f := func(sizes []uint8) bool {
		a := NewWayAllocator(DefaultNodeSpec())
		var masks []WayMask
		for id, raw := range sizes {
			n := int(raw%22) + 1 // 1..22, some invalid on purpose
			m, err := a.Allocate(id, units.WaysOf(n))
			if err != nil {
				continue
			}
			if !m.Contiguous() || m.Count() != n {
				return false
			}
			for _, prev := range masks {
				if m.Overlaps(prev) {
					return false
				}
			}
			masks = append(masks, m)
		}
		total := 0
		for _, m := range masks {
			total += m.Count()
		}
		return total <= 20 && a.FreeWays() == units.WaysOf(20-total)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSpecValidate(t *testing.T) {
	if err := DefaultNodeSpec().Validate(); err != nil {
		t.Errorf("default node spec invalid: %v", err)
	}
	if err := DefaultClusterSpec().Validate(); err != nil {
		t.Errorf("default cluster spec invalid: %v", err)
	}
	bad := DefaultNodeSpec()
	bad.Cores = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero-core spec validated")
	}
	bad = DefaultNodeSpec()
	bad.PeakBandwidth = 1
	if err := bad.Validate(); err == nil {
		t.Error("peak < single-core spec validated")
	}
	// Non-positive roofline and way-count inputs must be rejected with
	// errors that name the physical quantity, not a zero digest later.
	for _, peak := range []float64{0, -120} {
		bad = DefaultNodeSpec()
		bad.PeakBandwidth = units.GBpsOf(peak)
		err := bad.Validate()
		if err == nil {
			t.Fatalf("peak bandwidth %g validated", peak)
		}
		if !strings.Contains(err.Error(), "peak STREAM bandwidth must be positive") {
			t.Errorf("peak=%g: error %q does not name the failing quantity", peak, err)
		}
	}
	for _, ways := range []int{0, -4} {
		bad = DefaultNodeSpec()
		bad.LLCWays = units.WaysOf(ways)
		err := bad.Validate()
		if err == nil {
			t.Fatalf("LLC way count %d validated", ways)
		}
		if !strings.Contains(err.Error(), "at least one way") {
			t.Errorf("ways=%d: error %q does not name the failing quantity", ways, err)
		}
	}
	badCl := DefaultClusterSpec()
	badCl.Nodes = 0
	if err := badCl.Validate(); err == nil {
		t.Error("zero-node cluster validated")
	}
	if got := DefaultClusterSpec().TotalCores(); got != 8*28 {
		t.Errorf("TotalCores = %d, want 224", got)
	}
}

func TestWayAllocatorDefragment(t *testing.T) {
	a := NewWayAllocator(DefaultNodeSpec())
	// Create fragmentation: allocate 4+4+4+4, release the middle two.
	for id := 1; id <= 4; id++ {
		if _, err := a.Allocate(id, 4); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Release(2); err != nil {
		t.Fatal(err)
	}
	if err := a.Release(3); err != nil {
		t.Fatal(err)
	}
	// 12 ways free but split 4+4+4: a 10-way run does not exist.
	if _, err := a.Allocate(5, 10); err == nil {
		t.Fatal("fragmented allocation unexpectedly succeeded")
	}
	a.Defragment()
	m5, err := a.Allocate(5, 10)
	if err != nil {
		t.Fatalf("allocation after defragment: %v", err)
	}
	// All partitions still contiguous and disjoint with preserved sizes.
	m1, _ := a.Mask(1)
	m4, _ := a.Mask(4)
	for _, m := range []WayMask{m1, m4, m5} {
		if !m.Contiguous() {
			t.Errorf("mask %v not contiguous after defragment", m)
		}
	}
	if m1.Count() != 4 || m4.Count() != 4 || m5.Count() != 10 {
		t.Error("defragment changed partition sizes")
	}
	if m1.Overlaps(m4) || m1.Overlaps(m5) || m4.Overlaps(m5) {
		t.Error("masks overlap after defragment")
	}
}
