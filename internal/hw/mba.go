package hw

import (
	"math"

	"spreadnshare/internal/units"
)

// MBACap quantizes a per-node bandwidth reservation up to the nearest
// Intel MBA throttle level the hardware can program, returning the
// enforceable cap. MBA delays are coarse — roughly 10% steps of peak
// bandwidth — so the cap rounds up: a job is never throttled below its
// estimated demand. Returns 0 (uncapped) when the node has no MBA
// support or the reservation is non-positive.
func (s NodeSpec) MBACap(bw units.GBps) units.GBps {
	if !s.HasMBA || bw <= 0 {
		return 0
	}
	gran := s.MBAGranularityPct
	if gran <= 0 || gran > 100 {
		gran = 10
	}
	steps := 100.0 / float64(gran)
	frac := bw.Float64() / s.PeakBandwidth.Float64()
	level := math.Ceil(frac*steps) / steps
	if level > 1 {
		level = 1
	}
	min := float64(gran) / 100
	if level < min {
		level = min
	}
	return units.GBpsOf(level * s.PeakBandwidth.Float64())
}
