package hw

import (
	"fmt"
	"sort"

	"spreadnshare/internal/units"
)

// WayMask is a bitmask over LLC ways, mirroring the capacity bitmasks Intel
// CAT programs into IA32_L3_MASK_n MSRs. Bit i set means way i belongs to
// the partition. Real CAT requires masks to be contiguous runs of set bits;
// ContiguousMask and WayAllocator preserve that invariant.
type WayMask uint32

// ContiguousMask returns a mask of n ways starting at way lo.
func ContiguousMask(lo, n int) WayMask {
	if n <= 0 {
		return 0
	}
	return WayMask(((uint32(1) << uint(n)) - 1) << uint(lo))
}

// Count returns the number of ways in the mask.
func (m WayMask) Count() int {
	n := 0
	for m != 0 {
		m &= m - 1
		n++
	}
	return n
}

// Contiguous reports whether the set bits form one unbroken run, the shape
// CAT hardware accepts.
func (m WayMask) Contiguous() bool {
	if m == 0 {
		return false
	}
	// Strip trailing zeros, then the run of ones; nothing may remain.
	for m&1 == 0 {
		m >>= 1
	}
	for m&1 == 1 {
		m >>= 1
	}
	return m == 0
}

// Overlaps reports whether two partitions share any way.
func (m WayMask) Overlaps(o WayMask) bool { return m&o != 0 }

// String renders the mask as a way-bitmap, e.g. "0x0000f" for ways 0-3.
func (m WayMask) String() string { return fmt.Sprintf("%#05x", uint32(m)) }

// WayAllocator hands out disjoint contiguous LLC way partitions on one
// node, the bookkeeping a CAT actuator performs when a job is dispatched.
// It enforces the node's MaxCLOS partition limit.
type WayAllocator struct {
	spec  NodeSpec
	alloc map[int]WayMask // job id -> mask
}

// NewWayAllocator returns an allocator for one node of the given spec.
func NewWayAllocator(spec NodeSpec) *WayAllocator {
	return &WayAllocator{spec: spec, alloc: make(map[int]WayMask)}
}

// FreeWays returns the number of ways not allocated to any job.
func (a *WayAllocator) FreeWays() units.Ways {
	used := 0
	//lint:ordered integer sum of per-partition way counts is commutative
	for _, m := range a.alloc {
		used += m.Count()
	}
	return a.spec.LLCWays - units.WaysOf(used)
}

// Partitions returns the number of active partitions.
func (a *WayAllocator) Partitions() int { return len(a.alloc) }

// Mask returns the partition allocated to job id, if any.
func (a *WayAllocator) Mask(id int) (WayMask, bool) {
	m, ok := a.alloc[id]
	return m, ok
}

// Allocate reserves n contiguous ways for job id. It fails if the job
// already holds a partition, the node is out of CLOS entries, n is below
// the per-job minimum, or no contiguous run of n free ways exists.
func (a *WayAllocator) Allocate(id int, n units.Ways) (WayMask, error) {
	if _, ok := a.alloc[id]; ok {
		return 0, fmt.Errorf("hw: job %d already holds an LLC partition", id)
	}
	if len(a.alloc) >= a.spec.MaxCLOS {
		return 0, fmt.Errorf("hw: node out of CLOS entries (max %d)", a.spec.MaxCLOS)
	}
	if n < a.spec.MinWaysPerJob {
		return 0, fmt.Errorf("hw: allocation of %d ways below minimum %d", n, a.spec.MinWaysPerJob)
	}
	if n > a.spec.LLCWays {
		return 0, fmt.Errorf("hw: allocation of %d ways exceeds LLC size %d", n, a.spec.LLCWays)
	}
	var used WayMask
	for _, m := range a.alloc {
		used |= m
	}
	for lo := 0; lo+n.Int() <= a.spec.LLCWays.Int(); lo++ {
		m := ContiguousMask(lo, n.Int())
		if !m.Overlaps(used) {
			a.alloc[id] = m
			return m, nil
		}
	}
	return 0, fmt.Errorf("hw: no contiguous run of %d free ways", n)
}

// Defragment repacks all partitions into one contiguous run starting at
// way 0, preserving each job's way count. Reprogramming CLOS masks is a
// cheap register write on real CAT hardware, and Uberun already
// redistributes allocations at every dispatch (Section 4.4), so the
// actuator defragments whenever a new partition would not fit
// contiguously.
func (a *WayAllocator) Defragment() {
	ids := make([]int, 0, len(a.alloc))
	//lint:ordered ids are sorted before any order-sensitive use below
	for id := range a.alloc {
		ids = append(ids, id)
	}
	// Stable repacking order for determinism.
	sort.Ints(ids)
	lo := 0
	for _, id := range ids {
		n := a.alloc[id].Count()
		a.alloc[id] = ContiguousMask(lo, n)
		lo += n
	}
}

// Release returns job id's partition to the free pool.
func (a *WayAllocator) Release(id int) error {
	if _, ok := a.alloc[id]; !ok {
		return fmt.Errorf("hw: job %d holds no LLC partition", id)
	}
	delete(a.alloc, id)
	return nil
}
