package hw

import (
	"math"
	"testing"
	"testing/quick"

	"spreadnshare/internal/units"
)

func TestMBACapDisabled(t *testing.T) {
	s := DefaultNodeSpec()
	if got := s.MBACap(50); got != 0 {
		t.Errorf("MBACap on non-MBA node = %g, want 0 (uncapped)", got)
	}
}

func TestMBACapQuantization(t *testing.T) {
	s := MBANodeSpec()
	// 50 GB/s is 42.3% of 118.26 peak -> rounds up to the 50% level.
	if got, want := s.MBACap(50).Float64(), 0.5*s.PeakBandwidth.Float64(); math.Abs(got-want) > 1e-9 {
		t.Errorf("MBACap(50) = %g, want %g", got, want)
	}
	// Tiny reservations get the minimum 10% level.
	if got, want := s.MBACap(0.5).Float64(), 0.1*s.PeakBandwidth.Float64(); math.Abs(got-want) > 1e-9 {
		t.Errorf("MBACap(0.5) = %g, want floor %g", got, want)
	}
	// At or beyond peak: full level.
	if got := s.MBACap(500); got != s.PeakBandwidth {
		t.Errorf("MBACap(500) = %g, want peak", got)
	}
	if got := s.MBACap(0); got != 0 {
		t.Errorf("MBACap(0) = %g, want 0", got)
	}
	if got := s.MBACap(-5); got != 0 {
		t.Errorf("MBACap(-5) = %g, want 0", got)
	}
}

func TestMBACapBadGranularity(t *testing.T) {
	s := MBANodeSpec()
	s.MBAGranularityPct = 0
	// Falls back to 10% steps rather than dividing by zero.
	if got, want := s.MBACap(50).Float64(), 0.5*s.PeakBandwidth.Float64(); math.Abs(got-want) > 1e-9 {
		t.Errorf("MBACap with zero granularity = %g, want %g", got, want)
	}
	s.MBAGranularityPct = 500
	if got := s.MBACap(50); got <= 0 || got > s.PeakBandwidth {
		t.Errorf("MBACap with absurd granularity = %g", got)
	}
}

// Property: the cap never under-serves the reservation and never exceeds
// peak; it is monotone in the reservation.
func TestMBACapProperties(t *testing.T) {
	s := MBANodeSpec()
	f := func(aRaw, bRaw uint16) bool {
		a := float64(aRaw%2000) / 10 // 0..200 GB/s
		b := float64(bRaw%2000) / 10
		ca, cb := s.MBACap(units.GBpsOf(a)).Float64(), s.MBACap(units.GBpsOf(b)).Float64()
		if a > 0 {
			if ca < math.Min(a, s.PeakBandwidth.Float64())-1e-9 || ca > s.PeakBandwidth.Float64()+1e-9 {
				return false
			}
		}
		if a <= b && a > 0 && b > 0 && ca > cb+1e-9 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
