// Package hw models the compute-node hardware that Spread-n-Share
// manages: CPU cores, the shared last-level cache partitioned in ways via
// Intel CAT, and the memory subsystem with its bandwidth roofline.
//
// The default parameters are calibrated to the paper's testbed: dual Intel
// Xeon E5-2680 v4 nodes (2 x 14 cores, 2 x 35 MB 20-way LLC, 128 GB DDR4)
// whose measured STREAM bandwidth is 18.80 GB/s with one core and
// 118.26 GB/s with all 28 cores, connected by EDR InfiniBand observed at
// 6.8 GB/s per node.
package hw

import (
	"fmt"

	"spreadnshare/internal/units"
)

// NodeSpec describes the hardware of a single compute node. Quantities
// carry their physical unit as a defined type (internal/units), so a
// GB/s figure cannot silently land in a way-count field or vice versa.
// The zero value is not useful; start from DefaultNodeSpec and override
// fields as needed.
type NodeSpec struct {
	// Cores is the number of CPU cores per node.
	Cores units.Cores
	// FreqGHz is the nominal core clock in GHz; together with a
	// program's IPC it yields instructions per second per core.
	FreqGHz units.GHz
	// LLCWays is the number of last-level-cache ways that CAT can
	// distribute among jobs. The paper's processors expose 20 ways.
	LLCWays units.Ways
	// LLCSizeMB is the total LLC capacity in MB (both sockets).
	LLCSizeMB float64
	// PeakBandwidth is the aggregate STREAM bandwidth with all cores
	// active (B(Cores)).
	PeakBandwidth units.GBps
	// SingleCoreBandwidth is the STREAM bandwidth a single sequential
	// reader achieves (B(1)).
	SingleCoreBandwidth units.GBps
	// NICBandwidth is the per-node network bandwidth.
	NICBandwidth units.GBps
	// IOBandwidth is the per-node bandwidth to the shared parallel
	// file system (supercomputers have no node-local disks;
	// Section 3.3). It is the third manageable resource dimension the
	// paper's extensibility claim names.
	IOBandwidth units.GBps
	// NICLatencyUS is the one-way network latency in microseconds.
	NICLatencyUS float64
	// MemoryGB is the main-memory capacity.
	MemoryGB float64
	// MaxCLOS is the number of CAT classes of service, bounding how
	// many disjoint LLC partitions one node supports (16 on the
	// paper's testbed).
	MaxCLOS int
	// MinWaysPerJob is the smallest LLC allocation the scheduler will
	// hand out; the paper uses 2 because a single way loses almost all
	// associativity.
	MinWaysPerJob units.Ways
	// HasMBA reports whether the processor supports Intel Memory
	// Bandwidth Allocation. The paper's 2018 testbed lacked it and
	// had to rely on profile-estimated bandwidth accounting (Section
	// 4.4); newer nodes can enforce the reservation in hardware.
	HasMBA bool
	// MBAGranularityPct is the MBA throttle step as a percentage of
	// peak bandwidth (Intel exposes ~10% steps).
	MBAGranularityPct int
}

// DefaultNodeSpec returns the paper's testbed node: a dual-socket Xeon
// E5-2680 v4 server.
func DefaultNodeSpec() NodeSpec {
	return NodeSpec{
		Cores:               28,
		FreqGHz:             2.4,
		LLCWays:             20,
		LLCSizeMB:           70,
		PeakBandwidth:       118.26,
		SingleCoreBandwidth: 18.80,
		NICBandwidth:        6.8,
		NICLatencyUS:        1.5,
		IOBandwidth:         2.0,
		MemoryGB:            128,
		MaxCLOS:             16,
		MinWaysPerJob:       2,
		HasMBA:              false,
		MBAGranularityPct:   10,
	}
}

// MBANodeSpec returns the default node upgraded with Memory Bandwidth
// Allocation support — the hardware the paper anticipates in Section 5.2.
func MBANodeSpec() NodeSpec {
	s := DefaultNodeSpec()
	s.HasMBA = true
	return s
}

// Validate reports whether the spec is internally consistent. A spec
// with a non-positive peak bandwidth or way count is rejected with a
// descriptive error rather than flowing a zero roofline or an empty LLC
// into the contention model, where it would only surface as a silently
// wrong digest.
func (s NodeSpec) Validate() error {
	switch {
	case s.Cores <= 0:
		return fmt.Errorf("hw: node must have at least one core, got %d", s.Cores)
	case s.FreqGHz <= 0:
		return fmt.Errorf("hw: frequency must be positive, got %g", s.FreqGHz)
	case s.LLCWays <= 0:
		return fmt.Errorf("hw: LLC must have at least one way, got %d (a zero-way cache cannot be partitioned)", s.LLCWays)
	case s.PeakBandwidth <= 0:
		return fmt.Errorf("hw: peak STREAM bandwidth must be positive, got %g GB/s (the roofline B(k) collapses at zero)", s.PeakBandwidth)
	case s.PeakBandwidth < s.SingleCoreBandwidth:
		return fmt.Errorf("hw: peak bandwidth %g below single-core bandwidth %g",
			s.PeakBandwidth, s.SingleCoreBandwidth)
	case s.SingleCoreBandwidth <= 0:
		return fmt.Errorf("hw: single-core bandwidth must be positive, got %g", s.SingleCoreBandwidth)
	case s.NICBandwidth <= 0:
		return fmt.Errorf("hw: NIC bandwidth must be positive, got %g", s.NICBandwidth)
	case s.IOBandwidth <= 0:
		return fmt.Errorf("hw: I/O bandwidth must be positive, got %g", s.IOBandwidth)
	case s.MinWaysPerJob < 1 || s.MinWaysPerJob > s.LLCWays:
		return fmt.Errorf("hw: MinWaysPerJob %d out of range 1..%d", s.MinWaysPerJob, s.LLCWays)
	}
	return nil
}

// ClusterSpec describes a homogeneous cluster of nodes.
type ClusterSpec struct {
	Nodes int
	Node  NodeSpec
}

// DefaultClusterSpec returns the paper's 8-node test cluster.
func DefaultClusterSpec() ClusterSpec {
	return ClusterSpec{Nodes: 8, Node: DefaultNodeSpec()}
}

// Validate reports whether the cluster spec is usable.
func (c ClusterSpec) Validate() error {
	if c.Nodes <= 0 {
		return fmt.Errorf("hw: cluster must have at least one node, got %d", c.Nodes)
	}
	return c.Node.Validate()
}

// TotalCores returns the core count of the whole cluster.
func (c ClusterSpec) TotalCores() int { return c.Nodes * c.Node.Cores.Int() }
