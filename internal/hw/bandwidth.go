package hw

import (
	"math"

	"spreadnshare/internal/units"
)

// StreamBandwidth returns the aggregate memory bandwidth B(k) achievable
// with k cores issuing homogeneous streaming accesses.
//
// The curve is the saturating roofline
//
//	B(k) = Bpeak * (1 - (1 - b1/Bpeak)^k)
//
// which matches the paper's STREAM measurements (Figure 3): linear growth
// for the first few cores (B(1) = 18.80, B(2) ~ 35 GB/s), levelling off
// around 8 cores and reaching 118.26 GB/s at 28 cores. This early
// saturation is exactly the self-contention that makes Compact-n-Exclusive
// placement a bottleneck for bandwidth-hungry programs.
func (s NodeSpec) StreamBandwidth(k units.Cores) units.GBps {
	if k <= 0 {
		return 0
	}
	if k >= s.Cores {
		return s.PeakBandwidth
	}
	r := 1 - s.SingleCoreBandwidth.Float64()/s.PeakBandwidth.Float64()
	return units.GBpsOf(s.PeakBandwidth.Float64() * (1 - math.Pow(r, k.Float64())))
}

// PerCoreBandwidth returns B(k)/k, the bandwidth available to each of k
// homogeneous cores (the blue declining curve of Figure 3).
func (s NodeSpec) PerCoreBandwidth(k units.Cores) units.GBps {
	if k <= 0 {
		return 0
	}
	return units.GBpsOf(s.StreamBandwidth(k).Float64() / k.Float64())
}

// WaterFill distributes supply among demands using max-min fairness: every
// demand is granted in full if the total fits; otherwise small consumers
// receive their full demand and the remaining supply is split equally among
// the large ones. The returned slice is aligned with demands and sums to
// min(supply, sum(demands)).
//
// This models how a saturated memory controller serves co-located jobs: a
// bandwidth-light job (EP, HC) keeps its trickle while bandwidth-bound jobs
// (MG, BW, LU) share whatever headroom remains.
func WaterFill(supply float64, demands []float64) []float64 {
	grants := make([]float64, len(demands))
	WaterFillInto(grants, supply, demands, make([]int, len(demands)))
	return grants
}

// WaterFillInto is WaterFill writing into caller-provided storage so hot
// paths can reuse buffers: grants receives the result and order is index
// scratch; both must have len(demands). It performs no allocations.
//
//sns:hotpath
func WaterFillInto(grants []float64, supply float64, demands []float64, order []int) {
	for i := range grants {
		grants[i] = 0
	}
	if supply <= 0 || len(demands) == 0 {
		return
	}
	total := 0.0
	for _, d := range demands {
		if d > 0 {
			total += d
		}
	}
	if total <= supply {
		for i, d := range demands {
			if d > 0 {
				grants[i] = d
			}
		}
		return
	}
	// Saturated: serve demands in ascending order, giving each the
	// smaller of its demand and an equal share of what is left.
	// Insertion sort: the slices here are per-node resident lists, a
	// handful of entries, and equal demands receive equal grants
	// regardless of tie order.
	for i := range order {
		order[i] = i
	}
	for i := 1; i < len(order); i++ {
		for k := i; k > 0 && demands[order[k-1]] > demands[order[k]]; k-- {
			order[k-1], order[k] = order[k], order[k-1]
		}
	}
	remaining := supply
	left := 0
	for _, i := range order {
		if demands[i] > 0 {
			left++
		}
	}
	for _, i := range order {
		d := demands[i]
		if d <= 0 {
			continue
		}
		share := remaining / float64(left)
		g := math.Min(d, share)
		grants[i] = g
		remaining -= g
		left--
	}
}
