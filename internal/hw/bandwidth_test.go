package hw

import (
	"math"
	"testing"
	"testing/quick"

	"spreadnshare/internal/units"
)

func TestStreamBandwidthCalibration(t *testing.T) {
	s := DefaultNodeSpec()
	if got := s.StreamBandwidth(1); math.Abs(got.Float64()-18.80) > 1e-9 {
		t.Errorf("B(1) = %g, want 18.80", got)
	}
	if got := s.StreamBandwidth(28); math.Abs(got.Float64()-118.26) > 1e-9 {
		t.Errorf("B(28) = %g, want 118.26", got)
	}
	// Two cores roughly double one core (paper measures 37.17).
	if got := s.StreamBandwidth(2); got < 30 || got > 40 {
		t.Errorf("B(2) = %g, want near 2x single core", got)
	}
	// The curve levels off: by 8 cores we are within 30%% of peak.
	if got := s.StreamBandwidth(8); got < 0.70*s.PeakBandwidth {
		t.Errorf("B(8) = %g, want >= 70%% of peak %g", got, s.PeakBandwidth)
	}
}

func TestStreamBandwidthMonotone(t *testing.T) {
	s := DefaultNodeSpec()
	prev := units.GBps(0)
	for k := units.Cores(1); k <= s.Cores; k++ {
		b := s.StreamBandwidth(k)
		if b <= prev {
			t.Fatalf("B(%d) = %g not strictly above B(%d) = %g", k, b, k-1, prev)
		}
		prev = b
	}
	if got := s.StreamBandwidth(s.Cores + 10); got != s.PeakBandwidth {
		t.Errorf("B beyond core count = %g, want peak %g", got, s.PeakBandwidth)
	}
}

func TestPerCoreBandwidthDeclines(t *testing.T) {
	s := DefaultNodeSpec()
	prev := units.GBpsOf(math.Inf(1))
	for k := units.Cores(1); k <= s.Cores; k++ {
		pc := s.PerCoreBandwidth(k)
		if pc >= prev {
			t.Fatalf("per-core bandwidth at %d cores = %g, not below %g", k, pc, prev)
		}
		prev = pc
	}
	// Paper: at 28 cores per-core bandwidth dips to ~22%% of single-core.
	ratio := s.PerCoreBandwidth(28).Float64() / s.PerCoreBandwidth(1).Float64()
	if ratio < 0.15 || ratio > 0.35 {
		t.Errorf("per-core ratio 28c/1c = %g, want around 0.22", ratio)
	}
}

func TestPerCoreBandwidthEdge(t *testing.T) {
	s := DefaultNodeSpec()
	if got := s.PerCoreBandwidth(0); got != 0 {
		t.Errorf("PerCoreBandwidth(0) = %g, want 0", got)
	}
	if got := s.StreamBandwidth(-3); got != 0 {
		t.Errorf("StreamBandwidth(-3) = %g, want 0", got)
	}
}

func TestWaterFillUnderSupplied(t *testing.T) {
	g := WaterFill(100, []float64{10, 20, 30})
	want := []float64{10, 20, 30}
	for i := range want {
		if g[i] != want[i] {
			t.Errorf("grant[%d] = %g, want %g", i, g[i], want[i])
		}
	}
}

func TestWaterFillSaturated(t *testing.T) {
	// Supply 60 against demands 10, 40, 50: the small consumer keeps 10,
	// the remaining 50 splits equally between the two big ones.
	g := WaterFill(60, []float64{10, 40, 50})
	if g[0] != 10 {
		t.Errorf("small consumer granted %g, want full 10", g[0])
	}
	if math.Abs(g[1]-25) > 1e-9 || math.Abs(g[2]-25) > 1e-9 {
		t.Errorf("big consumers granted %g, %g, want 25, 25", g[1], g[2])
	}
}

func TestWaterFillZeroAndNegative(t *testing.T) {
	g := WaterFill(50, []float64{0, -5, 30})
	if g[0] != 0 || g[1] != 0 {
		t.Errorf("non-positive demands granted %g, %g, want 0, 0", g[0], g[1])
	}
	if g[2] != 30 {
		t.Errorf("positive demand granted %g, want 30", g[2])
	}
	if g := WaterFill(0, []float64{10}); g[0] != 0 {
		t.Errorf("zero supply granted %g, want 0", g[0])
	}
	if g := WaterFill(10, nil); len(g) != 0 {
		t.Errorf("nil demands returned %v, want empty", g)
	}
}

// Property: grants never exceed demands, never exceed supply in total, and
// conserve exactly min(supply, total demand).
func TestWaterFillProperties(t *testing.T) {
	f := func(supply float64, raw []float64) bool {
		supply = math.Mod(math.Abs(supply), 1000)
		demands := make([]float64, len(raw))
		total := 0.0
		for i, d := range raw {
			demands[i] = math.Mod(math.Abs(d), 100)
			total += demands[i]
		}
		g := WaterFill(supply, demands)
		sum := 0.0
		for i, gi := range g {
			if gi < 0 || gi > demands[i]+1e-9 {
				return false
			}
			sum += gi
		}
		want := math.Min(supply, total)
		return math.Abs(sum-want) < 1e-6*(1+want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: water-filling is fair — a job never receives less than another
// job with a smaller or equal demand.
func TestWaterFillFairnessProperty(t *testing.T) {
	f := func(supply float64, raw []float64) bool {
		supply = math.Mod(math.Abs(supply), 500)
		demands := make([]float64, len(raw))
		for i, d := range raw {
			demands[i] = math.Mod(math.Abs(d), 100)
		}
		g := WaterFill(supply, demands)
		for i := range demands {
			for j := range demands {
				if demands[i] <= demands[j] && g[i] > g[j]+1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
