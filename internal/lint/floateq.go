package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Floateq flags the two float patterns that corrupt golden digests:
//
//   - `==` / `!=` between two computed float expressions. Rounding makes
//     such comparisons fragile across compilers and refactors; compare
//     against an epsilon, or justify the exact comparison with
//     `//lint:floateq <why>` (legitimate when both sides are the same
//     computation, e.g. sort-rank tie detection). Comparison against a
//     compile-time constant is allowed: those are sentinel checks
//     (`x == 0`), which are exact by construction.
//   - float accumulation (`+=`, `-=`, `*=`, `/=`) inside a range over a
//     map. Float addition does not associate, so the sum depends on
//     Go's randomized iteration order. A //lint:ordered directive does
//     NOT silence this (it belongs to mapiter); only an explicit
//     `//lint:floateq <why>` does, e.g. when every addend is a small
//     integer stored in a float and the sum is therefore exact.
var Floateq = &Analyzer{
	Name: "floateq",
	Doc: "flags ==/!= between computed floats and float accumulation " +
		"over map iteration order",
	Run: runFloateq,
}

func runFloateq(pass *Pass) {
	for _, f := range pass.Files {
		var mapRanges []*ast.RangeStmt
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				return true
			}
			// Track the enclosing map-range nest.
			for len(mapRanges) > 0 && n.Pos() >= mapRanges[len(mapRanges)-1].End() {
				mapRanges = mapRanges[:len(mapRanges)-1]
			}
			switch v := n.(type) {
			case *ast.RangeStmt:
				if t := pass.Info.TypeOf(v.X); t != nil {
					if _, isMap := t.Underlying().(*types.Map); isMap {
						mapRanges = append(mapRanges, v)
					}
				}
			case *ast.BinaryExpr:
				if v.Op != token.EQL && v.Op != token.NEQ {
					return true
				}
				if !floatOperand(pass, v.X) || !floatOperand(pass, v.Y) {
					return true
				}
				if isConst(pass, v.X) || isConst(pass, v.Y) {
					return true
				}
				pass.Reportf(v.OpPos, "%s between computed floats is rounding-fragile; use an epsilon or justify with //lint:floateq", v.Op)
			case *ast.AssignStmt:
				if len(mapRanges) == 0 {
					return true
				}
				switch v.Tok {
				case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
					if t := pass.Info.TypeOf(v.Lhs[0]); t != nil && isFloat(t) {
						pass.Reportf(v.Pos(), "float accumulation over map iteration order is nondeterministic; sum over a sorted slice")
					}
				}
			}
			return true
		})
	}
}

// floatOperand reports whether the expression has floating-point type.
func floatOperand(pass *Pass, e ast.Expr) bool {
	t := pass.Info.TypeOf(e)
	return t != nil && isFloat(t)
}

// isConst reports whether the expression is a compile-time constant.
func isConst(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	return ok && tv.Value != nil
}
