package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Mapiter flags `for range` over map values in deterministic code. Go
// randomizes map iteration order per run, so any loop whose effect
// depends on visit order silently breaks bit-identical replay — the
// exact bug class PR 1 had to hand-fix in NodeBandwidth summation.
//
// A loop escapes the flag in two ways:
//
//   - it is provably order-insensitive: every statement in the body is
//     a commutative integer accumulation, an assignment into another
//     map keyed by this loop's key, a delete, or control flow composed
//     of those — and no right-hand side reads a variable the loop also
//     writes (other than the accumulator itself);
//   - it carries a justified `//lint:ordered <why>` directive, for
//     patterns the prover cannot see (e.g. collect-then-sort).
var Mapiter = &Analyzer{
	Name:      "mapiter",
	Directive: "ordered",
	Doc: "flags range-over-map loops whose effect can depend on Go's " +
		"randomized iteration order",
	Run: runMapiter,
}

func runMapiter(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.Info.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			if orderInsensitive(pass, rs) {
				return true
			}
			pass.Reportf(rs.Pos(), "map iteration order is nondeterministic; iterate a sorted key slice, or justify with //lint:ordered")
			return true
		})
	}
}

// orderInsensitive reports whether the loop body provably commutes
// across iteration orders.
func orderInsensitive(pass *Pass, rs *ast.RangeStmt) bool {
	key := rangeVarObj(pass, rs.Key)
	written := map[types.Object]bool{}
	collectWrites(pass, rs.Body, written)
	for _, s := range rs.Body.List {
		if !commutativeStmt(pass, s, key, written) {
			return false
		}
	}
	return true
}

// rangeVarObj resolves the object a range clause binds (nil for `_` or
// absent variables).
func rangeVarObj(pass *Pass, e ast.Expr) types.Object {
	id, ok := e.(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	if o := pass.Info.Defs[id]; o != nil {
		return o
	}
	return pass.Info.Uses[id]
}

// collectWrites gathers every object assigned, incremented, or
// address-taken inside the body.
func collectWrites(pass *Pass, body ast.Node, out map[types.Object]bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				if o := rootObj(pass, lhs); o != nil {
					out[o] = true
				}
			}
		case *ast.IncDecStmt:
			if o := rootObj(pass, s.X); o != nil {
				out[o] = true
			}
		case *ast.UnaryExpr:
			if s.Op == token.AND {
				if o := rootObj(pass, s.X); o != nil {
					out[o] = true
				}
			}
		}
		return true
	})
}

// rootObj resolves the base identifier of an lvalue chain (x, x.f,
// x[i], *x ...).
func rootObj(pass *Pass, e ast.Expr) types.Object {
	for {
		switch v := e.(type) {
		case *ast.Ident:
			if o := pass.Info.Uses[v]; o != nil {
				return o
			}
			return pass.Info.Defs[v]
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		default:
			return nil
		}
	}
}

// commutativeStmt reports whether one statement is order-insensitive on
// its own: integer accumulation, keyed map assignment, delete, or
// control flow over those.
func commutativeStmt(pass *Pass, s ast.Stmt, key types.Object, written map[types.Object]bool) bool {
	switch st := s.(type) {
	case *ast.AssignStmt:
		return commutativeAssign(pass, st, key, written)
	case *ast.IncDecStmt:
		t := pass.Info.TypeOf(st.X)
		return t != nil && isInteger(t)
	case *ast.ExprStmt:
		// delete(m, k) removes each visited key independently.
		call, ok := st.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		fn, ok := call.Fun.(*ast.Ident)
		if !ok || len(call.Args) != 2 {
			return false
		}
		if b, isB := pass.Info.Uses[fn].(*types.Builtin); !isB || b.Name() != "delete" {
			return false
		}
		return key != nil && rootObj(pass, call.Args[1]) == key
	case *ast.IfStmt:
		if st.Init != nil || !readsOnlyStable(pass, st.Cond, key, written, nil) {
			return false
		}
		for _, inner := range st.Body.List {
			if !commutativeStmt(pass, inner, key, written) {
				return false
			}
		}
		if st.Else != nil {
			eb, ok := st.Else.(*ast.BlockStmt)
			if !ok {
				return false
			}
			for _, inner := range eb.List {
				if !commutativeStmt(pass, inner, key, written) {
					return false
				}
			}
		}
		return true
	case *ast.BlockStmt:
		for _, inner := range st.List {
			if !commutativeStmt(pass, inner, key, written) {
				return false
			}
		}
		return true
	case *ast.BranchStmt:
		return st.Tok == token.CONTINUE
	}
	return false
}

// commutativeAssign accepts two shapes: `m[key] = expr` (per-key
// independent) and `acc op= intExpr` for commutative integer ops. In
// both, the right-hand side must not read loop-written state other than
// the accumulator itself.
func commutativeAssign(pass *Pass, st *ast.AssignStmt, key types.Object, written map[types.Object]bool) bool {
	if len(st.Lhs) != 1 || len(st.Rhs) != 1 {
		return false
	}
	lhs, rhs := st.Lhs[0], st.Rhs[0]
	switch st.Tok {
	case token.ASSIGN, token.DEFINE:
		ix, ok := lhs.(*ast.IndexExpr)
		if !ok || key == nil {
			return false
		}
		if rootObj(pass, ix.Index) != key {
			return false
		}
		if _, isMap := pass.Info.TypeOf(ix.X).Underlying().(*types.Map); !isMap {
			return false
		}
		return readsOnlyStable(pass, rhs, key, written, nil)
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN,
		token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN, token.AND_NOT_ASSIGN:
		t := pass.Info.TypeOf(lhs)
		if t == nil || !isInteger(t) {
			return false
		}
		acc := rootObj(pass, lhs)
		return readsOnlyStable(pass, rhs, key, written, acc)
	}
	return false
}

// readsOnlyStable reports whether expr reads no object the loop writes,
// except the range variables themselves and the permitted accumulator.
// Function calls are rejected outright: their effects are invisible.
func readsOnlyStable(pass *Pass, expr ast.Expr, key types.Object, written map[types.Object]bool, acc types.Object) bool {
	ok := true
	ast.Inspect(expr, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.CallExpr:
			// Allow pure conversions like float64(x) and len/cap.
			if !stableCall(pass, v) {
				ok = false
			}
		case *ast.Ident:
			o := pass.Info.Uses[v]
			if o == nil || o == key || o == acc {
				return true
			}
			if written[o] {
				ok = false
			}
		}
		return ok
	})
	return ok
}

// stableCall accepts type conversions and the len/cap builtins, which
// read state without ordering effects.
func stableCall(pass *Pass, call *ast.CallExpr) bool {
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		if b, isB := pass.Info.Uses[fn].(*types.Builtin); isB {
			return b.Name() == "len" || b.Name() == "cap"
		}
		if _, isType := pass.Info.Uses[fn].(*types.TypeName); isType {
			return true
		}
	case *ast.SelectorExpr:
		if _, isType := pass.Info.Uses[fn.Sel].(*types.TypeName); isType {
			return true
		}
	}
	return false
}
