package lint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Transition enforces state-machine discipline on fields annotated
//
//	//sns:statemachine A>B,B>C,B>D
//
// (constant names of the field's enum type, `from>to` edges). A write
// of such a field to constant C is legal only where the prior state is
// provably one of C's declared predecessors:
//
//   - a dominating comparison on the same field (`if x.f == A {...}`,
//     `if x.f != A { return }`, including &&/||/! compositions),
//   - a dominating `switch x.f` case clause (or a preceding switch
//     whose other clauses all terminate),
//   - or //sns:transition <from...> on the enclosing helper, which
//     asserts the prior set for the helper's state-carrying parameter —
//     and moves the proof obligation to the helper's call sites.
//
// Composite literals may set the field only to an initial state (one
// with no incoming edge); snapshot-restore literals that re-admit
// recorded states carry a justified suppression instead. Non-constant
// writes and any write outside the field's declaring package are
// findings. Suppress with a justified //lint:transition.
var Transition = &Analyzer{
	Name: "transition",
	Wide: true,
	Doc: "proves writes to //sns:statemachine-annotated fields follow the " +
		"declared lifecycle edges: the prior state must be a provable " +
		"predecessor (dominating comparison/switch on the field, or a " +
		"//sns:transition helper checked at its call sites)",
	Run: runTransition,
}

func runTransition(pass *Pass) {
	if pass.Prog == nil {
		return
	}
	for _, f := range pass.Prog.transitionFindings()[pass.Pkg] {
		pass.Reportf(f.pos, "%s", f.msg)
	}
}

// machineDecl is one raw //sns:statemachine annotation site.
type machineDecl struct {
	pkg       *Package
	structKey string // "pkgpath.Type" of the struct declaring the field
	field     string
	pos       token.Pos
	edges     string // raw "A>B,C>D" edge list
}

// machine is a resolved state machine: the enum type, its declared
// constants, and the predecessor relation parsed from the edges.
type machine struct {
	decl     *machineDecl
	fieldKey string // structKey + "." + field
	typeKey  string // "pkgpath.Name" of the enum type
	states   []string
	all      map[string]bool
	preds    map[string]map[string]bool // to -> legal from set
	initial  map[string]bool            // states with no incoming edge
}

// transHelper is one //sns:transition-annotated function: it asserts
// that its state-carrying parameter arrives in one of the from states.
type transHelper struct {
	m        *machine
	from     map[string]bool
	param    string // the state-carrying parameter's name
	argIndex int    // index into call Args; -1 = method receiver
}

// transitionFindings runs the whole-program transition proof once per
// Program and caches the per-package findings.
func (pr *Program) transitionFindings() map[*types.Package][]posFinding {
	pr.transOnce.Do(func() {
		pr.transMap = map[*types.Package][]posFinding{}
		pr.index()
		if len(pr.machines) == 0 {
			return
		}
		machines := pr.resolveMachines()
		helpers := pr.resolveHelpers(machines)
		tc := &transChecker{pr: pr, machines: machines, helpers: helpers}
		for _, pkg := range pr.Packages {
			for _, f := range pkg.Files {
				for _, decl := range f.Decls {
					fd, ok := decl.(*ast.FuncDecl)
					if !ok || fd.Body == nil {
						continue
					}
					obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
					if !ok {
						continue
					}
					tc.checkFunc(&SrcFunc{Pkg: pkg, Decl: fd, Obj: obj})
				}
			}
		}
	})
	return pr.transMap
}

func (pr *Program) transReport(pkg *Package, pos token.Pos, format string, args ...any) {
	pr.transMap[pkg.Types] = append(pr.transMap[pkg.Types],
		posFinding{pos: pos, msg: fmt.Sprintf(format, args...)})
}

// resolveMachines parses every //sns:statemachine declaration: the
// field's enum type, the type's declared constants (in value order),
// and the edge list.
func (pr *Program) resolveMachines() []*machine {
	keys := make([]string, 0, len(pr.machines))
	for k := range pr.machines {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var out []*machine
	for _, key := range keys {
		decl := pr.machines[key]
		m := pr.resolveMachine(decl, key)
		if m != nil {
			out = append(out, m)
		}
	}
	return out
}

func (pr *Program) resolveMachine(decl *machineDecl, fieldKey string) *machine {
	structName := strings.TrimPrefix(decl.structKey, decl.pkg.Path+".")
	tn, ok := decl.pkg.Types.Scope().Lookup(structName).(*types.TypeName)
	if !ok {
		return nil
	}
	st, ok := tn.Type().Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	var fieldType types.Type
	for i := 0; i < st.NumFields(); i++ {
		if st.Field(i).Name() == decl.field {
			fieldType = st.Field(i).Type()
		}
	}
	if fieldType == nil {
		return nil
	}
	typeKey, ok := namedKey(fieldType)
	if !ok {
		pr.transReport(decl.pkg, decl.pos,
			"//sns:statemachine on field %s, whose type is not a defined enum type", fieldKey)
		return nil
	}
	m := &machine{
		decl:     decl,
		fieldKey: fieldKey,
		typeKey:  typeKey,
		all:      map[string]bool{},
		preds:    map[string]map[string]bool{},
		initial:  map[string]bool{},
	}
	for _, name := range enumConstNames(fieldType) {
		m.states = append(m.states, name)
		m.all[name] = true
	}
	if len(m.states) == 0 {
		pr.transReport(decl.pkg, decl.pos,
			"//sns:statemachine on field %s, but type %s declares no constants", fieldKey, typeKey)
		return nil
	}
	targets := map[string]bool{}
	for _, edge := range strings.Split(decl.edges, ",") {
		from, to, ok := strings.Cut(edge, ">")
		if !ok || !m.all[from] || !m.all[to] {
			pr.transReport(decl.pkg, decl.pos,
				"//sns:statemachine edge %q on field %s does not name two declared %s constants",
				edge, fieldKey, typeKey)
			return nil
		}
		if m.preds[to] == nil {
			m.preds[to] = map[string]bool{}
		}
		m.preds[to][from] = true
		targets[to] = true
	}
	for _, s := range m.states {
		if !targets[s] {
			m.initial[s] = true
		}
	}
	return m
}

// enumConstNames returns the names of every package-level constant of
// the defined type t, ordered by constant value then name. The scope of
// the type's own declaring package is authoritative, which keeps the
// lookup stable across the loader's duplicated type universes.
func enumConstNames(t types.Type) []string {
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return nil
	}
	key := named.Obj().Pkg().Path() + "." + named.Obj().Name()
	scope := named.Obj().Pkg().Scope()
	type cv struct {
		name string
		val  constant.Value
	}
	var consts []cv
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok {
			continue
		}
		if k, ok := namedKey(c.Type()); !ok || k != key {
			continue
		}
		consts = append(consts, cv{name, c.Val()})
	}
	sort.SliceStable(consts, func(i, j int) bool {
		if c := constant.Compare(consts[i].val, token.LSS, consts[j].val); c {
			return true
		}
		if constant.Compare(consts[i].val, token.EQL, consts[j].val) {
			return consts[i].name < consts[j].name
		}
		return false
	})
	out := make([]string, len(consts))
	for i, c := range consts {
		out[i] = c.name
	}
	return out
}

// resolveHelpers validates every //sns:transition annotation and binds
// it to the machine its from-states name.
func (pr *Program) resolveHelpers(machines []*machine) map[string]*transHelper {
	var names []string
	for name, sf := range pr.funcs {
		if hasMarker(sf.Decl.Doc, "sns:transition") {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	out := map[string]*transHelper{}
	for _, name := range names {
		sf := pr.funcs[name]
		args, _ := markerArgs(sf.Decl.Doc, "sns:transition")
		var matches []*machine
		for _, m := range machines {
			if m.decl.pkg.Path != sf.Pkg.Path {
				continue
			}
			ok := len(args) > 0
			for _, a := range args {
				if !m.all[a] {
					ok = false
				}
			}
			if ok {
				matches = append(matches, m)
			}
		}
		if len(matches) != 1 {
			pr.transReport(sf.Pkg, sf.Decl.Pos(),
				"//sns:transition on %s must name states of exactly one state machine declared in package %s (matched %d)",
				sf.Obj.Name(), sf.Pkg.Path, len(matches))
			continue
		}
		m := matches[0]
		h := &transHelper{m: m, from: map[string]bool{}, argIndex: -2}
		for _, a := range args {
			h.from[a] = true
		}
		// The state-carrying parameter: the receiver or first parameter
		// whose type is the struct declaring the machine field.
		if sf.Decl.Recv != nil && len(sf.Decl.Recv.List) == 1 && len(sf.Decl.Recv.List[0].Names) == 1 {
			if key, ok := namedKey(sf.Pkg.Info.Defs[sf.Decl.Recv.List[0].Names[0]].Type()); ok && key == m.decl.structKey {
				h.param = sf.Decl.Recv.List[0].Names[0].Name
				h.argIndex = -1
			}
		}
		if h.argIndex == -2 {
			i := 0
			for _, p := range sf.Decl.Type.Params.List {
				for _, nm := range p.Names {
					if h.argIndex == -2 {
						if key, ok := namedKey(sf.Pkg.Info.Defs[nm].Type()); ok && key == m.decl.structKey {
							h.param = nm.Name
							h.argIndex = i
						}
					}
					i++
				}
			}
		}
		if h.argIndex == -2 {
			pr.transReport(sf.Pkg, sf.Decl.Pos(),
				"//sns:transition on %s, but no receiver or parameter has the state machine's struct type %s",
				sf.Obj.Name(), m.decl.structKey)
			continue
		}
		out[name] = h
	}
	return out
}

type transChecker struct {
	pr       *Program
	machines []*machine
	helpers  map[string]*transHelper
}

// machineFor matches a field selection against the declared machines.
func (tc *transChecker) machineFor(info *types.Info, sel *ast.SelectorExpr) *machine {
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	key, ok := namedKey(s.Recv())
	if !ok {
		return nil
	}
	fieldKey := key + "." + s.Obj().Name()
	for _, m := range tc.machines {
		if m.fieldKey == fieldKey {
			return m
		}
	}
	return nil
}

// constName resolves e to a declared constant of m's enum type.
func (tc *transChecker) constName(info *types.Info, e ast.Expr, m *machine) (string, bool) {
	var id *ast.Ident
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = x
	case *ast.SelectorExpr:
		id = x.Sel
	default:
		return "", false
	}
	c, ok := info.Uses[id].(*types.Const)
	if !ok {
		return "", false
	}
	if key, ok := namedKey(c.Type()); !ok || key != m.typeKey {
		return "", false
	}
	if !m.all[c.Name()] {
		return "", false
	}
	return c.Name(), true
}

// checkFunc finds every write, construction, and helper call touching a
// state machine in one function and proves each against the edges.
func (tc *transChecker) checkFunc(sf *SrcFunc) {
	info := sf.Pkg.Info
	ast.Inspect(sf.Decl.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range x.Lhs {
				sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				m := tc.machineFor(info, sel)
				if m == nil {
					continue
				}
				var rhs ast.Expr
				if len(x.Rhs) == len(x.Lhs) {
					rhs = x.Rhs[i]
				}
				tc.checkWrite(sf, x, sel, rhs, m)
			}
		case *ast.IncDecStmt:
			if sel, ok := ast.Unparen(x.X).(*ast.SelectorExpr); ok {
				if m := tc.machineFor(info, sel); m != nil {
					tc.pr.transReport(sf.Pkg, x.Pos(),
						"state field %s is stepped arithmetically; states move only along declared edges (route through a checked transition or justify with //lint:transition)",
						m.fieldKey)
				}
			}
		case *ast.CompositeLit:
			tc.checkComposite(sf, x)
		case *ast.CallExpr:
			callee := resolveCallee(info, x)
			if callee == nil {
				return true
			}
			h, ok := tc.helpers[callee.FullName()]
			if !ok {
				return true
			}
			tc.checkHelperCall(sf, x, callee, h)
		}
		return true
	})
}

// checkWrite proves one `x.f = v` assignment.
func (tc *transChecker) checkWrite(sf *SrcFunc, stmt ast.Stmt, sel *ast.SelectorExpr, rhs ast.Expr, m *machine) {
	if sf.Pkg.Path != m.decl.pkg.Path {
		tc.pr.transReport(sf.Pkg, sel.Pos(),
			"state field %s may only be written inside its owning package %s",
			m.fieldKey, m.decl.pkg.Path)
		return
	}
	if rhs == nil {
		tc.pr.transReport(sf.Pkg, sel.Pos(),
			"state field %s is written from a tuple assignment; assign a declared %s constant under a dominating state guard",
			m.fieldKey, m.typeKey)
		return
	}
	to, ok := tc.constName(sf.Pkg.Info, rhs, m)
	if !ok {
		tc.pr.transReport(sf.Pkg, sel.Pos(),
			"state field %s is written from a non-constant expression; assign a declared %s constant under a dominating state guard, or justify with //lint:transition",
			m.fieldKey, m.typeKey)
		return
	}
	obj := canonExpr(sel.X)
	prior := tc.priorStates(sf, stmt, obj, m)
	legal := m.preds[to]
	if illegal := minusStates(prior, legal); len(illegal) > 0 {
		tc.pr.transReport(sf.Pkg, sel.Pos(),
			"transition of %s to %s is not proven: prior state could be %s, legal predecessors are %s (guard on %s.%s, use a //sns:transition helper, or justify with //lint:transition)",
			m.fieldKey, to, stateList(illegal, m), stateList(legal, m), obj, m.decl.field)
	}
}

// checkComposite proves a struct literal only seeds initial states.
func (tc *transChecker) checkComposite(sf *SrcFunc, lit *ast.CompositeLit) {
	info := sf.Pkg.Info
	key, st, ok := structLit(info, lit)
	if !ok {
		return
	}
	var m *machine
	for _, cand := range tc.machines {
		if cand.decl.structKey == key {
			m = cand
		}
	}
	if m == nil {
		return
	}
	for i, elt := range lit.Elts {
		var val ast.Expr
		if kv, isKV := elt.(*ast.KeyValueExpr); isKV {
			id, isID := kv.Key.(*ast.Ident)
			if !isID || id.Name != m.decl.field {
				continue
			}
			val = kv.Value
		} else {
			if i >= st.NumFields() || st.Field(i).Name() != m.decl.field {
				continue
			}
			val = elt
		}
		name, isConst := tc.constName(info, val, m)
		switch {
		case !isConst:
			tc.pr.transReport(sf.Pkg, val.Pos(),
				"composite literal sets state field %s from a non-constant expression; new values start in an initial state (%s), or justify with //lint:transition",
				m.fieldKey, stateList(m.initial, m))
		case !m.initial[name]:
			tc.pr.transReport(sf.Pkg, val.Pos(),
				"composite literal sets state field %s to %s, which has incoming edges; construction may only seed initial states (%s)",
				m.fieldKey, name, stateList(m.initial, m))
		}
	}
}

// checkHelperCall proves the prior state at a //sns:transition helper's
// call site is within the helper's declared from set.
func (tc *transChecker) checkHelperCall(sf *SrcFunc, call *ast.CallExpr, callee *types.Func, h *transHelper) {
	var target ast.Expr
	if h.argIndex >= 0 {
		if h.argIndex < len(call.Args) {
			target = call.Args[h.argIndex]
		}
	} else if fun, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		target = fun.X
	}
	if target == nil {
		return
	}
	obj := canonExpr(target)
	prior := tc.priorStates(sf, call, obj, h.m)
	if illegal := minusStates(prior, h.from); len(illegal) > 0 {
		tc.pr.transReport(sf.Pkg, call.Pos(),
			"call to //sns:transition helper %s requires prior state in %s, but %s's state here could be %s (guard on %s.%s or justify with //lint:transition)",
			callee.Name(), stateList(h.from, h.m), obj, stateList(illegal, h.m), obj, h.m.decl.field)
	}
}

// priorStates computes the provable set of states obj's machine field
// can hold when control reaches node inside sf: the universe (or the
// //sns:transition seed when sf is a helper and obj its parameter),
// narrowed by every dominating condition on the path — enclosing if
// branches, enclosing switch clauses on the field, preceding sibling
// guards whose bodies terminate, and preceding switches on the field
// whose matching clauses all return. Crossing into a function literal
// resets to the universe: the closure may run under any state.
func (tc *transChecker) priorStates(sf *SrcFunc, node ast.Node, obj string, m *machine) map[string]bool {
	cur := cloneStates(m.all)
	if h, ok := tc.helpers[sf.Obj.FullName()]; ok && h.m == m && obj == h.param {
		cur = cloneStates(h.from)
	}
	objField := obj + "." + m.decl.field

	// Every ancestor of node, outer to inner, by position containment.
	pos := node.Pos()
	var path []ast.Node
	ast.Inspect(sf.Decl.Body, func(n ast.Node) bool {
		if n == nil {
			return true
		}
		if n.Pos() <= pos && pos < n.End() {
			path = append(path, n)
			return true
		}
		return false
	})
	for i := 0; i < len(path)-1; i++ {
		child := path[i+1]
		switch p := path[i].(type) {
		case *ast.FuncLit:
			cur = cloneStates(m.all)
		case *ast.IfStmt:
			if child == p.Body {
				cur = intersectStates(cur, tc.condStates(sf, p.Cond, objField, m, true))
			} else if child == p.Else {
				cur = intersectStates(cur, tc.condStates(sf, p.Cond, objField, m, false))
			}
		case *ast.SwitchStmt:
			// The path descends SwitchStmt -> BlockStmt -> CaseClause.
			var cc *ast.CaseClause
			if i+2 < len(path) {
				cc, _ = path[i+2].(*ast.CaseClause)
			}
			if cc == nil || p.Tag == nil || !tc.fieldExprIs(sf, p.Tag, objField, m) {
				continue
			}
			if cc.List == nil {
				// default: everything the other clauses name is excluded.
				for _, other := range p.Body.List {
					oc := other.(*ast.CaseClause)
					for _, e := range oc.List {
						if name, ok := tc.constName(sf.Pkg.Info, e, m); ok {
							delete(cur, name)
						}
					}
				}
			} else {
				listed := map[string]bool{}
				exact := true
				for _, e := range cc.List {
					name, ok := tc.constName(sf.Pkg.Info, e, m)
					if !ok {
						exact = false
					}
					listed[name] = true
				}
				if exact {
					cur = intersectStates(cur, listed)
				}
			}
		case *ast.BlockStmt:
			if i > 0 {
				// A switch/select body's clauses are exclusive
				// alternatives, not sequential statements.
				switch path[i-1].(type) {
				case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
					continue
				}
			}
			cur = tc.applySiblings(sf, p.List, child, objField, m, cur)
		case *ast.CaseClause:
			cur = tc.applySiblings(sf, p.Body, child, objField, m, cur)
		case *ast.CommClause:
			cur = tc.applySiblings(sf, p.Body, child, objField, m, cur)
		}
	}
	return cur
}

// applySiblings narrows cur with the statements preceding child in one
// block: terminal if-guards contribute their negated condition,
// preceding switches on the field remove the states whose clauses
// terminate, and any other statement that writes the field resets the
// set (to the written constant when that is all the statement does).
func (tc *transChecker) applySiblings(sf *SrcFunc, list []ast.Stmt, child ast.Node, objField string, m *machine, cur map[string]bool) map[string]bool {
	for _, s := range list {
		if s == child {
			break
		}
		if ifs, ok := s.(*ast.IfStmt); ok && ifs.Else == nil && ifs.Init == nil && terminates(ifs.Body.List) {
			// Writes inside a terminated body never reach past it.
			cur = intersectStates(cur, tc.condStates(sf, ifs.Cond, objField, m, false))
			continue
		}
		if sw, ok := s.(*ast.SwitchStmt); ok && sw.Tag != nil && sw.Init == nil && tc.fieldExprIs(sf, sw.Tag, objField, m) {
			cur = tc.switchSurvivors(sf, sw, objField, m, cur)
			continue
		}
		if wrote, name := tc.writesField(sf, s, objField, m); wrote {
			if name != "" {
				cur = map[string]bool{name: true}
			} else {
				cur = cloneStates(m.all)
			}
		}
	}
	return cur
}

// switchSurvivors computes which states can flow past a preceding
// `switch x.f` statement: a state survives when no clause matches it,
// or its clause neither terminates nor writes the field.
func (tc *transChecker) switchSurvivors(sf *SrcFunc, sw *ast.SwitchStmt, objField string, m *machine, cur map[string]bool) map[string]bool {
	type clause struct {
		states  map[string]bool // nil = default
		exact   bool
		term    bool
		rewrite string // "" = none or unknown
		writes  bool
	}
	var clauses []clause
	for _, stmt := range sw.Body.List {
		cc := stmt.(*ast.CaseClause)
		c := clause{term: terminates(cc.Body), exact: true}
		if cc.List != nil {
			c.states = map[string]bool{}
			for _, e := range cc.List {
				name, ok := tc.constName(sf.Pkg.Info, e, m)
				if !ok {
					c.exact = false
				}
				c.states[name] = true
			}
		}
		for _, body := range cc.Body {
			if wrote, name := tc.writesField(sf, body, objField, m); wrote {
				c.writes = true
				c.rewrite = name
			}
		}
		clauses = append(clauses, c)
	}
	out := map[string]bool{}
	for s := range cur {
		var match *clause
		for i := range clauses {
			if clauses[i].states != nil && clauses[i].exact && clauses[i].states[s] {
				match = &clauses[i]
				break
			}
			if !clauses[i].exact {
				// A non-constant case arm could match anything.
				match = &clauses[i]
				break
			}
		}
		if match == nil {
			for i := range clauses {
				if clauses[i].states == nil {
					match = &clauses[i]
				}
			}
		}
		switch {
		case match == nil:
			out[s] = true // no clause matches: falls through unchanged
		case match.term:
			// removed: that path never reaches past the switch
		case match.writes && match.rewrite != "":
			out[match.rewrite] = true
		case match.writes:
			return cloneStates(m.all)
		default:
			out[s] = true
		}
	}
	return out
}

// writesField reports whether stmt's subtree assigns objField, and the
// constant written when stmt is exactly that single assignment.
func (tc *transChecker) writesField(sf *SrcFunc, stmt ast.Stmt, objField string, m *machine) (bool, string) {
	info := sf.Pkg.Info
	found := false
	ast.Inspect(stmt, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				if sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr); ok &&
					tc.fieldExprIs(sf, sel, objField, m) {
					found = true
				}
			}
		case *ast.IncDecStmt:
			if sel, ok := ast.Unparen(x.X).(*ast.SelectorExpr); ok &&
				tc.fieldExprIs(sf, sel, objField, m) {
				found = true
			}
		}
		return true
	})
	if !found {
		return false, ""
	}
	if as, ok := stmt.(*ast.AssignStmt); ok && len(as.Lhs) == 1 && len(as.Rhs) == 1 {
		if sel, ok := ast.Unparen(as.Lhs[0]).(*ast.SelectorExpr); ok && tc.fieldExprIs(sf, sel, objField, m) {
			if name, ok := tc.constName(info, as.Rhs[0], m); ok {
				return true, name
			}
		}
	}
	return true, ""
}

// condStates evaluates a boolean condition into the state set objField
// must lie in when the condition is truthy (or falsy).
func (tc *transChecker) condStates(sf *SrcFunc, cond ast.Expr, objField string, m *machine, truthy bool) map[string]bool {
	switch c := ast.Unparen(cond).(type) {
	case *ast.BinaryExpr:
		switch c.Op {
		case token.LAND:
			a := tc.condStates(sf, c.X, objField, m, truthy)
			b := tc.condStates(sf, c.Y, objField, m, truthy)
			if truthy {
				return intersectStates(a, b)
			}
			return unionStates(a, b)
		case token.LOR:
			a := tc.condStates(sf, c.X, objField, m, truthy)
			b := tc.condStates(sf, c.Y, objField, m, truthy)
			if truthy {
				return unionStates(a, b)
			}
			return intersectStates(a, b)
		case token.EQL, token.NEQ:
			name, ok := tc.comparedConst(sf, c, objField, m)
			if !ok {
				return cloneStates(m.all)
			}
			if (c.Op == token.EQL) == truthy {
				return map[string]bool{name: true}
			}
			out := cloneStates(m.all)
			delete(out, name)
			return out
		}
	case *ast.UnaryExpr:
		if c.Op == token.NOT {
			return tc.condStates(sf, c.X, objField, m, !truthy)
		}
	}
	return cloneStates(m.all)
}

// comparedConst matches `x.f == C` / `C == x.f` shapes against objField.
func (tc *transChecker) comparedConst(sf *SrcFunc, c *ast.BinaryExpr, objField string, m *machine) (string, bool) {
	for _, pair := range [2][2]ast.Expr{{c.X, c.Y}, {c.Y, c.X}} {
		sel, ok := ast.Unparen(pair[0]).(*ast.SelectorExpr)
		if !ok || !tc.fieldExprIs(sf, sel, objField, m) {
			continue
		}
		if name, ok := tc.constName(sf.Pkg.Info, pair[1], m); ok {
			return name, true
		}
	}
	return "", false
}

// fieldExprIs reports whether e is a field selection of m's field on
// the same canonical object objField names.
func (tc *transChecker) fieldExprIs(sf *SrcFunc, e ast.Expr, objField string, m *machine) bool {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if tc.machineFor(sf.Pkg.Info, sel) != m {
		return false
	}
	return canonExpr(sel.X)+"."+m.decl.field == objField
}

// terminates reports whether a statement list always leaves the
// enclosing block: its last statement returns, branches, or panics.
func terminates(body []ast.Stmt) bool {
	if len(body) == 0 {
		return false
	}
	switch last := body[len(body)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

func cloneStates(s map[string]bool) map[string]bool {
	out := make(map[string]bool, len(s))
	for k := range s {
		out[k] = true
	}
	return out
}

func intersectStates(a, b map[string]bool) map[string]bool {
	out := map[string]bool{}
	for k := range a {
		if b[k] {
			out[k] = true
		}
	}
	return out
}

func unionStates(a, b map[string]bool) map[string]bool {
	out := cloneStates(a)
	for k := range b {
		out[k] = true
	}
	return out
}

func minusStates(a, b map[string]bool) map[string]bool {
	out := map[string]bool{}
	for k := range a {
		if !b[k] {
			out[k] = true
		}
	}
	return out
}

// stateList renders a state set in the machine's declaration order.
func stateList(set map[string]bool, m *machine) string {
	if len(set) == 0 {
		return "(none)"
	}
	var out []string
	for _, s := range m.states {
		if set[s] {
			out = append(out, s)
		}
	}
	return strings.Join(out, "/")
}
