package lint

import (
	"go/ast"
	"go/types"
)

// Goleak requires every `go` statement in the program to carry a
// statically provable join or termination path, so no refactor can
// silently orphan a goroutine:
//
//   - WaitGroup join: the spawned body calls Done (possibly deferred)
//     on a WaitGroup that some code in the program Waits on — the
//     ForEach / load-generator fan-out shape.
//   - Done-channel join: the spawned body closes a channel that some
//     code in the program receives from — the daemon's run/Shutdown
//     quit+done pair.
//   - Close-terminated worker: the spawned function's body is a
//     `for range ch` loop over a channel parameter (or field) that some
//     code in the program closes — the pool's parked workers.
//
// Identity is matched by object for locals (the WaitGroup declared two
// lines above the go statement) and by stable "pkgpath.Type.field" /
// "pkgpath.name" keys for fields and package variables, so the close or
// Wait may live in a different method or package than the spawn.
// Goroutines that are process-lifetime by design (a daemon's accept
// loop) carry a justified //lint:goleak directive instead.
var Goleak = &Analyzer{
	Name: "goleak",
	Wide: true,
	Doc: "requires every go statement to have a provable join or termination " +
		"path: a WaitGroup Done/Wait pair, a done-channel close/receive " +
		"pair, or a close-terminated worker loop",
	Run: runGoleak,
}

func runGoleak(pass *Pass) {
	if pass.Prog == nil {
		return
	}
	for _, f := range pass.Prog.goleakFindings()[pass.Pkg] {
		pass.Reportf(f.pos, "%s", f.msg)
	}
}

// leakIndex is the program-wide table of join evidence: channels that
// are closed, channels that are received from, and WaitGroups that are
// waited on. Keys are types.Object for locals and strings for fields
// and package-level variables (see chanKey).
type leakIndex struct {
	closes map[any]bool
	recvs  map[any]bool
	waits  map[any]bool
}

// goleakFindings runs the whole-program leak proof once per Program and
// caches the per-package findings.
func (pr *Program) goleakFindings() map[*types.Package][]posFinding {
	pr.leakOnce.Do(func() {
		pr.leakMap = map[*types.Package][]posFinding{}
		pr.index()
		idx := &leakIndex{closes: map[any]bool{}, recvs: map[any]bool{}, waits: map[any]bool{}}
		for _, pkg := range pr.Packages {
			for _, f := range pkg.Files {
				pr.indexJoins(idx, pkg, f)
			}
		}
		for _, pkg := range pr.Packages {
			for _, f := range pkg.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					g, ok := n.(*ast.GoStmt)
					if !ok {
						return true
					}
					if !pr.goJoinProven(idx, pkg, g) {
						pr.leakMap[pkg.Types] = append(pr.leakMap[pkg.Types], posFinding{
							pos: g.Pos(),
							msg: "goroutine has no provable join or termination path " +
								"(add a WaitGroup Done/Wait pair, a done-channel close/receive pair, " +
								"or a close-terminated worker loop; justify process-lifetime goroutines with //lint:goleak)",
						})
					}
					return true
				})
			}
		}
	})
	return pr.leakMap
}

// indexJoins records every close, channel receive, and WaitGroup Wait in
// one file.
func (pr *Program) indexJoins(idx *leakIndex, pkg *Package, f *ast.File) {
	info := pkg.Info
	ast.Inspect(f, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok && id.Name == "close" {
				if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin && len(x.Args) == 1 {
					if k, ok := chanKey(info, x.Args[0]); ok {
						idx.closes[k] = true
					}
				}
			}
			if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Wait" {
				if isSyncType(info.TypeOf(sel.X), "WaitGroup") {
					if k, ok := chanKey(info, sel.X); ok {
						idx.waits[k] = true
					}
				}
			}
		case *ast.UnaryExpr:
			if x.Op.String() == "<-" {
				if k, ok := chanKey(info, x.X); ok {
					idx.recvs[k] = true
				}
			}
		case *ast.RangeStmt:
			if t := info.TypeOf(x.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					if k, ok := chanKey(info, x.X); ok {
						idx.recvs[k] = true
					}
				}
			}
		}
		return true
	})
}

// goJoinProven checks one go statement against the three join shapes.
func (pr *Program) goJoinProven(idx *leakIndex, pkg *Package, g *ast.GoStmt) bool {
	info := pkg.Info

	// Resolve the spawned body: a literal, or a named function/method.
	var body *ast.BlockStmt
	bodyPkg := pkg
	var calleeDecl *ast.FuncDecl
	if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
		body = lit.Body
	} else if callee := resolveCallee(info, g.Call); callee != nil {
		if sf, ok := pr.FuncSource(callee); ok {
			body = sf.Decl.Body
			bodyPkg = sf.Pkg
			calleeDecl = sf.Decl
		}
	}
	if body == nil {
		return false
	}
	bodyInfo := bodyPkg.Info

	proven := false
	ast.Inspect(body, func(n ast.Node) bool {
		if proven {
			return false
		}
		switch x := n.(type) {
		case *ast.CallExpr:
			// WaitGroup join: the body Dones a group somebody Waits on.
			if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" {
				if isSyncType(bodyInfo.TypeOf(sel.X), "WaitGroup") {
					if k, ok := chanKey(bodyInfo, sel.X); ok && idx.waits[k] {
						proven = true
					}
				}
			}
			// Done-channel join: the body closes a channel somebody
			// receives from.
			if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok && id.Name == "close" {
				if _, isBuiltin := bodyInfo.Uses[id].(*types.Builtin); isBuiltin && len(x.Args) == 1 {
					if k, ok := chanKey(bodyInfo, x.Args[0]); ok && idx.recvs[k] {
						proven = true
					}
				}
			}
		case *ast.RangeStmt:
			// Close-terminated worker: the body ranges over a channel
			// somebody closes. A channel parameter maps back to the go
			// call's argument in the spawning function.
			t := bodyInfo.TypeOf(x.X)
			if t == nil {
				return true
			}
			if _, isChan := t.Underlying().(*types.Chan); !isChan {
				return true
			}
			k, ok := chanKey(bodyInfo, x.X)
			if !ok {
				return true
			}
			if calleeDecl != nil {
				if i, isParam := paramIndex(bodyInfo, calleeDecl, x.X); isParam && i < len(g.Call.Args) {
					if ak, ok := chanKey(info, g.Call.Args[i]); ok {
						k = ak
					}
				}
			}
			if idx.closes[k] {
				proven = true
			}
		}
		return true
	})
	return proven
}

// chanKey resolves an expression naming a channel or WaitGroup to a
// stable identity: the types.Object for locals, "field:pkgpath.Type.f"
// for struct fields, "var:pkgpath.name" for package variables.
func chanKey(info *types.Info, e ast.Expr) (any, bool) {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := info.Uses[x]
		if obj == nil {
			obj = info.Defs[x]
		}
		v, ok := obj.(*types.Var)
		if !ok {
			return nil, false
		}
		if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return "var:" + v.Pkg().Path() + "." + v.Name(), true
		}
		return v, true
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[x]; ok && sel.Kind() == types.FieldVal {
			if key, ok := namedKey(sel.Recv()); ok {
				return "field:" + key + "." + sel.Obj().Name(), true
			}
			return nil, false
		}
		if v, ok := info.Uses[x.Sel].(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return "var:" + v.Pkg().Path() + "." + v.Name(), true
		}
	case *ast.UnaryExpr:
		if x.Op.String() == "&" {
			return chanKey(info, x.X)
		}
	}
	return nil, false
}

// paramIndex reports whether e names a parameter of decl and at which
// flattened position.
func paramIndex(info *types.Info, decl *ast.FuncDecl, e ast.Expr) (int, bool) {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return 0, false
	}
	obj := info.Uses[id]
	if obj == nil {
		return 0, false
	}
	i := 0
	for _, fld := range decl.Type.Params.List {
		for _, nm := range fld.Names {
			if info.Defs[nm] == obj {
				return i, true
			}
			i++
		}
	}
	return 0, false
}

// isSyncType reports whether t (possibly a pointer) is sync.<name>.
func isSyncType(t types.Type, name string) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	tn := named.Obj()
	return tn.Pkg() != nil && tn.Pkg().Path() == "sync" && tn.Name() == name
}
