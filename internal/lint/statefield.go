package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Statefield proves snapshot completeness: every field of a struct
// annotated //sns:persist <mirror> must be accounted for on both halves
// of the persistence round trip. A field passes when
//
//   - it is proven copied into the mirror struct on the encode path
//     (a field-assignment index over every function that writes the
//     mirror, with local-variable, range-variable, closure-parameter,
//     and one-level callee-summary carrier tracking) AND proven written
//     back on the decode path (any write to the live field in a
//     function reachable from code that reads the mirror), or
//   - it carries //sns:derived <fn> and that rebuild function is
//     reachable from the decode path, or
//   - it carries a justified //lint:statefield suppression.
//
// Fields of sync.* types are exempt (a restored process starts
// unlocked). This is the pass that would have caught PR 8's capacity
// bug — the un-persisted float accumulators whose rounding residue
// flipped (score, id) placement ties after a daemon restart — at `go
// vet` time instead of via fuzzing.
var Statefield = &Analyzer{
	Name: "statefield",
	Wide: true,
	Doc: "proves every field of a //sns:persist-annotated struct is copied " +
		"to and from its snapshot mirror, marked //sns:derived with the " +
		"rebuild function reachable from the restore path, or justified",
	Run: runStatefield,
}

func runStatefield(pass *Pass) {
	if pass.Prog == nil {
		return
	}
	for _, f := range pass.Prog.statefieldFindings()[pass.Pkg] {
		pass.Reportf(f.pos, "%s", f.msg)
	}
}

// persistPair is one //sns:persist annotation: a live struct and the
// name of its serialized mirror in the same package.
type persistPair struct {
	pkg     *Package
	spec    *ast.TypeSpec
	liveKey string // "pkgpath.Name" of the live struct
	mirror  string // mirror type's name, resolved in the same package
}

// stateIndex is the program-wide evidence index the statefield proof
// consumes: per function, which struct fields its body reads and writes
// (keyed by the owning type's "pkgpath.Name"), and its static callees.
// Function literals are attributed to their enclosing declaration.
type stateIndex struct {
	order  []string                              // FullNames in load order
	reads  map[string]map[string]map[string]bool // fn -> typeKey -> fields read
	writes map[string]map[string]map[string]bool // fn -> typeKey -> fields written
	calls  map[string][]string                   // fn -> callee FullNames
}

// statefieldFindings runs the whole-program snapshot-completeness proof
// once per Program and caches the per-package findings.
func (pr *Program) statefieldFindings() map[*types.Package][]posFinding {
	pr.stateOnce.Do(func() {
		pr.stateMap = map[*types.Package][]posFinding{}
		pr.index()
		if len(pr.persist) == 0 {
			return
		}
		idx := pr.buildStateIndex()
		keys := make([]string, 0, len(pr.persist))
		for k := range pr.persist {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			pr.checkPersistPair(pr.persist[k], idx)
		}
	})
	return pr.stateMap
}

// buildStateIndex walks every function body once, recording field reads,
// field writes (assignment targets, index/deref targets, inc/dec, and
// composite-literal construction), and static call edges.
func (pr *Program) buildStateIndex() *stateIndex {
	idx := &stateIndex{
		reads:  map[string]map[string]map[string]bool{},
		writes: map[string]map[string]map[string]bool{},
		calls:  map[string][]string{},
	}
	add := func(m map[string]map[string]map[string]bool, fn, typeKey, field string) {
		byType := m[fn]
		if byType == nil {
			byType = map[string]map[string]bool{}
			m[fn] = byType
		}
		if byType[typeKey] == nil {
			byType[typeKey] = map[string]bool{}
		}
		byType[typeKey][field] = true
	}
	for _, pkg := range pr.Packages {
		info := pkg.Info
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				fn := obj.FullName()
				idx.order = append(idx.order, fn)
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					switch x := n.(type) {
					case *ast.SelectorExpr:
						if sel, ok := info.Selections[x]; ok && sel.Kind() == types.FieldVal {
							if key, ok := namedKey(sel.Recv()); ok {
								add(idx.reads, fn, key, sel.Obj().Name())
							}
						}
					case *ast.AssignStmt:
						for _, lhs := range x.Lhs {
							if key, field, ok := lvalueField(info, lhs); ok {
								add(idx.writes, fn, key, field)
							}
						}
					case *ast.IncDecStmt:
						if key, field, ok := lvalueField(info, x.X); ok {
							add(idx.writes, fn, key, field)
						}
					case *ast.CompositeLit:
						key, st, ok := structLit(info, x)
						if !ok {
							return true
						}
						for i, elt := range x.Elts {
							if kv, ok := elt.(*ast.KeyValueExpr); ok {
								if id, ok := kv.Key.(*ast.Ident); ok {
									add(idx.writes, fn, key, id.Name)
								}
							} else if i < st.NumFields() {
								add(idx.writes, fn, key, st.Field(i).Name())
							}
						}
					case *ast.CallExpr:
						if callee := resolveCallee(info, x); callee != nil {
							if _, known := pr.funcs[callee.FullName()]; known {
								idx.calls[fn] = append(idx.calls[fn], callee.FullName())
							}
						}
					}
					return true
				})
			}
		}
	}
	return idx
}

// lvalueField resolves an assignment target to the struct field it
// mutates: a direct field selector, an index into a field (map/slice
// element writes mutate the field's contents), or a deref of either.
func lvalueField(info *types.Info, e ast.Expr) (typeKey, field string, ok bool) {
	switch x := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		sel, found := info.Selections[x]
		if !found || sel.Kind() != types.FieldVal {
			return "", "", false
		}
		key, found := namedKey(sel.Recv())
		if !found {
			return "", "", false
		}
		return key, sel.Obj().Name(), true
	case *ast.IndexExpr:
		return lvalueField(info, x.X)
	case *ast.StarExpr:
		return lvalueField(info, x.X)
	}
	return "", "", false
}

// structLit resolves a composite literal to its defined struct type.
func structLit(info *types.Info, lit *ast.CompositeLit) (string, *types.Struct, bool) {
	tv, ok := info.Types[lit]
	if !ok {
		return "", nil, false
	}
	key, ok := namedKey(tv.Type)
	if !ok {
		return "", nil, false
	}
	t := tv.Type
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return "", nil, false
	}
	return key, st, true
}

// isSyncPkgType reports whether t is (a pointer to) a type defined in
// package sync — mutexes, once cells, wait groups — which never persist.
func isSyncPkgType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	tn := named.Obj()
	return tn.Pkg() != nil && tn.Pkg().Path() == "sync"
}

// checkPersistPair proves one live-struct/mirror pair complete.
func (pr *Program) checkPersistPair(pair *persistPair, idx *stateIndex) {
	report := func(pos token.Pos, format string, args ...any) {
		pr.stateMap[pair.pkg.Types] = append(pr.stateMap[pair.pkg.Types],
			posFinding{pos: pos, msg: fmt.Sprintf(format, args...)})
	}
	st, ok := pair.spec.Type.(*ast.StructType)
	if !ok {
		report(pair.spec.Pos(), "//sns:persist on %s, which is not a struct type", pair.liveKey)
		return
	}
	if _, ok := pair.pkg.Types.Scope().Lookup(pair.mirror).(*types.TypeName); !ok {
		report(pair.spec.Pos(), "//sns:persist names mirror %q, but package %s declares no such type",
			pair.mirror, pair.pkg.Path)
		return
	}
	mirrorKey := pair.pkg.Path + "." + pair.mirror

	// Decode cone: everything reachable from a function that reads the
	// mirror's fields (the Restore side and its helpers).
	cone := map[string]bool{}
	var queue []string
	for _, fn := range idx.order {
		if len(idx.reads[fn][mirrorKey]) > 0 {
			cone[fn] = true
			queue = append(queue, fn)
		}
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		for _, callee := range idx.calls[fn] {
			if !cone[callee] {
				cone[callee] = true
				queue = append(queue, callee)
			}
		}
	}

	// Decode evidence: live fields written anywhere in the cone.
	decoded := map[string]bool{}
	for fn := range cone {
		for field := range idx.writes[fn][pair.liveKey] {
			decoded[field] = true
		}
	}

	// Encode evidence: live fields that flow into a mirror write, with
	// carrier tracking, in every function that writes the mirror.
	encoded := map[string]bool{}
	for _, fn := range idx.order {
		if len(idx.writes[fn][mirrorKey]) == 0 {
			continue
		}
		if sf, ok := pr.funcs[fn]; ok {
			pr.encodeEvidence(sf, pair.liveKey, mirrorKey, idx, encoded)
		}
	}

	for _, fld := range st.Fields.List {
		for _, nm := range fld.Names {
			fieldKey := pair.liveKey + "." + nm.Name
			if obj := pair.pkg.Info.Defs[nm]; obj != nil && isSyncPkgType(obj.Type()) {
				continue
			}
			if rebuild, isDerived := pr.derived[fieldKey]; isDerived {
				pr.checkDerived(pair, nm, rebuild, cone, report)
				continue
			}
			enc, dec := encoded[nm.Name], decoded[nm.Name]
			switch {
			case enc && dec:
			case !enc && !dec:
				report(nm.Pos(), "field %s of //sns:persist type %s is neither copied into mirror %s nor restored from it; persist it, mark it //sns:derived <fn>, or justify with //lint:statefield",
					nm.Name, pair.liveKey, pair.mirror)
			case !enc:
				report(nm.Pos(), "field %s of //sns:persist type %s is restored from mirror %s but never copied into it on the snapshot path",
					nm.Name, pair.liveKey, pair.mirror)
			default:
				report(nm.Pos(), "field %s of //sns:persist type %s is copied into mirror %s but never written back on the restore path",
					nm.Name, pair.liveKey, pair.mirror)
			}
		}
	}
}

// checkDerived proves a //sns:derived rebuild function exists and is
// reachable from the pair's decode cone.
func (pr *Program) checkDerived(pair *persistPair, nm *ast.Ident, rebuild string,
	cone map[string]bool, report func(token.Pos, string, ...any)) {
	found, reachable := false, false
	for name, sf := range pr.funcs {
		if sf.Pkg == pair.pkg && sf.Obj.Name() == rebuild {
			found = true
			if cone[name] {
				reachable = true
			}
		}
	}
	switch {
	case !found:
		report(nm.Pos(), "field %s declares //sns:derived %s, but package %s has no such function",
			nm.Name, rebuild, pair.pkg.Path)
	case !reachable:
		report(nm.Pos(), "field %s declares //sns:derived %s, but %s is not reachable from the restore path (no call chain from a %s-reading function)",
			nm.Name, rebuild, rebuild, pair.mirror)
	}
}

// encodeEvidence walks one mirror-writing function in source order,
// tracking which live-struct fields each local carries — direct field
// selectors, locals assigned from them, range variables over them,
// closure parameters of callbacks invoked on them, and results of
// callees whose bodies read the live struct (one-level summaries) — and
// records every live field that reaches a mirror write into out.
func (pr *Program) encodeEvidence(sf *SrcFunc, liveKey, mirrorKey string, idx *stateIndex, out map[string]bool) {
	info := sf.Pkg.Info
	carriers := map[types.Object]map[string]bool{}

	fieldsOf := func(e ast.Expr) map[string]bool {
		set := map[string]bool{}
		ast.Inspect(e, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.SelectorExpr:
				if sel, ok := info.Selections[x]; ok && sel.Kind() == types.FieldVal {
					if key, ok := namedKey(sel.Recv()); ok && key == liveKey {
						set[sel.Obj().Name()] = true
					}
				}
			case *ast.Ident:
				if obj := info.Uses[x]; obj != nil {
					for f := range carriers[obj] {
						set[f] = true
					}
				}
			case *ast.CallExpr:
				if callee := resolveCallee(info, x); callee != nil {
					for f := range idx.reads[callee.FullName()][liveKey] {
						set[f] = true
					}
				}
			}
			return true
		})
		return set
	}
	taintObj := func(id *ast.Ident, taint map[string]bool) {
		if len(taint) == 0 {
			return
		}
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id]
		}
		if obj == nil {
			return
		}
		if carriers[obj] == nil {
			carriers[obj] = map[string]bool{}
		}
		for f := range taint {
			carriers[obj][f] = true
		}
	}

	// ast.Inspect visits in source (pre-)order, so carrier updates from a
	// statement precede the visits of every later statement.
	ast.Inspect(sf.Decl.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range x.Lhs {
				var taint map[string]bool
				if len(x.Rhs) == len(x.Lhs) {
					taint = fieldsOf(x.Rhs[i])
				} else {
					// Tuple assignment: every target shares the call's taint.
					taint = fieldsOf(x.Rhs[0])
				}
				if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
					taintObj(id, taint)
					continue
				}
				if key, _, ok := lvalueField(info, lhs); ok && key == mirrorKey {
					for f := range taint {
						out[f] = true
					}
				}
			}
		case *ast.RangeStmt:
			taint := fieldsOf(x.X)
			if len(taint) > 0 {
				if id, ok := x.Key.(*ast.Ident); ok {
					taintObj(id, taint)
				}
				if id, ok := x.Value.(*ast.Ident); ok {
					taintObj(id, taint)
				}
			}
		case *ast.CompositeLit:
			key, st, ok := structLit(info, x)
			if !ok || key != mirrorKey {
				return true
			}
			for i, elt := range x.Elts {
				var val ast.Expr
				if kv, isKV := elt.(*ast.KeyValueExpr); isKV {
					val = kv.Value
				} else if i < st.NumFields() {
					val = elt
				} else {
					continue
				}
				for f := range fieldsOf(val) {
					out[f] = true
				}
			}
		case *ast.CallExpr:
			// Callback arguments of a method invoked on live state carry
			// that state: c.pending.Each(func(it Item) { ... }) hands each
			// queue item to the closure, so `it` carries c.pending.
			fun, ok := x.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			taint := fieldsOf(fun.X)
			if len(taint) == 0 {
				return true
			}
			for _, arg := range x.Args {
				lit, isLit := ast.Unparen(arg).(*ast.FuncLit)
				if !isLit {
					continue
				}
				for _, p := range lit.Type.Params.List {
					for _, nm := range p.Names {
						taintObj(nm, taint)
					}
				}
			}
		}
		return true
	})
}
