package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
	"sync"
)

// A Program bundles every loaded package with lazily-built cross-package
// indexes, so the interprocedural passes (unitflow, allocfree) can follow
// declarations and calls across package boundaries while the repo is
// type-checked exactly once per process.
//
// Identity note: the loader type-checks each target package directly and
// resolves its imports through a shared source importer, so the same
// package can exist twice in the type universe (once checked directly,
// once as somebody's import). All indexes are therefore keyed by stable
// strings — (*types.Func).FullName() for functions, "pkgpath.Name" for
// types — never by object pointers.
type Program struct {
	Packages []*Package

	once     sync.Once
	funcs    map[string]*SrcFunc // (*types.Func).FullName() -> declaration
	units    map[string]bool     // "pkgpath.Name" of //sns:unit types
	hotroots []*SrcFunc          // //sns:hotpath functions, in load order

	// Concurrency-contract annotations (see confine.go / guardedby.go):
	// owned maps //sns:owner-marked type keys to their owner-goroutine
	// name, ownedField the same for individual struct fields
	// ("pkgpath.Type.field"), and guarded maps //sns:guardedby-marked
	// field keys to the name of the mutex field that must be held.
	owned      map[string]string
	ownedField map[string]string
	guarded    map[string]string

	// State-integrity annotations (see statefield.go / transition.go /
	// exhaustive.go): persist maps //sns:persist-marked live types
	// ("pkgpath.Name") to their declared mirror pair, derived maps field
	// keys ("pkgpath.Type.field") to the //sns:derived rebuild function
	// name, machines maps //sns:statemachine field keys to their edge
	// declarations, and enums holds the //sns:enum type keys whose
	// switches must be exhaustive.
	persist  map[string]*persistPair
	derived  map[string]string
	machines map[string]*machineDecl
	enums    map[string]bool

	implMu sync.Mutex
	impls  map[string][]*SrcFunc // interface-method FullName -> source impls

	allocOnce sync.Once
	allocHot  map[string]*SrcFunc
	allocMap  map[*types.Package][]allocFinding

	confOnce sync.Once
	confMap  map[*types.Package][]posFinding

	leakOnce sync.Once
	leakMap  map[*types.Package][]posFinding

	stateOnce sync.Once
	stateMap  map[*types.Package][]posFinding

	transOnce sync.Once
	transMap  map[*types.Package][]posFinding
}

// SrcFunc is a function declaration paired with the package that holds
// its source and type information.
type SrcFunc struct {
	Pkg  *Package
	Decl *ast.FuncDecl
	Obj  *types.Func
}

// NewProgram wraps loaded packages for interprocedural analysis. Index
// construction is deferred until a pass first needs it.
func NewProgram(pkgs []*Package) *Program {
	return &Program{Packages: pkgs}
}

// hasMarker reports whether the doc comment carries the //sns:<name>
// marker (alone or followed by explanatory text). Marker names are
// prefix-free checked: "sns:unit" does not match "sns:unitctor".
func hasMarker(doc *ast.CommentGroup, name string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if text == name || strings.HasPrefix(text, name+" ") {
			return true
		}
	}
	return false
}

// markerArgs returns the whitespace-separated arguments of the
// //sns:<name> marker in doc ("//sns:owner core" -> ["core"]) and
// whether the marker is present at all. Like hasMarker, names are
// prefix-free checked.
func markerArgs(doc *ast.CommentGroup, name string) ([]string, bool) {
	if doc == nil {
		return nil, false
	}
	for _, c := range doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if text == name {
			return nil, true
		}
		if strings.HasPrefix(text, name+" ") {
			return strings.Fields(text[len(name)+1:]), true
		}
	}
	return nil, false
}

// index builds the function and unit-type tables on first use.
func (pr *Program) index() {
	pr.once.Do(func() {
		pr.funcs = map[string]*SrcFunc{}
		pr.units = map[string]bool{}
		pr.owned = map[string]string{}
		pr.ownedField = map[string]string{}
		pr.guarded = map[string]string{}
		pr.persist = map[string]*persistPair{}
		pr.derived = map[string]string{}
		pr.machines = map[string]*machineDecl{}
		pr.enums = map[string]bool{}
		for _, pkg := range pr.Packages {
			for _, f := range pkg.Files {
				for _, decl := range f.Decls {
					switch d := decl.(type) {
					case *ast.FuncDecl:
						fn, ok := pkg.Info.Defs[d.Name].(*types.Func)
						if !ok {
							continue
						}
						sf := &SrcFunc{Pkg: pkg, Decl: d, Obj: fn}
						pr.funcs[fn.FullName()] = sf
						if hasMarker(d.Doc, "sns:hotpath") {
							pr.hotroots = append(pr.hotroots, sf)
						}
					case *ast.GenDecl:
						if d.Tok != token.TYPE {
							continue
						}
						for _, spec := range d.Specs {
							ts, ok := spec.(*ast.TypeSpec)
							if !ok {
								continue
							}
							typeKey := pkg.Path + "." + ts.Name.Name
							if hasMarker(ts.Doc, "sns:unit") ||
								(len(d.Specs) == 1 && hasMarker(d.Doc, "sns:unit")) {
								pr.units[typeKey] = true
							}
							if args, ok := markerArgs(ts.Doc, "sns:owner"); ok && len(args) == 1 {
								pr.owned[typeKey] = args[0]
							} else if len(d.Specs) == 1 {
								if args, ok := markerArgs(d.Doc, "sns:owner"); ok && len(args) == 1 {
									pr.owned[typeKey] = args[0]
								}
							}
							if hasMarker(ts.Doc, "sns:enum") ||
								(len(d.Specs) == 1 && hasMarker(d.Doc, "sns:enum")) {
								pr.enums[typeKey] = true
							}
							if args, ok := typeMarkerArgs(d, ts, "sns:persist"); ok && len(args) == 1 {
								pr.persist[typeKey] = &persistPair{
									pkg:     pkg,
									spec:    ts,
									liveKey: typeKey,
									mirror:  args[0],
								}
							}
							st, ok := ts.Type.(*ast.StructType)
							if !ok {
								continue
							}
							for _, fld := range st.Fields.List {
								if args, ok := markerArgs(fld.Doc, "sns:owner"); ok && len(args) == 1 {
									for _, nm := range fld.Names {
										pr.ownedField[typeKey+"."+nm.Name] = args[0]
									}
								}
								if args, ok := markerArgs(fld.Doc, "sns:guardedby"); ok && len(args) == 1 {
									for _, nm := range fld.Names {
										pr.guarded[typeKey+"."+nm.Name] = args[0]
									}
								}
								if args, ok := markerArgs(fld.Doc, "sns:derived"); ok && len(args) == 1 {
									for _, nm := range fld.Names {
										pr.derived[typeKey+"."+nm.Name] = args[0]
									}
								}
								if args, ok := markerArgs(fld.Doc, "sns:statemachine"); ok && len(args) == 1 {
									for _, nm := range fld.Names {
										pr.machines[typeKey+"."+nm.Name] = &machineDecl{
											pkg:       pkg,
											structKey: typeKey,
											field:     nm.Name,
											pos:       nm.Pos(),
											edges:     args[0],
										}
									}
								}
							}
						}
					}
				}
			}
		}
	})
}

// typeMarkerArgs reads a marker off a type declaration, accepting both
// comment placements gofmt produces: on the TypeSpec (grouped decls) and
// on the GenDecl (the common single-spec `type Foo struct { ... }`).
func typeMarkerArgs(d *ast.GenDecl, ts *ast.TypeSpec, name string) ([]string, bool) {
	if args, ok := markerArgs(ts.Doc, name); ok {
		return args, true
	}
	if len(d.Specs) == 1 {
		return markerArgs(d.Doc, name)
	}
	return nil, false
}

// PersistPairs returns the //sns:persist annotation table: live type
// keys ("pkgpath.Name") mapped to the mirror type's name in the same
// package. Tests pin the real packages' annotations against this.
func (pr *Program) PersistPairs() map[string]string {
	pr.index()
	out := map[string]string{}
	for key, p := range pr.persist {
		out[key] = p.mirror
	}
	return out
}

// DerivedFields returns the //sns:derived annotation table: field keys
// ("pkgpath.Type.field") mapped to the rebuild function's name.
func (pr *Program) DerivedFields() map[string]string {
	pr.index()
	return pr.derived
}

// StateMachines returns the //sns:statemachine annotation table: field
// keys ("pkgpath.Type.field") mapped to the raw edge declaration.
func (pr *Program) StateMachines() map[string]string {
	pr.index()
	out := map[string]string{}
	for key, m := range pr.machines {
		out[key] = m.edges
	}
	return out
}

// EnumTypes returns the sorted type keys carrying //sns:enum.
func (pr *Program) EnumTypes() []string {
	pr.index()
	var out []string
	for key := range pr.enums {
		out = append(out, key)
	}
	insertionSortStrings(out)
	return out
}

// Warm forces every lazily-built index and cached whole-program analysis
// serially, so a subsequent parallel per-package fan-out (RunParallel)
// only reads shared state. Each computation is sync.Once-guarded, so
// Warm is idempotent and cheap when already warm.
func (pr *Program) Warm() {
	pr.index()
	pr.allocFindings()
	pr.confineFindings()
	pr.goleakFindings()
	pr.statefieldFindings()
	pr.transitionFindings()
}

// OwnedState returns the //sns:owner annotation tables: confined type
// keys ("pkgpath.Name") and confined field keys ("pkgpath.Type.field"),
// each mapped to the owner-goroutine name. Tests pin the real packages'
// annotations against these so a dropped marker fails the suite.
func (pr *Program) OwnedState() (types, fields map[string]string) {
	pr.index()
	return pr.owned, pr.ownedField
}

// GuardedFields returns the //sns:guardedby annotation table: field keys
// ("pkgpath.Type.field") mapped to the guarding mutex field's name.
func (pr *Program) GuardedFields() map[string]string {
	pr.index()
	return pr.guarded
}

// MarkedFunctions returns the sorted FullNames of every function whose
// doc comment carries the given //sns:<marker>.
func (pr *Program) MarkedFunctions(marker string) []string {
	pr.index()
	var out []string
	for name, sf := range pr.funcs {
		if hasMarker(sf.Decl.Doc, marker) {
			out = append(out, name)
		}
	}
	insertionSortStrings(out)
	return out
}

// FuncSource returns the source declaration of fn, if the program holds
// one.
func (pr *Program) FuncSource(fn *types.Func) (*SrcFunc, bool) {
	pr.index()
	sf, ok := pr.funcs[fn.FullName()]
	return sf, ok
}

// HotpathRoots returns every //sns:hotpath-annotated function, in load
// order.
func (pr *Program) HotpathRoots() []*SrcFunc {
	pr.index()
	return pr.hotroots
}

// UnitType returns the defining *types.TypeName and its stable
// "pkgpath.Name" key when t is a //sns:unit-marked defined type.
func (pr *Program) UnitType(t types.Type) (*types.TypeName, string, bool) {
	pr.index()
	named, ok := t.(*types.Named)
	if !ok {
		return nil, "", false
	}
	tn := named.Obj()
	if tn.Pkg() == nil {
		return nil, "", false
	}
	key := tn.Pkg().Path() + "." + tn.Name()
	if !pr.units[key] {
		return nil, "", false
	}
	return tn, key, true
}

// Implementations returns the source declarations of every method in the
// program whose receiver type satisfies iface, for the interface method
// m — the devirtualization step that lets allocfree prove a dynamic call
// site against all of its possible targets. Results are cached per
// interface method.
func (pr *Program) Implementations(iface *types.Interface, m *types.Func) []*SrcFunc {
	pr.index()
	key := m.FullName()
	pr.implMu.Lock()
	defer pr.implMu.Unlock()
	if pr.impls == nil {
		pr.impls = map[string][]*SrcFunc{}
	}
	if out, ok := pr.impls[key]; ok {
		return out
	}
	var out []*SrcFunc
	seen := map[string]bool{}
	for _, pkg := range pr.Packages {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			T := tn.Type()
			if types.IsInterface(T) {
				continue
			}
			var recv types.Type
			switch {
			case types.Implements(T, iface):
				recv = T
			case types.Implements(types.NewPointer(T), iface):
				recv = types.NewPointer(T)
			default:
				continue
			}
			obj, _, _ := types.LookupFieldOrMethod(recv, true, m.Pkg(), m.Name())
			fn, ok := obj.(*types.Func)
			if !ok {
				continue
			}
			if sf, ok := pr.funcs[fn.FullName()]; ok && !seen[fn.FullName()] {
				seen[fn.FullName()] = true
				out = append(out, sf)
			}
		}
	}
	pr.impls[key] = out
	return out
}

// repoOnce caches the one full-module load shared by every test and
// benchmark in the process, so `go test ./internal/lint` type-checks the
// repository once rather than once per test function.
var (
	repoOnce sync.Once
	repoProg *Program
	repoErr  error
)

// LoadRepoProgram loads and type-checks the whole module ("spreadnshare/...")
// once per process and returns the shared Program. The interprocedural
// passes need the full module in view: analyzing a subset leaves calls
// unresolved at the boundary.
func LoadRepoProgram() (*Program, error) {
	repoOnce.Do(func() {
		pkgs, err := Load("spreadnshare/...")
		if err != nil {
			repoErr = err
			return
		}
		repoProg = NewProgram(pkgs)
	})
	return repoProg, repoErr
}
