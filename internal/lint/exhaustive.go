package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// Exhaustive requires every switch over a //sns:enum-annotated type to
// handle each declared constant of that type. A switch missing an arm
// is a finding at the switch; a `default` clause that silently absorbs
// unhandled constants is a finding at the default — a default is only
// clean when every constant already has an explicit arm (out-of-range
// defense) or the clause carries a justified //lint:exhaustive.
// Switches with non-constant case expressions are left alone: the pass
// only claims completeness where the arms are statically enumerable.
var Exhaustive = &Analyzer{
	Name: "exhaustive",
	Wide: true,
	Doc: "requires switches over //sns:enum types to cover every declared " +
		"constant; a default clause that swallows unhandled values is a " +
		"finding unless every constant has an arm or the default is justified",
	Run: runExhaustive,
}

func runExhaustive(pass *Pass) {
	if pass.Prog == nil {
		return
	}
	pr := pass.Prog
	pr.index()
	if len(pr.enums) == 0 {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			tv, ok := pass.Info.Types[sw.Tag]
			if !ok {
				return true
			}
			key, ok := namedKey(tv.Type)
			if !ok || !pr.enums[key] {
				return true
			}
			checkEnumSwitch(pass, sw, tv.Type, key)
			return true
		})
	}
}

// checkEnumSwitch compares one switch's arms against the enum type's
// declared constant set.
func checkEnumSwitch(pass *Pass, sw *ast.SwitchStmt, tagType types.Type, key string) {
	declared := enumConstNames(tagType)
	if len(declared) == 0 {
		return
	}
	covered := map[string]bool{}
	var deflt *ast.CaseClause
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			return
		}
		if cc.List == nil {
			deflt = cc
			continue
		}
		for _, e := range cc.List {
			name, ok := switchCaseConst(pass.Info, e, key)
			if !ok {
				// A non-constant arm (a variable, a call) can match any
				// value; completeness is not statically decidable here.
				return
			}
			covered[name] = true
		}
	}
	var missing []string
	for _, name := range declared {
		if !covered[name] {
			missing = append(missing, name)
		}
	}
	if len(missing) == 0 {
		return
	}
	if deflt == nil {
		pass.Reportf(sw.Pos(),
			"switch over //sns:enum type %s is not exhaustive: missing %s",
			key, strings.Join(missing, ", "))
		return
	}
	pass.Reportf(deflt.Pos(),
		"default case swallows unhandled %s values: %s (enumerate them or justify with //lint:exhaustive)",
		key, strings.Join(missing, ", "))
}

// switchCaseConst resolves one case expression to a declared constant
// of the enum type named by key.
func switchCaseConst(info *types.Info, e ast.Expr, key string) (string, bool) {
	var id *ast.Ident
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = x
	case *ast.SelectorExpr:
		id = x.Sel
	default:
		return "", false
	}
	c, ok := info.Uses[id].(*types.Const)
	if !ok {
		return "", false
	}
	if k, ok := namedKey(c.Type()); !ok || k != key {
		return "", false
	}
	return c.Name(), true
}
