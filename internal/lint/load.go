package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os/exec"
	"path/filepath"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listedPackage is the subset of `go list -json` output the loader
// needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
}

// Load resolves the patterns with `go list` and type-checks every
// matched package from source. Imports (stdlib and module-internal) are
// resolved by the stdlib source importer, so loading works offline with
// no dependency on golang.org/x/tools. The process must run inside the
// module: the source importer resolves module import paths relative to
// the working directory.
func Load(patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("lint: go list %v: %v\n%s", patterns, err, errb.Bytes())
	}
	var listed []listedPackage
	dec := json.NewDecoder(&out)
	for dec.More() {
		var lp listedPackage
		if err := dec.Decode(&lp); err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		listed = append(listed, lp)
	}

	fset := token.NewFileSet()
	// One shared source importer: each dependency is type-checked once
	// (signatures only) and cached across all target packages.
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	var pkgs []*Package
	for _, lp := range listed {
		p, err := check(fset, &conf, lp)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// LoadDir type-checks a single directory as one package — the fixture
// path used by the analysistest-style tests. Only stdlib imports are
// resolvable from a fixture.
func LoadDir(dir, importPath string) (*Package, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil {
		return nil, err
	}
	lp := listedPackage{ImportPath: importPath, Dir: dir}
	for _, m := range matches {
		lp.GoFiles = append(lp.GoFiles, filepath.Base(m))
	}
	if len(lp.GoFiles) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	fset := token.NewFileSet()
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	return check(fset, &conf, lp)
}

// check parses and fully type-checks one package.
func check(fset *token.FileSet, conf *types.Config, lp listedPackage) (*Package, error) {
	var files []*ast.File
	for _, name := range lp.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %v", err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	tpkg, err := conf.Check(lp.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %v", lp.ImportPath, err)
	}
	return &Package{
		Path:  lp.ImportPath,
		Dir:   lp.Dir,
		Fset:  fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}, nil
}
