package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Confine enforces goroutine confinement: state annotated with
// //sns:owner <name> — whole types ("//sns:owner core" on svc.Cluster)
// or individual struct fields ("//sns:owner scheduler" on the daemon's
// finish heap) — may be reached only from code proven to execute on the
// named owner goroutine.
//
// The proof is an interprocedural fixpoint over owner sets. Trusted
// roots are annotated by hand:
//
//   - //sns:goroutine <names...> on a function declares that its body
//     executes as the named owner goroutine(s) (the daemon's scheduler
//     loop, a pool worker). The annotation is the trust boundary; its
//     justification lives in the doc comment.
//   - //sns:dispatch <names...> on a function declares that function
//     literals passed to it as arguments execute on the named owner
//     goroutine (the daemon's exec/view, which convey closures over the
//     cmds channel to the scheduler loop).
//   - //sns:ownerinit on a constructor declares that it runs before the
//     owner goroutine exists, so it may touch anything (single-threaded
//     setup).
//
// Everything else is derived: a function's owner set is the
// intersection of its callers' owner sets; `main` runs on the anonymous
// main goroutine (no owners); a function referenced as a value or
// spawned directly with `go` may run anywhere (no owners); a function
// literal inherits its enclosing context unless it is a go-statement
// operand (fresh anonymous goroutine) or a dispatch argument. A
// function nobody references is vacuously unconstrained — the checks
// bite where new goroutines are actually minted, which is why every
// goroutine entry point must be annotated or spawned in view of the
// pass.
//
// An access to confined state from a context whose owner set does not
// include the state's owner is a finding. Inside the confined type's
// own methods, field access through the receiver is exempt — the
// boundary is enforced at the call sites of those methods, so one
// justified suppression covers one leak instead of smearing over every
// internal field touch.
var Confine = &Analyzer{
	Name: "confine",
	Wide: true,
	Doc: "proves //sns:owner-annotated types and fields are touched only by " +
		"code executing on the named owner goroutine, via a call-graph " +
		"fixpoint from //sns:goroutine roots and //sns:dispatch closures",
	Run: runConfine,
}

// posFinding is one cached interprocedural finding, reported later in
// the package that holds it (shared by confine and goleak).
type posFinding struct {
	pos token.Pos
	msg string
}

func runConfine(pass *Pass) {
	if pass.Prog == nil {
		return
	}
	for _, f := range pass.Prog.confineFindings()[pass.Pkg] {
		pass.Reportf(f.pos, "%s", f.msg)
	}
}

// ownerSet is a set of owner-goroutine names, with ⊤ ("any context is
// fine") as the lattice top. ⊤ is the start value of the fixpoint and
// the owner set of //sns:ownerinit constructors.
type ownerSet struct {
	top   bool
	names map[string]bool
}

func ownerTop() ownerSet { return ownerSet{top: true} }

func ownerNames(names []string) ownerSet {
	m := make(map[string]bool, len(names))
	for _, n := range names {
		m[n] = true
	}
	return ownerSet{names: m}
}

func (s ownerSet) has(name string) bool { return s.top || s.names[name] }

func (s ownerSet) intersect(o ownerSet) ownerSet {
	if s.top {
		return o
	}
	if o.top {
		return s
	}
	m := map[string]bool{}
	for n := range s.names {
		if o.names[n] {
			m[n] = true
		}
	}
	return ownerSet{names: m}
}

func (s ownerSet) equal(o ownerSet) bool {
	if s.top != o.top || len(s.names) != len(o.names) {
		return false
	}
	for n := range s.names {
		if !o.names[n] {
			return false
		}
	}
	return true
}

// confUnit is one execution context: a named function's body, or a
// function literal whose context is fixed (go operand, dispatch
// argument). Non-fixed units follow the owner set of the function fn.
type confUnit struct {
	fixed  bool
	owners ownerSet
	fn     string // (*types.Func).FullName(), when !fixed
}

// confAccess is one touch of confined state, checked after the fixpoint.
type confAccess struct {
	pos   token.Pos
	pkg   *types.Package
	owner string
	what  string
	unit  int
}

// confEdge is one static call: callee gains the caller unit's owners as
// an upper bound.
type confEdge struct {
	callee string
	unit   int
}

type confData struct {
	units    []confUnit
	accesses []confAccess
	edges    []confEdge
	tainted  map[string]bool // referenced as value or go target: may run anywhere
}

// confineFindings runs the whole-program confinement proof once per
// Program and caches the per-package findings.
func (pr *Program) confineFindings() map[*types.Package][]posFinding {
	pr.confOnce.Do(func() {
		pr.confMap = map[*types.Package][]posFinding{}
		pr.index()
		d := &confData{tainted: map[string]bool{}}
		for _, pkg := range pr.Packages {
			for _, f := range pkg.Files {
				for _, decl := range f.Decls {
					switch dc := decl.(type) {
					case *ast.FuncDecl:
						fn, ok := pkg.Info.Defs[dc.Name].(*types.Func)
						if !ok || dc.Body == nil {
							continue
						}
						pr.scanConfine(d, pkg, dc, fn)
					case *ast.GenDecl:
						if dc.Tok == token.VAR {
							scanValueTaints(d, pkg, pr, dc)
						}
					}
				}
			}
		}

		// Seed the fixpoint: annotations and entry points are fixed,
		// everything else starts at ⊤ and shrinks to the intersection of
		// its callers' contexts.
		owners := map[string]ownerSet{}
		fixed := map[string]bool{}
		for name, sf := range pr.funcs {
			switch {
			case hasMarker(sf.Decl.Doc, "sns:goroutine"):
				args, _ := markerArgs(sf.Decl.Doc, "sns:goroutine")
				owners[name] = ownerNames(args)
				fixed[name] = true
			case hasMarker(sf.Decl.Doc, "sns:ownerinit"):
				owners[name] = ownerTop()
				fixed[name] = true
			case sf.Pkg.Types.Name() == "main" && sf.Decl.Recv == nil && sf.Obj.Name() == "main":
				owners[name] = ownerNames(nil)
				fixed[name] = true
			case d.tainted[name]:
				owners[name] = ownerNames(nil)
				fixed[name] = true
			default:
				owners[name] = ownerTop()
			}
		}
		incoming := map[string][]int{}
		for _, e := range d.edges {
			incoming[e.callee] = append(incoming[e.callee], e.unit)
		}
		unitOwners := func(u int) ownerSet {
			unit := d.units[u]
			if unit.fixed {
				return unit.owners
			}
			return owners[unit.fn]
		}
		for changed := true; changed; {
			changed = false
			for name := range owners {
				if fixed[name] {
					continue
				}
				ns := ownerTop()
				for _, u := range incoming[name] {
					ns = ns.intersect(unitOwners(u))
				}
				if !ns.equal(owners[name]) {
					owners[name] = ns
					changed = true
				}
			}
		}

		for _, a := range d.accesses {
			if unitOwners(a.unit).has(a.owner) {
				continue
			}
			pr.confMap[a.pkg] = append(pr.confMap[a.pkg], posFinding{
				pos: a.pos,
				msg: fmt.Sprintf("%s is confined to goroutine %q and this context is not proven to run on it "+
					"(annotate the goroutine entry //sns:goroutine, route through an //sns:dispatch closure, or justify with //lint:confine)",
					a.what, a.owner),
			})
		}
	})
	return pr.confMap
}

// scanConfine records one function's execution units, call edges, value
// taints, and confined-state accesses into d.
func (pr *Program) scanConfine(d *confData, pkg *Package, decl *ast.FuncDecl, fn *types.Func) {
	info := pkg.Info

	// Receiver identity, for the in-method exemption on confined types.
	var recvObj types.Object
	recvKey := ""
	if decl.Recv != nil && len(decl.Recv.List) == 1 && len(decl.Recv.List[0].Names) == 1 {
		recvObj = info.Defs[decl.Recv.List[0].Names[0]]
		if recvObj != nil {
			if key, ok := namedKey(recvObj.Type()); ok {
				recvKey = key
			}
		}
	}

	base := len(d.units)
	d.units = append(d.units, confUnit{fn: fn.FullName()})

	// Pass 1: carve out the function literals whose context differs from
	// their surroundings — go operands run on a fresh anonymous
	// goroutine, dispatch arguments run on the dispatch target's owner.
	type litSpan struct {
		pos, end token.Pos
		unit     int
	}
	var spans []litSpan
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.GoStmt:
			if lit, ok := ast.Unparen(x.Call.Fun).(*ast.FuncLit); ok {
				d.units = append(d.units, confUnit{fixed: true, owners: ownerNames(nil)})
				spans = append(spans, litSpan{lit.Pos(), lit.End(), len(d.units) - 1})
			}
		case *ast.CallExpr:
			callee := resolveCallee(info, x)
			if callee == nil {
				return true
			}
			sf, ok := pr.funcs[callee.FullName()]
			if !ok {
				return true
			}
			args, marked := markerArgs(sf.Decl.Doc, "sns:dispatch")
			if !marked {
				return true
			}
			for _, arg := range x.Args {
				if lit, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
					d.units = append(d.units, confUnit{fixed: true, owners: ownerNames(args)})
					spans = append(spans, litSpan{lit.Pos(), lit.End(), len(d.units) - 1})
				}
			}
		}
		return true
	})
	unitAt := func(pos token.Pos) int {
		best, bestSize := base, token.Pos(-1)
		for _, sp := range spans {
			if sp.pos <= pos && pos < sp.end && (bestSize < 0 || sp.end-sp.pos < bestSize) {
				best, bestSize = sp.unit, sp.end-sp.pos
			}
		}
		return best
	}

	// Idents consumed as a call's function are calls, not value
	// references; everything else naming a function taints it.
	callFunIdents := map[*ast.Ident]bool{}
	goCalls := map[*ast.CallExpr]bool{}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			switch fun := ast.Unparen(x.Fun).(type) {
			case *ast.Ident:
				callFunIdents[fun] = true
			case *ast.SelectorExpr:
				callFunIdents[fun.Sel] = true
			}
		case *ast.GoStmt:
			goCalls[x.Call] = true
		}
		return true
	})

	// Pass 2: edges, taints, accesses.
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			callee := resolveCallee(info, x)
			if callee == nil {
				return true
			}
			name := callee.FullName()
			if _, analyzed := pr.funcs[name]; analyzed {
				if goCalls[x] {
					// `go f()`: f runs on a fresh goroutine. Annotated
					// entries keep their declared owners (the seed wins).
					d.tainted[name] = true
				} else {
					d.edges = append(d.edges, confEdge{callee: name, unit: unitAt(x.Pos())})
				}
			}
			// A method call on a confined type is where confinement is
			// enforced: the caller's context must include the owner.
			if sig, ok := callee.Type().(*types.Signature); ok && sig.Recv() != nil {
				if key, ok := namedKey(sig.Recv().Type()); ok {
					if owner, confined := pr.owned[key]; confined {
						d.accesses = append(d.accesses, confAccess{
							pos: x.Pos(), pkg: pkg.Types, owner: owner,
							what: fmt.Sprintf("confined type %s (call to %s)", key, callee.Name()),
							unit: unitAt(x.Pos()),
						})
					}
				}
			}
		case *ast.SelectorExpr:
			sel, ok := info.Selections[x]
			if !ok || sel.Kind() != types.FieldVal {
				return true
			}
			key, ok := namedKey(sel.Recv())
			if !ok {
				return true
			}
			fieldKey := key + "." + sel.Obj().Name()
			if owner, confined := pr.ownedField[fieldKey]; confined {
				d.accesses = append(d.accesses, confAccess{
					pos: x.Pos(), pkg: pkg.Types, owner: owner,
					what: fmt.Sprintf("confined field %s", fieldKey),
					unit: unitAt(x.Pos()),
				})
			}
			if owner, confined := pr.owned[key]; confined {
				// Receiver-field access inside the confined type's own
				// methods is exempt: the boundary is its method call sites.
				if recvObj != nil && key == recvKey {
					if id, ok := ast.Unparen(x.X).(*ast.Ident); ok {
						if info.Uses[id] == recvObj || info.Defs[id] == recvObj {
							return true
						}
					}
				}
				d.accesses = append(d.accesses, confAccess{
					pos: x.Pos(), pkg: pkg.Types, owner: owner,
					what: fmt.Sprintf("confined type %s (field %s)", key, sel.Obj().Name()),
					unit: unitAt(x.Pos()),
				})
			}
		case *ast.Ident:
			if callFunIdents[x] {
				return true
			}
			if fn, ok := info.Uses[x].(*types.Func); ok {
				if _, analyzed := pr.funcs[fn.FullName()]; analyzed {
					d.tainted[fn.FullName()] = true
				}
			}
		}
		return true
	})
}

// scanValueTaints taints functions referenced from package-level var
// initializers (outside any function body), excluding call positions.
func scanValueTaints(d *confData, pkg *Package, pr *Program, decl *ast.GenDecl) {
	callFunIdents := map[*ast.Ident]bool{}
	ast.Inspect(decl, func(n ast.Node) bool {
		if c, ok := n.(*ast.CallExpr); ok {
			switch fun := ast.Unparen(c.Fun).(type) {
			case *ast.Ident:
				callFunIdents[fun] = true
			case *ast.SelectorExpr:
				callFunIdents[fun.Sel] = true
			}
		}
		return true
	})
	ast.Inspect(decl, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || callFunIdents[id] {
			return true
		}
		if fn, ok := pkg.Info.Uses[id].(*types.Func); ok {
			if _, analyzed := pr.funcs[fn.FullName()]; analyzed {
				d.tainted[fn.FullName()] = true
			}
		}
		return true
	})
}

// resolveCallee resolves a call expression to the *types.Func it
// statically invokes: direct calls, method calls, package-qualified
// calls. Builtins, conversions, interface dispatch, and calls through
// func values resolve to nil.
func resolveCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if sel.Kind() != types.MethodVal {
				return nil
			}
			if _, iface := sel.Recv().Underlying().(*types.Interface); iface {
				return nil
			}
			fn, _ := sel.Obj().(*types.Func)
			return fn
		}
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// namedKey returns the stable "pkgpath.Name" key of t's defined type,
// unwrapping one level of pointer.
func namedKey(t types.Type) (string, bool) {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", false
	}
	tn := named.Obj()
	if tn.Pkg() == nil {
		return "", false
	}
	return tn.Pkg().Path() + "." + tn.Name(), true
}
