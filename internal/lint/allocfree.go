package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Allocfree statically proves //sns:hotpath-annotated functions free of
// allocation-inducing constructs, transitively: starting from every
// annotated root it walks the call graph across packages and flags, in
// every reachable function,
//
//   - make / new / non-suppressed append,
//   - slice and map composite literals, and &composite literals (heap
//     escapes),
//   - function literals (closure allocation),
//   - string concatenation and string<->[]byte/[]rune conversions,
//   - map assignment (may trigger growth),
//   - go / defer statements,
//   - interface boxing: conversions and call arguments placing a
//     non-pointer concrete value into an interface,
//   - variadic calls (the argument slice),
//   - calls it cannot resolve to source: func-value calls and calls into
//     packages outside the analyzed set (a small stdlib allowlist —
//     math, container/heap — is known allocation-free).
//
// Calls through an interface are devirtualized against every type in the
// program that satisfies the interface; the proof then covers all
// possible targets. Deliberate warm-up-only allocations (scratch-buffer
// growth, free-list misses) are suppressed line by line with a justified
// //lint:allocfree directive. This is the static twin of the runtime
// zero-alloc gates in internal/exec/alloc_test.go: the gates prove one
// execution allocation-free, the pass proves every path.
var Allocfree = &Analyzer{
	Name: "allocfree",
	Doc: "proves //sns:hotpath functions allocation-free across the call " +
		"graph by flagging allocation-inducing constructs in every " +
		"reachable function",
	Run: runAllocfree,
}

// allocFreeStdlib are external packages whose functions are known not to
// allocate. container/heap only moves elements the caller owns; its
// dynamic dispatch targets are covered by annotating the concrete
// heap.Interface methods as hotpath roots; sync/atomic operations compile
// to single instructions.
var allocFreeStdlib = map[string]bool{
	"math":           true,
	"math/bits":      true,
	"container/heap": true,
	"sync/atomic":    true,
}

type allocFinding struct {
	pos token.Pos
	msg string
}

func runAllocfree(pass *Pass) {
	if pass.Prog == nil {
		return
	}
	for _, f := range pass.Prog.allocFindings()[pass.Pkg] {
		pass.Reportf(f.pos, "%s", f.msg)
	}
}

// AllocfreeCovered returns the sorted FullNames of every function the
// allocfree proof visits — the //sns:hotpath roots plus everything
// reachable from them. Tests use it to pin coverage of the runtime-gated
// hot paths.
func (pr *Program) AllocfreeCovered() []string {
	pr.allocFindings()
	out := make([]string, 0, len(pr.allocHot))
	for name := range pr.allocHot {
		out = append(out, name)
	}
	insertionSortStrings(out)
	return out
}

func insertionSortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for k := i; k > 0 && s[k-1] > s[k]; k-- {
			s[k-1], s[k] = s[k], s[k-1]
		}
	}
}

// allocFindings runs the interprocedural proof once per Program and
// caches the per-package findings.
func (pr *Program) allocFindings() map[*types.Package][]allocFinding {
	pr.allocOnce.Do(func() {
		pr.allocMap = map[*types.Package][]allocFinding{}
		pr.allocHot = map[string]*SrcFunc{}
		var queue []*SrcFunc
		for _, sf := range pr.HotpathRoots() {
			name := sf.Obj.FullName()
			if pr.allocHot[name] == nil {
				pr.allocHot[name] = sf
				queue = append(queue, sf)
			}
		}
		for len(queue) > 0 {
			sf := queue[0]
			queue = queue[1:]
			for _, callee := range pr.checkAllocFree(sf) {
				name := callee.Obj.FullName()
				if pr.allocHot[name] == nil {
					pr.allocHot[name] = callee
					queue = append(queue, callee)
				}
			}
		}
	})
	return pr.allocMap
}

// checkAllocFree flags allocation-inducing constructs in one reachable
// function and returns the source functions its static and devirtualized
// calls resolve to.
func (pr *Program) checkAllocFree(sf *SrcFunc) []*SrcFunc {
	if sf.Decl.Body == nil {
		return nil
	}
	info := sf.Pkg.Info
	tpkg := sf.Pkg.Types
	report := func(pos token.Pos, format string, args ...any) {
		msg := fmt.Sprintf(format, args...)
		pr.allocMap[tpkg] = append(pr.allocMap[tpkg], allocFinding{
			pos: pos,
			msg: fmt.Sprintf("hotpath %s: %s", sf.Obj.Name(), msg),
		})
	}
	closures := localClosures(info, sf.Decl.Body)
	inlined := map[*ast.FuncLit]bool{}
	for _, lit := range closures {
		inlined[lit] = true
	}
	var callees []*SrcFunc
	ast.Inspect(sf.Decl.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			// A closure bound once to a local variable that is only
			// ever called never escapes: it lives on the stack and its
			// body is simply part of this function.
			if inlined[x] {
				return true
			}
			report(x.Pos(), "function literal may allocate a closure")
			return false
		case *ast.GoStmt:
			report(x.Pos(), "go statement allocates a goroutine")
		case *ast.DeferStmt:
			report(x.Pos(), "defer may allocate its frame")
		case *ast.CompositeLit:
			if t := info.TypeOf(x); t != nil {
				switch t.Underlying().(type) {
				case *types.Slice:
					report(x.Pos(), "slice literal allocates")
				case *types.Map:
					report(x.Pos(), "map literal allocates")
				}
			}
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if _, ok := x.X.(*ast.CompositeLit); ok {
					report(x.Pos(), "&composite literal escapes to the heap")
				}
			}
		case *ast.BinaryExpr:
			if x.Op == token.ADD && isString(info.TypeOf(x.X)) {
				report(x.OpPos, "string concatenation allocates")
			}
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				ie, ok := lhs.(*ast.IndexExpr)
				if !ok {
					continue
				}
				t := info.TypeOf(ie.X)
				if t == nil {
					continue
				}
				if _, isMap := t.Underlying().(*types.Map); isMap {
					report(ie.Pos(), "map assignment may grow the map")
				}
			}
		case *ast.CallExpr:
			callees = append(callees, pr.checkCall(sf, x, closures, report)...)
		}
		return true
	})
	return callees
}

// localClosures finds function literals bound once via := to a local
// variable that is used only in call position. Such a closure cannot
// escape the function, so calling it is a static local jump, not an
// allocation or an unresolvable dynamic call.
func localClosures(info *types.Info, body *ast.BlockStmt) map[*types.Var]*ast.FuncLit {
	bound := map[*types.Var]*ast.FuncLit{}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.DEFINE || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			return true
		}
		lit, ok := as.Rhs[0].(*ast.FuncLit)
		if !ok {
			return true
		}
		if v, ok := info.Defs[id].(*types.Var); ok {
			bound[v] = lit
		}
		return true
	})
	if len(bound) == 0 {
		return nil
	}
	// Disqualify any variable that is also used outside call position
	// (passed, stored, reassigned): it may escape after all.
	callFun := map[*ast.Ident]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		if c, ok := n.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(c.Fun).(*ast.Ident); ok {
				callFun[id] = true
			}
		}
		return true
	})
	ast.Inspect(body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || callFun[id] {
			return true
		}
		if v, ok := info.Uses[id].(*types.Var); ok {
			delete(bound, v)
		}
		return true
	})
	return bound
}

// checkCall classifies one call expression in a hot function: builtin,
// conversion, static call (followed), interface call (devirtualized), or
// dynamic call (flagged).
func (pr *Program) checkCall(sf *SrcFunc, call *ast.CallExpr, closures map[*types.Var]*ast.FuncLit, report func(token.Pos, string, ...any)) []*SrcFunc {
	info := sf.Pkg.Info
	tv := info.Types[call.Fun]

	// Conversions: free for numerics; boxing and string<->slice copy.
	if tv.IsType() {
		if len(call.Args) == 1 {
			checkConversionAlloc(info, tv.Type, call, report)
		}
		return nil
	}

	// Builtins: make/new/append allocate, the rest are free.
	if tv.IsBuiltin() {
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			switch id.Name {
			case "make":
				report(call.Pos(), "make allocates")
			case "new":
				report(call.Pos(), "new allocates")
			case "append":
				report(call.Pos(), "append may grow its backing array")
			}
		}
		return nil
	}

	// Resolve the callee.
	var callee *types.Func
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		switch obj := info.Uses[fun].(type) {
		case *types.Func:
			callee = obj
		case *types.Var:
			if _, ok := closures[obj]; ok {
				return nil // non-escaping local closure; body walked in place
			}
			report(call.Pos(), "dynamic call through func value %s is not provably allocation-free", fun.Name)
			return nil
		default:
			report(call.Pos(), "dynamic call through func value %s is not provably allocation-free", fun.Name)
			return nil
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			fn, isFunc := sel.Obj().(*types.Func)
			if !isFunc {
				report(call.Pos(), "dynamic call through func-valued field %s is not provably allocation-free", fun.Sel.Name)
				return nil
			}
			if iface, ok := sel.Recv().Underlying().(*types.Interface); ok {
				impls := pr.Implementations(iface, fn)
				if len(impls) == 0 {
					report(call.Pos(), "interface call %s has no analyzable implementation in the program", fn.Name())
					return nil
				}
				checkArgBoxing(info, fn, call, report)
				return impls
			}
			callee = fn
		} else if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			callee = fn // package-qualified call
		} else {
			report(call.Pos(), "dynamic call through %s is not provably allocation-free", fun.Sel.Name)
			return nil
		}
	default:
		report(call.Pos(), "dynamic call is not provably allocation-free")
		return nil
	}

	checkArgBoxing(info, callee, call, report)
	if target, ok := pr.FuncSource(callee); ok {
		return []*SrcFunc{target}
	}
	pkg := callee.Pkg()
	if pkg != nil && allocFreeStdlib[pkg.Path()] {
		return nil
	}
	report(call.Pos(), "call to %s outside the analyzed set is not provably allocation-free", callee.FullName())
	return nil
}

// checkConversionAlloc flags conversions that copy or box: string to/from
// byte/rune slices, and placing a non-pointer concrete value into an
// interface.
func checkConversionAlloc(info *types.Info, dst types.Type, call *ast.CallExpr, report func(token.Pos, string, ...any)) {
	argTV := info.Types[call.Args[0]]
	src := argTV.Type
	if src == nil {
		return
	}
	if isString(dst) != isString(src) {
		_, dstSlice := dst.Underlying().(*types.Slice)
		_, srcSlice := src.Underlying().(*types.Slice)
		if dstSlice || srcSlice {
			report(call.Pos(), "string conversion copies its data")
			return
		}
	}
	if types.IsInterface(dst) && mayBox(src, argTV) {
		report(call.Pos(), "conversion to interface may allocate a box")
	}
}

// checkArgBoxing flags arguments that box into interface parameters, and
// variadic expansion (which allocates the argument slice).
func checkArgBoxing(info *types.Info, callee *types.Func, call *ast.CallExpr, report func(token.Pos, string, ...any)) {
	sig, ok := callee.Type().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	if sig.Variadic() && call.Ellipsis == token.NoPos && len(call.Args) >= params.Len() {
		report(call.Pos(), "variadic call to %s allocates its argument slice", callee.Name())
	}
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
			if call.Ellipsis != token.NoPos {
				pt = params.At(params.Len() - 1).Type()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt == nil || !types.IsInterface(pt) {
			continue
		}
		argTV := info.Types[arg]
		if mayBox(argTV.Type, argTV) {
			report(arg.Pos(), "argument boxes into interface parameter of %s", callee.Name())
		}
	}
}

// mayBox reports whether storing a value of type t into an interface can
// allocate: pointers, interfaces, and untyped nil are stored directly;
// constants are backed by static data.
func mayBox(t types.Type, tv types.TypeAndValue) bool {
	if t == nil || tv.Value != nil || tv.IsNil() {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Interface, *types.Signature, *types.Chan, *types.Map:
		return false
	}
	return true
}

// isString reports whether t's underlying type is string.
func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}
