package lint

import (
	"testing"

	"spreadnshare/internal/par"
)

// BenchmarkLoadRepo measures the one-time cost the cached loader pays:
// go list + parsing + type-checking the whole module. LoadRepoProgram
// amortizes this across every pass and test in the process, so the CI
// time budget charges it once (see .github/workflows/ci.yml).
func BenchmarkLoadRepo(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pkgs, err := Load("./...")
		if err != nil {
			b.Fatal(err)
		}
		if len(pkgs) == 0 {
			b.Fatal("no packages loaded")
		}
	}
}

// BenchmarkAnalyzeConcurrency measures the warm cost of the three Wide
// concurrency passes (confine, guardedby, goleak) over every loaded
// package — the daemon, the CLIs, and the examples included.
//
// Time budget: the interprocedural work (the confinement fixpoint and
// the leak-join index) runs once per Program and is cached; a warm
// analyze is directive matching plus cached-finding replay and must
// stay well under 100ms on CI hardware so `make lint` remains dominated
// by the one-time load, not the passes.
func BenchmarkAnalyzeConcurrency(b *testing.B) {
	prog, err := LoadRepoProgram()
	if err != nil {
		b.Fatal(err)
	}
	passes := []*Analyzer{Confine, Guardedby, Goleak}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		for _, p := range prog.Packages {
			for _, a := range passes {
				n += len(Run(a, prog, p))
			}
		}
		if n != 0 {
			b.Fatalf("repo is not concurrency-clean: %d findings", n)
		}
	}
}

// BenchmarkAnalyzeState measures the warm cost of the three Wide
// state-integrity passes (statefield, transition, exhaustive) over
// every loaded package. Like the concurrency trio, the interprocedural
// work (the field-flow index, the state-machine proofs) runs once per
// Program and is cached; a warm analyze is directive matching, the
// per-package exhaustive switch walk, and cached-finding replay, and
// must stay well under 100ms on CI hardware.
func BenchmarkAnalyzeState(b *testing.B) {
	prog, err := LoadRepoProgram()
	if err != nil {
		b.Fatal(err)
	}
	passes := []*Analyzer{Statefield, Transition, Exhaustive}
	prog.Warm()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		for _, p := range prog.Packages {
			for _, a := range passes {
				n += len(Run(a, prog, p))
			}
		}
		if n != 0 {
			b.Fatalf("repo is not state-clean: %d findings", n)
		}
	}
}

// BenchmarkWideSerial and BenchmarkWideParallel record the before/after
// of fanning the Wide passes out over internal/par (the cmd/snslint and
// TestRepoIsClean execution shape). The parallel speedup is bounded by
// the pool width — on a single-CPU runner the two are equivalent and
// the comparison just prices RunParallel's pool and sort overhead.
func BenchmarkWideSerial(b *testing.B) {
	prog, err := LoadRepoProgram()
	if err != nil {
		b.Fatal(err)
	}
	prog.Warm()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var diags []Diagnostic
		for _, p := range prog.Packages {
			for _, a := range Analyzers() {
				if !a.Wide {
					continue
				}
				diags = append(diags, Run(a, prog, p)...)
			}
		}
		if len(diags) != 0 {
			b.Fatalf("repo is not lint-clean: %d findings", len(diags))
		}
	}
}

func BenchmarkWideParallel(b *testing.B) {
	prog, err := LoadRepoProgram()
	if err != nil {
		b.Fatal(err)
	}
	prog.Warm()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		diags := RunParallel(prog, func(p *Package) []Diagnostic {
			var out []Diagnostic
			for _, a := range Analyzers() {
				if !a.Wide {
					continue
				}
				out = append(out, Run(a, prog, p)...)
			}
			return out
		})
		if len(diags) != 0 {
			b.Fatalf("repo is not lint-clean: %d findings", len(diags))
		}
	}
}

// BenchmarkWideParallelWidth1 prices RunParallel pinned to effective
// width 1 — the single-CPU runner shape PR 9 measured the regression on
// (21.0ms parallel vs 17.5ms serial). The width-1 fast path skips the
// pool dispatch, the per-package result slices, and the already-sorted
// final sort, so this benchmark must track BenchmarkWideSerial instead
// of paying a fan-out that cannot help.
func BenchmarkWideParallelWidth1(b *testing.B) {
	prog, err := LoadRepoProgram()
	if err != nil {
		b.Fatal(err)
	}
	prog.Warm()
	defer par.SetWorkers(par.SetWorkers(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		diags := RunParallel(prog, func(p *Package) []Diagnostic {
			var out []Diagnostic
			for _, a := range Analyzers() {
				if !a.Wide {
					continue
				}
				out = append(out, Run(a, prog, p)...)
			}
			return out
		})
		if len(diags) != 0 {
			b.Fatalf("repo is not lint-clean: %d findings", len(diags))
		}
	}
}

// BenchmarkAnalyzeRepo measures the marginal cost of the analysis suite
// itself once the program is loaded and its interprocedural indexes are
// warm — the part that reruns per analyzer, not per process.
func BenchmarkAnalyzeRepo(b *testing.B) {
	prog, err := LoadRepoProgram()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		for _, p := range prog.Packages {
			if !DeterministicPackages[p.Path] {
				continue
			}
			for _, a := range Analyzers() {
				n += len(Run(a, prog, p))
			}
		}
		if n != 0 {
			b.Fatalf("repo is not lint-clean: %d findings", n)
		}
	}
}
