package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// The fixture harness mirrors golang.org/x/tools' analysistest: each
// file under testdata/src/<pkg> marks expected findings with trailing
//
//	// want "substring"
//
// comments; the analyzer must report a diagnostic containing that
// substring on that line, and must report nothing anywhere else.

var wantRE = regexp.MustCompile(`// want "([^"]+)"`)

// wantAt maps line number -> expected message substrings.
func loadWants(t *testing.T, dir string) map[string][]string {
	t.Helper()
	wants := map[string][]string{}
	matches, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil {
		t.Fatal(err)
	}
	for _, file := range matches {
		data, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range wantRE.FindAllStringSubmatch(line, -1) {
				key := fmt.Sprintf("%s:%d", filepath.Base(file), i+1)
				wants[key] = append(wants[key], m[1])
			}
		}
	}
	return wants
}

// runFixture checks one analyzer against one fixture package.
func runFixture(t *testing.T, a *Analyzer, fixture string) {
	t.Helper()
	dir := filepath.Join("testdata", "src", fixture)
	pkg, err := LoadDir(dir, fixture)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", fixture, err)
	}
	diags := Run(a, NewProgram([]*Package{pkg}), pkg)

	wants := loadWants(t, dir)
	matched := map[string]int{} // key -> how many wants satisfied
	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", filepath.Base(d.Pos.Filename), d.Pos.Line)
		ws := wants[key]
		found := false
		for i, w := range ws {
			if w != "" && strings.Contains(d.Message, w) {
				ws[i] = "" // consume
				matched[key]++
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic at %s: %s", key, d.Message)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if w != "" {
				t.Errorf("missing diagnostic at %s: want message containing %q", key, w)
			}
		}
	}
}

func TestMapiterFixture(t *testing.T)   { runFixture(t, Mapiter, "mapiterfix") }
func TestWalltimeFixture(t *testing.T)  { runFixture(t, Walltime, "walltimefix") }
func TestFloateqFixture(t *testing.T)   { runFixture(t, Floateq, "floateqfix") }
func TestUnitflowFixture(t *testing.T)  { runFixture(t, Unitflow, "unitflowfix") }
func TestAllocfreeFixture(t *testing.T) { runFixture(t, Allocfree, "allocfreefix") }
func TestConfineFixture(t *testing.T)   { runFixture(t, Confine, "confinefix") }
func TestGuardedbyFixture(t *testing.T) { runFixture(t, Guardedby, "guardedbyfix") }
func TestGoleakFixture(t *testing.T)    { runFixture(t, Goleak, "goleakfix") }

func TestStatefieldFixture(t *testing.T) { runFixture(t, Statefield, "statefieldfix") }
func TestTransitionFixture(t *testing.T) { runFixture(t, Transition, "transitionfix") }
func TestExhaustiveFixture(t *testing.T) { runFixture(t, Exhaustive, "exhaustivefix") }

// TestStatefieldMutation is the mutation-style pin from the issue: the
// statefield pass exists to catch PR 8's capacity bug (a dropped copy
// in Snapshot), so deleting the capacity copy from the fixture's encode
// twin must produce exactly one new finding, on that field.
func TestStatefieldMutation(t *testing.T) {
	src := filepath.Join("testdata", "src", "statefieldfix", "statefield.go")
	data, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	var kept []string
	deleted := 0
	for _, line := range strings.Split(string(data), "\n") {
		if strings.Contains(line, "// mutation:capacity") {
			deleted++
			continue
		}
		kept = append(kept, line)
	}
	if deleted != 1 {
		t.Fatalf("fixture has %d mutation:capacity lines, want 1", deleted)
	}
	dir := filepath.Join(t.TempDir(), "statefieldfix")
	if err := os.Mkdir(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "statefield.go"), []byte(strings.Join(kept, "\n")), 0o644); err != nil {
		t.Fatal(err)
	}

	run := func(dir string) []Diagnostic {
		pkg, err := LoadDir(dir, "statefieldfix")
		if err != nil {
			t.Fatalf("loading %s: %v", dir, err)
		}
		return Run(Statefield, NewProgram([]*Package{pkg}), pkg)
	}
	base := run(filepath.Join("testdata", "src", "statefieldfix"))
	mutated := run(dir)
	if len(mutated) != len(base)+1 {
		t.Fatalf("mutant produced %d findings, want baseline %d + 1:\n%v", len(mutated), len(base), mutated)
	}
	fresh := 0
	for _, d := range mutated {
		if strings.Contains(d.Message, "field capacity") &&
			strings.Contains(d.Message, "never copied into it on the snapshot path") {
			fresh++
		}
	}
	if fresh != 1 {
		t.Fatalf("deleting the capacity copy yielded %d capacity findings, want exactly 1:\n%v", fresh, mutated)
	}
}

// TestRepoIsClean runs the full suite over the repository — the same
// gate `make lint` enforces, kept inside `go test ./...` so the
// contract cannot drift even where only the test suite runs. The
// deterministic packages get every pass; everything else (the daemon,
// CLI glue, examples) still gets the Wide concurrency and
// state-integrity passes. Packages fan out over RunParallel, exactly as
// cmd/snslint runs them.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("repo-wide lint needs go list + full type-checking")
	}
	prog, err := LoadRepoProgram()
	if err != nil {
		t.Fatalf("loading repo: %v", err)
	}
	checked := 0
	for _, p := range prog.Packages {
		if DeterministicPackages[p.Path] {
			checked++
		}
	}
	diags := RunParallel(prog, func(p *Package) []Diagnostic {
		det := DeterministicPackages[p.Path]
		var out []Diagnostic
		for _, a := range Analyzers() {
			if !det && !a.Wide {
				continue
			}
			out = append(out, Run(a, prog, p)...)
		}
		return out
	})
	for _, d := range diags {
		t.Errorf("%s", d)
	}
	if checked != len(DeterministicPackages) {
		t.Errorf("checked %d deterministic packages, want %d", checked, len(DeterministicPackages))
	}
}

// TestConcurrencyAnnotationCoverage pins the real packages' concurrency
// annotations. The confine/guardedby/goleak passes are annotation-
// driven: deleting a marker silences the checks it anchors, so the
// anchors themselves are part of the contract — dropping //sns:owner
// from svc.Cluster or //sns:guardedby from the daemon's op table fails
// this test, not just quietly stops linting.
func TestConcurrencyAnnotationCoverage(t *testing.T) {
	if testing.Short() {
		t.Skip("repo-wide lint needs go list + full type-checking")
	}
	prog, err := LoadRepoProgram()
	if err != nil {
		t.Fatalf("loading repo: %v", err)
	}
	ownedTypes, ownedFields := prog.OwnedState()
	wantOwnedTypes := map[string]string{
		"spreadnshare/internal/svc.Cluster": "core",
	}
	for key, owner := range wantOwnedTypes {
		if got := ownedTypes[key]; got != owner {
			t.Errorf("type %s: owner = %q, want %q (//sns:owner missing or changed)", key, got, owner)
		}
	}
	wantOwnedFields := map[string]string{
		"spreadnshare/internal/svc/api.Server.fin":            "scheduler",
		"spreadnshare/internal/svc/api.Server.stopErr":        "scheduler",
		"spreadnshare/internal/svc/api.Server.due":            "scheduler",
		"spreadnshare/internal/par.Pool.fn":                   "poolbatch",
		"spreadnshare/internal/par.Pool.n":                    "poolbatch",
		"spreadnshare/internal/placement.SimState.mutIDs":     "mutbatch",
		"spreadnshare/internal/placement.SimState.mutRes":     "mutbatch",
		"spreadnshare/internal/placement.SimState.mutRelease": "mutbatch",
		"spreadnshare/internal/placement.SimState.mutDeltas":  "mutbatch",
	}
	for key, owner := range wantOwnedFields {
		if got := ownedFields[key]; got != owner {
			t.Errorf("field %s: owner = %q, want %q (//sns:owner missing or changed)", key, got, owner)
		}
	}
	guarded := prog.GuardedFields()
	for _, fld := range []string{"seq", "ops", "pending"} {
		key := "spreadnshare/internal/svc/api.opTable." + fld
		if got := guarded[key]; got != "mu" {
			t.Errorf("field %s: guardedby = %q, want %q (//sns:guardedby missing or changed)", key, got, "mu")
		}
	}
	wantMarked := map[string][]string{
		"sns:goroutine": {
			"(*spreadnshare/internal/svc/api.Server).run",
			"(*spreadnshare/internal/par.Pool).Run",
			"(*spreadnshare/internal/par.Pool).loop",
			"spreadnshare/internal/trace.simulate",
			"(*spreadnshare/internal/placement.SimState).applySpan",
			"(*spreadnshare/internal/placement.SimState).mutTask",
		},
		"sns:dispatch": {
			"(*spreadnshare/internal/svc/api.Server).exec",
			"(*spreadnshare/internal/svc/api.Server).view",
		},
		"sns:ownerinit": {
			"spreadnshare/internal/svc.New",
			"spreadnshare/internal/svc.Restore",
			"spreadnshare/internal/svc/api.New",
			"spreadnshare/internal/svc/api.Load",
			"(*spreadnshare/internal/placement.SimState).SetMutWorkers",
		},
	}
	for marker, names := range wantMarked {
		have := map[string]bool{}
		for _, n := range prog.MarkedFunctions(marker) {
			have[n] = true
		}
		for _, n := range names {
			if !have[n] {
				t.Errorf("function %s is missing its //%s marker", n, marker)
			}
		}
	}
}

// TestHotpathCoverage pins the allocfree pass to the runtime zero-alloc
// gates: every function those gates exercise (engine recompute, the
// water-filling kernel, the sim queue ops, the placement search) must be
// reachable from a //sns:hotpath root and therefore statically analyzed.
func TestHotpathCoverage(t *testing.T) {
	if testing.Short() {
		t.Skip("repo-wide lint needs go list + full type-checking")
	}
	prog, err := LoadRepoProgram()
	if err != nil {
		t.Fatalf("loading repo: %v", err)
	}
	covered := map[string]bool{}
	for _, name := range prog.AllocfreeCovered() {
		covered[name] = true
	}
	required := []string{
		"(*spreadnshare/internal/exec.Engine).recompute",
		"(*spreadnshare/internal/exec.Engine).resolveNode",
		"(*spreadnshare/internal/exec.Engine).refreshJob",
		"(*spreadnshare/internal/exec.Engine).advance",
		"spreadnshare/internal/hw.WaterFillInto",
		"(*spreadnshare/internal/sim.Queue).At",
		"(*spreadnshare/internal/sim.Queue).Cancel",
		"(*spreadnshare/internal/sim.Queue).Step",
		"(*spreadnshare/internal/sim.Queue).Run",
		"(*spreadnshare/internal/placement.Search).FindDemand",
		"(*spreadnshare/internal/placement.Search).findDemandCached",
		"(*spreadnshare/internal/placement.Search).selectIdlest",
		"(*spreadnshare/internal/placement.Search).takeIdlest",
		"(*spreadnshare/internal/placement.Search).score",
		"(*spreadnshare/internal/placement.Search).fits",
		"(*spreadnshare/internal/placement.ScoreCache).Invalidate",
		"(*spreadnshare/internal/placement.ScoreCache).InvalidateSpan",
		"(*spreadnshare/internal/placement.ScoreCache).flush",
		"(*spreadnshare/internal/placement.ScoreCache).prepare",
		"(*spreadnshare/internal/placement.ScoreCache).fold",
		"(*spreadnshare/internal/placement.ScoreCache).walk",
		"(*spreadnshare/internal/placement.ScoreCache).walkFrom",
		"(*spreadnshare/internal/placement.Search).findDemandSharded",
		"(*spreadnshare/internal/placement.Search).mergeShards",
		"(*spreadnshare/internal/placement.shardRun).scan",
		"(*spreadnshare/internal/placement.shardRun).scanBucket",
		"(*spreadnshare/internal/placement.shardRun).collect",
		"(*spreadnshare/internal/placement.shardRun).deepen",
		"(*spreadnshare/internal/placement.ShardSet).update",
		"(*spreadnshare/internal/placement.ShardSet).shardOf",
		"(*spreadnshare/internal/placement.CoreIndex).shiftTo",
		"(*spreadnshare/internal/placement.CoreIndex).applyCounts",
		"(*spreadnshare/internal/placement.SimState).applySpan",
		"(*spreadnshare/internal/placement.SimState).mutTask",
		"(*spreadnshare/internal/sim.Queue).PopBatch",
		"(*spreadnshare/internal/par.Pool).Run",
		"spreadnshare/internal/par.Merge",
		"spreadnshare/internal/par.mergeTree",
	}
	for _, name := range required {
		if !covered[name] {
			t.Errorf("runtime-gated hot function %s is not covered by the allocfree pass", name)
		}
	}
	if len(covered) < len(required) {
		t.Errorf("allocfree covers %d functions, expected at least %d", len(covered), len(required))
	}
}

// TestStateAnnotationCoverage pins the real packages' state-integrity
// annotations, the same way the concurrency coverage test pins the
// confine/guardedby/goleak anchors: the statefield, transition, and
// exhaustive passes are annotation-driven, so deleting a //sns:persist,
// //sns:statemachine, or //sns:enum marker must fail this test instead
// of silently shrinking what gets linted.
func TestStateAnnotationCoverage(t *testing.T) {
	if testing.Short() {
		t.Skip("repo-wide lint needs go list + full type-checking")
	}
	prog, err := LoadRepoProgram()
	if err != nil {
		t.Fatalf("loading repo: %v", err)
	}
	pairs := prog.PersistPairs()
	wantPairs := map[string]string{
		"spreadnshare/internal/svc.Cluster":     "snapshot",
		"spreadnshare/internal/svc.Job":         "jobRecord",
		"spreadnshare/internal/svc/api.opTable": "daemonSnapshot",
	}
	for key, mirror := range wantPairs {
		if got := pairs[key]; got != mirror {
			t.Errorf("type %s: persist mirror = %q, want %q (//sns:persist missing or changed)", key, got, mirror)
		}
	}
	derived := prog.DerivedFields()
	wantDerived := map[string]string{
		"spreadnshare/internal/svc.Job.req":             "buildReq",
		"spreadnshare/internal/svc.Cluster.search":      "New",
		"spreadnshare/internal/svc.Cluster.shards":      "New",
		"spreadnshare/internal/svc.Cluster.audit":       "New",
		"spreadnshare/internal/svc.Cluster.byName":      "Restore",
		"spreadnshare/internal/svc.Cluster.counts":      "Restore",
		"spreadnshare/internal/svc/api.opTable.seq":     "load",
		"spreadnshare/internal/svc/api.opTable.pending": "load",
	}
	for key, fn := range wantDerived {
		if got := derived[key]; got != fn {
			t.Errorf("field %s: derived = %q, want %q (//sns:derived missing or changed)", key, got, fn)
		}
	}
	machines := prog.StateMachines()
	for _, key := range []string{
		"spreadnshare/internal/svc.Job.State",
		"spreadnshare/internal/exec.Job.State",
		"spreadnshare/internal/svc/api.Op.Status",
	} {
		if machines[key] == "" {
			t.Errorf("field %s has no //sns:statemachine annotation", key)
		}
	}
	enums := map[string]bool{}
	for _, key := range prog.EnumTypes() {
		enums[key] = true
	}
	for _, key := range []string{
		"spreadnshare/internal/svc.JobState",
		"spreadnshare/internal/placement.Policy",
		"spreadnshare/internal/exec.State",
		"spreadnshare/internal/svc/api.OpStatus",
	} {
		if !enums[key] {
			t.Errorf("type %s has no //sns:enum annotation", key)
		}
	}
}

// TestDirectiveJustificationRequired pins the escape hatch's teeth: a
// bare directive is a finding, a justified one suppresses.
func TestDirectiveJustificationRequired(t *testing.T) {
	dir := filepath.Join("testdata", "src", "mapiterfix")
	pkg, err := LoadDir(dir, "mapiterfix")
	if err != nil {
		t.Fatal(err)
	}
	diags := Run(Mapiter, NewProgram([]*Package{pkg}), pkg)
	bare := 0
	for _, d := range diags {
		if strings.Contains(d.Message, "needs a justification") {
			bare++
		}
	}
	if bare != 1 {
		t.Errorf("got %d bare-directive findings, want exactly 1", bare)
	}
}
