package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// The fixture harness mirrors golang.org/x/tools' analysistest: each
// file under testdata/src/<pkg> marks expected findings with trailing
//
//	// want "substring"
//
// comments; the analyzer must report a diagnostic containing that
// substring on that line, and must report nothing anywhere else.

var wantRE = regexp.MustCompile(`// want "([^"]+)"`)

// wantAt maps line number -> expected message substrings.
func loadWants(t *testing.T, dir string) map[string][]string {
	t.Helper()
	wants := map[string][]string{}
	matches, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil {
		t.Fatal(err)
	}
	for _, file := range matches {
		data, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range wantRE.FindAllStringSubmatch(line, -1) {
				key := fmt.Sprintf("%s:%d", filepath.Base(file), i+1)
				wants[key] = append(wants[key], m[1])
			}
		}
	}
	return wants
}

// runFixture checks one analyzer against one fixture package.
func runFixture(t *testing.T, a *Analyzer, fixture string) {
	t.Helper()
	dir := filepath.Join("testdata", "src", fixture)
	pkg, err := LoadDir(dir, fixture)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", fixture, err)
	}
	diags := Run(a, pkg.Fset, pkg.Files, pkg.Types, pkg.Info)

	wants := loadWants(t, dir)
	matched := map[string]int{} // key -> how many wants satisfied
	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", filepath.Base(d.Pos.Filename), d.Pos.Line)
		ws := wants[key]
		found := false
		for i, w := range ws {
			if w != "" && strings.Contains(d.Message, w) {
				ws[i] = "" // consume
				matched[key]++
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic at %s: %s", key, d.Message)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if w != "" {
				t.Errorf("missing diagnostic at %s: want message containing %q", key, w)
			}
		}
	}
}

func TestMapiterFixture(t *testing.T)  { runFixture(t, Mapiter, "mapiterfix") }
func TestWalltimeFixture(t *testing.T) { runFixture(t, Walltime, "walltimefix") }
func TestFloateqFixture(t *testing.T)  { runFixture(t, Floateq, "floateqfix") }

// TestRepoIsClean runs the full suite over the deterministic packages —
// the same gate `make lint` enforces, kept inside `go test ./...` so
// the contract cannot drift even where only the test suite runs.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("repo-wide lint needs go list + full type-checking")
	}
	pkgs, err := Load("spreadnshare/...")
	if err != nil {
		t.Fatalf("loading repo: %v", err)
	}
	checked := 0
	for _, p := range pkgs {
		if !DeterministicPackages[p.Path] {
			continue
		}
		checked++
		for _, a := range Analyzers() {
			for _, d := range Run(a, p.Fset, p.Files, p.Types, p.Info) {
				t.Errorf("%s", d)
			}
		}
	}
	if checked != len(DeterministicPackages) {
		t.Errorf("checked %d deterministic packages, want %d", checked, len(DeterministicPackages))
	}
}

// TestDirectiveJustificationRequired pins the escape hatch's teeth: a
// bare directive is a finding, a justified one suppresses.
func TestDirectiveJustificationRequired(t *testing.T) {
	dir := filepath.Join("testdata", "src", "mapiterfix")
	pkg, err := LoadDir(dir, "mapiterfix")
	if err != nil {
		t.Fatal(err)
	}
	diags := Run(Mapiter, pkg.Fset, pkg.Files, pkg.Types, pkg.Info)
	bare := 0
	for _, d := range diags {
		if strings.Contains(d.Message, "needs a justification") {
			bare++
		}
	}
	if bare != 1 {
		t.Errorf("got %d bare-directive findings, want exactly 1", bare)
	}
}
