package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Unitflow enforces the dimensional discipline of internal/units across
// the whole program. Defined types marked //sns:unit (GBps, Ways, Cores,
// Instr, Cycles, Seconds, GB, GHz, IPC) carry physical dimensions; the
// pass forbids the conversions and arithmetic that would silently launder
// one dimension into another:
//
//   - cross-unit conversion, e.g. GBps(someSeconds) — two quantities with
//     different dimensions never interconvert directly;
//   - a unit value escaping to a bare numeric type, e.g. float64(bw),
//     outside a //sns:unitctor-annotated constructor site — escape goes
//     through the accessor methods (.Float64(), .Int());
//   - a non-constant bare value converted into a unit type, e.g.
//     GBps(someFloat), outside a constructor site — construction goes
//     through the units constructors (GBpsOf, WaysOf, ...). Untyped
//     constants (GBps(0), literals in specs) stay free;
//   - multiplication or division of two unit-typed operands — the result
//     type the compiler infers is dimensionally wrong (GBps*GBps is not
//     a GBps); derived quantities go through the units helpers
//     (PerCycle, Times, Per) or bare-float math at an annotated site.
//
// Functions that genuinely sit on the typed/untyped boundary — the units
// package's own constructors, accessors, and helpers — are annotated
// //sns:unitctor and exempt from the escape/construction rules (never
// from the cross-unit and dimensioned-arithmetic rules).
var Unitflow = &Analyzer{
	Name: "unitflow",
	Doc: "forbids conversions and arithmetic mixing distinct physical unit " +
		"types (//sns:unit); unit values are constructed and escaped only " +
		"through //sns:unitctor sites (the units constructors/accessors)",
	Run: runUnitflow,
}

func runUnitflow(pass *Pass) {
	if pass.Prog == nil {
		return
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			exempt := false
			if fd, ok := decl.(*ast.FuncDecl); ok {
				exempt = hasMarker(fd.Doc, "sns:unitctor")
			}
			checkUnitflow(pass, decl, exempt)
		}
	}
}

// unitName renders a unit type for diagnostics as "pkgname.Type".
func unitName(tn *types.TypeName) string {
	return tn.Pkg().Name() + "." + tn.Name()
}

func checkUnitflow(pass *Pass, root ast.Node, exempt bool) {
	prog := pass.Prog
	ast.Inspect(root, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			tv, ok := pass.Info.Types[x.Fun]
			if !ok || !tv.IsType() || len(x.Args) != 1 {
				return true
			}
			dst := tv.Type
			argTV := pass.Info.Types[x.Args[0]]
			if argTV.Type == nil {
				return true
			}
			dstTN, dstKey, dstUnit := prog.UnitType(dst)
			argTN, argKey, argUnit := prog.UnitType(argTV.Type)
			switch {
			case dstUnit && argUnit && dstKey != argKey:
				pass.Reportf(x.Pos(),
					"cross-unit conversion %s(%s) changes physical dimension; go through the accessor and the target constructor",
					unitName(dstTN), unitName(argTN))
			case dstUnit && !argUnit && argTV.Value == nil && !exempt:
				pass.Reportf(x.Pos(),
					"non-constant %s converted to %s outside a constructor site; use the units constructor (or annotate the function //sns:unitctor)",
					types.TypeString(argTV.Type, nil), unitName(dstTN))
			case !dstUnit && argUnit && !exempt && isBareNumeric(dst):
				pass.Reportf(x.Pos(),
					"unit value %s escapes to %s outside a constructor site; use its accessor method",
					unitName(argTN), types.TypeString(dst, nil))
			}
		case *ast.BinaryExpr:
			if x.Op != token.MUL && x.Op != token.QUO {
				return true
			}
			xTN, _, xUnit := prog.UnitType(pass.Info.Types[x.X].Type)
			yTN, _, yUnit := prog.UnitType(pass.Info.Types[x.Y].Type)
			if xUnit && yUnit {
				pass.Reportf(x.OpPos,
					"dimensioned %s between %s and %s yields a mistyped quantity; use a units helper or bare-float math at a constructor site",
					x.Op, unitName(xTN), unitName(yTN))
			}
		}
		return true
	})
}

// isBareNumeric reports whether t is an unnamed basic numeric type — the
// escape destinations the unitflow rule guards (float64(bw), int(ways)).
func isBareNumeric(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Info()&(types.IsInteger|types.IsFloat) != 0
}
