package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// Guardedby enforces lock discipline on annotated fields: a struct
// field carrying //sns:guardedby <mutex> may be loaded only while the
// named sibling mutex (sync.Mutex or sync.RWMutex, on the same base
// expression) is locked, and stored only under the write lock — RLock
// admits reads, not writes.
//
// The check is a linear walk of each function body tracking the lockset
// of canonical base expressions ("t.mu"): Lock/RLock add, Unlock/RUnlock
// remove, a deferred Unlock keeps the mutex held to the end of the
// function. Branch bodies (if/for/switch/select) are analyzed on a copy
// of the lockset; a lock released in a branch counts as released
// afterwards, a lock acquired in a branch does not survive it, and
// function literals start with an empty lockset (they may run on any
// goroutine later). Composite-literal construction is exempt: a
// constructor initializing fields before the value is shared needs no
// lock.
//
// Helper methods that require a caller-held mutex are annotated
// //sns:locked <mutex>: the body is checked with the mutex assumed
// held, and every call site must hold it.
var Guardedby = &Analyzer{
	Name: "guardedby",
	Wide: true,
	Doc: "requires every load of a //sns:guardedby field to happen under " +
		"Lock or RLock of the named mutex and every store under Lock, " +
		"checked through //sns:locked helper methods",
	Run: runGuardedby,
}

// Lock strengths: a write lock satisfies a read requirement.
const (
	lockNone = 0
	lockR    = 1
	lockW    = 2
)

func runGuardedby(pass *Pass) {
	if pass.Prog == nil {
		return
	}
	pass.Prog.index()
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			g := &guardWalk{pass: pass, pr: pass.Prog, info: pass.Info}
			held := map[string]int{}
			if args, ok := markerArgs(fd.Doc, "sns:locked"); ok && fd.Recv != nil &&
				len(fd.Recv.List) == 1 && len(fd.Recv.List[0].Names) == 1 {
				recv := fd.Recv.List[0].Names[0].Name
				for _, m := range args {
					held[recv+"."+m] = lockW
				}
			}
			g.stmt(fd.Body, held)
		}
	}
}

type guardWalk struct {
	pass *Pass
	pr   *Program
	info *types.Info
}

// stmt walks one statement, mutating held in place.
func (g *guardWalk) stmt(s ast.Stmt, held map[string]int) {
	switch x := s.(type) {
	case *ast.BlockStmt:
		for _, st := range x.List {
			g.stmt(st, held)
		}
	case *ast.ExprStmt:
		g.expr(x.X, held)
		g.lockOp(x.X, held)
	case *ast.AssignStmt:
		for _, r := range x.Rhs {
			g.expr(r, held)
		}
		for _, l := range x.Lhs {
			g.lhs(l, held)
		}
	case *ast.IncDecStmt:
		g.write(x.X, held)
	case *ast.DeferStmt:
		// A deferred Unlock keeps the lock held to the end of the
		// function; any other deferred call is checked with the current
		// lockset (an approximation — defers run last).
		if g.isUnlock(x.Call) {
			return
		}
		g.expr(x.Call, held)
	case *ast.GoStmt:
		g.expr(x.Call, held)
	case *ast.SendStmt:
		g.expr(x.Chan, held)
		g.expr(x.Value, held)
	case *ast.ReturnStmt:
		for _, r := range x.Results {
			g.expr(r, held)
		}
	case *ast.DeclStmt:
		ast.Inspect(x, func(n ast.Node) bool {
			if e, ok := n.(ast.Expr); ok {
				g.expr(e, held)
				return false
			}
			return true
		})
	case *ast.LabeledStmt:
		g.stmt(x.Stmt, held)
	case *ast.IfStmt:
		if x.Init != nil {
			g.stmt(x.Init, held)
		}
		g.expr(x.Cond, held)
		body := cloneLockset(held)
		g.stmt(x.Body, body)
		els := cloneLockset(held)
		if x.Else != nil {
			g.stmt(x.Else, els)
		}
		mergeReleases(held, body, els)
	case *ast.ForStmt:
		if x.Init != nil {
			g.stmt(x.Init, held)
		}
		if x.Cond != nil {
			g.expr(x.Cond, held)
		}
		body := cloneLockset(held)
		g.stmt(x.Body, body)
		if x.Post != nil {
			g.stmt(x.Post, body)
		}
		mergeReleases(held, body)
	case *ast.RangeStmt:
		g.expr(x.X, held)
		body := cloneLockset(held)
		g.stmt(x.Body, body)
		mergeReleases(held, body)
	case *ast.SwitchStmt:
		if x.Init != nil {
			g.stmt(x.Init, held)
		}
		if x.Tag != nil {
			g.expr(x.Tag, held)
		}
		g.clauses(x.Body, held)
	case *ast.TypeSwitchStmt:
		if x.Init != nil {
			g.stmt(x.Init, held)
		}
		g.clauses(x.Body, held)
	case *ast.SelectStmt:
		g.clauses(x.Body, held)
	}
}

// clauses walks each case body on its own lockset copy; a release in
// any clause propagates.
func (g *guardWalk) clauses(body *ast.BlockStmt, held map[string]int) {
	var after []map[string]int
	for _, cl := range body.List {
		c := cloneLockset(held)
		switch x := cl.(type) {
		case *ast.CaseClause:
			for _, e := range x.List {
				g.expr(e, c)
			}
			for _, st := range x.Body {
				g.stmt(st, c)
			}
		case *ast.CommClause:
			if x.Comm != nil {
				g.stmt(x.Comm, c)
			}
			for _, st := range x.Body {
				g.stmt(st, c)
			}
		}
		after = append(after, c)
	}
	mergeReleases(held, after...)
}

// lhs checks one assignment target: a guarded field (or an index into
// one) is a write; remaining subexpressions are reads.
func (g *guardWalk) lhs(l ast.Expr, held map[string]int) {
	switch x := ast.Unparen(l).(type) {
	case *ast.SelectorExpr:
		if g.guardOf(x) != "" {
			g.write(x, held)
			g.expr(x.X, held)
			return
		}
	case *ast.IndexExpr:
		if sel, ok := ast.Unparen(x.X).(*ast.SelectorExpr); ok && g.guardOf(sel) != "" {
			g.write(sel, held)
			g.expr(sel.X, held)
			g.expr(x.Index, held)
			return
		}
	case *ast.StarExpr:
		g.expr(x.X, held)
		return
	}
	g.expr(l, held)
}

// expr walks an expression tree checking guarded reads, //sns:locked
// call sites, and lock operations embedded in sub-calls.
func (g *guardWalk) expr(e ast.Expr, held map[string]int) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			// The closure may run later, on any goroutine: empty lockset.
			g.stmt(x.Body, map[string]int{})
			return false
		case *ast.SelectorExpr:
			g.access(x, held, lockR)
			return true
		case *ast.CallExpr:
			g.lockedCall(x, held)
			return true
		case *ast.KeyValueExpr:
			// Composite-literal construction: the key names a field of a
			// value nobody shares yet. Walk only the value.
			g.expr(x.Value, held)
			return false
		}
		return true
	})
}

// write checks one store target.
func (g *guardWalk) write(e ast.Expr, held map[string]int) {
	switch x := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		g.access(x, held, lockW)
		g.expr(x.X, held)
	case *ast.IndexExpr:
		g.lhs(x, held)
	default:
		g.expr(e, held)
	}
}

// access reports a guarded-field touch lacking the required lock.
func (g *guardWalk) access(sel *ast.SelectorExpr, held map[string]int, need int) {
	mutex := g.guardOf(sel)
	if mutex == "" {
		return
	}
	key := canonExpr(sel.X) + "." + mutex
	got := held[key]
	fieldKey := g.fieldKey(sel)
	switch {
	case got == lockNone:
		g.pass.Reportf(sel.Pos(), "field %s is guarded by %q: access without %s held", fieldKey, mutex, key)
	case need == lockW && got == lockR:
		g.pass.Reportf(sel.Pos(), "field %s is guarded by %q: write under RLock of %s; writes need Lock", fieldKey, mutex, key)
	}
}

// guardOf returns the guarding mutex field name when sel is a guarded
// field access, "" otherwise.
func (g *guardWalk) guardOf(sel *ast.SelectorExpr) string {
	return g.pr.guarded[g.fieldKey(sel)]
}

// fieldKey returns sel's stable "pkgpath.Type.field" key, or "".
func (g *guardWalk) fieldKey(sel *ast.SelectorExpr) string {
	s, ok := g.info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return ""
	}
	key, ok := namedKey(s.Recv())
	if !ok {
		return ""
	}
	return key + "." + s.Obj().Name()
}

// lockedCall checks a call to an //sns:locked helper: the caller must
// hold the helper's mutex on the same receiver expression.
func (g *guardWalk) lockedCall(call *ast.CallExpr, held map[string]int) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	callee := resolveCallee(g.info, call)
	if callee == nil {
		return
	}
	sf, ok := g.pr.funcs[callee.FullName()]
	if !ok {
		return
	}
	args, ok := markerArgs(sf.Decl.Doc, "sns:locked")
	if !ok {
		return
	}
	for _, m := range args {
		key := canonExpr(sel.X) + "." + m
		if held[key] == lockNone {
			g.pass.Reportf(call.Pos(), "call to %s requires %s held (//sns:locked)", callee.Name(), key)
		}
	}
}

// lockOp applies a Lock/RLock/Unlock/RUnlock statement to the lockset.
func (g *guardWalk) lockOp(e ast.Expr, held map[string]int) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	if !isMutex(g.info.TypeOf(sel.X)) {
		return
	}
	key := canonExpr(sel.X)
	switch sel.Sel.Name {
	case "Lock":
		held[key] = lockW
	case "RLock":
		if held[key] < lockR {
			held[key] = lockR
		}
	case "Unlock", "RUnlock":
		delete(held, key)
	}
}

// isUnlock reports whether call is mutex.Unlock or mutex.RUnlock.
func (g *guardWalk) isUnlock(call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if sel.Sel.Name != "Unlock" && sel.Sel.Name != "RUnlock" {
		return false
	}
	return isMutex(g.info.TypeOf(sel.X))
}

// isMutex reports whether t (possibly a pointer) is sync.Mutex or
// sync.RWMutex.
func isMutex(t types.Type) bool {
	return isSyncType(t, "Mutex") || isSyncType(t, "RWMutex")
}

// canonExpr renders a lock or receiver base expression to a canonical
// string ("t.mu", "s.cfg.state") so the same object named the same way
// matches between the Lock call and the guarded access.
func canonExpr(e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return canonExpr(x.X) + "." + x.Sel.Name
	case *ast.StarExpr:
		return canonExpr(x.X)
	case *ast.UnaryExpr:
		return canonExpr(x.X)
	case *ast.IndexExpr:
		return canonExpr(x.X) + "[" + canonExpr(x.Index) + "]"
	case *ast.CallExpr:
		return canonExpr(x.Fun) + "()"
	}
	return fmt.Sprintf("?%d", e.Pos())
}

// cloneLockset copies a lockset for branch-local analysis.
func cloneLockset(held map[string]int) map[string]int {
	c := make(map[string]int, len(held))
	for k, v := range held {
		c[k] = v
	}
	return c
}

// mergeReleases propagates releases out of branches: a key missing (or
// weakened) in any branch outcome is removed from (or weakened in) the
// pre-branch lockset. Acquisitions inside branches do not survive.
func mergeReleases(held map[string]int, branches ...map[string]int) {
	for k, v := range held {
		for _, b := range branches {
			if b[k] < v {
				v = b[k]
			}
		}
		if v == lockNone {
			delete(held, k)
		} else {
			held[k] = v
		}
	}
}
