// Package unitflowfix exercises the unitflow analyzer: local //sns:unit
// types standing in for internal/units, a //sns:unitctor boundary, and
// the four mixing rules the pass enforces.
package unitflowfix

// GBps is bandwidth in gigabytes per second.
//
//sns:unit
type GBps float64

// Seconds is elapsed simulated time.
//
//sns:unit
type Seconds float64

// Plain is a defined float with no unit marker; it mixes freely.
type Plain float64

// GBpsOf is the typed construction boundary.
//
//sns:unitctor typed construction boundary
func GBpsOf(v float64) GBps { return GBps(v) }

// Float64 is the typed escape boundary.
//
//sns:unitctor typed escape boundary
func (b GBps) Float64() float64 { return float64(b) }

func crossUnit(t Seconds) GBps {
	return GBps(t) // want "cross-unit conversion"
}

func escapes(b GBps) float64 {
	return float64(b) // want "escapes to"
}

func constructs(raw float64) GBps {
	return GBps(raw) // want "non-constant"
}

func dimensioned(a, b GBps) GBps {
	return a * b // want "dimensioned"
}

func allowed(raw float64) {
	_ = GBps(0)     // untyped constants construct freely
	_ = GBps(3.5)   // likewise
	_ = GBpsOf(raw) // the annotated constructor is the legal door
	_ = Plain(raw)  // unmarked defined types are not units
	var p Plain = 2
	_ = p * p // no unit operands, no finding
	b := GBpsOf(raw)
	_ = b + b // additive ops on one unit are dimensionally sound
	_ = b.Float64() * raw
}

func suppressed(b GBps) float64 {
	//lint:unitflow report axis needs a bare float and owns the rounding
	return float64(b)
}

func bare(b GBps) float64 {
	//lint:unitflow // want "needs a justification"
	return float64(b) // want "escapes to"
}
