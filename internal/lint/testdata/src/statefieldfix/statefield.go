// Package statefieldfix exercises the statefield analyzer: the clean
// round trip, every incompleteness shape (never persisted, encode-only,
// decode-only), the //sns:derived escape with its two failure modes,
// the sync-type exemption, and the directive escape hatch. The line
// marked mutation:capacity is deleted by the mutation test to prove the
// pass catches a dropped copy with exactly one finding.
package statefieldfix

import "sync"

// core is the live state; snap is its serialized mirror.
//
//sns:persist snap
type core struct {
	mu       sync.Mutex // never persists: a restored process starts unlocked
	name     string
	capacity float64
	jobs     []int
	// index is a lookup cache rebuilt from jobs on restore.
	//
	//sns:derived reindex
	index map[string]int
	// phantom names a rebuild function that does not exist.
	//
	//sns:derived vanished
	phantom int // want "no such function"
	// stray names a rebuild function the restore path never calls.
	//
	//sns:derived orphanRebuild
	stray    float64 // want "not reachable from the restore path"
	ghost    int     // want "neither copied"
	sendOnly int     // want "never written back on the restore path"
	recvOnly int     // want "never copied into it on the snapshot path"
	//lint:statefield scratch is rebuilt from zero at the start of every round
	scratch []int
	//lint:statefield // want "needs a justification"
	bare int // want "neither copied"
}

// snap is core's wire image.
type snap struct {
	Name     string
	Capacity float64
	Jobs     []int
	SendOnly int
	RecvOnly int
}

// encode builds the wire image of c. The capacity copy carries the
// mutation marker; everything else exercises a distinct evidence shape
// (composite key, local carrier, direct assignment).
func (c *core) encode() snap {
	s := snap{Name: c.name}
	s.Capacity = c.capacity // mutation:capacity
	jobs := c.jobs
	s.Jobs = jobs
	s.SendOnly = c.sendOnly
	return s
}

// decode rebuilds a core from its wire image.
func decode(s snap) *core {
	c := &core{}
	c.name = s.Name
	c.capacity = s.Capacity
	c.jobs = s.Jobs
	c.recvOnly = s.RecvOnly
	c.reindex()
	return c
}

// reindex rebuilds the jobs index; decode calls it, so index is proven
// derived.
func (c *core) reindex() {
	c.index = make(map[string]int, len(c.jobs))
}

// orphanRebuild could rebuild stray, but nothing on the restore path
// calls it.
func (c *core) orphanRebuild() {
	c.stray = 0
}

// lost's mirror never got written.
//
//sns:persist lostMirror
type lost struct { // want "declares no such type"
	id int
}

// notAStruct cannot be mirrored field-by-field.
//
//sns:persist snap
type notAStruct int // want "not a struct type"
