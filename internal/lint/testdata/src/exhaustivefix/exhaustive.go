// Package exhaustivefix exercises the exhaustive analyzer: full
// coverage, missing arms with and without a default, the all-arms-plus-
// default out-of-range defense, non-constant arms (not decidable, left
// alone), unannotated types, and the directive escape hatch.
package exhaustivefix

// color is the checked enum.
//
//sns:enum
type color int

const (
	red color = iota
	green
	blue
)

// full covers every arm: clean.
func full(c color) int {
	switch c {
	case red:
		return 1
	case green:
		return 2
	case blue:
		return 3
	}
	return 0
}

// partial misses an arm and has nowhere for it to go.
func partial(c color) int {
	switch c { // want "not exhaustive: missing blue"
	case red, green:
		return 1
	}
	return 0
}

// swallow hides the missing arms behind a default.
func swallow(c color) int {
	switch c {
	case red:
		return 1
	default: // want "swallows unhandled"
		return 0
	}
}

// defended has every arm plus an out-of-range default: clean.
func defended(c color) int {
	switch c {
	case red, green, blue:
		return 1
	default:
		return 0
	}
}

// justified suppresses the swallow with a reason.
func justified(c color) int {
	switch c {
	case red:
		return 1
	//lint:exhaustive the parser upstream rejects every non-red input
	default:
		return 0
	}
}

// bare shows an unjustified directive is itself a finding and does not
// suppress.
func bare(c color) int {
	switch c {
	case green:
		return 1
	//lint:exhaustive // want "needs a justification"
	default: // want "swallows unhandled"
		return 0
	}
}

// dynamic has a non-constant arm; completeness is not decidable, so the
// switch is left alone.
func dynamic(c, x color) int {
	switch c {
	case x:
		return 1
	}
	return 0
}

// plain switches over unannotated types are ignored.
func plain(n int) int {
	switch n {
	case 1:
		return 1
	}
	return 0
}

// tagless boolean switches are ignored even when the cases mention the
// enum.
func tagless(c color) int {
	switch {
	case c == red:
		return 1
	}
	return 0
}
