// Package confinefix exercises the confine analyzer: an owner-annotated
// core type and field, a trusted //sns:goroutine loop, a //sns:dispatch
// conveyor, an //sns:ownerinit constructor, and the leak shapes the pass
// must flag — direct access from an unproven context, a go-statement
// literal, and a function that escapes as a value.
package confinefix

// Core is the confined state: only the looper goroutine may touch it.
//
//sns:owner looper
type Core struct {
	n int
}

// Tick mutates the core; receiver-field access inside the confined
// type's own methods is exempt — the boundary is Tick's call sites.
func (c *Core) Tick() { c.n++ }

// Server routes work to the looper goroutine over cmds.
type Server struct {
	core *Core
	cmds chan func()
	// fin is the looper's scratch state.
	//
	//sns:owner looper
	fin []int
}

// New runs before the looper goroutine exists, so it may touch anything.
//
//sns:ownerinit
func New() *Server {
	s := &Server{core: &Core{}, cmds: make(chan func(), 8)}
	s.fin = nil
	s.core.Tick()
	go s.run()
	return s
}

// run is the looper goroutine's body: the annotation is the trust root.
//
//sns:goroutine looper
func (s *Server) run() {
	s.core.Tick()
	s.fin = nil
	helper(s)
	for f := range s.cmds {
		f()
	}
}

// helper has no annotation: the fixpoint proves it onto the looper
// because run is its only caller.
func helper(s *Server) {
	s.core.Tick()
}

// exec conveys closures to the looper goroutine over cmds.
//
//sns:dispatch looper
func (s *Server) exec(f func()) {
	s.cmds <- f
}

// handler runs on a request goroutine: dispatched closures are fine,
// direct access is a leak.
func handler(s *Server) {
	s.exec(func() {
		s.core.Tick()
		s.fin = nil
	})
	s.core.Tick() // want "confined type confinefix.Core"
	s.fin = nil   // want "confined field confinefix.Server.fin"
}

// spawnBad mints a fresh goroutine that reaches into the core.
func spawnBad(s *Server) {
	go func() {
		s.core.Tick() // want "confined type confinefix.Core"
	}()
}

// escaped is referenced as a value below, so it may run anywhere.
func escaped(s *Server) {
	s.core.Tick() // want "confined type confinefix.Core"
}

var hook = escaped

// suppressed carries a justified directive on the offending line.
func suppressed(s *Server) {
	//lint:confine read-only probe during single-threaded shutdown, looper already joined
	s.core.Tick()
}

// bare shows that an unjustified directive is itself a finding and
// suppresses nothing.
func bare(s *Server) {
	//lint:confine // want "needs a justification"
	s.core.Tick() // want "confined type confinefix.Core"
}

// spawnAll roots the request-path functions in an anonymous-goroutine
// context, so the fixpoint assigns them the empty owner set.
func spawnAll(s *Server) {
	go func() {
		handler(s)
		suppressed(s)
		bare(s)
	}()
}
