// Package guardedbyfix exercises the guardedby analyzer: a Mutex- and an
// RWMutex-guarded field, straight-line and branchy lock/unlock shapes, a
// //sns:locked helper with checked call sites, and the RLock write rule.
package guardedbyfix

import "sync"

type table struct {
	mu sync.Mutex
	//sns:guardedby mu
	n int

	rw sync.RWMutex
	//sns:guardedby rw
	m map[string]int
}

// newTable constructs without locks: composite-literal initialization of
// an unshared value is exempt.
func newTable() *table {
	return &table{m: map[string]int{}}
}

// locked holds the mutex across the access, released by defer.
func (t *table) locked() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.n
}

func (t *table) unlocked() int {
	return t.n // want "guarded"
}

// branchLock releases in one branch only: the fall-through access is not
// provably protected.
func (t *table) branchLock(b bool) {
	t.mu.Lock()
	if b {
		t.mu.Unlock()
	}
	t.n = 1 // want "guarded"
	if !b {
		t.mu.Unlock()
	}
}

func (t *table) unlockThenTouch() {
	t.mu.Lock()
	t.n = 1
	t.mu.Unlock()
	t.n = 2 // want "guarded"
}

// get reads under the read lock: allowed.
func (t *table) get(k string) int {
	t.rw.RLock()
	defer t.rw.RUnlock()
	return t.m[k]
}

// putUnderRLock writes under the read lock: a write needs Lock.
func (t *table) putUnderRLock(k string) {
	t.rw.RLock()
	defer t.rw.RUnlock()
	t.m[k] = 1 // want "write"
}

func (t *table) put(k string) {
	t.rw.Lock()
	defer t.rw.Unlock()
	t.m[k] = 1
}

// bump assumes the caller already holds mu.
//
//sns:locked mu
func (t *table) bump() {
	t.n++
}

func (t *table) callsHelperLocked() {
	t.mu.Lock()
	t.bump()
	t.mu.Unlock()
}

func (t *table) callsHelperUnlocked() {
	t.bump() // want "requires t.mu held"
}

// closureLeak captures the receiver: the literal may run later on any
// goroutine, so it starts with an empty lockset.
func (t *table) closureLeak() func() {
	t.mu.Lock()
	defer t.mu.Unlock()
	return func() {
		t.n = 3 // want "guarded"
	}
}

// suppressed carries a justified directive.
func (t *table) suppressed() int {
	//lint:guardedby read during single-threaded teardown; all writers have exited
	return t.n
}

// bareDirective shows an unjustified directive is itself a finding.
func (t *table) bareDirective() int {
	//lint:guardedby // want "needs a justification"
	return t.n // want "guarded"
}
