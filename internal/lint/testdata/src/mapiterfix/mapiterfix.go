// Package mapiterfix is the mapiter analyzer's fixture: each // want
// comment names a diagnostic the pass must report on that line.
package mapiterfix

import "sort"

// orderLeaks appends in iteration order: the classic digest-corrupting
// pattern.
func orderLeaks(m map[int]float64) []float64 {
	var out []float64
	for _, v := range m { // want "map iteration order is nondeterministic"
		out = append(out, v)
	}
	return out
}

// floatSum accumulates floats: not commutative, must flag.
func floatSum(m map[int]float64) float64 {
	s := 0.0
	for _, v := range m { // want "map iteration order is nondeterministic"
		s += v
	}
	return s
}

// callInBody hides arbitrary effects behind a call: must flag.
func callInBody(m map[int]int) {
	for k := range m { // want "map iteration order is nondeterministic"
		sort.Ints([]int{k})
	}
}

// intSum is a commutative integer accumulation: provably insensitive.
func intSum(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// maskOr folds with bitwise or, counting conditionally: provably
// insensitive.
func maskOr(m map[int]uint64) (uint64, int) {
	var mask uint64
	hits := 0
	for _, v := range m {
		if v != 0 {
			mask |= v
			hits++
		}
	}
	return mask, hits
}

// rekey writes each entry to another map under this loop's key:
// per-key independent, provably insensitive.
func rekey(m map[int]float64) map[int]float64 {
	out := make(map[int]float64, len(m))
	for k, v := range m {
		out[k] = v / 2
	}
	return out
}

// prune deletes visited keys from another map: provably insensitive.
func prune(m map[int]bool, victims map[int]string) {
	for k := range m {
		delete(victims, k)
	}
}

// accumulatorRead reads a variable the loop also writes on the RHS of a
// keyed assignment — order-dependent, must flag.
func accumulatorRead(m map[int]int) map[int]int {
	out := make(map[int]int, len(m))
	total := 0
	for k, v := range m { // want "map iteration order is nondeterministic"
		total += v
		out[k] = total
	}
	return out
}

// justified collects then sorts; the prover cannot see the sort, so the
// directive carries it.
func justified(m map[int]int) []int {
	ids := make([]int, 0, len(m))
	//lint:ordered ids are sorted before use
	for id := range m {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// bare directives suppress nothing and are themselves findings.
func bareDirective(m map[int]int) []int {
	var out []int
	//lint:ordered  // want "directive needs a justification"
	for id := range m { // want "map iteration order is nondeterministic"
		out = append(out, id)
	}
	return out
}
