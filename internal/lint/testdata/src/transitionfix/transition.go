// Package transitionfix exercises the transition analyzer: writes
// proven by dominating if-guards, early returns, and switch clauses;
// unproven and wrong-edge writes; non-constant and arithmetic writes;
// construction seeding; //sns:transition helpers and their call sites;
// and the directive escape hatch.
package transitionfix

// phase is the task lifecycle enum.
type phase int

const (
	idle phase = iota
	running
	done
	failed
)

// task walks idle>running, then running>done or running>failed.
type task struct {
	id int
	// state follows the declared lifecycle.
	//
	//sns:statemachine idle>running,running>done,running>failed
	state phase
}

// start is proven by a dominating comparison.
func start(t *task) {
	if t.state == idle {
		t.state = running
	}
}

// finish is proven by an early return that excludes everything else.
func finish(t *task) {
	if t.state != running {
		return
	}
	t.state = done
}

// fail is proven by the enclosing switch clause.
func fail(t *task) {
	switch t.state {
	case running:
		t.state = failed
	}
}

// clobber writes with no guard at all.
func clobber(t *task) {
	t.state = done // want "not proven"
}

// skip proves the wrong predecessor: idle>done is not a declared edge.
func skip(t *task) {
	if t.state == idle {
		t.state = done // want "not proven"
	}
}

// restore copies a recorded state wholesale.
func restore(t *task, s phase) {
	t.state = s // want "non-constant"
}

// step moves the enum arithmetically.
func step(t *task) {
	t.state++ // want "stepped arithmetically"
}

// newTask seeds the initial state: clean.
func newTask(id int) *task {
	return &task{id: id, state: idle}
}

// resurrect constructs mid-lifecycle.
func resurrect(id int) *task {
	return &task{id: id, state: done} // want "construction may only seed initial states"
}

// toDone is the checked helper: it asserts running on entry, so its own
// write is proven and the obligation moves to its call sites.
//
//sns:transition running
func (t *task) toDone() {
	t.state = done
}

// completeChecked proves the state before calling the helper.
func completeChecked(t *task) {
	if t.state == running {
		t.toDone()
	}
}

// completeUnchecked calls the helper blind.
func completeUnchecked(t *task) {
	t.toDone() // want "requires prior state"
}

// adminReset re-enters the lifecycle deliberately; idle has no incoming
// edge, so only a justified directive admits this write.
func adminReset(t *task) {
	//lint:transition operator-initiated reset discards the run by design
	t.state = idle
}

// bareDirective shows an unjustified mute is itself a finding and does
// not suppress the one it meant to hide.
func bareDirective(t *task) {
	//lint:transition // want "needs a justification"
	t.state = idle // want "not proven"
}

// wonky names a state the enum does not declare.
type wonky struct {
	//sns:statemachine idle>flying
	state phase // want "does not name two declared"
}
