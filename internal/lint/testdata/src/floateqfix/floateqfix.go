// Package floateqfix is the floateq analyzer's fixture.
package floateqfix

// computedCompare checks equality between two computed floats: fragile.
func computedCompare(a, b float64) bool {
	return a*3 == b/7 // want "between computed floats"
}

// computedNotEqual is the != spelling of the same hazard.
func computedNotEqual(a, b float64) bool {
	return a != b // want "between computed floats"
}

// sentinel compares against a compile-time constant: exact, legal.
func sentinel(x float64) bool {
	return x == 0 || x != 1.5
}

// intCompare is not a float comparison at all.
func intCompare(a, b int) bool {
	return a == b
}

// mapAccumulate sums floats over map order: flagged even though mapiter
// would flag the loop too — this is the digest-corrupting half.
func mapAccumulate(m map[int]float64) float64 {
	s := 0.0
	for _, v := range m { // this line belongs to mapiter, not floateq
		s += v // want "float accumulation over map iteration order"
	}
	return s
}

// sliceAccumulate sums floats over a slice: order is the slice's, legal.
func sliceAccumulate(xs []float64) float64 {
	s := 0.0
	for _, v := range xs {
		s += v
	}
	return s
}

// justified exact comparison: both sides are the same computation.
func justified(a, b float64) bool {
	ra, rb := a*2, b*2
	//lint:floateq exact tie detection between two runs of the same computation
	return ra != rb
}

// justifiedExactSum: small integers in floats sum exactly.
func justifiedExactSum(m map[int]float64) float64 {
	s := 0.0
	for _, v := range m { // mapiter's concern, not floateq's
		//lint:floateq addends are small integers stored in floats; the sum is exact
		s += v
	}
	return s
}
