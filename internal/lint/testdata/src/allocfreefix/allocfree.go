// Package allocfreefix exercises the allocfree analyzer: a //sns:hotpath
// root whose transitive call graph contains every allocation construct
// the pass flags, plus the shapes it must prove clean (local inlined
// closures, devirtualized interface calls, unreached cold code).
package allocfreefix

// View is implemented by arr below; the hotpath call through it must
// devirtualize rather than give up.
type View interface {
	At(i int) int
}

type arr struct{ xs [4]int }

func (a *arr) At(i int) int { return a.xs[i] }

var fnVar = func() {}

func takeAny(v any) {}

// Hot is the root; everything it reaches must be allocation-free.
//
//sns:hotpath
func Hot(xs []int, m map[string]int, v View) int {
	xs = append(xs, 1) // want "append may grow its backing array"
	p := new(int)      // want "new allocates"
	go fnVar()         // want "go statement allocates" // want "dynamic call through func value fnVar"
	helper(m)
	takeAny(*p) // want "argument boxes into interface parameter"
	fnVar()     // want "dynamic call through func value fnVar"
	return v.At(0) + sum(xs)
}

// helper is reached transitively from Hot; its findings carry its name.
func helper(m map[string]int) {
	mm := map[string]int{} // want "map literal allocates"
	_ = mm
	m["k"] = 1 // want "map assignment may grow the map"
}

// sum shows the clean shapes: a once-bound local closure used only in
// call position is stack-allocated and walked in place.
func sum(xs []int) int {
	add := func(a, b int) int { return a + b }
	t := 0
	for _, x := range xs {
		t = add(t, x)
	}
	return t
}

// warm is reached from Hot? No — it is cold, so its allocations are
// invisible to the pass; the runtime gates cover non-hot code.
func warm() []int {
	return make([]int, 128) // no want: unreached from any hotpath root
}

// Justified is a second root with a suppressed finding and a bare
// directive that is itself a finding.
//
//sns:hotpath
func Justified(buf []byte) []byte {
	//lint:allocfree scratch append; capacity is stable after warm-up
	buf = append(buf, 0)
	//lint:allocfree // want "needs a justification"
	return append(buf, 1) // want "append may grow its backing array"
}
