// Package goleakfix exercises the goleak analyzer: the three provable
// join shapes (WaitGroup fan-out, done-channel pair, close-terminated
// worker), the leak shapes that lack them, and the directive escape
// hatch for process-lifetime goroutines.
package goleakfix

import "sync"

// worker joins through a quit/done channel pair: loop closes done on
// exit, Stop receives it.
type worker struct {
	quit chan struct{}
	done chan struct{}
}

func newWorker() *worker {
	w := &worker{quit: make(chan struct{}), done: make(chan struct{})}
	go w.loop()
	return w
}

func (w *worker) loop() {
	defer close(w.done)
	<-w.quit
}

func (w *worker) Stop() {
	close(w.quit)
	<-w.done
}

// fanOut joins through the WaitGroup: every spawn Dones a group this
// same function Waits on.
func fanOut(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
		}()
	}
	wg.Wait()
}

// fanOutNoWait Dones a group nobody Waits on.
func fanOutNoWait(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() { // want "join"
			defer wg.Done()
		}()
	}
}

// spawnNoReceive closes a channel nothing in the program receives from.
func spawnNoReceive() chan struct{} {
	done := make(chan struct{})
	go func() { // want "join"
		close(done)
	}()
	return done
}

// pool's worker is close-terminated: run ranges over the channel its
// spawner passed in, and Close closes that channel.
type pool struct {
	start chan int
}

func newPool() *pool {
	p := &pool{start: make(chan int)}
	go p.run(p.start)
	return p
}

func (p *pool) run(ch chan int) {
	for range ch {
	}
}

func (p *pool) Close() { close(p.start) }

// leaky spins forever with no join evidence.
func leaky() {
	for {
	}
}

func spawnLeaky() {
	go leaky() // want "join"
}

func spawnAnon() {
	go func() {}() // want "join"
}

// probe's goroutine is unprovable but harmless: the buffered send never
// blocks, so a justified directive documents it.
func probe() chan int {
	res := make(chan int, 1)
	//lint:goleak buffered result channel: the probe sends once and exits, it cannot block
	go func() {
		res <- 1
	}()
	return res
}

// bareDirective shows an unjustified directive is itself a finding.
func bareDirective() {
	//lint:goleak // want "needs a justification"
	go func() {}() // want "join"
}
