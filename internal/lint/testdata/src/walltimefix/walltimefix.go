// Package walltimefix is the walltime analyzer's fixture.
package walltimefix

import (
	"math/rand"
	"time"
)

// wallClock reads real time three ways: all forbidden.
func wallClock() float64 {
	start := time.Now()                                     // want "reads the wall clock"
	elapsed := time.Since(start)                            // want "reads the wall clock"
	time.Sleep(time.Millisecond)                            // want "reads the wall clock"
	return elapsed.Seconds() + 0*float64(time.Until(start)) // want "reads the wall clock"
}

// durations constructs time values without reading the clock: legal.
func durations() time.Duration {
	return 3 * time.Second
}

// globalRand draws from the process-global source: forbidden.
func globalRand() int {
	rand.Shuffle(4, func(i, j int) {}) // want "process-global random source"
	return rand.Intn(10)               // want "process-global random source"
}

// seededRand threads an explicit generator: legal.
func seededRand(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	return rng.Float64()
}

// justified wall time: operator-facing, not simulation state.
func justified() time.Time {
	//lint:walltime log timestamp shown to the operator, never enters sim state
	return time.Now()
}
