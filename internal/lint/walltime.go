package lint

import (
	"go/ast"
	"go/types"
)

// Walltime forbids wall-clock readings and the global math/rand source
// in deterministic code. Simulation time must come from the sim clock
// (sim.Queue.Now and the values it hands to events), and every random
// stream must be a seeded *rand.Rand threaded through explicitly —
// time.Now and the process-global rand functions make two runs of the
// same workload diverge.
var Walltime = &Analyzer{
	Name: "walltime",
	Doc: "forbids time.Now/Since/Until/Sleep and the global math/rand " +
		"source; use the sim clock and seeded *rand.Rand plumbing",
	Run: runWalltime,
}

// forbiddenTime are the wall-clock entry points. Constructors and types
// (time.Duration, time.Second) stay legal: they are values, not clock
// readings.
var forbiddenTime = map[string]bool{
	"Now":   true,
	"Since": true,
	"Until": true,
	"Sleep": true,
	"Tick":  true,
	"After": true,
}

// allowedRand are the math/rand names that do NOT touch the global
// source: constructors for seeded generators and the generator types.
var allowedRand = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
	"Rand":      true,
	"Source":    true,
	"Source64":  true,
	"Zipf":      true,
}

func runWalltime(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			x, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := pass.Info.Uses[x].(*types.PkgName)
			if !ok {
				return true
			}
			switch pn.Imported().Path() {
			case "time":
				if forbiddenTime[sel.Sel.Name] {
					pass.Reportf(sel.Pos(), "time.%s reads the wall clock; deterministic code must use the sim clock", sel.Sel.Name)
				}
			case "math/rand", "math/rand/v2":
				if !allowedRand[sel.Sel.Name] {
					pass.Reportf(sel.Pos(), "rand.%s uses the process-global random source; thread a seeded *rand.Rand instead", sel.Sel.Name)
				}
			}
			return true
		})
	}
}
