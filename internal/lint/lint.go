// Package lint is the determinism linter of the simulator: a small
// go/analysis-shaped static-analysis framework (stdlib only, so it
// builds offline) plus the passes that turn DESIGN.md's determinism and
// dimensional rules into machine-checked law:
//
//   - mapiter: `for range` over a map in a deterministic package leaks
//     runtime-randomized iteration order into simulation state unless
//     the loop body is provably order-insensitive.
//   - walltime: wall-clock readings (time.Now, time.Since, ...) and the
//     global math/rand source make replays unreproducible; all time
//     must come from the sim clock and all randomness from a seeded
//     *rand.Rand.
//   - floateq: ==/!= between computed floats, and float accumulation
//     over map iteration order, silently break the bit-identical golden
//     digests.
//   - unitflow: arithmetic and conversions may not mix distinct
//     //sns:unit-marked physical quantity types (internal/units), and
//     unit values may enter or leave the typed world only through the
//     constructors/accessors of a //sns:unitctor-annotated function.
//   - allocfree: every //sns:hotpath-annotated function must be
//     provably free of allocation-inducing constructs, transitively
//     across the call graph — the static form of the runtime zero-alloc
//     gates in internal/exec/alloc_test.go.
//   - confine: //sns:owner-annotated types and fields (the live cluster
//     core, the daemon's scheduler state, the pool's batch fields) may
//     be reached only from code proven to execute on the named owner
//     goroutine — //sns:goroutine entry points, closures handed to
//     //sns:dispatch functions, and everything the call graph proves
//     onto them.
//   - guardedby: every load and store of a //sns:guardedby-annotated
//     field must happen with the named sibling mutex held (writes need
//     the write lock; RLock admits reads only).
//   - goleak: every `go` statement must carry a statically provable
//     join or termination path — a WaitGroup Done/Wait pair, a
//     done-channel close/receive pair, or a close-terminated worker
//     loop.
//   - statefield: every field of a //sns:persist-annotated struct must
//     be proven copied into and restored from its snapshot mirror, be
//     //sns:derived with the rebuild function reachable from the
//     restore path, or carry a justified suppression — persistence
//     gaps (the PR 8 capacity bug) become vet-time findings.
//   - transition: //sns:statemachine-annotated fields may only be
//     written where the prior state is a provable predecessor of the
//     new one along the declared edges (dominating comparison or
//     switch on the field, or a //sns:transition helper whose call
//     sites are checked instead).
//   - exhaustive: switches over //sns:enum types must cover every
//     declared constant; a default clause that silently swallows
//     unhandled values is itself a finding.
//
// The last eight passes are interprocedural: they run over a Program (all
// packages type-checked once, with shared cross-package indexes) rather
// than one package at a time. The concurrency and state-integrity passes
// additionally run Wide — over every loaded package, because the daemon
// and CLI glue sit outside the deterministic set but still own
// goroutines, locks, and persisted state.
//
// A finding can be suppressed with a justified directive comment on the
// offending line or the line above:
//
//	//lint:ordered ids are sorted before use
//	//lint:floateq exact sentinel comparison, both sides same computation
//	//lint:walltime operator-facing log timestamp, not simulation state
//	//lint:allocfree scratch append; capacity is stable after warm-up
//	//lint:confine read after <-done: the owner goroutine's exit happens-before
//	//lint:goleak listener goroutine is process-lifetime by design
//	//lint:statefield round-local scratch, rebuilt from zero each ScheduleRound
//	//lint:transition restore re-admits recorded states written by checked transitions
//	//lint:exhaustive remaining arms unreachable: parser rejects them upstream
//
// The justification text is mandatory: a bare directive is itself a
// diagnostic. cmd/snslint wires the passes into a multichecker run by
// `make lint`.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"

	"spreadnshare/internal/par"
)

// An Analyzer describes one static-analysis pass. It mirrors the shape
// of golang.org/x/tools/go/analysis.Analyzer so the passes can migrate
// to the real framework wholesale if the dependency ever lands.
type Analyzer struct {
	// Name identifies the pass and its suppression directive
	// (//lint:<directive> overrides a finding; mapiter uses the
	// directive "ordered").
	Name string
	// Directive is the suppression keyword. Defaults to Name.
	Directive string
	// Doc is the one-paragraph rule statement.
	Doc string
	// Wide marks a pass that applies to every loaded package, not just
	// the deterministic set: the concurrency passes police the daemon
	// (internal/svc/api, cmd/snsd), which legitimately uses wall time
	// and maps but must still honor ownership, lock, and leak rules.
	Wide bool
	// Run reports findings on one type-checked package.
	Run func(*Pass)
}

// directive is one parsed //lint: comment.
type directive struct {
	name   string
	reason string
	pos    token.Pos
	used   bool
}

// A Pass holds one analyzer run over one package: the syntax, the type
// information, the surrounding program, and the diagnostic sink.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	// Prog is the whole loaded program, for the interprocedural passes.
	Prog *Program

	diags      []Diagnostic
	directives map[string]map[int][]*directive // file -> line -> directives
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

var directiveRE = regexp.MustCompile(`^//lint:([a-z]+)(?:\s+(.*))?$`)

// newPass builds a Pass with the package's //lint: directives indexed.
func newPass(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) *Pass {
	p := &Pass{
		Analyzer:   a,
		Fset:       fset,
		Files:      files,
		Pkg:        pkg,
		Info:       info,
		directives: map[string]map[int][]*directive{},
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := directiveRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				byLine := p.directives[pos.Filename]
				if byLine == nil {
					byLine = map[int][]*directive{}
					p.directives[pos.Filename] = byLine
				}
				// A nested `//` starts a comment-on-the-comment (the
				// fixtures' want markers); it is not a justification.
				reason := m[2]
				if i := strings.Index(reason, "//"); i >= 0 {
					reason = reason[:i]
				}
				byLine[pos.Line] = append(byLine[pos.Line], &directive{
					name:   m[1],
					reason: strings.TrimSpace(reason),
					pos:    c.Pos(),
				})
			}
		}
	}
	return p
}

// Reportf records a finding at pos unless a justified suppression
// directive covers it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	if p.Suppressed(pos) {
		return
	}
	p.diags = append(p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Suppressed reports whether the analyzer's directive appears on pos's
// line or the line directly above it, and marks the directive used.
// Directives with an empty justification do not suppress anything (and
// are reported separately by Run).
func (p *Pass) Suppressed(pos token.Pos) bool {
	name := p.Analyzer.Directive
	if name == "" {
		name = p.Analyzer.Name
	}
	at := p.Fset.Position(pos)
	byLine := p.directives[at.Filename]
	for _, line := range []int{at.Line, at.Line - 1} {
		for _, d := range byLine[line] {
			if d.name == name && d.reason != "" {
				d.used = true
				return true
			}
		}
	}
	return false
}

// Run executes one analyzer over one package of prog and returns its
// findings sorted by position. Bare (unjustified) directives matching
// the analyzer are reported as findings too, so the escape hatch cannot
// rot into a blanket mute. The interprocedural passes consult prog but
// still report per package, so directive suppression works uniformly.
func Run(a *Analyzer, prog *Program, pkg *Package) []Diagnostic {
	p := newPass(a, pkg.Fset, pkg.Files, pkg.Types, pkg.Info)
	p.Prog = prog
	a.Run(p)
	dirName := a.Directive
	if dirName == "" {
		dirName = a.Name
	}
	for _, byLine := range p.directives {
		for _, ds := range byLine {
			for _, d := range ds {
				if d.name == dirName && d.reason == "" {
					p.diags = append(p.diags, Diagnostic{
						Pos:      pkg.Fset.Position(d.pos),
						Analyzer: a.Name,
						Message:  fmt.Sprintf("//lint:%s directive needs a justification", dirName),
					})
				}
			}
		}
	}
	sort.Slice(p.diags, func(i, k int) bool {
		a, b := p.diags[i].Pos, p.diags[k].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return p.diags
}

// Analyzers returns the full suite in report order: the three
// determinism passes, the two interprocedural semantic passes, the
// three concurrency passes, then the three state-integrity passes (the
// last six are Wide: they run over every loaded package, not just the
// deterministic set).
func Analyzers() []*Analyzer {
	return []*Analyzer{
		Mapiter, Walltime, Floateq, Unitflow, Allocfree,
		Confine, Guardedby, Goleak,
		Statefield, Transition, Exhaustive,
	}
}

// RunParallel runs the given per-package analysis over every package of
// prog on an internal/par.Pool and returns the merged findings in a
// fixed order — sorted by file, line, column, then analyzer name — so
// the output is byte-identical at any pool width. The program-wide
// caches are warmed on the calling goroutine first; after that the
// per-package work only reads immutable type information and replays
// cached findings, so the fan-out is race-free.
//
// At effective width 1 the fan-out is pure overhead — the serial loop
// below visits packages in index order, which already emits diagnostics
// in the merged sort order package by package — so the single-CPU path
// skips the pool, the per-package result slices, and (when the
// concatenation happens to come out ordered, which index-order
// emission makes the common case) the final sort.
func RunParallel(prog *Program, analyze func(*Package) []Diagnostic) []Diagnostic {
	prog.Warm()
	var out []Diagnostic
	if par.Workers() == 1 {
		for _, pkg := range prog.Packages {
			out = append(out, analyze(pkg)...)
		}
	} else {
		results := make([][]Diagnostic, len(prog.Packages))
		pool := par.NewPool(0)
		defer pool.Close()
		pool.Run(len(prog.Packages), func(i int) {
			results[i] = analyze(prog.Packages[i])
		})
		for _, r := range results {
			out = append(out, r...)
		}
	}
	less := func(i, k int) bool {
		a, b := out[i].Pos, out[k].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return out[i].Analyzer < out[k].Analyzer
	}
	if !sort.SliceIsSorted(out, less) {
		sort.Slice(out, less)
	}
	return out
}

// DeterministicPackages is the set of import paths whose runtime code
// the determinism contract covers: everything on the path from a
// workload description to a golden digest. Test files and the packages
// outside this set (report rendering, CLI glue, the profiler's offline
// fitting) may use maps and wall time freely.
var DeterministicPackages = map[string]bool{
	"spreadnshare/internal/placement":   true,
	"spreadnshare/internal/sched":       true,
	"spreadnshare/internal/trace":       true,
	"spreadnshare/internal/exec":        true,
	"spreadnshare/internal/sim":         true,
	"spreadnshare/internal/cluster":     true,
	"spreadnshare/internal/hw":          true,
	"spreadnshare/internal/pmu":         true,
	"spreadnshare/internal/experiments": true,
	"spreadnshare/internal/core":        true,
	"spreadnshare/internal/units":       true,
	"spreadnshare/internal/par":         true,
	"spreadnshare/internal/svc":         true,
}

// isFloat reports whether t is a floating-point type (after unaliasing).
func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// isInteger reports whether t is an integer type.
func isInteger(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}
