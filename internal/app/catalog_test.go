package app

import (
	"testing"

	"spreadnshare/internal/hw"
)

func TestCatalogHasAllPrograms(t *testing.T) {
	cat := MustCatalog()
	if got, want := len(cat.Names()), 12; got != want {
		t.Fatalf("catalog has %d programs, want %d", got, want)
	}
	for _, name := range ProgramNames {
		if _, err := cat.Lookup(name); err != nil {
			t.Errorf("Lookup(%s): %v", name, err)
		}
	}
	if _, err := cat.Lookup("NOPE"); err == nil {
		t.Error("Lookup of unknown program succeeded")
	}
}

func TestCatalogFrameworks(t *testing.T) {
	cat := MustCatalog()
	want := map[string]Framework{
		"MG": MPI, "CG": MPI, "EP": MPI, "LU": MPI, "BFS": MPI,
		"WC": Spark, "TS": Spark, "NW": Spark,
		"GAN": TensorFlow, "RNN": TensorFlow,
		"HC": Replicated, "BW": Replicated,
	}
	for name, fw := range want {
		m, _ := cat.Lookup(name)
		if m.Framework != fw {
			t.Errorf("%s framework = %v, want %v", name, m.Framework, fw)
		}
	}
}

func TestCatalogScaleConstraints(t *testing.T) {
	cat := MustCatalog()
	for _, name := range []string{"GAN", "RNN"} {
		m, _ := cat.Lookup(name)
		if m.MultiNode {
			t.Errorf("%s is multi-node; TensorFlow examples must be single-node", name)
		}
	}
	for _, name := range []string{"MG", "CG", "EP", "LU", "BFS"} {
		m, _ := cat.Lookup(name)
		if !m.PowerOf2 {
			t.Errorf("%s lacks power-of-2 constraint", name)
		}
		if !m.MultiNode {
			t.Errorf("%s not multi-node", name)
		}
	}
}

func TestCatalogRunTimeSizing(t *testing.T) {
	// Section 6.1: execution times are sized between 50 s and 1200 s.
	cat := MustCatalog()
	for _, name := range ProgramNames {
		m, _ := cat.Lookup(name)
		if m.TargetSoloSec < 50 || m.TargetSoloSec > 1200 {
			t.Errorf("%s solo time %g s outside 50..1200", name, m.TargetSoloSec)
		}
	}
}

func TestCatalogAdd(t *testing.T) {
	cat := MustCatalog()
	custom := &Model{
		Name: "STREAMY", Suite: "custom", Framework: Replicated, MultiNode: true,
		IPCMax: 0.5, FloorFrac: 0.8, LeastWays90: 2, LatSens: 0,
		BWPerCoreRef: 12, MissPctRef: 60, MissFloorFrac: 0.9, WHalf: 6,
		TargetSoloSec: 100, MemGBPerProc: 1,
	}
	if err := cat.Add(custom); err != nil {
		t.Fatalf("Add: %v", err)
	}
	if _, err := cat.Lookup("STREAMY"); err != nil {
		t.Errorf("Lookup after Add: %v", err)
	}
	if err := cat.Add(custom); err == nil {
		t.Error("duplicate Add succeeded")
	}
	if err := cat.Add(&Model{Name: "BROKEN", FloorFrac: 0.0, LeastWays90: 25,
		IPCMax: 1, BWPerCoreRef: 1, MissPctRef: 1, MissFloorFrac: 0.5, WHalf: 5,
		TargetSoloSec: 100}); err == nil {
		t.Error("Add accepted uncalibratable model")
	}
}

func TestCatalogCustomSpec(t *testing.T) {
	spec := hw.DefaultNodeSpec()
	spec.Cores = 56
	spec.PeakBandwidth = 200
	cat, err := NewCatalog(spec)
	if err != nil {
		t.Fatalf("NewCatalog(custom): %v", err)
	}
	if cat.Spec().Cores != 56 {
		t.Errorf("Spec().Cores = %d, want 56", cat.Spec().Cores)
	}
}

func TestAllModelsValidate(t *testing.T) {
	cat := MustCatalog()
	for _, name := range ProgramNames {
		m, _ := cat.Lookup(name)
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	bad := &Model{Name: "", IPCMax: 1}
	if err := bad.Validate(); err == nil {
		t.Error("nameless model validated")
	}
	bad2 := &Model{Name: "X", IPCMax: 0}
	if err := bad2.Validate(); err == nil {
		t.Error("zero-IPC model validated")
	}
	bad3 := &Model{Name: "X", IPCMax: 1, FloorFrac: 0.5, BWPerCoreRef: 1,
		MissPctRef: 10, WHalf: 5, TargetSoloSec: 100} // uncalibrated
	if err := bad3.Validate(); err == nil {
		t.Error("uncalibrated model validated")
	}
}
