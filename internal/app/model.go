// Package app provides analytic performance models of the 12 cluster
// workloads the paper evaluates (NPB MG/CG/EP/LU, Graph500 BFS, HiBench
// WC/TS/NW, TensorFlow GAN/RNN, SPEC CPU HC/BW). Real binaries cannot run
// here, so each program is replaced by a model exposing exactly the
// quantities the paper's profiler measures — IPC and memory bandwidth as a
// function of allocated LLC ways, LLC miss rate, communication time versus
// node footprint — calibrated against the paper's published measurements
// (Figures 2-7, 12, 13).
//
// The model is deliberately mechanistic rather than a lookup table: IPC
// follows a saturating Michaelis-Menten curve in effective cache ways,
// memory traffic follows the miss-rate curve, latency-bound codes degrade
// with node load, and communication grows with the node footprint. The
// scheduler and profiler never see these internals; they observe only
// simulated PMU readings, exactly as Uberun observes hardware PMUs.
package app

import (
	"fmt"
	"math"

	"spreadnshare/internal/hw"
)

// Framework identifies the parallel framework a program runs on. Uberun
// schedules across frameworks; the framework determines scale flexibility
// (MPI wants power-of-two process splits, TensorFlow examples are single
// node) and launch semantics.
type Framework int

const (
	// MPI programs are multi-node with explicit core binding.
	MPI Framework = iota
	// Spark programs run in standalone mode with worker-core limits.
	Spark
	// TensorFlow example programs are multi-threaded but single-node.
	TensorFlow
	// Replicated marks a sequential program submitted as many
	// independent instances (the paper's HC and BW usage).
	Replicated
)

// String returns the framework name.
func (f Framework) String() string {
	switch f {
	case MPI:
		return "MPI"
	case Spark:
		return "Spark"
	case TensorFlow:
		return "TensorFlow"
	case Replicated:
		return "Replicated"
	}
	return fmt.Sprintf("Framework(%d)", int(f))
}

// RefConcurrency is the per-node process count at which all cache curves
// are defined: the paper profiles every program with 16 processes on one
// node (8 per socket). A job running c processes on a node with w
// allocated ways sees "effective ways" w*RefConcurrency/c, because the
// same partition is shared by fewer processes.
const RefConcurrency = 16

// Model is the analytic performance model of one program.
//
// Calibration fields (IPCMax, BWPerCoreRef, ...) are expressed at the
// reference point: RefConcurrency processes on one node with all LLC ways,
// i.e. effective ways = the node's full way count.
type Model struct {
	// Name is the short program name used throughout the paper (MG,
	// CG, TS, ...).
	Name string
	// Suite is the benchmark suite the program comes from.
	Suite string
	// Framework the program runs on.
	Framework Framework
	// MultiNode reports whether the program can span nodes at all
	// (the TensorFlow examples cannot).
	MultiNode bool
	// PowerOf2 reports whether process counts must split in powers of
	// two across nodes (MPI collectives).
	PowerOf2 bool

	// IPCMax is the per-core IPC at full LLC allocation with no other
	// core active (zero memory-latency contention).
	IPCMax float64
	// FloorFrac is the fraction of IPCMax retained as the cache
	// allocation approaches zero; cache-insensitive programs have
	// floors above 0.9.
	FloorFrac float64
	// LeastWays90 is the calibration target: the smallest way count
	// giving 90% of full-way performance at reference concurrency
	// (Figure 12). The curve parameter H is derived from it.
	LeastWays90 float64
	// EffWaysCap bounds the benefit from extra cache per process when
	// a job spreads out; programs whose per-process working set far
	// exceeds the LLC (NW, BFS) stop benefiting at the cap. Zero
	// means "no cap".
	EffWaysCap float64
	// LatSens is the sensitivity of IPC to memory-subsystem load:
	// IPC is divided by (1 + LatSens*load) where load in [0,1] is the
	// fraction of the node's other cores that are active. It models
	// latency-bound degradation (queueing at the memory controller)
	// that bandwidth accounting alone misses — CG and BFS's random
	// accesses make them highly sensitive.
	LatSens float64

	// BWPerCoreRef is the demanded memory bandwidth per core (GB/s) at
	// the reference point.
	BWPerCoreRef float64
	// MissPctRef is the LLC miss rate (%) at the reference point.
	MissPctRef float64
	// MissFloorFrac is the fraction of the zero-way miss rate that
	// remains with infinite cache (compulsory misses).
	MissFloorFrac float64
	// WHalf is the way count over which the capacity-miss component
	// halves.
	WHalf float64

	// IOBWPerCore is the demanded parallel-file-system bandwidth per
	// core in GB/s (HDFS reads and shuffle spills for the Spark
	// programs; ~0 for the compute codes).
	IOBWPerCore float64

	// CommFrac is communication time on 2 nodes as a fraction of the
	// 1-node solo execution time.
	CommFrac float64
	// CommGrowth scales communication growth with footprint:
	// Tcomm(n) = CommFrac*T1*(1 + CommGrowth*(log2(n)-1)).
	CommGrowth float64
	// SpreadMissBoost multiplies the miss rate when the job spans more
	// than one node (BFS's remote-edge traversal).
	SpreadMissBoost float64
	// SpreadWorkBoost multiplies compute work when spanning nodes
	// (extra instruction flows for inter-node communication).
	SpreadWorkBoost float64

	// PhaseAmp is the relative amplitude of the program's bandwidth
	// phases: demand alternates between (1+PhaseAmp) and (1-PhaseAmp)
	// times the average. The paper identifies such phase behavior as
	// a cause of profile inaccuracy and slowdown-threshold violations
	// (Section 6.2); the engine only simulates phases when explicitly
	// enabled.
	PhaseAmp float64
	// PhasePeriodSec is the length of one phase.
	PhasePeriodSec float64

	// TargetSoloSec is the exclusive 1-node run time with
	// RefConcurrency processes; per-process work is derived from it.
	TargetSoloSec float64
	// WorkGI is giga-instructions per process, derived from
	// TargetSoloSec during catalog construction.
	WorkGI float64
	// MemGBPerProc is resident memory per process.
	MemGBPerProc float64

	// h is the Michaelis-Menten half-saturation constant, derived
	// from LeastWays90 at catalog construction.
	h float64
	// refWays is the node's full way count the curves normalize to.
	refWays float64
}

// mm is the raw saturation curve w/(w+h).
func (m *Model) mm(w float64) float64 {
	if w <= 0 {
		return 0
	}
	return w / (w + m.h)
}

// EffectiveWays converts a per-node allocation of ways shared by c
// processes into the equivalent way count at reference concurrency, which
// is the x-axis of all calibration curves. Spreading a job out (smaller c)
// raises its effective ways; EffWaysCap bounds the benefit.
func (m *Model) EffectiveWays(ways float64, coresOnNode int) float64 {
	if coresOnNode <= 0 {
		return 0
	}
	w := ways * RefConcurrency / float64(coresOnNode)
	if m.EffWaysCap > 0 && w > m.EffWaysCap {
		w = m.EffWaysCap
	}
	return w
}

// IPCRel is the IPC relative to the full-way reference as a function of
// effective ways: FloorFrac + (1-FloorFrac) * mm(w)/mm(refWays).
func (m *Model) IPCRel(effWays float64) float64 {
	if effWays <= 0 {
		return m.FloorFrac
	}
	return m.FloorFrac + (1-m.FloorFrac)*m.mm(effWays)/m.mm(m.refWays)
}

// loadFactor is the latency-contention divisor for a node where active
// cores (including this job's own) out of total are busy.
func (m *Model) loadFactor(activeCores, totalCores int) float64 {
	if totalCores <= 1 {
		return 1
	}
	load := float64(activeCores-1) / float64(totalCores-1)
	if load < 0 {
		load = 0
	} else if load > 1 {
		load = 1
	}
	return 1 + m.LatSens*load
}

// IPC returns per-core IPC given effective ways and node occupancy.
func (m *Model) IPC(effWays float64, activeCores, totalCores int) float64 {
	return m.IPCMax * m.IPCRel(effWays) / m.loadFactor(activeCores, totalCores)
}

// MissRel is the LLC miss rate relative to the full-way reference.
func (m *Model) MissRel(effWays float64, spread bool) float64 {
	shape := func(w float64) float64 {
		return m.MissFloorFrac + (1-m.MissFloorFrac)*math.Pow(2, -w/m.WHalf)
	}
	rel := shape(effWays) / shape(m.refWays)
	if spread && m.SpreadMissBoost > 0 {
		rel *= m.SpreadMissBoost
	}
	return rel
}

// MissPct returns the LLC miss rate in percent.
func (m *Model) MissPct(effWays float64, spread bool) float64 {
	p := m.MissPctRef * m.MissRel(effWays, spread)
	if p > 95 {
		p = 95
	}
	return p
}

// BWDemandPerCore returns the memory bandwidth (GB/s) one core of this
// program would consume if unthrottled, given its cache allocation and
// node occupancy. Demand tracks execution speed (slower code issues fewer
// misses per second) and the miss rate (more cache, less traffic).
func (m *Model) BWDemandPerCore(effWays float64, activeCores, totalCores int, spread bool) float64 {
	return m.BWPerCoreRef * m.IPCRel(effWays) / m.loadFactor(activeCores, totalCores) *
		m.MissRel(effWays, spread)
}

// CommSeconds returns the communication time of a run spanning n nodes.
func (m *Model) CommSeconds(n int) float64 {
	if n <= 1 || m.CommFrac == 0 {
		return 0
	}
	return m.CommFrac * m.TargetSoloSec * (1 + m.CommGrowth*(math.Log2(float64(n))-1))
}

// WorkPerProcess returns the compute work in giga-instructions each
// process executes for a run spanning n nodes.
func (m *Model) WorkPerProcess(n int) float64 {
	w := m.WorkGI
	if n > 1 && m.SpreadWorkBoost > 0 {
		w *= m.SpreadWorkBoost
	}
	return w
}

// Calibrate derives the internal curve constants and per-process work from
// the calibration targets, for nodes of the given spec. It must be called
// (normally by the catalog) before any other method.
func (m *Model) Calibrate(spec hw.NodeSpec) error {
	m.refWays = float64(spec.LLCWays)
	if m.SpreadMissBoost == 0 {
		m.SpreadMissBoost = 1
	}
	if m.SpreadWorkBoost == 0 {
		m.SpreadWorkBoost = 1
	}
	// Derive h from the 90%-performance way target:
	// FloorFrac + (1-f)*mm(L)/mm(R) = 0.9 with R = refWays.
	if m.FloorFrac >= 0.9 {
		// Insensitive: any allocation meets 90%; curve shape barely
		// matters.
		m.h = 1
	} else {
		L, R := m.LeastWays90, m.refWays
		x := (0.9 - m.FloorFrac) / (1 - m.FloorFrac)
		if R*x <= L {
			return fmt.Errorf("app: %s: LeastWays90 %g unreachable with floor %g on %g ways",
				m.Name, L, m.FloorFrac, R)
		}
		m.h = R * L * (1 - x) / (R*x - L)
	}
	// Derive per-process work from the target exclusive 1-node time.
	rate := m.soloRate(spec)
	if rate <= 0 {
		return fmt.Errorf("app: %s: non-positive solo rate", m.Name)
	}
	m.WorkGI = m.TargetSoloSec * rate
	return nil
}

// soloRate is the per-core instruction rate (giga-instructions/s) of an
// exclusive 1-node run at reference concurrency with all ways.
func (m *Model) soloRate(spec hw.NodeSpec) float64 {
	eff := m.EffectiveWays(spec.LLCWays.Float64(), RefConcurrency)
	ipc := m.IPC(eff, RefConcurrency, spec.Cores.Int())
	demandPC := m.BWDemandPerCore(eff, RefConcurrency, spec.Cores.Int(), false)
	demand := demandPC * RefConcurrency
	supply := spec.StreamBandwidth(RefConcurrency).Float64()
	throttle := 1.0
	if demand > supply && demand > 0 {
		throttle = supply / demand
	}
	if io := m.IOBWPerCore * RefConcurrency; io > spec.IOBandwidth.Float64() && io > 0 {
		if t := spec.IOBandwidth.Float64() / io; t < throttle {
			throttle = t
		}
	}
	return ipc * spec.FreqGHz.Float64() * throttle
}

// LeastWaysFor returns the smallest integer way allocation (at reference
// concurrency, bounded below by the node minimum) achieving the given
// fraction of full-way IPC — the quantity Figure 12 reports at 0.9.
func (m *Model) LeastWaysFor(frac float64, spec hw.NodeSpec) int {
	full := m.IPCRel(spec.LLCWays.Float64())
	for w := spec.MinWaysPerJob; w <= spec.LLCWays; w++ {
		if m.IPCRel(w.Float64()) >= frac*full {
			return w.Int()
		}
	}
	return spec.LLCWays.Int()
}

// Validate reports whether the calibrated model's parameters are usable.
func (m *Model) Validate() error {
	switch {
	case m.Name == "":
		return fmt.Errorf("app: model needs a name")
	case m.IPCMax <= 0:
		return fmt.Errorf("app: %s: IPCMax must be positive", m.Name)
	case m.FloorFrac < 0 || m.FloorFrac >= 1:
		return fmt.Errorf("app: %s: FloorFrac %g outside [0, 1)", m.Name, m.FloorFrac)
	case m.BWPerCoreRef < 0:
		return fmt.Errorf("app: %s: negative bandwidth", m.Name)
	case m.MissPctRef < 0 || m.MissPctRef > 100:
		return fmt.Errorf("app: %s: miss rate %g outside [0, 100]", m.Name, m.MissPctRef)
	case m.WHalf <= 0:
		return fmt.Errorf("app: %s: WHalf must be positive", m.Name)
	case m.TargetSoloSec <= 0:
		return fmt.Errorf("app: %s: TargetSoloSec must be positive", m.Name)
	case m.WorkGI <= 0:
		return fmt.Errorf("app: %s: not calibrated (WorkGI %g)", m.Name, m.WorkGI)
	case m.PhaseAmp < 0 || m.PhaseAmp >= 1:
		return fmt.Errorf("app: %s: PhaseAmp %g outside [0, 1)", m.Name, m.PhaseAmp)
	}
	return nil
}
