package app

import (
	"math"
	"testing"
	"testing/quick"

	"spreadnshare/internal/hw"
)

func testModel(t *testing.T, name string) *Model {
	t.Helper()
	cat, err := NewCatalog(hw.DefaultNodeSpec())
	if err != nil {
		t.Fatalf("NewCatalog: %v", err)
	}
	m, err := cat.Lookup(name)
	if err != nil {
		t.Fatalf("Lookup(%s): %v", name, err)
	}
	return m
}

func TestIPCRelMonotone(t *testing.T) {
	for _, name := range ProgramNames {
		m := testModel(t, name)
		prev := -1.0
		for w := 1.0; w <= 60; w++ {
			v := m.IPCRel(w)
			if v < prev-1e-12 {
				t.Errorf("%s: IPCRel(%g) = %g < IPCRel(%g) = %g", name, w, v, w-1, prev)
			}
			prev = v
		}
	}
}

func TestIPCRelNormalization(t *testing.T) {
	for _, name := range ProgramNames {
		m := testModel(t, name)
		if got := m.IPCRel(20); math.Abs(got-1) > 1e-12 {
			t.Errorf("%s: IPCRel(20) = %g, want 1", name, got)
		}
		if got := m.IPCRel(0); math.Abs(got-m.FloorFrac) > 1e-12 {
			t.Errorf("%s: IPCRel(0) = %g, want floor %g", name, got, m.FloorFrac)
		}
	}
}

func TestLeastWays90Calibration(t *testing.T) {
	spec := hw.DefaultNodeSpec()
	want := map[string]int{
		"MG": 3, "CG": 10, "EP": 2, "HC": 2, "LU": 4, "WC": 4,
		"TS": 14, "NW": 17, "BFS": 17, "BW": 4, "GAN": 6, "RNN": 6,
	}
	for name, w := range want {
		m := testModel(t, name)
		got := m.LeastWaysFor(0.9, spec)
		if got < w-1 || got > w+1 {
			t.Errorf("%s: least ways for 90%% = %d, want %d (+-1)", name, got, w)
		}
	}
}

func TestMissRelShape(t *testing.T) {
	m := testModel(t, "MG")
	if got := m.MissRel(20, false); math.Abs(got-1) > 1e-12 {
		t.Errorf("MissRel(20) = %g, want 1", got)
	}
	if m.MissRel(2, false) <= m.MissRel(20, false) {
		t.Error("miss rate with 2 ways not above miss rate with 20 ways")
	}
	if m.MissRel(40, false) >= m.MissRel(20, false) {
		t.Error("miss rate with 40 ways not below miss rate with 20 ways")
	}
}

func TestSpreadMissBoost(t *testing.T) {
	bfs := testModel(t, "BFS")
	if got, want := bfs.MissRel(20, true), bfs.SpreadMissBoost; math.Abs(got-want) > 1e-12 {
		t.Errorf("BFS spread MissRel(20) = %g, want boost %g", got, want)
	}
	mg := testModel(t, "MG")
	if got := mg.MissRel(20, true); math.Abs(got-1) > 1e-12 {
		t.Errorf("MG spread MissRel(20) = %g, want 1 (no boost)", got)
	}
}

func TestMissPctCap(t *testing.T) {
	m := testModel(t, "BFS")
	if got := m.MissPct(0.1, true); got > 95 {
		t.Errorf("MissPct = %g, want capped at 95", got)
	}
}

func TestEffectiveWays(t *testing.T) {
	m := testModel(t, "MG")
	if got := m.EffectiveWays(20, 16); got != 20 {
		t.Errorf("EffectiveWays(20, 16) = %g, want 20", got)
	}
	if got := m.EffectiveWays(20, 8); got != 40 {
		t.Errorf("EffectiveWays(20, 8) = %g, want 40", got)
	}
	if got := m.EffectiveWays(10, 16); got != 10 {
		t.Errorf("EffectiveWays(10, 16) = %g, want 10", got)
	}
	if got := m.EffectiveWays(20, 0); got != 0 {
		t.Errorf("EffectiveWays(20, 0) = %g, want 0", got)
	}
	nw := testModel(t, "NW")
	if got := nw.EffectiveWays(20, 2); got != 20 {
		t.Errorf("NW EffectiveWays(20, 2) = %g, want capped at 20", got)
	}
}

func TestLatencyContention(t *testing.T) {
	cg := testModel(t, "CG")
	solo := cg.IPC(20, 1, 28)
	packed := cg.IPC(20, 28, 28)
	if packed >= solo {
		t.Errorf("CG IPC under full load %g not below solo %g", packed, solo)
	}
	ratio := solo / packed
	if math.Abs(ratio-(1+cg.LatSens)) > 1e-9 {
		t.Errorf("full-load degradation = %g, want %g", ratio, 1+cg.LatSens)
	}
	ep := testModel(t, "EP")
	if ep.IPC(20, 28, 28) != ep.IPC(20, 1, 28) {
		t.Error("EP (LatSens 0) degraded under load")
	}
}

func TestBWDemandCalibration(t *testing.T) {
	// Figure 4 anchors: per-core demand at the reference point.
	spec := hw.DefaultNodeSpec()
	for _, c := range []struct {
		name   string
		demand float64 // total for 16 cores
		tol    float64
	}{
		{"MG", 140, 25},  // demand above supply; achieved ~112
		{"CG", 42.9, 10}, // unthrottled, matches measured
		{"EP", 0.09, 0.05},
		{"BFS", 0.12, 0.06},
	} {
		m := testModel(t, c.name)
		got := 16 * m.BWDemandPerCore(20, 16, spec.Cores.Int(), false)
		if math.Abs(got-c.demand) > c.tol {
			t.Errorf("%s: 16-core demand = %g GB/s, want %g (+-%g)", c.name, got, c.demand, c.tol)
		}
	}
}

func TestCommSeconds(t *testing.T) {
	mg := testModel(t, "MG")
	if got := mg.CommSeconds(1); got != 0 {
		t.Errorf("CommSeconds(1) = %g, want 0", got)
	}
	t2, t4, t8 := mg.CommSeconds(2), mg.CommSeconds(4), mg.CommSeconds(8)
	if !(t2 < t4 && t4 < t8) {
		t.Errorf("comm time not growing: %g, %g, %g", t2, t4, t8)
	}
	// NPB communication stays under 10%% of run time (Figure 7).
	if frac := t8 / mg.TargetSoloSec; frac > 0.10 {
		t.Errorf("MG comm fraction at 8 nodes = %g, want < 0.10", frac)
	}
}

func TestWorkPerProcessSpreadBoost(t *testing.T) {
	bfs := testModel(t, "BFS")
	if got, want := bfs.WorkPerProcess(2), bfs.WorkGI*1.25; math.Abs(got-want) > 1e-9 {
		t.Errorf("BFS spread work = %g, want %g", got, want)
	}
	if got := bfs.WorkPerProcess(1); got != bfs.WorkGI {
		t.Errorf("BFS 1-node work = %g, want %g", got, bfs.WorkGI)
	}
}

func TestCalibrateDerivesPositiveWork(t *testing.T) {
	for _, name := range ProgramNames {
		m := testModel(t, name)
		if m.WorkGI <= 0 {
			t.Errorf("%s: WorkGI = %g, want positive", name, m.WorkGI)
		}
	}
}

func TestCalibrateRejectsUnreachableTarget(t *testing.T) {
	m := &Model{
		Name: "bad", IPCMax: 1, FloorFrac: 0.0, LeastWays90: 19,
		BWPerCoreRef: 1, MissPctRef: 10, MissFloorFrac: 0.5, WHalf: 5,
		TargetSoloSec: 100,
	}
	if err := m.Calibrate(hw.DefaultNodeSpec()); err == nil {
		t.Error("Calibrate accepted 90%-way target beyond the curve's reach")
	}
}

// Property: IPC never increases with node load and never decreases with
// cache, for every program.
func TestIPCProperties(t *testing.T) {
	cat, err := NewCatalog(hw.DefaultNodeSpec())
	if err != nil {
		t.Fatal(err)
	}
	f := func(wRaw, loadRaw uint8, pick uint8) bool {
		name := ProgramNames[int(pick)%len(ProgramNames)]
		m, _ := cat.Lookup(name)
		w := float64(wRaw%40) + 1
		a := int(loadRaw%28) + 1
		if m.IPC(w+1, a, 28) < m.IPC(w, a, 28)-1e-12 {
			return false
		}
		if a < 28 && m.IPC(w, a+1, 28) > m.IPC(w, a, 28)+1e-12 {
			return false
		}
		return m.BWDemandPerCore(w, a, 28, false) >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 800}); err != nil {
		t.Error(err)
	}
}

func TestFrameworkString(t *testing.T) {
	cases := map[Framework]string{
		MPI: "MPI", Spark: "Spark", TensorFlow: "TensorFlow",
		Replicated: "Replicated", Framework(9): "Framework(9)",
	}
	for f, want := range cases {
		if got := f.String(); got != want {
			t.Errorf("Framework(%d).String() = %q, want %q", int(f), got, want)
		}
	}
}
