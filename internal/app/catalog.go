package app

import (
	"fmt"
	"sort"

	"spreadnshare/internal/hw"
)

// Catalog holds the calibrated models of every known program.
type Catalog struct {
	spec   hw.NodeSpec
	models map[string]*Model
}

// Names of the paper's 12 test programs.
var ProgramNames = []string{
	"WC", "TS", "NW", "GAN", "RNN", "MG", "CG", "EP", "LU", "BFS", "HC", "BW",
}

// rawModels returns the uncalibrated parameter set for the 12 programs.
//
// Calibration anchors, all from the paper:
//   - Figure 4: 1-node 16-core bandwidth consumption — MG 112.0, CG 42.9,
//     EP 0.09, BFS 0.12 GB/s.
//   - Figures 6/12: least LLC ways for 90% performance — MG 3, CG 10,
//     EP and HC happy with 2, NW/BFS near-full cache.
//   - Figure 13: scaling classes — MG/CG/LU/TS/BW scaling (CG peaking at
//     2x, the others improving to 8x by >30%), BFS compact, EP/WC/NW/HC
//     neutral.
//   - Figure 7: NPB communication under 10% of run time.
//   - Section 6.1: run times sized between 50 s and 1200 s.
func rawModels() []*Model {
	return []*Model{
		{
			Name: "WC", Suite: "HiBench", Framework: Spark,
			MultiNode: true,
			IPCMax:    1.2, FloorFrac: 0.70, LeastWays90: 4, LatSens: 0.05,
			BWPerCoreRef: 0.8, MissPctRef: 12, MissFloorFrac: 0.5, WHalf: 6,
			IOBWPerCore: 0.08,
			CommFrac:    0.04, CommGrowth: 0.5,
			TargetSoloSec: 210, MemGBPerProc: 2,
		},
		{
			Name: "TS", Suite: "HiBench", Framework: Spark,
			MultiNode: true,
			IPCMax:    0.9, FloorFrac: 0.0, LeastWays90: 14, LatSens: 0.12,
			BWPerCoreRef: 1.6, MissPctRef: 20, MissFloorFrac: 0.4, WHalf: 8,
			IOBWPerCore: 0.10,
			PhaseAmp:    0.30, PhasePeriodSec: 40,
			CommFrac: 0.03, CommGrowth: 0.8,
			TargetSoloSec: 377, MemGBPerProc: 4,
		},
		{
			Name: "NW", Suite: "HiBench", Framework: Spark,
			MultiNode: true,
			IPCMax:    0.8, FloorFrac: 0.15, LeastWays90: 17, EffWaysCap: 20,
			LatSens:      0.20,
			BWPerCoreRef: 1.0, MissPctRef: 30, MissFloorFrac: 0.3, WHalf: 10,
			CommFrac: 0.05, CommGrowth: 1.0,
			TargetSoloSec: 650, MemGBPerProc: 4,
		},
		{
			Name: "GAN", Suite: "TF-Examples", Framework: TensorFlow,
			MultiNode: false,
			IPCMax:    1.1, FloorFrac: 0.50, LeastWays90: 6, LatSens: 0.08,
			BWPerCoreRef: 0.7, MissPctRef: 10, MissFloorFrac: 0.5, WHalf: 6,
			TargetSoloSec: 900, MemGBPerProc: 3,
		},
		{
			Name: "RNN", Suite: "TF-Examples", Framework: TensorFlow,
			MultiNode: false,
			IPCMax:    1.2, FloorFrac: 0.55, LeastWays90: 6, LatSens: 0.08,
			BWPerCoreRef: 0.6, MissPctRef: 9, MissFloorFrac: 0.5, WHalf: 6,
			TargetSoloSec: 800, MemGBPerProc: 3,
		},
		{
			Name: "MG", Suite: "NPB", Framework: MPI,
			MultiNode: true, PowerOf2: true,
			IPCMax: 0.7, FloorFrac: 0.50, LeastWays90: 3, LatSens: 0.05,
			BWPerCoreRef: 9.5, MissPctRef: 45, MissFloorFrac: 0.88, WHalf: 12,
			PhaseAmp: 0.25, PhasePeriodSec: 20,
			CommFrac: 0.015, CommGrowth: 0.3,
			TargetSoloSec: 97.5, MemGBPerProc: 4,
		},
		{
			Name: "CG", Suite: "NPB", Framework: MPI,
			MultiNode: true, PowerOf2: true,
			IPCMax: 0.65, FloorFrac: 0.35, LeastWays90: 10, LatSens: 0.35,
			BWPerCoreRef: 2.7, MissPctRef: 35, MissFloorFrac: 0.4, WHalf: 8,
			PhaseAmp: 0.20, PhasePeriodSec: 25,
			CommFrac: 0.02, CommGrowth: 5.2,
			TargetSoloSec: 120, MemGBPerProc: 3,
		},
		{
			Name: "EP", Suite: "NPB", Framework: MPI,
			MultiNode: true, PowerOf2: true,
			IPCMax: 1.6, FloorFrac: 0.97, LeastWays90: 2, LatSens: 0.0,
			BWPerCoreRef: 0.006, MissPctRef: 2, MissFloorFrac: 0.9, WHalf: 5,
			CommFrac: 0.01, CommGrowth: 0.3,
			TargetSoloSec: 75, MemGBPerProc: 1,
		},
		{
			Name: "LU", Suite: "NPB", Framework: MPI,
			MultiNode: true, PowerOf2: true,
			IPCMax: 0.75, FloorFrac: 0.55, LeastWays90: 4, LatSens: 0.08,
			BWPerCoreRef: 9.0, MissPctRef: 40, MissFloorFrac: 0.88, WHalf: 12,
			PhaseAmp: 0.20, PhasePeriodSec: 30,
			CommFrac: 0.02, CommGrowth: 0.4,
			TargetSoloSec: 300, MemGBPerProc: 4,
		},
		{
			Name: "BFS", Suite: "Graph500", Framework: MPI,
			MultiNode: true, PowerOf2: true,
			IPCMax: 0.55, FloorFrac: 0.20, LeastWays90: 17, EffWaysCap: 20,
			LatSens:      0.40,
			BWPerCoreRef: 0.0075, MissPctRef: 28, MissFloorFrac: 0.3, WHalf: 9,
			CommFrac: 0.08, CommGrowth: 2.2,
			SpreadMissBoost: 2.0, SpreadWorkBoost: 1.25,
			TargetSoloSec: 150, MemGBPerProc: 6,
		},
		{
			Name: "HC", Suite: "SPEC CPU 2006", Framework: Replicated,
			MultiNode: true,
			IPCMax:    1.5, FloorFrac: 0.92, LeastWays90: 2, LatSens: 0.05,
			BWPerCoreRef: 0.25, MissPctRef: 5, MissFloorFrac: 0.8, WHalf: 5,
			TargetSoloSec: 482, MemGBPerProc: 1,
		},
		{
			Name: "BW", Suite: "SPEC CPU 2006", Framework: Replicated,
			MultiNode: true,
			IPCMax:    0.8, FloorFrac: 0.50, LeastWays90: 4, LatSens: 0.08,
			BWPerCoreRef: 9.0, MissPctRef: 42, MissFloorFrac: 0.88, WHalf: 12,
			PhaseAmp: 0.25, PhasePeriodSec: 25,
			TargetSoloSec: 560, MemGBPerProc: 2,
		},
	}
}

// NewCatalog calibrates the 12 paper programs against the given node spec.
func NewCatalog(spec hw.NodeSpec) (*Catalog, error) {
	c := &Catalog{spec: spec, models: make(map[string]*Model)}
	for _, m := range rawModels() {
		if err := m.Calibrate(spec); err != nil {
			return nil, err
		}
		c.models[m.Name] = m
	}
	return c, nil
}

// MustCatalog is NewCatalog for the default node spec, panicking on
// calibration failure (which would be a programming error in the builtin
// parameter table).
func MustCatalog() *Catalog {
	c, err := NewCatalog(hw.DefaultNodeSpec())
	if err != nil {
		panic(fmt.Sprintf("app: builtin catalog failed to calibrate: %v", err))
	}
	return c
}

// Lookup returns the model for a program name.
func (c *Catalog) Lookup(name string) (*Model, error) {
	m, ok := c.models[name]
	if !ok {
		return nil, fmt.Errorf("app: unknown program %q", name)
	}
	return m, nil
}

// Spec returns the node spec the catalog was calibrated for.
func (c *Catalog) Spec() hw.NodeSpec { return c.spec }

// Names returns the catalog's program names in stable order.
func (c *Catalog) Names() []string {
	names := make([]string, 0, len(c.models))
	for n := range c.models {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Add registers a custom model (calibrating it first), for users extending
// the catalog beyond the builtin programs.
func (c *Catalog) Add(m *Model) error {
	if _, ok := c.models[m.Name]; ok {
		return fmt.Errorf("app: program %q already registered", m.Name)
	}
	if err := m.Calibrate(c.spec); err != nil {
		return err
	}
	c.models[m.Name] = m
	return nil
}
