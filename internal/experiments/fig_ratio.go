package experiments

import (
	"math/rand"

	"spreadnshare/internal/sched"
	"spreadnshare/internal/stats"
	"spreadnshare/internal/workload"
)

// Fig19Row is one scaling-ratio point of the controlled mix study
// (Figure 19): SNS's average wait, run, and turnaround time normalized to
// CE's.
type Fig19Row struct {
	TargetRatio float64
	RunNorm     float64
	WaitNorm    float64
	TurnNorm    float64
}

// Fig19ScalingRatio reproduces Figure 19: eleven BW/HC mixes of 30
// full-node jobs spanning scaling ratios 0..1, each replayed under CE and
// SNS. (With full-node jobs CS equals CE, so it is omitted, as in the
// paper.)
func Fig19ScalingRatio(env *Env) ([]Fig19Row, error) {
	var rows []Fig19Row
	for i := 0; i <= 10; i++ {
		target := float64(i) / 10
		seq := workload.RatioMix(rand.New(rand.NewSource(int64(50+i))), target, 30)
		type agg struct{ run, wait, turn float64 }
		byPolicy := make(map[sched.Policy]agg)
		for _, p := range []sched.Policy{sched.CE, sched.SNS} {
			done, err := runSequence(env, seq, p)
			if err != nil {
				return nil, err
			}
			var runs, waits, turns []float64
			for _, j := range done {
				runs = append(runs, j.RunTime())
				waits = append(waits, j.WaitTime())
				turns = append(turns, j.Turnaround())
			}
			byPolicy[p] = agg{stats.Mean(runs), stats.Mean(waits), stats.Mean(turns)}
		}
		ce, sns := byPolicy[sched.CE], byPolicy[sched.SNS]
		row := Fig19Row{TargetRatio: target}
		if ce.run > 0 {
			row.RunNorm = sns.run / ce.run
		}
		if ce.wait > 0 {
			row.WaitNorm = sns.wait / ce.wait
		}
		if ce.turn > 0 {
			row.TurnNorm = sns.turn / ce.turn
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Fig19Table renders Figure 19.
func Fig19Table(rows []Fig19Row) [][]string {
	out := [][]string{{"scaling ratio", "run/CE", "wait/CE", "turnaround/CE"}}
	for _, r := range rows {
		out = append(out, []string{f2(r.TargetRatio), f3(r.RunNorm), f3(r.WaitNorm), f3(r.TurnNorm)})
	}
	return out
}
