package experiments

// Equivalence guards for the placement-kernel refactor: the kernel-backed
// scheduler must reproduce the pre-refactor placements bit for bit, and
// the testbed scheduler and the trace simulator — now both thin clients
// of internal/placement — must make identical decisions when offered the
// same workload.

import (
	"fmt"
	"hash/fnv"
	"sort"
	"testing"

	"spreadnshare/internal/app"
	"spreadnshare/internal/hw"
	"spreadnshare/internal/profiler"
	"spreadnshare/internal/sched"
	"spreadnshare/internal/trace"
)

// Pre-refactor placement digests of the seeded 512-node workload below,
// captured on the linear-scan scheduler (core.FindNodes / placeCS) before
// the kernel rebase. The kernel's indexed search must reproduce them
// exactly: same candidate order, same ID-order tie-breaking.
const (
	goldenPlacementCE  = "59803348dd032c65"
	goldenPlacementSNS = "20aae57497f12498"
)

// equivalenceWorkload is the seeded 512-node trace both tests replay:
// 48 single-node jobs, programs with MultiNode and no PowerOf2 constraint
// so every kernel scale is runnable.
func equivalenceWorkload(t *testing.T, procs int) (hw.ClusterSpec, *app.Catalog, *profiler.DB, []trace.Job) {
	t.Helper()
	spec := hw.ClusterSpec{Nodes: 512, Node: hw.DefaultNodeSpec()}
	cat, err := app.NewCatalog(spec.Node)
	if err != nil {
		t.Fatal(err)
	}
	db := profiler.NewDB()
	k := profiler.New(spec)
	if err := k.ProfileAll(cat, []string{"TS", "BW", "HC", "WC"}, procs, db); err != nil {
		t.Fatal(err)
	}
	jobs := trace.Synthesize(21, trace.GenConfig{Jobs: 48, SpanHours: 1, MaxNodes: 1})
	trace.MapPrograms(21, jobs, []string{"TS", "BW"}, []string{"HC", "WC"}, 0.8)
	return spec, cat, db, jobs
}

func runSched(t *testing.T, spec hw.ClusterSpec, cat *app.Catalog, db *profiler.DB,
	jobs []trace.Job, pol sched.Policy, procs int) []*struct {
	ID    int
	Start float64
	Nodes []int
} {
	t.Helper()
	s, err := sched.New(spec, cat, db, sched.DefaultConfig(pol))
	if err != nil {
		t.Fatal(err)
	}
	for _, tj := range jobs {
		if err := s.Submit(sched.JobSpec{Program: tj.Program, Procs: procs, Submit: 0}); err != nil {
			t.Fatal(err)
		}
	}
	done, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	sort.Slice(done, func(a, b int) bool { return done[a].ID < done[b].ID })
	out := make([]*struct {
		ID    int
		Start float64
		Nodes []int
	}, len(done))
	for i, j := range done {
		out[i] = &struct {
			ID    int
			Start float64
			Nodes []int
		}{ID: j.ID, Start: j.Start, Nodes: j.Nodes}
	}
	return out
}

// TestKernelMatchesPreRefactorDigests replays the seeded workload through
// the kernel-backed scheduler and checks the placements against digests
// captured on the old linear-scan path.
func TestKernelMatchesPreRefactorDigests(t *testing.T) {
	spec, cat, db, jobs := equivalenceWorkload(t, 28)
	want := map[sched.Policy]string{sched.CE: goldenPlacementCE, sched.SNS: goldenPlacementSNS}
	for _, pol := range []sched.Policy{sched.CE, sched.SNS} {
		done := runSched(t, spec, cat, db, jobs, pol, 28)
		h := fnv.New64a()
		for _, j := range done {
			digestFloat(h, float64(j.ID))
			digestFloat(h, j.Start)
			nodes := append([]int(nil), j.Nodes...)
			sort.Ints(nodes)
			for _, n := range nodes {
				digestFloat(h, float64(n))
			}
			if j.Start != 0 {
				t.Errorf("%v job %d started at %g, want 0", pol, j.ID, j.Start)
			}
		}
		if got := fmt.Sprintf("%016x", h.Sum64()); got != want[pol] {
			t.Errorf("%v placement digest = %s, want pre-refactor %s", pol, got, want[pol])
		}
	}
}

// TestSchedTraceIdenticalPlacements offers the same 512-node workload to
// the testbed scheduler and the trace simulator. Jobs are 1-node 16-proc
// slices (every candidate scale 1/2/4/8 divides 16 evenly), so the two
// request shapes resolve to the same kernel searches and both layers must
// pick identical node sets, scales, and start times for CE and SNS.
func TestSchedTraceIdenticalPlacements(t *testing.T) {
	const procs = 16
	spec, cat, db, jobs := equivalenceWorkload(t, procs)
	// One batch at t=0: placements then depend only on queue order and
	// the kernel, not on the two layers' different runtime models.
	for i := range jobs {
		jobs[i].SubmitSec = 0
	}
	for _, pol := range []sched.Policy{sched.CE, sched.SNS} {
		done := runSched(t, spec, cat, db, jobs, pol, procs)
		cfg := trace.SimConfig{
			ClusterNodes:    spec.Nodes,
			Policy:          pol,
			CoresPerJobNode: procs,
			Alpha:           0.9,
			MaxScale:        8,
		}
		res, err := trace.Simulate(jobs, db, spec.Node, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Jobs) != len(done) {
			t.Fatalf("%v: %d trace jobs vs %d sched jobs", pol, len(res.Jobs), len(done))
		}
		for i, sj := range done {
			tj := res.Jobs[i]
			if tj.Start != sj.Start {
				t.Errorf("%v job %d: trace start %g, sched start %g", pol, i, tj.Start, sj.Start)
			}
			if tj.Scale != len(sj.Nodes) {
				t.Errorf("%v job %d: trace scale %d, sched footprint %d", pol, i, tj.Scale, len(sj.Nodes))
			}
			if len(tj.Nodes) != len(sj.Nodes) {
				t.Errorf("%v job %d: trace nodes %v, sched nodes %v", pol, i, tj.Nodes, sj.Nodes)
				continue
			}
			for k := range tj.Nodes {
				if tj.Nodes[k] != sj.Nodes[k] {
					t.Errorf("%v job %d: trace nodes %v, sched nodes %v", pol, i, tj.Nodes, sj.Nodes)
					break
				}
			}
		}
	}
}
