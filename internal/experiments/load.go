package experiments

import (
	"fmt"
	"math/rand"

	"spreadnshare/internal/sched"
	"spreadnshare/internal/stats"
	"spreadnshare/internal/workload"
)

// LoadRow is one point of the open-arrival load study: jobs arrive as a
// Poisson process at the given offered load (fraction of the cluster's
// core capacity the workload demands under CE), and each policy's mean
// wait and turnaround are reported relative to CE.
type LoadRow struct {
	OfferedLoad float64
	// WaitCE is CE's mean wait in seconds (absolute, for context).
	WaitCE float64
	// Relative turnaround per policy (CS, SNS over CE).
	CSTurnNorm  float64
	SNSTurnNorm float64
}

// LoadSweep extends the paper's closed "time segment" methodology with an
// open system: at low load every policy idles, at high load queues build —
// SNS's run-time reductions compound into queueing relief, so its
// advantage should *grow* with load until the cluster saturates.
func LoadSweep(env *Env, loads []float64, jobs int) ([]LoadRow, error) {
	// Mean CE core-seconds per job under the random 12-program mix,
	// estimated from a sample sequence.
	sample := workload.RandomSequence(rand.New(rand.NewSource(99)), env.Cat, 60)
	meanCoreSec := 0.0
	for _, js := range sample {
		t, err := env.CE.Of(js.Program, js.Procs)
		if err != nil {
			return nil, err
		}
		meanCoreSec += float64(js.Procs) * t
	}
	meanCoreSec /= float64(len(sample))
	capacity := float64(env.Spec.TotalCores())

	var rows []LoadRow
	for _, load := range loads {
		if load <= 0 {
			return nil, fmt.Errorf("experiments: offered load must be positive, got %g", load)
		}
		interArrival := meanCoreSec / (load * capacity)
		seq := workload.PoissonSequence(rand.New(rand.NewSource(7)), env.Cat, jobs, interArrival)
		turn := make(map[sched.Policy]float64)
		var waitCE float64
		for _, p := range []sched.Policy{sched.CE, sched.CS, sched.SNS} {
			done, err := runSequence(env, seq, p)
			if err != nil {
				return nil, fmt.Errorf("load %.2f policy %v: %w", load, p, err)
			}
			var turns, waits []float64
			for _, j := range done {
				turns = append(turns, j.Turnaround())
				waits = append(waits, j.WaitTime())
			}
			turn[p] = stats.Mean(turns)
			if p == sched.CE {
				waitCE = stats.Mean(waits)
			}
		}
		rows = append(rows, LoadRow{
			OfferedLoad: load,
			WaitCE:      waitCE,
			CSTurnNorm:  turn[sched.CS] / turn[sched.CE],
			SNSTurnNorm: turn[sched.SNS] / turn[sched.CE],
		})
	}
	return rows, nil
}

// LoadTable renders the load sweep.
func LoadTable(rows []LoadRow) [][]string {
	out := [][]string{{"offered load", "CE wait (s)", "CS turn/CE", "SNS turn/CE"}}
	for _, r := range rows {
		out = append(out, []string{f2(r.OfferedLoad), f1(r.WaitCE),
			f3(r.CSTurnNorm), f3(r.SNSTurnNorm)})
	}
	return out
}
