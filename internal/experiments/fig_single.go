package experiments

import (
	"fmt"

	"spreadnshare/internal/exec"
	"spreadnshare/internal/sched"
	"spreadnshare/internal/units"
)

// ScaleLabels name the paper's four standard placements of a 16-process
// job.
var ScaleLabels = []string{"1N16C", "2N8C", "4N4C", "8N2C"}

// scaleNodes are the node counts behind ScaleLabels.
var scaleNodes = []int{1, 2, 4, 8}

// Fig2Row is one program's scaling behavior (Figure 2): speedup of a
// 16-process run at each placement versus 1N16C.
type Fig2Row struct {
	Program  string
	Speedups [4]float64
}

// Fig2Scaling reproduces Figure 2 for the paper's four characterization
// programs.
func Fig2Scaling(env *Env) ([]Fig2Row, error) {
	var rows []Fig2Row
	for _, name := range []string{"MG", "CG", "EP", "BFS"} {
		prog := env.Prog(name)
		base, err := exec.RunSolo(env.Spec, prog, 16, 1)
		if err != nil {
			return nil, err
		}
		row := Fig2Row{Program: name}
		for i, n := range scaleNodes {
			j, err := exec.RunSolo(env.Spec, prog, 16, n)
			if err != nil {
				return nil, err
			}
			row.Speedups[i] = base.RunTime() / j.RunTime()
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Fig2Table renders Figure 2 rows.
func Fig2Table(rows []Fig2Row) [][]string {
	out := [][]string{{"program", "1N16C", "2N8C", "4N4C", "8N2C"}}
	for _, r := range rows {
		out = append(out, []string{r.Program,
			f3(r.Speedups[0]), f3(r.Speedups[1]), f3(r.Speedups[2]), f3(r.Speedups[3])})
	}
	return out
}

// Fig3Row is one point of the STREAM bandwidth curve (Figure 3).
type Fig3Row struct {
	Cores     int
	OverallGB float64
	PerCoreGB float64
}

// Fig3Stream reproduces Figure 3 from the hardware model.
func Fig3Stream(env *Env) []Fig3Row {
	var rows []Fig3Row
	for k := 1; k <= env.Spec.Node.Cores.Int(); k++ {
		rows = append(rows, Fig3Row{
			Cores:     k,
			OverallGB: env.Spec.Node.StreamBandwidth(units.CoresOf(k)).Float64(),
			PerCoreGB: env.Spec.Node.PerCoreBandwidth(units.CoresOf(k)).Float64(),
		})
	}
	return rows
}

// Fig3Table renders Figure 3 rows.
func Fig3Table(rows []Fig3Row) [][]string {
	out := [][]string{{"cores", "overall GB/s", "per-core GB/s"}}
	for _, r := range rows {
		out = append(out, []string{fmt.Sprint(r.Cores), f2(r.OverallGB), f2(r.PerCoreGB)})
	}
	return out
}

// Fig4Row is one program's per-node memory bandwidth consumption at each
// placement (Figure 4).
type Fig4Row struct {
	Program   string
	PerNodeGB [4]float64
}

// Fig4Bandwidth reproduces Figure 4 from simulated PMU counters.
func Fig4Bandwidth(env *Env) ([]Fig4Row, error) {
	var rows []Fig4Row
	for _, name := range []string{"MG", "CG", "EP", "BFS"} {
		prog := env.Prog(name)
		row := Fig4Row{Program: name}
		for i, n := range scaleNodes {
			j, c, _, err := exec.RunSoloStats(env.Spec, prog, 16, n)
			if err != nil {
				return nil, err
			}
			_ = j
			row.PerNodeGB[i] = c.Bandwidth().Float64() / float64(n)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Fig4Table renders Figure 4 rows.
func Fig4Table(rows []Fig4Row) [][]string {
	out := [][]string{{"program", "1N16C", "2N8C", "4N4C", "8N2C"}}
	for _, r := range rows {
		out = append(out, []string{r.Program,
			f2(r.PerNodeGB[0]), f2(r.PerNodeGB[1]), f2(r.PerNodeGB[2]), f2(r.PerNodeGB[3])})
	}
	return out
}

// Fig5Row is one program's LLC miss rate at each placement (Figure 5).
type Fig5Row struct {
	Program string
	MissPct [4]float64
}

// Fig5MissRate reproduces Figure 5.
func Fig5MissRate(env *Env) ([]Fig5Row, error) {
	var rows []Fig5Row
	for _, name := range []string{"MG", "CG", "EP", "BFS"} {
		prog := env.Prog(name)
		row := Fig5Row{Program: name}
		for i, n := range scaleNodes {
			_, _, m, err := exec.RunSoloStats(env.Spec, prog, 16, n)
			if err != nil {
				return nil, err
			}
			row.MissPct[i] = m.MissPct
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Fig5Table renders Figure 5 rows.
func Fig5Table(rows []Fig5Row) [][]string {
	out := [][]string{{"program", "1N16C", "2N8C", "4N4C", "8N2C"}}
	for _, r := range rows {
		out = append(out, []string{r.Program,
			f1(r.MissPct[0]), f1(r.MissPct[1]), f1(r.MissPct[2]), f1(r.MissPct[3])})
	}
	return out
}

// Fig6Row is one program's performance under a CAT way sweep, normalized
// to full ways (Figure 6).
type Fig6Row struct {
	Program string
	Norm    []float64 // index w-1 for w ways
}

// Fig6WaySweep reproduces Figure 6: each program runs solo on one node
// while its LLC allocation is fixed at w ways for the whole run.
func Fig6WaySweep(env *Env) ([]Fig6Row, error) {
	var rows []Fig6Row
	for _, name := range []string{"MG", "CG", "EP", "BFS"} {
		prog := env.Prog(name)
		times := make([]float64, env.Spec.Node.LLCWays.Int())
		for w := 1; w <= env.Spec.Node.LLCWays.Int(); w++ {
			e, err := exec.New(env.Spec)
			if err != nil {
				return nil, err
			}
			j, err := exec.PlaceEven(prog, 0, 16, 1, env.Spec.Nodes)
			if err != nil {
				return nil, err
			}
			if err := e.Launch(j); err != nil {
				return nil, err
			}
			if err := e.SetJobWays(j.ID, units.WaysOf(w)); err != nil {
				return nil, err
			}
			e.Run(0)
			times[w-1] = j.RunTime()
		}
		full := times[len(times)-1]
		row := Fig6Row{Program: name, Norm: make([]float64, len(times))}
		for i, t := range times {
			row.Norm[i] = full / t
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Fig6Table renders selected way counts of Figure 6.
func Fig6Table(rows []Fig6Row) [][]string {
	out := [][]string{{"program", "1w", "2w", "4w", "8w", "12w", "16w", "20w"}}
	for _, r := range rows {
		pick := func(w int) string { return f3(r.Norm[w-1]) }
		out = append(out, []string{r.Program,
			pick(1), pick(2), pick(4), pick(8), pick(12), pick(16), pick(20)})
	}
	return out
}

// Fig7Row is one program's compute/communication breakdown at each
// placement, normalized to the 1-node total run time (Figure 7).
type Fig7Row struct {
	Program string
	Compute [4]float64
	Comm    [4]float64
}

// Fig7CommBreakdown reproduces Figure 7 from the engine's mpiP-style
// compute-fraction accounting.
func Fig7CommBreakdown(env *Env) ([]Fig7Row, error) {
	var rows []Fig7Row
	for _, name := range []string{"MG", "CG", "EP", "BFS"} {
		prog := env.Prog(name)
		base, _, _, err := exec.RunSoloStats(env.Spec, prog, 16, 1)
		if err != nil {
			return nil, err
		}
		row := Fig7Row{Program: name}
		for i, n := range scaleNodes {
			j, c, _, err := exec.RunSoloStats(env.Spec, prog, 16, n)
			if err != nil {
				return nil, err
			}
			total := j.RunTime() / base.RunTime()
			commFrac := 0.0
			if c.Elapsed > 0 {
				commFrac = c.CommSeconds.Float64() / c.Elapsed.Float64()
			}
			row.Comm[i] = total * commFrac
			row.Compute[i] = total * (1 - commFrac)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Fig7Table renders Figure 7 rows as compute+comm pairs.
func Fig7Table(rows []Fig7Row) [][]string {
	out := [][]string{{"program", "scale", "compute", "comm", "total"}}
	for _, r := range rows {
		for i, label := range ScaleLabels {
			out = append(out, []string{r.Program, label,
				f3(r.Compute[i]), f3(r.Comm[i]), f3(r.Compute[i] + r.Comm[i])})
		}
	}
	return out
}

// Fig1Result is the motivating-example outcome (Figure 1): the same
// three-program mix under CE on three nodes versus SNS on two.
type Fig1Result struct {
	// Times per program label, seconds (MG is the span of its five
	// back-to-back repetitions).
	CETimes, SNSTimes map[string]float64
	// Makespans and node-seconds.
	CEMakespan, SNSMakespan    float64
	CENodeSecs, SNSNodeSecs    float64
	NodeSecsReductionPct       float64
	MGSpeedupPct, TSSpeedupPct float64
	HCSlowdownPct              float64
}

// Fig1Motivating reproduces the Figure 1 layout: MG (five back-to-back
// 16-core runs), HC (16 replicated instances), and TS (16 cores), under
// CE on a 3-node cluster and under SNS on a 2-node cluster.
func Fig1Motivating(env *Env) (*Fig1Result, error) {
	run := func(policy sched.Policy, nodes int) (map[string]float64, float64, error) {
		spec := env.Spec
		spec.Nodes = nodes
		s, err := sched.New(spec, env.Cat, env.DB, sched.DefaultConfig(policy))
		if err != nil {
			return nil, 0, err
		}
		// MG repeats five times back to back: resubmit on completion.
		mgRuns := 1
		mgStart, mgEnd := -1.0, 0.0
		s.Engine().OnFinish(func(j *exec.Job) {
			if j.Prog.Name != "MG" {
				return
			}
			mgEnd = j.Finish
			if mgRuns < 5 {
				mgRuns++
				if err := s.Submit(sched.JobSpec{
					Program: "MG", Procs: 16, Submit: s.Engine().Now(),
				}); err != nil {
					panic(err)
				}
			}
		})
		for _, js := range []sched.JobSpec{
			{Program: "MG", Procs: 16},
			{Program: "TS", Procs: 16},
			{Program: "HC", Procs: 16},
		} {
			if err := s.Submit(js); err != nil {
				return nil, 0, err
			}
		}
		jobs, err := s.Run()
		if err != nil {
			return nil, 0, err
		}
		times := map[string]float64{}
		makespan := 0.0
		for _, j := range jobs {
			if j.Prog.Name == "MG" {
				if mgStart < 0 || j.Start < mgStart {
					mgStart = j.Start
				}
			} else {
				times[j.Prog.Name] = j.Finish - j.Submit
			}
			if j.Finish > makespan {
				makespan = j.Finish
			}
		}
		times["MG"] = mgEnd - mgStart
		return times, makespan, nil
	}

	ceTimes, ceSpan, err := run(sched.CE, 3)
	if err != nil {
		return nil, fmt.Errorf("fig1 CE: %w", err)
	}
	snsTimes, snsSpan, err := run(sched.SNS, 2)
	if err != nil {
		return nil, fmt.Errorf("fig1 SNS: %w", err)
	}
	res := &Fig1Result{
		CETimes: ceTimes, SNSTimes: snsTimes,
		CEMakespan: ceSpan, SNSMakespan: snsSpan,
		CENodeSecs:  3 * ceSpan,
		SNSNodeSecs: 2 * snsSpan,
	}
	res.NodeSecsReductionPct = 100 * (1 - res.SNSNodeSecs/res.CENodeSecs)
	res.MGSpeedupPct = 100 * (ceTimes["MG"]/snsTimes["MG"] - 1)
	res.TSSpeedupPct = 100 * (ceTimes["TS"]/snsTimes["TS"] - 1)
	res.HCSlowdownPct = 100 * (snsTimes["HC"]/ceTimes["HC"] - 1)
	return res, nil
}

// Fig1Table renders the motivating example.
func Fig1Table(r *Fig1Result) [][]string {
	return [][]string{
		{"metric", "CE (3 nodes)", "SNS (2 nodes)"},
		{"MG time (s)", f2(r.CETimes["MG"]), f2(r.SNSTimes["MG"])},
		{"TS time (s)", f2(r.CETimes["TS"]), f2(r.SNSTimes["TS"])},
		{"HC time (s)", f2(r.CETimes["HC"]), f2(r.SNSTimes["HC"])},
		{"makespan (s)", f2(r.CEMakespan), f2(r.SNSMakespan)},
		{"node-seconds", f1(r.CENodeSecs), f1(r.SNSNodeSecs)},
		{"node-secs reduction %", "", f1(r.NodeSecsReductionPct)},
		{"MG speedup %", "", f1(r.MGSpeedupPct)},
		{"TS speedup %", "", f1(r.TSSpeedupPct)},
		{"HC slowdown %", "", f1(r.HCSlowdownPct)},
	}
}
