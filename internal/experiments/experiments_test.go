package experiments

import (
	"testing"

	"spreadnshare/internal/sched"
)

func env(t *testing.T) *Env {
	t.Helper()
	e, err := SharedEnv()
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestFig1Shape(t *testing.T) {
	r, err := Fig1Motivating(env(t))
	if err != nil {
		t.Fatal(err)
	}
	// The headline claims of Figure 1, as shapes: fewer node-seconds,
	// MG and TS faster, HC only slightly slower, makespan close.
	if r.NodeSecsReductionPct < 15 {
		t.Errorf("node-seconds reduction %.1f%%, want substantial (paper: 34.6%%)", r.NodeSecsReductionPct)
	}
	if r.MGSpeedupPct <= 0 {
		t.Errorf("MG speedup %.1f%%, want positive (paper: 9.0%%)", r.MGSpeedupPct)
	}
	if r.TSSpeedupPct <= 0 {
		t.Errorf("TS speedup %.1f%%, want positive (paper: 7.2%%)", r.TSSpeedupPct)
	}
	if r.HCSlowdownPct > 10 {
		t.Errorf("HC slowdown %.1f%%, want mild (paper: 3.8%%)", r.HCSlowdownPct)
	}
	if r.SNSMakespan > r.CEMakespan*1.10 {
		t.Errorf("SNS makespan %.1f more than 10%% over CE %.1f (paper: +2.6%%)",
			r.SNSMakespan, r.CEMakespan)
	}
	if len(Fig1Table(r)) != 10 {
		t.Error("fig1 table shape wrong")
	}
}

func TestFig2Shape(t *testing.T) {
	rows, err := Fig2Scaling(env(t))
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Fig2Row{}
	for _, r := range rows {
		byName[r.Program] = r
		if r.Speedups[0] != 1 {
			t.Errorf("%s 1N16C speedup %.3f, want 1 (self-normalized)", r.Program, r.Speedups[0])
		}
	}
	if byName["MG"].Speedups[1] < 1.2 {
		t.Errorf("MG 2N8C speedup %.3f, want clearly above 1", byName["MG"].Speedups[1])
	}
	if byName["BFS"].Speedups[1] >= 1 {
		t.Errorf("BFS 2N8C speedup %.3f, want below 1", byName["BFS"].Speedups[1])
	}
	for i := 1; i < 4; i++ {
		if s := byName["EP"].Speedups[i]; s < 0.9 || s > 1.1 {
			t.Errorf("EP speedup %.3f at scale %d, want near 1", s, i)
		}
	}
}

func TestFig3Shape(t *testing.T) {
	rows := Fig3Stream(env(t))
	if len(rows) != 28 {
		t.Fatalf("%d rows, want 28", len(rows))
	}
	if rows[0].OverallGB != 18.80 {
		t.Errorf("1-core bandwidth %.2f, want 18.80", rows[0].OverallGB)
	}
	if rows[27].OverallGB != 118.26 {
		t.Errorf("28-core bandwidth %.2f, want 118.26", rows[27].OverallGB)
	}
	if rows[27].PerCoreGB >= rows[0].PerCoreGB*0.35 {
		t.Errorf("per-core bandwidth at 28 cores %.2f, want far below single-core %.2f",
			rows[27].PerCoreGB, rows[0].PerCoreGB)
	}
}

func TestFig4Shape(t *testing.T) {
	rows, err := Fig4Bandwidth(env(t))
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Fig4Row{}
	for _, r := range rows {
		byName[r.Program] = r
	}
	// Paper's Figure 4 anchors: MG ~112 GB/s, CG ~42.9, EP ~0.09.
	if mg := byName["MG"].PerNodeGB[0]; mg < 100 || mg > 119 {
		t.Errorf("MG 1-node bandwidth %.1f, want ~112", mg)
	}
	if cg := byName["CG"].PerNodeGB[0]; cg < 30 || cg > 55 {
		t.Errorf("CG 1-node bandwidth %.1f, want ~42.9", cg)
	}
	if ep := byName["EP"].PerNodeGB[0]; ep > 1 {
		t.Errorf("EP 1-node bandwidth %.2f, want ~0.09", ep)
	}
	// MG spread over 2 nodes: per-node drops but program total rises
	// (paper: 67.6 per node, 135.2 total vs 112).
	mg := byName["MG"]
	if mg.PerNodeGB[1] >= mg.PerNodeGB[0] {
		t.Error("MG per-node bandwidth did not drop when spread over 2 nodes")
	}
	if 2*mg.PerNodeGB[1] <= mg.PerNodeGB[0] {
		t.Error("MG total bandwidth did not rise when spread over 2 nodes")
	}
}

func TestFig5Shape(t *testing.T) {
	rows, err := Fig5MissRate(env(t))
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Fig5Row{}
	for _, r := range rows {
		byName[r.Program] = r
	}
	// CG's miss rate drops with scale (more cache per process); BFS's
	// rises (communication-related accesses); EP's is tiny throughout.
	if cg := byName["CG"]; cg.MissPct[3] >= cg.MissPct[0] {
		t.Errorf("CG miss rate did not drop when scaled out: %v", cg.MissPct)
	}
	if bfs := byName["BFS"]; bfs.MissPct[1] <= bfs.MissPct[0] {
		t.Errorf("BFS miss rate did not rise when scaled out: %v", bfs.MissPct)
	}
	if ep := byName["EP"]; ep.MissPct[0] > 5 {
		t.Errorf("EP miss rate %.1f, want tiny", ep.MissPct[0])
	}
}

func TestFig6Shape(t *testing.T) {
	rows, err := Fig6WaySweep(env(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if len(r.Norm) != 20 {
			t.Fatalf("%s has %d way points, want 20", r.Program, len(r.Norm))
		}
		if r.Norm[19] < 0.999 || r.Norm[19] > 1.001 {
			t.Errorf("%s full-way point %.3f, want 1", r.Program, r.Norm[19])
		}
		for w := 1; w < 20; w++ {
			if r.Norm[w] < r.Norm[w-1]-1e-9 {
				t.Errorf("%s performance decreasing with more ways at %d", r.Program, w+1)
			}
		}
	}
	byName := map[string]Fig6Row{}
	for _, r := range rows {
		byName[r.Program] = r
	}
	// MG reaches 90% with very few ways; CG needs ~10; EP insensitive;
	// BFS needs nearly all (paper's saturation points 3/10/-/18).
	least := func(name string) int {
		r := byName[name]
		for w := 1; w <= 20; w++ {
			if r.Norm[w-1] >= 0.9 {
				return w
			}
		}
		return 20
	}
	if l := least("MG"); l > 4 {
		t.Errorf("MG 90%% saturation at %d ways, want <= 4", l)
	}
	if l := least("CG"); l < 6 || l > 14 {
		t.Errorf("CG 90%% saturation at %d ways, want ~10", l)
	}
	if l := least("EP"); l > 2 {
		t.Errorf("EP 90%% saturation at %d ways, want insensitive", l)
	}
	if l := least("BFS"); l < 14 {
		t.Errorf("BFS 90%% saturation at %d ways, want >= 14", l)
	}
}

func TestFig7Shape(t *testing.T) {
	rows, err := Fig7CommBreakdown(env(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Comm[0] != 0 {
			t.Errorf("%s has communication on one node", r.Program)
		}
		if r.Program == "BFS" || r.Program == "CG" {
			// BFS is comm-dominated by design; our CG model uses
			// communication growth as the mechanism behind its
			// 2x performance peak, so its comm share at 8x
			// exceeds the paper's plotted fraction.
			continue
		}
		// NPB programs: communication under 10% of total run time.
		for i := 1; i < 4; i++ {
			if frac := r.Comm[i] / (r.Comm[i] + r.Compute[i]); frac > 0.12 {
				t.Errorf("%s comm fraction %.2f at scale %d, want < 0.12", r.Program, frac, i)
			}
		}
	}
	// CG's communication share shrinks... no: it grows with footprint,
	// but at its ideal 2x scale it stays modest.
	for _, r := range rows {
		if r.Program == "CG" {
			if frac := r.Comm[1] / (r.Comm[1] + r.Compute[1]); frac > 0.05 {
				t.Errorf("CG comm fraction %.2f at 2x, want small", frac)
			}
		}
	}
}

func TestFig12Shape(t *testing.T) {
	rows, err := Fig12CacheSensitivity(env(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 12 {
		t.Fatalf("%d rows, want 12", len(rows))
	}
	byName := map[string]Fig12Row{}
	for _, r := range rows {
		byName[r.Program] = r
	}
	// Cache-insensitive programs happy with the 2-way minimum,
	// cache-hungry ones demanding most of the LLC (paper Figure 12).
	for _, name := range []string{"EP", "HC"} {
		if byName[name].LeastWays > 3 {
			t.Errorf("%s least ways %d, want <= 3", name, byName[name].LeastWays)
		}
	}
	for _, name := range []string{"NW", "BFS"} {
		if byName[name].LeastWays < 14 {
			t.Errorf("%s least ways %d, want >= 14", name, byName[name].LeastWays)
		}
	}
	// Bandwidth-bound programs drain the node near its peak.
	for _, name := range []string{"MG", "LU", "BW"} {
		if byName[name].BandwidthGB < 90 {
			t.Errorf("%s bandwidth %.1f, want near node peak", name, byName[name].BandwidthGB)
		}
		if byName[name].Class != "scaling" {
			t.Errorf("%s class %s, want scaling", name, byName[name].Class)
		}
	}
	if byName["BFS"].Class != "compact" {
		t.Errorf("BFS class %s, want compact", byName["BFS"].Class)
	}
}

func TestFig13Shape(t *testing.T) {
	rows, err := Fig13SpeedupScaling(env(t))
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Fig13Row{}
	for _, r := range rows {
		byName[r.Program] = r
	}
	// Five scaling programs with visible speedup (paper: MG, CG, LU,
	// TS, BW).
	for _, name := range []string{"MG", "LU", "BW", "TS"} {
		best := byName[name].X2
		if byName[name].X4 > best {
			best = byName[name].X4
		}
		if byName[name].X8 > best {
			best = byName[name].X8
		}
		if best < 1.15 {
			t.Errorf("%s best spread speedup %.3f, want > 1.15", name, best)
		}
	}
	cg := byName["CG"]
	if cg.X2 < 1.05 {
		t.Errorf("CG 2x speedup %.3f, want > 1.05 (paper: 1.13)", cg.X2)
	}
	if !(cg.X2 > cg.X4 && cg.X4 > cg.X8) {
		t.Errorf("CG not peaked at 2x: %.3f %.3f %.3f", cg.X2, cg.X4, cg.X8)
	}
	if bfs := byName["BFS"]; bfs.X2 >= 1 || bfs.X8 >= bfs.X2 {
		t.Errorf("BFS not compact: %.3f %.3f %.3f", bfs.X2, bfs.X4, bfs.X8)
	}
}

func TestSequenceExperimentsShape(t *testing.T) {
	// A reduced version of the Figure 14-16 study: 8 sequences.
	outs, err := RunSequences(env(t), 8, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 8 {
		t.Fatalf("%d outcomes, want 8", len(outs))
	}
	rows14 := Fig14Throughput(outs)
	cs, sns := Fig14Summary(rows14)
	if sns <= 1.0 {
		t.Errorf("SNS average throughput gain %.3f, want above CE (paper: +19.8%%)", sns)
	}
	if cs <= 0.95 {
		t.Errorf("CS average throughput %.3f, want at least near CE (paper: +13.7%%)", cs)
	}
	if sns <= cs {
		t.Errorf("SNS average %.3f not above CS %.3f", sns, cs)
	}
	for i := 1; i < len(rows14); i++ {
		if rows14[i].ScalingRatio < rows14[i-1].ScalingRatio {
			t.Fatal("fig14 rows not sorted by scaling ratio")
		}
	}
	rows15 := Fig15Relative(outs)
	wins := 0
	for _, r := range rows15 {
		if r.SNSOverCE > 1 {
			wins++
		}
	}
	if wins < len(rows15)/2 {
		t.Errorf("SNS beats CE in only %d/%d sequences", wins, len(rows15))
	}
	rows16 := Fig16RunTime(outs)
	for _, r := range rows16 {
		if r.SNSAvg > r.CSAvg+0.10 {
			t.Errorf("SNS avg normalized run time %.3f far above CS %.3f", r.SNSAvg, r.CSAvg)
		}
		if r.SNSAvg > 1.30 {
			t.Errorf("SNS avg normalized run time %.3f, want bounded (paper: <= 1.172)", r.SNSAvg)
		}
	}
	// CS's worst-case slowdown exceeds SNS's somewhere (resource-blind
	// co-location; paper sees up to 3.5x under CS).
	worstCS, worstSNS := 0.0, 0.0
	for _, r := range rows16 {
		if r.CSMax > worstCS {
			worstCS = r.CSMax
		}
		if r.SNSMax > worstSNS {
			worstSNS = r.SNSMax
		}
	}
	if worstCS <= worstSNS {
		t.Errorf("CS worst slowdown %.2f not above SNS %.2f", worstCS, worstSNS)
	}
}

func TestFig17Shape(t *testing.T) {
	r, err := Fig17LoadBalance(env(t), 42)
	if err != nil {
		t.Fatal(err)
	}
	if r.Variance[sched.SNS] >= r.Variance[sched.CE] {
		t.Errorf("SNS bandwidth variance %.3f not below CE %.3f (paper: 0.25 vs 0.40)",
			r.Variance[sched.SNS], r.Variance[sched.CE])
	}
	for _, p := range []sched.Policy{sched.CE, sched.SNS} {
		if len(r.Samples[p]) == 0 {
			t.Fatalf("%v recorded no samples", p)
		}
		total := 0
		for _, c := range r.Histogram[p] {
			total += c
		}
		if total != len(r.Samples[p]) {
			t.Errorf("%v histogram total %d != %d samples", p, total, len(r.Samples[p]))
		}
		if len(r.Matrix[p]) != 8 {
			t.Errorf("%v matrix has %d node rows, want 8", p, len(r.Matrix[p]))
		}
	}
}

func TestFig19Shape(t *testing.T) {
	rows, err := Fig19ScalingRatio(env(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 11 {
		t.Fatalf("%d rows, want 11", len(rows))
	}
	if rows[0].TurnNorm < 0.97 || rows[0].TurnNorm > 1.03 {
		t.Errorf("ratio-0 turnaround %.3f, want converged with CE", rows[0].TurnNorm)
	}
	// Run time decreases monotonically with the scaling ratio.
	for i := 1; i < len(rows); i++ {
		if rows[i].RunNorm > rows[i-1].RunNorm+1e-9 {
			t.Errorf("run time not decreasing at ratio %.1f: %.3f > %.3f",
				rows[i].TargetRatio, rows[i].RunNorm, rows[i-1].RunNorm)
		}
	}
	// Mid-range ratios: turnaround gain over 10% (paper: 35%-85%).
	for _, r := range rows {
		if r.TargetRatio >= 0.4 && r.TargetRatio <= 0.8 && r.TurnNorm > 0.95 {
			t.Errorf("turnaround %.3f at ratio %.1f, want clear gain", r.TurnNorm, r.TargetRatio)
		}
	}
	// Wait time grows again at very high ratios (fragmentation).
	if !(rows[10].WaitNorm > rows[6].WaitNorm) {
		t.Errorf("wait time did not rise at extreme ratio: %.3f vs %.3f",
			rows[10].WaitNorm, rows[6].WaitNorm)
	}
}

func TestFig20ShapeReduced(t *testing.T) {
	cfg := Fig20Config{
		Seed: 7, Jobs: 600, Span: 200, MaxNodes: 512,
		Sizes:  []int{1024, 4096},
		Ratios: []float64{0.9, 0.5},
	}
	rows, err := Fig20TraceSim(env(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows, want 4", len(rows))
	}
	find := func(size int, ratio float64) Fig20Row {
		for _, r := range rows {
			if r.ClusterNodes == size && r.ScalingRatio == ratio {
				return r
			}
		}
		t.Fatalf("row %d@%.1f missing", size, ratio)
		return Fig20Row{}
	}
	// On the uncongested cluster, SNS gains more at ratio 0.9 than 0.5
	// (the paper's central large-cluster finding).
	hi, lo := find(4096, 0.9), find(4096, 0.5)
	if hi.SNSTurnImprovePct <= lo.SNSTurnImprovePct {
		t.Errorf("gain at ratio 0.9 (%.1f%%) not above ratio 0.5 (%.1f%%)",
			hi.SNSTurnImprovePct, lo.SNSTurnImprovePct)
	}
	for _, r := range rows {
		if r.SNSTurnImprovePct <= 0 {
			t.Errorf("SNS gain %.1f%% at %d@%.1f, want positive",
				r.SNSTurnImprovePct, r.ClusterNodes, r.ScalingRatio)
		}
		if r.SNSRun >= r.CERun {
			t.Errorf("SNS run share %.3f not below CE %.3f", r.SNSRun, r.CERun)
		}
		// Unmanaged sharing slows jobs down: both baselines inflate run
		// time over CE, and SNS beats them (the paper's comparison with
		// the two-slot related work).
		if r.CSRun < r.CERun {
			t.Errorf("CS run share %.3f below CE %.3f", r.CSRun, r.CERun)
		}
		if r.TwoSlotRun < r.CERun {
			t.Errorf("TwoSlot run share %.3f below CE %.3f", r.TwoSlotRun, r.CERun)
		}
		if r.SNSTurnImprovePct <= r.CSTurnImprovePct ||
			r.SNSTurnImprovePct <= r.TwoSlotTurnImprovePct {
			t.Errorf("SNS gain %.1f%% not above CS %.1f%% / TwoSlot %.1f%% at %d@%.1f",
				r.SNSTurnImprovePct, r.CSTurnImprovePct, r.TwoSlotTurnImprovePct,
				r.ClusterNodes, r.ScalingRatio)
		}
	}
}

func TestFormatTable(t *testing.T) {
	s := FormatTable([][]string{{"a", "bb"}, {"ccc", "d"}})
	want := "a    bb\nccc  d \n"
	if s != want {
		t.Errorf("FormatTable = %q, want %q", s, want)
	}
	if FormatTable(nil) != "" {
		t.Error("FormatTable(nil) not empty")
	}
}

func TestTablesRender(t *testing.T) {
	e := env(t)
	rows3 := Fig3Stream(e)
	if got := Fig3Table(rows3); len(got) != 29 {
		t.Errorf("fig3 table rows %d, want 29", len(got))
	}
	outs, err := RunSequences(e, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	if got := Fig14Table(Fig14Throughput(outs)); len(got) != 4 {
		t.Errorf("fig14 table rows %d, want 4", len(got))
	}
	if got := Fig15Table(Fig15Relative(outs)); len(got) != 4 {
		t.Errorf("fig15 table rows %d, want 4", len(got))
	}
	if got := Fig16Table(Fig16RunTime(outs)); len(got) != 3 {
		t.Errorf("fig16 table rows %d, want 3", len(got))
	}
}

func TestFig16Violations(t *testing.T) {
	outs, err := RunSequences(env(t), 6, 20)
	if err != nil {
		t.Fatal(err)
	}
	v := Fig16Violations(outs)
	if v.Executions != 6*20 {
		t.Fatalf("counted %d executions, want 120", v.Executions)
	}
	// The paper sees 19%% of executions violate; a small prototype
	// share (non-zero but minority) is the expected shape.
	frac := float64(v.Violations) / float64(v.Executions)
	if frac > 0.5 {
		t.Errorf("violation fraction %.2f implausibly high", frac)
	}
	if v.Violations > 0 && v.MaxExcessPct <= 0 {
		t.Error("violations recorded without excess stats")
	}
}

func TestAllFigureTablesRender(t *testing.T) {
	e := env(t)
	if rows, err := Fig2Scaling(e); err != nil || len(Fig2Table(rows)) != 5 {
		t.Errorf("fig2 table: %v", err)
	}
	if rows, err := Fig4Bandwidth(e); err != nil || len(Fig4Table(rows)) != 5 {
		t.Errorf("fig4 table: %v", err)
	}
	if rows, err := Fig5MissRate(e); err != nil || len(Fig5Table(rows)) != 5 {
		t.Errorf("fig5 table: %v", err)
	}
	if rows, err := Fig6WaySweep(e); err != nil || len(Fig6Table(rows)) != 5 {
		t.Errorf("fig6 table: %v", err)
	}
	if rows, err := Fig7CommBreakdown(e); err != nil || len(Fig7Table(rows)) != 17 {
		t.Errorf("fig7 table: %v", err)
	}
	if rows, err := Fig12CacheSensitivity(e); err != nil || len(Fig12Table(rows)) != 13 {
		t.Errorf("fig12 table: %v", err)
	}
	if rows, err := Fig13SpeedupScaling(e); err != nil || len(Fig13Table(rows)) != 11 {
		t.Errorf("fig13 table: %v", err)
	}
	if r, err := Fig17LoadBalance(e, 5); err != nil || len(Fig17Table(r)) < 4 {
		t.Errorf("fig17 table: %v", err)
	}
	if rows, err := Fig19ScalingRatio(e); err != nil || len(Fig19Table(rows)) != 12 {
		t.Errorf("fig19 table: %v", err)
	}
	cfg := Fig20Config{Seed: 2, Jobs: 150, Span: 100, MaxNodes: 64,
		Sizes: []int{256}, Ratios: []float64{0.9}}
	if rows, err := Fig20TraceSim(e, cfg); err != nil || len(Fig20Table(rows)) != 2 {
		t.Errorf("fig20 table: %v", err)
	}
}
