package experiments

import (
	"fmt"
	"hash/fnv"
	"math"
	"testing"

	"spreadnshare/internal/sched"
)

// goldenSeqDigest is the FNV-1a digest of a seeded 8-sequence/12-job
// study under all three policies, computed on the engine BEFORE the
// allocation-free hot-path refactor and verified unchanged after it.
// The refactor must be bit-identical: event ordering, contention
// shares, rates, finish times. If this test fails, the engine's numeric
// behavior changed — that is a correctness regression, not a tolerable
// drift; figures are seeded and must reproduce exactly across PRs.
const goldenSeqDigest = "a15fbdca19663889"

// goldenFig17Digest pins the monitored load-balance run (Figures 17/18,
// seed 42). Before the refactor this pipeline was NOT reproducible:
// Engine.NodeBandwidth summed job grants over a map range, so the
// monitor's float readings varied in their low bits with Go's
// randomized map iteration order. Residents now live in ID-sorted
// slices, the summation order is canonical, and this digest is stable —
// TestGoldenLoadBalanceDeterministic guards exactly that.
const goldenFig17Digest = "1ad87879f0be9331"

// digestFloat folds the exact bit pattern of a float into the hash, so
// the comparison is bit-identical rather than within-epsilon.
func digestFloat(h interface{ Write([]byte) (int, error) }, x float64) {
	bits := math.Float64bits(x)
	var buf [8]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(bits >> (8 * i))
	}
	h.Write(buf[:])
}

func sequenceDigest(t *testing.T, env *Env) string {
	t.Helper()
	outs, err := RunSequences(env, 8, 12)
	if err != nil {
		t.Fatal(err)
	}
	h := fnv.New64a()
	for _, o := range outs {
		digestFloat(h, float64(o.Seed))
		digestFloat(h, o.ScalingRatio)
		for _, p := range []sched.Policy{sched.CE, sched.CS, sched.SNS} {
			digestFloat(h, o.Throughput[p])
			for _, v := range o.NormRun[p] {
				digestFloat(h, v)
			}
		}
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

func fig17Digest(t *testing.T, env *Env) string {
	t.Helper()
	r, err := Fig17LoadBalance(env, 42)
	if err != nil {
		t.Fatal(err)
	}
	h := fnv.New64a()
	for _, p := range []sched.Policy{sched.CE, sched.SNS} {
		for _, v := range r.Samples[p] {
			digestFloat(h, v)
		}
		digestFloat(h, r.Variance[p])
		for _, c := range r.Histogram[p] {
			digestFloat(h, float64(c))
		}
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// TestGoldenSequenceDigest proves the seeded sequence study reproduces
// the pre-refactor engine bit for bit.
func TestGoldenSequenceDigest(t *testing.T) {
	env, err := SharedEnv()
	if err != nil {
		t.Fatal(err)
	}
	if got := sequenceDigest(t, env); got != goldenSeqDigest {
		t.Fatalf("sequence-study digest = %s, want %s\n"+
			"the seeded figure pipeline no longer reproduces pre-refactor results bit-for-bit", got, goldenSeqDigest)
	}
}

// TestGoldenLoadBalanceDeterministic proves the monitored Fig17/18 run
// is reproducible — twice in-process and against the pinned digest.
func TestGoldenLoadBalanceDeterministic(t *testing.T) {
	env, err := SharedEnv()
	if err != nil {
		t.Fatal(err)
	}
	first := fig17Digest(t, env)
	second := fig17Digest(t, env)
	if first != second {
		t.Fatalf("Fig17 digests differ across runs: %s vs %s (monitor sampling is nondeterministic)", first, second)
	}
	if first != goldenFig17Digest {
		t.Fatalf("Fig17 digest = %s, want %s", first, goldenFig17Digest)
	}
}
