package experiments

import (
	"fmt"

	"spreadnshare/internal/app"
	"spreadnshare/internal/exec"
)

// Fig12Row is one program's cache sensitivity (Figure 12): the least LLC
// ways (of 20) needed for 90% of full-allocation performance, and the
// average memory bandwidth measured at that allocation, with 16 cores on
// one node.
type Fig12Row struct {
	Program     string
	LeastWays   int
	BandwidthGB float64
	Class       string
	Constraint  string
}

// Fig12CacheSensitivity reproduces Figure 12 from the profile database's
// measured curves.
func Fig12CacheSensitivity(env *Env) ([]Fig12Row, error) {
	var rows []Fig12Row
	for _, name := range app.ProgramNames {
		p, ok := env.DB.Get(name, 16)
		if !ok {
			return nil, fmt.Errorf("fig12: %s unprofiled", name)
		}
		base, ok := p.AtK(1)
		if !ok {
			return nil, fmt.Errorf("fig12: %s has no compact profile", name)
		}
		full := base.FullWays()
		least := full
		for w := env.Spec.Node.MinWaysPerJob.Int(); w <= full; w++ {
			if base.IPCAt(w) >= 0.9*base.IPCAt(full) {
				least = w
				break
			}
		}
		rows = append(rows, Fig12Row{
			Program:     name,
			LeastWays:   least,
			BandwidthGB: base.BWAt(least),
			Class:       p.Class.String(),
			Constraint:  p.ConstrainedBy,
		})
	}
	return rows, nil
}

// Fig12Table renders Figure 12 rows.
func Fig12Table(rows []Fig12Row) [][]string {
	out := [][]string{{"program", "least ways (90%)", "bandwidth GB/s", "class", "constraint"}}
	for _, r := range rows {
		out = append(out, []string{r.Program, fmt.Sprint(r.LeastWays),
			f1(r.BandwidthGB), r.Class, r.Constraint})
	}
	return out
}

// Fig13Row is one program's exclusive scaling speedup at 2x, 4x and 8x
// versus its compact run (Figure 13).
type Fig13Row struct {
	Program string
	X2      float64
	X4      float64
	X8      float64
	IdealK  int
}

// Fig13Programs are the ten multi-node-capable test programs of Figure 13
// (the TensorFlow examples cannot spread).
var Fig13Programs = []string{"WC", "TS", "NW", "MG", "CG", "EP", "LU", "BFS", "HC", "BW"}

// Fig13SpeedupScaling reproduces Figure 13 with exclusive 16-process runs.
func Fig13SpeedupScaling(env *Env) ([]Fig13Row, error) {
	var rows []Fig13Row
	for _, name := range Fig13Programs {
		prog := env.Prog(name)
		base, err := exec.RunSolo(env.Spec, prog, 16, 1)
		if err != nil {
			return nil, err
		}
		speedup := func(n int) (float64, error) {
			j, err := exec.RunSolo(env.Spec, prog, 16, n)
			if err != nil {
				return 0, err
			}
			return base.RunTime() / j.RunTime(), nil
		}
		row := Fig13Row{Program: name}
		if row.X2, err = speedup(2); err != nil {
			return nil, err
		}
		if row.X4, err = speedup(4); err != nil {
			return nil, err
		}
		if row.X8, err = speedup(8); err != nil {
			return nil, err
		}
		if p, ok := env.DB.Get(name, 16); ok {
			row.IdealK = p.IdealK()
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Fig13Table renders Figure 13 rows.
func Fig13Table(rows []Fig13Row) [][]string {
	out := [][]string{{"program", "2x,E", "4x,E", "8x,E", "ideal k"}}
	for _, r := range rows {
		out = append(out, []string{r.Program, f3(r.X2), f3(r.X4), f3(r.X8), fmt.Sprint(r.IdealK)})
	}
	return out
}
