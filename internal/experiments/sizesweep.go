package experiments

import (
	"math/rand"

	"spreadnshare/internal/par"
	"spreadnshare/internal/sched"
	"spreadnshare/internal/stats"
	"spreadnshare/internal/workload"
)

// SizeSweepRow is one cluster size of the fragmentation study.
type SizeSweepRow struct {
	Nodes    int
	Jobs     int
	WaitNorm float64 // SNS mean wait / CE mean wait
	TurnNorm float64 // SNS mean turnaround / CE mean turnaround
}

// ClusterSizeSweep tests the paper's Section 6.3 conjecture head-on: the
// wait-time degradation SNS shows at high scaling ratios "is highlighted
// by our small testbed cluster size; larger clusters ... would provide
// large enough playgrounds". The paper could only check this with
// trace-driven simulation; the full execution engine here replays the same
// high-ratio BW/HC mix on growing clusters, holding the per-node job
// pressure constant (jobs scale with nodes).
// Each cluster size is an independent pair of scheduler runs, so sizes
// fan out over the par worker pool; rows land in slot order, matching
// the serial output byte for byte.
func ClusterSizeSweep(env *Env, sizes []int, ratio float64) ([]SizeSweepRow, error) {
	rows := make([]SizeSweepRow, len(sizes))
	if err := par.ForEach(len(sizes), func(si int) error {
		size := sizes[si]
		spec := env.Spec
		spec.Nodes = size
		jobs := 4 * size // constant offered pressure per node
		seq := workload.RatioMix(rand.New(rand.NewSource(int64(90+size))), ratio, jobs)

		type agg struct{ wait, turn float64 }
		byPolicy := make(map[sched.Policy]agg)
		for _, p := range []sched.Policy{sched.CE, sched.SNS} {
			s, err := sched.New(spec, env.Cat, env.DB, sched.DefaultConfig(p))
			if err != nil {
				return err
			}
			for _, js := range seq {
				if err := s.Submit(js); err != nil {
					return err
				}
			}
			done, err := s.Run()
			if err != nil {
				return err
			}
			var waits, turns []float64
			for _, j := range done {
				waits = append(waits, j.WaitTime())
				turns = append(turns, j.Turnaround())
			}
			byPolicy[p] = agg{stats.Mean(waits), stats.Mean(turns)}
		}
		row := SizeSweepRow{Nodes: size, Jobs: jobs}
		if ce := byPolicy[sched.CE]; ce.wait > 0 {
			row.WaitNorm = byPolicy[sched.SNS].wait / ce.wait
		}
		if ce := byPolicy[sched.CE]; ce.turn > 0 {
			row.TurnNorm = byPolicy[sched.SNS].turn / ce.turn
		}
		rows[si] = row
		return nil
	}); err != nil {
		return nil, err
	}
	return rows, nil
}

// SizeSweepTable renders the cluster-size sweep.
func SizeSweepTable(rows []SizeSweepRow) [][]string {
	out := [][]string{{"nodes", "jobs", "SNS wait/CE", "SNS turnaround/CE"}}
	for _, r := range rows {
		out = append(out, []string{
			f1(float64(r.Nodes)), f1(float64(r.Jobs)), f3(r.WaitNorm), f3(r.TurnNorm)})
	}
	return out
}
