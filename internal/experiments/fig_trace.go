package experiments

import (
	"fmt"

	"spreadnshare/internal/trace"
)

// TraceScalingPrograms and TraceOtherPrograms are the groups trace jobs
// are mapped onto (multi-node capable programs only; Section 6.4 samples
// each group uniformly).
var (
	TraceScalingPrograms = []string{"MG", "CG", "LU", "TS", "BW"}
	TraceOtherPrograms   = []string{"EP", "WC", "NW", "HC", "BFS"}
)

// Fig20Row is one (cluster size, scaling ratio) cell of the large-cluster
// study (Figure 20): CE and SNS average wait and run time, normalized to
// the CE average turnaround of that cell.
type Fig20Row struct {
	ClusterNodes int
	ScalingRatio float64
	CEWait       float64
	CERun        float64
	SNSWait      float64
	SNSRun       float64
	// SNSTurnImprovePct is the turnaround (throughput) improvement of
	// SNS over CE in percent.
	SNSTurnImprovePct float64
}

// Fig20Config controls the replay scale so tests can run a reduced
// version; DefaultFig20Config is the paper's setting.
type Fig20Config struct {
	Seed     int64
	Jobs     int
	Span     float64 // hours
	MaxNodes int
	Sizes    []int
	Ratios   []float64
}

// DefaultFig20Config mirrors Section 6.4: 7,044 jobs over 1900 hours,
// jobs up to 4,096 nodes, clusters of 4K-32K nodes, ratios 0.9 and 0.5.
func DefaultFig20Config() Fig20Config {
	return Fig20Config{
		Seed:     42,
		Jobs:     7044,
		Span:     1900,
		MaxNodes: 4096,
		Sizes:    []int{4096, 8192, 16384, 32768},
		Ratios:   []float64{0.9, 0.5},
	}
}

// Fig20TraceSim reproduces Figure 20 by trace-driven simulation.
func Fig20TraceSim(env *Env, cfg Fig20Config) ([]Fig20Row, error) {
	var rows []Fig20Row
	for _, ratio := range cfg.Ratios {
		jobs := trace.Synthesize(cfg.Seed, trace.GenConfig{
			Jobs: cfg.Jobs, SpanHours: cfg.Span, MaxNodes: cfg.MaxNodes,
		})
		trace.MapPrograms(cfg.Seed, jobs, TraceScalingPrograms, TraceOtherPrograms, ratio)
		for _, size := range cfg.Sizes {
			ce, err := trace.Simulate(jobs, env.DB, env.Spec.Node, trace.DefaultSimConfig(size, trace.CE))
			if err != nil {
				return nil, fmt.Errorf("fig20 CE %d@%.1f: %w", size, ratio, err)
			}
			sns, err := trace.Simulate(jobs, env.DB, env.Spec.Node, trace.DefaultSimConfig(size, trace.SNS))
			if err != nil {
				return nil, fmt.Errorf("fig20 SNS %d@%.1f: %w", size, ratio, err)
			}
			row := Fig20Row{ClusterNodes: size, ScalingRatio: ratio}
			if ce.AvgTurn > 0 {
				row.CEWait = ce.AvgWait / ce.AvgTurn
				row.CERun = ce.AvgRun / ce.AvgTurn
				row.SNSWait = sns.AvgWait / ce.AvgTurn
				row.SNSRun = sns.AvgRun / ce.AvgTurn
				row.SNSTurnImprovePct = 100 * (ce.AvgTurn/sns.AvgTurn - 1)
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// Fig20Table renders Figure 20.
func Fig20Table(rows []Fig20Row) [][]string {
	out := [][]string{{"cluster-ratio", "CE wait", "CE run", "SNS wait", "SNS run", "SNS turnaround gain %"}}
	for _, r := range rows {
		label := fmt.Sprintf("%dK-%.1f", r.ClusterNodes/1024, r.ScalingRatio)
		out = append(out, []string{label,
			f3(r.CEWait), f3(r.CERun), f3(r.SNSWait), f3(r.SNSRun), f1(r.SNSTurnImprovePct)})
	}
	return out
}
