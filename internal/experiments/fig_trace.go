package experiments

import (
	"fmt"

	"spreadnshare/internal/par"
	"spreadnshare/internal/trace"
)

// TraceScalingPrograms and TraceOtherPrograms are the groups trace jobs
// are mapped onto (multi-node capable programs only; Section 6.4 samples
// each group uniformly).
var (
	TraceScalingPrograms = []string{"MG", "CG", "LU", "TS", "BW"}
	TraceOtherPrograms   = []string{"EP", "WC", "NW", "HC", "BFS"}
)

// Fig20Row is one (cluster size, scaling ratio) cell of the large-cluster
// study (Figure 20), extended to all four placement policies: average
// wait and run time per policy, normalized to the CE average turnaround
// of that cell, plus each policy's turnaround improvement over CE.
type Fig20Row struct {
	ClusterNodes int
	ScalingRatio float64
	CEWait       float64
	CERun        float64
	CSWait       float64
	CSRun        float64
	SNSWait      float64
	SNSRun       float64
	TwoSlotWait  float64
	TwoSlotRun   float64
	// *TurnImprovePct is the turnaround (throughput) improvement of the
	// policy over CE in percent (negative = worse than CE).
	CSTurnImprovePct      float64
	SNSTurnImprovePct     float64
	TwoSlotTurnImprovePct float64
}

// Fig20Config controls the replay scale so tests can run a reduced
// version; DefaultFig20Config is the paper's setting.
type Fig20Config struct {
	Seed     int64
	Jobs     int
	Span     float64 // hours
	MaxNodes int
	Sizes    []int
	Ratios   []float64
	// Shards, when > 0, replays every cell through the sharded placement
	// kernel (trace.SimConfig.Shards). Results are bit-identical to the
	// flat kernel; only replay cost changes.
	Shards int
	// MutWorkers, when > 1, applies every cell's wide reservation spans
	// through the parallel mutation pipeline (trace.SimConfig.MutWorkers).
	// Results are bit-identical at any width; only replay cost changes.
	MutWorkers int
}

// DefaultFig20Config mirrors Section 6.4: 7,044 jobs over 1900 hours,
// jobs up to 4,096 nodes, clusters of 4K-32K nodes, ratios 0.9 and 0.5.
func DefaultFig20Config() Fig20Config {
	return Fig20Config{
		Seed:     42,
		Jobs:     7044,
		Span:     1900,
		MaxNodes: 4096,
		Sizes:    []int{4096, 8192, 16384, 32768},
		Ratios:   []float64{0.9, 0.5},
	}
}

// fig20Policies is the replay order of every Fig20 cell — also the
// policy order of the flattened parallel grid, so cell index decomposes
// as ((ratio * len(Sizes)) + size) * 4 + policy.
var fig20Policies = []trace.Policy{trace.CE, trace.CS, trace.SNS, trace.TwoSlot}

// Fig20TraceSim reproduces Figure 20 by trace-driven simulation, with the
// CS and TwoSlot baselines replayed alongside the paper's CE/SNS pair.
//
// The grid cells — (ratio, size, policy) triples — are independent
// replays on separate seeded SimStates, so they fan out over the par
// worker pool. The per-ratio traces are synthesized up front (MapPrograms
// mutates the job slice, so it must not race with replays) and shared
// read-only by all that ratio's cells: Simulate copies each Job value it
// schedules. Results land in a flat slice indexed by cell and the rows
// are assembled in grid order afterwards, so the output — and the golden
// placement digests computed from it — is byte-identical to a serial run.
func Fig20TraceSim(env *Env, cfg Fig20Config) ([]Fig20Row, error) {
	jobsByRatio := make([][]trace.Job, len(cfg.Ratios))
	for ri, ratio := range cfg.Ratios {
		jobs := trace.Synthesize(cfg.Seed, trace.GenConfig{
			Jobs: cfg.Jobs, SpanHours: cfg.Span, MaxNodes: cfg.MaxNodes,
		})
		trace.MapPrograms(cfg.Seed, jobs, TraceScalingPrograms, TraceOtherPrograms, ratio)
		jobsByRatio[ri] = jobs
	}

	cells := len(cfg.Ratios) * len(cfg.Sizes) * len(fig20Policies)
	results := make([]*trace.Result, cells)
	if err := par.ForEach(cells, func(i int) error {
		pi := i % len(fig20Policies)
		si := i / len(fig20Policies) % len(cfg.Sizes)
		ri := i / len(fig20Policies) / len(cfg.Sizes)
		p, size, ratio := fig20Policies[pi], cfg.Sizes[si], cfg.Ratios[ri]
		sc := trace.DefaultSimConfig(size, p)
		sc.Shards = cfg.Shards
		sc.MutWorkers = cfg.MutWorkers
		r, err := trace.Simulate(jobsByRatio[ri], env.DB, env.Spec.Node, sc)
		if err != nil {
			return fmt.Errorf("fig20 %s %d@%.1f: %w", p, size, ratio, err)
		}
		results[i] = r
		return nil
	}); err != nil {
		return nil, err
	}

	var rows []Fig20Row
	for ri, ratio := range cfg.Ratios {
		for si, size := range cfg.Sizes {
			cell := (ri*len(cfg.Sizes) + si) * len(fig20Policies)
			byPolicy := results[cell : cell+len(fig20Policies)]
			ce := byPolicy[0]
			row := Fig20Row{ClusterNodes: size, ScalingRatio: ratio}
			if ce.AvgTurn > 0 {
				norm := func(r *trace.Result) (wait, run, gain float64) {
					return r.AvgWait / ce.AvgTurn, r.AvgRun / ce.AvgTurn,
						100 * (ce.AvgTurn/r.AvgTurn - 1)
				}
				row.CEWait, row.CERun, _ = norm(ce)
				row.CSWait, row.CSRun, row.CSTurnImprovePct = norm(byPolicy[1])
				row.SNSWait, row.SNSRun, row.SNSTurnImprovePct = norm(byPolicy[2])
				row.TwoSlotWait, row.TwoSlotRun, row.TwoSlotTurnImprovePct = norm(byPolicy[3])
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// Fig20Table renders Figure 20.
func Fig20Table(rows []Fig20Row) [][]string {
	out := [][]string{{
		"cluster-ratio",
		"CE wait", "CE run",
		"CS wait", "CS run", "CS gain %",
		"SNS wait", "SNS run", "SNS gain %",
		"2slot wait", "2slot run", "2slot gain %",
	}}
	for _, r := range rows {
		label := fmt.Sprintf("%dK-%.1f", r.ClusterNodes/1024, r.ScalingRatio)
		out = append(out, []string{label,
			f3(r.CEWait), f3(r.CERun),
			f3(r.CSWait), f3(r.CSRun), f1(r.CSTurnImprovePct),
			f3(r.SNSWait), f3(r.SNSRun), f1(r.SNSTurnImprovePct),
			f3(r.TwoSlotWait), f3(r.TwoSlotRun), f1(r.TwoSlotTurnImprovePct)})
	}
	return out
}
