package experiments

import (
	"math"
	"testing"
)

func TestViolationsOf(t *testing.T) {
	// alpha 0.9 -> bound 1.111...
	v := ViolationsOf([]float64{1.0, 1.05, 1.2, 1.5}, 0.9)
	if v.Executions != 4 || v.Violations != 2 {
		t.Fatalf("violations = %d/%d, want 2/4", v.Violations, v.Executions)
	}
	// Excesses: 1.2/1.111-1 = 8%, 1.5/1.111-1 = 35%.
	if math.Abs(v.AvgExcessPct-21.5) > 1 {
		t.Errorf("avg excess %.1f%%, want ~21.5%%", v.AvgExcessPct)
	}
	if math.Abs(v.MaxExcessPct-35.0) > 1 {
		t.Errorf("max excess %.1f%%, want ~35%%", v.MaxExcessPct)
	}
	clean := ViolationsOf([]float64{0.9, 1.0}, 0.9)
	if clean.Violations != 0 || clean.AvgExcessPct != 0 {
		t.Errorf("clean run reported violations: %+v", clean)
	}
}

func TestAblationMechanismsShape(t *testing.T) {
	rows, err := AblationMechanisms(env(t), 6, 20)
	if err != nil {
		t.Fatal(err)
	}
	byLabel := map[string]AblationRow{}
	for _, r := range rows {
		byLabel[r.Label] = r
	}
	ce := byLabel["CE"]
	cs := byLabel["CS (share only)"]
	spread := byLabel["spread only"]
	sns := byLabel["SNS"]
	mba := byLabel["SNS+MBA"]

	// CE normalizes to itself.
	if math.Abs(ce.ThroughputVsCE-1) > 1e-9 || ce.Violations.Violations != 0 {
		t.Errorf("CE baseline row wrong: %+v", ce)
	}
	// Spread-only makes individual jobs faster but wastes nodes:
	// normalized run below 1, throughput below CE.
	if spread.GeoNormRun >= 1 {
		t.Errorf("spread-only norm run %.3f, want < 1", spread.GeoNormRun)
	}
	if spread.ThroughputVsCE >= 1 {
		t.Errorf("spread-only throughput %.3f, want < 1 (exclusive spreading wastes nodes)",
			spread.ThroughputVsCE)
	}
	if spread.Violations.Violations != 0 {
		t.Errorf("spread-only (exclusive) had %d violations", spread.Violations.Violations)
	}
	// Share-only gains throughput but butchers job protection.
	if cs.ThroughputVsCE <= 1 {
		t.Errorf("CS throughput %.3f, want > 1", cs.ThroughputVsCE)
	}
	if cs.GeoNormRun <= sns.GeoNormRun {
		t.Errorf("CS norm run %.3f not worse than SNS %.3f", cs.GeoNormRun, sns.GeoNormRun)
	}
	if cs.Violations.MaxExcessPct <= sns.Violations.MaxExcessPct {
		t.Errorf("CS worst violation %.1f%% not worse than SNS %.1f%%",
			cs.Violations.MaxExcessPct, sns.Violations.MaxExcessPct)
	}
	// Full SNS: the only configuration with both throughput above CE
	// and normalized run time at or below CE.
	if sns.ThroughputVsCE <= cs.ThroughputVsCE {
		t.Errorf("SNS throughput %.3f not above CS %.3f", sns.ThroughputVsCE, cs.ThroughputVsCE)
	}
	if sns.GeoNormRun > 1.0 {
		t.Errorf("SNS norm run %.3f, want <= 1", sns.GeoNormRun)
	}
	// MBA enforces caps; it must not materially increase violations
	// (throttled jobs shift completion order, so allow a couple of
	// jobs of schedule noise).
	if mba.Violations.Violations > sns.Violations.Violations+2 {
		t.Errorf("MBA increased violations: %d vs %d",
			mba.Violations.Violations, sns.Violations.Violations)
	}
}

func TestAblationAlphaTradeoff(t *testing.T) {
	rows, err := AblationAlpha(env(t), 4, 20, []float64{0.7, 0.9, 0.95})
	if err != nil {
		t.Fatal(err)
	}
	// Looser alpha (0.7) admits more co-location: throughput at least
	// as high as strict alpha (0.95), and more violations of the 0.9
	// bound.
	if rows[0].ThroughputVsCE < rows[2].ThroughputVsCE-1e-9 {
		t.Errorf("alpha=0.7 throughput %.3f below alpha=0.95 %.3f",
			rows[0].ThroughputVsCE, rows[2].ThroughputVsCE)
	}
	if rows[0].Violations.Violations < rows[2].Violations.Violations {
		t.Errorf("alpha=0.7 violations %d below alpha=0.95 %d",
			rows[0].Violations.Violations, rows[2].Violations.Violations)
	}
}

func TestAblationBetaRuns(t *testing.T) {
	rows, err := AblationBeta(env(t), 3, 16, []float64{0, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows, want 2", len(rows))
	}
	for _, r := range rows {
		if r.ThroughputVsCE <= 0 {
			t.Errorf("%s: non-positive throughput", r.Label)
		}
	}
}

func TestAblationGroupingRuns(t *testing.T) {
	rows, err := AblationGrouping(env(t), 3, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].Label != "grouped" || rows[1].Label != "ungrouped" {
		t.Fatalf("rows = %+v", rows)
	}
}

func TestAblationTableRenders(t *testing.T) {
	rows := []AblationRow{{Label: "x", ThroughputVsCE: 1.2, GeoNormRun: 0.9,
		Violations: ViolationStats{Executions: 10, Violations: 2, AvgExcessPct: 5, MaxExcessPct: 9}}}
	tab := AblationTable(rows)
	if len(tab) != 2 || tab[1][3] != "2/10" {
		t.Errorf("table = %v", tab)
	}
}

func TestLoadSweepShape(t *testing.T) {
	rows, err := LoadSweep(env(t), []float64{0.3, 0.7, 1.1}, 40)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows, want 3", len(rows))
	}
	// Queueing grows with offered load under CE.
	if !(rows[2].WaitCE > rows[0].WaitCE) {
		t.Errorf("CE wait did not grow with load: %.1f -> %.1f",
			rows[0].WaitCE, rows[2].WaitCE)
	}
	// At saturation, SNS's run-time reductions relieve the queue.
	if rows[2].SNSTurnNorm >= 1 {
		t.Errorf("SNS turnaround %.3f at load 1.1, want below CE", rows[2].SNSTurnNorm)
	}
	if _, err := LoadSweep(env(t), []float64{0}, 10); err == nil {
		t.Error("zero load accepted")
	}
	if len(LoadTable(rows)) != 4 {
		t.Error("table shape wrong")
	}
}

func TestQoSMixHonorsClasses(t *testing.T) {
	rows, err := QoSMix(env(t), 6, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows, want 2", len(rows))
	}
	strict, loose := rows[0], rows[1]
	// The strict class must be protected better than the loose class.
	if strict.GeoNormRun >= loose.GeoNormRun {
		t.Errorf("strict class norm run %.3f not below loose %.3f",
			strict.GeoNormRun, loose.GeoNormRun)
	}
	// Most strict executions honor their own (tight) bound.
	frac := float64(strict.Violations.Violations) / float64(strict.Violations.Executions)
	if frac > 0.5 {
		t.Errorf("strict class violated its bound in %.0f%% of executions", 100*frac)
	}
	if len(QoSMixTable(rows)) != 3 {
		t.Error("table shape wrong")
	}
}

func TestClusterSizeSweepConjecture(t *testing.T) {
	rows, err := ClusterSizeSweep(env(t), []int{4, 8, 16}, 0.85)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows, want 3", len(rows))
	}
	// The smallest cluster pays the worst wait-time penalty...
	if !(rows[0].WaitNorm > rows[1].WaitNorm && rows[0].WaitNorm > rows[2].WaitNorm) {
		t.Errorf("4-node wait penalty %.3f not the worst (%.3f, %.3f)",
			rows[0].WaitNorm, rows[1].WaitNorm, rows[2].WaitNorm)
	}
	// ...and is the only one where SNS loses on turnaround.
	if rows[0].TurnNorm <= 1 {
		t.Errorf("4-node turnaround %.3f, expected above CE (fragmentation)", rows[0].TurnNorm)
	}
	for _, r := range rows[1:] {
		if r.TurnNorm >= 1 {
			t.Errorf("%d-node turnaround %.3f, want below CE", r.Nodes, r.TurnNorm)
		}
	}
	if len(SizeSweepTable(rows)) != 4 {
		t.Error("table shape wrong")
	}
}
