package experiments

import (
	"fmt"
	"math/rand"

	"spreadnshare/internal/par"
	"spreadnshare/internal/sched"
	"spreadnshare/internal/stats"
	"spreadnshare/internal/workload"
)

// ViolationStats summarizes slowdown-threshold violations across job
// executions. The paper reports that 136 of 720 SNS executions exceeded
// the alpha=0.9 slowdown factor of 1.1, by 28.3% on average and up to
// 125.9% (Section 6.2).
type ViolationStats struct {
	Executions int
	Violations int
	// AvgExcessPct and MaxExcessPct measure how far violators exceed
	// the 1/alpha slowdown bound, in percent of the bound.
	AvgExcessPct float64
	MaxExcessPct float64
}

// ViolationsOf counts violations among normalized run times (run time
// over the CE solo baseline) against a slowdown threshold alpha.
func ViolationsOf(normRuns []float64, alpha float64) ViolationStats {
	bound := 1 / alpha
	v := ViolationStats{Executions: len(normRuns)}
	var excesses []float64
	for _, r := range normRuns {
		if r > bound {
			v.Violations++
			excesses = append(excesses, 100*(r/bound-1))
		}
	}
	if len(excesses) > 0 {
		v.AvgExcessPct = stats.Mean(excesses)
		_, v.MaxExcessPct = stats.MinMax(excesses)
	}
	return v
}

// AblationRow is one configuration's outcome in an ablation sweep.
type AblationRow struct {
	Label string
	// ThroughputVsCE is the mean throughput across sequences,
	// normalized per sequence to CE.
	ThroughputVsCE float64
	// GeoNormRun is the geometric-mean normalized job run time.
	GeoNormRun float64
	// Violations aggregates alpha-violations over all executions.
	Violations ViolationStats
}

// ablationConfig runs `count` seeded sequences under one configuration
// and aggregates against a CE baseline run under the same execution
// settings (including phase simulation, when enabled). Sequences are
// independent scheduler runs, so they fan out over the par worker pool;
// each writes only its own slot and the aggregation folds the slots in
// sequence order, keeping every statistic bit-identical to a serial run.
func (e *Env) ablationConfig(label string, cfg sched.Config, count, jobs int) (AblationRow, error) {
	row := AblationRow{Label: label}
	thrBySeq := make([]float64, count)
	normsBySeq := make([][]float64, count)
	if err := par.ForEach(count, func(i int) error {
		seed := int64(1000 + i)
		seq := workload.RandomSequence(rand.New(rand.NewSource(seed)), e.Cat, jobs)

		ceCfg := sched.DefaultConfig(sched.CE)
		ceCfg.PhasedExecution = cfg.PhasedExecution
		ceSched, err := sched.New(e.Spec, e.Cat, e.DB, ceCfg)
		if err != nil {
			return err
		}
		spec := e.Spec
		if cfg.UseMBA {
			spec.Node.HasMBA = true
		}
		s, err := sched.New(spec, e.Cat, e.DB, cfg)
		if err != nil {
			return err
		}
		for _, js := range seq {
			if err := ceSched.Submit(js); err != nil {
				return err
			}
			if err := s.Submit(js); err != nil {
				return err
			}
		}
		ceJobs, err := ceSched.Run()
		if err != nil {
			return err
		}
		jobsDone, err := s.Run()
		if err != nil {
			return fmt.Errorf("%s seq %d: %w", label, i, err)
		}
		var ceTurns, turns []float64
		ceRun := make(map[int]float64, len(ceJobs))
		for _, j := range ceJobs {
			ceTurns = append(ceTurns, j.Turnaround())
			ceRun[j.ID] = j.RunTime()
		}
		norms := make([]float64, 0, len(jobsDone))
		for _, j := range jobsDone {
			turns = append(turns, j.Turnaround())
			base := ceRun[j.ID]
			if base <= 0 {
				return fmt.Errorf("%s: no CE baseline for job %d", label, j.ID)
			}
			norms = append(norms, j.RunTime()/base)
		}
		thrBySeq[i] = stats.Throughput(turns) / stats.Throughput(ceTurns)
		normsBySeq[i] = norms
		return nil
	}); err != nil {
		return row, err
	}
	var norms []float64
	for _, n := range normsBySeq {
		norms = append(norms, n...)
	}
	row.ThroughputVsCE = stats.Mean(thrBySeq)
	row.GeoNormRun = stats.GeoMean(norms)
	row.Violations = ViolationsOf(norms, 0.9)
	return row, nil
}

// AblationMechanisms decomposes SNS into its mechanisms over `count`
// random sequences: plain CE, share-only (CS), the related-work two-slot
// co-scheduler, spread-only (profiled scaling on dedicated nodes), full
// SNS, and SNS with hardware MBA bandwidth enforcement.
func AblationMechanisms(env *Env, count, jobs int) ([]AblationRow, error) {
	mk := func(p sched.Policy) sched.Config {
		c := sched.DefaultConfig(p)
		// Phase simulation on: programs burst above their profiled
		// averages, the condition under which MBA enforcement and
		// resource-blind co-location actually differ.
		c.PhasedExecution = true
		return c
	}
	spreadOnly := mk(sched.SNS)
	spreadOnly.ExclusiveSpread = true
	mba := mk(sched.SNS)
	mba.UseMBA = true
	configs := []struct {
		label string
		cfg   sched.Config
	}{
		{"CE", mk(sched.CE)},
		{"CS (share only)", mk(sched.CS)},
		{"two-slot (related work)", mk(sched.TwoSlot)},
		{"spread only", spreadOnly},
		{"SNS", mk(sched.SNS)},
		{"SNS+MBA", mba},
	}
	rows := make([]AblationRow, 0, len(configs))
	for _, c := range configs {
		row, err := env.ablationConfig(c.label, c.cfg, count, jobs)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// AblationBeta sweeps the LLC-occupancy weight of the node-selection
// score (the paper picks beta = 2).
func AblationBeta(env *Env, count, jobs int, betas []float64) ([]AblationRow, error) {
	rows := make([]AblationRow, 0, len(betas))
	for _, b := range betas {
		cfg := sched.DefaultConfig(sched.SNS)
		cfg.Beta = b
		// Beta 0 must stay 0, not be defaulted away.
		if b == 0 {
			cfg.Beta = 1e-9
		}
		row, err := env.ablationConfig(fmt.Sprintf("beta=%g", b), cfg, count, jobs)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// AblationAlpha sweeps the default slowdown threshold: looser thresholds
// admit more aggressive co-location.
func AblationAlpha(env *Env, count, jobs int, alphas []float64) ([]AblationRow, error) {
	rows := make([]AblationRow, 0, len(alphas))
	for _, a := range alphas {
		cfg := sched.DefaultConfig(sched.SNS)
		cfg.DefaultAlpha = a
		row, err := env.ablationConfig(fmt.Sprintf("alpha=%.2f", a), cfg, count, jobs)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// AblationGrouping compares the idle-core grouping placement against
// whole-cluster scoring.
func AblationGrouping(env *Env, count, jobs int) ([]AblationRow, error) {
	grouped := sched.DefaultConfig(sched.SNS)
	ungrouped := sched.DefaultConfig(sched.SNS)
	ungrouped.NoGrouping = true
	var rows []AblationRow
	for _, c := range []struct {
		label string
		cfg   sched.Config
	}{{"grouped", grouped}, {"ungrouped", ungrouped}} {
		row, err := env.ablationConfig(c.label, c.cfg, count, jobs)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// AblationTable renders ablation rows.
func AblationTable(rows []AblationRow) [][]string {
	out := [][]string{{"config", "throughput/CE", "geo norm run",
		"violations", "avg excess %", "max excess %"}}
	for _, r := range rows {
		out = append(out, []string{
			r.Label,
			f3(r.ThroughputVsCE),
			f3(r.GeoNormRun),
			fmt.Sprintf("%d/%d", r.Violations.Violations, r.Violations.Executions),
			f1(r.Violations.AvgExcessPct),
			f1(r.Violations.MaxExcessPct),
		})
	}
	return out
}

// QoSMixRow is one class of the heterogeneous-alpha study.
type QoSMixRow struct {
	Class      string
	Alpha      float64
	GeoNormRun float64
	Violations ViolationStats
}

// QoSMix runs sequences where half the jobs are QoS-strict (alpha 0.95)
// and half are loose (alpha 0.7), measuring whether SNS honors the strict
// class while exploiting the loose one — the per-job QoS contract of
// Section 4.3.
func QoSMix(env *Env, count, jobs int) ([]QoSMixRow, error) {
	strictNorm, looseNorm := []float64{}, []float64{}
	const strictAlpha, looseAlpha = 0.95, 0.70
	for i := 0; i < count; i++ {
		seed := int64(3000 + i)
		seq := workload.RandomSequence(rand.New(rand.NewSource(seed)), env.Cat, jobs)
		for k := range seq {
			if k%2 == 0 {
				seq[k].Alpha = strictAlpha
			} else {
				seq[k].Alpha = looseAlpha
			}
		}
		s, err := sched.New(env.Spec, env.Cat, env.DB, sched.DefaultConfig(sched.SNS))
		if err != nil {
			return nil, err
		}
		for _, js := range seq {
			if err := s.Submit(js); err != nil {
				return nil, err
			}
		}
		done, err := s.Run()
		if err != nil {
			return nil, err
		}
		for _, j := range done {
			base, err := env.CE.Of(j.Prog.Name, j.Procs)
			if err != nil {
				return nil, err
			}
			norm := j.RunTime() / base
			if j.Alpha == strictAlpha {
				strictNorm = append(strictNorm, norm)
			} else {
				looseNorm = append(looseNorm, norm)
			}
		}
	}
	return []QoSMixRow{
		{Class: "strict", Alpha: strictAlpha, GeoNormRun: stats.GeoMean(strictNorm),
			Violations: ViolationsOf(strictNorm, strictAlpha)},
		{Class: "loose", Alpha: looseAlpha, GeoNormRun: stats.GeoMean(looseNorm),
			Violations: ViolationsOf(looseNorm, looseAlpha)},
	}, nil
}

// QoSMixTable renders the heterogeneous-alpha study.
func QoSMixTable(rows []QoSMixRow) [][]string {
	out := [][]string{{"class", "alpha", "geo norm run", "violations of own bound"}}
	for _, r := range rows {
		out = append(out, []string{r.Class, f2(r.Alpha), f3(r.GeoNormRun),
			fmt.Sprintf("%d/%d", r.Violations.Violations, r.Violations.Executions)})
	}
	return out
}
