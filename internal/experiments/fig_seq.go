package experiments

import (
	"fmt"
	"math/rand"
	"sort"

	"spreadnshare/internal/exec"
	"spreadnshare/internal/par"
	"spreadnshare/internal/pmu"
	"spreadnshare/internal/sched"
	"spreadnshare/internal/stats"
	"spreadnshare/internal/workload"
)

// SeqCount and SeqJobs are the paper's evaluation scale: 36 random
// sequences of 20 jobs each (Section 6.2).
const (
	SeqCount = 36
	SeqJobs  = 20
)

// SequenceOutcome is the measured result of one random job sequence under
// all three policies.
type SequenceOutcome struct {
	Seed         int64
	ScalingRatio float64
	// Throughput per policy (1 / mean turnaround).
	Throughput map[sched.Policy]float64
	// NormRun holds each job's run time normalized to its CE solo
	// baseline, per policy.
	NormRun map[sched.Policy][]float64
}

// runSequence executes one job sequence under one policy.
func runSequence(env *Env, seq []sched.JobSpec, policy sched.Policy) ([]*exec.Job, error) {
	s, err := sched.New(env.Spec, env.Cat, env.DB, sched.DefaultConfig(policy))
	if err != nil {
		return nil, err
	}
	for _, js := range seq {
		if err := s.Submit(js); err != nil {
			return nil, err
		}
	}
	return s.Run()
}

// RunSequences evaluates `count` random sequences of `jobs` jobs under CE,
// CS and SNS, seeded deterministically. Sequences are independent
// simulations — each builds its own seeded schedulers — so they fan out
// over the par worker pool; results land in slot i and are returned in
// sequence order regardless of completion order, keeping the output
// byte-identical to a serial run.
func RunSequences(env *Env, count, jobs int) ([]SequenceOutcome, error) {
	outcomes := make([]SequenceOutcome, count)
	if err := par.ForEach(count, func(i int) error {
		var err error
		outcomes[i], err = runOneSequenceStudy(env, i, jobs)
		return err
	}); err != nil {
		return nil, err
	}
	return outcomes, nil
}

// runOneSequenceStudy measures sequence i under all three policies.
func runOneSequenceStudy(env *Env, i, jobs int) (SequenceOutcome, error) {
	seed := int64(1000 + i)
	seq := workload.RandomSequence(rand.New(rand.NewSource(seed)), env.Cat, jobs)
	ratio, err := workload.ScalingRatio(seq, env.DB, env.CE)
	if err != nil {
		return SequenceOutcome{}, err
	}
	o := SequenceOutcome{
		Seed:         seed,
		ScalingRatio: ratio,
		Throughput:   make(map[sched.Policy]float64),
		NormRun:      make(map[sched.Policy][]float64),
	}
	for _, p := range []sched.Policy{sched.CE, sched.CS, sched.SNS} {
		done, err := runSequence(env, seq, p)
		if err != nil {
			return o, fmt.Errorf("seq %d policy %v: %w", i, p, err)
		}
		turns := make([]float64, len(done))
		norm := make([]float64, len(done))
		for k, j := range done {
			turns[k] = j.Turnaround()
			base, err := env.CE.Of(j.Prog.Name, j.Procs)
			if err != nil {
				return o, err
			}
			norm[k] = j.RunTime() / base
		}
		o.Throughput[p] = stats.Throughput(turns)
		o.NormRun[p] = norm
	}
	return o, nil
}

// Fig14Row is one sequence's normalized throughput (Figure 14).
type Fig14Row struct {
	ScalingRatio float64
	CSOverCE     float64
	SNSOverCE    float64
}

// Fig14Throughput reproduces Figure 14 from sequence outcomes.
func Fig14Throughput(outcomes []SequenceOutcome) []Fig14Row {
	rows := make([]Fig14Row, 0, len(outcomes))
	for _, o := range outcomes {
		rows = append(rows, Fig14Row{
			ScalingRatio: o.ScalingRatio,
			CSOverCE:     o.Throughput[sched.CS] / o.Throughput[sched.CE],
			SNSOverCE:    o.Throughput[sched.SNS] / o.Throughput[sched.CE],
		})
	}
	sort.Slice(rows, func(a, b int) bool { return rows[a].ScalingRatio < rows[b].ScalingRatio })
	return rows
}

// Fig14Summary returns the average gains over CE (the paper reports CS
// +13.7% and SNS +19.8%).
func Fig14Summary(rows []Fig14Row) (csAvg, snsAvg float64) {
	var cs, sns []float64
	for _, r := range rows {
		cs = append(cs, r.CSOverCE)
		sns = append(sns, r.SNSOverCE)
	}
	return stats.Mean(cs), stats.Mean(sns)
}

// Fig14Table renders Figure 14.
func Fig14Table(rows []Fig14Row) [][]string {
	out := [][]string{{"scaling ratio", "CS/CE", "SNS/CE"}}
	for _, r := range rows {
		out = append(out, []string{f3(r.ScalingRatio), f3(r.CSOverCE), f3(r.SNSOverCE)})
	}
	cs, sns := Fig14Summary(rows)
	out = append(out, []string{"average", f3(cs), f3(sns)})
	return out
}

// Fig15Row is one sequence's SNS throughput relative to CE and to CS
// (Figure 15; the two columns are sorted independently, as in the paper).
type Fig15Row struct {
	SNSOverCE float64
	SNSOverCS float64
}

// Fig15Relative reproduces Figure 15.
func Fig15Relative(outcomes []SequenceOutcome) []Fig15Row {
	ce := make([]float64, 0, len(outcomes))
	cs := make([]float64, 0, len(outcomes))
	for _, o := range outcomes {
		ce = append(ce, o.Throughput[sched.SNS]/o.Throughput[sched.CE])
		cs = append(cs, o.Throughput[sched.SNS]/o.Throughput[sched.CS])
	}
	sort.Float64s(ce)
	sort.Float64s(cs)
	rows := make([]Fig15Row, len(outcomes))
	for i := range rows {
		rows[i] = Fig15Row{SNSOverCE: ce[i], SNSOverCS: cs[i]}
	}
	return rows
}

// Fig15Table renders Figure 15 plus the win-rate summary.
func Fig15Table(rows []Fig15Row) [][]string {
	out := [][]string{{"rank", "SNS/CE", "SNS/CS"}}
	winsCE, winsCS := 0, 0
	for i, r := range rows {
		out = append(out, []string{fmt.Sprint(i), f3(r.SNSOverCE), f3(r.SNSOverCS)})
		if r.SNSOverCE > 1 {
			winsCE++
		}
		if r.SNSOverCS > 1 {
			winsCS++
		}
	}
	out = append(out, []string{"wins",
		fmt.Sprintf("%d/%d", winsCE, len(rows)),
		fmt.Sprintf("%d/%d", winsCS, len(rows))})
	return out
}

// Fig16Row is one sequence's normalized job run-time distribution
// (Figure 16): geometric mean plus extremes, for CS and SNS.
type Fig16Row struct {
	CSAvg, CSMax, CSMin    float64
	SNSAvg, SNSMax, SNSMin float64
}

// Fig16RunTime reproduces Figure 16, sorted by SNS average.
func Fig16RunTime(outcomes []SequenceOutcome) []Fig16Row {
	rows := make([]Fig16Row, 0, len(outcomes))
	for _, o := range outcomes {
		csMin, csMax := stats.MinMax(o.NormRun[sched.CS])
		snsMin, snsMax := stats.MinMax(o.NormRun[sched.SNS])
		rows = append(rows, Fig16Row{
			CSAvg: stats.GeoMean(o.NormRun[sched.CS]), CSMax: csMax, CSMin: csMin,
			SNSAvg: stats.GeoMean(o.NormRun[sched.SNS]), SNSMax: snsMax, SNSMin: snsMin,
		})
	}
	sort.Slice(rows, func(a, b int) bool { return rows[a].SNSAvg < rows[b].SNSAvg })
	return rows
}

// Fig16Table renders Figure 16.
func Fig16Table(rows []Fig16Row) [][]string {
	out := [][]string{{"rank", "CS avg", "CS min", "CS max", "SNS avg", "SNS min", "SNS max"}}
	for i, r := range rows {
		out = append(out, []string{fmt.Sprint(i),
			f3(r.CSAvg), f3(r.CSMin), f3(r.CSMax),
			f3(r.SNSAvg), f3(r.SNSMin), f3(r.SNSMax)})
	}
	return out
}

// Fig16Violations aggregates slowdown-threshold violations across all SNS
// executions of a sequence study — the statistic the paper reports as 136
// of 720 executions exceeding the alpha = 0.9 slowdown factor by 28.3% on
// average (Section 6.2).
func Fig16Violations(outcomes []SequenceOutcome) ViolationStats {
	var all []float64
	for _, o := range outcomes {
		all = append(all, o.NormRun[sched.SNS]...)
	}
	return ViolationsOf(all, 0.9)
}

// Fig17Result is the load-balance study (Figures 17 and 18): per-node
// bandwidth samples over 30-second episodes for the same sequence under
// CE and SNS.
type Fig17Result struct {
	// Samples per policy: one bandwidth reading per (node, episode).
	Samples map[sched.Policy][]float64
	// Variance is the std-dev/peak metric (paper: CE 0.40, SNS 0.25).
	Variance map[sched.Policy]float64
	// Histograms over 10 GB/s bins up to the node peak (Figure 18).
	Histogram map[sched.Policy][]int
	// Matrix[node] is the node's bandwidth time series.
	Matrix map[sched.Policy][][]float64
	// PeakBandwidth is the node peak the histogram bins span, carried
	// so tables label bins from the spec actually used.
	PeakBandwidth float64
}

// Fig17LoadBalance runs one random sequence under CE and SNS with the
// 30-second monitor attached.
func Fig17LoadBalance(env *Env, seed int64) (*Fig17Result, error) {
	seq := workload.RandomSequence(rand.New(rand.NewSource(seed)), env.Cat, SeqJobs)
	res := &Fig17Result{
		Samples:       make(map[sched.Policy][]float64),
		Variance:      make(map[sched.Policy]float64),
		Histogram:     make(map[sched.Policy][]int),
		Matrix:        make(map[sched.Policy][][]float64),
		PeakBandwidth: env.Spec.Node.PeakBandwidth.Float64(),
	}
	for _, p := range []sched.Policy{sched.CE, sched.SNS} {
		s, err := sched.New(env.Spec, env.Cat, env.DB, sched.DefaultConfig(p))
		if err != nil {
			return nil, err
		}
		for _, js := range seq {
			if err := s.Submit(js); err != nil {
				return nil, err
			}
		}
		rec := &pmu.Recorder{Interval: 30}
		s.Engine().Monitor(rec, 0)
		if _, err := s.Run(); err != nil {
			return nil, err
		}
		var flat []float64
		matrix := make([][]float64, env.Spec.Nodes)
		for node, series := range rec.ByNode(env.Spec.Nodes) {
			for _, sample := range series {
				flat = append(flat, sample.BandwidthGB.Float64())
				matrix[node] = append(matrix[node], sample.BandwidthGB.Float64())
			}
		}
		res.Samples[p] = flat
		res.Variance[p] = stats.PeakNormVariance(flat)
		res.Histogram[p] = stats.Histogram(flat, 0, env.Spec.Node.PeakBandwidth.Float64(), 12)
		res.Matrix[p] = matrix
	}
	return res, nil
}

// Fig17Table renders the variance summary and histograms.
func Fig17Table(r *Fig17Result) [][]string {
	out := [][]string{{"policy", "episodes", "variance (std/peak)"}}
	for _, p := range []sched.Policy{sched.CE, sched.SNS} {
		out = append(out, []string{p.String(),
			fmt.Sprint(len(r.Samples[p])), f3(r.Variance[p])})
	}
	out = append(out, []string{"", "", ""})
	out = append(out, []string{"policy", "bin (GB/s)", "episodes"})
	for _, p := range []sched.Policy{sched.CE, sched.SNS} {
		bins := len(r.Histogram[p])
		for b, c := range r.Histogram[p] {
			// Bin width follows the node spec the histogram was built
			// from, so labels stay correct for non-default clusters.
			width := r.PeakBandwidth / float64(bins)
			lo := float64(b) * width
			out = append(out, []string{p.String(), fmt.Sprintf("%.0f-%.0f", lo, lo+width), fmt.Sprint(c)})
		}
	}
	return out
}
