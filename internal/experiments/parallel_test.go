package experiments

import (
	"fmt"
	"hash/fnv"
	"testing"

	"spreadnshare/internal/par"
	"spreadnshare/internal/sched"
)

// fig20Digest folds every field of every row into an FNV-1a digest, bit
// patterns included, so "matches" below means byte-identical output.
func fig20Digest(rows []Fig20Row) string {
	h := fnv.New64a()
	for _, r := range rows {
		digestFloat(h, float64(r.ClusterNodes))
		digestFloat(h, r.ScalingRatio)
		for _, v := range []float64{
			r.CEWait, r.CERun, r.CSWait, r.CSRun, r.SNSWait, r.SNSRun,
			r.TwoSlotWait, r.TwoSlotRun,
			r.CSTurnImprovePct, r.SNSTurnImprovePct, r.TwoSlotTurnImprovePct,
		} {
			digestFloat(h, v)
		}
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// TestParallelRunnerDigestsMatchSerial pins the parallel runner's
// determinism contract: the same experiment grid produces byte-identical
// results at every worker-pool width. The Fig20 grid covers all four
// policies (CE, CS, SNS, TwoSlot), two cluster sizes and two scaling
// ratios; the ablation and size-sweep runners cover the
// scheduler-sequence fan-out.
func TestParallelRunnerDigestsMatchSerial(t *testing.T) {
	env, err := SharedEnv()
	if err != nil {
		t.Fatal(err)
	}
	cfg := Fig20Config{
		Seed: 42, Jobs: 250, Span: 100, MaxNodes: 32,
		Sizes: []int{256, 512}, Ratios: []float64{0.9, 0.5},
	}
	widths := []int{1, 4, 7}

	digests := make([]string, len(widths))
	for i, w := range widths {
		prev := par.SetWorkers(w)
		rows, err := Fig20TraceSim(env, cfg)
		par.SetWorkers(prev)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		digests[i] = fig20Digest(rows)
		if digests[i] != digests[0] {
			t.Fatalf("fig20 digest at %d workers = %s, serial = %s — parallel replay is not deterministic",
				w, digests[i], digests[0])
		}
	}
	t.Logf("fig20 digest %s identical at widths %v", digests[0], widths)

	var serialAbl, parAbl AblationRow
	var serialSweep, parSweep []SizeSweepRow
	for _, run := range []struct {
		w    int
		abl  *AblationRow
		rows *[]SizeSweepRow
	}{{1, &serialAbl, &serialSweep}, {5, &parAbl, &parSweep}} {
		prev := par.SetWorkers(run.w)
		*run.abl, err = env.ablationConfig("det", sched.DefaultConfig(sched.SNS), 4, 6)
		if err == nil {
			*run.rows, err = ClusterSizeSweep(env, []int{4, 8}, 0.85)
		}
		par.SetWorkers(prev)
		if err != nil {
			t.Fatalf("workers=%d: %v", run.w, err)
		}
	}
	if serialAbl != parAbl {
		t.Fatalf("ablation row differs: serial %+v, parallel %+v", serialAbl, parAbl)
	}
	if len(serialSweep) != len(parSweep) {
		t.Fatalf("size sweep length differs: %d vs %d", len(serialSweep), len(parSweep))
	}
	for i := range serialSweep {
		if serialSweep[i] != parSweep[i] {
			t.Fatalf("size-sweep row %d differs: serial %+v, parallel %+v",
				i, serialSweep[i], parSweep[i])
		}
	}
}
