// Package experiments regenerates every figure of the paper's evaluation
// (Figures 1-7 and 12-20) on the simulated substrate. Each experiment
// returns structured rows consumed by cmd/snsbench and by the benchmark
// harness in the repository root; EXPERIMENTS.md records paper-vs-measured
// values for each.
package experiments

import (
	"fmt"
	"strings"
	"sync"

	"spreadnshare/internal/app"
	"spreadnshare/internal/hw"
	"spreadnshare/internal/profiler"
	"spreadnshare/internal/workload"
)

// Env bundles the shared experimental setup: the paper's 8-node cluster,
// the 12-program catalog, a fully-populated profile database, and the CE
// baseline measurement cache.
type Env struct {
	Spec hw.ClusterSpec
	Cat  *app.Catalog
	DB   *profiler.DB
	CE   *workload.CERunTimes
}

// NewEnv builds the environment, profiling all programs at 16 processes
// and the flexible (non-power-of-2) programs at 28.
func NewEnv() (*Env, error) {
	spec := hw.DefaultClusterSpec()
	cat, err := app.NewCatalog(spec.Node)
	if err != nil {
		return nil, err
	}
	db := profiler.NewDB()
	k := profiler.New(spec)
	if err := k.ProfileAll(cat, app.ProgramNames, 16, db); err != nil {
		return nil, err
	}
	var flexible []string
	for _, name := range app.ProgramNames {
		m, _ := cat.Lookup(name)
		if !m.PowerOf2 {
			flexible = append(flexible, name)
		}
	}
	if err := k.ProfileAll(cat, flexible, 28, db); err != nil {
		return nil, err
	}
	return &Env{
		Spec: spec,
		Cat:  cat,
		DB:   db,
		CE:   workload.NewCERunTimes(spec, cat),
	}, nil
}

var (
	envOnce sync.Once
	envVal  *Env
	envErr  error
)

// SharedEnv returns a lazily-built process-wide environment, so the many
// benchmark targets do not re-profile per invocation.
func SharedEnv() (*Env, error) {
	envOnce.Do(func() { envVal, envErr = NewEnv() })
	return envVal, envErr
}

// Prog looks a program up, panicking on unknown names (experiment tables
// are static).
func (e *Env) Prog(name string) *app.Model {
	m, err := e.Cat.Lookup(name)
	if err != nil {
		panic(fmt.Sprintf("experiments: static experiment table names %q: %v", name, err))
	}
	return m
}

// FormatTable renders rows as aligned columns for terminal output.
func FormatTable(rows [][]string) string {
	if len(rows) == 0 {
		return ""
	}
	widths := make([]int, 0)
	for _, r := range rows {
		for i, c := range r {
			if i >= len(widths) {
				widths = append(widths, 0)
			}
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	for _, r := range rows {
		for i, c := range r {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// f2 formats a float with two decimals.
func f2(x float64) string { return fmt.Sprintf("%.2f", x) }

// f3 formats a float with three decimals.
func f3(x float64) string { return fmt.Sprintf("%.3f", x) }

// f1 formats a float with one decimal.
func f1(x float64) string { return fmt.Sprintf("%.1f", x) }
