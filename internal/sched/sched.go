// Package sched implements Uberun, the prototype batch scheduler, with the
// three placement strategies the paper compares:
//
//   - CE (Compact-n-Exclusive): minimum node footprint, dedicated nodes —
//     the policy of SLURM/LSF/PBS and all top-10 supercomputers.
//   - CS (Compact-n-Share): node sharing by free cores, preferring the
//     lowest scale factor currently possible.
//   - SNS (Spread-n-Share): profile-guided automatic scaling plus
//     resource-compatible co-location with CAT way partitioning and
//     bandwidth accounting.
//
// All three share the same age-based priority queue with an anti-starvation
// age limit, so measured differences come from the placement strategy
// alone — exactly the paper's experimental methodology (Section 6.2).
package sched

import (
	"fmt"
	"sort"

	"spreadnshare/internal/app"
	"spreadnshare/internal/cluster"
	"spreadnshare/internal/core"
	"spreadnshare/internal/daemon"
	"spreadnshare/internal/exec"
	"spreadnshare/internal/hw"
	"spreadnshare/internal/profiler"
)

// Policy selects the placement strategy.
type Policy int

const (
	// CE is Compact-n-Exclusive.
	CE Policy = iota
	// CS is Compact-n-Share.
	CS
	// SNS is Spread-n-Share.
	SNS
	// TwoSlot is the related-work baseline (ClavisMO / Poncos style):
	// static half-node slots, at most one shared-resource-intensive
	// job per node, no scaling and no cache partitioning.
	TwoSlot
)

// String returns the policy name.
func (p Policy) String() string {
	switch p {
	case CE:
		return "CE"
	case CS:
		return "CS"
	case SNS:
		return "SNS"
	case TwoSlot:
		return "TwoSlot"
	}
	return fmt.Sprintf("Policy(%d)", int(p))
}

// Config tunes the scheduler.
type Config struct {
	// Policy is the placement strategy.
	Policy Policy
	// Beta weighs LLC occupancy in SNS node selection (default 2).
	Beta float64
	// DefaultAlpha is used for jobs submitted without a slowdown
	// threshold (the paper's default is 0.9).
	DefaultAlpha float64
	// AgeLimitSec is the wait beyond which a job blocks younger jobs
	// from overtaking it, preventing starvation of resource-hungry
	// jobs.
	AgeLimitSec float64
	// AgingPeriodSec is the wait that promotes a job by one priority
	// level, so long-delayed submissions climb past fresher
	// higher-priority ones (the paper's age-based priority ranking).
	AgingPeriodSec float64
	// MaxScale bounds the scale-factor search (default 8).
	MaxScale int
	// UseMBA enforces each SNS job's estimated bandwidth reservation
	// with Intel MBA throttling (requires node support). The paper's
	// testbed lacked MBA and saw jobs temporarily exceed their
	// "bandwidth allocation", one source of slowdown-threshold
	// violations (Section 6.2).
	UseMBA bool
	// ExclusiveSpread is an ablation switch: SNS still scales jobs to
	// their profiled best footprint but keeps nodes dedicated — the
	// "spread" half of Spread-n-Share without the "share" half. It
	// isolates how much of SNS's gain comes from each mechanism.
	ExclusiveSpread bool
	// NoGrouping is an ablation switch disabling the idle-core node
	// grouping of Section 4.4; placement scores feasible nodes across
	// the whole cluster directly.
	NoGrouping bool
	// PhasedExecution enables bandwidth-phase simulation in the
	// engine: programs burst above their profiled average demand,
	// stressing the scheduler's average-based accounting exactly as
	// the paper's Section 6.2 discussion describes.
	PhasedExecution bool
	// NoBackfill makes the queue strictly FIFO: a scheduling pass
	// stops at the first job it cannot place instead of letting
	// younger jobs slip past. An ablation of the queue discipline the
	// paper's age-limit mechanism relaxes.
	NoBackfill bool
}

// DefaultConfig returns the paper's settings for a policy.
func DefaultConfig(p Policy) Config {
	return Config{
		Policy:         p,
		Beta:           core.DefaultBeta,
		DefaultAlpha:   0.9,
		AgeLimitSec:    600,
		AgingPeriodSec: 120,
		MaxScale:       8,
	}
}

// JobSpec is one submission.
type JobSpec struct {
	// Program is the catalog name.
	Program string
	// Procs is the requested process count.
	Procs int
	// Alpha is the optional slowdown threshold; 0 means the default.
	Alpha float64
	// Submit is the submission time in seconds.
	Submit float64
	// Priority ranks the job in the queue (higher first; default 0).
	// Aging promotes waiting jobs by one level per AgingPeriodSec.
	Priority int
}

// Scheduler drives one simulated scheduling run.
type Scheduler struct {
	cfg  Config
	spec hw.ClusterSpec
	cat  *app.Catalog
	db   *profiler.DB
	eng  *exec.Engine
	cl   *cluster.State

	pending  []*exec.Job
	order    map[int]int // job id -> submission index
	priority map[int]int // job id -> base priority
	done     []*exec.Job
	nextID   int
	drift    *profiler.DriftMonitor
	explore  *explorerState
	daemons  []*daemon.Daemon
	plans    []daemon.LaunchPlan
}

// LaunchPlans returns every node-local actuation issued so far: cpuset
// bindings, CAT masks, MBA caps, and framework launch commands, in issue
// order.
func (s *Scheduler) LaunchPlans() []daemon.LaunchPlan { return s.plans }

// AttachDriftMonitor enables sustained lightweight monitoring (Section
// 5.2): whenever a job happens to run exclusively — the conditions its
// profile was measured under — its final PMU reading is fed to the
// monitor, which can later flag the program for re-profiling.
func (s *Scheduler) AttachDriftMonitor(m *profiler.DriftMonitor) { s.drift = m }

// observeDrift records an exclusive job's metrics into the drift monitor.
func (s *Scheduler) observeDrift(j *exec.Job) {
	if s.drift == nil || !j.Exclusive || j.SpanNodes() != s.minFootprint(j.Procs) {
		return
	}
	m, err := s.eng.JobMetrics(j.ID)
	if err != nil {
		return
	}
	s.drift.Observe(j.Prog.Name, j.Procs, profiler.Reading{
		IPC: m.IPC, BWPerNode: m.BWPerNode, MissPct: m.MissPct,
	})
}

// New builds a scheduler over a fresh cluster. The profile database may be
// nil for CE/CS, which do not consult profiles.
func New(spec hw.ClusterSpec, cat *app.Catalog, db *profiler.DB, cfg Config) (*Scheduler, error) {
	if cfg.Policy == SNS && db == nil {
		return nil, fmt.Errorf("sched: SNS requires a profile database")
	}
	if cfg.Beta == 0 {
		cfg.Beta = core.DefaultBeta
	}
	if cfg.DefaultAlpha == 0 {
		cfg.DefaultAlpha = 0.9
	}
	if cfg.MaxScale == 0 {
		cfg.MaxScale = 8
	}
	if cfg.AgeLimitSec == 0 {
		cfg.AgeLimitSec = 600
	}
	eng, err := exec.New(spec)
	if err != nil {
		return nil, err
	}
	eng.PhasesOn = cfg.PhasedExecution
	cl, err := cluster.New(spec)
	if err != nil {
		return nil, err
	}
	if cfg.AgingPeriodSec == 0 {
		cfg.AgingPeriodSec = 120
	}
	s := &Scheduler{
		cfg: cfg, spec: spec, cat: cat, db: db, eng: eng, cl: cl,
		order:    make(map[int]int),
		priority: make(map[int]int),
		daemons:  make([]*daemon.Daemon, spec.Nodes),
	}
	for i := range s.daemons {
		s.daemons[i] = daemon.New(i, spec.Node)
	}
	eng.OnFinish(func(j *exec.Job) {
		if j.State == exec.Done {
			// Cancelled runs yield no usable measurements.
			if s.explore != nil {
				s.finishTrial(j)
			}
			s.observeDrift(j)
		} else if s.explore != nil {
			// A cancelled trial is abandoned; the next submission
			// retries the same scale.
			delete(s.explore.trials, j.ID)
		}
		s.cl.Release(j.ID)
		for _, n := range j.Nodes {
			if err := s.daemons[n].Release(j.ID); err != nil {
				panic(fmt.Sprintf("sched: daemon release: %v", err))
			}
		}
		s.done = append(s.done, j)
		s.schedule()
	})
	return s, nil
}

// Engine exposes the underlying execution engine (for monitoring hooks).
func (s *Scheduler) Engine() *exec.Engine { return s.eng }

// Cluster exposes the resource bookkeeping (read-only use intended).
func (s *Scheduler) Cluster() *cluster.State { return s.cl }

// Submit registers a job arriving at spec.Submit.
func (s *Scheduler) Submit(js JobSpec) error {
	prog, err := s.cat.Lookup(js.Program)
	if err != nil {
		return err
	}
	if js.Procs <= 0 {
		return fmt.Errorf("sched: job needs processes, got %d", js.Procs)
	}
	if !prog.MultiNode && js.Procs > s.spec.Node.Cores {
		return fmt.Errorf("sched: %s is single-node but wants %d processes", js.Program, js.Procs)
	}
	if js.Procs > s.spec.TotalCores() {
		return fmt.Errorf("sched: %d processes exceed cluster capacity %d", js.Procs, s.spec.TotalCores())
	}
	alpha := js.Alpha
	if alpha <= 0 || alpha > 1 {
		alpha = s.cfg.DefaultAlpha
	}
	id := s.nextID
	s.nextID++
	j := &exec.Job{
		ID:     id,
		Prog:   prog,
		Procs:  js.Procs,
		Alpha:  alpha,
		Submit: js.Submit,
	}
	s.order[id] = id
	s.priority[id] = js.Priority
	s.eng.Queue().At(js.Submit, func() {
		s.pending = append(s.pending, j)
		s.schedule()
	})
	return nil
}

// Run drives the simulation to completion and returns every finished job
// in completion order. It fails if jobs remain unplaceable when the
// cluster drains (which indicates an impossible request).
func (s *Scheduler) Run() ([]*exec.Job, error) {
	s.eng.Run(0)
	if len(s.pending) > 0 {
		return s.done, fmt.Errorf("sched: %d jobs never placed (first: %s/%d procs)",
			len(s.pending), s.pending[0].Prog.Name, s.pending[0].Procs)
	}
	return s.done, nil
}

// schedule is the scheduling pass run at every scheduling point: job
// arrival and job completion. Jobs are scanned in age-based priority
// order; a job past the age limit blocks younger jobs from overtaking it.
func (s *Scheduler) schedule() {
	now := s.eng.Now()
	// Effective rank: base priority plus one level per aging period
	// waited; ties broken by submission order (FIFO).
	rank := func(j *exec.Job) float64 {
		return float64(s.priority[j.ID]) + (now-j.Submit)/s.cfg.AgingPeriodSec
	}
	sort.SliceStable(s.pending, func(a, b int) bool {
		ra, rb := rank(s.pending[a]), rank(s.pending[b])
		if ra != rb {
			return ra > rb
		}
		return s.order[s.pending[a].ID] < s.order[s.pending[b].ID]
	})
	var remaining []*exec.Job
	blocked := false
	for _, j := range s.pending {
		if blocked {
			remaining = append(remaining, j)
			continue
		}
		if s.tryPlace(j) {
			continue
		}
		remaining = append(remaining, j)
		if s.cfg.NoBackfill || now-j.Submit > s.cfg.AgeLimitSec {
			// Strict FIFO, or anti-starvation: nothing younger may
			// overtake.
			blocked = true
		}
	}
	s.pending = remaining
}

// tryPlace attempts to place and launch one job under the configured
// policy.
func (s *Scheduler) tryPlace(j *exec.Job) bool {
	var pl *placement
	switch s.cfg.Policy {
	case CE:
		pl = s.placeCE(j)
	case CS:
		pl = s.placeCS(j)
	case SNS:
		pl = s.placeSNS(j)
	case TwoSlot:
		pl = s.placeTwoSlot(j)
	}
	if pl == nil {
		return false
	}
	nodeAllocs := make([]cluster.NodeAlloc, len(pl.nodes))
	for i, n := range pl.nodes {
		nodeAllocs[i] = cluster.NodeAlloc{
			Node:  n,
			Cores: pl.cores[i],
			MemGB: float64(pl.cores[i]) * j.Prog.MemGBPerProc,
		}
	}
	if err := s.cl.AllocateIO(j.ID, nodeAllocs, pl.ways, pl.bw, pl.ioBW, pl.exclusive); err != nil {
		// Placement search and bookkeeping disagree: a programming
		// error worth failing loudly on.
		panic(fmt.Sprintf("sched: placement rejected by bookkeeping: %v", err))
	}
	j.Nodes = pl.nodes
	j.CoresByNode = pl.cores
	j.Ways = pl.ways
	j.BWCap = pl.bwCap
	j.Exclusive = pl.exclusive
	// Per-node actuation: bind cores, program CAT and MBA, build the
	// framework launch line. The daemons double as an independent
	// consistency check on the placement search.
	for i, n := range pl.nodes {
		plan, err := s.daemons[n].Actuate(j.ID, j.Prog, pl.cores[i], pl.ways, pl.bwCap)
		if err != nil {
			panic(fmt.Sprintf("sched: daemon rejected placement: %v", err))
		}
		s.plans = append(s.plans, *plan)
	}
	if err := s.eng.Launch(j); err != nil {
		panic(fmt.Sprintf("sched: engine rejected placement: %v", err))
	}
	if pl.trialK > 0 && s.explore != nil {
		s.startTrialInstrumentation(j, pl.trialK)
	}
	return true
}

// placement is a policy's decision.
type placement struct {
	nodes     []int
	cores     []int
	ways      int
	bw        float64
	ioBW      float64
	bwCap     float64
	exclusive bool
	// trialK marks a piggy-backed profiling trial at that scale.
	trialK int
}

// minFootprint returns the CE node count for a process count.
func (s *Scheduler) minFootprint(procs int) int {
	return (procs + s.spec.Node.Cores - 1) / s.spec.Node.Cores
}

// scaleRunnable reports whether the program can run spread over n nodes.
func scaleRunnable(prog *app.Model, procs, n int) bool {
	if n > procs {
		return false
	}
	if !prog.MultiNode && n > 1 {
		return false
	}
	if prog.PowerOf2 && procs%n != 0 {
		return false
	}
	return true
}

// placeCE packs the job onto the minimum number of fully idle nodes and
// dedicates them.
func (s *Scheduler) placeCE(j *exec.Job) *placement {
	n := s.minFootprint(j.Procs)
	idle := s.cl.IdleNodes()
	if len(idle) < n {
		return nil
	}
	nodes := idle[:n]
	return &placement{nodes: nodes, cores: exec.EvenSplit(j.Procs, n), exclusive: true}
}

// placeCS shares nodes by free cores, trying the lowest scale factor
// first and growing the footprint only when compact placement is
// impossible.
func (s *Scheduler) placeCS(j *exec.Job) *placement {
	minN := s.minFootprint(j.Procs)
	for k := 1; k <= s.cfg.MaxScale; k++ {
		n := k * minN
		if n > s.spec.Nodes {
			break
		}
		if !scaleRunnable(j.Prog, j.Procs, n) {
			continue
		}
		cores := exec.EvenSplit(j.Procs, n)
		// Need n nodes with at least cores[0] (the max) free, with
		// memory for that many processes.
		mem := float64(cores[0]) * j.Prog.MemGBPerProc
		var fits []int
		for _, node := range s.cl.Nodes {
			if node.FreeCores() >= cores[0] && node.FreeMem() >= mem {
				fits = append(fits, node.ID)
			}
		}
		if len(fits) < n {
			continue
		}
		// Fill the fullest nodes first to keep placement compact.
		sort.Slice(fits, func(a, b int) bool {
			fa, fb := s.cl.Nodes[fits[a]].FreeCores(), s.cl.Nodes[fits[b]].FreeCores()
			if fa != fb {
				return fa < fb
			}
			return fits[a] < fits[b]
		})
		return &placement{nodes: fits[:n], cores: cores}
	}
	return nil
}

// placeSNS implements the Figure 11 process: walk the profiled scale
// factors in descending exclusive performance; for each, estimate (c, w,
// b) under the job's alpha and search for nodes; dispatch on the first
// fit. Jobs without a profile fall back to CS-style placement (their
// first runs double as profiling runs in a production deployment).
func (s *Scheduler) placeSNS(j *exec.Job) *placement {
	prof, ok := s.db.Get(j.Prog.Name, j.Procs)
	if !ok {
		// Unprofiled program: with piggy-backed profiling attached,
		// this run doubles as the next exploration trial; otherwise
		// schedule it CS-style.
		if s.explore != nil {
			if pl, trial := s.placeTrial(j); trial {
				return pl
			}
		}
		return s.placeCS(j)
	}
	minN := s.minFootprint(j.Procs)
	// Scaling-class programs chase their fastest profiled footprint;
	// neutral and compact programs are spread only passively — they
	// stay at their minimum footprint unless resources force a larger
	// one (Section 6.1: neutral jobs are "fillers").
	scales := prof.ByPerformance()
	if prof.Class != profiler.Scaling {
		scales = append([]*profiler.ScaleProfile(nil), scales...)
		sort.Slice(scales, func(a, b int) bool { return scales[a].K < scales[b].K })
	}
	for _, sp := range scales {
		if sp.K > s.cfg.MaxScale {
			continue
		}
		n := sp.K * minN
		if n > s.spec.Nodes || !scaleRunnable(j.Prog, j.Procs, n) {
			continue
		}
		cores := exec.EvenSplit(j.Procs, n)
		if s.cfg.ExclusiveSpread {
			idle := s.cl.IdleNodes()
			if len(idle) < n {
				continue
			}
			return &placement{nodes: idle[:n], cores: cores, exclusive: true}
		}
		d := core.EstimateDemand(sp, j.Alpha, s.spec.Node)
		d.Cores = cores[0]
		d.MemGB = float64(cores[0]) * j.Prog.MemGBPerProc
		find := core.FindNodes
		if s.cfg.NoGrouping {
			find = core.FindNodesUngrouped
		}
		nodes := find(s.cl, n, d, s.cfg.Beta)
		if nodes == nil {
			continue
		}
		pl := &placement{nodes: nodes, cores: cores, ways: d.Ways, bw: d.BW, ioBW: d.IOBW}
		if s.cfg.UseMBA {
			pl.bwCap = s.spec.Node.MBACap(d.BW)
		}
		return pl
	}
	return nil
}
