// Package sched implements Uberun, the prototype batch scheduler, with the
// placement strategies the paper compares:
//
//   - CE (Compact-n-Exclusive): minimum node footprint, dedicated nodes —
//     the policy of SLURM/LSF/PBS and all top-10 supercomputers.
//   - CS (Compact-n-Share): node sharing by free cores, preferring the
//     lowest scale factor currently possible.
//   - SNS (Spread-n-Share): profile-guided automatic scaling plus
//     resource-compatible co-location with CAT way partitioning and
//     bandwidth accounting.
//   - TwoSlot: the related-work half-node-slot baseline.
//
// The placement searches and the age-based priority queue live in the
// shared kernel (internal/placement); this package adapts the cluster
// bookkeeping to the kernel's NodeView, keeps the free-core index in sync
// with every allocation, and drives the execution engine and node
// daemons. All policies share the same queue discipline, so measured
// differences come from the placement strategy alone — exactly the
// paper's experimental methodology (Section 6.2).
package sched

import (
	"fmt"

	"spreadnshare/internal/app"
	"spreadnshare/internal/cluster"
	"spreadnshare/internal/core"
	"spreadnshare/internal/daemon"
	"spreadnshare/internal/exec"
	"spreadnshare/internal/hw"
	"spreadnshare/internal/invariant"
	"spreadnshare/internal/placement"
	"spreadnshare/internal/profiler"
	"spreadnshare/internal/units"
)

// Policy selects the placement strategy. It is the shared kernel enum, so
// a policy value means the same thing to Uberun and the trace simulator.
type Policy = placement.Policy

const (
	// CE is Compact-n-Exclusive.
	CE = placement.CE
	// CS is Compact-n-Share.
	CS = placement.CS
	// SNS is Spread-n-Share.
	SNS = placement.SNS
	// TwoSlot is the related-work baseline (ClavisMO / Poncos style):
	// static half-node slots, at most one shared-resource-intensive
	// job per node, no scaling and no cache partitioning.
	TwoSlot = placement.TwoSlot
)

// Config tunes the scheduler.
type Config struct {
	// Policy is the placement strategy.
	Policy Policy
	// Beta weighs LLC occupancy in SNS node selection (default 2).
	Beta float64
	// DefaultAlpha is used for jobs submitted without a slowdown
	// threshold (the paper's default is 0.9).
	DefaultAlpha float64
	// AgeLimitSec is the wait beyond which a job blocks younger jobs
	// from overtaking it, preventing starvation of resource-hungry
	// jobs.
	AgeLimitSec float64
	// AgingPeriodSec is the wait that promotes a job by one priority
	// level, so long-delayed submissions climb past fresher
	// higher-priority ones (the paper's age-based priority ranking).
	AgingPeriodSec float64
	// MaxScale bounds the scale-factor search (default 8).
	MaxScale int
	// UseMBA enforces each SNS job's estimated bandwidth reservation
	// with Intel MBA throttling (requires node support). The paper's
	// testbed lacked MBA and saw jobs temporarily exceed their
	// "bandwidth allocation", one source of slowdown-threshold
	// violations (Section 6.2).
	UseMBA bool
	// ExclusiveSpread is an ablation switch: SNS still scales jobs to
	// their profiled best footprint but keeps nodes dedicated — the
	// "spread" half of Spread-n-Share without the "share" half. It
	// isolates how much of SNS's gain comes from each mechanism.
	ExclusiveSpread bool
	// NoGrouping is an ablation switch disabling the idle-core node
	// grouping of Section 4.4; placement scores feasible nodes across
	// the whole cluster directly.
	NoGrouping bool
	// PhasedExecution enables bandwidth-phase simulation in the
	// engine: programs burst above their profiled average demand,
	// stressing the scheduler's average-based accounting exactly as
	// the paper's Section 6.2 discussion describes.
	PhasedExecution bool
	// NoBackfill makes the queue strictly FIFO: a scheduling pass
	// stops at the first job it cannot place instead of letting
	// younger jobs slip past. An ablation of the queue discipline the
	// paper's age-limit mechanism relaxes.
	NoBackfill bool
}

// DefaultConfig returns the paper's settings for a policy.
func DefaultConfig(p Policy) Config {
	return Config{
		Policy:         p,
		Beta:           core.DefaultBeta,
		DefaultAlpha:   0.9,
		AgeLimitSec:    600,
		AgingPeriodSec: 120,
		MaxScale:       8,
	}
}

// JobSpec is one submission.
type JobSpec struct {
	// Program is the catalog name.
	Program string
	// Procs is the requested process count.
	Procs int
	// Alpha is the optional slowdown threshold; 0 means the default.
	Alpha float64
	// Submit is the submission time in seconds.
	Submit float64
	// Priority ranks the job in the queue (higher first; default 0).
	// Aging promotes waiting jobs by one level per AgingPeriodSec.
	Priority int
}

// Scheduler drives one simulated scheduling run.
type Scheduler struct {
	cfg  Config
	spec hw.ClusterSpec
	cat  *app.Catalog
	db   *profiler.DB
	eng  *exec.Engine
	cl   *cluster.State

	idx    *placement.CoreIndex
	search *placement.Search
	queue  *placement.Pending
	byID   map[int]*exec.Job

	done    []*exec.Job
	nextID  int
	drift   *profiler.DriftMonitor
	explore *explorerState
	daemons []*daemon.Daemon
	plans   []daemon.LaunchPlan

	// auditPass, when set, runs the invariant auditor's scheduling-point
	// checks at the top of every schedule() call.
	auditPass func(now float64)
}

// clusterView adapts the cluster bookkeeping to the kernel's NodeView.
// Float readings delegate to the canonical job-ID-ordered summations, so
// kernel decisions are bit-identical to ones computed on cluster.State
// directly.
type clusterView struct{ cl *cluster.State }

func (v clusterView) UsedCores(id int) int        { return v.cl.Nodes[id].UsedCores() }
func (v clusterView) AllocWays(id int) units.Ways { return v.cl.Nodes[id].AllocWays() }
func (v clusterView) AllocBW(id int) units.GBps   { return v.cl.Nodes[id].AllocBW() }
func (v clusterView) FreeWays(id int) units.Ways  { return v.cl.Nodes[id].FreeWays() }
func (v clusterView) FreeBW(id int) units.GBps    { return v.cl.Nodes[id].FreeBW() }
func (v clusterView) FreeMem(id int) float64      { return v.cl.Nodes[id].FreeMem() }
func (v clusterView) FreeIO(id int) units.GBps    { return v.cl.Nodes[id].FreeIO() }

// LaunchPlans returns every node-local actuation issued so far: cpuset
// bindings, CAT masks, MBA caps, and framework launch commands, in issue
// order.
func (s *Scheduler) LaunchPlans() []daemon.LaunchPlan { return s.plans }

// AttachDriftMonitor enables sustained lightweight monitoring (Section
// 5.2): whenever a job happens to run exclusively — the conditions its
// profile was measured under — its final PMU reading is fed to the
// monitor, which can later flag the program for re-profiling.
func (s *Scheduler) AttachDriftMonitor(m *profiler.DriftMonitor) { s.drift = m }

// observeDrift records an exclusive job's metrics into the drift monitor.
func (s *Scheduler) observeDrift(j *exec.Job) {
	if s.drift == nil || !j.Exclusive || j.SpanNodes() != s.minFootprint(j.Procs) {
		return
	}
	m, err := s.eng.JobMetrics(j.ID)
	if err != nil {
		return
	}
	s.drift.Observe(j.Prog.Name, j.Procs, profiler.Reading{
		IPC: m.IPC.Float64(), BWPerNode: m.BWPerNode.Float64(), MissPct: m.MissPct,
	})
}

// New builds a scheduler over a fresh cluster. The profile database may be
// nil for CE/CS, which do not consult profiles.
func New(spec hw.ClusterSpec, cat *app.Catalog, db *profiler.DB, cfg Config) (*Scheduler, error) {
	if cfg.Policy == SNS && db == nil {
		return nil, fmt.Errorf("sched: SNS requires a profile database")
	}
	if cfg.Beta == 0 {
		cfg.Beta = core.DefaultBeta
	}
	if cfg.DefaultAlpha == 0 {
		cfg.DefaultAlpha = 0.9
	}
	if cfg.MaxScale == 0 {
		cfg.MaxScale = 8
	}
	if cfg.AgeLimitSec == 0 {
		cfg.AgeLimitSec = 600
	}
	if cfg.AgingPeriodSec == 0 {
		cfg.AgingPeriodSec = 120
	}
	eng, err := exec.New(spec)
	if err != nil {
		return nil, err
	}
	eng.PhasesOn = cfg.PhasedExecution
	cl, err := cluster.New(spec)
	if err != nil {
		return nil, err
	}
	s := &Scheduler{
		cfg: cfg, spec: spec, cat: cat, db: db, eng: eng, cl: cl,
		idx:  placement.NewCoreIndex(spec.Nodes, spec.Node.Cores.Int()),
		byID: make(map[int]*exec.Job),
		queue: &placement.Pending{
			AgingPeriodSec: cfg.AgingPeriodSec,
			AgeLimitSec:    cfg.AgeLimitSec,
			NoBackfill:     cfg.NoBackfill,
		},
		daemons: make([]*daemon.Daemon, spec.Nodes),
	}
	s.search = &placement.Search{
		View:            clusterView{cl},
		Idx:             s.idx,
		Spec:            spec.Node,
		Nodes:           spec.Nodes,
		Beta:            cfg.Beta,
		MaxScale:        cfg.MaxScale,
		NoGrouping:      cfg.NoGrouping,
		ExclusiveSpread: cfg.ExclusiveSpread,
		HasIntensive:    s.nodeHasIntensive,
		Cache:           placement.NewScoreCache(spec.Nodes, spec.Node.Cores.Int()),
	}
	// Every bookkeeping mutation flows through cluster.State, so hooking
	// its change callback covers all present and future allocation paths
	// (tryPlace's AllocateIO, OnFinish's Release) without per-site wiring.
	cl.OnChange = s.search.Cache.Invalidate
	for i := range s.daemons {
		s.daemons[i] = daemon.New(i, spec.Node)
	}
	eng.OnFinish(func(j *exec.Job) {
		if j.State == exec.Done {
			// Cancelled runs yield no usable measurements.
			if s.explore != nil {
				s.finishTrial(j)
			}
			s.observeDrift(j)
		} else if s.explore != nil {
			// A cancelled trial is abandoned; the next submission
			// retries the same scale.
			delete(s.explore.trials, j.ID)
		}
		s.syncIndex(s.cl.Release(j.ID))
		for _, n := range j.Nodes {
			if err := s.daemons[n].Release(j.ID); err != nil {
				panic(fmt.Sprintf("sched: daemon release: %v", err))
			}
		}
		s.done = append(s.done, j)
		s.schedule()
	})
	if invariant.Active() {
		aud := invariant.New("sched")
		// After every recompute: engine-internal conservation,
		// allocation-free so the zero-alloc hot path stays intact.
		eng.SetAudit(func() { aud.CheckEngine(eng) })
		// At every scheduling point: bookkeeping, index, and the
		// engine/bookkeeping agreement (both sides settled here).
		s.auditPass = func(now float64) {
			aud.ObserveQueue(now, s.queue)
			if !aud.Begin() {
				return
			}
			aud.CheckCluster(s.cl)
			aud.CheckIndex(s.idx)
			aud.CheckIndexAgainstCluster(s.idx, s.cl)
			aud.CheckEngineAgainstCluster(eng, s.cl)
			aud.CheckScoreCache(s.search)
		}
	}
	return s, nil
}

// syncIndex refreshes the free-core index entries of the given nodes from
// the cluster bookkeeping, after every allocation or release.
func (s *Scheduler) syncIndex(nodes []int) {
	for _, id := range nodes {
		s.idx.Update(id, s.cl.Nodes[id].FreeCores())
	}
}

// Engine exposes the underlying execution engine (for monitoring hooks).
func (s *Scheduler) Engine() *exec.Engine { return s.eng }

// Cluster exposes the resource bookkeeping (read-only use intended).
func (s *Scheduler) Cluster() *cluster.State { return s.cl }

// Submit registers a job arriving at spec.Submit.
func (s *Scheduler) Submit(js JobSpec) error {
	prog, err := s.cat.Lookup(js.Program)
	if err != nil {
		return err
	}
	if js.Procs <= 0 {
		return fmt.Errorf("sched: job needs processes, got %d", js.Procs)
	}
	if !prog.MultiNode && js.Procs > s.spec.Node.Cores.Int() {
		return fmt.Errorf("sched: %s is single-node but wants %d processes", js.Program, js.Procs)
	}
	if js.Procs > s.spec.TotalCores() {
		return fmt.Errorf("sched: %d processes exceed cluster capacity %d", js.Procs, s.spec.TotalCores())
	}
	alpha := js.Alpha
	if alpha <= 0 || alpha > 1 {
		alpha = s.cfg.DefaultAlpha
	}
	id := s.nextID
	s.nextID++
	j := &exec.Job{
		ID:     id,
		Prog:   prog,
		Procs:  js.Procs,
		Alpha:  alpha,
		Submit: js.Submit,
	}
	s.byID[id] = j
	priority := js.Priority
	s.eng.Queue().At(js.Submit, func() {
		// The submission index doubles as the rank tie-breaker (FIFO).
		s.queue.Push(id, j.Submit, priority, id)
		s.schedule()
	})
	return nil
}

// Run drives the simulation to completion and returns every finished job
// in completion order. It fails if jobs remain unplaceable when the
// cluster drains (which indicates an impossible request).
func (s *Scheduler) Run() ([]*exec.Job, error) {
	s.eng.Run(0)
	if s.queue.Len() > 0 {
		first, _ := s.queue.First()
		j := s.byID[first.ID]
		return s.done, fmt.Errorf("sched: %d jobs never placed (first: %s/%d procs)",
			s.queue.Len(), j.Prog.Name, j.Procs)
	}
	return s.done, nil
}

// schedule is the scheduling pass run at every scheduling point: job
// arrival and job completion. The kernel queue scans jobs in age-based
// priority order; a job past the age limit blocks younger jobs from
// overtaking it.
func (s *Scheduler) schedule() {
	now := s.eng.Now()
	if s.auditPass != nil {
		s.auditPass(now)
	}
	s.queue.Schedule(now, func(id int) bool {
		return s.tryPlace(s.byID[id])
	})
}

// tryPlace attempts to place and launch one job under the configured
// policy.
func (s *Scheduler) tryPlace(j *exec.Job) bool {
	pl := s.place(j)
	if pl == nil {
		return false
	}
	nodeAllocs := make([]cluster.NodeAlloc, len(pl.nodes))
	for i, n := range pl.nodes {
		nodeAllocs[i] = cluster.NodeAlloc{
			Node:  n,
			Cores: pl.cores[i],
			MemGB: float64(pl.cores[i]) * j.Prog.MemGBPerProc,
		}
	}
	if err := s.cl.AllocateIO(j.ID, nodeAllocs, pl.ways, pl.bw, pl.ioBW, pl.exclusive); err != nil {
		// Placement search and bookkeeping disagree: a programming
		// error worth failing loudly on.
		panic(fmt.Sprintf("sched: placement rejected by bookkeeping: %v", err))
	}
	s.syncIndex(pl.nodes)
	j.Nodes = pl.nodes
	j.CoresByNode = pl.cores
	j.Ways = pl.ways
	j.BWCap = pl.bwCap
	j.Exclusive = pl.exclusive
	// Per-node actuation: bind cores, program CAT and MBA, build the
	// framework launch line. The daemons double as an independent
	// consistency check on the placement search.
	for i, n := range pl.nodes {
		plan, err := s.daemons[n].Actuate(j.ID, j.Prog, pl.cores[i], pl.ways.Int(), pl.bwCap.Float64())
		if err != nil {
			panic(fmt.Sprintf("sched: daemon rejected placement: %v", err))
		}
		s.plans = append(s.plans, *plan)
	}
	if err := s.eng.Launch(j); err != nil {
		panic(fmt.Sprintf("sched: engine rejected placement: %v", err))
	}
	if pl.trialK > 0 && s.explore != nil {
		s.startTrialInstrumentation(j, pl.trialK)
	}
	return true
}

// decision is a policy's placement choice in the scheduler's terms.
type decision struct {
	nodes     []int
	cores     []int
	ways      units.Ways
	bw        units.GBps
	ioBW      units.GBps
	bwCap     units.GBps
	exclusive bool
	// trialK marks a piggy-backed profiling trial at that scale.
	trialK int
}

// fromPlan converts a kernel plan.
func fromPlan(pl *placement.Plan) *decision {
	if pl == nil {
		return nil
	}
	return &decision{
		nodes: pl.Nodes, cores: pl.Cores,
		ways: pl.Ways, bw: pl.BW, ioBW: pl.IOBW,
		exclusive: pl.Exclusive,
	}
}

// minFootprint returns the CE node count for a process count.
func (s *Scheduler) minFootprint(procs int) int {
	return (procs + s.spec.Node.Cores.Int() - 1) / s.spec.Node.Cores.Int()
}

// scaleRunnable reports whether the program can run spread over n nodes.
func scaleRunnable(prog *app.Model, procs, n int) bool {
	return placement.ScaleRunnable(procs, n, prog.MultiNode, prog.PowerOf2)
}

// request translates a job into the kernel's request shape.
func (s *Scheduler) request(j *exec.Job) placement.Request {
	return placement.Request{
		Procs:        j.Procs,
		BaseNodes:    s.minFootprint(j.Procs),
		MemGBPerProc: j.Prog.MemGBPerProc,
		Alpha:        j.Alpha,
		MultiNode:    j.Prog.MultiNode,
		PowerOf2:     j.Prog.PowerOf2,
	}
}

// place runs the configured policy's kernel search.
func (s *Scheduler) place(j *exec.Job) *decision {
	req := s.request(j)
	switch s.cfg.Policy {
	case CE, CS:
		return fromPlan(s.search.Place(s.cfg.Policy, req))
	case SNS:
		return s.placeSNS(j, req)
	case TwoSlot:
		req.Intensive = s.bwIntensive(j)
		return fromPlan(s.search.Place(TwoSlot, req))
	}
	return nil
}

// placeSNS looks up the job's profile and runs the kernel's demand→scale
// search (the Figure 11 process). Jobs without a profile fall back to
// CS-style placement (their first runs double as profiling runs in a
// production deployment) — or, with piggy-backed profiling attached,
// become the program's next exploration trial.
func (s *Scheduler) placeSNS(j *exec.Job, req placement.Request) *decision {
	prof, ok := s.db.Get(j.Prog.Name, j.Procs)
	if !ok {
		if s.explore != nil {
			if pl, trial := s.placeTrial(j); trial {
				return pl
			}
		}
		return fromPlan(s.search.Place(CS, req))
	}
	req.Profile = prof
	pl := s.search.Place(SNS, req)
	if pl == nil {
		return nil
	}
	d := fromPlan(pl)
	if s.cfg.UseMBA && !pl.Exclusive {
		d.bwCap = s.spec.Node.MBACap(pl.BW)
	}
	return d
}
