package sched

import (
	"testing"

	"spreadnshare/internal/exec"
	"spreadnshare/internal/profiler"
)

// TestFig08PolicyLayouts recreates the paper's Figure 8: a 32-process job
// A on 28-core nodes under the alternative policies.
//
//	CE  (1x, E): 2 nodes, 16 cores each, exclusive -> 24 cores idle.
//	CS  (1x, S): same footprint, but other jobs fill the idle cores.
//	SNS (2x, S): A spreads to 4 nodes x 8 cores and shares them.
func TestFig08PolicyLayouts(t *testing.T) {
	spec, cat, db := testSetup(t)

	submitA := func(s *Scheduler) {
		t.Helper()
		// WC is flexible (non-power-of-2, multi-node) like the
		// figure's job A.
		if err := s.Submit(JobSpec{Program: "WC", Procs: 32}); err != nil {
			t.Fatal(err)
		}
	}
	fillers := func(s *Scheduler, n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			if err := s.Submit(JobSpec{Program: "EP", Procs: 8}); err != nil {
				t.Fatal(err)
			}
		}
	}
	run := func(p Policy) (*exec.Job, []*exec.Job) {
		t.Helper()
		s, err := New(spec, cat, db, DefaultConfig(p))
		if err != nil {
			t.Fatal(err)
		}
		submitA(s)
		fillers(s, 3)
		jobs, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		var a *exec.Job
		var rest []*exec.Job
		for _, j := range jobs {
			if j.Procs == 32 {
				a = j
			} else {
				rest = append(rest, j)
			}
		}
		if a == nil {
			t.Fatal("job A missing")
		}
		return a, rest
	}

	// CE: minimum footprint, exclusive; fillers cannot share A's nodes.
	a, rest := run(CE)
	if a.SpanNodes() != 2 || !a.Exclusive {
		t.Errorf("CE layout: A on %d nodes exclusive=%v, want 2 nodes exclusive", a.SpanNodes(), a.Exclusive)
	}
	for _, f := range rest {
		for _, fn := range f.Nodes {
			for _, an := range a.Nodes {
				if fn == an && f.Start < a.Finish && a.Start < f.Finish {
					t.Errorf("CE: filler %d shares node %d with exclusive A", f.ID, fn)
				}
			}
		}
	}

	// CS: same compact footprint but shared; with 8 idle nodes the
	// fillers start immediately.
	a, _ = run(CS)
	if a.SpanNodes() != 2 || a.Exclusive {
		t.Errorf("CS layout: A on %d nodes exclusive=%v, want 2 shared nodes", a.SpanNodes(), a.Exclusive)
	}

	// SNS: A is neutral-classed WC, so it stays compact unless
	// resources force otherwise — Figure 8's "2x,S" arises for scaling
	// programs. Use TS (scaling, flexible) as a scaling job A.
	k := profiler.New(spec)
	if err := k.ProfileAll(cat, []string{"TS"}, 32, db); err != nil {
		t.Fatal(err)
	}
	s, err := New(spec, cat, db, DefaultConfig(SNS))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Submit(JobSpec{Program: "TS", Procs: 32}); err != nil {
		t.Fatal(err)
	}
	fillers(s, 3)
	jobs, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	var ts *exec.Job
	for _, j := range jobs {
		if j.Procs == 32 {
			ts = j
		}
	}
	if ts.SpanNodes() < 4 {
		t.Errorf("SNS layout: scaling job A on %d nodes, want spread (>= 4)", ts.SpanNodes())
	}
	if ts.Exclusive {
		t.Error("SNS layout: A exclusive, want shared")
	}
}
