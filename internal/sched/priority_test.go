package sched

import (
	"testing"

	"spreadnshare/internal/exec"
)

// TestPriorityOvertakesFIFO: on a full cluster, a high-priority submission
// entering the queue behind low-priority ones starts first once resources
// free.
func TestPriorityOvertakesFIFO(t *testing.T) {
	spec, cat, db := testSetup(t)
	s, err := New(spec, cat, db, DefaultConfig(CE))
	if err != nil {
		t.Fatal(err)
	}
	// Fill all 8 nodes: seven long GAN jobs (900 s) and one short EP
	// (75 s), so exactly one node frees early.
	for i := 0; i < 7; i++ {
		if err := s.Submit(JobSpec{Program: "GAN", Procs: 16}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Submit(JobSpec{Program: "EP", Procs: 16}); err != nil {
		t.Fatal(err)
	}
	// Two more queue up: a normal one first, then an urgent one.
	if err := s.Submit(JobSpec{Program: "HC", Procs: 16}); err != nil {
		t.Fatal(err)
	}
	if err := s.Submit(JobSpec{Program: "WC", Procs: 16, Priority: 10}); err != nil {
		t.Fatal(err)
	}
	jobs, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	var hc, wc *exec.Job
	for _, j := range jobs {
		switch j.Prog.Name {
		case "HC":
			hc = j
		case "WC":
			wc = j
		}
	}
	if wc.Start >= hc.Start {
		t.Errorf("priority job started at %.1f, after normal job at %.1f", wc.Start, hc.Start)
	}
}

// TestAgingPromotesStarvedJob: a low-priority job submitted early must
// eventually overtake a stream of fresher high-priority submissions once
// its age outgrows their priority edge.
func TestAgingPromotesStarvedJob(t *testing.T) {
	spec, cat, db := testSetup(t)
	spec.Nodes = 1
	cfg := DefaultConfig(CE)
	cfg.AgingPeriodSec = 60 // one level per minute
	s, err := New(spec, cat, db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Occupy the single node.
	if err := s.Submit(JobSpec{Program: "EP", Procs: 16}); err != nil {
		t.Fatal(err)
	}
	// The victim: low priority, submitted immediately.
	if err := s.Submit(JobSpec{Program: "HC", Procs: 16, Priority: 0, Submit: 1}); err != nil {
		t.Fatal(err)
	}
	// Rivals: priority 2, arriving later. EP runs 75 s, so by the time
	// the node frees the victim has aged 74 s > 2 levels x 60 s? No:
	// 74/60 = 1.23 levels + 0 base = 1.23 < rival rank 2 + fresh age.
	// First rival wins; during its ~75 s run the victim ages past the
	// second rival (aged rank ~2.5 vs 2 + small age).
	if err := s.Submit(JobSpec{Program: "EP", Procs: 16, Priority: 2, Submit: 2}); err != nil {
		t.Fatal(err)
	}
	if err := s.Submit(JobSpec{Program: "EP", Procs: 16, Priority: 2, Submit: 140}); err != nil {
		t.Fatal(err)
	}
	jobs, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	var victim *exec.Job
	var lastRival *exec.Job
	for _, j := range jobs {
		if j.Prog.Name == "HC" {
			victim = j
		}
		if j.Prog.Name == "EP" && j.Submit == 140 {
			lastRival = j
		}
	}
	if victim.Start >= lastRival.Start {
		t.Errorf("aging failed: starved job started %.1f, after late rival %.1f",
			victim.Start, lastRival.Start)
	}
}

// TestEqualPriorityStaysFIFO: without priorities the aging term is equal
// in expectation and submission order rules.
func TestEqualPriorityStaysFIFO(t *testing.T) {
	spec, cat, db := testSetup(t)
	s, err := New(spec, cat, db, DefaultConfig(CE))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		if err := s.Submit(JobSpec{Program: "MG", Procs: 16}); err != nil {
			t.Fatal(err)
		}
	}
	jobs, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	starts := make(map[int]float64)
	for _, j := range jobs {
		starts[j.ID] = j.Start
	}
	for id := 1; id < 12; id++ {
		if starts[id] < starts[id-1]-1e-9 {
			t.Errorf("job %d started before job %d", id, id-1)
		}
	}
}

// TestNoBackfillStrictFIFO: with backfill disabled, a small job cannot
// slip past a blocked big one even when it would fit.
func TestNoBackfillStrictFIFO(t *testing.T) {
	spec, cat, db := testSetup(t)
	run := func(noBackfill bool) (smallStart, bigStart float64) {
		cfg := DefaultConfig(CE)
		cfg.NoBackfill = noBackfill
		s, err := New(spec, cat, db, cfg)
		if err != nil {
			t.Fatal(err)
		}
		// Seven nodes taken by long jobs; the eighth by a short one.
		for i := 0; i < 7; i++ {
			if err := s.Submit(JobSpec{Program: "GAN", Procs: 28}); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Submit(JobSpec{Program: "EP", Procs: 16}); err != nil {
			t.Fatal(err)
		}
		// A 32-proc job needs two idle nodes: blocked until two GANs end.
		if err := s.Submit(JobSpec{Program: "WC", Procs: 32}); err != nil {
			t.Fatal(err)
		}
		// A small job that could backfill onto the node EP frees.
		if err := s.Submit(JobSpec{Program: "HC", Procs: 16}); err != nil {
			t.Fatal(err)
		}
		jobs, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		for _, j := range jobs {
			switch {
			case j.Prog.Name == "HC":
				smallStart = j.Start
			case j.Prog.Name == "WC":
				bigStart = j.Start
			}
		}
		return smallStart, bigStart
	}
	small, big := run(false)
	if small >= big {
		t.Errorf("with backfill, small job (%.0f) did not slip past blocked big job (%.0f)", small, big)
	}
	small, big = run(true)
	if small < big {
		t.Errorf("without backfill, small job (%.0f) overtook blocked big job (%.0f)", small, big)
	}
}
