package sched

import (
	"testing"

	"spreadnshare/internal/exec"
	"spreadnshare/internal/profiler"
)

// TestPiggybackProfilingEndToEnd: submit an unprofiled program repeatedly;
// its first runs double as exploration trials (exclusive, at growing
// scale), after which a classified profile lands in the database and SNS
// placement takes over.
func TestPiggybackProfilingEndToEnd(t *testing.T) {
	spec, cat, _ := testSetup(t)
	db := profiler.NewDB() // empty: nothing pre-profiled
	s, err := New(spec, cat, db, DefaultConfig(SNS))
	if err != nil {
		t.Fatal(err)
	}
	s.AttachExplorer(profiler.NewExplorer(), nil, 0)

	// Six recurring submissions of the bandwidth-bound BW program,
	// back to back (each submitted when the previous finishes, like a
	// production recurring job).
	const runs = 6
	count := 1
	s.Engine().OnFinish(func(j *exec.Job) {
		if count < runs {
			count++
			if err := s.Submit(JobSpec{Program: "BW", Procs: 16, Submit: s.Engine().Now()}); err != nil {
				t.Errorf("resubmit: %v", err)
			}
		}
	})
	if err := s.Submit(JobSpec{Program: "BW", Procs: 16}); err != nil {
		t.Fatal(err)
	}
	jobs, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != runs {
		t.Fatalf("finished %d runs, want %d", len(jobs), runs)
	}

	// The trials must have explored growing scales: 1, 2, 4, 8.
	wantScale := []int{1, 2, 4, 8}
	for i, j := range jobs {
		if i < len(wantScale) {
			if j.SpanNodes() != wantScale[i] {
				t.Errorf("trial %d ran on %d nodes, want %d", i, j.SpanNodes(), wantScale[i])
			}
			if !j.Exclusive {
				t.Errorf("trial %d not exclusive", i)
			}
		}
	}

	// After the four trials, the profile exists and classifies BW as
	// scaling with sensible curves.
	p, ok := db.Get("BW", 16)
	if !ok {
		t.Fatal("no profile assembled after exploration")
	}
	if p.Class != profiler.Scaling {
		t.Errorf("BW classified %v, want scaling", p.Class)
	}
	if len(p.Scales) != 4 {
		t.Errorf("profile has %d scales, want 4", len(p.Scales))
	}
	base, _ := p.AtK(1)
	if base.IPCAt(20) <= 0 || base.BWAt(20) <= 0 {
		t.Error("assembled curves empty")
	}
	// Post-exploration runs use the profile: non-exclusive SNS
	// placement with a CAT allocation.
	last := jobs[len(jobs)-1]
	if last.Exclusive {
		t.Error("post-exploration run still exclusive")
	}
	if last.Ways == 0 {
		t.Error("post-exploration run has no CAT allocation")
	}
}

// TestExplorerSkipsInfeasibleScales: a single-node program explores only
// k=1 and still gets a profile.
func TestExplorerSkipsInfeasibleScales(t *testing.T) {
	spec, cat, _ := testSetup(t)
	db := profiler.NewDB()
	s, err := New(spec, cat, db, DefaultConfig(SNS))
	if err != nil {
		t.Fatal(err)
	}
	s.AttachExplorer(profiler.NewExplorer(), nil, 0)
	if err := s.Submit(JobSpec{Program: "GAN", Procs: 16}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	p, ok := db.Get("GAN", 16)
	if !ok {
		t.Fatal("single-node program never profiled")
	}
	if len(p.Scales) != 1 || p.Scales[0].K != 1 {
		t.Errorf("GAN profile scales = %d, want only k=1", len(p.Scales))
	}
	if p.Class != profiler.Neutral {
		t.Errorf("GAN class %v, want neutral", p.Class)
	}
}

// TestExplorerAPI covers the state machine directly.
func TestExplorerAPI(t *testing.T) {
	e := profiler.NewExplorer()
	k, ok := e.NextTrial("X", 16)
	if !ok || k != 1 {
		t.Fatalf("first trial = %d, %v; want 1, true", k, ok)
	}
	if err := e.RecordTrial("X", 16, profiler.ScaleProfile{K: 2, TimeSec: 100}); err == nil {
		t.Error("out-of-order trial accepted")
	}
	if err := e.RecordTrial("X", 16, profiler.ScaleProfile{K: 1, TimeSec: 100}); err != nil {
		t.Fatal(err)
	}
	// Saturation: 2x much slower than 1x stops exploration.
	k, ok = e.NextTrial("X", 16)
	if !ok || k != 2 {
		t.Fatalf("second trial = %d, %v", k, ok)
	}
	if err := e.RecordTrial("X", 16, profiler.ScaleProfile{K: 2, TimeSec: 200}); err != nil {
		t.Fatal(err)
	}
	if !e.Done("X", 16) {
		t.Error("saturated exploration not done")
	}
	p, err := e.Finish("X", 16)
	if err != nil {
		t.Fatal(err)
	}
	if p.Class != profiler.Compact {
		t.Errorf("class %v, want compact (2x was 2x slower)", p.Class)
	}
	// Finishing again fails (state cleared).
	if _, err := e.Finish("X", 16); err == nil {
		t.Error("double Finish succeeded")
	}
	if err := e.RecordTrial("Y", 16, profiler.ScaleProfile{K: 1}); err == nil {
		t.Error("RecordTrial without exploration succeeded")
	}
}
