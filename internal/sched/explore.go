package sched

import (
	"fmt"

	"spreadnshare/internal/exec"
	"spreadnshare/internal/profiler"
	"spreadnshare/internal/units"
)

// Piggy-backed profiling (Section 4.2): with an Explorer attached, a job
// whose program has no profile is not scheduled CS-style; instead its run
// *is* the next profiling trial — placed exclusively at the exploration's
// current scale factor with the LLC-rotation instrumentation attached.
// When the exploration completes, the assembled profile enters the
// database and subsequent submissions are placed by the normal SNS path.

// explorerState carries the instrumentation configuration.
type explorerState struct {
	ex         *profiler.Explorer
	sampleWays []int
	episodeSec float64
	// trials maps a running trial job to its scale factor and sample
	// accumulators.
	trials map[int]*trialRun
}

type trialRun struct {
	k          int
	ipc, bw, m map[int]*acc
}

type acc struct {
	sum   float64
	count int
}

// AttachExplorer enables piggy-backed profiling for unprofiled programs
// under SNS. Sample ways and the episode length default to the paper's
// {2, 4, 8, full} at 5 s when zero values are passed.
func (s *Scheduler) AttachExplorer(ex *profiler.Explorer, sampleWays []int, episodeSec float64) {
	if len(sampleWays) == 0 {
		sampleWays = []int{2, 4, 8, s.spec.Node.LLCWays.Int()}
	}
	if episodeSec <= 0 {
		episodeSec = 5
	}
	s.explore = &explorerState{
		ex:         ex,
		sampleWays: sampleWays,
		episodeSec: episodeSec,
		trials:     make(map[int]*trialRun),
	}
}

// placeTrial attempts to place an unprofiled job as its program's next
// exploration trial: exclusive nodes at the trial scale. It returns nil
// (with trial=false) when exploration is over or the scale cannot run,
// letting the caller fall back; it returns nil with trial=true when the
// trial placement simply does not fit right now.
func (s *Scheduler) placeTrial(j *exec.Job) (pl *decision, trial bool) {
	st := s.explore
	for {
		k, ok := st.ex.NextTrial(j.Prog.Name, j.Procs)
		if !ok {
			return nil, false
		}
		n := k * s.minFootprint(j.Procs)
		if n > s.spec.Nodes || !scaleRunnable(j.Prog, j.Procs, n) {
			st.ex.SkipTrial(j.Prog.Name, j.Procs)
			continue
		}
		idle := s.cl.IdleNodes()
		if len(idle) < n {
			return nil, true
		}
		return &decision{
			nodes:     idle[:n],
			cores:     exec.EvenSplit(j.Procs, n),
			exclusive: true,
			trialK:    k,
		}, true
	}
}

// startTrialInstrumentation attaches the LLC-rotation sampling to a
// freshly launched trial job.
func (s *Scheduler) startTrialInstrumentation(j *exec.Job, k int) {
	st := s.explore
	tr := &trialRun{
		k:   k,
		ipc: make(map[int]*acc), bw: make(map[int]*acc), m: make(map[int]*acc),
	}
	st.trials[j.ID] = tr
	idx := 0
	var episode func()
	episode = func() {
		if j.State != exec.Running {
			return
		}
		ways := st.sampleWays[idx%len(st.sampleWays)]
		idx++
		if err := s.eng.SetJobWays(j.ID, units.WaysOf(ways)); err != nil {
			return
		}
		s.eng.Queue().At(s.eng.Now()+st.episodeSec/2, func() {
			if j.State != exec.Running {
				return
			}
			metrics, err := s.eng.JobMetrics(j.ID)
			if err != nil {
				return
			}
			add := func(mm map[int]*acc, v float64) {
				a := mm[ways]
				if a == nil {
					a = &acc{}
					mm[ways] = a
				}
				a.sum += v
				a.count++
			}
			add(tr.ipc, metrics.IPC.Float64())
			add(tr.bw, metrics.BWPerNode.Float64())
			add(tr.m, metrics.MissPct)
		})
		s.eng.Queue().At(s.eng.Now()+st.episodeSec, episode)
	}
	s.eng.Queue().At(s.eng.Now(), episode)
}

// finishTrial records a completed trial and, when exploration is done,
// assembles the profile into the database.
func (s *Scheduler) finishTrial(j *exec.Job) {
	st := s.explore
	tr, ok := st.trials[j.ID]
	if !ok {
		return
	}
	delete(st.trials, j.ID)
	avg := func(mm map[int]*acc) map[int]float64 {
		out := make(map[int]float64, len(mm))
		for w, a := range mm {
			if a.count > 0 {
				out[w] = a.sum / float64(a.count)
			}
		}
		return out
	}
	maxW := s.spec.Node.LLCWays.Int()
	sp := profiler.ScaleProfile{
		K:            tr.k,
		Nodes:        j.SpanNodes(),
		CoresPerNode: j.CoresByNode[0],
		TimeSec:      j.RunTime(),
		IPCByWay:     profiler.Interpolate(avg(tr.ipc), maxW),
		BWByWay:      profiler.Interpolate(avg(tr.bw), maxW),
		MissByWay:    profiler.Interpolate(avg(tr.m), maxW),
	}
	if err := st.ex.RecordTrial(j.Prog.Name, j.Procs, sp); err != nil {
		panic(fmt.Sprintf("sched: trial bookkeeping: %v", err))
	}
	// Skip scales this program can never run at (framework or cluster
	// limits), so exploration concludes without waiting for futile
	// submissions.
	for {
		k, ok := st.ex.NextTrial(j.Prog.Name, j.Procs)
		if !ok {
			break
		}
		n := k * s.minFootprint(j.Procs)
		if n <= s.spec.Nodes && scaleRunnable(j.Prog, j.Procs, n) {
			break
		}
		st.ex.SkipTrial(j.Prog.Name, j.Procs)
	}
	if st.ex.Done(j.Prog.Name, j.Procs) {
		p, err := st.ex.Finish(j.Prog.Name, j.Procs)
		if err != nil {
			panic(fmt.Sprintf("sched: trial assembly: %v", err))
		}
		s.db.Put(p)
	}
}
