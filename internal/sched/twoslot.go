package sched

import (
	"spreadnshare/internal/cluster"
	"spreadnshare/internal/exec"
)

// The TwoSlot policy reimplements the co-scheduling approach of the
// paper's closest related work (ClavisMO, Poncos — Section 7): each
// physical node is statically divided into two half-node slots; jobs are
// classified into shared-resource *intensive* and *non-intensive* groups,
// and a node may host at most one intensive job, pairing it with a
// non-intensive one to dampen contention. Unlike SNS it neither scales
// jobs nor partitions the cache, and its two-slot granularity is rigid —
// which is exactly the contrast the paper draws.

// bwIntensive classifies a job from its profile: a job whose compact-run
// bandwidth drains more than a third of the node's peak (or, without a
// profile, whose model says so) is shared-resource intensive.
func (s *Scheduler) bwIntensive(j *exec.Job) bool {
	if s.db != nil {
		if p, ok := s.db.Get(j.Prog.Name, j.Procs); ok {
			if base, ok := p.AtK(1); ok {
				return base.BWAt(base.FullWays()) > s.spec.Node.PeakBandwidth/3
			}
		}
	}
	return j.Prog.BWPerCoreRef*float64(minInt(j.Procs, s.spec.Node.Cores)) >
		s.spec.Node.PeakBandwidth/3
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// placeTwoSlot places a job into half-node slots: the job takes
// ceil(procs/halfCores) slots, at most one intensive job per node.
func (s *Scheduler) placeTwoSlot(j *exec.Job) *placement {
	half := s.spec.Node.Cores / 2
	slots := (j.Procs + half - 1) / half
	intensive := s.bwIntensive(j)

	// A node can contribute a slot if it has a free half (by cores and
	// memory) and, for intensive jobs, hosts no intensive job yet.
	memPerSlot := float64(half) * j.Prog.MemGBPerProc
	var candidates []int
	for _, node := range s.cl.Nodes {
		if node.FreeCores() < half || node.FreeMem() < memPerSlot {
			continue
		}
		if intensive && s.nodeHasIntensive(node) {
			continue
		}
		// A node offers one or two slots; count it once per free half.
		free := node.FreeCores() / half
		if memPerSlot > 0 {
			if byMem := int(node.FreeMem() / memPerSlot); byMem < free {
				free = byMem
			}
		}
		if intensive && free > 0 {
			free = 1 // at most one intensive slot per node
		}
		for k := 0; k < free && len(candidates) < slots; k++ {
			candidates = append(candidates, node.ID)
		}
		if len(candidates) == slots {
			break
		}
	}
	if len(candidates) < slots {
		return nil
	}
	// Merge repeated node ids into per-node core counts.
	perNode := map[int]int{}
	var order []int
	for _, id := range candidates {
		if perNode[id] == 0 {
			order = append(order, id)
		}
		perNode[id] += half
	}
	nodes := make([]int, 0, len(order))
	cores := make([]int, 0, len(order))
	remaining := j.Procs
	for _, id := range order {
		take := perNode[id]
		if take > remaining {
			take = remaining
		}
		nodes = append(nodes, id)
		cores = append(cores, take)
		remaining -= take
	}
	if remaining > 0 {
		return nil
	}
	if !scaleRunnable(j.Prog, j.Procs, len(nodes)) {
		return nil
	}
	return &placement{nodes: nodes, cores: cores}
}

// nodeHasIntensive reports whether any job on the node is classified
// intensive.
func (s *Scheduler) nodeHasIntensive(node *cluster.Node) bool {
	for _, id := range node.Jobs() {
		if j, ok := s.eng.Job(id); ok && s.bwIntensive(j) {
			return true
		}
	}
	return false
}
