package sched

import (
	"spreadnshare/internal/exec"
)

// The TwoSlot policy reimplements the co-scheduling approach of the
// paper's closest related work (ClavisMO, Poncos — Section 7): each
// physical node is statically divided into two half-node slots; jobs are
// classified into shared-resource *intensive* and *non-intensive* groups,
// and a node may host at most one intensive job, pairing it with a
// non-intensive one to dampen contention. Unlike SNS it neither scales
// jobs nor partitions the cache, and its two-slot granularity is rigid —
// which is exactly the contrast the paper draws. The slot search itself
// lives in the placement kernel; this file keeps the job classification,
// which needs the profile database and the engine's running-job table.

// bwIntensive classifies a job from its profile: a job whose compact-run
// bandwidth drains more than a third of the node's peak (or, without a
// profile, whose model says so) is shared-resource intensive.
func (s *Scheduler) bwIntensive(j *exec.Job) bool {
	if s.db != nil {
		if p, ok := s.db.Get(j.Prog.Name, j.Procs); ok {
			if base, ok := p.AtK(1); ok {
				return base.BWAt(base.FullWays()) > s.spec.Node.PeakBandwidth.Float64()/3
			}
		}
	}
	return j.Prog.BWPerCoreRef*float64(minInt(j.Procs, s.spec.Node.Cores.Int())) >
		s.spec.Node.PeakBandwidth.Float64()/3
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// nodeHasIntensive reports whether any job on the node is classified
// intensive.
func (s *Scheduler) nodeHasIntensive(id int) bool {
	for _, jid := range s.cl.Nodes[id].Jobs() {
		if j, ok := s.eng.Job(jid); ok && s.bwIntensive(j) {
			return true
		}
	}
	return false
}
