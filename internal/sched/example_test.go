package sched_test

import (
	"fmt"
	"log"

	"spreadnshare/internal/app"
	"spreadnshare/internal/hw"
	"spreadnshare/internal/profiler"
	"spreadnshare/internal/sched"
)

// A complete SNS scheduling run: profile, submit, run, inspect. The
// bandwidth-bound MG spreads out while the neutral HC stays compact.
func Example() {
	spec := hw.DefaultClusterSpec()
	cat, err := app.NewCatalog(spec.Node)
	if err != nil {
		log.Fatal(err)
	}
	db := profiler.NewDB()
	if err := profiler.New(spec).ProfileAll(cat, []string{"MG", "HC"}, 16, db); err != nil {
		log.Fatal(err)
	}
	s, err := sched.New(spec, cat, db, sched.DefaultConfig(sched.SNS))
	if err != nil {
		log.Fatal(err)
	}
	if err := s.Submit(sched.JobSpec{Program: "MG", Procs: 16}); err != nil {
		log.Fatal(err)
	}
	if err := s.Submit(sched.JobSpec{Program: "HC", Procs: 16}); err != nil {
		log.Fatal(err)
	}
	jobs, err := s.Run()
	if err != nil {
		log.Fatal(err)
	}
	for _, j := range jobs {
		fmt.Printf("%s: %d node(s), %d LLC ways\n", j.Prog.Name, j.SpanNodes(), j.Ways)
	}
	// Output:
	// MG: 8 node(s), 2 LLC ways
	// HC: 1 node(s), 2 LLC ways
}
