package sched

import (
	"math"
	"testing"

	"spreadnshare/internal/app"
	"spreadnshare/internal/exec"
	"spreadnshare/internal/hw"
	"spreadnshare/internal/profiler"
	"spreadnshare/internal/stats"
)

// testDB profiles the programs used by these tests once.
var sharedDB *profiler.DB

func testSetup(t *testing.T) (hw.ClusterSpec, *app.Catalog, *profiler.DB) {
	t.Helper()
	spec := hw.DefaultClusterSpec()
	cat, err := app.NewCatalog(spec.Node)
	if err != nil {
		t.Fatal(err)
	}
	if sharedDB == nil {
		sharedDB = profiler.NewDB()
		k := profiler.New(spec)
		if err := k.ProfileAll(cat, app.ProgramNames, 16, sharedDB); err != nil {
			t.Fatal(err)
		}
		if err := k.ProfileAll(cat, []string{"BW", "HC", "WC", "TS", "GAN"}, 28, sharedDB); err != nil {
			t.Fatal(err)
		}
	}
	return spec, cat, sharedDB
}

func runPolicy(t *testing.T, p Policy, seq []JobSpec) []*exec.Job {
	t.Helper()
	spec, cat, db := testSetup(t)
	s, err := New(spec, cat, db, DefaultConfig(p))
	if err != nil {
		t.Fatal(err)
	}
	for _, js := range seq {
		if err := s.Submit(js); err != nil {
			t.Fatalf("Submit(%+v): %v", js, err)
		}
	}
	jobs, err := s.Run()
	if err != nil {
		t.Fatalf("%v run: %v", p, err)
	}
	return jobs
}

func turnarounds(jobs []*exec.Job) []float64 {
	out := make([]float64, len(jobs))
	for i, j := range jobs {
		out[i] = j.Turnaround()
	}
	return out
}

func TestCEExclusiveMinimumFootprint(t *testing.T) {
	jobs := runPolicy(t, CE, []JobSpec{
		{Program: "MG", Procs: 16},
		{Program: "EP", Procs: 16},
	})
	if len(jobs) != 2 {
		t.Fatalf("finished %d jobs, want 2", len(jobs))
	}
	for _, j := range jobs {
		if j.SpanNodes() != 1 {
			t.Errorf("CE spread job %s onto %d nodes, want 1", j.Prog.Name, j.SpanNodes())
		}
		if !j.Exclusive {
			t.Errorf("CE job %s not exclusive", j.Prog.Name)
		}
		if j.WaitTime() != 0 {
			t.Errorf("CE job %s waited %g s with 8 idle nodes", j.Prog.Name, j.WaitTime())
		}
	}
}

func TestCEQueuesWhenFull(t *testing.T) {
	// Nine 16-proc jobs on 8 nodes under CE: the ninth must wait for the
	// first completion.
	seq := make([]JobSpec, 9)
	for i := range seq {
		seq[i] = JobSpec{Program: "EP", Procs: 16}
	}
	jobs := runPolicy(t, CE, seq)
	waited := 0
	for _, j := range jobs {
		if j.WaitTime() > 0 {
			waited++
		}
	}
	if waited != 1 {
		t.Errorf("%d jobs waited, want exactly 1", waited)
	}
}

func TestCSSharesNodes(t *testing.T) {
	// Two 16-proc EP jobs fit on two nodes under CE but CS may pack
	// them more tightly; at minimum they start immediately and are not
	// exclusive.
	jobs := runPolicy(t, CS, []JobSpec{
		{Program: "EP", Procs: 16},
		{Program: "EP", Procs: 16},
		{Program: "EP", Procs: 16},
	})
	for _, j := range jobs {
		if j.Exclusive {
			t.Errorf("CS job %d exclusive", j.ID)
		}
		if j.WaitTime() != 0 {
			t.Errorf("CS job %d waited %g s", j.ID, j.WaitTime())
		}
	}
}

func TestCSPrefersCompactThenSpreads(t *testing.T) {
	spec, cat, db := testSetup(t)
	s, err := New(spec, cat, db, DefaultConfig(CS))
	if err != nil {
		t.Fatal(err)
	}
	// Fill every node to 8 free cores with 20-proc jobs.
	for i := 0; i < 8; i++ {
		if err := s.Submit(JobSpec{Program: "HC", Procs: 20}); err != nil {
			t.Fatal(err)
		}
	}
	// A 16-proc WC job cannot fit at k=1 (needs 16 free on one node),
	// so CS must spread it over 2 nodes x 8 cores.
	if err := s.Submit(JobSpec{Program: "WC", Procs: 16}); err != nil {
		t.Fatal(err)
	}
	jobs, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	var wc *exec.Job
	for _, j := range jobs {
		if j.Prog.Name == "WC" {
			wc = j
		}
	}
	if wc == nil {
		t.Fatal("WC job missing")
	}
	if wc.SpanNodes() != 2 {
		t.Errorf("CS placed blocked WC on %d nodes, want 2 (lowest feasible scale)", wc.SpanNodes())
	}
	if wc.WaitTime() != 0 {
		t.Errorf("WC waited %g s; CS should spread instead of waiting", wc.WaitTime())
	}
}

func TestSNSSpreadsScalingJob(t *testing.T) {
	jobs := runPolicy(t, SNS, []JobSpec{{Program: "MG", Procs: 16}})
	j := jobs[0]
	if j.SpanNodes() < 2 {
		t.Errorf("SNS ran scaling job MG on %d nodes, want its ideal spread", j.SpanNodes())
	}
	if j.Ways <= 0 {
		t.Errorf("SNS job has no CAT allocation")
	}
}

func TestSNSKeepsCompactJobCompact(t *testing.T) {
	jobs := runPolicy(t, SNS, []JobSpec{{Program: "BFS", Procs: 16}})
	if got := jobs[0].SpanNodes(); got != 1 {
		t.Errorf("SNS spread compact job BFS onto %d nodes, want 1", got)
	}
}

func TestSNSFasterThanCEOnScalingMix(t *testing.T) {
	seq := []JobSpec{
		{Program: "MG", Procs: 16}, {Program: "BW", Procs: 16},
		{Program: "LU", Procs: 16}, {Program: "HC", Procs: 16},
		{Program: "EP", Procs: 16}, {Program: "TS", Procs: 16},
		{Program: "MG", Procs: 16}, {Program: "HC", Procs: 16},
		{Program: "BW", Procs: 16}, {Program: "EP", Procs: 16},
		{Program: "LU", Procs: 16}, {Program: "TS", Procs: 16},
	}
	ce := stats.Throughput(turnarounds(runPolicy(t, CE, seq)))
	sns := stats.Throughput(turnarounds(runPolicy(t, SNS, seq)))
	if sns <= ce {
		t.Errorf("SNS throughput %.6f not above CE %.6f on a scaling-heavy mix", sns, ce)
	}
}

func TestSNSRespectsAlphaBetterThanCS(t *testing.T) {
	// A cache-hungry CG job mixed with cache thrashers on a small
	// 2-node cluster where co-location is unavoidable: CS co-locates
	// blindly; SNS must keep CG's slowdown smaller.
	seq := []JobSpec{
		{Program: "CG", Procs: 14},
		{Program: "BW", Procs: 14}, {Program: "BW", Procs: 14},
		{Program: "BW", Procs: 14},
	}
	spec, cat, db := testSetup(t)
	k := profiler.New(spec)
	if err := k.ProfileAll(cat, []string{"CG", "BW"}, 14, db); err != nil {
		t.Fatal(err)
	}
	small := spec
	small.Nodes = 2
	base, err := exec.RunSolo(small, mustProg(t, cat, "CG"), 14, 1)
	if err != nil {
		t.Fatal(err)
	}
	cgTime := func(p Policy) float64 {
		s, err := New(small, cat, db, DefaultConfig(p))
		if err != nil {
			t.Fatal(err)
		}
		for _, js := range seq {
			if err := s.Submit(js); err != nil {
				t.Fatal(err)
			}
		}
		jobs, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		for _, j := range jobs {
			if j.Prog.Name == "CG" {
				return j.RunTime()
			}
		}
		t.Fatal("CG missing")
		return 0
	}
	cs := cgTime(CS) / base.RunTime()
	sns := cgTime(SNS) / base.RunTime()
	if cs < 1.05 {
		t.Errorf("CS CG slowdown %.2fx shows no contention; test setup broken", cs)
	}
	if sns >= cs {
		t.Errorf("SNS CG slowdown %.2fx not better than CS %.2fx", sns, cs)
	}
}

func mustProg(t *testing.T, cat *app.Catalog, name string) *app.Model {
	t.Helper()
	m, err := cat.Lookup(name)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestSubmitValidation(t *testing.T) {
	spec, cat, db := testSetup(t)
	s, err := New(spec, cat, db, DefaultConfig(SNS))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Submit(JobSpec{Program: "NOPE", Procs: 16}); err == nil {
		t.Error("unknown program accepted")
	}
	if err := s.Submit(JobSpec{Program: "MG", Procs: 0}); err == nil {
		t.Error("zero processes accepted")
	}
	if err := s.Submit(JobSpec{Program: "GAN", Procs: 64}); err == nil {
		t.Error("single-node program exceeding a node accepted")
	}
	if err := s.Submit(JobSpec{Program: "MG", Procs: 9999}); err == nil {
		t.Error("cluster-exceeding job accepted")
	}
}

func TestNewValidation(t *testing.T) {
	spec, cat, _ := testSetup(t)
	if _, err := New(spec, cat, nil, DefaultConfig(SNS)); err == nil {
		t.Error("SNS without profile DB accepted")
	}
	if _, err := New(spec, cat, nil, DefaultConfig(CE)); err != nil {
		t.Errorf("CE without DB rejected: %v", err)
	}
}

func TestArrivalOverTime(t *testing.T) {
	spec, cat, db := testSetup(t)
	s, err := New(spec, cat, db, DefaultConfig(SNS))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Submit(JobSpec{Program: "EP", Procs: 16, Submit: 0}); err != nil {
		t.Fatal(err)
	}
	if err := s.Submit(JobSpec{Program: "EP", Procs: 16, Submit: 50}); err != nil {
		t.Fatal(err)
	}
	jobs, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs {
		if j.Start < j.Submit {
			t.Errorf("job %d started at %g before submission %g", j.ID, j.Start, j.Submit)
		}
	}
}

func TestFIFOOrderWithinPolicy(t *testing.T) {
	// Submitting identical jobs, starts must follow submission order.
	seq := make([]JobSpec, 12)
	for i := range seq {
		seq[i] = JobSpec{Program: "MG", Procs: 16}
	}
	jobs := runPolicy(t, CE, seq)
	byID := make(map[int]*exec.Job)
	for _, j := range jobs {
		byID[j.ID] = j
	}
	for id := 1; id < len(seq); id++ {
		if byID[id].Start < byID[id-1].Start-1e-9 {
			t.Errorf("job %d started before job %d", id, id-1)
		}
	}
}

func TestSchedulerInvariantNoOversubscription(t *testing.T) {
	// Run a busy mixed workload under SNS and assert, at every
	// completion event, that bookkeeping never oversubscribes.
	spec, cat, db := testSetup(t)
	s, err := New(spec, cat, db, DefaultConfig(SNS))
	if err != nil {
		t.Fatal(err)
	}
	names := []string{"MG", "CG", "EP", "LU", "BFS", "HC", "BW", "WC", "TS", "NW", "GAN", "RNN"}
	for i := 0; i < 24; i++ {
		if err := s.Submit(JobSpec{Program: names[i%len(names)], Procs: 16}); err != nil {
			t.Fatal(err)
		}
	}
	s.Engine().OnFinish(func(j *exec.Job) {
		for _, n := range s.Cluster().Nodes {
			if n.FreeCores() < 0 || n.FreeWays() < 0 || n.FreeBW() < -1e-6 {
				t.Errorf("node %d oversubscribed at t=%.1f: cores %d ways %d bw %.1f",
					n.ID, s.Engine().Now(), n.FreeCores(), n.FreeWays(), n.FreeBW())
			}
		}
	})
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestThroughputOrderingOnMixedWorkload(t *testing.T) {
	// The headline claim, in miniature: on a mixed workload SNS should
	// beat CE, and CS should also beat CE.
	seq := []JobSpec{
		{Program: "MG", Procs: 16}, {Program: "HC", Procs: 16},
		{Program: "TS", Procs: 16}, {Program: "EP", Procs: 16},
		{Program: "BW", Procs: 16}, {Program: "WC", Procs: 16},
		{Program: "LU", Procs: 16}, {Program: "CG", Procs: 16},
		{Program: "GAN", Procs: 16}, {Program: "HC", Procs: 16},
		{Program: "MG", Procs: 16}, {Program: "BW", Procs: 16},
	}
	ce := stats.Throughput(turnarounds(runPolicy(t, CE, seq)))
	cs := stats.Throughput(turnarounds(runPolicy(t, CS, seq)))
	sns := stats.Throughput(turnarounds(runPolicy(t, SNS, seq)))
	if cs <= ce {
		t.Errorf("CS throughput %.6f not above CE %.6f", cs, ce)
	}
	if sns <= ce {
		t.Errorf("SNS throughput %.6f not above CE %.6f", sns, ce)
	}
}

func TestPolicyString(t *testing.T) {
	if CE.String() != "CE" || CS.String() != "CS" || SNS.String() != "SNS" {
		t.Error("policy names wrong")
	}
	if Policy(9).String() != "Policy(9)" {
		t.Error("unknown policy name wrong")
	}
}

func TestGeoMeanRunTimeSNSWithinAlphaBand(t *testing.T) {
	// Individual-job protection: on a random-ish mix, the geometric
	// mean normalized run time under SNS should stay within ~20% of CE
	// (the paper reports within 17.2% in the worst sequence).
	seq := []JobSpec{
		{Program: "MG", Procs: 16}, {Program: "CG", Procs: 16},
		{Program: "EP", Procs: 16}, {Program: "HC", Procs: 16},
		{Program: "BW", Procs: 16}, {Program: "NW", Procs: 16},
		{Program: "TS", Procs: 16}, {Program: "WC", Procs: 16},
	}
	spec, cat, _ := testSetup(t)
	ceTimes := map[string]float64{}
	for _, js := range seq {
		if _, ok := ceTimes[js.Program]; !ok {
			j, err := exec.RunSolo(spec, mustProg(t, cat, js.Program), js.Procs, 1)
			if err != nil {
				t.Fatal(err)
			}
			ceTimes[js.Program] = j.RunTime()
		}
	}
	var normed []float64
	for _, j := range runPolicy(t, SNS, seq) {
		normed = append(normed, j.RunTime()/ceTimes[j.Prog.Name])
	}
	if g := stats.GeoMean(normed); g > 1.25 {
		t.Errorf("SNS geo-mean normalized run time %.3f, want <= 1.25", g)
	}
	if math.IsNaN(stats.GeoMean(normed)) {
		t.Error("NaN in normalized run times")
	}
}
