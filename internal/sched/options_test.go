package sched

import (
	"testing"

	"spreadnshare/internal/exec"
	"spreadnshare/internal/profiler"

	"spreadnshare/internal/units"
)

func TestExclusiveSpreadDedicatesNodes(t *testing.T) {
	spec, cat, db := testSetup(t)
	cfg := DefaultConfig(SNS)
	cfg.ExclusiveSpread = true
	s, err := New(spec, cat, db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, js := range []JobSpec{{Program: "MG", Procs: 16}, {Program: "HC", Procs: 16}} {
		if err := s.Submit(js); err != nil {
			t.Fatal(err)
		}
	}
	jobs, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs {
		if !j.Exclusive {
			t.Errorf("spread-only job %s not exclusive", j.Prog.Name)
		}
		if j.Ways != 0 {
			t.Errorf("spread-only job %s has CAT allocation %d", j.Prog.Name, j.Ways)
		}
	}
	var mg *exec.Job
	for _, j := range jobs {
		if j.Prog.Name == "MG" {
			mg = j
		}
	}
	if mg.SpanNodes() < 2 {
		t.Errorf("spread-only MG on %d nodes, want its profiled spread", mg.SpanNodes())
	}
}

func TestNoGroupingStillPlaces(t *testing.T) {
	spec, cat, db := testSetup(t)
	cfg := DefaultConfig(SNS)
	cfg.NoGrouping = true
	s, err := New(spec, cat, db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if err := s.Submit(JobSpec{Program: "EP", Procs: 16}); err != nil {
			t.Fatal(err)
		}
	}
	jobs, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 6 {
		t.Fatalf("finished %d jobs, want 6", len(jobs))
	}
}

func TestUseMBASetsCaps(t *testing.T) {
	spec, cat, db := testSetup(t)
	spec.Node.HasMBA = true
	cfg := DefaultConfig(SNS)
	cfg.UseMBA = true
	s, err := New(spec, cat, db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Submit(JobSpec{Program: "MG", Procs: 16}); err != nil {
		t.Fatal(err)
	}
	jobs, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	j := jobs[0]
	if j.BWCap <= 0 {
		t.Errorf("MBA-scheduled MG has no bandwidth cap")
	}
	if j.BWCap > spec.Node.PeakBandwidth {
		t.Errorf("cap %.1f exceeds peak", j.BWCap)
	}
}

func TestUseMBAWithoutHardwareIsUncapped(t *testing.T) {
	spec, cat, db := testSetup(t)
	cfg := DefaultConfig(SNS)
	cfg.UseMBA = true // requested, but DefaultNodeSpec has no MBA
	s, err := New(spec, cat, db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Submit(JobSpec{Program: "MG", Procs: 16}); err != nil {
		t.Fatal(err)
	}
	jobs, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if jobs[0].BWCap != 0 {
		t.Errorf("cap %.1f set on MBA-less hardware, want 0", jobs[0].BWCap)
	}
}

func TestPhasedExecutionConfig(t *testing.T) {
	spec, cat, db := testSetup(t)
	run := func(phased bool) float64 {
		// CE keeps MG compact on one node, where it saturates the
		// bandwidth roofline — the regime in which phases matter.
		cfg := DefaultConfig(CE)
		cfg.PhasedExecution = phased
		s, err := New(spec, cat, db, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Submit(JobSpec{Program: "MG", Procs: 16}); err != nil {
			t.Fatal(err)
		}
		jobs, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return jobs[0].RunTime()
	}
	if run(false) == run(true) {
		t.Error("phased execution config has no effect on a saturated job")
	}
}

func TestDriftMonitorAttachment(t *testing.T) {
	spec, cat, db := testSetup(t)
	s, err := New(spec, cat, db, DefaultConfig(CE))
	if err != nil {
		t.Fatal(err)
	}
	m := profiler.NewDriftMonitor(0.2)
	s.AttachDriftMonitor(m)
	for i := 0; i < 3; i++ {
		if err := s.Submit(JobSpec{Program: "MG", Procs: 16}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if got := m.Samples("MG", 16); got != 3 {
		t.Errorf("drift monitor has %d samples, want 3 (one per exclusive run)", got)
	}
	// A stable program must not be flagged.
	prof, _ := db.Get("MG", 16)
	m.MinSamples = 3
	if m.NeedsReprofile(prof) {
		t.Error("stable MG flagged for re-profiling")
	}
}

func TestDriftMonitorIgnoresSharedRuns(t *testing.T) {
	spec, cat, db := testSetup(t)
	s, err := New(spec, cat, db, DefaultConfig(SNS))
	if err != nil {
		t.Fatal(err)
	}
	m := profiler.NewDriftMonitor(0.2)
	s.AttachDriftMonitor(m)
	if err := s.Submit(JobSpec{Program: "MG", Procs: 16}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if got := m.Samples("MG", 16); got != 0 {
		t.Errorf("shared/spread run fed the drift monitor: %d samples", got)
	}
}

func TestLaunchPlansRecorded(t *testing.T) {
	spec, cat, db := testSetup(t)
	s, err := New(spec, cat, db, DefaultConfig(SNS))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Submit(JobSpec{Program: "MG", Procs: 16}); err != nil {
		t.Fatal(err)
	}
	jobs, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	j := jobs[0]
	plans := s.LaunchPlans()
	if len(plans) != j.SpanNodes() {
		t.Fatalf("%d plans recorded, want one per node (%d)", len(plans), j.SpanNodes())
	}
	for _, p := range plans {
		if p.JobID != j.ID || p.Program != "MG" {
			t.Errorf("plan %+v does not match job", p)
		}
		if len(p.Cores) == 0 {
			t.Error("plan has no core binding")
		}
		if j.Ways > 0 && units.WaysOf(p.WayMask.Count()) != j.Ways {
			t.Errorf("plan mask %v has %d ways, job allocated %d",
				p.WayMask, p.WayMask.Count(), j.Ways)
		}
		if p.Command == "" {
			t.Error("plan has no launch command")
		}
	}
}

func TestMemoryCapacityConstrainsSharing(t *testing.T) {
	// BFS needs 6 GB per process; two 14-process BFS jobs fit one
	// 28-core node by cores (14+14) but not by memory (84+84 > 128).
	spec, cat, db := testSetup(t)
	small := spec
	small.Nodes = 2
	for _, p := range []Policy{CS, SNS} {
		s, err := New(small, cat, db, DefaultConfig(p))
		if err != nil {
			t.Fatal(err)
		}
		k := profiler.New(spec)
		if err := k.ProfileAll(cat, []string{"BFS"}, 14, db); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			if err := s.Submit(JobSpec{Program: "BFS", Procs: 14}); err != nil {
				t.Fatal(err)
			}
		}
		// Assert the hard memory invariant at every scheduling event.
		s.Engine().OnFinish(func(_ *exec.Job) {
			for _, n := range s.Cluster().Nodes {
				if n.FreeMem() < -1e-6 {
					t.Errorf("%v: node %d memory oversubscribed (%.1f GB free)",
						p, n.ID, n.FreeMem())
				}
			}
		})
		jobs, err := s.Run()
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		// Two 84 GB jobs can never have run compactly (14 cores on one
		// node) at the same time: any pair overlapping in time on a
		// shared node must include a spread (7-core) placement.
		for i, a := range jobs {
			for _, b := range jobs[i+1:] {
				if !(a.Start < b.Finish && b.Start < a.Finish) {
					continue
				}
				for _, na := range a.Nodes {
					for _, nb := range b.Nodes {
						if na == nb && a.SpanNodes() == 1 && b.SpanNodes() == 1 {
							t.Errorf("%v: two compact 84 GB jobs overlapped on node %d",
								p, na)
						}
					}
				}
			}
		}
	}
}

// TestSNSAccountsIOBandwidth: two I/O-heavy TS jobs must not be
// co-located on one node's 2 GB/s file-system link under SNS accounting,
// while resource-blind CS packs them together.
func TestSNSAccountsIOBandwidth(t *testing.T) {
	spec, cat, db := testSetup(t)
	k := profiler.New(spec)
	if err := k.ProfileAll(cat, []string{"TS"}, 14, db); err != nil {
		t.Fatal(err)
	}
	prof, _ := db.Get("TS", 14)
	base, _ := prof.AtK(1)
	if base.IOPerNode < 1.0 {
		t.Fatalf("TS profile I/O %.2f GB/s; profiling did not capture I/O", base.IOPerNode)
	}
	small := spec
	small.Nodes = 2
	run := func(p Policy) []*exec.Job {
		s, err := New(small, cat, db, DefaultConfig(p))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 2; i++ {
			if err := s.Submit(JobSpec{Program: "TS", Procs: 14}); err != nil {
				t.Fatal(err)
			}
		}
		jobs, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return jobs
	}
	snsJobs := run(SNS)
	// Under SNS the two jobs' node sets must not intersect while both
	// run (each reserves ~1.4 of the 2.0 GB/s link).
	a, b := snsJobs[0], snsJobs[1]
	if a.Start < b.Finish && b.Start < a.Finish {
		for _, na := range a.Nodes {
			for _, nb := range b.Nodes {
				if na == nb {
					t.Errorf("SNS co-located two I/O-bound jobs on node %d", na)
				}
			}
		}
	}
	// CS, blind to I/O, packs them onto one node and both suffer.
	csJobs := run(CS)
	sameNode := false
	for _, na := range csJobs[0].Nodes {
		for _, nb := range csJobs[1].Nodes {
			if na == nb {
				sameNode = true
			}
		}
	}
	if sameNode && csJobs[0].RunTime() <= snsJobs[0].RunTime() {
		t.Errorf("CS I/O-blind co-location (%.1f s) not slower than SNS (%.1f s)",
			csJobs[0].RunTime(), snsJobs[0].RunTime())
	}
}
