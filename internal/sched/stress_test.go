package sched_test

import (
	"math/rand"
	"testing"

	"spreadnshare/internal/app"
	"spreadnshare/internal/hw"
	"spreadnshare/internal/profiler"
	"spreadnshare/internal/sched"
	"spreadnshare/internal/workload"
)

// TestStressAllPolicies runs randomized workloads through every policy
// with invariant checking: no job starting before submission, all jobs
// finishing, the cluster fully drained, and determinism across repeated
// runs.
func TestStressAllPolicies(t *testing.T) {
	spec := hw.DefaultClusterSpec()
	cat, err := app.NewCatalog(spec.Node)
	if err != nil {
		t.Fatal(err)
	}
	db := profiler.NewDB()
	k := profiler.New(spec)
	if err := k.ProfileAll(cat, app.ProgramNames, 16, db); err != nil {
		t.Fatal(err)
	}
	var flexible []string
	for _, name := range app.ProgramNames {
		m, _ := cat.Lookup(name)
		if !m.PowerOf2 {
			flexible = append(flexible, name)
		}
	}
	if err := k.ProfileAll(cat, flexible, 28, db); err != nil {
		t.Fatal(err)
	}

	for _, p := range []sched.Policy{sched.CE, sched.CS, sched.TwoSlot, sched.SNS} {
		for seed := int64(0); seed < 5; seed++ {
			run := func() []float64 {
				s, err := sched.New(spec, cat, db, sched.DefaultConfig(p))
				if err != nil {
					t.Fatal(err)
				}
				seq := workload.RandomSequence(rand.New(rand.NewSource(seed)), cat, 15)
				for _, js := range seq {
					if err := s.Submit(js); err != nil {
						t.Fatal(err)
					}
				}
				jobs, err := s.Run()
				if err != nil {
					t.Fatalf("%v seed %d: %v", p, seed, err)
				}
				if len(jobs) != 15 {
					t.Fatalf("%v seed %d: %d jobs finished, want 15", p, seed, len(jobs))
				}
				var finishes []float64
				for _, j := range jobs {
					if j.Start < j.Submit {
						t.Fatalf("%v: job started before submit", p)
					}
					if j.RunTime() <= 0 {
						t.Fatalf("%v: non-positive run time", p)
					}
					finishes = append(finishes, j.Finish)
				}
				for _, n := range s.Cluster().Nodes {
					if !n.Idle() {
						t.Fatalf("%v seed %d: node %d not idle after drain", p, seed, n.ID)
					}
				}
				return finishes
			}
			a, b := run(), run()
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("%v seed %d: non-deterministic schedule", p, seed)
				}
			}
		}
	}
}
