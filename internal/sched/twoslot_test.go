package sched

import (
	"testing"

	"spreadnshare/internal/exec"
	"spreadnshare/internal/stats"
)

func TestTwoSlotClassification(t *testing.T) {
	spec, cat, db := testSetup(t)
	s, err := New(spec, cat, db, DefaultConfig(TwoSlot))
	if err != nil {
		t.Fatal(err)
	}
	mk := func(name string) *exec.Job {
		m, err := cat.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		return &exec.Job{Prog: m, Procs: 16}
	}
	for _, name := range []string{"MG", "BW", "LU"} {
		if !s.bwIntensive(mk(name)) {
			t.Errorf("%s not classified intensive", name)
		}
	}
	for _, name := range []string{"EP", "HC", "WC"} {
		if s.bwIntensive(mk(name)) {
			t.Errorf("%s classified intensive", name)
		}
	}
}

func TestTwoSlotOneIntensivePerNode(t *testing.T) {
	spec, cat, db := testSetup(t)
	s, err := New(spec, cat, db, DefaultConfig(TwoSlot))
	if err != nil {
		t.Fatal(err)
	}
	// Two intensive 14-proc jobs and two fillers on a 2-node cluster.
	small := spec
	small.Nodes = 2
	s, err = New(small, cat, db, DefaultConfig(TwoSlot))
	if err != nil {
		t.Fatal(err)
	}
	for _, js := range []JobSpec{
		{Program: "BW", Procs: 14}, {Program: "BW", Procs: 14},
		{Program: "HC", Procs: 14}, {Program: "HC", Procs: 14},
	} {
		if err := s.Submit(js); err != nil {
			t.Fatal(err)
		}
	}
	jobs, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	// At any instant, no node may have hosted two intensive jobs
	// concurrently: the two BW jobs must be on different nodes (both
	// start at t=0 since slots exist).
	var bwNodes []int
	for _, j := range jobs {
		if j.Prog.Name == "BW" {
			if j.WaitTime() != 0 {
				t.Errorf("BW waited %.1f s with free slots elsewhere", j.WaitTime())
			}
			bwNodes = append(bwNodes, j.Nodes...)
		}
	}
	if len(bwNodes) == 2 && bwNodes[0] == bwNodes[1] {
		t.Error("two intensive jobs shared one node")
	}
}

func TestTwoSlotVersusSNS(t *testing.T) {
	// On a mixed workload, SNS should beat the rigid two-slot baseline
	// on throughput (it scales jobs and partitions the cache).
	seq := []JobSpec{
		{Program: "MG", Procs: 16}, {Program: "HC", Procs: 16},
		{Program: "BW", Procs: 16}, {Program: "EP", Procs: 16},
		{Program: "LU", Procs: 16}, {Program: "WC", Procs: 16},
		{Program: "TS", Procs: 16}, {Program: "HC", Procs: 16},
		{Program: "MG", Procs: 16}, {Program: "EP", Procs: 16},
	}
	twoslot := stats.Throughput(turnarounds(runPolicy(t, TwoSlot, seq)))
	sns := stats.Throughput(turnarounds(runPolicy(t, SNS, seq)))
	ce := stats.Throughput(turnarounds(runPolicy(t, CE, seq)))
	if twoslot <= ce {
		t.Errorf("TwoSlot throughput %.6f not above CE %.6f (it shares nodes)", twoslot, ce)
	}
	if sns <= twoslot {
		t.Errorf("SNS throughput %.6f not above TwoSlot %.6f", sns, twoslot)
	}
}

func TestTwoSlotPolicyName(t *testing.T) {
	if TwoSlot.String() != "TwoSlot" {
		t.Error("policy name wrong")
	}
}
