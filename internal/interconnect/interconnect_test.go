package interconnect

import (
	"math"
	"testing"
	"testing/quick"
)

func TestInflationUndersubscribed(t *testing.T) {
	cases := [][]float64{
		nil,
		{},
		{0.2},
		{0.3, 0.3, 0.3},
		{0, -0.5, 0.9},
	}
	for _, utils := range cases {
		if got := Inflation(utils); got != 1 {
			t.Errorf("Inflation(%v) = %g, want 1", utils, got)
		}
	}
}

func TestInflationSaturated(t *testing.T) {
	if got := Inflation([]float64{0.8, 0.8}); math.Abs(got-1.6) > 1e-12 {
		t.Errorf("Inflation = %g, want 1.6", got)
	}
	if got := Inflation([]float64{0.5, 0.5, 0.5}); math.Abs(got-1.5) > 1e-12 {
		t.Errorf("Inflation = %g, want 1.5", got)
	}
	// Negative utilizations don't offset real demand.
	if got := Inflation([]float64{1.5, -0.5}); math.Abs(got-1.5) > 1e-12 {
		t.Errorf("Inflation = %g, want 1.5 (negatives ignored)", got)
	}
}

// Property: inflation is never below 1, and adding a communicator never
// reduces it.
func TestInflationMonotoneProperty(t *testing.T) {
	f := func(raw []float64, extra float64) bool {
		utils := make([]float64, len(raw))
		for i, r := range raw {
			utils[i] = math.Mod(math.Abs(r), 1)
		}
		base := Inflation(utils)
		if base < 1 {
			return false
		}
		grown := Inflation(append(utils, math.Mod(math.Abs(extra), 1)))
		return grown >= base-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}
