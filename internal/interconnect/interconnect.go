// Package interconnect models the cluster network: per-node NIC
// bandwidth and the slowdown communicating jobs impose on each other when
// they share a node's link. The paper's testbed is EDR InfiniBand with
// 6.8 GB/s observed per-node bandwidth — far below intra-node memory
// bandwidth, which is why spreading carries a communication cost, and why
// that cost stays small for programs whose communication intensity is low
// (Figure 7).
package interconnect

// Model describes one network.
type Model struct {
	// BandwidthGB is per-node NIC bandwidth in GB/s.
	BandwidthGB float64
	// LatencyUS is one-way latency in microseconds.
	LatencyUS float64
}

// Inflation returns the factor by which communication time stretches when
// jobs with the given NIC-utilization fractions share one node's link.
// Utilization is the fraction of wall time a job keeps the NIC busy; while
// the link is undersubscribed (sum <= 1) communication proceeds at full
// speed, beyond that all communicators slow proportionally.
func Inflation(utils []float64) float64 {
	total := 0.0
	for _, u := range utils {
		if u > 0 {
			total += u
		}
	}
	if total <= 1 {
		return 1
	}
	return total
}
