package core

import (
	"testing"
	"testing/quick"

	"spreadnshare/internal/hw"
	"spreadnshare/internal/profiler"
)

// syntheticProfile builds a ScaleProfile with a linear IPC curve from lo at
// way 1 to hi at way 20 and a bandwidth curve declining from bwLo demand.
func syntheticProfile(lo, hi float64) *profiler.ScaleProfile {
	ipc := make([]float64, 21)
	bw := make([]float64, 21)
	for w := 1; w <= 20; w++ {
		ipc[w] = lo + (hi-lo)*float64(w-1)/19
		bw[w] = 100 - 2*float64(w)
	}
	return &profiler.ScaleProfile{K: 1, Nodes: 1, CoresPerNode: 16, TimeSec: 100,
		IPCByWay: ipc, BWByWay: bw}
}

func TestEstimateDemandWalksCurve(t *testing.T) {
	spec := hw.DefaultNodeSpec()
	sp := syntheticProfile(0.5, 1.0)
	// alpha 0.9: target = 0.9; curve hits 0.9 at w where
	// 0.5 + 0.5*(w-1)/19 >= 0.9 -> w >= 16.2 -> 17 ways.
	d := EstimateDemand(sp, 0.9, spec)
	if d.Ways != 17 {
		t.Errorf("Ways = %d, want 17", d.Ways)
	}
	if d.Cores != 16 {
		t.Errorf("Cores = %d, want 16", d.Cores)
	}
	if want := 100 - 2*17.0; d.BW.Float64() != want {
		t.Errorf("BW = %g, want %g (curve at demanded ways)", d.BW, want)
	}
}

func TestEstimateDemandInsensitiveProgram(t *testing.T) {
	spec := hw.DefaultNodeSpec()
	sp := syntheticProfile(0.99, 1.0)
	d := EstimateDemand(sp, 0.9, spec)
	if d.Ways != spec.MinWaysPerJob {
		t.Errorf("insensitive program demanded %d ways, want hardware minimum %d",
			d.Ways, spec.MinWaysPerJob)
	}
}

func TestEstimateDemandAlphaOne(t *testing.T) {
	spec := hw.DefaultNodeSpec()
	sp := syntheticProfile(0.5, 1.0)
	d := EstimateDemand(sp, 1.0, spec)
	if d.Ways != 20 {
		t.Errorf("alpha=1 demanded %d ways, want full 20", d.Ways)
	}
	// Out-of-range alpha treated as 1.
	d2 := EstimateDemand(sp, 0, spec)
	if d2.Ways != 20 {
		t.Errorf("alpha=0 demanded %d ways, want full 20 (treated as 1)", d2.Ways)
	}
}

func TestEstimateDemandEmptyProfile(t *testing.T) {
	spec := hw.DefaultNodeSpec()
	d := EstimateDemand(&profiler.ScaleProfile{CoresPerNode: 8}, 0.9, spec)
	if d.Cores != 8 || d.Ways != spec.MinWaysPerJob {
		t.Errorf("empty profile demand = %+v", d)
	}
}

// Property: demanded ways decrease (weakly) as alpha loosens, and the
// demand always meets the target IPC on the curve.
func TestEstimateDemandMonotoneInAlpha(t *testing.T) {
	spec := hw.DefaultNodeSpec()
	f := func(loRaw, a1Raw, a2Raw uint16) bool {
		lo := 0.3 + float64(loRaw%60)/100 // 0.3..0.89
		sp := syntheticProfile(lo, 1.0)
		a1 := 0.5 + float64(a1Raw%50)/100
		a2 := 0.5 + float64(a2Raw%50)/100
		if a1 > a2 {
			a1, a2 = a2, a1
		}
		d1 := EstimateDemand(sp, a1, spec)
		d2 := EstimateDemand(sp, a2, spec)
		if d1.Ways > d2.Ways {
			return false
		}
		return sp.IPCAt(d2.Ways.Int()) >= a2*sp.IPCAt(20)-1e-9 || d2.Ways == spec.MinWaysPerJob
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}
