package core

import (
	"testing"
	"testing/quick"

	"spreadnshare/internal/cluster"
	"spreadnshare/internal/hw"
	"spreadnshare/internal/profiler"
)

// syntheticProfile builds a ScaleProfile with a linear IPC curve from lo at
// way 1 to hi at way 20 and a bandwidth curve declining from bwLo demand.
func syntheticProfile(lo, hi float64) *profiler.ScaleProfile {
	ipc := make([]float64, 21)
	bw := make([]float64, 21)
	for w := 1; w <= 20; w++ {
		ipc[w] = lo + (hi-lo)*float64(w-1)/19
		bw[w] = 100 - 2*float64(w)
	}
	return &profiler.ScaleProfile{K: 1, Nodes: 1, CoresPerNode: 16, TimeSec: 100,
		IPCByWay: ipc, BWByWay: bw}
}

func TestEstimateDemandWalksCurve(t *testing.T) {
	spec := hw.DefaultNodeSpec()
	sp := syntheticProfile(0.5, 1.0)
	// alpha 0.9: target = 0.9; curve hits 0.9 at w where
	// 0.5 + 0.5*(w-1)/19 >= 0.9 -> w >= 16.2 -> 17 ways.
	d := EstimateDemand(sp, 0.9, spec)
	if d.Ways != 17 {
		t.Errorf("Ways = %d, want 17", d.Ways)
	}
	if d.Cores != 16 {
		t.Errorf("Cores = %d, want 16", d.Cores)
	}
	if want := 100 - 2*17.0; d.BW != want {
		t.Errorf("BW = %g, want %g (curve at demanded ways)", d.BW, want)
	}
}

func TestEstimateDemandInsensitiveProgram(t *testing.T) {
	spec := hw.DefaultNodeSpec()
	sp := syntheticProfile(0.99, 1.0)
	d := EstimateDemand(sp, 0.9, spec)
	if d.Ways != spec.MinWaysPerJob {
		t.Errorf("insensitive program demanded %d ways, want hardware minimum %d",
			d.Ways, spec.MinWaysPerJob)
	}
}

func TestEstimateDemandAlphaOne(t *testing.T) {
	spec := hw.DefaultNodeSpec()
	sp := syntheticProfile(0.5, 1.0)
	d := EstimateDemand(sp, 1.0, spec)
	if d.Ways != 20 {
		t.Errorf("alpha=1 demanded %d ways, want full 20", d.Ways)
	}
	// Out-of-range alpha treated as 1.
	d2 := EstimateDemand(sp, 0, spec)
	if d2.Ways != 20 {
		t.Errorf("alpha=0 demanded %d ways, want full 20 (treated as 1)", d2.Ways)
	}
}

func TestEstimateDemandEmptyProfile(t *testing.T) {
	spec := hw.DefaultNodeSpec()
	d := EstimateDemand(&profiler.ScaleProfile{CoresPerNode: 8}, 0.9, spec)
	if d.Cores != 8 || d.Ways != spec.MinWaysPerJob {
		t.Errorf("empty profile demand = %+v", d)
	}
}

// Property: demanded ways decrease (weakly) as alpha loosens, and the
// demand always meets the target IPC on the curve.
func TestEstimateDemandMonotoneInAlpha(t *testing.T) {
	spec := hw.DefaultNodeSpec()
	f := func(loRaw, a1Raw, a2Raw uint16) bool {
		lo := 0.3 + float64(loRaw%60)/100 // 0.3..0.89
		sp := syntheticProfile(lo, 1.0)
		a1 := 0.5 + float64(a1Raw%50)/100
		a2 := 0.5 + float64(a2Raw%50)/100
		if a1 > a2 {
			a1, a2 = a2, a1
		}
		d1 := EstimateDemand(sp, a1, spec)
		d2 := EstimateDemand(sp, a2, spec)
		if d1.Ways > d2.Ways {
			return false
		}
		return sp.IPCAt(d2.Ways) >= a2*sp.IPCAt(20)-1e-9 || d2.Ways == spec.MinWaysPerJob
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func testCluster(t *testing.T) *cluster.State {
	t.Helper()
	cl, err := cluster.New(hw.DefaultClusterSpec())
	if err != nil {
		t.Fatal(err)
	}
	return cl
}

func TestFindNodesBasic(t *testing.T) {
	cl := testCluster(t)
	got := FindNodes(cl, 2, Demand{Cores: 16, Ways: 4, BW: 30}, DefaultBeta)
	if len(got) != 2 {
		t.Fatalf("FindNodes = %v, want 2 nodes", got)
	}
}

func TestFindNodesInsufficient(t *testing.T) {
	cl := testCluster(t)
	if got := FindNodes(cl, 9, Demand{Cores: 4}, DefaultBeta); got != nil {
		t.Errorf("FindNodes found %v on an 8-node cluster, want nil", got)
	}
	if got := FindNodes(cl, 0, Demand{Cores: 4}, DefaultBeta); got != nil {
		t.Errorf("FindNodes(0) = %v, want nil", got)
	}
	// Fill every node's cores.
	for i := 0; i < 8; i++ {
		if err := cl.Allocate(100+i, []cluster.NodeAlloc{{Node: i, Cores: 28}}, 0, 0, false); err != nil {
			t.Fatal(err)
		}
	}
	if got := FindNodes(cl, 1, Demand{Cores: 1}, DefaultBeta); got != nil {
		t.Errorf("FindNodes on full cluster = %v, want nil", got)
	}
}

func TestFindNodesRespectsWaysAndBW(t *testing.T) {
	cl := testCluster(t)
	// Node 0: 18 ways taken; node 1: 100 GB/s reserved.
	if err := cl.Allocate(1, []cluster.NodeAlloc{{Node: 0, Cores: 2}}, 18, 0, false); err != nil {
		t.Fatal(err)
	}
	if err := cl.Allocate(2, []cluster.NodeAlloc{{Node: 1, Cores: 2}}, 0, 100, false); err != nil {
		t.Fatal(err)
	}
	got := FindNodes(cl, 8, Demand{Cores: 4, Ways: 4, BW: 30}, DefaultBeta)
	if got != nil {
		t.Errorf("FindNodes = %v, want nil (nodes 0 and 1 infeasible)", got)
	}
	got = FindNodes(cl, 6, Demand{Cores: 4, Ways: 4, BW: 30}, DefaultBeta)
	if len(got) != 6 {
		t.Fatalf("FindNodes = %v, want the 6 clean nodes", got)
	}
	for _, id := range got {
		if id == 0 || id == 1 {
			t.Errorf("FindNodes selected infeasible node %d", id)
		}
	}
}

func TestFindNodesPrefersSingleGroupTightFit(t *testing.T) {
	cl := testCluster(t)
	// Nodes 0,1: 12 cores free (16 used); nodes 2..7 idle. A 2-node
	// 8-core job fits in the tight group; SNS should use it and leave
	// the idle group unfragmented.
	for i := 0; i < 2; i++ {
		if err := cl.Allocate(10+i, []cluster.NodeAlloc{{Node: i, Cores: 16}}, 4, 20, false); err != nil {
			t.Fatal(err)
		}
	}
	got := FindNodes(cl, 2, Demand{Cores: 8, Ways: 4, BW: 20}, DefaultBeta)
	if len(got) != 2 {
		t.Fatalf("FindNodes = %v, want 2", got)
	}
	for _, id := range got {
		if id != 0 && id != 1 {
			t.Errorf("FindNodes picked idle node %d; want the partially-used group", id)
		}
	}
}

func TestFindNodesFallsBackAcrossGroups(t *testing.T) {
	cl := testCluster(t)
	// Create 4 groups of 2 nodes with distinct idle counts; ask for 5
	// nodes, more than any single group holds.
	uses := []int{0, 0, 4, 4, 8, 8, 12, 12}
	for i, u := range uses {
		if u == 0 {
			continue
		}
		if err := cl.Allocate(20+i, []cluster.NodeAlloc{{Node: i, Cores: u}}, 0, 0, false); err != nil {
			t.Fatal(err)
		}
	}
	got := FindNodes(cl, 5, Demand{Cores: 8}, DefaultBeta)
	if len(got) != 5 {
		t.Fatalf("FindNodes = %v, want 5 across groups", got)
	}
	// The idlest 5 by score should be picked: the two idle nodes first.
	seen := map[int]bool{}
	for _, id := range got {
		seen[id] = true
	}
	if !seen[0] || !seen[1] {
		t.Errorf("whole-cluster fallback did not pick idlest nodes: %v", got)
	}
}

func TestFindNodesUngrouped(t *testing.T) {
	cl := testCluster(t)
	// Partially fill nodes 0 and 1 so scores differ.
	if err := cl.Allocate(1, []cluster.NodeAlloc{{Node: 0, Cores: 20}}, 8, 0, false); err != nil {
		t.Fatal(err)
	}
	got := FindNodesUngrouped(cl, 3, Demand{Cores: 4, Ways: 2, BW: 10}, DefaultBeta)
	if len(got) != 3 {
		t.Fatalf("FindNodesUngrouped = %v, want 3 nodes", got)
	}
	for _, id := range got {
		if id == 0 {
			t.Error("ungrouped search picked the loaded node over idle ones")
		}
	}
	if got := FindNodesUngrouped(cl, 0, Demand{Cores: 4}, DefaultBeta); got != nil {
		t.Errorf("n=0 returned %v", got)
	}
	if got := FindNodesUngrouped(cl, 99, Demand{Cores: 4}, DefaultBeta); got != nil {
		t.Errorf("infeasible count returned %v", got)
	}
	// Memory-infeasible nodes are filtered.
	if err := cl.Allocate(2, []cluster.NodeAlloc{{Node: 1, Cores: 2, MemGB: 120}}, 0, 0, false); err != nil {
		t.Fatal(err)
	}
	got = FindNodesUngrouped(cl, 7, Demand{Cores: 4, MemGB: 20}, DefaultBeta)
	if len(got) != 7 {
		t.Fatalf("want 7 memory-feasible nodes, got %v", got)
	}
	for _, id := range got {
		if id == 1 {
			t.Error("memory-full node selected")
		}
	}
}
