// Package core implements the Spread-n-Share decision logic of Sections
// 4.3 and 4.4: estimating a job's per-node resource demand (cores, LLC
// ways, memory bandwidth) from its profiled IPC-LLC and BW-LLC curves
// under a slowdown threshold alpha, and searching the cluster for nodes
// that can host the job at a given scale factor with fragmentation-aware
// grouping and idleness scoring.
package core

import (
	"spreadnshare/internal/cluster"
	"spreadnshare/internal/hw"
	"spreadnshare/internal/profiler"
)

// DefaultBeta is the extra weight the node-selection score gives to LLC
// occupancy (the paper uses 2: cache interference dominates within a
// node).
const DefaultBeta = 2.0

// Demand is a job's estimated per-node resource requirement at one scale
// factor — the (c, w, b) triple of Figure 10.
type Demand struct {
	// Cores per node (the profile's placement).
	Cores int
	// Ways is the minimum LLC allocation achieving the tolerable IPC.
	Ways int
	// BW is the estimated per-node memory bandwidth at that
	// allocation, GB/s.
	BW float64
	// MemGB is the per-node main-memory requirement.
	MemGB float64
	// IOBW is the estimated per-node file-system bandwidth, from the
	// profile's measured I/O (independent of the cache allocation).
	IOBW float64
}

// EstimateDemand walks the profiled curves: starting from the IPC at full
// way allocation (F-IPC), the tolerable IPC is alpha*F-IPC; the demanded
// ways w is the least allocation whose profiled IPC reaches it (bounded
// below by the hardware minimum), and the BW-LLC curve read at w gives the
// bandwidth estimate.
func EstimateDemand(sp *profiler.ScaleProfile, alpha float64, spec hw.NodeSpec) Demand {
	full := sp.FullWays()
	if full < 1 {
		return Demand{Cores: sp.CoresPerNode, Ways: spec.MinWaysPerJob}
	}
	if alpha <= 0 || alpha > 1 {
		alpha = 1
	}
	target := alpha * sp.IPCAt(full)
	ways := full
	for w := spec.MinWaysPerJob; w <= full; w++ {
		if sp.IPCAt(w) >= target {
			ways = w
			break
		}
	}
	if ways < spec.MinWaysPerJob {
		ways = spec.MinWaysPerJob
	}
	return Demand{
		Cores: sp.CoresPerNode,
		Ways:  ways,
		BW:    sp.BWAt(ways),
		IOBW:  sp.IOPerNode,
	}
}

// FindNodes searches the cluster for n nodes that can each host the
// demand. Per Section 4.4 it first clusters candidate nodes into groups by
// idle-core count and tries to place the job within a single group
// (tightest adequate group first, keeping resource consumption even within
// groups); failing that it falls back to the whole cluster. Within the
// chosen set it returns the n idlest nodes by the Co + Bo + beta*Wo score.
// It returns nil when fewer than n nodes qualify.
func FindNodes(cl *cluster.State, n int, d Demand, beta float64) []int {
	if n <= 0 {
		return nil
	}
	var feasible []int
	for _, node := range cl.Nodes {
		if nodeFits(node, d) {
			feasible = append(feasible, node.ID)
		}
	}
	if len(feasible) < n {
		return nil
	}
	// Single-group attempt, tightest fit first.
	for _, g := range cl.GroupsByIdleCores(feasible) {
		if len(g.Nodes) >= n {
			return cl.SelectIdlest(g.Nodes, n, beta)
		}
	}
	// Whole-cluster fallback.
	return cl.SelectIdlest(feasible, n, beta)
}

// FindNodesUngrouped is FindNodes without the idle-core grouping step —
// the ablation baseline for the fragmentation-avoidance device: feasible
// nodes are scored across the whole cluster directly.
func FindNodesUngrouped(cl *cluster.State, n int, d Demand, beta float64) []int {
	if n <= 0 {
		return nil
	}
	var feasible []int
	for _, node := range cl.Nodes {
		if nodeFits(node, d) {
			feasible = append(feasible, node.ID)
		}
	}
	if len(feasible) < n {
		return nil
	}
	return cl.SelectIdlest(feasible, n, beta)
}

// nodeFits reports whether one node currently has room for the demand.
func nodeFits(node *cluster.Node, d Demand) bool {
	if node.FreeCores() < d.Cores {
		return false
	}
	if d.Ways > 0 && node.FreeWays() < d.Ways {
		return false
	}
	if d.BW > 0 && node.FreeBW() < d.BW {
		return false
	}
	if d.MemGB > 0 && node.FreeMem() < d.MemGB {
		return false
	}
	if d.IOBW > 0 && node.FreeIO() < d.IOBW {
		return false
	}
	return true
}
