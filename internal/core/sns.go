// Package core implements the Spread-n-Share demand model of Section 4.3:
// estimating a job's per-node resource demand (cores, LLC ways, memory
// bandwidth) from its profiled IPC-LLC and BW-LLC curves under a slowdown
// threshold alpha. The node search the demand feeds (Section 4.4) lives
// in internal/placement.
package core

import (
	"spreadnshare/internal/hw"
	"spreadnshare/internal/profiler"
	"spreadnshare/internal/units"
)

// DefaultBeta is the extra weight the node-selection score gives to LLC
// occupancy (the paper uses 2: cache interference dominates within a
// node).
const DefaultBeta = 2.0

// Demand is a job's estimated per-node resource requirement at one scale
// factor — the (c, w, b) triple of Figure 10.
type Demand struct {
	// Cores per node (the profile's placement).
	Cores int
	// Ways is the minimum LLC allocation achieving the tolerable IPC.
	Ways units.Ways
	// BW is the estimated per-node memory bandwidth at that
	// allocation.
	BW units.GBps
	// MemGB is the per-node main-memory requirement.
	MemGB float64
	// IOBW is the estimated per-node file-system bandwidth, from the
	// profile's measured I/O (independent of the cache allocation).
	IOBW units.GBps
}

// EstimateDemand walks the profiled curves: starting from the IPC at full
// way allocation (F-IPC), the tolerable IPC is alpha*F-IPC; the demanded
// ways w is the least allocation whose profiled IPC reaches it (bounded
// below by the hardware minimum), and the BW-LLC curve read at w gives the
// bandwidth estimate.
func EstimateDemand(sp *profiler.ScaleProfile, alpha float64, spec hw.NodeSpec) Demand {
	full := sp.FullWays()
	if full < 1 {
		return Demand{Cores: sp.CoresPerNode, Ways: spec.MinWaysPerJob}
	}
	if alpha <= 0 || alpha > 1 {
		alpha = 1
	}
	target := alpha * sp.IPCAt(full)
	ways := units.WaysOf(full)
	for w := spec.MinWaysPerJob; w <= units.WaysOf(full); w++ {
		if sp.IPCAt(w.Int()) >= target {
			ways = w
			break
		}
	}
	if ways < spec.MinWaysPerJob {
		ways = spec.MinWaysPerJob
	}
	return Demand{
		Cores: sp.CoresPerNode,
		Ways:  ways,
		BW:    units.GBpsOf(sp.BWAt(ways.Int())),
		IOBW:  units.GBpsOf(sp.IOPerNode),
	}
}
