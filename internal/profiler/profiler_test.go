package profiler

import (
	"math"
	"path/filepath"
	"testing"
	"testing/quick"

	"spreadnshare/internal/app"
	"spreadnshare/internal/hw"
)

func TestInterpolate(t *testing.T) {
	samples := map[int]float64{2: 1.0, 4: 2.0, 8: 4.0, 20: 10.0}
	c := Interpolate(samples, 20)
	if len(c) != 21 {
		t.Fatalf("curve length %d, want 21", len(c))
	}
	if c[1] != 1.0 {
		t.Errorf("flat extrapolation below: c[1] = %g, want 1", c[1])
	}
	if c[2] != 1.0 || c[4] != 2.0 || c[8] != 4.0 || c[20] != 10.0 {
		t.Errorf("sample points not preserved: %v", []float64{c[2], c[4], c[8], c[20]})
	}
	if math.Abs(c[3]-1.5) > 1e-12 {
		t.Errorf("c[3] = %g, want 1.5 (linear)", c[3])
	}
	if math.Abs(c[14]-7.0) > 1e-12 {
		t.Errorf("c[14] = %g, want 7.0 (linear between 8 and 20)", c[14])
	}
}

func TestInterpolateEdgeCases(t *testing.T) {
	if c := Interpolate(nil, 20); c[10] != 0 {
		t.Error("empty samples produced non-zero curve")
	}
	c := Interpolate(map[int]float64{5: 3.0}, 20)
	for w := 1; w <= 20; w++ {
		if c[w] != 3.0 {
			t.Fatalf("single sample: c[%d] = %g, want 3.0 everywhere", w, c[w])
		}
	}
	// Out-of-range sample indices are ignored.
	c = Interpolate(map[int]float64{0: 9, 25: 9}, 20)
	if c[10] != 0 {
		t.Error("out-of-range samples leaked into curve")
	}
}

// Property: interpolation of a monotone sample set stays monotone and
// within the sample range.
func TestInterpolateMonotoneProperty(t *testing.T) {
	f := func(a, b, c, d float64) bool {
		vals := []float64{math.Abs(a), math.Abs(b), math.Abs(c), math.Abs(d)}
		for i := 1; i < 4; i++ {
			vals[i] = vals[i-1] + math.Mod(vals[i], 10)
		}
		curve := Interpolate(map[int]float64{2: vals[0], 4: vals[1], 8: vals[2], 20: vals[3]}, 20)
		prev := curve[1]
		for w := 2; w <= 20; w++ {
			if curve[w] < prev-1e-9 {
				return false
			}
			prev = curve[w]
		}
		return curve[1] >= vals[0]-1e-9 && curve[20] <= vals[3]+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func testProfiler(t *testing.T) (*Kunafa, *app.Catalog) {
	t.Helper()
	spec := hw.DefaultClusterSpec()
	cat, err := app.NewCatalog(spec.Node)
	if err != nil {
		t.Fatal(err)
	}
	return New(spec), cat
}

func TestProfileClassification(t *testing.T) {
	k, cat := testProfiler(t)
	want := map[string]Class{
		"MG": Scaling, "LU": Scaling, "BW": Scaling, "TS": Scaling, "CG": Scaling,
		"BFS": Compact,
		"EP":  Neutral, "HC": Neutral, "WC": Neutral, "NW": Neutral,
	}
	for name, class := range want {
		prog, err := cat.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		p, err := k.ProfileProgram(prog, 16)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if p.Class != class {
			t.Errorf("%s classified %v, want %v (times: %v)", name, p.Class, class, times(p))
		}
	}
}

func times(p *Profile) []float64 {
	out := make([]float64, len(p.Scales))
	for i, s := range p.Scales {
		out[i] = s.TimeSec
	}
	return out
}

func TestProfileSingleNodePrograms(t *testing.T) {
	k, cat := testProfiler(t)
	gan, _ := cat.Lookup("GAN")
	p, err := k.ProfileProgram(gan, 16)
	if err != nil {
		t.Fatalf("GAN: %v", err)
	}
	if len(p.Scales) != 1 || p.Scales[0].K != 1 {
		t.Errorf("GAN profiled at %d scales, want only k=1", len(p.Scales))
	}
	if p.Class != Neutral {
		t.Errorf("GAN class %v, want neutral (cannot scale)", p.Class)
	}
}

func TestProfileCurveShapes(t *testing.T) {
	k, cat := testProfiler(t)
	cg, _ := cat.Lookup("CG")
	p, err := k.ProfileProgram(cg, 16)
	if err != nil {
		t.Fatal(err)
	}
	base, ok := p.AtK(1)
	if !ok {
		t.Fatal("no k=1 profile")
	}
	// IPC-LLC must be nondecreasing after interpolation.
	for w := 2; w <= base.FullWays(); w++ {
		if base.IPCAt(w) < base.IPCAt(w-1)-1e-9 {
			t.Fatalf("IPC curve decreasing at %d ways: %g < %g",
				w, base.IPCAt(w), base.IPCAt(w-1))
		}
	}
	if base.IPCAt(2) >= base.IPCAt(20) {
		t.Error("CG IPC with 2 ways not below full-way IPC")
	}
	// Miss rate must decrease with ways.
	if base.MissByWay[2] <= base.MissByWay[20] {
		t.Error("CG miss rate with 2 ways not above full-way miss rate")
	}
}

func TestProfileMGBandwidthBound(t *testing.T) {
	k, cat := testProfiler(t)
	mg, _ := cat.Lookup("MG")
	p, err := k.ProfileProgram(mg, 16)
	if err != nil {
		t.Fatal(err)
	}
	if p.Class != Scaling {
		t.Fatalf("MG class %v, want scaling", p.Class)
	}
	if p.ConstrainedBy != "memory-bandwidth" {
		t.Errorf("MG constrained by %q, want memory-bandwidth", p.ConstrainedBy)
	}
	base, _ := p.AtK(1)
	if bw := base.BWAt(20); bw < 90 {
		t.Errorf("MG profiled 1-node bandwidth %g GB/s, want near peak", bw)
	}
	if p.IdealK() < 2 {
		t.Errorf("MG ideal scale %d, want >= 2", p.IdealK())
	}
}

func TestByPerformanceOrder(t *testing.T) {
	k, cat := testProfiler(t)
	bw, _ := cat.Lookup("BW")
	p, err := k.ProfileProgram(bw, 16)
	if err != nil {
		t.Fatal(err)
	}
	ordered := p.ByPerformance()
	for i := 1; i < len(ordered); i++ {
		if ordered[i].TimeSec < ordered[i-1].TimeSec {
			t.Fatal("ByPerformance not sorted by ascending time")
		}
	}
	if ordered[0].K != p.IdealK() {
		t.Errorf("fastest scale %d != IdealK %d", ordered[0].K, p.IdealK())
	}
}

func TestDBRoundTrip(t *testing.T) {
	k, cat := testProfiler(t)
	db := NewDB()
	if err := k.ProfileAll(cat, []string{"MG", "EP"}, 16, db); err != nil {
		t.Fatal(err)
	}
	if len(db.Profiles) != 2 {
		t.Fatalf("db has %d profiles, want 2", len(db.Profiles))
	}
	path := filepath.Join(t.TempDir(), "profiles.json")
	if err := db.Save(path); err != nil {
		t.Fatalf("Save: %v", err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	orig, _ := db.Get("MG", 16)
	got, ok := loaded.Get("MG", 16)
	if !ok {
		t.Fatal("MG profile lost in round trip")
	}
	if got.Class != orig.Class || len(got.Scales) != len(orig.Scales) {
		t.Errorf("round trip changed profile: %+v vs %+v", got.Class, orig.Class)
	}
	if math.Abs(got.Scales[0].TimeSec-orig.Scales[0].TimeSec) > 1e-9 {
		t.Error("round trip changed timing")
	}
	if _, err := Load(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("Load of missing file succeeded")
	}
}

func TestProfileAllSkipsExisting(t *testing.T) {
	k, cat := testProfiler(t)
	db := NewDB()
	sentinel := &Profile{Program: "MG", Procs: 16, Class: Compact}
	db.Put(sentinel)
	if err := k.ProfileAll(cat, []string{"MG"}, 16, db); err != nil {
		t.Fatal(err)
	}
	got, _ := db.Get("MG", 16)
	if got != sentinel {
		t.Error("ProfileAll re-profiled an existing entry")
	}
	if err := k.ProfileAll(cat, []string{"NOPE"}, 16, db); err == nil {
		t.Error("ProfileAll accepted unknown program")
	}
}

func TestClassString(t *testing.T) {
	if Scaling.String() != "scaling" || Compact.String() != "compact" ||
		Neutral.String() != "neutral" || Class(7).String() != "Class(7)" {
		t.Error("class names wrong")
	}
}

func TestScaleProfileCurveClamping(t *testing.T) {
	s := &ScaleProfile{IPCByWay: []float64{0, 1, 2, 3}}
	if s.IPCAt(0) != 1 {
		t.Errorf("IPCAt(0) = %g, want clamp to way 1", s.IPCAt(0))
	}
	if s.IPCAt(99) != 3 {
		t.Errorf("IPCAt(99) = %g, want clamp to top way", s.IPCAt(99))
	}
	empty := &ScaleProfile{}
	if empty.IPCAt(5) != 0 || empty.BWAt(5) != 0 {
		t.Error("empty curves should read 0")
	}
}

func TestFootprint(t *testing.T) {
	k, _ := testProfiler(t)
	for _, c := range []struct {
		procs, scale, nodes, cores int
	}{
		{16, 1, 1, 16},
		{16, 2, 2, 8},
		{16, 8, 8, 2},
		{28, 1, 1, 28},
		{28, 2, 2, 14},
		{32, 1, 2, 16},
		{32, 2, 4, 8},
	} {
		n, cr := k.footprint(c.procs, c.scale)
		if n != c.nodes || cr != c.cores {
			t.Errorf("footprint(%d, %d) = (%d, %d), want (%d, %d)",
				c.procs, c.scale, n, cr, c.nodes, c.cores)
		}
	}
}
