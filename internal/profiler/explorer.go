package profiler

import (
	"fmt"
	"sort"
)

// Explorer implements the paper's piggy-backed profiling workflow
// (Section 4.2): rather than dedicating profiling runs, a new program's
// first few production submissions are used as trials — the first runs at
// scale factor 1 in exclusive mode, the next at 2x, and so on, while the
// scheduler records each trial's time and curves. Exploration stops when
// the candidate scales are exhausted or spreading saturates, after which
// the assembled profile enters the database and SNS placement takes over.
type Explorer struct {
	// CandidateKs are the scale factors to try, in order.
	CandidateKs []int
	// SaturationSlowdown stops exploration early once a scale is this
	// much slower than the best seen.
	SaturationSlowdown float64
	// NeutralBand is the classification band (Section 4.2's 5%).
	NeutralBand float64

	state map[string]*exploration
}

// exploration tracks one program/procs pair mid-exploration.
type exploration struct {
	next   int // index into CandidateKs
	scales []ScaleProfile
	best   float64
	done   bool
}

// NewExplorer returns an explorer with the paper's settings.
func NewExplorer() *Explorer {
	return &Explorer{
		CandidateKs:        []int{1, 2, 4, 8},
		SaturationSlowdown: 0.15,
		NeutralBand:        0.05,
		state:              make(map[string]*exploration),
	}
}

// NextTrial returns the scale factor the program's next production run
// should use, and whether exploration is still ongoing. Once exploration
// completes, ok is false and the caller should consult the profile
// database instead.
func (e *Explorer) NextTrial(program string, procs int) (k int, ok bool) {
	st := e.state[Key(program, procs)]
	if st == nil {
		st = &exploration{best: -1}
		e.state[Key(program, procs)] = st
	}
	if st.done || st.next >= len(e.CandidateKs) {
		return 0, false
	}
	return e.CandidateKs[st.next], true
}

// RecordTrial feeds one completed exclusive trial back: the scale it ran
// at, its measured time, and its sampled curves (any may be nil when the
// run was not instrumented; timing alone still advances exploration).
func (e *Explorer) RecordTrial(program string, procs int, sp ScaleProfile) error {
	st := e.state[Key(program, procs)]
	if st == nil || st.done {
		return fmt.Errorf("profiler: no exploration in progress for %s/%d", program, procs)
	}
	if st.next >= len(e.CandidateKs) || sp.K != e.CandidateKs[st.next] {
		return fmt.Errorf("profiler: %s/%d: trial at k=%d, expected k=%d",
			program, procs, sp.K, e.CandidateKs[st.next])
	}
	st.scales = append(st.scales, sp)
	st.next++
	if st.best < 0 || sp.TimeSec < st.best {
		st.best = sp.TimeSec
	} else if sp.TimeSec > st.best*(1+e.SaturationSlowdown) {
		// Spreading has saturated; stop wasting trials.
		st.done = true
	}
	if st.next >= len(e.CandidateKs) {
		st.done = true
	}
	return nil
}

// SkipTrial advances past a scale the program cannot run at (framework
// constraints: uneven MPI splits, single-node programs).
func (e *Explorer) SkipTrial(program string, procs int) {
	st := e.state[Key(program, procs)]
	if st == nil {
		st = &exploration{best: -1}
		e.state[Key(program, procs)] = st
	}
	st.next++
	if st.next >= len(e.CandidateKs) {
		st.done = true
	}
}

// Done reports whether exploration for the pair has finished.
func (e *Explorer) Done(program string, procs int) bool {
	st := e.state[Key(program, procs)]
	return st != nil && st.done
}

// Finish assembles the explored trials into a classified profile and
// clears the exploration state. It fails if no trials were recorded.
func (e *Explorer) Finish(program string, procs int) (*Profile, error) {
	st := e.state[Key(program, procs)]
	if st == nil || len(st.scales) == 0 {
		return nil, fmt.Errorf("profiler: %s/%d: nothing explored", program, procs)
	}
	p := &Profile{Program: program, Procs: procs}
	p.Scales = append(p.Scales, st.scales...)
	sort.Slice(p.Scales, func(a, b int) bool { return p.Scales[a].K < p.Scales[b].K })
	classifyProfile(p, e.NeutralBand)
	delete(e.state, Key(program, procs))
	return p, nil
}

// classifyProfile applies the Section 4.2 classification to an assembled
// profile (shared with Kunafa's dedicated-run path).
func classifyProfile(p *Profile, band float64) {
	base, ok := p.AtK(1)
	if !ok || len(p.Scales) == 1 {
		p.Class = Neutral
		return
	}
	best := p.Best()
	allSlower := true
	for i := range p.Scales {
		s := &p.Scales[i]
		if s.K > 1 && s.TimeSec <= base.TimeSec*(1+band) {
			allSlower = false
		}
	}
	switch {
	case best.TimeSec < base.TimeSec*(1-band):
		p.Class = Scaling
	case allSlower:
		p.Class = Compact
	default:
		p.Class = Neutral
	}
}
