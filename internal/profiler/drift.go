package profiler

import (
	"math"
	"sort"
)

// Reading is one lightweight monitoring observation of a running program:
// the three key metrics Section 5.2 proposes watching on production
// platforms to decide when a program has changed enough to invalidate its
// profile — IPC, memory bandwidth, and LLC miss rate.
type Reading struct {
	IPC       float64
	BWPerNode float64
	MissPct   float64
}

// DriftMonitor accumulates recent exclusive-run readings per profiled
// program and reports when their distribution has drifted from the
// profile, triggering re-profiling. Observations are expected from
// full-allocation exclusive episodes (the conditions the profile's
// full-way point was measured under); production schedulers get these for
// free whenever a job happens to run alone.
type DriftMonitor struct {
	// Tolerance is the relative deviation of the windowed median from
	// the profiled value that triggers re-profiling.
	Tolerance float64
	// MinSamples readings must accumulate before a verdict (guards
	// against warm-up noise).
	MinSamples int
	// Window bounds how many recent readings are kept per program.
	Window int

	readings map[string][]Reading
}

// NewDriftMonitor returns a monitor with the given tolerance (e.g. 0.2
// for 20%).
func NewDriftMonitor(tolerance float64) *DriftMonitor {
	return &DriftMonitor{
		Tolerance:  tolerance,
		MinSamples: 5,
		Window:     64,
		readings:   make(map[string][]Reading),
	}
}

// Observe records one reading for a program/procs pair.
func (m *DriftMonitor) Observe(program string, procs int, r Reading) {
	key := Key(program, procs)
	rs := append(m.readings[key], r)
	if len(rs) > m.Window {
		rs = rs[len(rs)-m.Window:]
	}
	m.readings[key] = rs
}

// Samples returns how many readings are buffered for a pair.
func (m *DriftMonitor) Samples(program string, procs int) int {
	return len(m.readings[Key(program, procs)])
}

// median of a metric extracted from readings.
func median(rs []Reading, get func(Reading) float64) float64 {
	vals := make([]float64, len(rs))
	for i, r := range rs {
		vals[i] = get(r)
	}
	sort.Float64s(vals)
	n := len(vals)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return vals[n/2]
	}
	return (vals[n/2-1] + vals[n/2]) / 2
}

// relDev is |observed-expected| / expected, treating tiny expectations as
// absolute comparisons so near-zero bandwidths don't divide to infinity.
func relDev(observed, expected float64) float64 {
	if math.Abs(expected) < 1e-3 {
		return math.Abs(observed - expected)
	}
	return math.Abs(observed-expected) / math.Abs(expected)
}

// NeedsReprofile compares the windowed medians against the profile's
// compact full-allocation point and reports whether any key metric has
// drifted beyond the tolerance. It returns false while fewer than
// MinSamples readings are buffered.
func (m *DriftMonitor) NeedsReprofile(p *Profile) bool {
	rs := m.readings[Key(p.Program, p.Procs)]
	if len(rs) < m.MinSamples {
		return false
	}
	base, ok := p.AtK(1)
	if !ok || base.FullWays() < 1 {
		return false
	}
	full := base.FullWays()
	if relDev(median(rs, func(r Reading) float64 { return r.IPC }), base.IPCAt(full)) > m.Tolerance {
		return true
	}
	if relDev(median(rs, func(r Reading) float64 { return r.BWPerNode }), base.BWAt(full)) > m.Tolerance {
		return true
	}
	if relDev(median(rs, func(r Reading) float64 { return r.MissPct }), base.MissByWay[full]) > m.Tolerance {
		return true
	}
	return false
}

// Drifted scans a database and returns the profiles whose buffered
// readings indicate drift, in stable key order.
func (m *DriftMonitor) Drifted(db *DB) []*Profile {
	keys := make([]string, 0, len(db.Profiles))
	for k := range db.Profiles {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var out []*Profile
	for _, k := range keys {
		p := db.Profiles[k]
		if m.NeedsReprofile(p) {
			out = append(out, p)
		}
	}
	return out
}

// Reset clears the buffered readings for a pair (called after
// re-profiling).
func (m *DriftMonitor) Reset(program string, procs int) {
	delete(m.readings, Key(program, procs))
}
