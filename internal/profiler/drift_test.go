package profiler

import (
	"testing"

	"spreadnshare/internal/app"
	"spreadnshare/internal/exec"
	"spreadnshare/internal/hw"
)

// steadyReading returns the reading a stable program produces at full
// allocation, straight from its profile.
func steadyReading(p *Profile) Reading {
	base, _ := p.AtK(1)
	full := base.FullWays()
	return Reading{
		IPC:       base.IPCAt(full),
		BWPerNode: base.BWAt(full),
		MissPct:   base.MissByWay[full],
	}
}

func TestDriftStableProgramQuiet(t *testing.T) {
	k, cat := testProfiler(t)
	cg, _ := cat.Lookup("CG")
	p, err := k.ProfileProgram(cg, 16)
	if err != nil {
		t.Fatal(err)
	}
	m := NewDriftMonitor(0.2)
	r := steadyReading(p)
	for i := 0; i < 10; i++ {
		m.Observe("CG", 16, r)
	}
	if m.NeedsReprofile(p) {
		t.Error("stable readings triggered re-profiling")
	}
}

func TestDriftBelowMinSamples(t *testing.T) {
	k, cat := testProfiler(t)
	cg, _ := cat.Lookup("CG")
	p, err := k.ProfileProgram(cg, 16)
	if err != nil {
		t.Fatal(err)
	}
	m := NewDriftMonitor(0.2)
	// Wildly different readings, but too few of them.
	for i := 0; i < m.MinSamples-1; i++ {
		m.Observe("CG", 16, Reading{IPC: 99, BWPerNode: 99, MissPct: 99})
	}
	if m.NeedsReprofile(p) {
		t.Error("verdict issued below MinSamples")
	}
	if got := m.Samples("CG", 16); got != m.MinSamples-1 {
		t.Errorf("Samples = %d", got)
	}
}

func TestDriftDetectsChangedProgram(t *testing.T) {
	// Profile CG, then simulate a code change: a variant whose IPC and
	// bandwidth behavior differ. Running the variant and observing its
	// real metrics must trigger re-profiling.
	spec := hw.DefaultClusterSpec()
	cat, err := app.NewCatalog(spec.Node)
	if err != nil {
		t.Fatal(err)
	}
	k := New(spec)
	cg, _ := cat.Lookup("CG")
	p, err := k.ProfileProgram(cg, 16)
	if err != nil {
		t.Fatal(err)
	}

	// The "updated" CG: same name to users, different innards.
	changed := *cg
	changed.IPCMax = cg.IPCMax * 0.55
	changed.BWPerCoreRef = cg.BWPerCoreRef * 2
	if err := changed.Calibrate(spec.Node); err != nil {
		t.Fatal(err)
	}

	m := NewDriftMonitor(0.2)
	for i := 0; i < 6; i++ {
		_, _, metrics, err := exec.RunSoloStats(spec, &changed, 16, 1)
		if err != nil {
			t.Fatal(err)
		}
		m.Observe("CG", 16, Reading{
			IPC: metrics.IPC.Float64(), BWPerNode: metrics.BWPerNode.Float64(), MissPct: metrics.MissPct,
		})
	}
	if !m.NeedsReprofile(p) {
		t.Error("changed program did not trigger re-profiling")
	}
	m.Reset("CG", 16)
	if m.NeedsReprofile(p) {
		t.Error("Reset did not clear readings")
	}
}

func TestDriftSingleMetricSufficient(t *testing.T) {
	k, cat := testProfiler(t)
	cg, _ := cat.Lookup("CG")
	p, err := k.ProfileProgram(cg, 16)
	if err != nil {
		t.Fatal(err)
	}
	base := steadyReading(p)
	for name, mutate := range map[string]func(Reading) Reading{
		"ipc":  func(r Reading) Reading { r.IPC *= 0.5; return r },
		"bw":   func(r Reading) Reading { r.BWPerNode *= 2; return r },
		"miss": func(r Reading) Reading { r.MissPct *= 1.5; return r },
	} {
		m := NewDriftMonitor(0.2)
		for i := 0; i < 8; i++ {
			m.Observe("CG", 16, mutate(base))
		}
		if !m.NeedsReprofile(p) {
			t.Errorf("%s drift alone not detected", name)
		}
	}
}

func TestDriftWindowBounds(t *testing.T) {
	m := NewDriftMonitor(0.2)
	m.Window = 4
	for i := 0; i < 10; i++ {
		m.Observe("X", 16, Reading{IPC: float64(i)})
	}
	if got := m.Samples("X", 16); got != 4 {
		t.Errorf("window kept %d samples, want 4", got)
	}
}

func TestDriftedScansDatabase(t *testing.T) {
	k, cat := testProfiler(t)
	db := NewDB()
	if err := k.ProfileAll(cat, []string{"CG", "EP"}, 16, db); err != nil {
		t.Fatal(err)
	}
	m := NewDriftMonitor(0.2)
	cgProf, _ := db.Get("CG", 16)
	// CG drifts, EP stays quiet.
	bad := steadyReading(cgProf)
	bad.IPC *= 0.3
	for i := 0; i < 8; i++ {
		m.Observe("CG", 16, bad)
	}
	epProf, _ := db.Get("EP", 16)
	for i := 0; i < 8; i++ {
		m.Observe("EP", 16, steadyReading(epProf))
	}
	drifted := m.Drifted(db)
	if len(drifted) != 1 || drifted[0].Program != "CG" {
		t.Errorf("Drifted = %v, want only CG", names(drifted))
	}
}

func names(ps []*Profile) []string {
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = p.Program
	}
	return out
}

func TestMedianHelper(t *testing.T) {
	rs := []Reading{{IPC: 3}, {IPC: 1}, {IPC: 2}}
	if got := median(rs, func(r Reading) float64 { return r.IPC }); got != 2 {
		t.Errorf("median = %g, want 2", got)
	}
	rs = append(rs, Reading{IPC: 4})
	if got := median(rs, func(r Reading) float64 { return r.IPC }); got != 2.5 {
		t.Errorf("even median = %g, want 2.5", got)
	}
	if got := median(nil, func(r Reading) float64 { return r.IPC }); got != 0 {
		t.Errorf("empty median = %g, want 0", got)
	}
}

func TestRelDev(t *testing.T) {
	if got := relDev(110, 100); got != 0.1 {
		t.Errorf("relDev = %g, want 0.1", got)
	}
	// Near-zero expectations compare absolutely.
	if got := relDev(0.5, 0.0001); got >= 1 {
		t.Errorf("near-zero relDev = %g, want absolute ~0.5", got)
	}
}

func TestExplorerStateMachine(t *testing.T) {
	e := NewExplorer()
	// Full happy-path exploration: 1, 2, 4, 8 with improving times.
	times := map[int]float64{1: 100, 2: 80, 4: 70, 8: 65}
	for {
		k, ok := e.NextTrial("P", 16)
		if !ok {
			break
		}
		if err := e.RecordTrial("P", 16, ScaleProfile{K: k, TimeSec: times[k]}); err != nil {
			t.Fatal(err)
		}
	}
	if !e.Done("P", 16) {
		t.Fatal("exploration not done after all candidates")
	}
	p, err := e.Finish("P", 16)
	if err != nil {
		t.Fatal(err)
	}
	if p.Class != Scaling || p.IdealK() != 8 || len(p.Scales) != 4 {
		t.Errorf("profile = class %v ideal %d scales %d", p.Class, p.IdealK(), len(p.Scales))
	}
}

func TestExplorerSkipAndNeutral(t *testing.T) {
	e := NewExplorer()
	k, _ := e.NextTrial("Q", 16)
	if err := e.RecordTrial("Q", 16, ScaleProfile{K: k, TimeSec: 100}); err != nil {
		t.Fatal(err)
	}
	// Remaining scales infeasible: skip them all.
	for i := 0; i < 3; i++ {
		e.SkipTrial("Q", 16)
	}
	if !e.Done("Q", 16) {
		t.Fatal("not done after skipping all scales")
	}
	p, err := e.Finish("Q", 16)
	if err != nil {
		t.Fatal(err)
	}
	if p.Class != Neutral {
		t.Errorf("single-scale profile class %v, want neutral", p.Class)
	}
	// SkipTrial on a fresh pair initializes state.
	e.SkipTrial("R", 16)
	if k, ok := e.NextTrial("R", 16); !ok || k != 2 {
		t.Errorf("after initial skip, next trial = %d, %v; want 2, true", k, ok)
	}
	// Finish with nothing explored fails.
	if _, err := e.Finish("Z", 16); err == nil {
		t.Error("Finish with no trials succeeded")
	}
}

func TestExplorerNeutralWithinBand(t *testing.T) {
	e := NewExplorer()
	// Times within 5%: neutral classification.
	for _, k := range []int{1, 2, 4, 8} {
		if kk, ok := e.NextTrial("N", 16); !ok || kk != k {
			t.Fatalf("trial order wrong at %d", k)
		}
		if err := e.RecordTrial("N", 16, ScaleProfile{K: k, TimeSec: 100 - float64(k)*0.3}); err != nil {
			t.Fatal(err)
		}
	}
	p, err := e.Finish("N", 16)
	if err != nil {
		t.Fatal(err)
	}
	if p.Class != Neutral {
		t.Errorf("class %v, want neutral (within 5%% band)", p.Class)
	}
}
