package profiler

import (
	"fmt"
	"math"

	"spreadnshare/internal/app"
	"spreadnshare/internal/exec"
	"spreadnshare/internal/hw"
	"spreadnshare/internal/units"
)

// Kunafa profiles programs on a simulated cluster the way the paper's
// monitor profiles them on hardware: per candidate scale factor, one clean
// exclusive run for timing plus one instrumented run whose LLC allocation
// is rotated through sample points every few seconds while PMU metrics are
// recorded.
type Kunafa struct {
	// Spec is the cluster profiled on.
	Spec hw.ClusterSpec
	// SampleWays are the LLC allocations rotated through; the paper
	// samples 2, 4, 8 and 20 ways.
	SampleWays []int
	// EpisodeSec is the fixed-allocation episode length (paper: 5 s).
	EpisodeSec float64
	// CandidateKs are the scale factors explored (paper: 1, 2, 4, 8).
	CandidateKs []int
	// SaturationSlowdown stops the scale exploration once a scale is
	// this much slower than the best seen (paper terminates when
	// spreading "saturates").
	SaturationSlowdown float64
	// NeutralBand is the run-time variation within which a program is
	// classified Neutral (Section 4.2 uses 5%).
	NeutralBand float64
}

// New returns a profiler with the paper's settings.
func New(spec hw.ClusterSpec) *Kunafa {
	return &Kunafa{
		Spec:               spec,
		SampleWays:         []int{2, 4, 8, spec.Node.LLCWays.Int()},
		EpisodeSec:         5,
		CandidateKs:        []int{1, 2, 4, 8},
		SaturationSlowdown: 0.15,
		NeutralBand:        0.05,
	}
}

// footprint computes the node count and max cores per node for a process
// count at scale factor k on the profiler's node size.
func (k *Kunafa) footprint(procs, scale int) (nodes, cores int) {
	minNodes := (procs + k.Spec.Node.Cores.Int() - 1) / k.Spec.Node.Cores.Int()
	nodes = scale * minNodes
	cores = (procs + nodes - 1) / nodes
	return nodes, cores
}

// ProfileProgram measures one program at the candidate scales and returns
// the assembled profile. Scales that the framework cannot run (uneven MPI
// splits, single-node programs) or the cluster cannot host are skipped.
func (k *Kunafa) ProfileProgram(prog *app.Model, procs int) (*Profile, error) {
	p := &Profile{Program: prog.Name, Procs: procs}
	bestTime := math.Inf(1)
	for _, scale := range k.CandidateKs {
		nodes, cores := k.footprint(procs, scale)
		if nodes > k.Spec.Nodes || nodes > procs {
			break
		}
		sp, err := k.profileScale(prog, procs, scale, nodes, cores)
		if err != nil {
			// Framework constraint: this scale is simply not
			// runnable for the program; move on.
			continue
		}
		p.Scales = append(p.Scales, *sp)
		if sp.TimeSec < bestTime {
			bestTime = sp.TimeSec
		} else if sp.TimeSec > bestTime*(1+k.SaturationSlowdown) {
			// Spreading has saturated; stop burning profiling runs.
			break
		}
	}
	if len(p.Scales) == 0 {
		return nil, fmt.Errorf("profiler: %s/%d: no runnable scale", prog.Name, procs)
	}
	k.classify(p)
	return p, nil
}

// profileScale measures one (program, scale) point: a clean run for the
// time, then an instrumented run for the cache-sensitivity curves.
func (k *Kunafa) profileScale(prog *app.Model, procs, scale, nodes, cores int) (*ScaleProfile, error) {
	clean, err := exec.RunSolo(k.Spec, prog, procs, nodes)
	if err != nil {
		return nil, err
	}
	ipcS, bwS, missS, io, err := k.instrumentedRun(prog, procs, nodes)
	if err != nil {
		return nil, err
	}
	maxW := k.Spec.Node.LLCWays.Int()
	return &ScaleProfile{
		K:            scale,
		Nodes:        nodes,
		CoresPerNode: cores,
		TimeSec:      clean.RunTime(),
		IPCByWay:     Interpolate(ipcS, maxW),
		BWByWay:      Interpolate(bwS, maxW),
		MissByWay:    Interpolate(missS, maxW),
		IOPerNode:    io,
	}, nil
}

// instrumentedRun executes the job solo while rotating its LLC allocation
// through SampleWays, sampling the simulated PMUs mid-episode, and
// averaging the readings per allocation over the whole run (capturing
// program phases, as the repeated adjustment in the paper does).
func (k *Kunafa) instrumentedRun(prog *app.Model, procs, nodes int) (ipc, bw, miss map[int]float64, io float64, err error) {
	e, err := exec.New(k.Spec)
	if err != nil {
		return nil, nil, nil, 0, err
	}
	j, err := exec.PlaceEven(prog, 0, procs, nodes, k.Spec.Nodes)
	if err != nil {
		return nil, nil, nil, 0, err
	}
	if err := e.Launch(j); err != nil {
		return nil, nil, nil, 0, err
	}

	type acc struct {
		sum   float64
		count int
	}
	ipcA := make(map[int]*acc)
	bwA := make(map[int]*acc)
	missA := make(map[int]*acc)
	ioSum, ioCount := 0.0, 0

	idx := 0
	var episode func()
	episode = func() {
		if j.State != exec.Running {
			return
		}
		ways := k.SampleWays[idx%len(k.SampleWays)]
		idx++
		if err := e.SetJobWays(j.ID, units.WaysOf(ways)); err != nil {
			return
		}
		// Sample mid-episode (conditions are constant within one).
		e.Queue().At(e.Now()+k.EpisodeSec/2, func() {
			if j.State != exec.Running {
				return
			}
			m, err := e.JobMetrics(j.ID)
			if err != nil {
				return
			}
			get := func(mm map[int]*acc) *acc {
				a := mm[ways]
				if a == nil {
					a = &acc{}
					mm[ways] = a
				}
				return a
			}
			a := get(ipcA)
			a.sum += m.IPC.Float64()
			a.count++
			ioSum += m.IOPerNode.Float64()
			ioCount++
			b := get(bwA)
			b.sum += m.BWPerNode.Float64()
			b.count++
			c := get(missA)
			c.sum += m.MissPct
			c.count++
		})
		e.Queue().At(e.Now()+k.EpisodeSec, episode)
	}
	e.Queue().At(0, episode)
	e.Run(0)
	if j.State != exec.Done {
		return nil, nil, nil, 0, fmt.Errorf("profiler: instrumented run of %s did not finish", prog.Name)
	}

	avg := func(mm map[int]*acc) map[int]float64 {
		out := make(map[int]float64, len(mm))
		for w, a := range mm {
			if a.count > 0 {
				out[w] = a.sum / float64(a.count)
			}
		}
		return out
	}
	if ioCount > 0 {
		io = ioSum / float64(ioCount)
	}
	return avg(ipcA), avg(bwA), avg(missA), io, nil
}

// classify assigns the Section 4.2 class and identifies the constraining
// resource for scaling programs.
func (k *Kunafa) classify(p *Profile) {
	base, ok := p.AtK(1)
	if !ok || len(p.Scales) == 1 {
		p.Class = Neutral
		return
	}
	best := p.Best()
	allSlower := true
	for i := range p.Scales {
		s := &p.Scales[i]
		if s.K > 1 && s.TimeSec <= base.TimeSec*(1+k.NeutralBand) {
			allSlower = false
		}
	}
	switch {
	case best.TimeSec < base.TimeSec*(1-k.NeutralBand):
		p.Class = Scaling
		p.ConstrainedBy = k.constraint(base)
	case allSlower:
		p.Class = Compact
	default:
		p.Class = Neutral
	}
}

// constraint infers the bottleneck from the compact-placement profile: a
// node draining most of its peak bandwidth is bandwidth-bound; a program
// needing most of the LLC for 90% performance is cache-bound.
func (k *Kunafa) constraint(base *ScaleProfile) string {
	full := base.FullWays()
	bwBound := base.BWAt(full) > 0.6*k.Spec.Node.PeakBandwidth.Float64()
	needed := full
	for w := 1; w <= full; w++ {
		if base.IPCAt(w) >= 0.9*base.IPCAt(full) {
			needed = w
			break
		}
	}
	llcBound := needed >= full/2
	switch {
	case bwBound && llcBound:
		return "memory-bandwidth+llc"
	case bwBound:
		return "memory-bandwidth"
	case llcBound:
		return "llc"
	}
	return "scale"
}

// ProfileAll profiles every named program at the given process count into
// the database, skipping pairs already present (profiles are reused across
// recurring jobs).
func (k *Kunafa) ProfileAll(cat *app.Catalog, names []string, procs int, db *DB) error {
	for _, name := range names {
		if _, ok := db.Get(name, procs); ok {
			continue
		}
		prog, err := cat.Lookup(name)
		if err != nil {
			return err
		}
		p, err := k.ProfileProgram(prog, procs)
		if err != nil {
			return fmt.Errorf("profiler: %s: %w", name, err)
		}
		db.Put(p)
	}
	return nil
}
