// Package profiler implements Kunafa, the paper's lightweight PMU-based
// profiler, against the simulated cluster. It measures each program at a
// small set of scale factors: a clean exclusive run for timing, plus an
// instrumented run that periodically re-programs the job's LLC allocation
// (2, 4, 8 and full ways, five-second episodes) while sampling IPC and
// memory bandwidth, then linearly interpolates the IPC-LLC and BW-LLC
// curves (Section 5.1). Profiles accumulate in a JSON database keyed by
// program and process count, ready for reuse across recurring submissions.
package profiler

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// Class is the scaling classification of Section 4.2.
type Class int

const (
	// Neutral programs run within 5% across all scale factors; they
	// are ideal fillers.
	Neutral Class = iota
	// Scaling programs speed up when spread onto more nodes.
	Scaling
	// Compact programs suffer from spreading and should stay at their
	// minimum footprint.
	Compact
)

// String returns the class name.
func (c Class) String() string {
	switch c {
	case Neutral:
		return "neutral"
	case Scaling:
		return "scaling"
	case Compact:
		return "compact"
	}
	return fmt.Sprintf("Class(%d)", int(c))
}

// ScaleProfile is the measurement of one program at one scale factor.
type ScaleProfile struct {
	// K is the scale factor: the job uses K times its minimum node
	// footprint.
	K int `json:"k"`
	// Nodes and CoresPerNode describe the measured placement
	// (CoresPerNode is the maximum across nodes).
	Nodes        int `json:"nodes"`
	CoresPerNode int `json:"coresPerNode"`
	// TimeSec is the exclusive run time from the clean (uninstrumented)
	// run.
	TimeSec float64 `json:"timeSec"`
	// IPCByWay[w] is the measured per-core IPC with w ways allocated
	// per node (index 0 unused). Missing sample points are linearly
	// interpolated.
	IPCByWay []float64 `json:"ipcByWay"`
	// BWByWay[w] is the measured per-node memory bandwidth (GB/s).
	BWByWay []float64 `json:"bwByWay"`
	// MissByWay[w] is the measured LLC miss rate (%).
	MissByWay []float64 `json:"missByWay"`
	// IOPerNode is the measured parallel-file-system bandwidth per
	// node (GB/s); cache allocation does not affect it.
	IOPerNode float64 `json:"ioPerNode,omitempty"`
}

// FullWays returns the largest way index the curves cover.
func (s *ScaleProfile) FullWays() int { return len(s.IPCByWay) - 1 }

// IPCAt returns the profiled IPC at a way allocation, clamping out-of-range
// indices.
func (s *ScaleProfile) IPCAt(w int) float64 {
	return curveAt(s.IPCByWay, w)
}

// BWAt returns the profiled per-node bandwidth at a way allocation.
func (s *ScaleProfile) BWAt(w int) float64 {
	return curveAt(s.BWByWay, w)
}

func curveAt(curve []float64, w int) float64 {
	if len(curve) <= 1 {
		return 0
	}
	if w < 1 {
		w = 1
	}
	if w > len(curve)-1 {
		w = len(curve) - 1
	}
	return curve[w]
}

// Profile is the accumulated knowledge about one (program, process count)
// pair.
type Profile struct {
	Program string `json:"program"`
	Procs   int    `json:"procs"`
	// Scales holds per-scale measurements in ascending K.
	Scales []ScaleProfile `json:"scales"`
	// Class is the scaling classification.
	Class Class `json:"class"`
	// ConstrainedBy names the resource bottleneck identified for
	// scaling programs ("memory-bandwidth", "llc", or "").
	ConstrainedBy string `json:"constrainedBy,omitempty"`
}

// Key returns the database key for a program/procs pair.
func Key(program string, procs int) string { return fmt.Sprintf("%s/%d", program, procs) }

// AtK returns the measurement for scale factor k.
func (p *Profile) AtK(k int) (*ScaleProfile, bool) {
	for i := range p.Scales {
		if p.Scales[i].K == k {
			return &p.Scales[i], true
		}
	}
	return nil, false
}

// Best returns the fastest profiled scale.
func (p *Profile) Best() *ScaleProfile {
	if len(p.Scales) == 0 {
		return nil
	}
	best := &p.Scales[0]
	for i := range p.Scales {
		if p.Scales[i].TimeSec < best.TimeSec {
			best = &p.Scales[i]
		}
	}
	return best
}

// ByPerformance returns the profiled scales ordered by descending
// exclusive-run performance (ascending time), the order SNS tries scale
// factors in (Section 4.4).
func (p *Profile) ByPerformance() []*ScaleProfile {
	out := make([]*ScaleProfile, len(p.Scales))
	for i := range p.Scales {
		out[i] = &p.Scales[i]
	}
	sort.SliceStable(out, func(a, b int) bool { return out[a].TimeSec < out[b].TimeSec })
	return out
}

// IdealK returns the scale factor with the best exclusive performance,
// or 1 if unprofiled.
func (p *Profile) IdealK() int {
	if b := p.Best(); b != nil {
		return b.K
	}
	return 1
}

// DB is the central profile database Uberun's daemons feed (a JSON file on
// the master node, cached in memory).
type DB struct {
	Profiles map[string]*Profile `json:"profiles"`
}

// NewDB returns an empty database.
func NewDB() *DB { return &DB{Profiles: make(map[string]*Profile)} }

// Get returns the profile for a program/procs pair.
func (db *DB) Get(program string, procs int) (*Profile, bool) {
	p, ok := db.Profiles[Key(program, procs)]
	return p, ok
}

// Put stores a profile, replacing any previous one.
func (db *DB) Put(p *Profile) {
	db.Profiles[Key(p.Program, p.Procs)] = p
}

// Save writes the database as JSON.
func (db *DB) Save(path string) error {
	data, err := json.MarshalIndent(db, "", "  ")
	if err != nil {
		return fmt.Errorf("profiler: marshal: %w", err)
	}
	return os.WriteFile(path, data, 0o644)
}

// Load reads a database written by Save.
func Load(path string) (*DB, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("profiler: %w", err)
	}
	db := NewDB()
	if err := json.Unmarshal(data, db); err != nil {
		return nil, fmt.Errorf("profiler: parse %s: %w", path, err)
	}
	if db.Profiles == nil {
		db.Profiles = make(map[string]*Profile)
	}
	return db, nil
}

// Interpolate fills a dense way-indexed curve (1..maxWays) from sparse
// sample points, linearly between samples and flat beyond the extremes —
// the paper samples at {2, 4, 8, 20} and interpolates the rest.
func Interpolate(samples map[int]float64, maxWays int) []float64 {
	curve := make([]float64, maxWays+1)
	if len(samples) == 0 {
		return curve
	}
	xs := make([]int, 0, len(samples))
	for x := range samples {
		if x >= 1 && x <= maxWays {
			xs = append(xs, x)
		}
	}
	if len(xs) == 0 {
		return curve
	}
	sort.Ints(xs)
	for w := 1; w <= maxWays; w++ {
		switch {
		case w <= xs[0]:
			curve[w] = samples[xs[0]]
		case w >= xs[len(xs)-1]:
			curve[w] = samples[xs[len(xs)-1]]
		default:
			// Find the bracketing samples.
			hi := sort.SearchInts(xs, w)
			if xs[hi] == w {
				curve[w] = samples[w]
				continue
			}
			lo := hi - 1
			x0, x1 := xs[lo], xs[hi]
			y0, y1 := samples[x0], samples[x1]
			curve[w] = y0 + (y1-y0)*float64(w-x0)/float64(x1-x0)
		}
	}
	return curve
}
