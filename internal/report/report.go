// Package report renders scheduling results and experiment tables in
// machine-readable forms (CSV, JSON) so the CLIs compose with plotting
// and analysis pipelines.
package report

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"

	"spreadnshare/internal/exec"
	"spreadnshare/internal/pmu"
	"spreadnshare/internal/stats"
)

// WriteCSV writes experiment rows (first row = header) as CSV.
func WriteCSV(w io.Writer, rows [][]string) error {
	cw := csv.NewWriter(w)
	if err := cw.WriteAll(rows); err != nil {
		return fmt.Errorf("report: %w", err)
	}
	cw.Flush()
	return cw.Error()
}

// JobRecord is the JSON form of one finished job.
type JobRecord struct {
	ID         int     `json:"id"`
	Program    string  `json:"program"`
	Procs      int     `json:"procs"`
	Nodes      []int   `json:"nodes"`
	Cores      []int   `json:"coresPerNode"`
	Ways       int     `json:"llcWays"`
	BWCap      float64 `json:"bwCapGB,omitempty"`
	Exclusive  bool    `json:"exclusive"`
	State      string  `json:"state"`
	Submit     float64 `json:"submitSec"`
	Start      float64 `json:"startSec"`
	Finish     float64 `json:"finishSec"`
	Wait       float64 `json:"waitSec"`
	Run        float64 `json:"runSec"`
	Turnaround float64 `json:"turnaroundSec"`
}

// RunReport is the JSON form of one scheduling run.
type RunReport struct {
	Policy          string      `json:"policy"`
	ClusterNodes    int         `json:"clusterNodes"`
	Jobs            []JobRecord `json:"jobs"`
	MeanTurnaround  float64     `json:"meanTurnaroundSec"`
	ThroughputJobsS float64     `json:"throughputJobsPerSec"`
	MakespanSec     float64     `json:"makespanSec"`
}

// FromJobs assembles a run report from finished jobs.
func FromJobs(policy string, clusterNodes int, jobs []*exec.Job) *RunReport {
	r := &RunReport{Policy: policy, ClusterNodes: clusterNodes}
	var turns []float64
	for _, j := range jobs {
		turns = append(turns, j.Turnaround())
		if j.Finish > r.MakespanSec {
			r.MakespanSec = j.Finish
		}
		r.Jobs = append(r.Jobs, JobRecord{
			ID:      j.ID,
			Program: j.Prog.Name,
			Procs:   j.Procs,
			Nodes:   j.Nodes,
			Cores:   j.CoresByNode,
			Ways:    j.Ways.Int(),
			BWCap:   j.BWCap.Float64(),

			Exclusive:  j.Exclusive,
			State:      j.State.String(),
			Submit:     j.Submit,
			Start:      j.Start,
			Finish:     j.Finish,
			Wait:       j.WaitTime(),
			Run:        j.RunTime(),
			Turnaround: j.Turnaround(),
		})
	}
	r.MeanTurnaround = stats.Mean(turns)
	r.ThroughputJobsS = stats.Throughput(turns)
	return r
}

// WriteJSON writes the report with indentation.
func (r *RunReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		return fmt.Errorf("report: %w", err)
	}
	return nil
}

// Utilization summarizes core occupancy from monitoring samples: the mean
// fraction of cluster cores busy across all recorded episodes — the
// "idle cores" waste CE suffers from and node sharing recovers.
func Utilization(samples []pmu.NodeSample, coresPerNode int) float64 {
	if len(samples) == 0 || coresPerNode <= 0 {
		return 0
	}
	total := 0.0
	for _, s := range samples {
		total += float64(s.ActiveCores) / float64(coresPerNode)
	}
	return total / float64(len(samples))
}
