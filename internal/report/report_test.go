package report

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"spreadnshare/internal/app"
	"spreadnshare/internal/exec"
	"spreadnshare/internal/hw"
	"spreadnshare/internal/pmu"
)

func TestWriteCSV(t *testing.T) {
	var buf bytes.Buffer
	rows := [][]string{{"a", "b"}, {"1", "with,comma"}}
	if err := WriteCSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	want := "a,b\n1,\"with,comma\"\n"
	if buf.String() != want {
		t.Errorf("CSV = %q, want %q", buf.String(), want)
	}
}

func TestRunReportRoundTrip(t *testing.T) {
	spec := hw.DefaultClusterSpec()
	cat, err := app.NewCatalog(spec.Node)
	if err != nil {
		t.Fatal(err)
	}
	mg, _ := cat.Lookup("MG")
	j, err := exec.RunSolo(spec, mg, 16, 2)
	if err != nil {
		t.Fatal(err)
	}
	r := FromJobs("SNS", 8, []*exec.Job{j})
	if r.MeanTurnaround != j.Turnaround() || r.MakespanSec != j.Finish {
		t.Errorf("aggregates wrong: %+v", r)
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var parsed RunReport
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(parsed.Jobs) != 1 || parsed.Jobs[0].Program != "MG" ||
		parsed.Jobs[0].State != "done" || len(parsed.Jobs[0].Nodes) != 2 {
		t.Errorf("parsed report = %+v", parsed.Jobs)
	}
	if !strings.Contains(buf.String(), "\"turnaroundSec\"") {
		t.Error("JSON missing expected field name")
	}
}

func TestFromJobsEmpty(t *testing.T) {
	r := FromJobs("CE", 8, nil)
	if r.MeanTurnaround != 0 || r.ThroughputJobsS != 0 || len(r.Jobs) != 0 {
		t.Errorf("empty report = %+v", r)
	}
}

func TestUtilization(t *testing.T) {
	samples := []pmu.NodeSample{
		{Node: 0, ActiveCores: 28},
		{Node: 1, ActiveCores: 14},
		{Node: 2, ActiveCores: 0},
	}
	got := Utilization(samples, 28)
	want := (1.0 + 0.5 + 0.0) / 3
	if got < want-1e-9 || got > want+1e-9 {
		t.Errorf("Utilization = %g, want %g", got, want)
	}
	if Utilization(nil, 28) != 0 || Utilization(samples, 0) != 0 {
		t.Error("degenerate cases wrong")
	}
}
