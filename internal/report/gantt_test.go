package report

import (
	"strings"
	"testing"

	"spreadnshare/internal/app"
	"spreadnshare/internal/exec"
	"spreadnshare/internal/hw"
)

func ganttJobs(t *testing.T) []*exec.Job {
	t.Helper()
	cat, err := app.NewCatalog(hw.DefaultNodeSpec())
	if err != nil {
		t.Fatal(err)
	}
	mg, _ := cat.Lookup("MG")
	hc, _ := cat.Lookup("HC")
	a := &exec.Job{ID: 0, Prog: mg, Procs: 16, Nodes: []int{0, 1}, CoresByNode: []int{8, 8},
		Start: 0, Finish: 100, State: exec.Done}
	b := &exec.Job{ID: 1, Prog: hc, Procs: 8, Nodes: []int{0}, CoresByNode: []int{8},
		Start: 0, Finish: 200, State: exec.Done}
	c := &exec.Job{ID: 2, Prog: hc, Procs: 8, Nodes: []int{1}, CoresByNode: []int{8},
		Start: 120, Finish: 200, State: exec.Done}
	return []*exec.Job{a, b, c}
}

func TestGanttLayout(t *testing.T) {
	out := Gantt(ganttJobs(t), 2, 60)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Header + node 0 (two lanes: MG and HC overlap) + node 1 (one
	// lane: MG then HC are disjoint in time).
	if len(lines) != 4 {
		t.Fatalf("gantt has %d lines, want 4:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "time 0") || !strings.Contains(lines[0], "200.0 s") {
		t.Errorf("header wrong: %q", lines[0])
	}
	if !strings.Contains(out, "MG:0") {
		t.Error("MG span not labeled")
	}
	if !strings.Contains(out, "HC:1") || !strings.Contains(out, "HC:2") {
		t.Error("HC spans not labeled")
	}
	// Node 0 needs two lanes (concurrent jobs); node 1 only one.
	n0lanes := 0
	for _, l := range lines[1:] {
		if strings.HasPrefix(l, "N0") || (n0lanes > 0 && strings.HasPrefix(l, "  ")) {
			n0lanes++
		} else if strings.HasPrefix(l, "N1") {
			break
		}
	}
	if n0lanes != 2 {
		t.Errorf("node 0 rendered %d lanes, want 2:\n%s", n0lanes, out)
	}
}

func TestGanttEdgeCases(t *testing.T) {
	if Gantt(nil, 4, 40) != "" {
		t.Error("empty job list should render nothing")
	}
	jobs := ganttJobs(t)
	if Gantt(jobs, 0, 40) != "" {
		t.Error("zero nodes should render nothing")
	}
	// A node with no jobs renders an idle row.
	out := Gantt(jobs[:1], 3, 40)
	if !strings.Contains(out, "N2  "+strings.Repeat(".", 40)) {
		t.Errorf("idle node not rendered:\n%s", out)
	}
	// Tiny width clamps without panicking.
	if Gantt(jobs, 2, 1) == "" {
		t.Error("tiny width rendered nothing")
	}
}
