package report

import (
	"fmt"
	"sort"
	"strings"

	"spreadnshare/internal/exec"
)

// Gantt renders finished jobs as a per-node ASCII timeline, the visual
// form of the paper's Figure 1 schedule layouts. Each node shows one lane
// per concurrently-resident job; a job's span is filled with its program
// name. Width is the number of character columns the makespan maps onto.
func Gantt(jobs []*exec.Job, nodes, width int) string {
	if width < 10 {
		width = 10
	}
	makespan := 0.0
	for _, j := range jobs {
		if j.Finish > makespan {
			makespan = j.Finish
		}
	}
	if makespan <= 0 || nodes <= 0 {
		return ""
	}
	col := func(t float64) int {
		c := int(t / makespan * float64(width))
		if c > width {
			c = width
		}
		return c
	}

	type span struct {
		job        *exec.Job
		start, end int // columns
	}
	perNode := make([][]span, nodes)
	for _, j := range jobs {
		s, e := col(j.Start), col(j.Finish)
		if e <= s {
			e = s + 1
		}
		for _, n := range j.Nodes {
			if n >= 0 && n < nodes {
				perNode[n] = append(perNode[n], span{j, s, e})
			}
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "time 0 %s %.1f s\n", strings.Repeat("-", width-10), makespan)
	for n := 0; n < nodes; n++ {
		spans := perNode[n]
		sort.Slice(spans, func(a, c int) bool {
			if spans[a].start != spans[c].start {
				return spans[a].start < spans[c].start
			}
			return spans[a].job.ID < spans[c].job.ID
		})
		// Assign each span to the first lane free at its start.
		var laneEnd []int
		lanes := make([][]span, 0, 2)
		for _, sp := range spans {
			placed := false
			for l := range lanes {
				if laneEnd[l] <= sp.start {
					lanes[l] = append(lanes[l], sp)
					laneEnd[l] = sp.end
					placed = true
					break
				}
			}
			if !placed {
				lanes = append(lanes, []span{sp})
				laneEnd = append(laneEnd, sp.end)
			}
		}
		if len(lanes) == 0 {
			fmt.Fprintf(&b, "N%-2d %s\n", n, strings.Repeat(".", width))
			continue
		}
		for l, lane := range lanes {
			row := make([]byte, width)
			for i := range row {
				row[i] = '.'
			}
			for _, sp := range lane {
				label := fmt.Sprintf("%s:%d", sp.job.Prog.Name, sp.job.ID)
				for i := sp.start; i < sp.end && i < width; i++ {
					k := i - sp.start
					if k == 0 {
						row[i] = '['
					} else if i == sp.end-1 {
						row[i] = ']'
					} else if k-1 < len(label) {
						row[i] = label[k-1]
					} else {
						row[i] = '='
					}
				}
			}
			tag := fmt.Sprintf("N%d", n)
			if l > 0 {
				tag = "  "
			}
			fmt.Fprintf(&b, "%-3s %s\n", tag, row)
		}
	}
	return b.String()
}
