package units

import (
	"fmt"
	"math"
	"testing"
)

// TestRoundTrip pins the constructors and accessors as exact identities:
// a unit type must never perturb the bits of the value it wraps, or the
// golden digests captured on bare float64 code would drift.
func TestRoundTrip(t *testing.T) {
	for _, v := range []float64{0, 1, 118.26, 18.80, math.Pi, 1e-300, -6.8} {
		if got := GBpsOf(v).Float64(); got != v {
			t.Errorf("GBps round trip %g -> %g", v, got)
		}
		if got := GBOf(v).Float64(); got != v {
			t.Errorf("GB round trip %g -> %g", v, got)
		}
		if got := SecondsOf(v).Float64(); got != v {
			t.Errorf("Seconds round trip %g -> %g", v, got)
		}
		if got := InstrOf(v).Float64(); got != v {
			t.Errorf("Instr round trip %g -> %g", v, got)
		}
		if got := CyclesOf(v).Float64(); got != v {
			t.Errorf("Cycles round trip %g -> %g", v, got)
		}
		if got := IPCOf(v).Float64(); got != v {
			t.Errorf("IPC round trip %g -> %g", v, got)
		}
		if got := GHzOf(v).Float64(); got != v {
			t.Errorf("GHz round trip %g -> %g", v, got)
		}
	}
	for _, n := range []int{0, 1, 20, 28, -3} {
		if got := WaysOf(n).Int(); got != n {
			t.Errorf("Ways round trip %d -> %d", n, got)
		}
		if got := CoresOf(n).Int(); got != n {
			t.Errorf("Cores round trip %d -> %d", n, got)
		}
		if got := WaysOf(n).Float64(); got != float64(n) {
			t.Errorf("Ways float %d -> %g", n, got)
		}
		if got := CoresOf(n).Float64(); got != float64(n) {
			t.Errorf("Cores float %d -> %g", n, got)
		}
	}
}

// TestDerived pins the derived-ratio helpers against the bare arithmetic
// they replace.
func TestDerived(t *testing.T) {
	if got := PerCycle(InstrOf(6), CyclesOf(4)).Float64(); got != 6.0/4.0 {
		t.Errorf("PerCycle = %g, want %g", got, 6.0/4.0)
	}
	if got := GBpsOf(2.5).Times(SecondsOf(4)).Float64(); got != 10 {
		t.Errorf("Times = %g, want 10", got)
	}
	if got := GBOf(10).Per(SecondsOf(4)).Float64(); got != 2.5 {
		t.Errorf("Per = %g, want 2.5", got)
	}
}

// TestNoStringMethod guards the digest contract: unit values must format
// exactly like their underlying numbers. A String method would change
// every %v/%g rendering repo-wide.
func TestNoStringMethod(t *testing.T) {
	if got, want := fmt.Sprintf("%g", GBpsOf(118.26)), "118.26"; got != want {
		t.Errorf("GBps formats as %q, want %q", got, want)
	}
	if got, want := fmt.Sprintf("%.1f", GBpsOf(6.8)), "6.8"; got != want {
		t.Errorf("GBps formats as %q, want %q", got, want)
	}
	if got, want := fmt.Sprintf("%d", WaysOf(20)), "20"; got != want {
		t.Errorf("Ways formats as %q, want %q", got, want)
	}
}
