// Package units defines the typed physical quantities the Spread-n-Share
// model manipulates symbolically: the STREAM roofline B(k) in GB/s, CAT
// way counts w, core counts k, PMU instruction/cycle counts, and the
// derived IPC ratio. Every quantity is a defined type over float64 or
// int, so the compiler rejects a GB/s-vs-ways or per-core-vs-per-node
// mixup that a bare float64 would silently accept — the same hazard
// class a dtype/shape checker catches in an ML stack.
//
// Conversion discipline (enforced by the unitflow lint pass over the
// deterministic packages):
//
//   - Construction from an untyped constant is free: `PeakBandwidth:
//     118.26` declares its unit through the field type.
//   - Construction from a runtime bare value goes through the XxxOf
//     constructors (units.GBpsOf(v)), never a raw conversion GBps(v).
//   - Escaping back to bare arithmetic goes through the Float64/Int
//     accessors (bw.Float64()), never a raw conversion float64(bw).
//   - Converting one unit directly into another (GBps(ways)) is always a
//     finding: it launders a quantity across dimensions.
//
// The types deliberately define no String methods: formatted output must
// stay bit-identical to the bare-float64 code the golden digests were
// captured on.
package units

// GBps is a bandwidth in gigabytes per second: the STREAM roofline B(k),
// NIC injection limits, file-system injection limits, and per-job
// bandwidth reservations.
//
//sns:unit
type GBps float64

// GBpsOf constructs a bandwidth from a bare value.
//
//sns:unitctor typed construction boundary
func GBpsOf(v float64) GBps { return GBps(v) }

// Float64 returns the bare value for unit-free arithmetic.
//
//sns:unitctor typed escape boundary
func (b GBps) Float64() float64 { return float64(b) }

// Times returns the traffic volume moved at rate b for t seconds.
//
//sns:unitctor derived-quantity kernel
func (b GBps) Times(t Seconds) GB { return GB(float64(b) * float64(t)) }

// GB is a data volume (or memory capacity) in gigabytes — the integral
// of a bandwidth over time, e.g. a PMU traffic counter.
//
//sns:unit
type GB float64

// GBOf constructs a volume from a bare value.
//
//sns:unitctor typed construction boundary
func GBOf(v float64) GB { return GB(v) }

// Float64 returns the bare value.
//
//sns:unitctor typed escape boundary
func (g GB) Float64() float64 { return float64(g) }

// Per returns the average rate that moved volume g in t seconds. It is
// the caller's job to guard t > 0.
//
//sns:unitctor derived-quantity kernel
func (g GB) Per(t Seconds) GBps { return GBps(float64(g) / float64(t)) }

// Ways is a count of last-level-cache ways, the granularity Intel CAT
// partitions the LLC in.
//
//sns:unit
type Ways int

// WaysOf constructs a way count from a bare value.
//
//sns:unitctor typed construction boundary
func WaysOf(n int) Ways { return Ways(n) }

// Int returns the bare count.
//
//sns:unitctor typed escape boundary
func (w Ways) Int() int { return int(w) }

// Float64 returns the count as a float, for the effective-ways model
// where allocations become fractional.
//
//sns:unitctor typed escape boundary
func (w Ways) Float64() float64 { return float64(w) }

// Cores is a count of CPU cores.
//
//sns:unit
type Cores int

// CoresOf constructs a core count from a bare value.
//
//sns:unitctor typed construction boundary
func CoresOf(n int) Cores { return Cores(n) }

// Int returns the bare count.
//
//sns:unitctor typed escape boundary
func (c Cores) Int() int { return int(c) }

// Float64 returns the count as a float, for per-core averaging.
//
//sns:unitctor typed escape boundary
func (c Cores) Float64() float64 { return float64(c) }

// Instr is an instruction count in units of 1e9 (giga-instructions), the
// scale the Instructions Retired PMU counter is read at.
//
//sns:unit
type Instr float64

// InstrOf constructs an instruction count from a bare value.
//
//sns:unitctor typed construction boundary
func InstrOf(v float64) Instr { return Instr(v) }

// Float64 returns the bare value.
//
//sns:unitctor typed escape boundary
func (i Instr) Float64() float64 { return float64(i) }

// Cycles is a cycle count in units of 1e9 (giga-cycles), the scale the
// Unhalted Core Cycles PMU counter is read at.
//
//sns:unit
type Cycles float64

// CyclesOf constructs a cycle count from a bare value.
//
//sns:unitctor typed construction boundary
func CyclesOf(v float64) Cycles { return Cycles(v) }

// Float64 returns the bare value.
//
//sns:unitctor typed escape boundary
func (c Cycles) Float64() float64 { return float64(c) }

// Seconds is a duration or simulation-clock reading in seconds.
//
//sns:unit
type Seconds float64

// SecondsOf constructs a duration from a bare value.
//
//sns:unitctor typed construction boundary
func SecondsOf(v float64) Seconds { return Seconds(v) }

// Float64 returns the bare value.
//
//sns:unitctor typed escape boundary
func (s Seconds) Float64() float64 { return float64(s) }

// IPC is the derived instructions-per-cycle ratio, the model's central
// performance reading. It is dimensionless but still a distinct type:
// an IPC is not interchangeable with, say, a bandwidth fraction.
//
//sns:unit
type IPC float64

// IPCOf constructs an IPC from a bare value.
//
//sns:unitctor typed construction boundary
func IPCOf(v float64) IPC { return IPC(v) }

// Float64 returns the bare value.
//
//sns:unitctor typed escape boundary
func (r IPC) Float64() float64 { return float64(r) }

// PerCycle derives the IPC ratio from raw PMU counts. It is the caller's
// job to guard c > 0.
//
//sns:unitctor derived-quantity kernel
func PerCycle(i Instr, c Cycles) IPC { return IPC(float64(i) / float64(c)) }

// GHz is a core clock frequency in gigacycles per second; together with
// an IPC it yields giga-instructions per second per core.
//
//sns:unit
type GHz float64

// GHzOf constructs a frequency from a bare value.
//
//sns:unitctor typed construction boundary
func GHzOf(v float64) GHz { return GHz(v) }

// Float64 returns the bare value.
//
//sns:unitctor typed escape boundary
func (f GHz) Float64() float64 { return float64(f) }
