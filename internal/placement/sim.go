package placement

import (
	"spreadnshare/internal/hw"
	"spreadnshare/internal/par"
	"spreadnshare/internal/units"
)

// SimState is the lightweight cluster backend of the large-scale trace
// simulator: flat per-node capacity arrays plus the kernel's core index,
// implementing both NodeView and Txn. Unlike the testbed's cluster.State
// it keeps no per-job bookkeeping — the caller retains the effective
// Reservations and returns them on release — which is what makes 32K-node
// replays cheap.
type SimState struct {
	spec      hw.NodeSpec
	idx       *CoreIndex
	freeWays  []units.Ways
	freeBW    []units.GBps
	freeMem   []float64
	freeIO    []units.GBps
	intensive []int // running intensive-job count per node (TwoSlot)

	// onChange, when set, is called with every node id whose reservation
	// state changes — the score cache's dirty-set feed.
	onChange func(id int)

	// onSpan, when set, receives a span mutation's whole node set in one
	// call — the round-coalesced form of onChange (ScoreCache's
	// InvalidateSpan is the intended subscriber). Span mutations prefer
	// it over the per-node hook; per-node Reserve/Release still fire
	// onChange.
	onSpan func(ids []int)

	// shards, when set via Shard, mirrors every free-core change into
	// the per-shard indexes and dirty sets of the sharded kernel. The
	// flat idx stays authoritative either way, so the non-FindDemand
	// paths (Idle, ascendFree, TwoSlot) are untouched by sharding.
	shards *ShardSet

	// The parallel mutation pipeline (SetMutWorkers): wide span
	// mutations fan over mut's persistent workers as word-striped tasks
	// on the global state plus one mirror task per shard. The batch
	// fields below are the worker hand-off: applySpan publishes them,
	// the pool's start sends order the writes before every worker's
	// reads, and wg.Wait orders the reads before applySpan continues —
	// the same "mutbatch" contract par.Pool's own fn/n fields use for
	// "poolbatch". Only applySpan and mutTask may touch them.
	mut    *par.Pool
	mutMin int // spans narrower than this stay on the serial loops
	//sns:owner mutbatch
	mutIDs []int
	//sns:owner mutbatch
	mutRes Reservation
	//sns:owner mutbatch
	mutRelease bool
	// mutDeltas[k] is stripe task k's private bucket-population delta
	// array, merged serially into the shared counts after every batch.
	//
	//sns:owner mutbatch
	mutDeltas [][]int
	mutTasks  int // stripe task count (the pool width)
	mutFn     func(i int)
}

// NewSimState builds an all-idle simulated cluster.
func NewSimState(spec hw.NodeSpec, nodes int) *SimState {
	s := &SimState{
		spec:      spec,
		idx:       NewCoreIndex(nodes, spec.Cores.Int()),
		freeWays:  make([]units.Ways, nodes),
		freeBW:    make([]units.GBps, nodes),
		freeMem:   make([]float64, nodes),
		freeIO:    make([]units.GBps, nodes),
		intensive: make([]int, nodes),
	}
	for i := 0; i < nodes; i++ {
		s.freeWays[i] = spec.LLCWays
		s.freeBW[i] = spec.PeakBandwidth
		s.freeMem[i] = spec.MemoryGB
		s.freeIO[i] = spec.IOBandwidth
	}
	return s
}

// Index returns the free-core index a Search runs over.
func (s *SimState) Index() *CoreIndex { return s.idx }

// Shard partitions the cluster into count contiguous node-ID shards,
// seeds them with the current occupancy, and keeps them synchronized
// with every subsequent Reserve/Release. The returned set is what a
// Search's UseShards consumes; Close it when the replay ends.
func (s *SimState) Shard(count int) *ShardSet {
	ss := NewShardSet(s.spec, s.Len(), count)
	for id := 0; id < s.Len(); id++ {
		ss.seed(id, s.idx.Free(id))
	}
	s.shards = ss
	return ss
}

// SetOnChange registers a hook called with every node id whose
// reservation state changes. A ScoreCache's Invalidate is the intended
// subscriber: wiring it here means no Reserve/Release call site can
// forget to feed the dirty set.
func (s *SimState) SetOnChange(fn func(id int)) { s.onChange = fn }

// SetOnSpanChange registers the round-coalesced change hook: span
// mutations hand it their whole node set in one call instead of firing
// the per-node hook once per node. A ScoreCache's InvalidateSpan is the
// intended subscriber; the dirty set it accumulates is identical, the
// hook overhead is once per placement round.
func (s *SimState) SetOnSpanChange(fn func(ids []int)) { s.onSpan = fn }

// defaultMutSpanMin is the span width below which the parallel
// pipeline's dispatch is not worth its two synchronization rounds;
// narrower spans stay on the serial loops. Tests lower it to force
// every span through the pipeline.
const defaultMutSpanMin = 64

// SetMutWorkers routes wide span mutations (ReserveSpan/ReleaseSpan)
// through a persistent pool of the given width; width <= 1 tears the
// pipeline down and keeps the serial loops. The resulting state is
// bit-identical at any width: tasks own disjoint node ids and disjoint
// bitset words, bucket populations merge by commutative integer
// addition, and every capacity cell sees exactly the one float op the
// serial loop would apply. Call CloseMut (or SetMutWorkers(0)) when
// the backend retires to release the workers.
//
// Setup runs before the pipeline has published anything, so it may
// touch the batch fields freely.
//
//sns:ownerinit
func (s *SimState) SetMutWorkers(width int) {
	s.CloseMut()
	if width <= 1 {
		return
	}
	s.mut = par.NewPool(width)
	s.mutMin = defaultMutSpanMin
	s.mutTasks = width
	s.mutDeltas = make([][]int, width)
	for k := range s.mutDeltas {
		s.mutDeltas[k] = make([]int, s.spec.Cores.Int()+1)
	}
	// Bind the task method once: Run then dispatches the prebuilt value
	// and the warm path allocates nothing.
	s.mutFn = s.mutTask
}

// CloseMut releases the mutation pool's workers, if any; span mutations
// fall back to the serial loops afterwards.
func (s *SimState) CloseMut() {
	if s.mut != nil {
		s.mut.Close()
		s.mut = nil
	}
}

// Spec returns the per-node hardware spec, the capacity bound the
// invariant auditor checks free counters against.
func (s *SimState) Spec() hw.NodeSpec { return s.spec }

// IntensiveCount returns the running intensive-job count on a node.
func (s *SimState) IntensiveCount(id int) int { return s.intensive[id] }

// Len returns the cluster size.
func (s *SimState) Len() int { return len(s.freeWays) }

// MaxFreeCores returns the largest free-core count on any node — the
// capacity bound quoted by stuck-placement diagnostics.
func (s *SimState) MaxFreeCores() int { return s.idx.MaxFree() }

// HasIntensive reports whether the node hosts an intensive job.
func (s *SimState) HasIntensive(id int) bool { return s.intensive[id] > 0 }

// NodeView.

// UsedCores returns the reserved core count.
func (s *SimState) UsedCores(id int) int { return s.spec.Cores.Int() - s.idx.Free(id) }

// AllocWays returns the CAT-allocated LLC ways.
func (s *SimState) AllocWays(id int) units.Ways { return s.spec.LLCWays - s.freeWays[id] }

// AllocBW returns the reserved memory bandwidth.
func (s *SimState) AllocBW(id int) units.GBps { return s.spec.PeakBandwidth - s.freeBW[id] }

// FreeWays returns unallocated LLC ways.
func (s *SimState) FreeWays(id int) units.Ways { return s.freeWays[id] }

// FreeBW returns unreserved memory bandwidth.
func (s *SimState) FreeBW(id int) units.GBps { return s.freeBW[id] }

// FreeMem returns unreserved main memory.
func (s *SimState) FreeMem(id int) float64 { return s.freeMem[id] }

// FreeIO returns unreserved file-system bandwidth.
func (s *SimState) FreeIO(id int) units.GBps { return s.freeIO[id] }

// Txn.

// Reserve applies a reservation and returns its effective form (an
// exclusive take resolves to all currently-free cores).
func (s *SimState) Reserve(id int, r Reservation) Reservation {
	if r.Exclusive {
		r.Cores = s.idx.Free(id)
	}
	s.idx.Update(id, s.idx.Free(id)-r.Cores)
	s.freeWays[id] -= r.Ways
	s.freeBW[id] -= r.BW
	s.freeMem[id] -= r.MemGB
	s.freeIO[id] -= r.IOBW
	if r.Intensive {
		s.intensive[id]++
	}
	if s.shards != nil {
		s.shards.update(id, s.idx.Free(id))
	}
	if s.onChange != nil {
		s.onChange(id)
	}
	return r
}

// ReserveSpan applies one uniform, non-exclusive reservation prototype
// to every node in ids — the common SNS/CS footprint shape, where a
// placement reserves the same amount on thousands of nodes. It batches
// the whole mutation per event: all capacity arrays are updated first,
// then the sharded kernel ingests the span in one call, then the change
// hook fires per node (the score cache's Invalidate is O(1) and
// coalescing, so notification order carries no cost). The resulting
// state, shard bookkeeping, and dirty sets are identical to calling
// Reserve once per node in the same order.
func (s *SimState) ReserveSpan(ids []int, r Reservation) {
	if r.Exclusive {
		panic("placement: ReserveSpan is for uniform reservations; exclusive takes resolve per node")
	}
	if s.mut != nil && len(ids) >= s.mutMin {
		s.applySpan(ids, r, false)
		return
	}
	for _, id := range ids {
		s.idx.Update(id, s.idx.Free(id)-r.Cores)
		s.freeWays[id] -= r.Ways
		s.freeBW[id] -= r.BW
		s.freeMem[id] -= r.MemGB
		s.freeIO[id] -= r.IOBW
		if r.Intensive {
			s.intensive[id]++
		}
	}
	s.notifySpan(ids)
}

// ReleaseSpan undoes a uniform reservation applied by ReserveSpan (or by
// per-node Reserve calls of the same prototype), with the same batched
// shard/cache notification as ReserveSpan.
func (s *SimState) ReleaseSpan(ids []int, r Reservation) {
	if s.mut != nil && len(ids) >= s.mutMin {
		s.applySpan(ids, r, true)
		return
	}
	for _, id := range ids {
		s.idx.Update(id, s.idx.Free(id)+r.Cores)
		s.freeWays[id] += r.Ways
		s.freeBW[id] += r.BW
		s.freeMem[id] += r.MemGB
		s.freeIO[id] += r.IOBW
		if r.Intensive {
			s.intensive[id]--
		}
	}
	s.notifySpan(ids)
}

// notifySpan feeds one event's whole mutated node set to the sharded
// kernel and the change hook. The round-coalesced span hook wins over
// the per-node hook when both are set; the dirty set either leaves
// behind is identical.
func (s *SimState) notifySpan(ids []int) {
	if s.shards != nil {
		s.shards.updateSpan(ids, s.idx)
	}
	if s.onSpan != nil {
		s.onSpan(ids)
	} else if s.onChange != nil {
		for _, id := range ids {
			s.onChange(id)
		}
	}
}

// applySpan is the parallel form of the ReserveSpan/ReleaseSpan loops:
// one pool dispatch covers mutTasks word-striped tasks over the global
// state plus one mirror task per shard, then the serial epilogue merges
// the per-task bucket populations and fires the coalesced change hook.
// Determinism does not depend on task scheduling: every per-node write
// has exactly one owner, the only shared cells (bucket counts) merge by
// commutative addition, and each capacity cell receives the identical
// single float op of the serial loop — so the state afterwards is
// bit-identical to the serial path at any width and shard count.
//
// applySpan publishes the batch fields for the workers; the pool's
// start/wait pair brackets their access, making this a trusted
// "mutbatch" context like par.Pool.Run is for "poolbatch".
//
//sns:goroutine mutbatch
//sns:hotpath
func (s *SimState) applySpan(ids []int, r Reservation, release bool) {
	shardTasks := 0
	if s.shards != nil {
		shardTasks = len(s.shards.shards)
	}
	s.mutIDs, s.mutRes, s.mutRelease = ids, r, release
	s.mut.Run(s.mutTasks+shardTasks, s.mutFn)
	s.mutIDs = nil
	for _, delta := range s.mutDeltas {
		s.idx.applyCounts(delta)
	}
	if s.onSpan != nil {
		//lint:allocfree the registered subscriber is ScoreCache.InvalidateSpan, itself a hotpath root vetted by the span pipeline's runtime alloc gate
		s.onSpan(ids)
	} else if s.onChange != nil {
		for _, id := range ids {
			//lint:allocfree the registered subscriber is ScoreCache.Invalidate, itself a hotpath root vetted by the runtime alloc gates
			s.onChange(id)
		}
	}
}

// mutTask is one pipeline task. Tasks 0..mutTasks-1 stripe the global
// mutation by bitset word — task k owns the ids whose word index
// (id>>6) % mutTasks equals k — so no two tasks ever touch the same
// bucket word, free counter, capacity cell, or intensive counter, and
// population deltas go to the task's private array. Tasks past
// mutTasks each mirror one shard: a span is uniform and non-exclusive,
// so the shard's new free count comes from its own local index and the
// mirror runs independently of the stripe tasks. Each task scans the
// whole id slice and filters; the scan is a sequential read, far
// cheaper than the mutations it routes. A parked worker touches the
// batch fields only between its start receive and its Done — the
// window applySpan publishes them for — so this too is a trusted
// "mutbatch" context.
//
//sns:goroutine mutbatch
//sns:hotpath
func (s *SimState) mutTask(i int) {
	ids, r := s.mutIDs, s.mutRes
	if i >= s.mutTasks {
		sh := &s.shards.shards[i-s.mutTasks]
		lo, hi := sh.base, sh.base+sh.nodes
		for _, id := range ids {
			if id < lo || id >= hi {
				continue
			}
			lid := id - sh.base
			if s.mutRelease {
				sh.idx.Update(lid, sh.idx.Free(lid)+r.Cores)
			} else {
				sh.idx.Update(lid, sh.idx.Free(lid)-r.Cores)
			}
			sh.cache.Invalidate(lid)
		}
		return
	}
	delta := s.mutDeltas[i]
	if s.mutRelease {
		for _, id := range ids {
			if (id>>6)%s.mutTasks != i {
				continue
			}
			s.idx.shiftTo(id, s.idx.Free(id)+r.Cores, delta)
			s.freeWays[id] += r.Ways
			s.freeBW[id] += r.BW
			s.freeMem[id] += r.MemGB
			s.freeIO[id] += r.IOBW
			if r.Intensive {
				s.intensive[id]--
			}
		}
		return
	}
	for _, id := range ids {
		if (id>>6)%s.mutTasks != i {
			continue
		}
		s.idx.shiftTo(id, s.idx.Free(id)-r.Cores, delta)
		s.freeWays[id] -= r.Ways
		s.freeBW[id] -= r.BW
		s.freeMem[id] -= r.MemGB
		s.freeIO[id] -= r.IOBW
		if r.Intensive {
			s.intensive[id]++
		}
	}
}

// Release undoes an effective reservation returned by Reserve.
func (s *SimState) Release(id int, r Reservation) {
	s.idx.Update(id, s.idx.Free(id)+r.Cores)
	s.freeWays[id] += r.Ways
	s.freeBW[id] += r.BW
	s.freeMem[id] += r.MemGB
	s.freeIO[id] += r.IOBW
	if r.Intensive {
		s.intensive[id]--
	}
	if s.shards != nil {
		s.shards.update(id, s.idx.Free(id))
	}
	if s.onChange != nil {
		s.onChange(id)
	}
}
