package placement

import (
	"spreadnshare/internal/hw"
	"spreadnshare/internal/units"
)

// SimState is the lightweight cluster backend of the large-scale trace
// simulator: flat per-node capacity arrays plus the kernel's core index,
// implementing both NodeView and Txn. Unlike the testbed's cluster.State
// it keeps no per-job bookkeeping — the caller retains the effective
// Reservations and returns them on release — which is what makes 32K-node
// replays cheap.
type SimState struct {
	spec      hw.NodeSpec
	idx       *CoreIndex
	freeWays  []units.Ways
	freeBW    []units.GBps
	freeMem   []float64
	freeIO    []units.GBps
	intensive []int // running intensive-job count per node (TwoSlot)

	// onChange, when set, is called with every node id whose reservation
	// state changes — the score cache's dirty-set feed.
	onChange func(id int)

	// shards, when set via Shard, mirrors every free-core change into
	// the per-shard indexes and dirty sets of the sharded kernel. The
	// flat idx stays authoritative either way, so the non-FindDemand
	// paths (Idle, ascendFree, TwoSlot) are untouched by sharding.
	shards *ShardSet
}

// NewSimState builds an all-idle simulated cluster.
func NewSimState(spec hw.NodeSpec, nodes int) *SimState {
	s := &SimState{
		spec:      spec,
		idx:       NewCoreIndex(nodes, spec.Cores.Int()),
		freeWays:  make([]units.Ways, nodes),
		freeBW:    make([]units.GBps, nodes),
		freeMem:   make([]float64, nodes),
		freeIO:    make([]units.GBps, nodes),
		intensive: make([]int, nodes),
	}
	for i := 0; i < nodes; i++ {
		s.freeWays[i] = spec.LLCWays
		s.freeBW[i] = spec.PeakBandwidth
		s.freeMem[i] = spec.MemoryGB
		s.freeIO[i] = spec.IOBandwidth
	}
	return s
}

// Index returns the free-core index a Search runs over.
func (s *SimState) Index() *CoreIndex { return s.idx }

// Shard partitions the cluster into count contiguous node-ID shards,
// seeds them with the current occupancy, and keeps them synchronized
// with every subsequent Reserve/Release. The returned set is what a
// Search's UseShards consumes; Close it when the replay ends.
func (s *SimState) Shard(count int) *ShardSet {
	ss := NewShardSet(s.spec, s.Len(), count)
	for id := 0; id < s.Len(); id++ {
		ss.seed(id, s.idx.Free(id))
	}
	s.shards = ss
	return ss
}

// SetOnChange registers a hook called with every node id whose
// reservation state changes. A ScoreCache's Invalidate is the intended
// subscriber: wiring it here means no Reserve/Release call site can
// forget to feed the dirty set.
func (s *SimState) SetOnChange(fn func(id int)) { s.onChange = fn }

// Spec returns the per-node hardware spec, the capacity bound the
// invariant auditor checks free counters against.
func (s *SimState) Spec() hw.NodeSpec { return s.spec }

// IntensiveCount returns the running intensive-job count on a node.
func (s *SimState) IntensiveCount(id int) int { return s.intensive[id] }

// Len returns the cluster size.
func (s *SimState) Len() int { return len(s.freeWays) }

// MaxFreeCores returns the largest free-core count on any node — the
// capacity bound quoted by stuck-placement diagnostics.
func (s *SimState) MaxFreeCores() int { return s.idx.MaxFree() }

// HasIntensive reports whether the node hosts an intensive job.
func (s *SimState) HasIntensive(id int) bool { return s.intensive[id] > 0 }

// NodeView.

// UsedCores returns the reserved core count.
func (s *SimState) UsedCores(id int) int { return s.spec.Cores.Int() - s.idx.Free(id) }

// AllocWays returns the CAT-allocated LLC ways.
func (s *SimState) AllocWays(id int) units.Ways { return s.spec.LLCWays - s.freeWays[id] }

// AllocBW returns the reserved memory bandwidth.
func (s *SimState) AllocBW(id int) units.GBps { return s.spec.PeakBandwidth - s.freeBW[id] }

// FreeWays returns unallocated LLC ways.
func (s *SimState) FreeWays(id int) units.Ways { return s.freeWays[id] }

// FreeBW returns unreserved memory bandwidth.
func (s *SimState) FreeBW(id int) units.GBps { return s.freeBW[id] }

// FreeMem returns unreserved main memory.
func (s *SimState) FreeMem(id int) float64 { return s.freeMem[id] }

// FreeIO returns unreserved file-system bandwidth.
func (s *SimState) FreeIO(id int) units.GBps { return s.freeIO[id] }

// Txn.

// Reserve applies a reservation and returns its effective form (an
// exclusive take resolves to all currently-free cores).
func (s *SimState) Reserve(id int, r Reservation) Reservation {
	if r.Exclusive {
		r.Cores = s.idx.Free(id)
	}
	s.idx.Update(id, s.idx.Free(id)-r.Cores)
	s.freeWays[id] -= r.Ways
	s.freeBW[id] -= r.BW
	s.freeMem[id] -= r.MemGB
	s.freeIO[id] -= r.IOBW
	if r.Intensive {
		s.intensive[id]++
	}
	if s.shards != nil {
		s.shards.update(id, s.idx.Free(id))
	}
	if s.onChange != nil {
		s.onChange(id)
	}
	return r
}

// ReserveSpan applies one uniform, non-exclusive reservation prototype
// to every node in ids — the common SNS/CS footprint shape, where a
// placement reserves the same amount on thousands of nodes. It batches
// the whole mutation per event: all capacity arrays are updated first,
// then the sharded kernel ingests the span in one call, then the change
// hook fires per node (the score cache's Invalidate is O(1) and
// coalescing, so notification order carries no cost). The resulting
// state, shard bookkeeping, and dirty sets are identical to calling
// Reserve once per node in the same order.
func (s *SimState) ReserveSpan(ids []int, r Reservation) {
	if r.Exclusive {
		panic("placement: ReserveSpan is for uniform reservations; exclusive takes resolve per node")
	}
	for _, id := range ids {
		s.idx.Update(id, s.idx.Free(id)-r.Cores)
		s.freeWays[id] -= r.Ways
		s.freeBW[id] -= r.BW
		s.freeMem[id] -= r.MemGB
		s.freeIO[id] -= r.IOBW
		if r.Intensive {
			s.intensive[id]++
		}
	}
	s.notifySpan(ids)
}

// ReleaseSpan undoes a uniform reservation applied by ReserveSpan (or by
// per-node Reserve calls of the same prototype), with the same batched
// shard/cache notification as ReserveSpan.
func (s *SimState) ReleaseSpan(ids []int, r Reservation) {
	for _, id := range ids {
		s.idx.Update(id, s.idx.Free(id)+r.Cores)
		s.freeWays[id] += r.Ways
		s.freeBW[id] += r.BW
		s.freeMem[id] += r.MemGB
		s.freeIO[id] += r.IOBW
		if r.Intensive {
			s.intensive[id]--
		}
	}
	s.notifySpan(ids)
}

// notifySpan feeds one event's whole mutated node set to the sharded
// kernel and the change hook.
func (s *SimState) notifySpan(ids []int) {
	if s.shards != nil {
		s.shards.updateSpan(ids, s.idx)
	}
	if s.onChange != nil {
		for _, id := range ids {
			s.onChange(id)
		}
	}
}

// Release undoes an effective reservation returned by Reserve.
func (s *SimState) Release(id int, r Reservation) {
	s.idx.Update(id, s.idx.Free(id)+r.Cores)
	s.freeWays[id] += r.Ways
	s.freeBW[id] += r.BW
	s.freeMem[id] += r.MemGB
	s.freeIO[id] += r.IOBW
	if r.Intensive {
		s.intensive[id]--
	}
	if s.shards != nil {
		s.shards.update(id, s.idx.Free(id))
	}
	if s.onChange != nil {
		s.onChange(id)
	}
}
