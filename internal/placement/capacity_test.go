package placement

import (
	"encoding/json"
	"testing"

	"spreadnshare/internal/hw"
)

// TestCapacityRoundTrip drives a live state through a reserve/
// reserve/release history — leaving float rounding residue on node 0 —
// and checks that a replay-rebuilt state only matches bit-for-bit after
// ImportCapacity installs the exported floats (including through a JSON
// encode/decode, the snapshot wire format).
func TestCapacityRoundTrip(t *testing.T) {
	spec := hw.DefaultNodeSpec()
	live := NewSimState(spec, 4)
	a := Reservation{Cores: 4, Ways: 2, BW: 0.1, MemGB: 0.1, IOBW: 0.1}
	b := Reservation{Cores: 2, Ways: 1, BW: 0.2, MemGB: 0.2, IOBW: 0.2}
	live.Reserve(0, a)
	live.Reserve(0, b)
	live.Release(0, a) // (peak-a-b)+a: residue vs peak-b

	replayed := NewSimState(spec, 4)
	replayed.Reserve(0, b) // what snapshot replay of the surviving job does
	if live.FreeBW(0) == replayed.FreeBW(0) &&
		live.FreeMem(0) == replayed.FreeMem(0) &&
		live.FreeIO(0) == replayed.FreeIO(0) {
		t.Skip("this spec/reservation pair left no residue; pick amounts that do")
	}

	raw, err := json.Marshal(live.ExportCapacity())
	if err != nil {
		t.Fatal(err)
	}
	var c Capacity
	if err := json.Unmarshal(raw, &c); err != nil {
		t.Fatal(err)
	}
	if err := replayed.ImportCapacity(c); err != nil {
		t.Fatal(err)
	}
	for id := 0; id < 4; id++ {
		if live.FreeBW(id) != replayed.FreeBW(id) ||
			live.FreeMem(id) != replayed.FreeMem(id) ||
			live.FreeIO(id) != replayed.FreeIO(id) {
			t.Fatalf("node %d floats differ after import: live (%v %v %v) restored (%v %v %v)",
				id, live.FreeBW(id), live.FreeMem(id), live.FreeIO(id),
				replayed.FreeBW(id), replayed.FreeMem(id), replayed.FreeIO(id))
		}
	}

	short := NewSimState(spec, 2)
	if err := short.ImportCapacity(c); err == nil {
		t.Fatal("ImportCapacity accepted arrays sized for a different cluster")
	}
}
