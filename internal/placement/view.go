package placement

import "spreadnshare/internal/units"

// NodeView is the read side of a cluster backend: per-node occupancy and
// free capacity, addressed by node id in [0, nodes).
//
// Determinism contract: float readings (AllocBW, FreeBW, FreeMem, FreeIO)
// must be bit-reproducible for identical allocation histories — backends
// sum reservations in a canonical (job-ID) order or track them
// incrementally, never over map iteration. The kernel reads floats
// exclusively through this interface rather than shadow-tracking them, so
// a backend's exact float behavior is preserved end to end.
//
// Free cores are NOT part of the interface: they live in the CoreIndex,
// which the backend keeps in sync after every reserve/release (an
// exclusively-held node indexes as 0 free cores).
type NodeView interface {
	// UsedCores returns the reserved core count.
	UsedCores(id int) int
	// AllocWays returns the CAT-allocated LLC ways.
	AllocWays(id int) units.Ways
	// AllocBW returns the reserved memory bandwidth.
	AllocBW(id int) units.GBps
	// FreeWays returns unallocated LLC ways.
	FreeWays(id int) units.Ways
	// FreeBW returns unreserved memory bandwidth.
	FreeBW(id int) units.GBps
	// FreeMem returns unreserved main memory in GB.
	FreeMem(id int) float64
	// FreeIO returns unreserved file-system bandwidth.
	FreeIO(id int) units.GBps
}

// Reservation is one job's per-node resource take, the write-side unit of
// a Txn backend.
type Reservation struct {
	// Cores reserved on the node. For exclusive reservations the
	// backend takes every free core; Reserve returns the effective
	// count so the caller can release exactly what was taken.
	Cores int
	// Ways is the CAT-partitioned LLC allocation (0 = unmanaged).
	Ways units.Ways
	// BW is the memory-bandwidth reservation (0 = unaccounted).
	BW units.GBps
	// MemGB is the main-memory reservation (0 = unaccounted).
	MemGB float64
	// IOBW is the file-system bandwidth reservation (0 = unaccounted).
	IOBW units.GBps
	// Exclusive dedicates the node: all free cores are taken.
	Exclusive bool
	// Intensive marks the owning job as shared-resource intensive for
	// the TwoSlot policy's one-intensive-job-per-node rule.
	Intensive bool
}

// Txn is the write side of a lightweight cluster backend: apply and undo
// one node's share of a placement. Backends with their own transactional
// bookkeeping (cluster.State validates whole placements atomically) need
// not implement it — they only have to keep the CoreIndex in sync.
type Txn interface {
	// Reserve applies r on node id and returns the effective
	// reservation (exclusive takes resolved to concrete core counts).
	Reserve(id int, r Reservation) Reservation
	// Release undoes a reservation previously returned by Reserve.
	Release(id int, r Reservation)
}
