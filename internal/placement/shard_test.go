package placement

import (
	"math/rand"
	"testing"

	"spreadnshare/internal/core"
	"spreadnshare/internal/par"
)

// withShards attaches a third simulated cluster to the harness, searched
// through a count-shard kernel. All three clusters see the same mutation
// schedule; query then triangulates sharded vs cached vs from-scratch and
// runs the shard audit.
func (h *cacheHarness) withShards(count int) *cacheHarness {
	h.sharded = NewSimState(h.spec, h.nodes)
	h.ss = &Search{
		View:       h.sharded,
		Idx:        h.sharded.Index(),
		Spec:       h.spec,
		Nodes:      h.nodes,
		NoGrouping: h.ps.NoGrouping,
	}
	h.shardSet = h.sharded.Shard(count)
	h.ss.UseShards(h.shardSet)
	return h
}

func (h *cacheHarness) close() {
	if h.shardSet != nil {
		h.shardSet.Close()
	}
}

// TestShardedSearchEquivalence drives seeded mutation/query schedules
// through flat-cached, from-scratch, and sharded kernels at several
// shard counts and pool widths — the bit-identical contract the sharded
// fan-out must honor no matter how the cluster is partitioned or how
// many workers scan.
func TestShardedSearchEquivalence(t *testing.T) {
	for _, noGrouping := range []bool{false, true} {
		for _, count := range []int{1, 4, 7} {
			for _, width := range []int{1, 4} {
				prev := par.SetWorkers(width)
				h := newCacheHarness(96, noGrouping).withShards(count)
				rng := rand.New(rand.NewSource(int64(count*10 + width)))
				ops := make([]byte, 1200)
				rng.Read(ops)
				for i, op := range ops {
					h.step(t, i, op)
				}
				for id := range h.held {
					for len(h.held[id]) > 0 {
						h.release(id)
					}
				}
				h.query(t, 3, core.Demand{Cores: 4})
				h.close()
				par.SetWorkers(prev)
			}
		}
	}
}

// TestShardedSearchUnevenRanges pins the EvenSplit partition arithmetic:
// shard counts that do not divide the cluster produce q+1/q ranges, and
// shardOf must land every id in its owner.
func TestShardedSearchUnevenRanges(t *testing.T) {
	for _, tc := range []struct{ nodes, count int }{
		{96, 7}, {97, 8}, {5, 8}, {1, 1}, {64, 64},
	} {
		h := newCacheHarness(tc.nodes, false).withShards(tc.count)
		ss := h.shardSet
		covered := 0
		for s := 0; s < ss.NumShards(); s++ {
			base, n := ss.Range(s)
			if base != covered {
				t.Fatalf("nodes=%d count=%d: shard %d starts at %d, want %d", tc.nodes, tc.count, s, base, covered)
			}
			for gid := base; gid < base+n; gid++ {
				if got := ss.shardOf(gid); got != s {
					t.Fatalf("nodes=%d count=%d: shardOf(%d) = %d, want %d", tc.nodes, tc.count, gid, got, s)
				}
			}
			covered += n
		}
		if covered != tc.nodes {
			t.Fatalf("nodes=%d count=%d: shards tile %d nodes", tc.nodes, tc.count, covered)
		}
		if err := ss.Audit(h.sharded, h.sharded.Index(), h.spec, h.ss.ScoreBeta()); err != nil {
			t.Fatalf("nodes=%d count=%d: %v", tc.nodes, tc.count, err)
		}
		h.close()
	}
}

// FuzzShardedSearch lets the fuzzer hunt for mutation schedules and
// shard counts that break sharded/flat agreement or the shard audit.
func FuzzShardedSearch(f *testing.F) {
	f.Add([]byte{0x00, 0x42, 0x81, 0x07, 0xfe, 0x13, 0x02, 0xff}, byte(3), false)
	f.Add([]byte{0x10, 0x11, 0x12, 0x13, 0xa2, 0xb3, 0x00, 0x01}, byte(6), true)
	f.Add([]byte{0xff, 0xff, 0x03, 0x03, 0x03, 0x00, 0x01, 0x02}, byte(0), false)
	f.Fuzz(func(t *testing.T, ops []byte, shardByte byte, noGrouping bool) {
		if len(ops) > 4096 {
			ops = ops[:4096]
		}
		h := newCacheHarness(64, noGrouping).withShards(1 + int(shardByte)%8)
		defer h.close()
		for i, op := range ops {
			h.step(t, i, op)
		}
		h.query(t, 2, core.Demand{Cores: 2})
	})
}

// TestShardedSearchSteadyStateAllocs is the runtime side of the sharded
// kernel's allocfree suppressions: with the pool pinned to width 1 (so
// Run executes inline and goroutine park/unpark noise cannot blur the
// measurement), a warm mutate-then-search cycle must allocate nothing
// beyond the result slice.
func TestShardedSearchSteadyStateAllocs(t *testing.T) {
	prev := par.SetWorkers(1)
	defer par.SetWorkers(prev)
	h := newCacheHarness(512, false).withShards(8)
	defer h.close()
	d := core.Demand{Cores: 4, Ways: 2, BW: 10}
	cycle := func(i int) {
		id := (i * 37) % h.nodes
		h.reserve(id, 1+i%8, i%4, i%20)
		if len(h.held[(id+7)%h.nodes]) > 0 {
			h.release((id + 7) % h.nodes)
		}
		if h.ss.FindDemand(4, d) == nil {
			t.Fatal("no placement")
		}
	}
	for i := 0; i < 3000; i++ { // warm every shard's bucket lists and scratch
		cycle(i)
	}
	n := 3000
	allocs := testing.AllocsPerRun(200, func() {
		cycle(n)
		n++
	})
	if allocs > 1.5 {
		t.Errorf("steady-state sharded mutate+search allocates %.1f objects/run, want <= 1 (result slice)", allocs)
	}
}
