package placement

import (
	"math/rand"
	"testing"

	"spreadnshare/internal/core"
	"spreadnshare/internal/hw"
	"spreadnshare/internal/units"
)

// mutHarness extends the cache harness with uniform span mutations
// routed through the parallel pipeline: the cached (flat) and sharded
// clusters run SetMutWorkers with the span threshold lowered so every
// test span fans out, while the plain cluster stays on the serial loops
// as ground truth. Every query still triangulates all three and runs
// the cache and shard audits.
type mutHarness struct {
	*cacheHarness
	spans []heldSpan
}

type heldSpan struct {
	ids []int
	r   Reservation
}

func newMutHarness(nodes, shards, width int, noGrouping bool) *mutHarness {
	h := newCacheHarness(nodes, noGrouping).withShards(shards)
	h.cached.SetOnSpanChange(h.cs.Cache.InvalidateSpan)
	h.cached.SetMutWorkers(width)
	h.cached.mutMin = 2
	h.sharded.SetMutWorkers(width)
	h.sharded.mutMin = 2
	return &mutHarness{cacheHarness: h}
}

func (m *mutHarness) close() {
	m.cached.CloseMut()
	m.sharded.CloseMut()
	m.cacheHarness.close()
}

// spanReserve applies one uniform reservation across a strided span of
// distinct nodes on all three clusters, clamped to the span's tightest
// free capacities so the serial reference can never underflow.
func (m *mutHarness) spanReserve(i int, op byte) {
	width := 2 + int(op>>3)%15
	if width > m.nodes {
		width = m.nodes
	}
	start := (i*29 + int(op)*13) % m.nodes
	stride := 1 + i%5
	ids := make([]int, width)
	for k := range ids {
		ids[k] = (start + k*stride) % m.nodes
	}
	cores := 1 + int(op>>5)
	ways := int(op>>2) & 3
	bw := int(op>>4) % 20
	for _, id := range ids {
		if f := m.cached.Index().Free(id); cores > f {
			cores = f
		}
		if w := int(m.cached.FreeWays(id)); ways > w {
			ways = w
		}
		if b := int(m.cached.FreeBW(id)); bw > b {
			bw = b
		}
	}
	if cores <= 0 {
		return
	}
	if ways < 0 {
		ways = 0
	}
	if bw < 0 {
		bw = 0
	}
	r := Reservation{Cores: cores, Ways: units.Ways(ways), BW: units.GBps(bw), Intensive: op&0x80 != 0}
	m.cached.ReserveSpan(ids, r)
	m.plain.ReserveSpan(ids, r)
	m.sharded.ReserveSpan(ids, r)
	m.spans = append(m.spans, heldSpan{ids, r})
}

// spanRelease undoes the most recent live span, if any.
func (m *mutHarness) spanRelease() {
	n := len(m.spans)
	if n == 0 {
		return
	}
	sp := m.spans[n-1]
	m.spans = m.spans[:n-1]
	m.cached.ReleaseSpan(sp.ids, sp.r)
	m.plain.ReleaseSpan(sp.ids, sp.r)
	m.sharded.ReleaseSpan(sp.ids, sp.r)
}

// step mixes span mutations into the cache harness's op stream: half the
// even opcodes become span reserves, one slot a span release, the rest
// fall through to the per-node mutations and triangulating queries.
func (m *mutHarness) step(t *testing.T, i int, op byte) {
	t.Helper()
	switch op & 7 {
	case 0, 1:
		m.spanReserve(i, op)
	case 2:
		m.spanRelease()
	default:
		m.cacheHarness.step(t, i, op)
	}
}

// TestParallelSpanEquivalence drives seeded span/node mutation schedules
// through the pipeline at several worker widths and shard counts — the
// in-package bit-identical contract behind trace-level replay
// equivalence. 192 nodes spread the bitset over three words so the
// word-striped task ownership is genuinely exercised.
func TestParallelSpanEquivalence(t *testing.T) {
	for _, width := range []int{2, 4, 7} {
		for _, shards := range []int{1, 4, 7} {
			m := newMutHarness(192, shards, width, false)
			rng := rand.New(rand.NewSource(int64(width*10 + shards)))
			ops := make([]byte, 1200)
			rng.Read(ops)
			for i, op := range ops {
				m.step(t, i, op)
			}
			// Drain every span and reservation so release-side striping on
			// the way back to an idle cluster is covered too.
			for len(m.spans) > 0 {
				m.spanRelease()
			}
			for id := range m.held {
				for len(m.held[id]) > 0 {
					m.release(id)
				}
			}
			m.query(t, 3, core.Demand{Cores: 4})
			m.close()
		}
	}
}

// FuzzParallelMutation lets the fuzzer hunt for span schedules, worker
// widths, and shard counts that make the parallel pipeline diverge from
// the serial loops or fail the cache/shard audits.
func FuzzParallelMutation(f *testing.F) {
	f.Add([]byte{0x00, 0x42, 0x81, 0x07, 0xfe, 0x13, 0x02, 0xff}, byte(3), byte(2), false)
	f.Add([]byte{0x10, 0x08, 0x12, 0x13, 0xa2, 0xb3, 0x00, 0x01}, byte(6), byte(5), true)
	f.Add([]byte{0xf8, 0xf9, 0x02, 0x03, 0x03, 0x00, 0x01, 0x02}, byte(0), byte(0), false)
	f.Fuzz(func(t *testing.T, ops []byte, widthByte, shardByte byte, noGrouping bool) {
		if len(ops) > 2048 {
			ops = ops[:2048]
		}
		m := newMutHarness(192, 1+int(shardByte)%8, 2+int(widthByte)%6, noGrouping)
		defer m.close()
		for i, op := range ops {
			m.step(t, i, op)
		}
		m.query(t, 2, core.Demand{Cores: 2})
	})
}

// TestSpanPipelineSteadyStateAllocs is the runtime side of the parallel
// apply path's allocfree pins: once the pool, the per-task delta
// arrays, and the dirty stack are warm, a span reserve + search +
// release cycle must allocate nothing beyond the result slice — the
// batch fields are published by assignment and the bucket merges reuse
// the same delta arrays every round.
func TestSpanPipelineSteadyStateAllocs(t *testing.T) {
	state := NewSimState(hw.DefaultNodeSpec(), 512)
	cache := NewScoreCache(512, state.Spec().Cores.Int())
	s := &Search{View: state, Idx: state.Index(), Spec: state.Spec(), Nodes: 512, Cache: cache}
	state.SetOnChange(cache.Invalidate)
	state.SetOnSpanChange(cache.InvalidateSpan)
	state.SetMutWorkers(4)
	defer state.CloseMut()
	ids := make([]int, 0, 256)
	for id := 0; id < 512; id += 2 {
		ids = append(ids, id)
	}
	r := Reservation{Cores: 2, Ways: 1, BW: 5}
	d := core.Demand{Cores: 4}
	cycle := func() {
		state.ReserveSpan(ids, r)
		if s.FindDemand(4, d) == nil {
			t.Fatal("no placement")
		}
		state.ReleaseSpan(ids, r)
	}
	for i := 0; i < 300; i++ { // warm the pool, deltas, and dirty stack
		cycle()
	}
	allocs := testing.AllocsPerRun(200, cycle)
	if allocs > 1.5 {
		t.Errorf("steady-state span reserve+search+release allocates %.1f objects/run, want <= 1 (result slice)", allocs)
	}
}
