package placement

import (
	"math/rand"
	"testing"

	"spreadnshare/internal/core"
	"spreadnshare/internal/hw"
	"spreadnshare/internal/units"
)

// cacheHarness drives two identical simulated clusters through the same
// mutation schedule: one searched through the incremental score cache,
// one from scratch. Every query must return the identical node list —
// the bit-identical-digest contract — and the cache must pass its own
// audit after every step.
type cacheHarness struct {
	spec   hw.NodeSpec
	nodes  int
	cached *SimState
	plain  *SimState
	cs     *Search // searches through cs.Cache
	ps     *Search // rescoring from scratch
	held   [][]Reservation

	// Optional third cluster searched through a sharded kernel — see
	// withShards in shard_test.go. When present, every mutation mirrors
	// into it and every query must agree with the other two and pass the
	// shard audit.
	sharded  *SimState
	ss       *Search
	shardSet *ShardSet
}

func newCacheHarness(nodes int, noGrouping bool) *cacheHarness {
	spec := hw.DefaultNodeSpec()
	h := &cacheHarness{
		spec:   spec,
		nodes:  nodes,
		cached: NewSimState(spec, nodes),
		plain:  NewSimState(spec, nodes),
		held:   make([][]Reservation, nodes),
	}
	h.cs = &Search{
		View:       h.cached,
		Idx:        h.cached.Index(),
		Spec:       spec,
		Nodes:      nodes,
		NoGrouping: noGrouping,
		Cache:      NewScoreCache(nodes, spec.Cores.Int()),
	}
	h.cached.SetOnChange(h.cs.Cache.Invalidate)
	h.ps = &Search{
		View:       h.plain,
		Idx:        h.plain.Index(),
		Spec:       spec,
		Nodes:      nodes,
		NoGrouping: noGrouping,
	}
	return h
}

// reserve takes up to `cores` cores (clamped to the node's free count)
// plus proportional ways/bandwidth on both clusters and remembers the
// effective reservation for a later release.
func (h *cacheHarness) reserve(id, cores, ways, bw int) {
	free := h.cached.Index().Free(id)
	if cores > free {
		cores = free
	}
	if cores <= 0 {
		return
	}
	if w := int(h.cached.FreeWays(id)); ways > w {
		ways = w
	}
	if b := int(h.cached.FreeBW(id)); bw > b {
		bw = b
	}
	r := Reservation{Cores: cores, Ways: units.Ways(ways), BW: units.GBps(bw)}
	eff := h.cached.Reserve(id, r)
	h.plain.Reserve(id, r)
	if h.sharded != nil {
		h.sharded.Reserve(id, r)
	}
	h.held[id] = append(h.held[id], eff)
}

// release undoes the node's most recent live reservation, if any.
func (h *cacheHarness) release(id int) {
	n := len(h.held[id])
	if n == 0 {
		return
	}
	r := h.held[id][n-1]
	h.held[id] = h.held[id][:n-1]
	h.cached.Release(id, r)
	h.plain.Release(id, r)
	if h.sharded != nil {
		h.sharded.Release(id, r)
	}
}

// query runs the same FindDemand on both searches and fails on the first
// divergence, then audits the cache against the live backend.
func (h *cacheHarness) query(t *testing.T, n int, d core.Demand) {
	t.Helper()
	got := h.cs.FindDemand(n, d)
	want := h.ps.FindDemand(n, d)
	if len(got) != len(want) {
		t.Fatalf("FindDemand(%d, %+v): cached found %d nodes, plain %d", n, d, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("FindDemand(%d, %+v): cached %v != plain %v", n, d, got, want)
		}
	}
	if err := h.cs.Cache.Audit(h.cached, h.cached.Index(), h.spec, h.cs.ScoreBeta()); err != nil {
		t.Fatalf("after FindDemand(%d, %+v): %v", n, d, err)
	}
	if h.ss != nil {
		sharded := h.ss.FindDemand(n, d)
		if len(sharded) != len(want) {
			t.Fatalf("FindDemand(%d, %+v): sharded found %d nodes, plain %d", n, d, len(sharded), len(want))
		}
		for i := range sharded {
			if sharded[i] != want[i] {
				t.Fatalf("FindDemand(%d, %+v): sharded %v != plain %v", n, d, sharded, want)
			}
		}
		if err := h.shardSet.Audit(h.sharded, h.sharded.Index(), h.spec, h.ss.ScoreBeta()); err != nil {
			t.Fatalf("after sharded FindDemand(%d, %+v): %v", n, d, err)
		}
	}
}

// step decodes one fuzz byte into a mutation or a query. The decode
// spreads ids over the whole cluster (31 is coprime with the node
// counts used) and exercises both the grouped early-stop path (small n)
// and the accumulate-then-select fallback (large n).
func (h *cacheHarness) step(t *testing.T, i int, op byte) {
	t.Helper()
	id := (i*31 + int(op)*17) % h.nodes
	switch op & 3 {
	case 0:
		h.reserve(id, 1+int(op>>4), int(op>>2)&7, int(op>>3)%40)
	case 1:
		h.release(id)
	case 2:
		h.query(t, 1+int(op>>4)%6, core.Demand{
			Cores: int(op >> 5), Ways: units.Ways(int(op>>2) & 3), BW: units.GBps(int(op>>3) % 30),
		})
	default:
		h.query(t, 8+int(op>>4), core.Demand{Cores: int(op>>5) & 3})
	}
}

// TestCachedSearchEquivalence drives long seeded mutation/query
// schedules through the harness in both grouping modes — the standing
// regression test for the cache's bit-identical contract.
func TestCachedSearchEquivalence(t *testing.T) {
	for _, noGrouping := range []bool{false, true} {
		for seed := int64(1); seed <= 4; seed++ {
			h := newCacheHarness(96, noGrouping)
			rng := rand.New(rand.NewSource(seed))
			ops := make([]byte, 1500)
			rng.Read(ops)
			for i, op := range ops {
				h.step(t, i, op)
			}
			// Drain every reservation so release-driven invalidation on
			// the way back to an idle cluster is covered too.
			for id := range h.held {
				for len(h.held[id]) > 0 {
					h.release(id)
				}
			}
			h.query(t, 3, core.Demand{Cores: 4})
		}
	}
}

// FuzzCachedSearch lets the fuzzer hunt for mutation schedules that
// break cached/from-scratch agreement or the cache audit.
func FuzzCachedSearch(f *testing.F) {
	f.Add([]byte{0x00, 0x42, 0x81, 0x07, 0xfe, 0x13, 0x02, 0xff}, false)
	f.Add([]byte{0x10, 0x11, 0x12, 0x13, 0xa2, 0xb3, 0x00, 0x01}, true)
	f.Add([]byte{0xff, 0xff, 0x03, 0x03, 0x03, 0x00, 0x01, 0x02}, false)
	f.Fuzz(func(t *testing.T, ops []byte, noGrouping bool) {
		if len(ops) > 4096 {
			ops = ops[:4096]
		}
		h := newCacheHarness(64, noGrouping)
		for i, op := range ops {
			h.step(t, i, op)
		}
		h.query(t, 2, core.Demand{Cores: 2})
	})
}

// TestCachedSearchSteadyStateAllocs is the runtime side of the allocfree
// lint suppressions in the cache: once the scratch buffers and bucket
// lists reach steady-state capacity, a mutate-then-search cycle must
// allocate nothing beyond the result slice the caller keeps.
func TestCachedSearchSteadyStateAllocs(t *testing.T) {
	h := newCacheHarness(512, false)
	d := core.Demand{Cores: 4, Ways: 2, BW: 10}
	cycle := func(i int) {
		id := (i * 37) % h.nodes
		h.reserve(id, 1+i%8, i%4, i%20)
		if len(h.held[(id+7)%h.nodes]) > 0 {
			h.release((id + 7) % h.nodes)
		}
		if h.cs.FindDemand(4, d) == nil {
			t.Fatal("no placement")
		}
	}
	for i := 0; i < 3000; i++ { // warm every bucket's backing arrays
		cycle(i)
	}
	n := 3000
	allocs := testing.AllocsPerRun(200, func() {
		cycle(n)
		n++
	})
	// One allocation is the returned node list; everything else must
	// come from steady-state scratch.
	if allocs > 1.5 {
		t.Errorf("steady-state mutate+search allocates %.1f objects/run, want <= 1 (result slice)", allocs)
	}
}
