// Package placement is the policy-agnostic placement kernel shared by
// Uberun (internal/sched) and the large-cluster trace simulator
// (internal/trace). It owns the pieces the paper's evaluation needs at
// every scale:
//
//   - the Policy enum naming the four compared strategies,
//   - a NodeView/Txn capacity interface over any cluster backend,
//   - an indexed free-core structure replacing O(nodes) linear scans,
//   - the placement searches (CE, CS, SNS demand→scale, TwoSlot),
//   - the age-limited priority queue with bounded backfill depth.
//
// Both layers run the *same* policy code — the methodological point of
// Figure 20: the strategy that wins on the testbed is exactly the one
// replayed on 4K–32K-node clusters.
package placement

import (
	"fmt"
	"strings"
)

// Policy selects the placement strategy. The exhaustive lint pass keeps
// every switch over it covering all four strategies.
//
//sns:enum
type Policy int

const (
	// CE is Compact-n-Exclusive: minimum node footprint, dedicated
	// nodes — the policy of SLURM/LSF/PBS and all top-10 supercomputers.
	CE Policy = iota
	// CS is Compact-n-Share: node sharing by free cores, preferring the
	// lowest scale factor currently possible.
	CS
	// SNS is Spread-n-Share: profile-guided automatic scaling plus
	// resource-compatible co-location with CAT way partitioning and
	// bandwidth accounting.
	SNS
	// TwoSlot is the related-work baseline (ClavisMO / Poncos style):
	// static half-node slots, at most one shared-resource-intensive
	// job per node, no scaling and no cache partitioning.
	TwoSlot
)

// String returns the policy name.
func (p Policy) String() string {
	switch p {
	case CE:
		return "CE"
	case CS:
		return "CS"
	case SNS:
		return "SNS"
	case TwoSlot:
		return "TwoSlot"
	}
	return fmt.Sprintf("Policy(%d)", int(p))
}

// ParsePolicy reads a policy name (case-insensitive).
func ParsePolicy(s string) (Policy, error) {
	switch strings.ToUpper(s) {
	case "CE":
		return CE, nil
	case "CS":
		return CS, nil
	case "SNS":
		return SNS, nil
	case "TWOSLOT":
		return TwoSlot, nil
	}
	return CE, fmt.Errorf("placement: unknown policy %q", s)
}
