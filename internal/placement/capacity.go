package placement

import (
	"fmt"

	"spreadnshare/internal/units"
)

// Capacity is the raw per-node float capacity state of a SimState — the
// fields whose values depend on the exact order of reservation
// arithmetic. Free cores, LLC ways, and intensive counts are integers,
// so re-deriving them by replaying the surviving reservations is exact;
// free bandwidth, memory, and I/O are float64 accumulators, and a node
// that went through reserve/reserve/release carries rounding residue
// ((peak-a-b)+a differs from peak-b by ULPs) that replaying only the
// surviving reservations cannot reproduce. Those ULPs feed straight
// into the (score, id) placement order, so snapshots persist this
// struct verbatim — encoding/json writes shortest-round-trip floats —
// and a restored state is bit-identical to the live one it copies.
type Capacity struct {
	FreeBW  []units.GBps `json:"free_bw"`
	FreeMem []float64    `json:"free_mem"`
	FreeIO  []units.GBps `json:"free_io"`
}

// ExportCapacity deep-copies the order-sensitive float capacity arrays.
func (s *SimState) ExportCapacity() Capacity {
	c := Capacity{
		FreeBW:  make([]units.GBps, len(s.freeBW)),
		FreeMem: make([]float64, len(s.freeMem)),
		FreeIO:  make([]units.GBps, len(s.freeIO)),
	}
	copy(c.FreeBW, s.freeBW)
	copy(c.FreeMem, s.freeMem)
	copy(c.FreeIO, s.freeIO)
	return c
}

// ImportCapacity overwrites the float capacity arrays with previously
// exported state, discarding whatever reservation replay accumulated,
// and invalidates every node's cached score so no stale score survives
// the overwrite. Integer state (free cores, ways, intensive counts) is
// untouched: replay reconstructs it exactly, and the core index and
// sharded kernel depend only on it.
func (s *SimState) ImportCapacity(c Capacity) error {
	n := s.Len()
	if len(c.FreeBW) != n || len(c.FreeMem) != n || len(c.FreeIO) != n {
		return fmt.Errorf("placement: capacity arrays sized %d/%d/%d for a %d-node state",
			len(c.FreeBW), len(c.FreeMem), len(c.FreeIO), n)
	}
	copy(s.freeBW, c.FreeBW)
	copy(s.freeMem, c.FreeMem)
	copy(s.freeIO, c.FreeIO)
	if s.onChange != nil {
		for id := 0; id < n; id++ {
			s.onChange(id)
		}
	}
	return nil
}
