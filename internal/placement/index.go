package placement

import (
	"fmt"
	"math/bits"
)

// CoreIndex is the free-capacity index of the placement kernel: node ids
// bucketed by free-core count, each bucket a bitset. It generalizes the
// trace simulator's byFree slice index with two properties the testbed
// scheduler's determinism rules require:
//
//   - iteration within a bucket is in ascending node-id order (a bitset
//     has no insertion order to leak), matching the ID-order tie-breaking
//     of the linear scans it replaces;
//   - updates are O(1) bit flips, so a placement pass over a 32K-node
//     cluster touches ~cores+1 population counters and only the words of
//     the buckets it scans instead of every node.
//
// Invariants: every node id lives in exactly one bucket; bucket f holds
// precisely the nodes whose backend reports f free cores (exclusively
// held nodes index as 0); counts[f] equals the population of bucket f.
// The backend must call Update after every reservation change — a stale
// index makes the searches silently wrong, so Update panics on
// out-of-range values rather than clamping.
type CoreIndex struct {
	cores   int
	words   int
	free    []int      // node id -> free cores
	counts  []int      // free cores -> bucket population
	buckets [][]uint64 // free cores -> node-id bitset
}

// NewCoreIndex builds the index for a cluster of all-idle nodes.
func NewCoreIndex(nodes, cores int) *CoreIndex {
	if nodes < 0 || cores < 1 {
		panic(fmt.Sprintf("placement: bad index shape %d nodes / %d cores", nodes, cores))
	}
	x := &CoreIndex{
		cores:   cores,
		words:   (nodes + 63) / 64,
		free:    make([]int, nodes),
		counts:  make([]int, cores+1),
		buckets: make([][]uint64, cores+1),
	}
	for f := range x.buckets {
		x.buckets[f] = make([]uint64, x.words)
	}
	full := x.buckets[cores]
	for id := 0; id < nodes; id++ {
		full[id>>6] |= 1 << (uint(id) & 63)
		x.free[id] = cores
	}
	x.counts[cores] = nodes
	return x
}

// Len returns the number of indexed nodes.
func (x *CoreIndex) Len() int { return len(x.free) }

// Cores returns the per-node core capacity the index was built with.
func (x *CoreIndex) Cores() int { return x.cores }

// Free returns a node's indexed free-core count.
func (x *CoreIndex) Free(id int) int { return x.free[id] }

// Count returns the number of nodes with exactly `free` free cores.
func (x *CoreIndex) Count(free int) int { return x.counts[free] }

// MaxFree returns the highest free-core count present on any node.
func (x *CoreIndex) MaxFree() int {
	for f := x.cores; f > 0; f-- {
		if x.counts[f] > 0 {
			return f
		}
	}
	return 0
}

// Update moves a node to the bucket of its new free-core count.
func (x *CoreIndex) Update(id, free int) {
	old := x.free[id]
	if old == free {
		return
	}
	if free < 0 || free > x.cores {
		//lint:allocfree Sprintf runs only on the invariant-violation panic path, never on a completed update
		panic(fmt.Sprintf("placement: node %d free cores %d outside [0, %d]", id, free, x.cores))
	}
	w, bit := id>>6, uint64(1)<<(uint(id)&63)
	x.buckets[old][w] &^= bit
	x.buckets[free][w] |= bit
	x.counts[old]--
	x.counts[free]++
	x.free[id] = free
}

// shiftTo moves a node to the bucket of its new free-core count like
// Update, but records the two population changes in the caller-owned
// delta array instead of the shared counts — the per-task form the
// parallel mutation pipeline runs. Pipeline tasks own disjoint node ids
// and disjoint bitset words (ids are word-striped across tasks), so the
// bit flips and the free[] write race with nothing; only counts is
// shared across tasks, and it is reconciled serially afterwards through
// applyCounts.
//
//sns:hotpath
func (x *CoreIndex) shiftTo(id, free int, delta []int) {
	old := x.free[id]
	if old == free {
		return
	}
	if free < 0 || free > x.cores {
		//lint:allocfree Sprintf runs only on the invariant-violation panic path, never on a completed shift
		panic(fmt.Sprintf("placement: node %d free cores %d outside [0, %d]", id, free, x.cores))
	}
	w, bit := id>>6, uint64(1)<<(uint(id)&63)
	x.buckets[old][w] &^= bit
	x.buckets[free][w] |= bit
	delta[old]--
	delta[free]++
	x.free[id] = free
}

// applyCounts folds one task's population deltas into the shared bucket
// counts and zeroes the delta array for its next batch. Integer
// addition commutes, so the task merge order is irrelevant: the counts
// land exactly where the serial Update sequence would put them.
//
//sns:hotpath
func (x *CoreIndex) applyCounts(delta []int) {
	for f, d := range delta {
		if d != 0 {
			x.counts[f] += d
			delta[f] = 0
		}
	}
}

// Scan visits the nodes with exactly `free` free cores in ascending id
// order, stopping early (and returning false) when fn returns false.
// The index must not be mutated during a scan.
func (x *CoreIndex) Scan(free int, fn func(id int) bool) bool {
	for w, word := range x.buckets[free] {
		for word != 0 {
			id := w<<6 + bits.TrailingZeros64(word)
			//lint:allocfree callback is vetted at each annotated caller; Scan retains nothing
			if !fn(id) {
				return false
			}
			word &= word - 1
		}
	}
	return true
}
