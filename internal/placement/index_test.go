package placement

import "testing"

func TestCoreIndexUpdateAndScan(t *testing.T) {
	x := NewCoreIndex(100, 28)
	if x.Len() != 100 || x.Count(28) != 100 || x.MaxFree() != 28 {
		t.Fatalf("fresh index: len=%d count(28)=%d max=%d", x.Len(), x.Count(28), x.MaxFree())
	}
	x.Update(70, 12)
	x.Update(3, 12)
	x.Update(99, 0)
	if x.Free(70) != 12 || x.Count(12) != 2 || x.Count(28) != 97 || x.Count(0) != 1 {
		t.Fatalf("after updates: free(70)=%d count(12)=%d count(28)=%d count(0)=%d",
			x.Free(70), x.Count(12), x.Count(28), x.Count(0))
	}
	// Scan visits in ascending id order regardless of update order.
	var got []int
	x.Scan(12, func(id int) bool { got = append(got, id); return true })
	if len(got) != 2 || got[0] != 3 || got[1] != 70 {
		t.Errorf("Scan(12) = %v, want [3 70]", got)
	}
	// Early stop returns false.
	if x.Scan(28, func(id int) bool { return false }) {
		t.Error("stopped scan returned true")
	}
	// A no-op update keeps counts intact.
	x.Update(70, 12)
	if x.Count(12) != 2 {
		t.Errorf("no-op update changed count: %d", x.Count(12))
	}
}

func TestCoreIndexMaxFreeDrains(t *testing.T) {
	x := NewCoreIndex(4, 8)
	for id := 0; id < 4; id++ {
		x.Update(id, 0)
	}
	if x.MaxFree() != 0 {
		t.Errorf("drained MaxFree = %d, want 0", x.MaxFree())
	}
	x.Update(2, 5)
	if x.MaxFree() != 5 {
		t.Errorf("MaxFree = %d, want 5", x.MaxFree())
	}
}

func TestCoreIndexPanicsOnBadUpdate(t *testing.T) {
	x := NewCoreIndex(4, 8)
	defer func() {
		if recover() == nil {
			t.Error("out-of-range update did not panic")
		}
	}()
	x.Update(1, 9)
}

func TestPendingAgingAndOrder(t *testing.T) {
	q := &Pending{AgingPeriodSec: 100}
	// Same effective rank: order breaks the tie.
	q.Push(1, 0, 0, 1)
	q.Push(0, 0, 0, 0)
	// Higher priority beats both; an old submission outranks it via aging.
	q.Push(2, 0, 1, 2)
	q.Push(3, -300, 0, 3) // 300 s old: +3 levels
	var tried []int
	q.Schedule(0, func(id int) bool { tried = append(tried, id); return true })
	want := []int{3, 2, 0, 1}
	if len(tried) != 4 {
		t.Fatalf("tried %v", tried)
	}
	for i := range want {
		if tried[i] != want[i] {
			t.Fatalf("try order %v, want %v", tried, want)
		}
	}
	if q.Len() != 0 {
		t.Errorf("queue not drained: %d", q.Len())
	}
}

func TestPendingNoBackfillBlocks(t *testing.T) {
	q := &Pending{AgingPeriodSec: 1, NoBackfill: true}
	q.Push(0, 0, 0, 0)
	q.Push(1, 0, 0, 1)
	var tried []int
	q.Schedule(1, func(id int) bool { tried = append(tried, id); return false })
	if len(tried) != 1 || tried[0] != 0 {
		t.Errorf("NoBackfill tried %v, want only the head", tried)
	}
	if q.Len() != 2 {
		t.Errorf("queue len = %d, want 2", q.Len())
	}
	if first, ok := q.First(); !ok || first.ID != 0 {
		t.Errorf("First = %+v, %v", first, ok)
	}
}

func TestPendingAgeLimitBlocks(t *testing.T) {
	q := &Pending{AgingPeriodSec: 1, AgeLimitSec: 100}
	q.Push(0, 0, 0, 0)
	q.Push(1, 190, 0, 1)
	var tried []int
	// At t=200 job 0 is 200 s old (past the limit): its failure blocks
	// job 1 from overtaking.
	q.Schedule(200, func(id int) bool { tried = append(tried, id); return false })
	if len(tried) != 1 || tried[0] != 0 {
		t.Errorf("age limit tried %v, want only the stuck elder", tried)
	}
}

func TestPendingScanDepth(t *testing.T) {
	q := &Pending{AgingPeriodSec: 1, ScanDepth: 2}
	for i := 0; i < 5; i++ {
		q.Push(i, 0, 0, i)
	}
	tried := 0
	q.Schedule(1, func(id int) bool { tried++; return false })
	if tried != 2 {
		t.Errorf("scan depth tried %d jobs, want 2", tried)
	}
	// Successes do not count against the depth.
	tried = 0
	q.Schedule(1, func(id int) bool { tried++; return id != 3 })
	if tried != 5 {
		t.Errorf("tried %d, want all 5 (only one failure)", tried)
	}
	if q.Len() != 1 {
		t.Errorf("queue len = %d, want the single failure", q.Len())
	}
}
