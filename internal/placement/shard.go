package placement

import (
	"fmt"

	"spreadnshare/internal/hw"
	"spreadnshare/internal/par"
	"spreadnshare/internal/units"
)

// shard is one contiguous node-ID range of a sharded kernel, with its
// own free-core index and score cache addressed by local id in
// [0, nodes). Everything a query reads inside one shard — bucket
// counters, bitsets, dirty sets, ordered entry lists — is private to
// it, which is what lets the per-shard scans of a sharded FindDemand
// run concurrently without a single shared write.
type shard struct {
	base  int // first global node id of the range
	nodes int
	idx   *CoreIndex
	cache *ScoreCache
}

// ShardSet partitions a cluster's placement kernel into contiguous
// node-ID ranges, each with a private CoreIndex and ScoreCache, plus
// the persistent worker pool the sharded search fans over.
//
// Determinism contract (DESIGN.md "Sharded kernel"):
//
//   - ranges come from EvenSplit(nodes, count) — larger shares first —
//     so the partition is a pure function of (nodes, count), and local
//     id order within a shard IS global id order restricted to its
//     range;
//   - mutations are applied shard-locally and immediately (an O(1)
//     index update plus an O(1) dirty-bit), so the per-shard dirty sets
//     are exactly the batched mutations of the current simulation
//     event, and the next query's flush is their visibility boundary;
//   - queries merge per-shard candidate lists in the global
//     (score, id) total order, which restores the exact serial
//     enumeration no matter how many workers scanned.
type ShardSet struct {
	nodes  int
	shards []shard
	// q/big/split drive the O(1) shardOf arithmetic: the first big
	// shards hold q+1 nodes (covering global ids [0, split)), the rest
	// hold q.
	q, big, split int
	pool          *par.Pool
}

// NewShardSet builds an all-idle sharded kernel over a cluster of the
// given shape. count is clamped to [1, nodes]; the pool width is the
// par.Workers() setting at creation time. Callers that shard a live
// backend use SimState.Shard, which also seeds current occupancy.
func NewShardSet(spec hw.NodeSpec, nodes, count int) *ShardSet {
	if nodes < 0 {
		panic(fmt.Sprintf("placement: bad shard-set shape %d nodes", nodes))
	}
	if count > nodes {
		count = nodes
	}
	if count < 1 {
		count = 1
	}
	cores := spec.Cores.Int()
	ss := &ShardSet{nodes: nodes, shards: make([]shard, count)}
	ss.q, ss.big = nodes/count, nodes%count
	ss.split = ss.big * (ss.q + 1)
	base := 0
	for i := range ss.shards {
		size := ss.q
		if i < ss.big {
			size++
		}
		ss.shards[i] = shard{
			base:  base,
			nodes: size,
			idx:   NewCoreIndex(size, cores),
			cache: NewScoreCache(size, cores),
		}
		base += size
	}
	ss.pool = par.NewPool(0)
	return ss
}

// NumShards returns the shard count.
func (ss *ShardSet) NumShards() int { return len(ss.shards) }

// Len returns the number of nodes the set covers.
func (ss *ShardSet) Len() int { return ss.nodes }

// Range returns shard s's node-ID range as (first id, length).
func (ss *ShardSet) Range(s int) (base, n int) {
	return ss.shards[s].base, ss.shards[s].nodes
}

// Index returns shard s's local-id free-core index, for the invariant
// auditor's per-shard internal-consistency checks.
func (ss *ShardSet) Index(s int) *CoreIndex { return ss.shards[s].idx }

// Close releases the pool workers. Queries after Close still work,
// just serially.
func (ss *ShardSet) Close() { ss.pool.Close() }

// shardOf maps a global node id to its shard: the EvenSplit partition
// gives the first big shards q+1 nodes and the rest q, so the owner is
// a division away.
//
//sns:hotpath
func (ss *ShardSet) shardOf(gid int) int {
	if gid < ss.split {
		return gid / (ss.q + 1)
	}
	return ss.big + (gid-ss.split)/ss.q
}

// update mirrors one node's reservation change into its shard: the
// local index moves the node to its new free-core bucket and the local
// cache dirties it. Both are O(1), so per-event invalidation cost is
// unchanged from the flat kernel — no cross-shard work, no
// serialization. The score is unconditionally dirtied because it
// depends on allocated bandwidth and LLC ways too, which can change
// while the free-core count does not.
//
//sns:hotpath
func (ss *ShardSet) update(gid, free int) {
	sh := &ss.shards[ss.shardOf(gid)]
	lid := gid - sh.base
	sh.idx.Update(lid, free)
	sh.cache.Invalidate(lid)
}

// updateSpan mirrors one event's whole batch of reservation changes into
// the shards: every node in ids moves to its current free-core bucket
// (read from the authoritative global index) and is dirtied in its
// shard's cache. Consecutive ids that land in the same shard skip the
// shardOf arithmetic, so a plan's contiguous node runs cost one route
// each. State afterwards is identical to calling update once per id in
// the same order.
//
//sns:hotpath
func (ss *ShardSet) updateSpan(ids []int, global *CoreIndex) {
	var sh *shard
	lo, hi := 0, -1 // current shard's global id range [lo, hi]
	for _, gid := range ids {
		if gid < lo || gid > hi {
			sh = &ss.shards[ss.shardOf(gid)]
			lo, hi = sh.base, sh.base+sh.nodes-1
		}
		lid := gid - sh.base
		sh.idx.Update(lid, global.Free(gid))
		sh.cache.Invalidate(lid)
	}
}

// seed syncs one node's free-core count during construction, without
// dirtying the cache (a fresh ScoreCache already starts all-dirty).
func (ss *ShardSet) seed(gid, free int) {
	sh := &ss.shards[ss.shardOf(gid)]
	sh.idx.Update(gid-sh.base, free)
}

// shardView re-addresses a cluster-wide NodeView to one shard's local
// ids, so a per-shard ScoreCache audit can recompute scores through the
// same canonical expression — and land on bit-identical floats — as the
// global kernel.
type shardView struct {
	view NodeView
	base int
}

func (v shardView) UsedCores(id int) int        { return v.view.UsedCores(v.base + id) }
func (v shardView) AllocWays(id int) units.Ways { return v.view.AllocWays(v.base + id) }
func (v shardView) AllocBW(id int) units.GBps   { return v.view.AllocBW(v.base + id) }
func (v shardView) FreeWays(id int) units.Ways  { return v.view.FreeWays(v.base + id) }
func (v shardView) FreeBW(id int) units.GBps    { return v.view.FreeBW(v.base + id) }
func (v shardView) FreeMem(id int) float64      { return v.view.FreeMem(v.base + id) }
func (v shardView) FreeIO(id int) units.GBps    { return v.view.FreeIO(v.base + id) }

// Audit cross-checks the sharded kernel against the cluster-wide
// bookkeeping it mirrors:
//
//   - the ranges tile [0, nodes) exactly once (no id unclaimed, none
//     claimed twice), and every shard's index/cache match its range;
//   - every node's shard-local free-core count equals the global
//     index's (global may be nil for a standalone set);
//   - per free-core bucket, the shard populations sum to the global
//     bucket population — the conservation law behind the coordinator's
//     adequacy decision;
//   - every per-shard ScoreCache passes its own audit against the live
//     view, re-addressed through the shard's offset.
//
// The runtime invariant auditor calls this on sharded replays via
// CheckShardedIndex.
func (ss *ShardSet) Audit(view NodeView, global *CoreIndex, spec hw.NodeSpec, beta float64) error {
	base := 0
	for s := range ss.shards {
		sh := &ss.shards[s]
		if sh.base != base {
			return fmt.Errorf("placement: shard %d starts at node %d, want %d (ranges must tile)", s, sh.base, base)
		}
		if sh.idx.Len() != sh.nodes || sh.cache.Len() != sh.nodes {
			return fmt.Errorf("placement: shard %d covers %d nodes but indexes %d / caches %d",
				s, sh.nodes, sh.idx.Len(), sh.cache.Len())
		}
		base += sh.nodes
	}
	if base != ss.nodes {
		return fmt.Errorf("placement: shards tile %d nodes, cluster has %d", base, ss.nodes)
	}
	if global != nil {
		if global.Len() != ss.nodes {
			return fmt.Errorf("placement: shard set covers %d nodes, global index %d", ss.nodes, global.Len())
		}
		for gid := 0; gid < ss.nodes; gid++ {
			sh := &ss.shards[ss.shardOf(gid)]
			if got, want := sh.idx.Free(gid-sh.base), global.Free(gid); got != want {
				return fmt.Errorf("placement: node %d has %d free cores in its shard, %d globally", gid, got, want)
			}
		}
		for f := 0; f <= global.Cores(); f++ {
			sum := 0
			for s := range ss.shards {
				sum += ss.shards[s].idx.Count(f)
			}
			if sum != global.Count(f) {
				return fmt.Errorf("placement: bucket %d shard populations sum to %d, global count is %d",
					f, sum, global.Count(f))
			}
		}
	}
	for s := range ss.shards {
		sh := &ss.shards[s]
		if err := sh.cache.Audit(shardView{view: view, base: sh.base}, sh.idx, spec, beta); err != nil {
			return fmt.Errorf("placement: shard %d (nodes %d-%d): %w", s, sh.base, sh.base+sh.nodes-1, err)
		}
	}
	return nil
}
