// The fuzz test lives in placement_test because the invariant auditor
// imports placement: observing the queue from inside the package would
// be an import cycle.
package placement_test

import (
	"testing"

	"spreadnshare/internal/invariant"
	"spreadnshare/internal/placement"
)

// FuzzPendingQueue drives the shared pending queue through a fuzzed
// schedule of pushes and scheduling passes with the invariant auditor
// observing every pass, checking job conservation: every pushed job is
// either placed exactly once or still queued, and the queue's records
// never mutate while a job waits.
func FuzzPendingQueue(f *testing.F) {
	f.Add([]byte{0x00, 0x81, 0x05, 0x42, 0x91, 0x00, 0xff}, uint8(3), false)
	f.Add([]byte{0x10, 0x20, 0x30, 0x90, 0x90}, uint8(0), true)
	f.Add([]byte{0xff, 0xff, 0xff, 0xff}, uint8(7), false)
	f.Fuzz(func(t *testing.T, ops []byte, depth uint8, noBackfill bool) {
		q := &placement.Pending{
			AgingPeriodSec: 2,
			AgeLimitSec:    8,
			ScanDepth:      int(depth),
			NoBackfill:     noBackfill,
		}
		aud := invariant.New("fuzz")
		now := 0.0
		nextID := 0
		placed := map[int]int{}
		pushed := map[int]bool{}

		for _, op := range ops {
			// Each byte advances the clock and either submits a job
			// (low bit clear) with a priority from the upper bits, or
			// runs a scheduling pass that accepts jobs whose id hash
			// matches the byte's upper bits.
			now += float64(op >> 5)
			if op&1 == 0 {
				q.Push(nextID, now, int(op>>4), nextID)
				pushed[nextID] = true
				nextID++
			} else {
				accept := int(op >> 4)
				q.Schedule(now, func(id int) bool {
					if (id+accept)%3 == 0 {
						placed[id]++
						return true
					}
					return false
				})
			}
			aud.ObserveQueue(now, q)
		}

		queued := map[int]bool{}
		q.Each(func(it placement.Item) {
			if queued[it.ID] {
				t.Fatalf("job %d queued twice", it.ID)
			}
			queued[it.ID] = true
		})
		for id := range pushed {
			n := placed[id]
			if n > 1 {
				t.Fatalf("job %d placed %d times", id, n)
			}
			if n == 1 && queued[id] {
				t.Fatalf("job %d both placed and still queued", id)
			}
			if n == 0 && !queued[id] {
				t.Fatalf("job %d lost: neither placed nor queued", id)
			}
		}
		if len(queued) != len(pushed)-len(placed) {
			t.Fatalf("conservation broken: %d pushed, %d placed, %d queued",
				len(pushed), len(placed), len(queued))
		}
	})
}
