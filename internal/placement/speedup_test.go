package placement

import (
	"testing"

	"spreadnshare/internal/core"
	"spreadnshare/internal/hw"
)

// The PR 2 speedup gate: at Figure 20's largest cluster (32,768 nodes)
// the indexed candidate search must beat a linear full-cluster scan by at
// least 2x per placement pass, or the CoreIndex is not paying for its
// bookkeeping. The linear reference reproduces the pre-refactor
// core.FindNodes shape — one O(N) sweep bucketing nodes by free cores,
// then the same tightest-group-first selection — so the comparison
// isolates the index, not the selection policy.

const speedupNodes = 32768

// newSpeedupState builds the gate's cluster: node i has i*5 mod 28 cores
// in use (5 is coprime with 28, so occupancy scatters uniformly over all
// free-core buckets — the fragmented steady state a long replay reaches).
func newSpeedupState(tb testing.TB) (*SimState, *Search) {
	tb.Helper()
	spec := hw.DefaultNodeSpec()
	state := NewSimState(spec, speedupNodes)
	for id := 0; id < speedupNodes; id++ {
		if use := (id * 5) % spec.Cores.Int(); use > 0 {
			state.Reserve(id, Reservation{Cores: use})
		}
	}
	return state, &Search{
		View:  state,
		Idx:   state.Index(),
		Spec:  spec,
		Nodes: speedupNodes,
	}
}

// linearFindDemand is the reference implementation: one pass over every
// node, bucketing feasible candidates by free-core count, then the same
// ascending-bucket, idlest-first selection FindDemand performs over the
// index. Semantics match FindDemand exactly; only the candidate
// enumeration is O(cluster) instead of O(matching buckets).
func linearFindDemand(s *Search, n int, d core.Demand) []int {
	if n <= 0 {
		return nil
	}
	minFree := d.Cores
	if minFree < 0 {
		minFree = 0
	}
	buckets := make([][]int, s.Spec.Cores.Int()+1)
	for id := 0; id < s.Nodes; id++ {
		f := s.Idx.Free(id)
		if f >= minFree && s.fits(id, d) {
			buckets[f] = append(buckets[f], id)
		}
	}
	var all []int
	for f := minFree; f <= s.Spec.Cores.Int(); f++ {
		if len(buckets[f]) == 0 {
			continue
		}
		if !s.NoGrouping && len(buckets[f]) >= n {
			return s.selectIdlest(buckets[f], n)
		}
		all = append(all, buckets[f]...)
	}
	if len(all) < n {
		return nil
	}
	return s.selectIdlest(all, n)
}

var speedupDemand = core.Demand{Cores: 16, Ways: 4, BW: 30}

func TestLinearReferenceAgrees(t *testing.T) {
	_, s := newSpeedupState(t)
	for _, n := range []int{1, 64, 1024} {
		got := s.FindDemand(n, speedupDemand)
		want := linearFindDemand(s, n, speedupDemand)
		if len(got) != len(want) {
			t.Fatalf("n=%d: indexed found %d nodes, linear %d", n, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("n=%d: indexed %v != linear %v", n, got[:i+1], want[:i+1])
			}
		}
	}
}

// TestIndexedSearchSpeedup enforces the >=2x gate. It measures both
// implementations with testing.Benchmark, so run it without -short to
// re-certify after touching the index or search.
func TestIndexedSearchSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("speedup gate needs benchmark runs")
	}
	_, s := newSpeedupState(t)
	indexed := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if s.FindDemand(64, speedupDemand) == nil {
				b.Fatal("no placement")
			}
		}
	})
	linear := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if linearFindDemand(s, 64, speedupDemand) == nil {
				b.Fatal("no placement")
			}
		}
	})
	speedup := float64(linear.NsPerOp()) / float64(indexed.NsPerOp())
	t.Logf("indexed %v/op, linear %v/op, speedup %.1fx",
		indexed.NsPerOp(), linear.NsPerOp(), speedup)
	if speedup < 2 {
		t.Errorf("indexed search only %.2fx faster than the linear scan, gate is 2x", speedup)
	}
}

// BenchmarkIndexedFind32K and BenchmarkLinearFind32K are the gate's two
// sides as standalone benchmarks, recorded in BENCH_PR2.json.
func BenchmarkIndexedFind32K(b *testing.B) {
	_, s := newSpeedupState(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s.FindDemand(64, speedupDemand) == nil {
			b.Fatal("no placement")
		}
	}
}

func BenchmarkLinearFind32K(b *testing.B) {
	_, s := newSpeedupState(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if linearFindDemand(s, 64, speedupDemand) == nil {
			b.Fatal("no placement")
		}
	}
}
