package placement

import (
	"slices"
	"sort"

	"spreadnshare/internal/core"
	"spreadnshare/internal/hw"
	"spreadnshare/internal/par"
	"spreadnshare/internal/profiler"
	"spreadnshare/internal/units"
)

// Request describes one job to place, independent of which layer submits
// it. Two shapes exist:
//
//   - process-based (Procs > 0): the testbed scheduler's shape. Per-node
//     core counts come from EvenSplit over the chosen footprint, and the
//     program's MultiNode/PowerOf2 constraints gate each scale.
//   - footprint-based (Procs == 0): the trace replay's shape. The trace
//     records a node count (BaseNodes) and a per-node slice width
//     (CoresPerNode); scaled footprints divide that work uniformly.
type Request struct {
	// Procs is the total process count (0 for footprint-based requests).
	Procs int
	// BaseNodes is the minimum node footprint at scale factor 1.
	BaseNodes int
	// CoresPerNode is the per-node process count of a footprint-based
	// request at scale 1 (ignored when Procs > 0).
	CoresPerNode int
	// MemGBPerProc is the per-process main-memory demand (0 = unaccounted).
	MemGBPerProc float64
	// Alpha is the SNS slowdown threshold for demand estimation.
	Alpha float64
	// MultiNode and PowerOf2 are the program's spreading constraints
	// (only consulted for process-based requests).
	MultiNode bool
	PowerOf2  bool
	// Intensive marks the job shared-resource intensive for TwoSlot.
	Intensive bool
	// Profile is the program's scale profile; nil makes SNS fall back
	// to CS-style placement (an unprofiled program's first runs).
	Profile *profiler.Profile
}

// runnable reports whether the request may run spread over n nodes.
func (r *Request) runnable(n int) bool {
	if r.Procs <= 0 {
		return true
	}
	return ScaleRunnable(r.Procs, n, r.MultiNode, r.PowerOf2)
}

// coresAt returns the per-node core counts over an n-node footprint.
func (r *Request) coresAt(n int) []int {
	if r.Procs > 0 {
		return EvenSplit(r.Procs, n)
	}
	per := (r.CoresPerNode*r.BaseNodes + n - 1) / n
	cores := make([]int, n)
	for i := range cores {
		cores[i] = per
	}
	return cores
}

// Plan is a policy's placement decision: which nodes, how many cores on
// each, and the uniform way/bandwidth reservations to attach.
type Plan struct {
	Nodes []int
	Cores []int
	// Ways, BW, IOBW are the per-node SNS reservations (zero for the
	// unmanaged-sharing policies).
	Ways units.Ways
	BW   units.GBps
	IOBW units.GBps
	// Exclusive dedicates every placed node.
	Exclusive bool
	// K is the chosen scale factor (1 when the policy never scales).
	K int
}

// ScaleRunnable reports whether a procs-process program may run over n
// nodes given its framework constraints.
func ScaleRunnable(procs, n int, multiNode, powerOf2 bool) bool {
	if n > procs {
		return false
	}
	if !multiNode && n > 1 {
		return false
	}
	if powerOf2 && procs%n != 0 {
		return false
	}
	return true
}

// EvenSplit divides procs over n nodes as evenly as possible, larger
// shares first.
func EvenSplit(procs, n int) []int {
	if n <= 0 || procs <= 0 {
		return nil
	}
	out := make([]int, n)
	base, rem := procs/n, procs%n
	for i := range out {
		out[i] = base
		if i < rem {
			out[i]++
		}
	}
	return out
}

// Search runs the placement policies over one cluster backend. The
// backend supplies capacity reads (View) and the synchronized free-core
// index (Idx); the Search itself is stateless between calls.
//
// Determinism rules (the golden figure digests depend on them):
//
//   - candidates are enumerated bucket-ascending, id-ascending — the
//     index's only order — which reproduces the sort-by-(free, id) and
//     ID-order scans of the linear implementations it replaced;
//   - node scores are read through View with the same expression shape
//     as cluster.Node.Score, so float results are bit-identical;
//   - selectIdlest orders by (score, id), a total order, making the
//     selection independent of candidate enumeration order.
type Search struct {
	View NodeView
	Idx  *CoreIndex
	// Spec is the per-node hardware shape; Nodes the cluster size.
	Spec  hw.NodeSpec
	Nodes int
	// Beta weighs LLC occupancy in the node score (0 = paper default).
	Beta float64
	// MaxScale bounds the scale-factor search.
	MaxScale int
	// NoGrouping disables the idle-core grouping of Section 4.4.
	NoGrouping bool
	// ExclusiveSpread is the spread-without-share ablation: SNS scales
	// to the profiled footprint but keeps nodes dedicated.
	ExclusiveSpread bool
	// HasIntensive reports whether a node already hosts a
	// shared-resource-intensive job (TwoSlot's pairing rule). Only
	// consulted for intensive requests; nil means no node does.
	HasIntensive func(id int) bool
	// Cache, when set, is the incremental score index FindDemand reads
	// instead of rescoring every candidate. The backend must feed the
	// cache's dirty set (Invalidate) on every reservation change; the
	// search flushes pending invalidations before each walk, so results
	// are bit-identical to the from-scratch path.
	Cache *ScoreCache
	// Shards, when set via UseShards, is the partitioned kernel:
	// FindDemand fans each query over the per-shard indexes/caches and
	// merges the per-shard candidate lists back into the global
	// (score, id) order, bit-identical to the flat walk at any shard
	// count and pool width. Attach it with UseShards, never by field
	// assignment — the query runners are prebuilt there.
	Shards *ShardSet

	// scratch buffers candidate ids and scores across calls. A Search
	// serves one scheduling loop, so reuse is safe; both selection
	// helpers copy their results out before returning.
	scratch struct {
		ids   []int
		slots []int
		heap  []scoredNode
		pairs []scoredNode
	}

	// sq is the sharded query's prebuilt state: per-shard runners, the
	// pool task, and the k-way-merge closures, all constructed once in
	// UseShards so the per-query hot path allocates nothing but its
	// result. Mutable fields (n, d, minFree, cursors) are written by
	// the serial coordinator only; the runners read them after the
	// pool's happens-before edge.
	sq struct {
		runs    []shardRun
		lists   [][]cacheEntry // per-shard list under merge (bucket or flat)
		cur     []int          // per-shard merge cursor
		out     []int          // merge output scratch; copied to a fresh slice per query
		task    func(i int)    // NoGrouping: full multi-bucket scan
		taskF   func(i int)    // grouped: scan the single bucket sq.f
		taskR   func(i int)    // grouped: deepen every truncated shard to the raised bound sq.k
		emptyFn func(s int) bool
		lessFn  func(a, b int) bool
		takeFn  func(s int) bool
		n       int
		k       int // per-shard collection bound (adaptive, <= n)
		f       int // bucket under scan (grouped fan-out)
		starved int // list the merge stopped on (-1 = none); set by takeFn
		minFree int
		d       core.Demand
	}
}

// scoredNode pairs a candidate with its selection score.
type scoredNode struct {
	id    int
	score float64
}

func (s *Search) beta() float64 {
	if s.Beta == 0 {
		return core.DefaultBeta
	}
	return s.Beta
}

// ScoreBeta returns the effective LLC-occupancy weight scoring uses (the
// configured Beta, or the paper default when unset) — what the runtime
// auditor must recompute cached scores with.
func (s *Search) ScoreBeta() float64 { return s.beta() }

// Place runs one policy's search. It returns nil when the job cannot be
// placed right now.
func (s *Search) Place(p Policy, req Request) *Plan {
	switch p {
	case CE:
		return s.placeCE(req)
	case CS:
		return s.placeCS(req)
	case SNS:
		return s.placeSNS(req)
	case TwoSlot:
		return s.placeTwoSlot(req)
	}
	return nil
}

// Idle returns the n lowest-id fully-free nodes, or nil if fewer exist.
func (s *Search) Idle(n int) []int {
	if n <= 0 || s.Idx.Count(s.Spec.Cores.Int()) < n {
		return nil
	}
	out := make([]int, 0, n)
	s.Idx.Scan(s.Spec.Cores.Int(), func(id int) bool {
		out = append(out, id)
		return len(out) < n
	})
	return out
}

// placeCE packs the job onto the minimum number of fully idle nodes and
// dedicates them.
func (s *Search) placeCE(req Request) *Plan {
	n := req.BaseNodes
	nodes := s.Idle(n)
	if nodes == nil {
		return nil
	}
	return &Plan{Nodes: nodes, Cores: req.coresAt(n), Exclusive: true, K: 1}
}

// placeCS shares nodes by free cores, trying the lowest scale factor
// first and growing the footprint only when compact placement is
// impossible. Candidates are taken fullest-first (tightest bucket first,
// id order within) to keep placement compact.
func (s *Search) placeCS(req Request) *Plan {
	for k := 1; k <= s.MaxScale; k++ {
		n := k * req.BaseNodes
		if n > s.Nodes {
			break
		}
		if !req.runnable(n) {
			continue
		}
		cores := req.coresAt(n)
		mem := float64(cores[0]) * req.MemGBPerProc
		nodes := s.ascendFree(cores[0], n, mem)
		if nodes == nil {
			continue
		}
		return &Plan{Nodes: nodes, Cores: cores, K: k}
	}
	return nil
}

// ascendFree collects n nodes with at least minFree cores and mem GB
// free, fullest buckets first, or nil if fewer qualify.
func (s *Search) ascendFree(minFree, n int, mem float64) []int {
	if n <= 0 {
		return nil
	}
	out := make([]int, 0, n)
	for f := minFree; f <= s.Spec.Cores.Int(); f++ {
		if s.Idx.Count(f) == 0 {
			continue
		}
		stopped := !s.Idx.Scan(f, func(id int) bool {
			if s.View.FreeMem(id) >= mem {
				out = append(out, id)
			}
			return len(out) < n
		})
		if stopped {
			return out
		}
	}
	return nil
}

// placeSNS implements the Figure 11 process: walk the profiled scale
// factors in descending exclusive performance; for each, estimate
// (c, w, b) under the job's alpha and search for nodes; dispatch on the
// first fit. Scaling-class programs chase their fastest profiled
// footprint; neutral and compact programs are spread only passively —
// they stay at their minimum footprint unless resources force a larger
// one (Section 6.1: neutral jobs are "fillers").
func (s *Search) placeSNS(req Request) *Plan {
	prof := req.Profile
	if prof == nil {
		return s.placeCS(req)
	}
	scales := prof.ByPerformance()
	if prof.Class != profiler.Scaling {
		scales = append([]*profiler.ScaleProfile(nil), scales...)
		sort.Slice(scales, func(a, b int) bool { return scales[a].K < scales[b].K })
	}
	for _, sp := range scales {
		if sp.K > s.MaxScale {
			continue
		}
		n := sp.K * req.BaseNodes
		if n > s.Nodes || !req.runnable(n) {
			continue
		}
		if s.ExclusiveSpread {
			idle := s.Idle(n)
			if idle == nil {
				continue
			}
			return &Plan{Nodes: idle, Cores: req.coresAt(n), Exclusive: true, K: sp.K}
		}
		d := core.EstimateDemand(sp, req.Alpha, s.Spec)
		var cores []int
		if req.Procs > 0 {
			cores = EvenSplit(req.Procs, n)
			d.Cores = cores[0]
			d.MemGB = float64(cores[0]) * req.MemGBPerProc
		} else {
			cores = uniform(d.Cores, n)
		}
		nodes := s.FindDemand(n, d)
		if nodes == nil {
			continue
		}
		return &Plan{Nodes: nodes, Cores: cores, Ways: d.Ways, BW: d.BW, IOBW: d.IOBW, K: sp.K}
	}
	return nil
}

func uniform(v, n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = v
	}
	return out
}

// FindDemand searches for n nodes that can each host the demand. Per
// Section 4.4 it first tries to place the job within a single group of
// equally-idle nodes (tightest adequate group first, keeping resource
// consumption even within groups); failing that it falls back to the
// whole cluster. Within the chosen set it returns the n idlest nodes by
// the Co + Bo + beta*Wo score. It returns nil when fewer than n qualify.
//
//sns:hotpath
func (s *Search) FindDemand(n int, d core.Demand) []int {
	if n <= 0 {
		return nil
	}
	if s.Shards != nil {
		return s.findDemandSharded(n, d)
	}
	if s.Cache != nil {
		return s.findDemandCached(n, d)
	}
	minFree := d.Cores
	if minFree < 0 {
		minFree = 0
	}
	all := s.scratch.ids[:0]
	for f := minFree; f <= s.Spec.Cores.Int(); f++ {
		if s.Idx.Count(f) == 0 {
			continue
		}
		start := len(all)
		//lint:allocfree closure does not escape Scan; the runtime alloc gate verifies stack allocation
		s.Idx.Scan(f, func(id int) bool {
			if s.fits(id, d) {
				all = append(all, id)
			}
			return true
		})
		// An equal-free-cores bucket of feasible nodes is exactly an
		// idle-core group; the first adequate one (ascending free) is
		// the tightest fit.
		if !s.NoGrouping && len(all)-start >= n {
			s.scratch.ids = all
			return s.selectIdlest(all[start:], n)
		}
	}
	s.scratch.ids = all
	if len(all) < n {
		return nil
	}
	return s.selectIdlest(all, n)
}

// findDemandCached is FindDemand over the incremental score cache. The
// control flow mirrors the from-scratch path bucket for bucket; the only
// change is where candidate order and scores come from:
//
//   - grouped path: a bucket walk emits feasible nodes in ascending
//     (score, id) — the very order selectIdlest drains — so the first n
//     feasible nodes ARE the group's n idlest, and the walk stops there
//     instead of rescoring and heap-selecting the whole bucket. The
//     walk finds n feasible nodes exactly when the bucket holds >= n,
//     so the bucket-adequacy decision is unchanged.
//   - fallback path: feasible (score, id) pairs accumulate across
//     buckets and takeIdlest sorts them by the same total order the
//     bounded-heap selection drains in, so the result is identical and
//     independent of candidate enumeration order. Scores come from the
//     cache, where the flush just wrote the bit-identical value the
//     heap would otherwise recompute.
//
//sns:hotpath
func (s *Search) findDemandCached(n int, d core.Demand) []int {
	c := s.Cache
	beta := s.beta()
	//lint:allocfree the rescore closure does not escape flush; the runtime alloc gate verifies stack allocation
	c.flush(s.Idx, func(id int) float64 { return s.score(id, beta) })
	minFree := d.Cores
	if minFree < 0 {
		minFree = 0
	}
	all := s.scratch.pairs[:0]
	for f := minFree; f <= s.Spec.Cores.Int(); f++ {
		if s.Idx.Count(f) == 0 {
			continue
		}
		c.prepare(f, s.Idx)
		start := len(all)
		//lint:allocfree closure does not escape walk; the runtime alloc gate verifies stack allocation
		c.walk(f, s.Idx, func(id int32, sc float64) bool {
			if s.fits(int(id), d) {
				all = append(all, scoredNode{id: int(id), score: sc})
			}
			return s.NoGrouping || len(all)-start < n
		})
		if !s.NoGrouping && len(all)-start >= n {
			s.scratch.pairs = all
			//lint:allocfree result slice is the caller's product, not reusable scratch
			out := make([]int, n)
			for i := range out {
				out[i] = all[start+i].id
			}
			return out
		}
	}
	s.scratch.pairs = all
	if len(all) < n {
		return nil
	}
	return s.takeIdlest(all, n)
}

// takeIdlest is the cached-path fallback selection: sort the feasible
// (score, id) pairs by the selectIdlest total order and keep the first
// n. Sorting scratch in place is safe — the pairs are consumed here.
//
//sns:hotpath
func (s *Search) takeIdlest(pairs []scoredNode, n int) []int {
	//lint:allocfree slices.SortFunc is an in-place pdqsort over scratch; the non-escaping comparator stays on the stack
	slices.SortFunc(pairs, func(a, b scoredNode) int {
		//lint:floateq exact tie detection so the (score, id) order stays total
		if a.score != b.score {
			if a.score < b.score {
				return -1
			}
			return 1
		}
		return a.id - b.id
	})
	//lint:allocfree result slice is the caller's product, not reusable scratch
	out := make([]int, n)
	for i := range out {
		out[i] = pairs[i].id
	}
	return out
}

// shardRun is one shard's per-query runner: the prebuilt closures its
// scan hands the shard's cache, plus the per-bucket candidate scratch
// the coordinator merges. Each runner is owned by exactly one pool
// index, so a sharded query writes no shared state at all.
type shardRun struct {
	owner *Search
	sh    *shard
	// scoreFn rescores one local id through the canonical global
	// expression — the same call the flat kernel makes, so cached
	// floats are bit-identical across shard counts.
	scoreFn func(lid int) float64
	// walkFn is the prebuilt walk callback (collect, bound once so the
	// hot path never constructs a method value).
	walkFn func(lid int32, score float64) bool
	// buckets holds, per free-core count, the shard's feasible
	// candidates in ascending (score, global id) order, truncated at
	// the query's adaptive bound sq.k — a shard rarely contributes more
	// than its n/S share of the global top n, and the rare query where
	// it must rescans at a raised bound.
	buckets [][]cacheEntry
	// more records that the last walk of the current bucket stopped at
	// its bound with entries possibly remaining; bound records that
	// bound; last is the walk's final emitted (score, local id) key —
	// the resume point. A deepening continues the walk strictly after
	// last via walkFrom, so no prefix is ever walked (or fits-filtered)
	// twice, no matter how many times a query raises a shard's bound.
	more  bool
	bound int
	last  cacheEntry
	// flat/total serve the NoGrouping path: every feasible candidate
	// sorted by (score, id) then truncated at n, plus the pre-truncation
	// count the coordinator's adequacy check needs.
	flat  []cacheEntry
	total int
	// cur is the list collect is currently filling.
	cur []cacheEntry
	// flushed marks this shard's cache flushed for the current query;
	// grouped queries flush lazily on the first bucket that actually
	// touches the shard.
	flushed bool
}

// collect is the shard walk callback: translate to the global id, test
// feasibility against the shared read-only view, and keep the entry.
// Grouped queries stop a bucket once sq.k candidates are in hand (the
// walk emits ascending (score, id), so these are the bucket's best) and
// flag the truncation for the rescan machinery; NoGrouping queries keep
// everything for the post-scan sort.
//
//sns:hotpath
func (r *shardRun) collect(lid int32, score float64) bool {
	r.last = cacheEntry{score: score, id: lid}
	gid := int32(r.sh.base) + lid
	if !r.owner.fits(int(gid), r.owner.sq.d) {
		return true
	}
	//lint:allocfree per-shard candidate lists reach steady-state capacity after the first queries
	r.cur = append(r.cur, cacheEntry{score: score, id: gid})
	if r.owner.NoGrouping {
		return true
	}
	if len(r.cur) < r.owner.sq.k {
		return true
	}
	r.more = true
	return false
}

// scan is one shard's half of a NoGrouping sharded FindDemand, run on a
// pool worker: every bucket from the demand's core floor up, feasible
// candidates sorted and truncated at n. It touches only this shard's
// index, cache, and scratch, plus the read-only query parameters and
// node view — the no-shared-writes discipline that makes the fan-out
// race-free and order-insensitive.
//
// The shard summary prune: a shard whose local MaxFree is below the
// demand's core floor has zero feasible candidates in every consulted
// bucket, so it skips even its cache flush — pending invalidations
// just wait for a query that can read them.
//
//sns:hotpath
func (r *shardRun) scan() {
	q := &r.owner.sq
	r.flat = r.flat[:0]
	r.total = 0
	// The flat lists are truncated at n itself, which is as far as any
	// rescan would ever raise a bound — the merge never starves on them.
	r.more = false
	r.bound = q.n
	sh := r.sh
	if sh.idx.MaxFree() < q.minFree {
		return
	}
	sh.cache.flush(sh.idx, r.scoreFn)
	r.cur = r.flat
	for f := q.minFree; f <= sh.idx.Cores(); f++ {
		if sh.idx.Count(f) == 0 {
			continue
		}
		sh.cache.prepare(f, sh.idx)
		sh.cache.walk(f, sh.idx, r.walkFn)
	}
	r.total = len(r.cur)
	//lint:allocfree slices.SortFunc is an in-place pdqsort; entryLess is a top-level func and nothing escapes
	slices.SortFunc(r.cur, entryLess)
	if len(r.cur) > q.n {
		r.cur = r.cur[:q.n]
	}
	r.flat = r.cur
}

// scanBucket is one shard's share of a grouped sharded FindDemand for
// the single bucket sq.f, run on a pool worker: the shard's feasible
// prefix (up to sq.k entries) of that free-core group. The coordinator
// drives buckets serially in ascending order and stops at the first
// globally adequate one, so — exactly like the flat kernel's early
// return — higher buckets are never touched.
//
// The shard summary prune lives in the Count check: an empty local
// bucket means the shard contributes nothing, and it skips even its
// cache flush until a bucket that actually holds nodes comes along.
//
//sns:hotpath
func (r *shardRun) scanBucket() {
	q := &r.owner.sq
	sh := r.sh
	f := q.f
	r.more = false
	r.bound = q.k
	r.buckets[f] = r.buckets[f][:0]
	if sh.idx.Count(f) == 0 {
		return
	}
	if !r.flushed {
		sh.cache.flush(sh.idx, r.scoreFn)
		r.flushed = true
	}
	sh.cache.prepare(f, sh.idx)
	r.cur = r.buckets[f]
	sh.cache.walk(f, sh.idx, r.walkFn)
	r.buckets[f] = r.cur
}

// deepen continues a truncated bucket walk up to the raised absolute
// bound sq.k: walkFrom resumes strictly after the last emitted key, so
// the already-collected prefix stays in place and no entry is visited
// twice. Exact (untruncated) shards and shards already at the bound
// return after one flag read, which is what lets the adequacy pass fan
// a deepening over every shard unconditionally.
//
//sns:hotpath
func (r *shardRun) deepen() {
	if !r.more || r.bound >= r.owner.sq.k {
		return
	}
	q := &r.owner.sq
	sh := r.sh
	f := q.f
	r.more = false
	r.bound = q.k
	r.cur = r.buckets[f]
	sh.cache.walkFrom(f, sh.idx, r.last, r.walkFn)
	r.buckets[f] = r.cur
}

// UseShards attaches a sharded kernel to the search and prebuilds its
// query runners — per-shard score/walk closures, the pool task, and
// the merge cursor probes — so the per-query path allocates nothing
// but its result. Set Beta and NoGrouping before calling; a Search
// queries either its Shards or its flat Cache, never both.
func (s *Search) UseShards(ss *ShardSet) {
	s.Shards = ss
	q := &s.sq
	q.runs = make([]shardRun, ss.NumShards())
	q.lists = make([][]cacheEntry, len(q.runs))
	q.cur = make([]int, len(q.runs))
	cores := s.Spec.Cores.Int()
	for i := range q.runs {
		r := &q.runs[i]
		r.owner = s
		r.sh = &ss.shards[i]
		base := r.sh.base
		r.scoreFn = func(lid int) float64 {
			return nodeScoreOf(s.View, s.Spec, base+lid, s.beta())
		}
		r.walkFn = r.collect
		r.buckets = make([][]cacheEntry, cores+1)
	}
	q.task = func(i int) { q.runs[i].scan() }
	q.taskF = func(i int) { q.runs[i].scanBucket() }
	q.taskR = func(i int) { q.runs[i].deepen() }
	q.emptyFn = func(i int) bool { return q.cur[i] >= len(q.lists[i]) }
	q.lessFn = func(a, b int) bool {
		return entryLess(q.lists[a][q.cur[a]], q.lists[b][q.cur[b]]) < 0
	}
	q.takeFn = func(i int) bool {
		q.out = append(q.out, int(q.lists[i][q.cur[i]].id))
		q.cur[i]++
		if len(q.out) >= q.n {
			return false
		}
		if q.cur[i] >= len(q.lists[i]) {
			// The list is consumed; if it was truncated below n, the
			// next picks could wrongly skip what it left out. Stop the
			// merge here — every pick so far is final — so the
			// coordinator can deepen this one list and resume.
			if r := &q.runs[i]; r.more && r.bound < q.n {
				q.starved = i
				return false
			}
		}
		return true
	}
}

// findDemandSharded is FindDemand over the sharded kernel. NoGrouping
// queries fan the whole multi-bucket scan out once; grouped queries
// walk buckets in ascending free-core order on the serial coordinator,
// fanning each non-empty bucket's collection over the shards and
// stopping at the first globally adequate one — the flat kernel's
// consulted-bucket set, reproduced exactly, with the per-bucket work
// divided S ways. Equivalence rests on three facts the tests and the
// runtime audit pin:
//
//   - adequacy is preserved: per bucket, sum(min(feasible_s, b_s)) >= n
//     implies sum(feasible_s) >= n for any bounds b_s, and once every
//     truncated shard has been rescanned at bound n the two sides agree
//     exactly (a shard with >= n feasible alone makes the bucket
//     adequate), so the grouped path picks the same tightest bucket;
//   - a merge of per-shard ascending (score, id) prefixes yields the
//     bucket's global first n so long as no consumed prefix was
//     truncated below n — mergeShards rescans and redoes the merge when
//     one was (every global winner is within its own shard's top n, so
//     bound-n prefixes can never starve);
//   - the fallback is only reached when the rescan settled the bucket
//     below n exact candidates, so takeIdlest sees the exact flat
//     candidate multiset and its total order does the rest.
//
// The adaptive bound is the sharding's other half: a shard's expected
// share of the global top n is n/S, so phase one collects only
// ceil(n/S)+1 per shard and the whole bucket costs about n entries of
// walk work across all shards — the flat kernel's own walk length —
// instead of S*n.
//
//sns:hotpath
func (s *Search) findDemandSharded(n int, d core.Demand) []int {
	q := &s.sq
	q.n, q.d = n, d
	minFree := d.Cores
	if minFree < 0 {
		minFree = 0
	}
	q.minFree = minFree
	pool := s.Shards.pool
	if s.NoGrouping {
		pool.Run(len(q.runs), q.task)
		total := 0
		for i := range q.runs {
			total += q.runs[i].total
			q.lists[i] = q.runs[i].flat
		}
		if total < n {
			return nil
		}
		return s.mergeShards(n)
	}
	k0 := (n+len(q.runs)-1)/len(q.runs) + 1
	if k0 > n {
		k0 = n
	}
	for i := range q.runs {
		q.runs[i].flushed = false
	}
	all := s.scratch.pairs[:0]
	for f := minFree; f <= s.Spec.Cores.Int(); f++ {
		// The shard summary consultation: per-shard bucket counters say
		// which shards can host at this free level; an all-empty bucket
		// costs S counter reads and no fan-out at all.
		pop := 0
		for i := range q.runs {
			pop += q.runs[i].sh.idx.Count(f)
		}
		if pop == 0 {
			continue
		}
		q.f, q.k = f, k0
		pool.Run(len(q.runs), q.taskF)
		cnt := 0
		truncated := false
		for i := range q.runs {
			cnt += len(q.runs[i].buckets[f])
			truncated = truncated || q.runs[i].more
		}
		if cnt == 0 {
			continue
		}
		if cnt < n && truncated {
			// Inconclusive: the bounded counts understate the bucket.
			// Rescan the truncated shards at bound n — after that,
			// cnt >= n exactly when the true feasible count is >= n.
			q.k = n
			pool.Run(len(q.runs), q.taskR)
			cnt = 0
			for i := range q.runs {
				cnt += len(q.runs[i].buckets[f])
			}
		}
		if cnt >= n {
			// The tightest adequate idle-core group: merge its per-shard
			// prefixes and stop — higher buckets are never consulted,
			// exactly like the flat walk's early return.
			for i := range q.runs {
				q.lists[i] = q.runs[i].buckets[f]
			}
			s.scratch.pairs = all
			return s.mergeShards(n)
		}
		// cnt < n after the rescan settles the counts: no shard holds a
		// truncated list (a bound-n truncation would have pushed cnt to
		// n), so these are the bucket's exact feasible candidates.
		for i := range q.runs {
			for _, e := range q.runs[i].buckets[f] {
				//lint:allocfree fallback accumulator reuses s.scratch.pairs backing after warm-up
				all = append(all, scoredNode{id: int(e.id), score: e.score})
			}
		}
	}
	s.scratch.pairs = all
	if len(all) < n {
		return nil
	}
	return s.takeIdlest(all, n)
}

// mergeShards k-way merges the per-shard lists staged in sq.lists by
// the (score, id) total order and returns the first n global ids. The
// cursor probes are prebuilt in UseShards; ties cannot occur (shard
// ranges are disjoint, so (score, id) keys are distinct across lists).
//
// Starvation protocol: a pick beyond a shard's adaptive bound is only
// reachable after every bounded entry of that shard was consumed, so
// takeFn stops the merge the moment it drains a list truncated below
// n. Every pick made before that stop is final — all other lists still
// held their heads as witnesses — so the coordinator just deepens the
// one starved list (a resumed walk, doubling its bound) and re-enters
// the merge with all cursors and the output intact. Nothing is ever
// re-merged or re-walked; the doubling bounds the number of re-entries
// per shard at log2(n), and the common query never stops at all — the
// +1 slack in k0 absorbs the typical one-over shard.
//
//sns:hotpath
func (s *Search) mergeShards(n int) []int {
	q := &s.sq
	for i := range q.cur {
		q.cur[i] = 0
	}
	q.out = q.out[:0]
	for {
		q.starved = -1
		par.Merge(len(q.lists), q.emptyFn, q.lessFn, q.takeFn)
		i := q.starved
		if len(q.out) >= n || i < 0 {
			break
		}
		r := &q.runs[i]
		q.k = 2 * r.bound
		if q.k > n {
			q.k = n
		}
		r.deepen()
		q.lists[i] = r.buckets[q.f]
	}
	//lint:allocfree result slice is the caller's product, not reusable scratch
	out := make([]int, len(q.out))
	copy(out, q.out)
	return out
}

// fits checks the non-core demand dimensions (cores are pre-filtered by
// the index bucket). Each dimension binds only when requested (> 0).
//
//sns:hotpath
func (s *Search) fits(id int, d core.Demand) bool {
	if d.Ways > 0 && s.View.FreeWays(id) < d.Ways {
		return false
	}
	if d.BW > 0 && s.View.FreeBW(id) < d.BW {
		return false
	}
	if d.MemGB > 0 && s.View.FreeMem(id) < d.MemGB {
		return false
	}
	if d.IOBW > 0 && s.View.FreeIO(id) < d.IOBW {
		return false
	}
	return true
}

// score is the SNS node-selection metric Co + Bo + beta*Wo, built from
// the occupied fractions of cores, bandwidth, and LLC ways. Lower is
// idler. The expression shape matches the cluster bookkeeping's original
// so readings are bit-identical.
//
//sns:hotpath
func (s *Search) score(id int, beta float64) float64 {
	return nodeScoreOf(s.View, s.Spec, id, beta)
}

// nodeScoreOf is the one canonical spelling of the score expression,
// shared by the live search, the cache flush, and the cache audit — a
// single compiled expression is what makes cached and recomputed floats
// bit-identical.
//
//sns:hotpath
func nodeScoreOf(view NodeView, spec hw.NodeSpec, id int, beta float64) float64 {
	co := float64(view.UsedCores(id)) / spec.Cores.Float64()
	bo := view.AllocBW(id).Float64() / spec.PeakBandwidth.Float64()
	wo := view.AllocWays(id).Float64() / spec.LLCWays.Float64()
	return co + bo + beta*wo
}

// selectIdlest returns up to n node ids from candidates with the lowest
// score, ties broken by id. The (score, id) order is total, so the
// result does not depend on candidate order — which lets the selection
// run as a bounded max-heap (worst-of-the-best at the root) in
// O(C log n) instead of sorting all C candidates. Large-cluster
// placement passes hit this with C in the tens of thousands and n of a
// few dozen, where the full sort dominated replay time.
//
//sns:hotpath
func (s *Search) selectIdlest(candidates []int, n int) []int {
	beta := s.beta()
	// after reports a ranking after b in the ascending (score, id) order.
	after := func(a, b scoredNode) bool {
		//lint:floateq exact tie detection so the (score, id) order stays total
		if a.score != b.score {
			return a.score > b.score
		}
		return a.id > b.id
	}
	h := s.scratch.heap[:0]
	siftDown := func(i int) {
		for {
			l := 2*i + 1
			if l >= len(h) {
				return
			}
			m := l
			if r := l + 1; r < len(h) && after(h[r], h[l]) {
				m = r
			}
			if !after(h[m], h[i]) {
				return
			}
			h[i], h[m] = h[m], h[i]
			i = m
		}
	}
	if n >= len(candidates) {
		// Everything is selected; only the order is left to establish.
		// Build the heap in one Floyd pass and fall through to the
		// drain — a plain heapsort.
		for _, id := range candidates {
			//lint:allocfree heap scratch reuses s.scratch.heap backing array after warm-up
			h = append(h, scoredNode{id: id, score: s.score(id, beta)})
		}
		for i := len(h)/2 - 1; i >= 0; i-- {
			siftDown(i)
		}
	} else {
		for _, id := range candidates {
			c := scoredNode{id: id, score: s.score(id, beta)}
			if len(h) < n {
				//lint:allocfree heap scratch reuses s.scratch.heap backing array after warm-up
				h = append(h, c)
				for i := len(h) - 1; i > 0; {
					p := (i - 1) / 2
					if !after(h[i], h[p]) {
						break
					}
					h[i], h[p] = h[p], h[i]
					i = p
				}
			} else if after(h[0], c) {
				h[0] = c
				siftDown(0)
			}
		}
	}
	s.scratch.heap = h
	// Drain the heap: each pop yields the worst remaining pick, so
	// filling the result back to front leaves it in ascending
	// (score, id) order without a comparison-sort pass.
	//lint:allocfree result slice is the caller's product, not reusable scratch
	out := make([]int, len(h))
	for len(h) > 0 {
		last := len(h) - 1
		out[last] = h[0].id
		h[0] = h[last]
		h = h[:last]
		siftDown(0)
	}
	return out
}

// placeTwoSlot places a job into static half-node slots: the job takes
// ceil(procs/halfCores) slots, at most one intensive job per node, no
// scaling and no cache partitioning (the related-work contrast of
// Section 7).
func (s *Search) placeTwoSlot(req Request) *Plan {
	procs := req.Procs
	if procs <= 0 {
		procs = req.CoresPerNode * req.BaseNodes
	}
	half := s.Spec.Cores.Int() / 2
	if half <= 0 || procs <= 0 {
		return nil
	}
	slots := (procs + half - 1) / half
	memPerSlot := float64(half) * req.MemGBPerProc
	candidates := s.scratch.slots[:0]
	for id := 0; id < s.Nodes; id++ {
		freeCores := s.Idx.Free(id)
		if freeCores < half {
			continue
		}
		freeMem := s.View.FreeMem(id)
		if freeMem < memPerSlot {
			continue
		}
		if req.Intensive && s.HasIntensive != nil && s.HasIntensive(id) {
			continue
		}
		// A node offers one or two slots; count it once per free half.
		free := freeCores / half
		if memPerSlot > 0 {
			if byMem := int(freeMem / memPerSlot); byMem < free {
				free = byMem
			}
		}
		if req.Intensive && free > 1 && slots <= s.Nodes {
			// At most one intensive slot per node — except for a job
			// needing more slots than the cluster has nodes, which can
			// never spread that wide and pairs with nobody when it
			// fills both halves of its own node.
			free = 1
		}
		for k := 0; k < free && len(candidates) < slots; k++ {
			candidates = append(candidates, id)
		}
		if len(candidates) == slots {
			break
		}
	}
	s.scratch.slots = candidates
	if len(candidates) < slots {
		return nil
	}
	// Merge repeated node ids into per-node core counts. The scan above
	// emits candidates in ascending id order with a node's slots
	// adjacent, so one run-length pass replaces the per-call map+order
	// merge; the Plan slices stay fresh allocations because callers
	// retain them past this Search call.
	nodes := make([]int, 0, len(candidates))
	cores := make([]int, 0, len(candidates))
	remaining := procs
	for i := 0; i < len(candidates); {
		id := candidates[i]
		take := 0
		for ; i < len(candidates) && candidates[i] == id; i++ {
			take += half
		}
		if take > remaining {
			take = remaining
		}
		nodes = append(nodes, id)
		cores = append(cores, take)
		remaining -= take
	}
	if remaining > 0 {
		return nil
	}
	if !req.runnable(len(nodes)) {
		return nil
	}
	return &Plan{Nodes: nodes, Cores: cores, K: 1}
}
