package placement

import (
	"slices"
	"sort"

	"spreadnshare/internal/core"
	"spreadnshare/internal/hw"
	"spreadnshare/internal/profiler"
	"spreadnshare/internal/units"
)

// Request describes one job to place, independent of which layer submits
// it. Two shapes exist:
//
//   - process-based (Procs > 0): the testbed scheduler's shape. Per-node
//     core counts come from EvenSplit over the chosen footprint, and the
//     program's MultiNode/PowerOf2 constraints gate each scale.
//   - footprint-based (Procs == 0): the trace replay's shape. The trace
//     records a node count (BaseNodes) and a per-node slice width
//     (CoresPerNode); scaled footprints divide that work uniformly.
type Request struct {
	// Procs is the total process count (0 for footprint-based requests).
	Procs int
	// BaseNodes is the minimum node footprint at scale factor 1.
	BaseNodes int
	// CoresPerNode is the per-node process count of a footprint-based
	// request at scale 1 (ignored when Procs > 0).
	CoresPerNode int
	// MemGBPerProc is the per-process main-memory demand (0 = unaccounted).
	MemGBPerProc float64
	// Alpha is the SNS slowdown threshold for demand estimation.
	Alpha float64
	// MultiNode and PowerOf2 are the program's spreading constraints
	// (only consulted for process-based requests).
	MultiNode bool
	PowerOf2  bool
	// Intensive marks the job shared-resource intensive for TwoSlot.
	Intensive bool
	// Profile is the program's scale profile; nil makes SNS fall back
	// to CS-style placement (an unprofiled program's first runs).
	Profile *profiler.Profile
}

// runnable reports whether the request may run spread over n nodes.
func (r *Request) runnable(n int) bool {
	if r.Procs <= 0 {
		return true
	}
	return ScaleRunnable(r.Procs, n, r.MultiNode, r.PowerOf2)
}

// coresAt returns the per-node core counts over an n-node footprint.
func (r *Request) coresAt(n int) []int {
	if r.Procs > 0 {
		return EvenSplit(r.Procs, n)
	}
	per := (r.CoresPerNode*r.BaseNodes + n - 1) / n
	cores := make([]int, n)
	for i := range cores {
		cores[i] = per
	}
	return cores
}

// Plan is a policy's placement decision: which nodes, how many cores on
// each, and the uniform way/bandwidth reservations to attach.
type Plan struct {
	Nodes []int
	Cores []int
	// Ways, BW, IOBW are the per-node SNS reservations (zero for the
	// unmanaged-sharing policies).
	Ways units.Ways
	BW   units.GBps
	IOBW units.GBps
	// Exclusive dedicates every placed node.
	Exclusive bool
	// K is the chosen scale factor (1 when the policy never scales).
	K int
}

// ScaleRunnable reports whether a procs-process program may run over n
// nodes given its framework constraints.
func ScaleRunnable(procs, n int, multiNode, powerOf2 bool) bool {
	if n > procs {
		return false
	}
	if !multiNode && n > 1 {
		return false
	}
	if powerOf2 && procs%n != 0 {
		return false
	}
	return true
}

// EvenSplit divides procs over n nodes as evenly as possible, larger
// shares first.
func EvenSplit(procs, n int) []int {
	if n <= 0 || procs <= 0 {
		return nil
	}
	out := make([]int, n)
	base, rem := procs/n, procs%n
	for i := range out {
		out[i] = base
		if i < rem {
			out[i]++
		}
	}
	return out
}

// Search runs the placement policies over one cluster backend. The
// backend supplies capacity reads (View) and the synchronized free-core
// index (Idx); the Search itself is stateless between calls.
//
// Determinism rules (the golden figure digests depend on them):
//
//   - candidates are enumerated bucket-ascending, id-ascending — the
//     index's only order — which reproduces the sort-by-(free, id) and
//     ID-order scans of the linear implementations it replaced;
//   - node scores are read through View with the same expression shape
//     as cluster.Node.Score, so float results are bit-identical;
//   - selectIdlest orders by (score, id), a total order, making the
//     selection independent of candidate enumeration order.
type Search struct {
	View NodeView
	Idx  *CoreIndex
	// Spec is the per-node hardware shape; Nodes the cluster size.
	Spec  hw.NodeSpec
	Nodes int
	// Beta weighs LLC occupancy in the node score (0 = paper default).
	Beta float64
	// MaxScale bounds the scale-factor search.
	MaxScale int
	// NoGrouping disables the idle-core grouping of Section 4.4.
	NoGrouping bool
	// ExclusiveSpread is the spread-without-share ablation: SNS scales
	// to the profiled footprint but keeps nodes dedicated.
	ExclusiveSpread bool
	// HasIntensive reports whether a node already hosts a
	// shared-resource-intensive job (TwoSlot's pairing rule). Only
	// consulted for intensive requests; nil means no node does.
	HasIntensive func(id int) bool
	// Cache, when set, is the incremental score index FindDemand reads
	// instead of rescoring every candidate. The backend must feed the
	// cache's dirty set (Invalidate) on every reservation change; the
	// search flushes pending invalidations before each walk, so results
	// are bit-identical to the from-scratch path.
	Cache *ScoreCache

	// scratch buffers candidate ids and scores across calls. A Search
	// serves one scheduling loop, so reuse is safe; both selection
	// helpers copy their results out before returning.
	scratch struct {
		ids   []int
		slots []int
		heap  []scoredNode
		pairs []scoredNode
	}
}

// scoredNode pairs a candidate with its selection score.
type scoredNode struct {
	id    int
	score float64
}

func (s *Search) beta() float64 {
	if s.Beta == 0 {
		return core.DefaultBeta
	}
	return s.Beta
}

// ScoreBeta returns the effective LLC-occupancy weight scoring uses (the
// configured Beta, or the paper default when unset) — what the runtime
// auditor must recompute cached scores with.
func (s *Search) ScoreBeta() float64 { return s.beta() }

// Place runs one policy's search. It returns nil when the job cannot be
// placed right now.
func (s *Search) Place(p Policy, req Request) *Plan {
	switch p {
	case CE:
		return s.placeCE(req)
	case CS:
		return s.placeCS(req)
	case SNS:
		return s.placeSNS(req)
	case TwoSlot:
		return s.placeTwoSlot(req)
	}
	return nil
}

// Idle returns the n lowest-id fully-free nodes, or nil if fewer exist.
func (s *Search) Idle(n int) []int {
	if n <= 0 || s.Idx.Count(s.Spec.Cores.Int()) < n {
		return nil
	}
	out := make([]int, 0, n)
	s.Idx.Scan(s.Spec.Cores.Int(), func(id int) bool {
		out = append(out, id)
		return len(out) < n
	})
	return out
}

// placeCE packs the job onto the minimum number of fully idle nodes and
// dedicates them.
func (s *Search) placeCE(req Request) *Plan {
	n := req.BaseNodes
	nodes := s.Idle(n)
	if nodes == nil {
		return nil
	}
	return &Plan{Nodes: nodes, Cores: req.coresAt(n), Exclusive: true, K: 1}
}

// placeCS shares nodes by free cores, trying the lowest scale factor
// first and growing the footprint only when compact placement is
// impossible. Candidates are taken fullest-first (tightest bucket first,
// id order within) to keep placement compact.
func (s *Search) placeCS(req Request) *Plan {
	for k := 1; k <= s.MaxScale; k++ {
		n := k * req.BaseNodes
		if n > s.Nodes {
			break
		}
		if !req.runnable(n) {
			continue
		}
		cores := req.coresAt(n)
		mem := float64(cores[0]) * req.MemGBPerProc
		nodes := s.ascendFree(cores[0], n, mem)
		if nodes == nil {
			continue
		}
		return &Plan{Nodes: nodes, Cores: cores, K: k}
	}
	return nil
}

// ascendFree collects n nodes with at least minFree cores and mem GB
// free, fullest buckets first, or nil if fewer qualify.
func (s *Search) ascendFree(minFree, n int, mem float64) []int {
	if n <= 0 {
		return nil
	}
	out := make([]int, 0, n)
	for f := minFree; f <= s.Spec.Cores.Int(); f++ {
		if s.Idx.Count(f) == 0 {
			continue
		}
		stopped := !s.Idx.Scan(f, func(id int) bool {
			if s.View.FreeMem(id) >= mem {
				out = append(out, id)
			}
			return len(out) < n
		})
		if stopped {
			return out
		}
	}
	return nil
}

// placeSNS implements the Figure 11 process: walk the profiled scale
// factors in descending exclusive performance; for each, estimate
// (c, w, b) under the job's alpha and search for nodes; dispatch on the
// first fit. Scaling-class programs chase their fastest profiled
// footprint; neutral and compact programs are spread only passively —
// they stay at their minimum footprint unless resources force a larger
// one (Section 6.1: neutral jobs are "fillers").
func (s *Search) placeSNS(req Request) *Plan {
	prof := req.Profile
	if prof == nil {
		return s.placeCS(req)
	}
	scales := prof.ByPerformance()
	if prof.Class != profiler.Scaling {
		scales = append([]*profiler.ScaleProfile(nil), scales...)
		sort.Slice(scales, func(a, b int) bool { return scales[a].K < scales[b].K })
	}
	for _, sp := range scales {
		if sp.K > s.MaxScale {
			continue
		}
		n := sp.K * req.BaseNodes
		if n > s.Nodes || !req.runnable(n) {
			continue
		}
		if s.ExclusiveSpread {
			idle := s.Idle(n)
			if idle == nil {
				continue
			}
			return &Plan{Nodes: idle, Cores: req.coresAt(n), Exclusive: true, K: sp.K}
		}
		d := core.EstimateDemand(sp, req.Alpha, s.Spec)
		var cores []int
		if req.Procs > 0 {
			cores = EvenSplit(req.Procs, n)
			d.Cores = cores[0]
			d.MemGB = float64(cores[0]) * req.MemGBPerProc
		} else {
			cores = uniform(d.Cores, n)
		}
		nodes := s.FindDemand(n, d)
		if nodes == nil {
			continue
		}
		return &Plan{Nodes: nodes, Cores: cores, Ways: d.Ways, BW: d.BW, IOBW: d.IOBW, K: sp.K}
	}
	return nil
}

func uniform(v, n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = v
	}
	return out
}

// FindDemand searches for n nodes that can each host the demand. Per
// Section 4.4 it first tries to place the job within a single group of
// equally-idle nodes (tightest adequate group first, keeping resource
// consumption even within groups); failing that it falls back to the
// whole cluster. Within the chosen set it returns the n idlest nodes by
// the Co + Bo + beta*Wo score. It returns nil when fewer than n qualify.
//
//sns:hotpath
func (s *Search) FindDemand(n int, d core.Demand) []int {
	if n <= 0 {
		return nil
	}
	if s.Cache != nil {
		return s.findDemandCached(n, d)
	}
	minFree := d.Cores
	if minFree < 0 {
		minFree = 0
	}
	all := s.scratch.ids[:0]
	for f := minFree; f <= s.Spec.Cores.Int(); f++ {
		if s.Idx.Count(f) == 0 {
			continue
		}
		start := len(all)
		//lint:allocfree closure does not escape Scan; the runtime alloc gate verifies stack allocation
		s.Idx.Scan(f, func(id int) bool {
			if s.fits(id, d) {
				all = append(all, id)
			}
			return true
		})
		// An equal-free-cores bucket of feasible nodes is exactly an
		// idle-core group; the first adequate one (ascending free) is
		// the tightest fit.
		if !s.NoGrouping && len(all)-start >= n {
			s.scratch.ids = all
			return s.selectIdlest(all[start:], n)
		}
	}
	s.scratch.ids = all
	if len(all) < n {
		return nil
	}
	return s.selectIdlest(all, n)
}

// findDemandCached is FindDemand over the incremental score cache. The
// control flow mirrors the from-scratch path bucket for bucket; the only
// change is where candidate order and scores come from:
//
//   - grouped path: a bucket walk emits feasible nodes in ascending
//     (score, id) — the very order selectIdlest drains — so the first n
//     feasible nodes ARE the group's n idlest, and the walk stops there
//     instead of rescoring and heap-selecting the whole bucket. The
//     walk finds n feasible nodes exactly when the bucket holds >= n,
//     so the bucket-adequacy decision is unchanged.
//   - fallback path: feasible (score, id) pairs accumulate across
//     buckets and takeIdlest sorts them by the same total order the
//     bounded-heap selection drains in, so the result is identical and
//     independent of candidate enumeration order. Scores come from the
//     cache, where the flush just wrote the bit-identical value the
//     heap would otherwise recompute.
//
//sns:hotpath
func (s *Search) findDemandCached(n int, d core.Demand) []int {
	c := s.Cache
	beta := s.beta()
	//lint:allocfree the rescore closure does not escape flush; the runtime alloc gate verifies stack allocation
	c.flush(s.Idx, func(id int) float64 { return s.score(id, beta) })
	minFree := d.Cores
	if minFree < 0 {
		minFree = 0
	}
	all := s.scratch.pairs[:0]
	for f := minFree; f <= s.Spec.Cores.Int(); f++ {
		if s.Idx.Count(f) == 0 {
			continue
		}
		c.prepare(f, s.Idx)
		start := len(all)
		//lint:allocfree closure does not escape walk; the runtime alloc gate verifies stack allocation
		c.walk(f, s.Idx, func(id int32, sc float64) bool {
			if s.fits(int(id), d) {
				all = append(all, scoredNode{id: int(id), score: sc})
			}
			return s.NoGrouping || len(all)-start < n
		})
		if !s.NoGrouping && len(all)-start >= n {
			s.scratch.pairs = all
			//lint:allocfree result slice is the caller's product, not reusable scratch
			out := make([]int, n)
			for i := range out {
				out[i] = all[start+i].id
			}
			return out
		}
	}
	s.scratch.pairs = all
	if len(all) < n {
		return nil
	}
	return s.takeIdlest(all, n)
}

// takeIdlest is the cached-path fallback selection: sort the feasible
// (score, id) pairs by the selectIdlest total order and keep the first
// n. Sorting scratch in place is safe — the pairs are consumed here.
//
//sns:hotpath
func (s *Search) takeIdlest(pairs []scoredNode, n int) []int {
	//lint:allocfree slices.SortFunc is an in-place pdqsort over scratch; the non-escaping comparator stays on the stack
	slices.SortFunc(pairs, func(a, b scoredNode) int {
		//lint:floateq exact tie detection so the (score, id) order stays total
		if a.score != b.score {
			if a.score < b.score {
				return -1
			}
			return 1
		}
		return a.id - b.id
	})
	//lint:allocfree result slice is the caller's product, not reusable scratch
	out := make([]int, n)
	for i := range out {
		out[i] = pairs[i].id
	}
	return out
}

// fits checks the non-core demand dimensions (cores are pre-filtered by
// the index bucket). Each dimension binds only when requested (> 0).
//
//sns:hotpath
func (s *Search) fits(id int, d core.Demand) bool {
	if d.Ways > 0 && s.View.FreeWays(id) < d.Ways {
		return false
	}
	if d.BW > 0 && s.View.FreeBW(id) < d.BW {
		return false
	}
	if d.MemGB > 0 && s.View.FreeMem(id) < d.MemGB {
		return false
	}
	if d.IOBW > 0 && s.View.FreeIO(id) < d.IOBW {
		return false
	}
	return true
}

// score is the SNS node-selection metric Co + Bo + beta*Wo, built from
// the occupied fractions of cores, bandwidth, and LLC ways. Lower is
// idler. The expression shape matches the cluster bookkeeping's original
// so readings are bit-identical.
//
//sns:hotpath
func (s *Search) score(id int, beta float64) float64 {
	return nodeScoreOf(s.View, s.Spec, id, beta)
}

// nodeScoreOf is the one canonical spelling of the score expression,
// shared by the live search, the cache flush, and the cache audit — a
// single compiled expression is what makes cached and recomputed floats
// bit-identical.
//
//sns:hotpath
func nodeScoreOf(view NodeView, spec hw.NodeSpec, id int, beta float64) float64 {
	co := float64(view.UsedCores(id)) / spec.Cores.Float64()
	bo := view.AllocBW(id).Float64() / spec.PeakBandwidth.Float64()
	wo := view.AllocWays(id).Float64() / spec.LLCWays.Float64()
	return co + bo + beta*wo
}

// selectIdlest returns up to n node ids from candidates with the lowest
// score, ties broken by id. The (score, id) order is total, so the
// result does not depend on candidate order — which lets the selection
// run as a bounded max-heap (worst-of-the-best at the root) in
// O(C log n) instead of sorting all C candidates. Large-cluster
// placement passes hit this with C in the tens of thousands and n of a
// few dozen, where the full sort dominated replay time.
//
//sns:hotpath
func (s *Search) selectIdlest(candidates []int, n int) []int {
	beta := s.beta()
	// after reports a ranking after b in the ascending (score, id) order.
	after := func(a, b scoredNode) bool {
		//lint:floateq exact tie detection so the (score, id) order stays total
		if a.score != b.score {
			return a.score > b.score
		}
		return a.id > b.id
	}
	h := s.scratch.heap[:0]
	siftDown := func(i int) {
		for {
			l := 2*i + 1
			if l >= len(h) {
				return
			}
			m := l
			if r := l + 1; r < len(h) && after(h[r], h[l]) {
				m = r
			}
			if !after(h[m], h[i]) {
				return
			}
			h[i], h[m] = h[m], h[i]
			i = m
		}
	}
	if n >= len(candidates) {
		// Everything is selected; only the order is left to establish.
		// Build the heap in one Floyd pass and fall through to the
		// drain — a plain heapsort.
		for _, id := range candidates {
			//lint:allocfree heap scratch reuses s.scratch.heap backing array after warm-up
			h = append(h, scoredNode{id: id, score: s.score(id, beta)})
		}
		for i := len(h)/2 - 1; i >= 0; i-- {
			siftDown(i)
		}
	} else {
		for _, id := range candidates {
			c := scoredNode{id: id, score: s.score(id, beta)}
			if len(h) < n {
				//lint:allocfree heap scratch reuses s.scratch.heap backing array after warm-up
				h = append(h, c)
				for i := len(h) - 1; i > 0; {
					p := (i - 1) / 2
					if !after(h[i], h[p]) {
						break
					}
					h[i], h[p] = h[p], h[i]
					i = p
				}
			} else if after(h[0], c) {
				h[0] = c
				siftDown(0)
			}
		}
	}
	s.scratch.heap = h
	// Drain the heap: each pop yields the worst remaining pick, so
	// filling the result back to front leaves it in ascending
	// (score, id) order without a comparison-sort pass.
	//lint:allocfree result slice is the caller's product, not reusable scratch
	out := make([]int, len(h))
	for len(h) > 0 {
		last := len(h) - 1
		out[last] = h[0].id
		h[0] = h[last]
		h = h[:last]
		siftDown(0)
	}
	return out
}

// placeTwoSlot places a job into static half-node slots: the job takes
// ceil(procs/halfCores) slots, at most one intensive job per node, no
// scaling and no cache partitioning (the related-work contrast of
// Section 7).
func (s *Search) placeTwoSlot(req Request) *Plan {
	procs := req.Procs
	if procs <= 0 {
		procs = req.CoresPerNode * req.BaseNodes
	}
	half := s.Spec.Cores.Int() / 2
	if half <= 0 || procs <= 0 {
		return nil
	}
	slots := (procs + half - 1) / half
	memPerSlot := float64(half) * req.MemGBPerProc
	candidates := s.scratch.slots[:0]
	for id := 0; id < s.Nodes; id++ {
		freeCores := s.Idx.Free(id)
		if freeCores < half {
			continue
		}
		freeMem := s.View.FreeMem(id)
		if freeMem < memPerSlot {
			continue
		}
		if req.Intensive && s.HasIntensive != nil && s.HasIntensive(id) {
			continue
		}
		// A node offers one or two slots; count it once per free half.
		free := freeCores / half
		if memPerSlot > 0 {
			if byMem := int(freeMem / memPerSlot); byMem < free {
				free = byMem
			}
		}
		if req.Intensive && free > 1 && slots <= s.Nodes {
			// At most one intensive slot per node — except for a job
			// needing more slots than the cluster has nodes, which can
			// never spread that wide and pairs with nobody when it
			// fills both halves of its own node.
			free = 1
		}
		for k := 0; k < free && len(candidates) < slots; k++ {
			candidates = append(candidates, id)
		}
		if len(candidates) == slots {
			break
		}
	}
	s.scratch.slots = candidates
	if len(candidates) < slots {
		return nil
	}
	// Merge repeated node ids into per-node core counts. The scan above
	// emits candidates in ascending id order with a node's slots
	// adjacent, so one run-length pass replaces the per-call map+order
	// merge; the Plan slices stay fresh allocations because callers
	// retain them past this Search call.
	nodes := make([]int, 0, len(candidates))
	cores := make([]int, 0, len(candidates))
	remaining := procs
	for i := 0; i < len(candidates); {
		id := candidates[i]
		take := 0
		for ; i < len(candidates) && candidates[i] == id; i++ {
			take += half
		}
		if take > remaining {
			take = remaining
		}
		nodes = append(nodes, id)
		cores = append(cores, take)
		remaining -= take
	}
	if remaining > 0 {
		return nil
	}
	if !req.runnable(len(nodes)) {
		return nil
	}
	return &Plan{Nodes: nodes, Cores: cores, K: 1}
}
