package placement

import (
	"testing"

	"spreadnshare/internal/core"
	"spreadnshare/internal/hw"
	"spreadnshare/internal/profiler"

	"spreadnshare/internal/units"
)

// newTestSearch builds an 8-node default-hardware cluster backend, the
// same shape as hw.DefaultClusterSpec.
func newTestSearch(nodes int) (*SimState, *Search) {
	spec := hw.DefaultNodeSpec()
	st := NewSimState(spec, nodes)
	s := &Search{
		View: st, Idx: st.Index(), Spec: spec, Nodes: nodes,
		MaxScale: 8, HasIntensive: st.HasIntensive,
	}
	return st, s
}

func reserve(st *SimState, id, cores, ways int, bw, mem float64) {
	st.Reserve(id, Reservation{Cores: cores, Ways: units.WaysOf(ways), BW: units.GBpsOf(bw), MemGB: mem})
}

func TestFindDemandBasic(t *testing.T) {
	_, s := newTestSearch(8)
	got := s.FindDemand(2, core.Demand{Cores: 16, Ways: 4, BW: 30})
	if len(got) != 2 {
		t.Fatalf("FindDemand = %v, want 2 nodes", got)
	}
}

func TestFindDemandInsufficient(t *testing.T) {
	st, s := newTestSearch(8)
	if got := s.FindDemand(9, core.Demand{Cores: 4}); got != nil {
		t.Errorf("FindDemand found %v on an 8-node cluster, want nil", got)
	}
	if got := s.FindDemand(0, core.Demand{Cores: 4}); got != nil {
		t.Errorf("FindDemand(0) = %v, want nil", got)
	}
	// Fill every node's cores.
	for i := 0; i < 8; i++ {
		reserve(st, i, 28, 0, 0, 0)
	}
	if got := s.FindDemand(1, core.Demand{Cores: 1}); got != nil {
		t.Errorf("FindDemand on full cluster = %v, want nil", got)
	}
}

func TestFindDemandRespectsWaysAndBW(t *testing.T) {
	st, s := newTestSearch(8)
	// Node 0: 18 ways taken; node 1: 100 GB/s reserved.
	reserve(st, 0, 2, 18, 0, 0)
	reserve(st, 1, 2, 0, 100, 0)
	got := s.FindDemand(8, core.Demand{Cores: 4, Ways: 4, BW: 30})
	if got != nil {
		t.Errorf("FindDemand = %v, want nil (nodes 0 and 1 infeasible)", got)
	}
	got = s.FindDemand(6, core.Demand{Cores: 4, Ways: 4, BW: 30})
	if len(got) != 6 {
		t.Fatalf("FindDemand = %v, want the 6 clean nodes", got)
	}
	for _, id := range got {
		if id == 0 || id == 1 {
			t.Errorf("FindDemand selected infeasible node %d", id)
		}
	}
}

func TestFindDemandPrefersSingleGroupTightFit(t *testing.T) {
	st, s := newTestSearch(8)
	// Nodes 0,1: 12 cores free (16 used); nodes 2..7 idle. A 2-node
	// 8-core job fits in the tight group; SNS should use it and leave
	// the idle group unfragmented.
	for i := 0; i < 2; i++ {
		reserve(st, i, 16, 4, 20, 0)
	}
	got := s.FindDemand(2, core.Demand{Cores: 8, Ways: 4, BW: 20})
	if len(got) != 2 {
		t.Fatalf("FindDemand = %v, want 2", got)
	}
	for _, id := range got {
		if id != 0 && id != 1 {
			t.Errorf("FindDemand picked idle node %d; want the partially-used group", id)
		}
	}
}

func TestFindDemandFallsBackAcrossGroups(t *testing.T) {
	st, s := newTestSearch(8)
	// Create 4 groups of 2 nodes with distinct idle counts; ask for 5
	// nodes, more than any single group holds.
	uses := []int{0, 0, 4, 4, 8, 8, 12, 12}
	for i, u := range uses {
		if u == 0 {
			continue
		}
		reserve(st, i, u, 0, 0, 0)
	}
	got := s.FindDemand(5, core.Demand{Cores: 8})
	if len(got) != 5 {
		t.Fatalf("FindDemand = %v, want 5 across groups", got)
	}
	// The idlest 5 by score should be picked: the two idle nodes first.
	seen := map[int]bool{}
	for _, id := range got {
		seen[id] = true
	}
	if !seen[0] || !seen[1] {
		t.Errorf("whole-cluster fallback did not pick idlest nodes: %v", got)
	}
}

func TestFindDemandUngrouped(t *testing.T) {
	st, s := newTestSearch(8)
	s.NoGrouping = true
	// Partially fill node 0 so scores differ.
	reserve(st, 0, 20, 8, 0, 0)
	got := s.FindDemand(3, core.Demand{Cores: 4, Ways: 2, BW: 10})
	if len(got) != 3 {
		t.Fatalf("ungrouped FindDemand = %v, want 3 nodes", got)
	}
	for _, id := range got {
		if id == 0 {
			t.Error("ungrouped search picked the loaded node over idle ones")
		}
	}
	if got := s.FindDemand(0, core.Demand{Cores: 4}); got != nil {
		t.Errorf("n=0 returned %v", got)
	}
	if got := s.FindDemand(99, core.Demand{Cores: 4}); got != nil {
		t.Errorf("infeasible count returned %v", got)
	}
	// Memory-infeasible nodes are filtered.
	reserve(st, 1, 2, 0, 0, 120)
	got = s.FindDemand(7, core.Demand{Cores: 4, MemGB: 20})
	if len(got) != 7 {
		t.Fatalf("want 7 memory-feasible nodes, got %v", got)
	}
	for _, id := range got {
		if id == 1 {
			t.Error("memory-full node selected")
		}
	}
}

func TestPlaceCEDedicatesIdleNodes(t *testing.T) {
	st, s := newTestSearch(8)
	pl := s.Place(CE, Request{Procs: 40, BaseNodes: 2, MultiNode: true})
	if pl == nil || len(pl.Nodes) != 2 || !pl.Exclusive || pl.K != 1 {
		t.Fatalf("CE plan = %+v, want 2 exclusive nodes at K=1", pl)
	}
	if pl.Cores[0]+pl.Cores[1] != 40 {
		t.Errorf("CE cores = %v, want EvenSplit of 40", pl.Cores)
	}
	// An exclusive reservation takes the whole node.
	r := st.Reserve(pl.Nodes[0], Reservation{Exclusive: true})
	if r.Cores != 28 || st.Index().Free(pl.Nodes[0]) != 0 {
		t.Errorf("exclusive take = %+v, free = %d", r, st.Index().Free(pl.Nodes[0]))
	}
	// With a node short, CE fails.
	for i := 2; i < 8; i++ {
		reserve(st, i, 1, 0, 0, 0)
	}
	reserve(st, 1, 1, 0, 0, 0)
	if pl := s.Place(CE, Request{Procs: 40, BaseNodes: 2, MultiNode: true}); pl != nil {
		t.Errorf("CE placed on a 1-idle-node cluster: %+v", pl)
	}
}

func TestPlaceCSPrefersCompactAndGrowsFootprint(t *testing.T) {
	st, s := newTestSearch(8)
	// Nodes 0,1 have 16 free cores; the rest are idle. A 16-core job
	// should land on the fullest feasible node (tightest first).
	reserve(st, 0, 12, 0, 0, 0)
	reserve(st, 1, 12, 0, 0, 0)
	pl := s.Place(CS, Request{Procs: 16, BaseNodes: 1, MultiNode: true})
	if pl == nil || len(pl.Nodes) != 1 || pl.Nodes[0] != 0 || pl.K != 1 {
		t.Fatalf("CS plan = %+v, want node 0 at K=1", pl)
	}
	// When no node has 16 free cores, CS doubles the footprint.
	for i := 0; i < 8; i++ {
		st.Reserve(i, Reservation{Cores: 20 - st.UsedCores(i)})
	}
	pl = s.Place(CS, Request{Procs: 16, BaseNodes: 1, MultiNode: true})
	if pl == nil || pl.K != 2 || len(pl.Nodes) != 2 {
		t.Fatalf("CS growth plan = %+v, want K=2 over 2 nodes", pl)
	}
}

// flatProfile builds a profile whose scale K halves the exclusive time
// (perfectly scaling) with flat unit IPC/BW curves.
func flatProfile(ks ...int) *profiler.Profile {
	p := &profiler.Profile{Program: "X", Procs: 16, Class: profiler.Scaling}
	for _, k := range ks {
		ipc := make([]float64, 21)
		bw := make([]float64, 21)
		for w := 1; w <= 20; w++ {
			ipc[w] = 1
			bw[w] = 10
		}
		p.Scales = append(p.Scales, profiler.ScaleProfile{
			K: k, Nodes: k, CoresPerNode: 16 / k, TimeSec: 100 / float64(k),
			IPCByWay: ipc, BWByWay: bw,
		})
	}
	return p
}

func TestPlaceSNSChasesFastestScale(t *testing.T) {
	_, s := newTestSearch(8)
	pl := s.Place(SNS, Request{Procs: 16, BaseNodes: 1, MultiNode: true, Alpha: 0.9,
		Profile: flatProfile(1, 2, 4)})
	if pl == nil || pl.K != 4 || len(pl.Nodes) != 4 {
		t.Fatalf("SNS plan = %+v, want the fastest profiled scale K=4", pl)
	}
	if pl.Ways == 0 || pl.BW == 0 {
		t.Errorf("SNS plan carries no (w, b) reservation: %+v", pl)
	}
}

func TestPlaceSNSNilProfileFallsBackToCS(t *testing.T) {
	_, s := newTestSearch(8)
	pl := s.Place(SNS, Request{Procs: 16, BaseNodes: 1, MultiNode: true})
	if pl == nil || pl.K != 1 || pl.Ways != 0 || pl.Exclusive {
		t.Fatalf("unprofiled SNS plan = %+v, want CS-style", pl)
	}
}

func TestPlaceTwoSlotPairsIntensiveWithNonIntensive(t *testing.T) {
	st, s := newTestSearch(2)
	// First intensive job takes one half-slot of node 0.
	pl := s.Place(TwoSlot, Request{Procs: 14, BaseNodes: 1, MultiNode: true, Intensive: true})
	if pl == nil || len(pl.Nodes) != 1 || pl.Nodes[0] != 0 {
		t.Fatalf("first two-slot plan = %+v", pl)
	}
	st.Reserve(0, Reservation{Cores: 14, Intensive: true})
	// A second intensive job must avoid node 0.
	pl = s.Place(TwoSlot, Request{Procs: 14, BaseNodes: 1, MultiNode: true, Intensive: true})
	if pl == nil || pl.Nodes[0] != 1 {
		t.Fatalf("second intensive plan = %+v, want node 1", pl)
	}
	// A non-intensive job may share node 0.
	pl = s.Place(TwoSlot, Request{Procs: 14, BaseNodes: 1, MultiNode: true})
	if pl == nil || pl.Nodes[0] != 0 {
		t.Fatalf("non-intensive plan = %+v, want node 0's free half", pl)
	}
}
