package placement

import (
	"strings"
	"testing"
)

func TestParsePolicy(t *testing.T) {
	cases := []struct {
		in   string
		want Policy
	}{
		{"CE", CE},
		{"ce", CE},
		{"CS", CS},
		{"cs", CS},
		{"SNS", SNS},
		{"sns", SNS},
		{"Sns", SNS},
		{"TwoSlot", TwoSlot},
		{"TWOSLOT", TwoSlot},
		{"twoslot", TwoSlot},
	}
	for _, c := range cases {
		got, err := ParsePolicy(c.in)
		if err != nil {
			t.Errorf("ParsePolicy(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParsePolicy(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestParsePolicyRejectsUnknown(t *testing.T) {
	for _, in := range []string{"", "spread", "CE ", "SNS2", "two slot", "compact-n-exclusive"} {
		_, err := ParsePolicy(in)
		if err == nil {
			t.Errorf("ParsePolicy(%q) accepted; want error", in)
			continue
		}
		// The error must quote the rejected input so a mistyped CLI
		// flag is self-diagnosing.
		if !strings.Contains(err.Error(), `"`+in+`"`) {
			t.Errorf("ParsePolicy(%q) error %q does not quote the input", in, err)
		}
	}
}
