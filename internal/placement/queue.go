package placement

import "sort"

// Item is one queued job: an opaque id plus the fields the queue
// discipline ranks by.
type Item struct {
	// ID is the caller's job handle.
	ID int
	// Submit is the submission time in seconds.
	Submit float64
	// Priority is the base priority (higher first).
	Priority int
	// Order breaks rank ties (lower first): the submission sequence.
	Order int
}

// Pending is the shared age-based priority queue of both schedulers. A
// job's effective rank is its base priority plus one level per aging
// period waited, so long-delayed submissions climb past fresher
// higher-priority ones; ties go to submission order (FIFO).
//
// Two anti-starvation/backfill disciplines compose:
//
//   - AgeLimitSec > 0: a job that failed to place and has waited past
//     the limit blocks younger jobs from overtaking it in this pass
//     (the testbed scheduler's discipline). NoBackfill blocks at the
//     first failure, making the queue strictly FIFO.
//   - ScanDepth > 0: a pass stops after that many failed placement
//     attempts (the trace replay's bounded backfill depth; 0 =
//     unlimited).
type Pending struct {
	// AgingPeriodSec is the wait that promotes a job one priority
	// level (<= 0: one second, i.e. plain FIFO ranking by wait).
	AgingPeriodSec float64
	// AgeLimitSec is the wait beyond which a stuck job blocks younger
	// jobs (<= 0: never blocks).
	AgeLimitSec float64
	// NoBackfill stops every pass at the first unplaceable job.
	NoBackfill bool
	// ScanDepth bounds failed attempts per pass (<= 0: unlimited).
	ScanDepth int

	items []Item
}

// Push enqueues a job. Order is the caller's submission sequence number,
// used to break rank ties deterministically.
func (q *Pending) Push(id int, submit float64, priority, order int) {
	q.items = append(q.items, Item{ID: id, Submit: submit, Priority: priority, Order: order})
}

// Len returns the number of queued jobs.
func (q *Pending) Len() int { return len(q.items) }

// Each visits every queued item in current queue order. The queue must
// not be mutated during the visit; the invariant auditor uses this to
// check that no job's submission record regresses while it waits.
func (q *Pending) Each(fn func(Item)) {
	for _, it := range q.items {
		fn(it)
	}
}

// First returns the head of the queue as of the last Schedule pass (the
// highest-ranked stuck job), or false when empty.
func (q *Pending) First() (Item, bool) {
	if len(q.items) == 0 {
		return Item{}, false
	}
	return q.items[0], true
}

// Remove deletes the queued job with the given id, preserving the
// relative order of the remaining items. It reports whether the job was
// queued. The live scheduler core's cancel path is the caller; the
// simulators never remove jobs except by placing them.
func (q *Pending) Remove(id int) bool {
	for i := range q.items {
		if q.items[i].ID != id {
			continue
		}
		copy(q.items[i:], q.items[i+1:])
		q.items[len(q.items)-1] = Item{}
		q.items = q.items[:len(q.items)-1]
		return true
	}
	return false
}

// Schedule runs one scheduling pass at time now: rank the queue, then
// offer jobs to try in rank order, removing those it accepts. try must
// return true when the job was placed.
func (q *Pending) Schedule(now float64, try func(id int) bool) {
	period := q.AgingPeriodSec
	if period <= 0 {
		period = 1
	}
	rank := func(it Item) float64 {
		return float64(it.Priority) + (now-it.Submit)/period
	}
	sort.SliceStable(q.items, func(a, b int) bool {
		ra, rb := rank(q.items[a]), rank(q.items[b])
		//lint:floateq exact tie detection between two runs of the same computation
		if ra != rb {
			return ra > rb
		}
		return q.items[a].Order < q.items[b].Order
	})
	kept := q.items[:0]
	failures := 0
	blocked := false
	for _, it := range q.items {
		if blocked || (q.ScanDepth > 0 && failures >= q.ScanDepth) {
			kept = append(kept, it)
			continue
		}
		if try(it.ID) {
			continue
		}
		kept = append(kept, it)
		failures++
		if q.NoBackfill || (q.AgeLimitSec > 0 && now-it.Submit > q.AgeLimitSec) {
			// Strict FIFO, or anti-starvation: nothing younger may
			// overtake.
			blocked = true
		}
	}
	// kept aliases items' prefix; clear the tail so removed jobs do not
	// linger in the backing array.
	for i := len(kept); i < len(q.items); i++ {
		q.items[i] = Item{}
	}
	q.items = kept
}
