package placement

import (
	"fmt"
	"slices"

	"spreadnshare/internal/hw"
)

// cacheEntry is one filed (score, id) key in a bucket's ordered lists.
// Entries are immutable once appended: when a node's score or bucket
// changes, a fresh entry is filed and the old one goes stale in place,
// detected at read time by comparing against the node's live state.
type cacheEntry struct {
	score float64
	id    int32
}

// ScoreCache is the incremental node-score index of the placement
// search: for every node it memoizes the last computed Co + Bo + beta*Wo
// score, and for every free-core bucket it keeps ordered (score, id)
// entries — the exact ascending order selectIdlest emits — so the
// grouped placement path reads its n winners off the front of a bucket
// instead of rescoring and heap-selecting the whole bucket.
//
// Mutations are O(1): backends call Invalidate(id) after every
// reservation change (SimState does it inside Reserve/Release; the
// testbed wires cluster.State.OnChange), which just sets a dirty bit.
// All ordering work happens at search time, where it is amortized over
// the whole dirty batch:
//
//   - flush (top of every cached search): each dirty node is rescored
//     once — however many times it was invalidated since the last
//     search — and a fresh entry is appended to its current bucket's
//     pending adds.
//   - prepare (first touch of a bucket per search): pending adds are
//     sorted and folded into the bucket's small sorted overlay; the
//     overlay consolidates into the big base list only when it outgrows
//     an eighth of it, so a lightly-churned bucket never pays a full
//     rewrite. Stale entries are dropped during every fold, keeping
//     lists near live size without a separate compaction pass.
//   - walk: a two-way merge of base and overlay in ascending
//     (score, id) order, skipping the stale entries that accumulated
//     since the last fold.
//
// Staleness is detected per entry without back-pointers: an entry in
// bucket f is live exactly when the node's current free-core count is
// still f and its memoized score still bit-equals the entry's key. A
// node re-filed under an unchanged (score, bucket) key produces an
// exactly-equal entry adjacent to the old one in merge order, which the
// folds and the walk deduplicate by adjacency.
//
// Node ids are stored as int32 (a 2-billion-node cluster is beyond any
// trace this repository replays); NewScoreCache rejects larger shapes.
type ScoreCache struct {
	score   []float64 // node id -> memoized Co + Bo + beta*Wo
	dirty   []int32   // invalidated node ids awaiting a flush
	isDirty []bool    // node id -> already on the dirty stack

	base    [][]cacheEntry // free cores -> big ordered (score, id) list
	over    [][]cacheEntry // free cores -> small ordered overlay
	adds    [][]cacheEntry // free cores -> unsorted pending entries
	scratch []cacheEntry   // fold scratch, swapped with the rewritten list
}

// NewScoreCache builds the cache for a cluster of the given shape.
// Every node starts dirty, so the first flush populates the bucket
// lists from the live backend — construction itself never reads scores.
func NewScoreCache(nodes, cores int) *ScoreCache {
	if nodes < 0 || cores < 1 || nodes > 1<<31-1 {
		panic(fmt.Sprintf("placement: bad score-cache shape %d nodes / %d cores", nodes, cores))
	}
	c := &ScoreCache{
		score:   make([]float64, nodes),
		dirty:   make([]int32, 0, nodes),
		isDirty: make([]bool, nodes),
		base:    make([][]cacheEntry, cores+1),
		over:    make([][]cacheEntry, cores+1),
		adds:    make([][]cacheEntry, cores+1),
	}
	for id := 0; id < nodes; id++ {
		c.isDirty[id] = true
		c.dirty = append(c.dirty, int32(id))
	}
	return c
}

// Len returns the number of cached nodes.
func (c *ScoreCache) Len() int { return len(c.score) }

// Invalidate marks a node's memoized score stale. Backends must call it
// (directly or via their change hook) after every mutation that can
// move the node's free-core count, allocated ways, or allocated
// bandwidth — a missed call makes searches silently wrong, which is why
// the runtime auditor cross-checks clean entries against the live view.
// Repeated invalidations between searches coalesce into one rescore.
//
//sns:hotpath
func (c *ScoreCache) Invalidate(id int) {
	if c.isDirty[id] {
		return
	}
	c.isDirty[id] = true
	//lint:allocfree dirty stack reuses its len(nodes)-cap backing; each node appears at most once
	c.dirty = append(c.dirty, int32(id))
}

// InvalidateSpan marks every node in ids stale in one call — the
// round-coalesced form of Invalidate that SimState's span mutations
// feed: the change hook fires once per placement round instead of once
// per node. The dirty stack and dedup bits land exactly as the
// per-node Invalidate loop would leave them.
//
//sns:hotpath
func (c *ScoreCache) InvalidateSpan(ids []int) {
	for _, id := range ids {
		if c.isDirty[id] {
			continue
		}
		c.isDirty[id] = true
		//lint:allocfree dirty stack reuses its len(nodes)-cap backing; each node appears at most once
		c.dirty = append(c.dirty, int32(id))
	}
}

// entryLess orders entries by the (score, id) key — the selectIdlest
// total order, which is what makes bucket walks emit candidates in the
// exact sequence the from-scratch selection would.
func entryLess(a, b cacheEntry) int {
	//lint:floateq exact tie detection so the (score, id) order stays total
	if a.score != b.score {
		if a.score < b.score {
			return -1
		}
		return 1
	}
	return int(a.id) - int(b.id)
}

// live reports whether an entry filed under bucket f still describes
// its node: the node's current free-core count is still f and its
// memoized score still bit-equals the entry key. Callers must have
// flushed the dirty set first — a dirty node's memoized score lags the
// backend.
func (c *ScoreCache) live(e cacheEntry, f int, idx *CoreIndex) bool {
	//lint:floateq a rescored node is detected by exact key mismatch; tolerance would resurrect stale entries
	return c.score[e.id] == e.score && idx.Free(int(e.id)) == f
}

// flush folds pending invalidations into the cache: each dirty node is
// rescored once via score (the canonical expression over the live view)
// and refiled under its current free-core bucket as a pending add. The
// node's old entry — wherever it is — goes stale by key mismatch.
// Buckets whose backlog outgrew four times their live population are
// folded eagerly so untouched buckets cannot accumulate unbounded
// garbage.
//
//sns:hotpath
func (c *ScoreCache) flush(idx *CoreIndex, score func(id int) float64) {
	if len(c.dirty) == 0 {
		return
	}
	// Drain the round's whole batch in ascending node-id order: the
	// rescore sequence becomes a canonical function of the dirty SET,
	// independent of the arrival order the round's mutations (serial
	// loops or parallel span tasks) pushed it in, and the backend reads
	// walk the capacity arrays sequentially instead of in plan order.
	//lint:allocfree slices.Sort is an in-place pdqsort over the dirty stack's own backing
	slices.Sort(c.dirty)
	for _, id := range c.dirty {
		//lint:allocfree score is the caller's stack closure over Search.score; the runtime alloc gate verifies the cached search allocates only its results
		s := score(int(id))
		c.score[id] = s
		c.isDirty[id] = false
		f := idx.Free(int(id))
		//lint:allocfree bucket backlogs reach steady-state capacity after the first replay epochs
		c.adds[f] = append(c.adds[f], cacheEntry{score: s, id: id})
	}
	c.dirty = c.dirty[:0]
	for f := range c.adds {
		if len(c.adds[f]) > 0 && len(c.base[f])+len(c.over[f])+len(c.adds[f]) > 4*idx.Count(f)+1024 {
			c.prepare(f, idx)
		}
	}
}

// fold merges two sorted entry lists into the scratch buffer, dropping
// stale entries and adjacent duplicates, and returns the result. The
// caller is responsible for recycling the backing array it replaces
// into c.scratch.
//
//sns:hotpath
func (c *ScoreCache) fold(a, b []cacheEntry, f int, idx *CoreIndex) []cacheEntry {
	out := c.scratch[:0]
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		var e cacheEntry
		if j >= len(b) || (i < len(a) && entryLess(a[i], b[j]) <= 0) {
			e = a[i]
			i++
		} else {
			e = b[j]
			j++
		}
		if !c.live(e, f, idx) {
			continue
		}
		if n := len(out); n > 0 && out[n-1] == e {
			continue
		}
		//lint:allocfree fold scratch reaches steady-state capacity after the first replay epochs
		out = append(out, e)
	}
	return out
}

// prepare makes bucket f's ordered lists current: pending adds are
// sorted and folded into the overlay; the overlay consolidates into the
// base only when it outgrows an eighth of it (a small fold absorbs
// light churn without rewriting a large bucket). After prepare, base
// and overlay together hold every live member of bucket f, in ascending
// (score, id) order each, plus at most the stale leftovers of nodes
// that departed without a subsequent add. Call only with a flushed
// dirty set.
//
//sns:hotpath
func (c *ScoreCache) prepare(f int, idx *CoreIndex) {
	add := c.adds[f]
	if len(add) == 0 {
		return
	}
	//lint:allocfree slices.SortFunc is an in-place pdqsort; the comparator is a top-level func and nothing escapes
	slices.SortFunc(add, entryLess)
	merged := c.fold(c.over[f], add, f, idx)
	c.scratch = c.over[f][:0]
	c.over[f] = merged
	c.adds[f] = add[:0]
	if len(c.over[f]) > 1024 && len(c.over[f])*8 > len(c.base[f]) {
		consolidated := c.fold(c.base[f], c.over[f], f, idx)
		c.scratch = c.base[f][:0]
		c.base[f] = consolidated
		c.over[f] = c.over[f][:0]
	}
}

// walk visits bucket f's live entries in ascending (score, id) order —
// a two-way merge of base and overlay — stopping early when fn returns
// false. Stale entries and adjacent duplicates are skipped in place.
// Call only with a flushed dirty set and a prepared bucket.
//
//sns:hotpath
func (c *ScoreCache) walk(f int, idx *CoreIndex, fn func(id int32, score float64) bool) {
	a, b := c.base[f], c.over[f]
	i, j := 0, 0
	prev := cacheEntry{id: -1}
	for i < len(a) || j < len(b) {
		var e cacheEntry
		if j >= len(b) || (i < len(a) && entryLess(a[i], b[j]) <= 0) {
			e = a[i]
			i++
		} else {
			e = b[j]
			j++
		}
		if e == prev {
			continue
		}
		if !c.live(e, f, idx) {
			continue
		}
		prev = e
		//lint:allocfree fn is the cached search's stack closure; the runtime alloc gate verifies the walk allocates nothing
		if !fn(e.id, e.score) {
			return
		}
	}
}

// searchAfter returns the index of the first entry in the sorted list s
// ordering strictly after key — the resume position for a walk whose
// last emitted entry was key.
//
//sns:hotpath
func searchAfter(s []cacheEntry, key cacheEntry) int {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if entryLess(s[mid], key) <= 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// walkFrom is walk resuming strictly after a previously emitted key:
// both lists are positioned past `after` by binary search, then the
// two-way merge continues as if the original walk had never stopped.
// The sharded kernel's deepening rescans rest on it — a shard that
// collected its bounded prefix and later turns out to need more picks
// up where it left off in O(log bucket) instead of re-walking (and
// re-filtering) the prefix. Valid only while the bucket is unchanged
// since the walk that emitted `after`: same flush, no prepare folds in
// between — which holds within one placement query, the only scope the
// kernel resumes across.
//
//sns:hotpath
func (c *ScoreCache) walkFrom(f int, idx *CoreIndex, after cacheEntry, fn func(id int32, score float64) bool) {
	a, b := c.base[f], c.over[f]
	i := searchAfter(a, after)
	j := searchAfter(b, after)
	prev := after
	for i < len(a) || j < len(b) {
		var e cacheEntry
		if j >= len(b) || (i < len(a) && entryLess(a[i], b[j]) <= 0) {
			e = a[i]
			i++
		} else {
			e = b[j]
			j++
		}
		if e == prev {
			continue
		}
		if !c.live(e, f, idx) {
			continue
		}
		prev = e
		//lint:allocfree fn is the cached search's stack closure; the runtime alloc gate verifies the walk allocates nothing
		if !fn(e.id, e.score) {
			return
		}
	}
}

// Score returns a node's memoized score. Valid only after a flush; the
// cached search reads selection scores through it instead of
// recomputing them per candidate.
func (c *ScoreCache) Score(id int) float64 { return c.score[id] }

// Audit cross-checks the cache against the live backend: every clean
// node's memoized score must bit-equal the canonical expression
// recomputed over the view, every bucket's base and overlay must be
// sorted ascending by (score, id), and every clean node must be
// recoverable from its current bucket's lists or pending adds — the
// walk-visibility guarantee searches rely on. Dirty nodes are exempt
// from the score and membership checks: being stale until the next
// flush is their contract. The runtime invariant auditor and the fuzz
// harness call this between mutations.
func (c *ScoreCache) Audit(view NodeView, idx *CoreIndex, spec hw.NodeSpec, beta float64) error {
	for _, lists := range [2][][]cacheEntry{c.base, c.over} {
		for f, ents := range lists {
			for i := 1; i < len(ents); i++ {
				if entryLess(ents[i-1], ents[i]) > 0 {
					return fmt.Errorf("placement: cache bucket %d out of (score, id) order at entry %d", f, i)
				}
			}
		}
	}
	for id := range c.score {
		if c.isDirty[id] {
			continue
		}
		want := nodeScoreOf(view, spec, id, beta)
		//lint:floateq the cache contract is bit-identical scores, so only exact equality is correct
		if c.score[id] != want {
			return fmt.Errorf("placement: node %d cached score %v, recomputed %v", id, c.score[id], want)
		}
		f := idx.Free(id)
		key := cacheEntry{score: c.score[id], id: int32(id)}
		_, found := slices.BinarySearchFunc(c.base[f], key, entryLess)
		if !found {
			_, found = slices.BinarySearchFunc(c.over[f], key, entryLess)
		}
		if !found {
			for _, e := range c.adds[f] {
				if e == key {
					found = true
					break
				}
			}
		}
		if !found {
			return fmt.Errorf("placement: clean node %d (score %v) missing from bucket %d", id, c.score[id], f)
		}
	}
	return nil
}
