package invariant

import (
	"strings"
	"testing"

	"spreadnshare/internal/app"
	"spreadnshare/internal/cluster"
	"spreadnshare/internal/exec"
	"spreadnshare/internal/hw"
	"spreadnshare/internal/placement"
)

// mustPanic asserts fn dies with an "invariant:" message containing
// substr.
func mustPanic(t *testing.T, substr string, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("no panic; want invariant violation containing %q", substr)
		}
		msg, ok := r.(string)
		if !ok || !strings.HasPrefix(msg, "invariant: ") || !strings.Contains(msg, substr) {
			t.Fatalf("panic %v; want invariant violation containing %q", r, substr)
		}
	}()
	fn()
}

func TestActiveDefaultsOnUnderTest(t *testing.T) {
	if !Active() {
		t.Fatal("Active() false inside a test binary")
	}
	Disable()
	if Active() {
		t.Error("Active() true after Disable")
	}
	Enable()
	if !Active() {
		t.Error("Active() false after Enable")
	}
	mode.Store(0) // restore the default for other tests
}

func TestBeginStride(t *testing.T) {
	a := New("t")
	a.Stride = 4
	hits := 0
	for i := 0; i < 16; i++ {
		if a.Begin() {
			hits++
		}
	}
	if hits != 4 {
		t.Errorf("stride 4 sampled %d of 16 points, want 4", hits)
	}
}

func TestCheckSimStateCleanAndOverReserve(t *testing.T) {
	spec := hw.DefaultNodeSpec()
	s := placement.NewSimState(spec, 4)
	a := New("t")
	res := s.Reserve(1, placement.Reservation{Cores: 4, Ways: 6, BW: 30})
	a.CheckSimState(s) // a legal reservation must pass
	s.Release(1, res)
	a.CheckSimState(s)

	// Over-reserving ways drives the free counter negative: the class
	// of bug the search's feasibility checks exist to prevent.
	s.Reserve(2, placement.Reservation{Cores: 1, Ways: spec.LLCWays + 3})
	mustPanic(t, "free ways", func() { a.CheckSimState(s) })
}

func TestCheckSimStateCatchesBandwidthLeak(t *testing.T) {
	spec := hw.DefaultNodeSpec()
	s := placement.NewSimState(spec, 2)
	a := New("t")
	// Releasing a reservation that was never taken inflates free
	// bandwidth beyond the node's peak.
	s.Release(0, placement.Reservation{BW: 10})
	mustPanic(t, "free bandwidth", func() { a.CheckSimState(s) })
}

func TestCheckIndexAgreement(t *testing.T) {
	spec := hw.DefaultClusterSpec()
	cl, err := cluster.New(spec)
	if err != nil {
		t.Fatal(err)
	}
	idx := placement.NewCoreIndex(spec.Nodes, spec.Node.Cores.Int())
	a := New("t")
	a.CheckIndex(idx)
	a.CheckIndexAgainstCluster(idx, cl)

	// An allocation without the matching index update is exactly the
	// stale-index bug syncIndex exists to prevent.
	if err := cl.Allocate(7, []cluster.NodeAlloc{{Node: 0, Cores: 4}}, 0, 0, false); err != nil {
		t.Fatal(err)
	}
	mustPanic(t, "free cores", func() { a.CheckIndexAgainstCluster(idx, cl) })
}

func TestCheckClusterClean(t *testing.T) {
	spec := hw.DefaultClusterSpec()
	cl, err := cluster.New(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Allocate(1, []cluster.NodeAlloc{{Node: 0, Cores: 8, MemGB: 16}}, 4, 20, false); err != nil {
		t.Fatal(err)
	}
	if err := cl.Allocate(2, []cluster.NodeAlloc{{Node: 0, Cores: 4}, {Node: 1, Cores: 4}}, 0, 0, false); err != nil {
		t.Fatal(err)
	}
	New("t").CheckCluster(cl)
}

// engineWithJob builds a one-job engine for the engine checks.
func engineWithJob(t *testing.T) *exec.Engine {
	t.Helper()
	e, err := exec.New(hw.DefaultClusterSpec())
	if err != nil {
		t.Fatal(err)
	}
	cat, err := app.NewCatalog(hw.DefaultNodeSpec())
	if err != nil {
		t.Fatal(err)
	}
	prog, err := cat.Lookup("MG")
	if err != nil {
		t.Fatal(err)
	}
	j := &exec.Job{
		ID: 1, Prog: prog, Procs: 4, Alpha: 0.9,
		Nodes: []int{0}, CoresByNode: []int{4}, Ways: 4,
	}
	if err := e.Launch(j); err != nil {
		t.Fatal(err)
	}
	return e
}

func TestCheckEngineClean(t *testing.T) {
	New("t").CheckEngine(engineWithJob(t))
}

func TestCheckEngineAgainstClusterCatchesDrift(t *testing.T) {
	e := engineWithJob(t)
	cl, err := cluster.New(e.Spec())
	if err != nil {
		t.Fatal(err)
	}
	// The engine runs a job the bookkeeping knows nothing about.
	mustPanic(t, "bookkeeping reserves", func() { New("t").CheckEngineAgainstCluster(e, cl) })
}

func TestObserveQueueCatchesClockRegression(t *testing.T) {
	a := New("t")
	q := &placement.Pending{}
	a.ObserveQueue(10, q)
	mustPanic(t, "clock ran backwards", func() { a.ObserveQueue(5, q) })
}

func TestObserveQueueCatchesRecordChange(t *testing.T) {
	a := New("t")
	q := &placement.Pending{}
	q.Push(1, 5, 0, 1)
	a.ObserveQueue(6, q)

	// The same job reappears with a rewritten submission time — its
	// age just regressed.
	q2 := &placement.Pending{}
	q2.Push(1, 6, 0, 1)
	mustPanic(t, "queue record changed", func() { a.ObserveQueue(7, q2) })
}

func TestObserveQueueCatchesFutureSubmit(t *testing.T) {
	a := New("t")
	q := &placement.Pending{}
	q.Push(3, 100, 0, 3)
	mustPanic(t, "in the future", func() { a.ObserveQueue(50, q) })
}
