// Package invariant is the runtime half of the determinism-and-safety
// contract that internal/lint checks statically: an auditor that
// attaches to the execution engine, the cluster bookkeeping, and the
// placement kernel's SimState, and asserts resource conservation at
// every event.
//
// The auditor is read-only — it never mutates the state it checks, so
// golden digests stay bit-identical with auditing on or off. It panics
// on the first violation with an "invariant:" message: a broken
// conservation law means simulation results are garbage, and failing
// loudly at the first bad event beats debugging a corrupted digest.
//
// Activation: the auditor is on inside `go test` binaries by default
// (every hook checks Active) and off in production binaries unless the
// operator passes -invariants to snsbench/tracegen, which calls Enable.
// CheckEngine is allocation-free so the engine's zero-allocation
// recompute guarantee (exec/alloc_test.go) holds with auditing on.
package invariant

import (
	"fmt"
	"sync/atomic"
	"testing"

	"spreadnshare/internal/cluster"
	"spreadnshare/internal/exec"
	"spreadnshare/internal/placement"
	"spreadnshare/internal/units"
)

// mode is the activation override: 0 = default (on under `go test`),
// 1 = forced on, 2 = forced off. Atomic because experiment harnesses
// run one scheduler per goroutine.
var mode atomic.Int32

// Active reports whether auditors should attach. Defaults to true
// inside test binaries, false elsewhere; Enable/Disable override.
func Active() bool {
	switch mode.Load() {
	case 1:
		return true
	case 2:
		return false
	}
	return testing.Testing()
}

// Enable forces auditing on (the -invariants flag of snsbench/tracegen).
func Enable() { mode.Store(1) }

// Disable forces auditing off (benchmark harnesses that must measure
// the unaudited hot path).
func Disable() { mode.Store(2) }

// Pause disables auditing and returns a restore function, for
// benchmarks inside test binaries: defer Pause()().
func Pause() func() {
	prev := mode.Swap(2)
	return func() { mode.Store(prev) }
}

// Auditor checks one simulation's state against the conservation laws.
// One auditor serves one simulation (it is not goroutine-safe; parallel
// sequences each get their own, like the engines they watch).
type Auditor struct {
	// Name prefixes violation messages ("sched", "trace").
	Name string
	// Eps is the float-accumulation tolerance for bandwidth, memory,
	// and I/O sums (default 1e-6).
	Eps float64
	// Stride samples every Stride-th audit point when > 1, bounding
	// audit cost on large clusters (32K-node replays). Monotonicity
	// checks still run at every point — they are O(1).
	Stride int

	tick    int
	lastNow float64
	queued  map[int]placement.Item // job id -> first-seen queue record
}

// New returns an auditor with default tolerances.
func New(name string) *Auditor {
	return &Auditor{Name: name, Eps: 1e-6, Stride: 1, queued: map[int]placement.Item{}}
}

// failf panics with the violation. Formatting allocates, but only on
// the failure path, where the process is about to die anyway.
func (a *Auditor) failf(format string, args ...any) {
	panic("invariant: " + a.Name + ": " + fmt.Sprintf(format, args...))
}

// Begin advances the audit-point counter and reports whether this point
// is sampled. Call it once per scheduling event before the O(nodes)
// checks.
func (a *Auditor) Begin() bool {
	a.tick++
	return a.Stride <= 1 || a.tick%a.Stride == 0
}

// CheckEngine asserts per-node conservation on the execution engine:
// active cores and CAT ways within the node's capacity, achieved
// bandwidth within the roofline for the active core count, and the
// resident lists in strict job-ID order. It is allocation-free so the
// engine can run it after every recompute without breaking the
// zero-allocation guarantee of the hot path.
func (a *Auditor) CheckEngine(e *exec.Engine) {
	spec := e.Spec()
	for n := 0; n < spec.Nodes; n++ {
		c := e.NodeActiveCores(n)
		if c < 0 || c > spec.Node.Cores.Int() {
			a.failf("node %d holds %d active cores, capacity %d", n, c, spec.Node.Cores)
		}
		w := e.NodeAllocWays(n)
		if w < 0 || w > spec.Node.LLCWays {
			a.failf("node %d holds %d allocated ways, capacity %d", n, w, spec.Node.LLCWays)
		}
		bw := e.NodeBandwidth(n).Float64()
		roof := spec.Node.StreamBandwidth(units.CoresOf(c)).Float64()
		if bw < -a.Eps || bw > roof+a.Eps {
			a.failf("node %d bandwidth %g GB/s outside [0, %g]", n, bw, roof)
		}
		if !e.NodeResidentsConsistent(n) {
			a.failf("node %d resident list broken (ID order, cores, or slot back-pointers)", n)
		}
	}
}

// CheckCluster asserts the cluster bookkeeping's conservation laws:
// every aggregate within the node's capacity, the cached integer
// aggregates equal to the sum over the allocation list, the list in
// strict job-ID order, and exclusive nodes held by exactly one job.
func (a *Auditor) CheckCluster(cl *cluster.State) {
	spec := cl.Spec.Node
	for _, n := range cl.Nodes {
		used := n.UsedCores()
		if used < 0 || used > spec.Cores.Int() {
			a.failf("node %d uses %d cores, capacity %d", n.ID, used, spec.Cores)
		}
		if w := n.AllocWays(); w < 0 || w > spec.LLCWays {
			a.failf("node %d allocates %d ways, capacity %d", n.ID, w, spec.LLCWays)
		}
		if bw := n.AllocBW().Float64(); bw < -a.Eps || bw > spec.PeakBandwidth.Float64()+a.Eps {
			a.failf("node %d reserves %g GB/s bandwidth, peak %g", n.ID, bw, spec.PeakBandwidth)
		}
		if m := n.AllocMem(); m < -a.Eps || m > spec.MemoryGB+a.Eps {
			a.failf("node %d reserves %g GB memory, capacity %g", n.ID, m, spec.MemoryGB)
		}
		if io := n.AllocIO().Float64(); io < -a.Eps || io > spec.IOBandwidth.Float64()+a.Eps {
			a.failf("node %d reserves %g GB/s I/O, capacity %g", n.ID, io, spec.IOBandwidth)
		}
		jobs := n.Jobs()
		if n.Exclusive() && len(jobs) != 1 {
			a.failf("node %d is exclusive but hosts %d jobs", n.ID, len(jobs))
		}
		cores, prev := 0, -1
		ways := units.Ways(0)
		for _, id := range jobs {
			if id <= prev {
				a.failf("node %d allocation list out of job-ID order at job %d", n.ID, id)
			}
			prev = id
			al, ok := n.Alloc(id)
			if !ok {
				a.failf("node %d lists job %d without a reservation", n.ID, id)
			}
			cores += al.Cores
			ways += al.Ways
		}
		if cores != used {
			a.failf("node %d cached core count %d, allocations sum to %d", n.ID, used, cores)
		}
		if ways != n.AllocWays() {
			a.failf("node %d cached way count %d, allocations sum to %d", n.ID, n.AllocWays(), ways)
		}
	}
}

// CheckIndex asserts the free-core index's internal consistency: bucket
// populations match their counters, sum to the node count, and every
// bucketed node reports the bucket's free-core count.
func (a *Auditor) CheckIndex(x *placement.CoreIndex) {
	total := 0
	for f := 0; f <= x.Cores(); f++ {
		total += x.Count(f)
		pop := 0
		x.Scan(f, func(id int) bool {
			pop++
			if x.Free(id) != f {
				a.failf("index bucket %d holds node %d whose free count is %d", f, id, x.Free(id))
			}
			return true
		})
		if pop != x.Count(f) {
			a.failf("index bucket %d population %d, counter says %d", f, pop, x.Count(f))
		}
	}
	if total != x.Len() {
		a.failf("index counters sum to %d nodes, cluster has %d", total, x.Len())
	}
}

// CheckIndexAgainstCluster asserts the resident-set/CoreIndex agreement
// the scheduler's syncIndex maintains: every node's indexed free-core
// count equals the bookkeeping's.
func (a *Auditor) CheckIndexAgainstCluster(x *placement.CoreIndex, cl *cluster.State) {
	for _, n := range cl.Nodes {
		if x.Free(n.ID) != n.FreeCores() {
			a.failf("index says node %d has %d free cores, bookkeeping says %d",
				n.ID, x.Free(n.ID), n.FreeCores())
		}
	}
}

// CheckEngineAgainstCluster asserts that the engine's resident set and
// the scheduler's bookkeeping agree on every node's occupied cores.
// Valid at scheduling points only: inside a job-finish event the engine
// drops residents before the bookkeeping releases, transiently
// disagreeing by design.
func (a *Auditor) CheckEngineAgainstCluster(e *exec.Engine, cl *cluster.State) {
	for _, n := range cl.Nodes {
		if got, want := e.NodeActiveCores(n.ID), n.UsedCores(); got != want {
			a.failf("engine runs %d cores on node %d, bookkeeping reserves %d", got, n.ID, want)
		}
	}
}

// CheckSimState asserts the trace backend's conservation laws: every
// free counter within [0, capacity] (a negative free counter means the
// search over-reserved), the intensive-job counts non-negative, and the
// core index internally consistent.
func (a *Auditor) CheckSimState(s *placement.SimState) {
	spec := s.Spec()
	for id := 0; id < s.Len(); id++ {
		if w := s.FreeWays(id); w < 0 || w > spec.LLCWays {
			a.failf("node %d has %d free ways outside [0, %d]", id, w, spec.LLCWays)
		}
		if bw := s.FreeBW(id).Float64(); bw < -a.Eps || bw > spec.PeakBandwidth.Float64()+a.Eps {
			a.failf("node %d has %g GB/s free bandwidth outside [0, %g]", id, bw, spec.PeakBandwidth)
		}
		if m := s.FreeMem(id); m < -a.Eps || m > spec.MemoryGB+a.Eps {
			a.failf("node %d has %g GB free memory outside [0, %g]", id, m, spec.MemoryGB)
		}
		if io := s.FreeIO(id).Float64(); io < -a.Eps || io > spec.IOBandwidth.Float64()+a.Eps {
			a.failf("node %d has %g GB/s free I/O outside [0, %g]", id, io, spec.IOBandwidth)
		}
		if s.IntensiveCount(id) < 0 {
			a.failf("node %d has negative intensive-job count %d", id, s.IntensiveCount(id))
		}
	}
	a.CheckIndex(s.Index())
}

// CheckScoreCache verifies a search's score cache against the live
// backend it indexes: clean nodes filed under their current free-core
// bucket with bit-identical cached scores, treaps emitting strict
// ascending (score, id) order, and treap membership covering every
// flushed node. A search without a cache passes vacuously.
func (a *Auditor) CheckScoreCache(s *placement.Search) {
	if s == nil || s.Cache == nil {
		return
	}
	if err := s.Cache.Audit(s.View, s.Idx, s.Spec, s.ScoreBeta()); err != nil {
		a.failf("%v", err)
	}
}

// CheckShardedIndex verifies a search's sharded kernel against the flat
// bookkeeping it mirrors: every per-shard free-core index internally
// consistent, the ranges tiling the cluster, per-node and per-bucket
// agreement with the global index, and every per-shard score cache
// bit-identical to a fresh rescore. A search without shards passes
// vacuously.
func (a *Auditor) CheckShardedIndex(s *placement.Search) {
	if s == nil || s.Shards == nil {
		return
	}
	ss := s.Shards
	for i := 0; i < ss.NumShards(); i++ {
		a.CheckIndex(ss.Index(i))
	}
	if err := ss.Audit(s.View, s.Idx, s.Spec, s.ScoreBeta()); err != nil {
		a.failf("%v", err)
	}
}

// ObserveQueue asserts the pending queue's aging laws at an event: the
// clock never runs backwards, and a waiting job's submission record
// never changes — together, no queued job's age ever regresses. Runs at
// every audit point regardless of Stride (it is O(queue), not O(nodes),
// and monotonicity cannot be sampled).
func (a *Auditor) ObserveQueue(now float64, q *placement.Pending) {
	if now < a.lastNow {
		a.failf("scheduling clock ran backwards: %g after %g", now, a.lastNow)
	}
	a.lastNow = now
	q.Each(func(it placement.Item) {
		if it.Submit > now+a.Eps {
			a.failf("job %d queued with submit time %g in the future of %g", it.ID, it.Submit, now)
		}
		rec, seen := a.queued[it.ID]
		if !seen {
			a.queued[it.ID] = it
			return
		}
		if rec.Submit != it.Submit || rec.Priority != it.Priority || rec.Order != it.Order {
			a.failf("job %d queue record changed while waiting: had submit=%g pri=%d order=%d, now submit=%g pri=%d order=%d",
				it.ID, rec.Submit, rec.Priority, rec.Order, it.Submit, it.Priority, it.Order)
		}
	})
}
