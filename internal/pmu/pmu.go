// Package pmu defines the simulated performance-monitoring-unit readings
// the execution engine produces and the Kunafa profiler consumes. The
// quantities mirror the hardware events Uberun samples on real nodes:
// Instructions Retired and Unhalted Core Cycles for IPC, and Home-Agent
// REQUESTS for memory bandwidth (Section 5.1 of the paper).
package pmu

// Counters accumulate over a job's lifetime (or a sampling window, by
// differencing two snapshots). Instruction and cycle counts are in units
// of 1e9 (giga); traffic is in GB.
type Counters struct {
	// Instructions retired across all the job's cores.
	Instructions float64
	// Cycles elapsed across all the job's cores (cores stall but keep
	// cycling while memory-throttled, exactly as real counters read).
	Cycles float64
	// TrafficGB is memory traffic attributed to the job, summed over
	// nodes.
	TrafficGB float64
	// CommSeconds is wall time attributed to inter-node communication.
	CommSeconds float64
	// Elapsed is wall-clock seconds the job has been running.
	Elapsed float64
}

// Sub returns the window c - prev, for differencing two snapshots.
func (c Counters) Sub(prev Counters) Counters {
	return Counters{
		Instructions: c.Instructions - prev.Instructions,
		Cycles:       c.Cycles - prev.Cycles,
		TrafficGB:    c.TrafficGB - prev.TrafficGB,
		CommSeconds:  c.CommSeconds - prev.CommSeconds,
		Elapsed:      c.Elapsed - prev.Elapsed,
	}
}

// IPC returns instructions per cycle over the window, zero if no cycles.
func (c Counters) IPC() float64 {
	if c.Cycles <= 0 {
		return 0
	}
	return c.Instructions / c.Cycles
}

// Bandwidth returns the average memory bandwidth over the window in GB/s.
func (c Counters) Bandwidth() float64 {
	if c.Elapsed <= 0 {
		return 0
	}
	return c.TrafficGB / c.Elapsed
}

// Metrics is an instantaneous reading of one running job, the quantity a
// 5-second fixed-allocation profiling episode observes.
type Metrics struct {
	// IPC is per-core instructions per cycle, including throttling
	// stalls.
	IPC float64
	// BWPerNode is achieved memory bandwidth per occupied node, GB/s.
	BWPerNode float64
	// BWTotal is achieved bandwidth summed over the job's nodes.
	BWTotal float64
	// IOPerNode is achieved parallel-file-system bandwidth per node,
	// GB/s.
	IOPerNode float64
	// MissPct is the LLC miss rate in percent.
	MissPct float64
	// ComputeFrac is the fraction of wall time in computation (the
	// rest is inter-node communication), as an mpiP-style breakdown.
	ComputeFrac float64
	// EffectiveWays is the cache allocation driving the reading, in
	// reference-concurrency terms (exposed for tests; real PMUs do
	// not report it).
	EffectiveWays float64
}

// NodeSample records one node's utilization during a monitoring episode
// (the cells of the paper's Figure 17 heat map).
type NodeSample struct {
	Time        float64
	Node        int
	BandwidthGB float64
	ActiveCores int
}

// Recorder accumulates periodic node samples.
type Recorder struct {
	Interval float64
	Samples  []NodeSample
}

// Record appends one sample.
func (r *Recorder) Record(s NodeSample) { r.Samples = append(r.Samples, s) }

// ByNode groups samples into per-node series ordered by time, for nodes
// 0..n-1.
func (r *Recorder) ByNode(n int) [][]NodeSample {
	out := make([][]NodeSample, n)
	for _, s := range r.Samples {
		if s.Node >= 0 && s.Node < n {
			out[s.Node] = append(out[s.Node], s)
		}
	}
	return out
}
