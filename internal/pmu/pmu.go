// Package pmu defines the simulated performance-monitoring-unit readings
// the execution engine produces and the Kunafa profiler consumes. The
// quantities mirror the hardware events Uberun samples on real nodes:
// Instructions Retired and Unhalted Core Cycles for IPC, and Home-Agent
// REQUESTS for memory bandwidth (Section 5.1 of the paper). Every
// reading carries its physical unit as a defined type (internal/units),
// so an instruction count cannot be mistaken for a cycle count nor a
// per-node bandwidth for a total.
package pmu

import "spreadnshare/internal/units"

// Counters accumulate over a job's lifetime (or a sampling window, by
// differencing two snapshots). Instruction and cycle counts are in units
// of 1e9 (giga); traffic is in GB.
type Counters struct {
	// Instructions retired across all the job's cores.
	Instructions units.Instr
	// Cycles elapsed across all the job's cores (cores stall but keep
	// cycling while memory-throttled, exactly as real counters read).
	Cycles units.Cycles
	// TrafficGB is memory traffic attributed to the job, summed over
	// nodes.
	TrafficGB units.GB
	// CommSeconds is wall time attributed to inter-node communication.
	CommSeconds units.Seconds
	// Elapsed is wall-clock seconds the job has been running.
	Elapsed units.Seconds
}

// Sub returns the window c - prev, for differencing two snapshots.
func (c Counters) Sub(prev Counters) Counters {
	return Counters{
		Instructions: c.Instructions - prev.Instructions,
		Cycles:       c.Cycles - prev.Cycles,
		TrafficGB:    c.TrafficGB - prev.TrafficGB,
		CommSeconds:  c.CommSeconds - prev.CommSeconds,
		Elapsed:      c.Elapsed - prev.Elapsed,
	}
}

// IPC returns instructions per cycle over the window, zero if no cycles.
func (c Counters) IPC() units.IPC {
	if c.Cycles <= 0 {
		return 0
	}
	return units.PerCycle(c.Instructions, c.Cycles)
}

// Bandwidth returns the average memory bandwidth over the window.
func (c Counters) Bandwidth() units.GBps {
	if c.Elapsed <= 0 {
		return 0
	}
	return c.TrafficGB.Per(c.Elapsed)
}

// Metrics is an instantaneous reading of one running job, the quantity a
// 5-second fixed-allocation profiling episode observes.
type Metrics struct {
	// IPC is per-core instructions per cycle, including throttling
	// stalls.
	IPC units.IPC
	// BWPerNode is achieved memory bandwidth per occupied node.
	BWPerNode units.GBps
	// BWTotal is achieved bandwidth summed over the job's nodes.
	BWTotal units.GBps
	// IOPerNode is achieved parallel-file-system bandwidth per node.
	IOPerNode units.GBps
	// MissPct is the LLC miss rate in percent.
	MissPct float64
	// ComputeFrac is the fraction of wall time in computation (the
	// rest is inter-node communication), as an mpiP-style breakdown.
	ComputeFrac float64
	// EffectiveWays is the cache allocation driving the reading, in
	// reference-concurrency terms (exposed for tests; real PMUs do
	// not report it). Fractional, so it is not a units.Ways count.
	EffectiveWays float64
}

// NodeSample records one node's utilization during a monitoring episode
// (the cells of the paper's Figure 17 heat map).
type NodeSample struct {
	Time        units.Seconds
	Node        int
	BandwidthGB units.GBps
	ActiveCores units.Cores
}

// Recorder accumulates periodic node samples.
type Recorder struct {
	Interval float64
	Samples  []NodeSample
}

// Record appends one sample.
func (r *Recorder) Record(s NodeSample) { r.Samples = append(r.Samples, s) }

// ByNode groups samples into per-node series ordered by time, for nodes
// 0..n-1.
func (r *Recorder) ByNode(n int) [][]NodeSample {
	out := make([][]NodeSample, n)
	for _, s := range r.Samples {
		if s.Node >= 0 && s.Node < n {
			out[s.Node] = append(out[s.Node], s)
		}
	}
	return out
}
