package pmu

import (
	"math"
	"testing"
)

func TestCountersDerived(t *testing.T) {
	c := Counters{Instructions: 200, Cycles: 100, TrafficGB: 50, Elapsed: 10}
	if got := c.IPC(); got != 2 {
		t.Errorf("IPC = %g, want 2", got)
	}
	if got := c.Bandwidth(); got != 5 {
		t.Errorf("Bandwidth = %g, want 5", got)
	}
	zero := Counters{}
	if zero.IPC() != 0 || zero.Bandwidth() != 0 {
		t.Error("zero counters should derive zeros")
	}
}

func TestCountersSub(t *testing.T) {
	a := Counters{Instructions: 10, Cycles: 20, TrafficGB: 30, CommSeconds: 1, Elapsed: 5}
	b := Counters{Instructions: 25, Cycles: 60, TrafficGB: 90, CommSeconds: 4, Elapsed: 15}
	w := b.Sub(a)
	if w.Instructions != 15 || w.Cycles != 40 || w.TrafficGB != 60 ||
		w.CommSeconds != 3 || w.Elapsed != 10 {
		t.Errorf("Sub = %+v", w)
	}
	// Windowed IPC differs from cumulative when rates change.
	if got := w.IPC(); math.Abs(got.Float64()-0.375) > 1e-12 {
		t.Errorf("window IPC = %g, want 0.375", got)
	}
}

func TestRecorderByNode(t *testing.T) {
	r := &Recorder{Interval: 30}
	r.Record(NodeSample{Time: 0, Node: 0, BandwidthGB: 10})
	r.Record(NodeSample{Time: 0, Node: 1, BandwidthGB: 20})
	r.Record(NodeSample{Time: 30, Node: 0, BandwidthGB: 30})
	r.Record(NodeSample{Time: 30, Node: 7, BandwidthGB: 5})
	r.Record(NodeSample{Time: 30, Node: 99, BandwidthGB: 1}) // out of range

	series := r.ByNode(8)
	if len(series) != 8 {
		t.Fatalf("ByNode returned %d rows, want 8", len(series))
	}
	if len(series[0]) != 2 || series[0][1].BandwidthGB != 30 {
		t.Errorf("node 0 series = %+v", series[0])
	}
	if len(series[1]) != 1 || len(series[7]) != 1 {
		t.Error("nodes 1/7 series wrong")
	}
	if len(series[2]) != 0 {
		t.Error("idle node has samples")
	}
	total := 0
	for _, s := range series {
		total += len(s)
	}
	if total != 4 {
		t.Errorf("in-range sample total %d, want 4 (out-of-range dropped)", total)
	}
}
