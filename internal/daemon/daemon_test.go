package daemon

import (
	"strings"
	"testing"
	"testing/quick"

	"spreadnshare/internal/app"
	"spreadnshare/internal/hw"
)

func testCatalog(t *testing.T) *app.Catalog {
	t.Helper()
	cat, err := app.NewCatalog(hw.DefaultNodeSpec())
	if err != nil {
		t.Fatal(err)
	}
	return cat
}

func TestCoreSetString(t *testing.T) {
	cases := []struct {
		set  CoreSet
		want string
	}{
		{nil, ""},
		{CoreSet{3}, "3"},
		{CoreSet{0, 1, 2, 3}, "0-3"},
		{CoreSet{0, 2, 3, 7}, "0,2-3,7"},
		{CoreSet{14, 15, 0, 1}, "0-1,14-15"}, // unsorted input
	}
	for _, c := range cases {
		if got := c.set.String(); got != c.want {
			t.Errorf("CoreSet%v = %q, want %q", c.set, got, c.want)
		}
	}
}

func TestActuateBindsBalancedSockets(t *testing.T) {
	cat := testCatalog(t)
	mg, _ := cat.Lookup("MG")
	d := New(0, hw.DefaultNodeSpec())
	plan, err := d.Actuate(1, mg, 16, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Cores) != 16 {
		t.Fatalf("bound %d cores, want 16", len(plan.Cores))
	}
	// 8 per socket on the dual-14-core node.
	s0 := 0
	for _, id := range plan.Cores {
		if id < 14 {
			s0++
		}
	}
	if s0 != 8 {
		t.Errorf("socket balance %d/%d, want 8/8", s0, 16-s0)
	}
	if plan.WayMask.Count() != 4 || !plan.WayMask.Contiguous() {
		t.Errorf("way mask %v, want 4 contiguous ways", plan.WayMask)
	}
	if d.FreeCores() != 12 {
		t.Errorf("FreeCores = %d, want 12", d.FreeCores())
	}
}

func TestActuateDisjointJobs(t *testing.T) {
	cat := testCatalog(t)
	mg, _ := cat.Lookup("MG")
	hc, _ := cat.Lookup("HC")
	d := New(0, hw.DefaultNodeSpec())
	p1, err := d.Actuate(1, mg, 8, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := d.Actuate(2, hc, 8, 2, 30)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, id := range p1.Cores {
		seen[id] = true
	}
	for _, id := range p2.Cores {
		if seen[id] {
			t.Fatalf("core %d bound to both jobs", id)
		}
	}
	if p1.WayMask.Overlaps(p2.WayMask) {
		t.Errorf("way masks overlap: %v, %v", p1.WayMask, p2.WayMask)
	}
	if p2.BWCapGB != 30 {
		t.Errorf("plan cap %.1f, want 30", p2.BWCapGB)
	}
}

func TestActuateErrors(t *testing.T) {
	cat := testCatalog(t)
	mg, _ := cat.Lookup("MG")
	d := New(0, hw.DefaultNodeSpec())
	if _, err := d.Actuate(1, mg, 0, 0, 0); err == nil {
		t.Error("zero cores accepted")
	}
	if _, err := d.Actuate(1, mg, 29, 0, 0); err == nil {
		t.Error("more cores than the node has accepted")
	}
	if _, err := d.Actuate(1, mg, 8, 0, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Actuate(1, mg, 8, 0, 0); err == nil {
		t.Error("double actuation accepted")
	}
	if _, err := d.Actuate(2, mg, 28, 0, 0); err == nil {
		t.Error("oversubscription accepted")
	}
	if _, err := d.Actuate(3, mg, 4, 25, 0); err == nil {
		t.Error("LLC oversubscription accepted")
	}
	if err := d.Release(99); err == nil {
		t.Error("release of unknown job accepted")
	}
}

func TestReleaseRestores(t *testing.T) {
	cat := testCatalog(t)
	mg, _ := cat.Lookup("MG")
	d := New(0, hw.DefaultNodeSpec())
	if _, err := d.Actuate(1, mg, 16, 10, 0); err != nil {
		t.Fatal(err)
	}
	if err := d.Release(1); err != nil {
		t.Fatalf("Release: %v", err)
	}
	if d.FreeCores() != 28 {
		t.Errorf("FreeCores after release = %d, want 28", d.FreeCores())
	}
	if _, ok := d.Bound(1); ok {
		t.Error("job still bound after release")
	}
	// Full LLC must be allocatable again.
	if _, err := d.Actuate(2, mg, 4, 20, 0); err != nil {
		t.Errorf("full LLC not recovered: %v", err)
	}
	// Unmanaged job (ways 0) releases cleanly too.
	if err := d.Release(2); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Actuate(3, mg, 4, 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := d.Release(3); err != nil {
		t.Errorf("unmanaged release failed: %v", err)
	}
}

func TestLaunchCommandsPerFramework(t *testing.T) {
	cat := testCatalog(t)
	d := New(0, hw.DefaultNodeSpec())
	cases := []struct {
		prog string
		want []string
	}{
		{"MG", []string{"mpirun", "--cpu-set", "-np 8"}},
		{"TS", []string{"SPARK_WORKER_CORES=8", "taskset"}},
		{"GAN", []string{"TF_NUM_INTRAOP_THREADS=8", "taskset"}},
		{"HC", []string{"taskset -c $c", "for c in"}},
	}
	for i, c := range cases {
		prog, _ := cat.Lookup(c.prog)
		plan, err := d.Actuate(10+i, prog, 8, 0, 0)
		if err != nil {
			t.Fatalf("%s: %v", c.prog, err)
		}
		for _, frag := range c.want {
			if !strings.Contains(plan.Command, frag) {
				t.Errorf("%s command %q missing %q", c.prog, plan.Command, frag)
			}
		}
		if err := d.Release(10 + i); err != nil {
			t.Fatal(err)
		}
	}
}

// Property: any sequence of actuations and releases keeps core bindings
// disjoint and conserves the free-core count.
func TestDaemonInvariants(t *testing.T) {
	cat := testCatalog(t)
	mg, _ := cat.Lookup("MG")
	f := func(ops []uint16) bool {
		d := New(0, hw.DefaultNodeSpec())
		live := map[int]int{} // job id -> cores
		next := 1
		for _, op := range ops {
			if op%3 == 0 && len(live) > 0 {
				for id := range live {
					if d.Release(id) != nil {
						return false
					}
					delete(live, id)
					break
				}
				continue
			}
			cores := int(op%28) + 1
			ways := int(op >> 5 % 8)
			if _, err := d.Actuate(next, mg, cores, ways, 0); err == nil {
				live[next] = cores
				next++
			}
		}
		used := 0
		seen := map[int]bool{}
		for id := range live {
			set, ok := d.Bound(id)
			if !ok || len(set) != live[id] {
				return false
			}
			for _, c := range set {
				if seen[c] {
					return false
				}
				seen[c] = true
			}
			used += len(set)
		}
		return d.FreeCores() == 28-used
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestActuateDefragmentsFragmentedWays drives the Defragment-and-retry
// path: after interleaved allocations and a release, the LLC holds
// enough free ways for a new job but no contiguous run — Actuate must
// repack the live partitions and satisfy the request instead of failing.
func TestActuateDefragmentsFragmentedWays(t *testing.T) {
	cat := testCatalog(t)
	mg, _ := cat.Lookup("MG")
	d := New(0, hw.DefaultNodeSpec()) // 20 LLC ways

	// A: ways 0-5, B: 6-11, C: 12-17; 18-19 stay free.
	for job := 1; job <= 3; job++ {
		if _, err := d.Actuate(job, mg, 4, 6, 0); err != nil {
			t.Fatalf("job %d: %v", job, err)
		}
	}
	// Releasing B frees 6-11: 8 ways free, but the largest contiguous
	// run is 6 — an 8-way request only fits after defragmentation.
	if err := d.Release(2); err != nil {
		t.Fatal(err)
	}
	plan, err := d.Actuate(4, mg, 4, 8, 0)
	if err != nil {
		t.Fatalf("fragmented 8-way request not repacked: %v", err)
	}
	if plan.WayMask.Count() != 8 || !plan.WayMask.Contiguous() {
		t.Fatalf("defragmented mask = %v, want 8 contiguous ways", plan.WayMask)
	}
	// Survivors keep their sizes, stay contiguous, and stay disjoint.
	masks := []hw.WayMask{plan.WayMask}
	for _, job := range []int{1, 3} {
		m, ok := d.ways.Mask(job)
		if !ok {
			t.Fatalf("job %d lost its partition in defragmentation", job)
		}
		if m.Count() != 6 || !m.Contiguous() {
			t.Fatalf("job %d repacked to %v, want 6 contiguous ways", job, m)
		}
		masks = append(masks, m)
	}
	for i := range masks {
		for j := i + 1; j < len(masks); j++ {
			if masks[i].Overlaps(masks[j]) {
				t.Fatalf("partitions overlap after defragmentation: %v, %v", masks[i], masks[j])
			}
		}
	}
	// The LLC is now exactly full: a further managed request must fail
	// outright (free ways < requested, so no defrag retry can save it).
	if _, err := d.Actuate(5, mg, 2, 4, 0); err == nil {
		t.Error("over-full LLC request accepted")
	}
}
