// Package daemon implements the per-node component of Uberun's
// architecture (Figure 9): the actuator that turns scheduler decisions
// into node-local actions. Per Section 5.1, that means Linux
// cpuset-style core binding, CAT way-mask programming, and
// framework-specific launch configuration — MPI jobs get explicit core
// binding flags, Spark workers get a core budget, TensorFlow processes
// get a thread count, and replicated sequential programs get per-instance
// taskset pinning.
package daemon

import (
	"fmt"
	"sort"
	"strings"

	"spreadnshare/internal/app"
	"spreadnshare/internal/hw"
	"spreadnshare/internal/units"
)

// CoreSet is an ordered list of core ids bound to one job.
type CoreSet []int

// String renders the set in Linux cpuset list syntax ("0-3,14-17").
func (c CoreSet) String() string {
	if len(c) == 0 {
		return ""
	}
	s := append([]int(nil), c...)
	sort.Ints(s)
	var parts []string
	start, prev := s[0], s[0]
	flush := func() {
		if start == prev {
			parts = append(parts, fmt.Sprint(start))
		} else {
			parts = append(parts, fmt.Sprintf("%d-%d", start, prev))
		}
	}
	for _, id := range s[1:] {
		if id == prev+1 {
			prev = id
			continue
		}
		flush()
		start, prev = id, id
	}
	flush()
	return strings.Join(parts, ",")
}

// LaunchPlan is the concrete actuation of one job on one node.
type LaunchPlan struct {
	JobID   int
	Program string
	// Cores is the cpuset binding.
	Cores CoreSet
	// WayMask is the CAT capacity bitmask (0 when cache is unmanaged).
	WayMask hw.WayMask
	// BWCapGB is the MBA throttle in GB/s (0 when uncapped).
	BWCapGB float64
	// Command is the framework-specific node-local launch line.
	Command string
}

// Daemon is one node's actuator state.
type Daemon struct {
	NodeID int
	spec   hw.NodeSpec
	ways   *hw.WayAllocator
	bound  map[int]CoreSet // job id -> cores
	busy   []bool          // core occupancy
}

// New creates an idle daemon for a node.
func New(nodeID int, spec hw.NodeSpec) *Daemon {
	return &Daemon{
		NodeID: nodeID,
		spec:   spec,
		ways:   hw.NewWayAllocator(spec),
		bound:  make(map[int]CoreSet),
		busy:   make([]bool, spec.Cores),
	}
}

// FreeCores returns unbound cores.
func (d *Daemon) FreeCores() int {
	n := 0
	for _, b := range d.busy {
		if !b {
			n++
		}
	}
	return n
}

// Bound returns the core set held by a job, if any.
func (d *Daemon) Bound(jobID int) (CoreSet, bool) {
	c, ok := d.bound[jobID]
	return c, ok
}

// pickCores selects `n` free cores balanced across the two sockets (cores
// [0, half) are socket 0, [half, Cores) socket 1), matching how the paper
// runs 16-process jobs as 8 per socket. Odd remainders go to the socket
// with more free cores.
func (d *Daemon) pickCores(n int) (CoreSet, error) {
	if n > d.FreeCores() {
		return nil, fmt.Errorf("daemon: node %d: %d cores requested, %d free",
			d.NodeID, n, d.FreeCores())
	}
	half := d.spec.Cores.Int() / 2
	var free0, free1 []int
	for id, b := range d.busy {
		if b {
			continue
		}
		if id < half {
			free0 = append(free0, id)
		} else {
			free1 = append(free1, id)
		}
	}
	take0 := n / 2
	take1 := n - take0
	if len(free1) > len(free0) {
		take0, take1 = take1, take0
	}
	if take0 > len(free0) {
		take1 += take0 - len(free0)
		take0 = len(free0)
	}
	if take1 > len(free1) {
		take0 += take1 - len(free1)
		take1 = len(free1)
	}
	picked := append(append(CoreSet{}, free0[:take0]...), free1[:take1]...)
	sort.Ints(picked)
	return picked, nil
}

// Actuate binds cores, programs the CAT mask, and builds the launch
// command for one job's share of this node. Pass ways 0 for unmanaged
// cache and bwCap 0 for no MBA throttle.
func (d *Daemon) Actuate(jobID int, prog *app.Model, cores, ways int, bwCap float64) (*LaunchPlan, error) {
	if _, ok := d.bound[jobID]; ok {
		return nil, fmt.Errorf("daemon: node %d: job %d already actuated", d.NodeID, jobID)
	}
	if cores <= 0 {
		return nil, fmt.Errorf("daemon: node %d: job %d requested %d cores", d.NodeID, jobID, cores)
	}
	set, err := d.pickCores(cores)
	if err != nil {
		return nil, err
	}
	var mask hw.WayMask
	if ways > 0 {
		w := units.WaysOf(ways)
		mask, err = d.ways.Allocate(jobID, w)
		if err != nil && d.ways.FreeWays() >= w {
			// Fragmented: repack the existing partitions (a cheap
			// CLOS-mask rewrite) and retry.
			d.ways.Defragment()
			mask, err = d.ways.Allocate(jobID, w)
		}
		if err != nil {
			return nil, err
		}
	}
	for _, id := range set {
		d.busy[id] = true
	}
	d.bound[jobID] = set
	return &LaunchPlan{
		JobID:   jobID,
		Program: prog.Name,
		Cores:   set,
		WayMask: mask,
		BWCapGB: bwCap,
		Command: launchCommand(prog, set),
	}, nil
}

// Release unbinds a job's cores and returns its LLC partition.
func (d *Daemon) Release(jobID int) error {
	set, ok := d.bound[jobID]
	if !ok {
		return fmt.Errorf("daemon: node %d: job %d not actuated", d.NodeID, jobID)
	}
	for _, id := range set {
		d.busy[id] = false
	}
	delete(d.bound, jobID)
	// The partition exists only for CAT-managed jobs.
	if _, held := d.ways.Mask(jobID); held {
		return d.ways.Release(jobID)
	}
	return nil
}

// launchCommand renders the framework-specific node-local launch line the
// paper's prototype issues (Section 5.1).
func launchCommand(prog *app.Model, set CoreSet) string {
	n := len(set)
	list := set.String()
	switch prog.Framework {
	case app.MPI:
		// MPI exposes explicit binding interfaces.
		return fmt.Sprintf("mpirun -np %d --bind-to cpu-list:ordered --cpu-set %s ./%s",
			n, list, strings.ToLower(prog.Name))
	case app.Spark:
		// Spark standalone mode with a restricted worker core budget.
		return fmt.Sprintf("SPARK_WORKER_CORES=%d taskset -c %s start-worker.sh # %s",
			n, list, prog.Name)
	case app.TensorFlow:
		// TensorFlow needs the per-node core count set in application
		// code; the daemon exports it and pins the process.
		return fmt.Sprintf("TF_NUM_INTRAOP_THREADS=%d taskset -c %s python %s.py",
			n, list, strings.ToLower(prog.Name))
	case app.Replicated:
		// Independent sequential instances, one per core.
		return fmt.Sprintf("for c in %s; do taskset -c $c ./%s & done",
			list, strings.ToLower(prog.Name))
	}
	return fmt.Sprintf("taskset -c %s ./%s", list, strings.ToLower(prog.Name))
}
