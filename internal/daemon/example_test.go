package daemon_test

import (
	"fmt"
	"log"

	"spreadnshare/internal/app"
	"spreadnshare/internal/daemon"
	"spreadnshare/internal/hw"
)

// Actuating one MPI job on a node: socket-balanced cpuset binding, a
// contiguous CAT mask, and the framework launch line.
func ExampleDaemon_Actuate() {
	cat, err := app.NewCatalog(hw.DefaultNodeSpec())
	if err != nil {
		log.Fatal(err)
	}
	mg, _ := cat.Lookup("MG")
	d := daemon.New(0, hw.DefaultNodeSpec())
	plan, err := d.Actuate(1, mg, 8, 4, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("cores:", plan.Cores)
	fmt.Println("mask: ", plan.WayMask)
	fmt.Println("cmd:  ", plan.Command)
	// Output:
	// cores: 0-3,14-17
	// mask:  0x0000f
	// cmd:   mpirun -np 8 --bind-to cpu-list:ordered --cpu-set 0-3,14-17 ./mg
}
