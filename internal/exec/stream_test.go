package exec

import (
	"math"
	"testing"

	"spreadnshare/internal/app"
	"spreadnshare/internal/hw"

	"spreadnshare/internal/units"
)

// streamModel builds a synthetic STREAM benchmark: pure streaming triad
// whose per-core demand equals the single-core peak, cache-insensitive,
// no communication.
func streamModel(t *testing.T, spec hw.NodeSpec) *app.Model {
	t.Helper()
	m := &app.Model{
		Name: "STREAM", Suite: "synthetic", Framework: app.Replicated,
		MultiNode: true,
		IPCMax:    0.4, FloorFrac: 0.95, LeastWays90: 2, LatSens: 0,
		BWPerCoreRef: spec.SingleCoreBandwidth.Float64(), MissPctRef: 95,
		MissFloorFrac: 1, WHalf: 10,
		TargetSoloSec: 100, MemGBPerProc: 1,
	}
	if err := m.Calibrate(spec); err != nil {
		t.Fatal(err)
	}
	return m
}

// TestEngineReproducesStreamRoofline: running the synthetic STREAM with k
// cores measures the hardware model's B(k) through the full engine stack —
// the end-to-end validation of Figure 3.
func TestEngineReproducesStreamRoofline(t *testing.T) {
	spec := hw.DefaultClusterSpec()
	stream := streamModel(t, spec.Node)
	for _, k := range []int{1, 2, 4, 8, 16, 28} {
		e, err := New(spec)
		if err != nil {
			t.Fatal(err)
		}
		j := &Job{ID: 1, Prog: stream, Procs: k, Nodes: []int{0}, CoresByNode: []int{k}}
		if err := e.Launch(j); err != nil {
			t.Fatal(err)
		}
		e.Run(0)
		c, err := e.JobCounters(1)
		if err != nil {
			t.Fatal(err)
		}
		// Demand is k * 18.8 with a nearly flat cache curve; the
		// measured bandwidth must sit within a few percent of
		// min(demand, B(k)).
		demand := float64(k) * spec.Node.SingleCoreBandwidth.Float64()
		want := math.Min(demand, spec.Node.StreamBandwidth(units.CoresOf(k)).Float64())
		if got := c.Bandwidth().Float64(); math.Abs(got-want)/want > 0.06 {
			t.Errorf("STREAM with %d cores measured %.1f GB/s, want ~%.1f", k, got, want)
		}
	}
}

// TestStreamPerCoreDecline: the declining per-core curve of Figure 3,
// measured through the engine.
func TestStreamPerCoreDecline(t *testing.T) {
	spec := hw.DefaultClusterSpec()
	stream := streamModel(t, spec.Node)
	perCore := func(k int) float64 {
		e, _ := New(spec)
		j := &Job{ID: 1, Prog: stream, Procs: k, Nodes: []int{0}, CoresByNode: []int{k}}
		if err := e.Launch(j); err != nil {
			t.Fatal(err)
		}
		e.Run(0)
		c, _ := e.JobCounters(1)
		return c.Bandwidth().Float64() / float64(k)
	}
	p1, p28 := perCore(1), perCore(28)
	if p28 >= p1 {
		t.Fatalf("per-core bandwidth did not decline: %.2f at 1 core, %.2f at 28", p1, p28)
	}
	// Paper: 4.22 GB/s at 28 cores, 22.45% of the single-core peak.
	if ratio := p28 / p1; ratio < 0.15 || ratio > 0.35 {
		t.Errorf("per-core ratio %.3f, want ~0.22", ratio)
	}
}
