// Package exec simulates the execution of parallel jobs on a cluster. It
// is the stand-in for the paper's physical testbed: given placements (which
// nodes, how many cores, which LLC ways), it computes each job's progress
// under memory-bandwidth contention, cache partitioning or uncontrolled
// sharing, memory-latency load, and network communication — and produces
// the simulated PMU readings the profiler and the monitoring figures use.
//
// The model is fluid: a job's instantaneous completion rate is
//
//	dq/dt = 1 / (W/r(t) + S)
//
// where W is per-process compute work, r(t) the contended per-core
// instruction rate (gated by the job's slowest node), and S its
// communication time for the current footprint. Rates are recomputed
// whenever any node's population or allocation changes, which makes the
// simulation event-driven and exact for piecewise-constant conditions.
package exec

import (
	"fmt"

	"spreadnshare/internal/app"
	"spreadnshare/internal/pmu"
	"spreadnshare/internal/sim"
	"spreadnshare/internal/units"
)

// State is a job's lifecycle state. The exhaustive lint pass keeps
// every switch over it covering all four states.
//
//sns:enum
type State int

const (
	// Pending jobs are known but not yet launched.
	Pending State = iota
	// Running jobs hold resources and make progress.
	Running
	// Done jobs have finished and released their resources.
	Done
	// Cancelled jobs were aborted mid-run (failure injection or an
	// operator kill); their resources are released like Done jobs but
	// their work did not complete.
	Cancelled
)

// String returns the state name.
func (s State) String() string {
	switch s {
	case Pending:
		return "pending"
	case Running:
		return "running"
	case Done:
		return "done"
	case Cancelled:
		return "cancelled"
	}
	return fmt.Sprintf("State(%d)", int(s))
}

// Job is one application instance to execute. Placement fields are set by
// the scheduler before Launch.
type Job struct {
	// ID is unique within an Engine.
	ID int
	// Prog is the program model this job runs.
	Prog *app.Model
	// Procs is the requested process count.
	Procs int
	// Alpha is the user slowdown threshold (0 < alpha <= 1); the
	// engine records it for the scheduler, it does not enforce it.
	Alpha float64
	// Submit is the submission time in seconds.
	Submit float64

	// Nodes and CoresByNode describe the placement: CoresByNode[i]
	// processes run on Nodes[i]. Their core sums must equal Procs.
	Nodes       []int
	CoresByNode []int
	// Ways is the per-node CAT allocation; 0 means unmanaged sharing.
	Ways units.Ways
	// BWCap is a per-node memory-bandwidth ceiling enforced by Intel
	// MBA throttling; 0 means uncapped. The engine clamps the job's
	// demanded bandwidth to the cap before contention resolution, so a
	// job can never exceed its reservation — the enforcement the
	// paper's testbed lacked (Section 4.4).
	BWCap units.GBps
	// Exclusive marks the nodes as dedicated (informational; the
	// scheduler enforces it).
	Exclusive bool

	// Start and Finish are set by the engine.
	Start, Finish float64
	// State is the lifecycle state; the transition lint pass checks
	// every write against these edges.
	//
	//sns:statemachine Pending>Running,Running>Done,Running>Cancelled
	State State

	// remaining is normalized remaining work in [0, 1].
	remaining float64
	// rate is dq/dt under current conditions.
	rate float64
	// lastT is the time progress was last advanced.
	lastT float64
	// shares holds the per-node contention outcome, indexed parallel
	// to Nodes (shares[i] is the outcome on Nodes[i]).
	shares []nodeShare
	// perCoreRate is the gating (minimum) per-core rate in GIPS.
	perCoreRate float64
	// computeFrac is the fraction of wall time spent computing.
	computeFrac float64
	// commInflation is the NIC-contention stretch on communication.
	commInflation float64
	// metrics is the current instantaneous reading.
	metrics pmu.Metrics
	// counters accumulate over the run.
	counters pmu.Counters
	// wayOverride, when positive, forces the node-level way allocation
	// (the profiler's CAT manipulation); it bypasses Ways.
	wayOverride units.Ways
	// phaseMul is the current bandwidth-phase multiplier (1 when
	// phase simulation is off).
	phaseMul float64
	// finishEv is the pending completion event.
	finishEv *sim.Event
	// finishFn is the completion callback, created once at launch so
	// finish-event reschedules allocate nothing.
	finishFn func()
	// flipFn is the bandwidth-phase toggle callback, created once at
	// launch when phase simulation is on.
	flipFn func()
	// seen is the engine's recompute stamp, used to deduplicate the
	// affected-job list without a scratch map.
	seen uint64
}

// nodeShare is the outcome of contention resolution on one node for one
// job.
type nodeShare struct {
	rate    float64    // per-core instruction rate, GIPS
	grant   units.GBps // achieved memory bandwidth on this node
	demand  units.GBps // demanded bandwidth on this node
	ioGrant units.GBps // achieved file-system bandwidth
	missPct float64
	effWays float64
	cores   int
}

// SpanNodes returns the number of nodes the placement uses.
func (j *Job) SpanNodes() int { return len(j.Nodes) }

// TotalCores returns the placement's core total.
func (j *Job) TotalCores() int {
	c := 0
	for _, n := range j.CoresByNode {
		c += n
	}
	return c
}

// Remaining returns normalized remaining work in [0, 1].
func (j *Job) Remaining() float64 { return j.remaining }

// RunTime returns start-to-finish time for a done job.
func (j *Job) RunTime() float64 { return j.Finish - j.Start }

// WaitTime returns submit-to-start time.
func (j *Job) WaitTime() float64 { return j.Start - j.Submit }

// Turnaround returns submit-to-finish time.
func (j *Job) Turnaround() float64 { return j.Finish - j.Submit }

// NodeSeconds returns nodes x run time, the paper's resource-usage
// accounting.
func (j *Job) NodeSeconds() float64 { return float64(j.SpanNodes()) * j.RunTime() }

// EvenSplit divides procs across n nodes as evenly as possible (the
// paper's load-balanced process division), front-loading the remainder.
func EvenSplit(procs, n int) []int {
	if n <= 0 || procs <= 0 {
		return nil
	}
	out := make([]int, n)
	base, rem := procs/n, procs%n
	for i := range out {
		out[i] = base
		if i < rem {
			out[i]++
		}
	}
	return out
}
