package exec

import (
	"testing"

	"spreadnshare/internal/app"
	"spreadnshare/internal/hw"

	"spreadnshare/internal/units"
)

// steadyStateEngine builds an engine with a contended node population and
// warms every scratch buffer and the event-queue free list, so subsequent
// recompute passes exercise the steady-state hot path only.
func steadyStateEngine(t testing.TB) (*Engine, *Job) {
	t.Helper()
	cat, err := app.NewCatalog(hw.DefaultNodeSpec())
	if err != nil {
		t.Fatal(err)
	}
	spec := hw.DefaultClusterSpec()
	e, err := New(spec)
	if err != nil {
		t.Fatal(err)
	}
	names := []string{"MG", "CG", "EP", "HC", "BW"}
	var last *Job
	for id, name := range names {
		m, err := cat.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		j := &Job{ID: id, Prog: m, Procs: 4, Nodes: []int{0, 1}, CoresByNode: []int{2, 2}}
		if err := e.Launch(j); err != nil {
			t.Fatal(err)
		}
		last = j
	}
	// Warm up: drive recomputes until the scratch buffers and the event
	// free list have reached their working-set sizes.
	for i := 0; i < 64; i++ {
		if err := e.SetJobWays(last.ID, units.WaysOf(1+i%4)); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.SetJobWays(last.ID, 0); err != nil {
		t.Fatal(err)
	}
	return e, last
}

// TestRecomputeZeroAllocs pins the engine's full per-event path —
// markDirty, recompute, resolveNode, refreshJob, and the finish-event
// reschedule through the queue — at zero steady-state heap allocations.
func TestRecomputeZeroAllocs(t *testing.T) {
	e, j := steadyStateEngine(t)
	ways := units.Ways(0)
	allocs := testing.AllocsPerRun(100, func() {
		ways = ways%4 + 1
		if err := e.SetJobWays(j.ID, ways); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("recompute path allocates %.1f objects/op, want 0", allocs)
	}
}

// TestResolveNodeZeroAllocs pins contention resolution alone.
func TestResolveNodeZeroAllocs(t *testing.T) {
	e, _ := steadyStateEngine(t)
	allocs := testing.AllocsPerRun(100, func() {
		e.resolveNode(0)
		e.resolveNode(1)
	})
	if allocs != 0 {
		t.Errorf("resolveNode allocates %.1f objects/op, want 0", allocs)
	}
}

// TestRefreshJobZeroAllocs pins rate refresh plus the queue reschedule.
func TestRefreshJobZeroAllocs(t *testing.T) {
	e, j := steadyStateEngine(t)
	allocs := testing.AllocsPerRun(100, func() {
		e.refreshJob(j)
	})
	if allocs != 0 {
		t.Errorf("refreshJob allocates %.1f objects/op, want 0", allocs)
	}
}

// TestPhaseFlipZeroAllocs pins the bandwidth-phase flip path: the flip
// closure is created once at launch, so steady-state phase simulation
// must not allocate.
func TestPhaseFlipZeroAllocs(t *testing.T) {
	cat, err := app.NewCatalog(hw.DefaultNodeSpec())
	if err != nil {
		t.Fatal(err)
	}
	var phased *app.Model
	for _, name := range app.ProgramNames {
		m, err := cat.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		if m.PhaseAmp > 0 && m.PhasePeriodSec > 0 && !m.PowerOf2 {
			phased = m
			break
		}
	}
	if phased == nil {
		t.Skip("catalog has no phase-capable program")
	}
	e, err := New(hw.DefaultClusterSpec())
	if err != nil {
		t.Fatal(err)
	}
	e.PhasesOn = true
	j := &Job{ID: 1, Prog: phased, Procs: 1, Nodes: []int{0}, CoresByNode: []int{1}}
	if err := e.Launch(j); err != nil {
		t.Fatal(err)
	}
	// Drive the simulation period by period so flips fire through the
	// queue and their events recycle. Topping j.remaining back up each
	// step keeps the job running for arbitrarily many flips without
	// relaunching (a launch would allocate by design).
	horizon := 0.0
	step := phased.PhasePeriodSec
	tick := func() {
		j.remaining = 1
		horizon += step
		e.Run(horizon)
	}
	for i := 0; i < 128; i++ { // warm past the first heap compaction
		tick()
	}
	if j.State != Running {
		t.Fatalf("phased job finished during warmup")
	}
	allocs := testing.AllocsPerRun(100, tick)
	if j.State != Running {
		t.Fatalf("phased job finished during measurement")
	}
	if allocs != 0 {
		t.Errorf("steady-state phase flipping allocates %.1f objects/op, want 0", allocs)
	}
}
