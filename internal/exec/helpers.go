package exec

import (
	"fmt"

	"spreadnshare/internal/app"
	"spreadnshare/internal/hw"
	"spreadnshare/internal/pmu"
)

// RunSoloStats is RunSolo returning the job's cumulative PMU counters and
// its (steady-state) instantaneous metrics alongside the finished job —
// the raw material for the paper's single-program studies (Figures 2-7).
func RunSoloStats(spec hw.ClusterSpec, prog *app.Model, procs, nodes int) (*Job, pmu.Counters, pmu.Metrics, error) {
	e, err := New(spec)
	if err != nil {
		return nil, pmu.Counters{}, pmu.Metrics{}, err
	}
	j, err := PlaceEven(prog, 0, procs, nodes, spec.Nodes)
	if err != nil {
		return nil, pmu.Counters{}, pmu.Metrics{}, err
	}
	j.Exclusive = true
	if err := e.Launch(j); err != nil {
		return nil, pmu.Counters{}, pmu.Metrics{}, err
	}
	e.Run(0)
	if j.State != Done {
		return nil, pmu.Counters{}, pmu.Metrics{}, fmt.Errorf("exec: solo run of %s did not finish", prog.Name)
	}
	c, err := e.JobCounters(j.ID)
	if err != nil {
		return nil, pmu.Counters{}, pmu.Metrics{}, err
	}
	m, err := e.JobMetrics(j.ID)
	if err != nil {
		return nil, pmu.Counters{}, pmu.Metrics{}, err
	}
	return j, c, m, nil
}

// RunSolo executes one job exclusively on a fresh cluster spread over the
// given number of nodes, returning the completed job. It is the
// measurement primitive behind the paper's scaling studies (Figures 1, 2,
// 13) and the profiler's clean timing runs.
func RunSolo(spec hw.ClusterSpec, prog *app.Model, procs, nodes int) (*Job, error) {
	e, err := New(spec)
	if err != nil {
		return nil, err
	}
	j, err := PlaceEven(prog, 0, procs, nodes, spec.Nodes)
	if err != nil {
		return nil, err
	}
	j.Exclusive = true
	if err := e.Launch(j); err != nil {
		return nil, err
	}
	e.Run(0)
	if j.State != Done {
		return nil, fmt.Errorf("exec: solo run of %s did not finish", prog.Name)
	}
	return j, nil
}

// PlaceEven builds a pending job spread evenly over the first `nodes`
// nodes of a cluster with `avail` nodes. It enforces the program's
// framework constraints (single-node programs, power-of-2 splits).
func PlaceEven(prog *app.Model, id, procs, nodes, avail int) (*Job, error) {
	if procs <= 0 {
		return nil, fmt.Errorf("exec: job needs at least one process, got %d", procs)
	}
	if nodes <= 0 || nodes > avail {
		return nil, fmt.Errorf("exec: %d nodes unavailable (%d in cluster)", nodes, avail)
	}
	if nodes > procs {
		return nil, fmt.Errorf("exec: cannot spread %d processes over %d nodes", procs, nodes)
	}
	if !prog.MultiNode && nodes > 1 {
		return nil, fmt.Errorf("exec: %s is single-node", prog.Name)
	}
	if prog.PowerOf2 && procs%nodes != 0 {
		return nil, fmt.Errorf("exec: %s needs even process split (%d procs on %d nodes)",
			prog.Name, procs, nodes)
	}
	ids := make([]int, nodes)
	for i := range ids {
		ids[i] = i
	}
	return &Job{
		ID:          id,
		Prog:        prog,
		Procs:       procs,
		Alpha:       0.9,
		Nodes:       ids,
		CoresByNode: EvenSplit(procs, nodes),
	}, nil
}
