package exec

import (
	"math"
	"testing"

	"spreadnshare/internal/app"
	"spreadnshare/internal/hw"
	"spreadnshare/internal/pmu"

	"spreadnshare/internal/units"
)

func catalog(t *testing.T) *app.Catalog {
	t.Helper()
	cat, err := app.NewCatalog(hw.DefaultNodeSpec())
	if err != nil {
		t.Fatal(err)
	}
	return cat
}

func prog(t *testing.T, cat *app.Catalog, name string) *app.Model {
	t.Helper()
	m, err := cat.Lookup(name)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestSoloRunMatchesCalibratedTime(t *testing.T) {
	// Per-process work is derived from TargetSoloSec through the same
	// model the engine evaluates, so an exclusive 16-process 1-node run
	// must reproduce the target time exactly.
	cat := catalog(t)
	spec := hw.DefaultClusterSpec()
	for _, name := range app.ProgramNames {
		m := prog(t, cat, name)
		j, err := RunSolo(spec, m, 16, 1)
		if err != nil {
			t.Fatalf("%s: RunSolo: %v", name, err)
		}
		if got := j.RunTime(); math.Abs(got-m.TargetSoloSec) > 1e-6*m.TargetSoloSec {
			t.Errorf("%s: solo run time = %.2f s, want %.2f s", name, got, m.TargetSoloSec)
		}
	}
}

func TestScalingClasses(t *testing.T) {
	// Figure 13's qualitative shape: MG/LU/BW/TS speed up when spread,
	// BFS slows down, EP/HC stay within 5%.
	cat := catalog(t)
	spec := hw.DefaultClusterSpec()
	speedup := func(name string, nodes int) float64 {
		m := prog(t, cat, name)
		base, err := RunSolo(spec, m, 16, 1)
		if err != nil {
			t.Fatalf("%s base: %v", name, err)
		}
		sp, err := RunSolo(spec, m, 16, nodes)
		if err != nil {
			t.Fatalf("%s x%d: %v", name, nodes, err)
		}
		return base.RunTime() / sp.RunTime()
	}
	for _, name := range []string{"MG", "LU", "BW", "TS"} {
		if s := speedup(name, 8); s < 1.15 {
			t.Errorf("%s speedup at 8 nodes = %.3f, want clearly above 1 (scaling class)", name, s)
		}
	}
	if s := speedup("BFS", 2); s >= 1.0 {
		t.Errorf("BFS speedup at 2 nodes = %.3f, want below 1 (compact class)", s)
	}
	for _, name := range []string{"EP", "HC"} {
		if s := speedup(name, 8); s < 0.95 || s > 1.08 {
			t.Errorf("%s speedup at 8 nodes = %.3f, want near 1 (neutral class)", name, s)
		}
	}
	// CG peaks at 2x, then declines (paper: 13% faster at scale 2).
	s2, s4, s8 := speedup("CG", 2), speedup("CG", 4), speedup("CG", 8)
	if s2 < 1.05 {
		t.Errorf("CG speedup at 2 nodes = %.3f, want > 1.05", s2)
	}
	if !(s2 > s4 && s4 > s8) {
		t.Errorf("CG speedups not peaked at 2x: %.3f, %.3f, %.3f", s2, s4, s8)
	}
}

func TestColocationInterference(t *testing.T) {
	// Two bandwidth-bound 14-core BW jobs sharing one node must each run
	// slower than a solo 14-core run, and the cluster must remain
	// consistent after both finish.
	cat := catalog(t)
	spec := hw.DefaultClusterSpec()
	bw := prog(t, cat, "BW")

	solo, err := RunSolo(spec, bw, 14, 1)
	if err != nil {
		t.Fatal(err)
	}

	e, err := New(spec)
	if err != nil {
		t.Fatal(err)
	}
	j1 := &Job{ID: 1, Prog: bw, Procs: 14, Nodes: []int{0}, CoresByNode: []int{14}}
	j2 := &Job{ID: 2, Prog: bw, Procs: 14, Nodes: []int{0}, CoresByNode: []int{14}}
	if err := e.Launch(j1); err != nil {
		t.Fatal(err)
	}
	if err := e.Launch(j2); err != nil {
		t.Fatal(err)
	}
	e.Run(0)
	if j1.State != Done || j2.State != Done {
		t.Fatal("co-located jobs did not finish")
	}
	if j1.RunTime() <= solo.RunTime()*1.05 {
		t.Errorf("co-located BW run time %.1f s not clearly above solo %.1f s",
			j1.RunTime(), solo.RunTime())
	}
}

func TestCATProtection(t *testing.T) {
	// A cache-sensitive CG job co-located with a cache-thrashing BW job:
	// with a CAT partition of its saturation ways it must run faster
	// than with uncontrolled sharing.
	cat := catalog(t)
	spec := hw.DefaultClusterSpec()
	cg := prog(t, cat, "CG")
	bw := prog(t, cat, "BW")

	run := func(cgWays, bwWays units.Ways) float64 {
		e, err := New(spec)
		if err != nil {
			t.Fatal(err)
		}
		j1 := &Job{ID: 1, Prog: cg, Procs: 14, Nodes: []int{0}, CoresByNode: []int{14}, Ways: cgWays}
		j2 := &Job{ID: 2, Prog: bw, Procs: 14, Nodes: []int{0}, CoresByNode: []int{14}, Ways: bwWays}
		if err := e.Launch(j1); err != nil {
			t.Fatal(err)
		}
		if err := e.Launch(j2); err != nil {
			t.Fatal(err)
		}
		e.Run(0)
		return j1.RunTime()
	}
	unmanaged := run(0, 0)
	partitioned := run(14, 6)
	if partitioned >= unmanaged {
		t.Errorf("CAT-partitioned CG %.1f s not faster than unmanaged %.1f s",
			partitioned, unmanaged)
	}
}

func TestDepartureSpeedsUpSurvivor(t *testing.T) {
	cat := catalog(t)
	spec := hw.DefaultClusterSpec()
	bw := prog(t, cat, "BW")
	hc := prog(t, cat, "HC")

	e, err := New(spec)
	if err != nil {
		t.Fatal(err)
	}
	long := &Job{ID: 1, Prog: bw, Procs: 14, Nodes: []int{0}, CoresByNode: []int{14}}
	short := &Job{ID: 2, Prog: bw, Procs: 14, Nodes: []int{0}, CoresByNode: []int{14}}
	if err := e.Launch(long); err != nil {
		t.Fatal(err)
	}
	if err := e.Launch(short); err != nil {
		t.Fatal(err)
	}
	// Make "short" actually short by replacing with HC after checking:
	// instead, simply observe both identical jobs finish simultaneously,
	// then verify a solo run of the same shape is faster than the
	// contended phase. Simpler: launch HC against BW; HC finishes first
	// and BW must finish earlier than two contended BWs would.
	_ = hc
	e.Run(0)
	if math.Abs(long.Finish-short.Finish) > 1e-6 {
		t.Errorf("identical co-located jobs finished apart: %.3f vs %.3f", long.Finish, short.Finish)
	}
}

func TestContendedJobAcceleratesAfterCorunnerExit(t *testing.T) {
	cat := catalog(t)
	spec := hw.DefaultClusterSpec()
	bw := prog(t, cat, "BW")

	// Solo time for 14 cores.
	solo, err := RunSolo(spec, bw, 14, 1)
	if err != nil {
		t.Fatal(err)
	}
	soloT := solo.RunTime()

	// j2 is launched midway and contends only for part of j1's run:
	// j1's run time must land strictly between solo and fully-contended.
	full := func() float64 {
		e, _ := New(spec)
		a := &Job{ID: 1, Prog: bw, Procs: 14, Nodes: []int{0}, CoresByNode: []int{14}}
		b := &Job{ID: 2, Prog: bw, Procs: 14, Nodes: []int{0}, CoresByNode: []int{14}}
		_ = e.Launch(a)
		_ = e.Launch(b)
		e.Run(0)
		return a.RunTime()
	}()

	e, _ := New(spec)
	a := &Job{ID: 1, Prog: bw, Procs: 14, Nodes: []int{0}, CoresByNode: []int{14}}
	if err := e.Launch(a); err != nil {
		t.Fatal(err)
	}
	e.Queue().At(soloT/2, func() {
		b := &Job{ID: 2, Prog: bw, Procs: 14, Nodes: []int{0}, CoresByNode: []int{14}}
		if err := e.Launch(b); err != nil {
			t.Fatal(err)
		}
	})
	e.Run(0)
	if !(a.RunTime() > soloT*1.01 && a.RunTime() < full*0.99) {
		t.Errorf("partially-contended run time %.1f s not between solo %.1f and contended %.1f",
			a.RunTime(), soloT, full)
	}
}

func TestLaunchValidation(t *testing.T) {
	cat := catalog(t)
	spec := hw.DefaultClusterSpec()
	mg := prog(t, cat, "MG")
	gan := prog(t, cat, "GAN")
	e, err := New(spec)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		job  *Job
	}{
		{"no program", &Job{ID: 1, Procs: 4, Nodes: []int{0}, CoresByNode: []int{4}}},
		{"no placement", &Job{ID: 1, Prog: mg, Procs: 4}},
		{"mismatched cores", &Job{ID: 1, Prog: mg, Procs: 4, Nodes: []int{0}, CoresByNode: []int{3}}},
		{"node out of range", &Job{ID: 1, Prog: mg, Procs: 4, Nodes: []int{88}, CoresByNode: []int{4}}},
		{"zero cores entry", &Job{ID: 1, Prog: mg, Procs: 4, Nodes: []int{0, 1}, CoresByNode: []int{4, 0}}},
		{"oversubscribed cores", &Job{ID: 1, Prog: mg, Procs: 32, Nodes: []int{0}, CoresByNode: []int{32}}},
		{"single-node program spread", &Job{ID: 1, Prog: gan, Procs: 16, Nodes: []int{0, 1}, CoresByNode: []int{8, 8}}},
	}
	for _, c := range cases {
		if err := e.Launch(c.job); err == nil {
			t.Errorf("%s: Launch succeeded, want error", c.name)
		}
	}
	ok := &Job{ID: 5, Prog: mg, Procs: 16, Nodes: []int{0}, CoresByNode: []int{16}}
	if err := e.Launch(ok); err != nil {
		t.Fatalf("valid Launch failed: %v", err)
	}
	if err := e.Launch(ok); err == nil {
		t.Error("relaunching a running job succeeded")
	}
	dup := &Job{ID: 5, Prog: mg, Procs: 4, Nodes: []int{1}, CoresByNode: []int{4}}
	if err := e.Launch(dup); err == nil {
		t.Error("duplicate job id accepted")
	}
	tooManyWays := &Job{ID: 6, Prog: mg, Procs: 4, Nodes: []int{2}, CoresByNode: []int{4}, Ways: 21}
	if err := e.Launch(tooManyWays); err == nil {
		t.Error("LLC oversubscription accepted")
	}
}

func TestSetJobWays(t *testing.T) {
	cat := catalog(t)
	spec := hw.DefaultClusterSpec()
	cg := prog(t, cat, "CG")
	e, _ := New(spec)
	j := &Job{ID: 1, Prog: cg, Procs: 16, Nodes: []int{0}, CoresByNode: []int{16}}
	if err := e.Launch(j); err != nil {
		t.Fatal(err)
	}
	fullM, _ := e.JobMetrics(1)
	if err := e.SetJobWays(1, 2); err != nil {
		t.Fatalf("SetJobWays: %v", err)
	}
	squeezed, _ := e.JobMetrics(1)
	if squeezed.IPC >= fullM.IPC {
		t.Errorf("IPC with 2 ways (%.3f) not below full ways (%.3f)", squeezed.IPC, fullM.IPC)
	}
	if squeezed.MissPct <= fullM.MissPct {
		t.Errorf("miss rate with 2 ways (%.1f) not above full ways (%.1f)",
			squeezed.MissPct, fullM.MissPct)
	}
	if err := e.SetJobWays(1, 0); err != nil {
		t.Fatalf("SetJobWays restore: %v", err)
	}
	restored, _ := e.JobMetrics(1)
	if math.Abs((restored.IPC - fullM.IPC).Float64()) > 1e-9 {
		t.Errorf("IPC after restore = %.4f, want %.4f", restored.IPC, fullM.IPC)
	}
	if err := e.SetJobWays(99, 4); err == nil {
		t.Error("SetJobWays on unknown job succeeded")
	}
	if err := e.SetJobWays(1, 99); err == nil {
		t.Error("SetJobWays out of range succeeded")
	}
}

func TestCountersConsistency(t *testing.T) {
	cat := catalog(t)
	spec := hw.DefaultClusterSpec()
	mg := prog(t, cat, "MG")
	e, _ := New(spec)
	j := &Job{ID: 1, Prog: mg, Procs: 16, Nodes: []int{0}, CoresByNode: []int{16}}
	if err := e.Launch(j); err != nil {
		t.Fatal(err)
	}
	e.Run(0)
	c, err := e.JobCounters(1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c.Elapsed.Float64()-j.RunTime()) > 1e-6 {
		t.Errorf("Elapsed = %.3f, want run time %.3f", c.Elapsed, j.RunTime())
	}
	// Instructions must equal per-process work x processes.
	wantInstr := mg.WorkGI * 16
	if math.Abs(c.Instructions.Float64()-wantInstr) > 1e-6*wantInstr {
		t.Errorf("Instructions = %.1f G, want %.1f G", c.Instructions, wantInstr)
	}
	if c.IPC() <= 0 || c.IPC().Float64() > mg.IPCMax {
		t.Errorf("measured IPC %.3f outside (0, %.3f]", c.IPC(), mg.IPCMax)
	}
	// MG's measured bandwidth should be near the node's contended peak
	// (the paper measures 112 GB/s).
	if bwv := c.Bandwidth(); bwv < 100 || bwv > 119 {
		t.Errorf("MG 1-node bandwidth = %.1f GB/s, want ~110", bwv)
	}
}

func TestEvenSplit(t *testing.T) {
	cases := []struct {
		procs, n int
		want     []int
	}{
		{16, 1, []int{16}},
		{16, 2, []int{8, 8}},
		{28, 8, []int{4, 4, 4, 4, 3, 3, 3, 3}},
		{5, 3, []int{2, 2, 1}},
		{0, 3, nil},
		{4, 0, nil},
	}
	for _, c := range cases {
		got := EvenSplit(c.procs, c.n)
		if len(got) != len(c.want) {
			t.Errorf("EvenSplit(%d,%d) = %v, want %v", c.procs, c.n, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("EvenSplit(%d,%d) = %v, want %v", c.procs, c.n, got, c.want)
				break
			}
		}
	}
}

func TestPlaceEvenConstraints(t *testing.T) {
	cat := catalog(t)
	mg := prog(t, cat, "MG")
	gan := prog(t, cat, "GAN")
	if _, err := PlaceEven(mg, 0, 16, 3, 8); err == nil {
		t.Error("PlaceEven allowed uneven power-of-2 split")
	}
	if _, err := PlaceEven(gan, 0, 16, 2, 8); err == nil {
		t.Error("PlaceEven spread a single-node program")
	}
	if _, err := PlaceEven(mg, 0, 16, 9, 8); err == nil {
		t.Error("PlaceEven exceeded cluster size")
	}
	if _, err := PlaceEven(mg, 0, 0, 1, 8); err == nil {
		t.Error("PlaceEven accepted zero processes")
	}
	if _, err := PlaceEven(mg, 0, 2, 4, 8); err == nil {
		t.Error("PlaceEven spread 2 processes over 4 nodes")
	}
	j, err := PlaceEven(mg, 7, 16, 4, 8)
	if err != nil {
		t.Fatalf("PlaceEven: %v", err)
	}
	if j.SpanNodes() != 4 || j.TotalCores() != 16 {
		t.Errorf("PlaceEven built %d nodes, %d cores; want 4, 16", j.SpanNodes(), j.TotalCores())
	}
}

func TestMonitorSamples(t *testing.T) {
	cat := catalog(t)
	spec := hw.DefaultClusterSpec()
	mg := prog(t, cat, "MG")
	e, _ := New(spec)
	j := &Job{ID: 1, Prog: mg, Procs: 16, Nodes: []int{0}, CoresByNode: []int{16}}
	if err := e.Launch(j); err != nil {
		t.Fatal(err)
	}
	r := &pmu.Recorder{Interval: 30}
	e.Monitor(r, 0)
	e.Run(0)
	if len(r.Samples) == 0 {
		t.Fatal("monitor recorded no samples")
	}
	sawTraffic := false
	for _, s := range r.Samples {
		if s.Node == 0 && s.BandwidthGB > 50 {
			sawTraffic = true
		}
		if s.Node != 0 && s.BandwidthGB != 0 {
			t.Errorf("idle node %d shows bandwidth %.1f", s.Node, s.BandwidthGB)
		}
	}
	if !sawTraffic {
		t.Error("monitor never saw MG's memory traffic on node 0")
	}
	series := r.ByNode(spec.Nodes)
	if len(series[0]) < 3 {
		t.Errorf("node 0 has %d samples, want several over a %.0f s run", len(series[0]), j.RunTime())
	}
}

func TestJobAccessors(t *testing.T) {
	cat := catalog(t)
	spec := hw.DefaultClusterSpec()
	hc := prog(t, cat, "HC")
	e, _ := New(spec)
	j := &Job{ID: 3, Prog: hc, Procs: 16, Submit: 0, Nodes: []int{0}, CoresByNode: []int{16}}
	e.Queue().At(10, func() {
		if err := e.Launch(j); err != nil {
			t.Errorf("Launch: %v", err)
		}
	})
	e.Run(0)
	if j.WaitTime() != 10 {
		t.Errorf("WaitTime = %g, want 10", j.WaitTime())
	}
	if math.Abs(j.Turnaround()-(10+j.RunTime())) > 1e-9 {
		t.Errorf("Turnaround = %g, want wait+run", j.Turnaround())
	}
	if j.NodeSeconds() != j.RunTime() {
		t.Errorf("NodeSeconds = %g, want run time for 1 node", j.NodeSeconds())
	}
	if _, ok := e.Job(3); !ok {
		t.Error("Job(3) not found")
	}
	if _, ok := e.Job(99); ok {
		t.Error("Job(99) found")
	}
	if _, err := e.JobMetrics(99); err == nil {
		t.Error("JobMetrics(99) succeeded")
	}
	if _, err := e.JobCounters(99); err == nil {
		t.Error("JobCounters(99) succeeded")
	}
}

func TestStateString(t *testing.T) {
	if Pending.String() != "pending" || Running.String() != "running" || Done.String() != "done" {
		t.Error("state names wrong")
	}
	if State(9).String() != "State(9)" {
		t.Error("unknown state name wrong")
	}
}

// TestEngineDeterminism: two identical simulations produce identical
// timings — the property every experiment's reproducibility rests on.
func TestEngineDeterminism(t *testing.T) {
	cat := catalog(t)
	spec := hw.DefaultClusterSpec()
	run := func() []float64 {
		e, err := New(spec)
		if err != nil {
			t.Fatal(err)
		}
		e.PhasesOn = true
		progs := []string{"MG", "CG", "HC", "BW", "TS", "EP"}
		for i, name := range progs {
			j := &Job{ID: i, Prog: prog(t, cat, name), Procs: 14,
				Nodes: []int{i % 3}, CoresByNode: []int{14}}
			if err := e.Launch(j); err != nil {
				t.Fatal(err)
			}
		}
		e.Run(0)
		var out []float64
		for i := range progs {
			j, _ := e.Job(i)
			out = append(out, j.Finish)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic finish for job %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// TestWorkConservation: instructions retired equal the program's defined
// work regardless of contention or placement.
func TestWorkConservation(t *testing.T) {
	cat := catalog(t)
	spec := hw.DefaultClusterSpec()
	bw := prog(t, cat, "BW")
	e, _ := New(spec)
	j1 := &Job{ID: 1, Prog: bw, Procs: 14, Nodes: []int{0}, CoresByNode: []int{14}}
	j2 := &Job{ID: 2, Prog: bw, Procs: 14, Nodes: []int{0}, CoresByNode: []int{14}}
	if err := e.Launch(j1); err != nil {
		t.Fatal(err)
	}
	if err := e.Launch(j2); err != nil {
		t.Fatal(err)
	}
	e.Run(0)
	for _, id := range []int{1, 2} {
		c, err := e.JobCounters(id)
		if err != nil {
			t.Fatal(err)
		}
		want := bw.WorkGI * 14
		if d := (c.Instructions.Float64() - want) / want; d > 1e-6 || d < -1e-6 {
			t.Errorf("job %d retired %.2f G instructions, want %.2f", id, c.Instructions, want)
		}
	}
}
