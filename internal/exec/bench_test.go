package exec

import (
	"testing"

	"spreadnshare/internal/app"
	"spreadnshare/internal/hw"
)

func benchCatalog(b *testing.B) *app.Catalog {
	b.Helper()
	cat, err := app.NewCatalog(hw.DefaultNodeSpec())
	if err != nil {
		b.Fatal(err)
	}
	return cat
}

// BenchmarkSoloRun measures one full exclusive simulation end to end.
func BenchmarkSoloRun(b *testing.B) {
	cat := benchCatalog(b)
	spec := hw.DefaultClusterSpec()
	mg, _ := cat.Lookup("MG")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunSolo(spec, mg, 16, 2); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkContendedNode measures the contention-resolution hot path: six
// jobs sharing one node, resolved on every membership change.
func BenchmarkContendedNode(b *testing.B) {
	cat := benchCatalog(b)
	spec := hw.DefaultClusterSpec()
	names := []string{"MG", "CG", "EP", "HC", "BW", "WC"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e, err := New(spec)
		if err != nil {
			b.Fatal(err)
		}
		for id, name := range names {
			m, _ := cat.Lookup(name)
			j := &Job{ID: id, Prog: m, Procs: 4, Nodes: []int{0}, CoresByNode: []int{4}}
			if err := e.Launch(j); err != nil {
				b.Fatal(err)
			}
		}
		e.Run(0)
	}
}
