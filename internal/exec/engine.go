package exec

import (
	"fmt"
	"sort"

	"spreadnshare/internal/hw"
	"spreadnshare/internal/interconnect"
	"spreadnshare/internal/pmu"
	"spreadnshare/internal/sim"
)

// Engine executes jobs on a simulated cluster.
type Engine struct {
	spec     hw.ClusterSpec
	net      interconnect.Model
	q        *sim.Queue
	nodes    []map[int]*Job // node id -> jobs running there
	jobs     map[int]*Job
	onFinish []func(*Job)

	// PhasesOn enables program bandwidth-phase simulation: jobs whose
	// model declares a PhaseAmp alternate between high- and
	// low-bandwidth phases, temporarily exceeding their profiled
	// average demand. Set before launching jobs. Off by default so
	// calibration runs reproduce the profiled averages exactly.
	PhasesOn bool
}

// New creates an engine for the given cluster.
func New(spec hw.ClusterSpec) (*Engine, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	e := &Engine{
		spec:  spec,
		net:   interconnect.Model{BandwidthGB: spec.Node.NICBandwidth, LatencyUS: spec.Node.NICLatencyUS},
		q:     &sim.Queue{},
		nodes: make([]map[int]*Job, spec.Nodes),
		jobs:  make(map[int]*Job),
	}
	for i := range e.nodes {
		e.nodes[i] = make(map[int]*Job)
	}
	return e, nil
}

// Spec returns the cluster spec.
func (e *Engine) Spec() hw.ClusterSpec { return e.spec }

// Queue exposes the event queue so schedulers can add arrival or
// monitoring events.
func (e *Engine) Queue() *sim.Queue { return e.q }

// Now returns the simulation clock.
func (e *Engine) Now() float64 { return e.q.Now() }

// OnFinish registers a callback fired when any job completes, after its
// resources are released (so schedulers see the freed capacity).
func (e *Engine) OnFinish(fn func(*Job)) { e.onFinish = append(e.onFinish, fn) }

// Job returns a job by id.
func (e *Engine) Job(id int) (*Job, bool) {
	j, ok := e.jobs[id]
	return j, ok
}

// Launch starts a job at the current time with the placement recorded in
// its Nodes/CoresByNode/Ways fields.
func (e *Engine) Launch(j *Job) error {
	if j.State != Pending {
		return fmt.Errorf("exec: job %d is %v, not pending", j.ID, j.State)
	}
	if _, ok := e.jobs[j.ID]; ok {
		return fmt.Errorf("exec: duplicate job id %d", j.ID)
	}
	if j.Prog == nil {
		return fmt.Errorf("exec: job %d has no program", j.ID)
	}
	if len(j.Nodes) == 0 || len(j.Nodes) != len(j.CoresByNode) {
		return fmt.Errorf("exec: job %d placement malformed (%d nodes, %d core entries)",
			j.ID, len(j.Nodes), len(j.CoresByNode))
	}
	if j.TotalCores() != j.Procs {
		return fmt.Errorf("exec: job %d places %d cores for %d processes", j.ID, j.TotalCores(), j.Procs)
	}
	if !j.Prog.MultiNode && len(j.Nodes) > 1 {
		return fmt.Errorf("exec: job %d program %s is single-node but placed on %d nodes",
			j.ID, j.Prog.Name, len(j.Nodes))
	}
	for i, n := range j.Nodes {
		if n < 0 || n >= e.spec.Nodes {
			return fmt.Errorf("exec: job %d node %d out of range", j.ID, n)
		}
		if j.CoresByNode[i] <= 0 {
			return fmt.Errorf("exec: job %d has %d cores on node %d", j.ID, j.CoresByNode[i], n)
		}
		used := j.CoresByNode[i]
		ways := j.Ways
		for _, other := range e.nodes[n] {
			used += other.coresOn(n)
			ways += other.Ways
		}
		if used > e.spec.Node.Cores {
			return fmt.Errorf("exec: node %d oversubscribed: %d cores > %d", n, used, e.spec.Node.Cores)
		}
		if ways > e.spec.Node.LLCWays {
			return fmt.Errorf("exec: node %d LLC oversubscribed: %d ways > %d", n, ways, e.spec.Node.LLCWays)
		}
	}
	j.State = Running
	j.Start = e.q.Now()
	j.lastT = j.Start
	j.remaining = 1
	j.shares = make(map[int]nodeShare, len(j.Nodes))
	e.jobs[j.ID] = j
	j.phaseMul = 1
	dirty := make(map[int]bool, len(j.Nodes))
	for _, n := range j.Nodes {
		e.nodes[n][j.ID] = j
		dirty[n] = true
	}
	if e.PhasesOn && j.Prog.PhaseAmp > 0 && j.Prog.PhasePeriodSec > 0 {
		j.phaseMul = 1 + j.Prog.PhaseAmp
		e.schedulePhaseFlip(j)
	}
	e.recompute(dirty)
	return nil
}

// schedulePhaseFlip arranges the job's next bandwidth-phase transition.
func (e *Engine) schedulePhaseFlip(j *Job) {
	e.q.At(e.q.Now()+j.Prog.PhasePeriodSec, func() {
		if j.State != Running {
			return
		}
		if j.phaseMul > 1 {
			j.phaseMul = 1 - j.Prog.PhaseAmp
		} else {
			j.phaseMul = 1 + j.Prog.PhaseAmp
		}
		dirty := make(map[int]bool, len(j.Nodes))
		for _, n := range j.Nodes {
			dirty[n] = true
		}
		e.recompute(dirty)
		e.schedulePhaseFlip(j)
	})
}

// coresOn returns the job's core count on node n (0 if not placed there).
func (j *Job) coresOn(n int) int {
	for i, id := range j.Nodes {
		if id == n {
			return j.CoresByNode[i]
		}
	}
	return 0
}

// SetJobWays forces the node-level LLC allocation of a running job — the
// profiler's CAT manipulation. Passing 0 restores the launch allocation.
func (e *Engine) SetJobWays(id, ways int) error {
	j, ok := e.jobs[id]
	if !ok || j.State != Running {
		return fmt.Errorf("exec: job %d not running", id)
	}
	if ways < 0 || ways > e.spec.Node.LLCWays {
		return fmt.Errorf("exec: way override %d out of range", ways)
	}
	j.wayOverride = ways
	dirty := make(map[int]bool, len(j.Nodes))
	for _, n := range j.Nodes {
		dirty[n] = true
	}
	e.recompute(dirty)
	return nil
}

// JobMetrics returns the job's instantaneous simulated PMU reading.
func (e *Engine) JobMetrics(id int) (pmu.Metrics, error) {
	j, ok := e.jobs[id]
	if !ok {
		return pmu.Metrics{}, fmt.Errorf("exec: unknown job %d", id)
	}
	return j.metrics, nil
}

// JobCounters returns cumulative counters, advanced to the current time.
func (e *Engine) JobCounters(id int) (pmu.Counters, error) {
	j, ok := e.jobs[id]
	if !ok {
		return pmu.Counters{}, fmt.Errorf("exec: unknown job %d", id)
	}
	if j.State == Running {
		e.advance(j)
	}
	return j.counters, nil
}

// NodeBandwidth returns the instantaneous achieved memory bandwidth on a
// node in GB/s (traffic actually flowing, weighted by each job's compute
// fraction).
func (e *Engine) NodeBandwidth(n int) float64 {
	bw := 0.0
	for _, j := range e.nodes[n] {
		if sh, ok := j.shares[n]; ok {
			bw += sh.grant * j.computeFrac
		}
	}
	return bw
}

// NodeActiveCores returns the number of occupied cores on a node.
func (e *Engine) NodeActiveCores(n int) int {
	c := 0
	for _, j := range e.nodes[n] {
		c += j.coresOn(n)
	}
	return c
}

// Monitor installs a periodic recorder sampling every node's bandwidth
// and occupancy, mirroring the paper's 30-second monitoring episodes.
// Sampling stops after horizon (0 = run forever while events remain).
func (e *Engine) Monitor(rec *pmu.Recorder, horizon float64) {
	var tick func()
	tick = func() {
		now := e.q.Now()
		for n := range e.nodes {
			rec.Record(pmu.NodeSample{
				Time: now, Node: n,
				BandwidthGB: e.NodeBandwidth(n),
				ActiveCores: e.NodeActiveCores(n),
			})
		}
		if horizon > 0 && now+rec.Interval > horizon {
			return
		}
		if e.q.Len() > 0 { // stop ticking once the workload has drained
			e.q.At(now+rec.Interval, tick)
		}
	}
	e.q.At(e.q.Now(), tick)
}

// Run drives the simulation until the event queue empties or the horizon
// passes. It returns the number of events processed.
func (e *Engine) Run(horizon float64) int { return e.q.Run(horizon) }

// advance brings a running job's progress and counters up to now.
func (e *Engine) advance(j *Job) {
	now := e.q.Now()
	dt := now - j.lastT
	if dt <= 0 {
		return
	}
	j.remaining -= j.rate * dt
	if j.remaining < 0 {
		j.remaining = 0
	}
	cores := float64(j.TotalCores())
	j.counters.Elapsed += dt
	j.counters.Cycles += e.spec.Node.FreqGHz * cores * dt
	j.counters.Instructions += j.perCoreRate * j.computeFrac * cores * dt
	j.counters.CommSeconds += (1 - j.computeFrac) * dt
	traffic := 0.0
	for _, sh := range j.shares {
		traffic += sh.grant
	}
	j.counters.TrafficGB += traffic * j.computeFrac * dt
	j.lastT = now
}

// recompute resolves contention on the dirty nodes and refreshes the
// rates and finish events of every job touching them.
func (e *Engine) recompute(dirty map[int]bool) {
	affected := make(map[int]*Job)
	for n := range dirty {
		for id, j := range e.nodes[n] {
			affected[id] = j
		}
	}
	// Advance all affected jobs under their previous rates first.
	ids := make([]int, 0, len(affected))
	for id := range affected {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		e.advance(affected[id])
	}
	// Resolve each dirty node.
	nodeIDs := make([]int, 0, len(dirty))
	for n := range dirty {
		nodeIDs = append(nodeIDs, n)
	}
	sort.Ints(nodeIDs)
	for _, n := range nodeIDs {
		e.resolveNode(n)
	}
	// Refresh job-level rates and finish events.
	for _, id := range ids {
		e.refreshJob(affected[id])
	}
}

// resolveNode computes every resident job's share of the node's LLC and
// memory bandwidth.
func (e *Engine) resolveNode(n int) {
	node := e.nodes[n]
	if len(node) == 0 {
		return
	}
	ids := make([]int, 0, len(node))
	for id := range node {
		ids = append(ids, id)
	}
	sort.Ints(ids)

	spec := e.spec.Node
	totalCores := 0
	for _, id := range ids {
		totalCores += node[id].coresOn(n)
	}

	// LLC ways: CAT-managed jobs keep their partitions; the remainder
	// is the free pool. With only managed jobs the pool is given away
	// in equal shares and reclaimed when a new job arrives (Section
	// 4.4) — except to jobs under a profiler way-override, whose
	// allocation must stay exact. Unmanaged jobs (CE/CS) split the
	// pool in proportion to their core-weighted miss traffic: in an
	// uncontrolled shared cache, occupancy follows eviction pressure,
	// so a streaming thrasher squeezes out a reuse-friendly neighbor.
	ways := make(map[int]float64, len(ids))
	managedTotal := 0.0
	var unmanaged, giveaway []int
	for _, id := range ids {
		j := node[id]
		w := j.Ways
		if j.wayOverride > 0 {
			w = j.wayOverride
		}
		if w > 0 {
			ways[id] = float64(w)
			managedTotal += float64(w)
			if j.wayOverride == 0 {
				giveaway = append(giveaway, id)
			}
		} else {
			unmanaged = append(unmanaged, id)
		}
	}
	pool := float64(spec.LLCWays) - managedTotal
	if pool < 0 {
		pool = 0
	}
	if len(unmanaged) > 0 {
		weight := 0.0
		pressure := func(j *Job) float64 {
			return float64(j.coresOn(n)) * (0.05 + j.Prog.BWPerCoreRef)
		}
		for _, id := range unmanaged {
			weight += pressure(node[id])
		}
		for _, id := range unmanaged {
			ways[id] = pool * pressure(node[id]) / weight
		}
	} else if pool > 0 && len(giveaway) > 0 {
		share := pool / float64(len(giveaway))
		for _, id := range giveaway {
			ways[id] += share
		}
	}

	// Memory bandwidth: demands are water-filled against the roofline
	// for the node's active core count.
	demands := make([]float64, len(ids))
	rawDemands := make([]float64, len(ids))
	effWays := make([]float64, len(ids))
	for i, id := range ids {
		j := node[id]
		cores := j.coresOn(n)
		eff := j.Prog.EffectiveWays(ways[id], cores)
		effWays[i] = eff
		spread := j.SpanNodes() > 1
		d := float64(cores) * j.Prog.BWDemandPerCore(eff, totalCores, spec.Cores, spread)
		if j.phaseMul > 0 {
			d *= j.phaseMul
		}
		rawDemands[i] = d
		// MBA throttling caps what the job may request; the slowdown
		// from running under the cap shows up through the throttle
		// ratio against the raw (unthrottled) demand below.
		if j.BWCap > 0 && d > j.BWCap {
			d = j.BWCap
		}
		demands[i] = d
	}
	grants := hw.WaterFill(spec.StreamBandwidth(totalCores), demands)

	// I/O bandwidth to the shared file system is a third contended
	// resource, water-filled against the node's injection limit.
	ioDemands := make([]float64, len(ids))
	for i, id := range ids {
		j := node[id]
		ioDemands[i] = float64(j.coresOn(n)) * j.Prog.IOBWPerCore
	}
	ioGrants := hw.WaterFill(spec.IOBandwidth, ioDemands)

	for i, id := range ids {
		j := node[id]
		cores := j.coresOn(n)
		spread := j.SpanNodes() > 1
		throttle := 1.0
		if rawDemands[i] > 0 && grants[i] < rawDemands[i] {
			throttle = grants[i] / rawDemands[i]
		}
		if ioDemands[i] > 0 && ioGrants[i] < ioDemands[i] {
			if t := ioGrants[i] / ioDemands[i]; t < throttle {
				throttle = t
			}
		}
		ipc := j.Prog.IPC(effWays[i], totalCores, spec.Cores)
		j.shares[n] = nodeShare{
			rate:    ipc * spec.FreqGHz * throttle,
			grant:   grants[i],
			demand:  rawDemands[i],
			ioGrant: ioGrants[i],
			missPct: j.Prog.MissPct(effWays[i], spread),
			effWays: effWays[i],
			cores:   cores,
		}
	}
}

// refreshJob recomputes a job's completion rate from its per-node shares
// and reschedules its finish event.
func (e *Engine) refreshJob(j *Job) {
	if j.State != Running {
		return
	}
	// Gating rate: the slowest node limits lock-step parallel progress.
	minRate := -1.0
	missSum, grantSum, ioSum, wayseffSum := 0.0, 0.0, 0.0, 0.0
	for _, n := range j.Nodes {
		sh := j.shares[n]
		if minRate < 0 || sh.rate < minRate {
			minRate = sh.rate
		}
		missSum += sh.missPct
		grantSum += sh.grant
		ioSum += sh.ioGrant
		wayseffSum += sh.effWays
	}
	nn := float64(len(j.Nodes))
	j.perCoreRate = minRate

	work := j.Prog.WorkPerProcess(j.SpanNodes())
	comm := j.Prog.CommSeconds(j.SpanNodes())
	j.commInflation = e.commInflation(j)
	comm *= j.commInflation

	var computeSec float64
	if minRate > 0 {
		computeSec = work / minRate
	}
	total := computeSec + comm
	if minRate <= 0 || total <= 0 {
		j.rate = 0
		j.computeFrac = 0
	} else {
		j.rate = 1 / total
		j.computeFrac = computeSec / total
	}
	j.metrics = pmu.Metrics{
		IPC:           j.perCoreRate / e.spec.Node.FreqGHz * j.computeFrac,
		BWPerNode:     grantSum / nn * j.computeFrac,
		BWTotal:       grantSum * j.computeFrac,
		IOPerNode:     ioSum / nn * j.computeFrac,
		MissPct:       missSum / nn,
		ComputeFrac:   j.computeFrac,
		EffectiveWays: wayseffSum / nn,
	}
	// Reschedule completion.
	e.q.Cancel(j.finishEv)
	j.finishEv = nil
	if j.rate > 0 {
		at := e.q.Now() + j.remaining/j.rate
		j.finishEv = e.q.At(at, func() { e.finish(j) })
	}
}

// commInflation estimates NIC contention: on each of the job's nodes, sum
// the uncontended NIC-utilization fractions of all spread jobs; the worst
// node stretches this job's communication.
func (e *Engine) commInflation(j *Job) float64 {
	if j.SpanNodes() <= 1 {
		return 1
	}
	worst := 1.0
	for _, n := range j.Nodes {
		var utils []float64
		for _, other := range e.nodes[n] {
			if other.SpanNodes() <= 1 {
				continue
			}
			w := other.Prog.WorkPerProcess(other.SpanNodes())
			c := other.Prog.CommSeconds(other.SpanNodes())
			r := other.perCoreRate
			if r <= 0 {
				// Not yet rated (fresh launch): use solo rate.
				r = other.Prog.IPCMax * e.spec.Node.FreqGHz
			}
			utils = append(utils, c/(w/r+c))
		}
		if f := interconnect.Inflation(utils); f > worst {
			worst = f
		}
	}
	return worst
}

// Cancel aborts a running job immediately: its resources are released,
// co-runners re-rate, and OnFinish listeners fire with the job in
// Cancelled state. Used for failure injection and operator kills.
func (e *Engine) Cancel(id int) error {
	j, ok := e.jobs[id]
	if !ok || j.State != Running {
		return fmt.Errorf("exec: job %d not running", id)
	}
	e.advance(j)
	j.State = Cancelled
	j.Finish = e.q.Now()
	j.rate = 0
	e.q.Cancel(j.finishEv)
	j.finishEv = nil
	dirty := make(map[int]bool, len(j.Nodes))
	for _, n := range j.Nodes {
		delete(e.nodes[n], j.ID)
		dirty[n] = true
	}
	e.recompute(dirty)
	for _, fn := range e.onFinish {
		fn(j)
	}
	return nil
}

// finish completes a job: releases its nodes and notifies listeners.
func (e *Engine) finish(j *Job) {
	if j.State != Running {
		return
	}
	e.advance(j)
	j.State = Done
	j.Finish = e.q.Now()
	j.rate = 0
	e.q.Cancel(j.finishEv)
	j.finishEv = nil
	dirty := make(map[int]bool, len(j.Nodes))
	for _, n := range j.Nodes {
		delete(e.nodes[n], j.ID)
		dirty[n] = true
	}
	e.recompute(dirty)
	for _, fn := range e.onFinish {
		fn(j)
	}
}
