package exec

import (
	"fmt"

	"spreadnshare/internal/hw"
	"spreadnshare/internal/interconnect"
	"spreadnshare/internal/pmu"
	"spreadnshare/internal/sim"
	"spreadnshare/internal/units"
)

// resident is one job's presence on one node: the job plus its cached
// core count there and the index of that node in the job's placement
// (so per-node results can be written straight into job.shares without
// any lookup).
type resident struct {
	job   *Job
	cores int // cores the job holds on this node
	slot  int // index into job.Nodes / job.shares for this node
}

// Engine executes jobs on a simulated cluster.
//
// The engine is single-goroutine: one simulation drives one engine, and
// all scratch state below is reused across events under that invariant.
// Cross-sequence parallelism lives a level up (one engine per sequence,
// as in experiments.RunSequences).
type Engine struct {
	spec     hw.ClusterSpec
	net      interconnect.Model
	q        *sim.Queue
	nodes    [][]resident // per node, residents sorted by job ID
	jobs     map[int]*Job
	onFinish []func(*Job)

	// Scratch buffers, reused by every recompute so the steady-state
	// event loop performs no heap allocations. Each is reset (not
	// reallocated) at the start of the pass that uses it.
	dirtyMark []bool // per-node membership flag for dirtyList
	dirtyList []int  // nodes whose population or allocation changed
	affected  []*Job // jobs touching a dirty node, sorted by ID
	epoch     uint64 // recompute stamp for affected-job dedup
	scratch   resolveScratch

	// audit, when set, runs after every recompute — the invariant
	// auditor's hook point. It must not mutate engine state and must
	// not allocate: the recompute path is pinned at zero steady-state
	// allocations by alloc_test.go, auditor included.
	audit func()

	// PhasesOn enables program bandwidth-phase simulation: jobs whose
	// model declares a PhaseAmp alternate between high- and
	// low-bandwidth phases, temporarily exceeding their profiled
	// average demand. Set before launching jobs. Off by default so
	// calibration runs reproduce the profiled averages exactly.
	PhasesOn bool
}

// resolveScratch holds resolveNode's and commInflation's per-call
// working arrays, sized to the largest resident population seen.
type resolveScratch struct {
	ways       []float64
	demands    []float64
	rawDemands []float64
	effWays    []float64
	ioDemands  []float64
	grants     []float64
	ioGrants   []float64
	order      []int // water-fill index scratch
	unmanaged  []int // resident indices without a CAT partition
	giveaway   []int // resident indices eligible for free-pool shares
	utils      []float64
}

// New creates an engine for the given cluster.
func New(spec hw.ClusterSpec) (*Engine, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	e := &Engine{
		spec:      spec,
		net:       interconnect.Model{BandwidthGB: spec.Node.NICBandwidth.Float64(), LatencyUS: spec.Node.NICLatencyUS},
		q:         &sim.Queue{},
		nodes:     make([][]resident, spec.Nodes),
		jobs:      make(map[int]*Job),
		dirtyMark: make([]bool, spec.Nodes),
	}
	return e, nil
}

// Spec returns the cluster spec.
func (e *Engine) Spec() hw.ClusterSpec { return e.spec }

// Queue exposes the event queue so schedulers can add arrival or
// monitoring events.
func (e *Engine) Queue() *sim.Queue { return e.q }

// Now returns the simulation clock.
func (e *Engine) Now() float64 { return e.q.Now() }

// OnFinish registers a callback fired when any job completes, after its
// resources are released (so schedulers see the freed capacity).
func (e *Engine) OnFinish(fn func(*Job)) { e.onFinish = append(e.onFinish, fn) }

// Job returns a job by id.
func (e *Engine) Job(id int) (*Job, bool) {
	j, ok := e.jobs[id]
	return j, ok
}

// insertResident places r into node n's resident list, keeping it
// sorted by job ID.
func (e *Engine) insertResident(n int, r resident) {
	s := e.nodes[n]
	i := len(s)
	for i > 0 && s[i-1].job.ID > r.job.ID {
		i--
	}
	s = append(s, resident{})
	copy(s[i+1:], s[i:])
	s[i] = r
	e.nodes[n] = s
}

// removeResident deletes job id from node n's resident list with a
// shift, preserving order.
func (e *Engine) removeResident(n, id int) {
	s := e.nodes[n]
	for i := range s {
		if s[i].job.ID == id {
			copy(s[i:], s[i+1:])
			s[len(s)-1] = resident{}
			e.nodes[n] = s[:len(s)-1]
			return
		}
	}
}

// markDirty adds node n to the pending recompute set.
//
//sns:hotpath
func (e *Engine) markDirty(n int) {
	if !e.dirtyMark[n] {
		e.dirtyMark[n] = true
		//lint:allocfree dirty list grows to node count once, then stays at capacity
		e.dirtyList = append(e.dirtyList, n)
	}
}

// Launch starts a job at the current time with the placement recorded in
// its Nodes/CoresByNode/Ways fields.
func (e *Engine) Launch(j *Job) error {
	if j.State != Pending {
		return fmt.Errorf("exec: job %d is %v, not pending", j.ID, j.State)
	}
	if _, ok := e.jobs[j.ID]; ok {
		return fmt.Errorf("exec: duplicate job id %d", j.ID)
	}
	if j.Prog == nil {
		return fmt.Errorf("exec: job %d has no program", j.ID)
	}
	if len(j.Nodes) == 0 || len(j.Nodes) != len(j.CoresByNode) {
		return fmt.Errorf("exec: job %d placement malformed (%d nodes, %d core entries)",
			j.ID, len(j.Nodes), len(j.CoresByNode))
	}
	if j.TotalCores() != j.Procs {
		return fmt.Errorf("exec: job %d places %d cores for %d processes", j.ID, j.TotalCores(), j.Procs)
	}
	if !j.Prog.MultiNode && len(j.Nodes) > 1 {
		return fmt.Errorf("exec: job %d program %s is single-node but placed on %d nodes",
			j.ID, j.Prog.Name, len(j.Nodes))
	}
	for i, n := range j.Nodes {
		if n < 0 || n >= e.spec.Nodes {
			return fmt.Errorf("exec: job %d node %d out of range", j.ID, n)
		}
		if j.CoresByNode[i] <= 0 {
			return fmt.Errorf("exec: job %d has %d cores on node %d", j.ID, j.CoresByNode[i], n)
		}
		used := j.CoresByNode[i]
		ways := j.Ways
		for _, r := range e.nodes[n] {
			used += r.cores
			ways += r.job.Ways
		}
		if used > e.spec.Node.Cores.Int() {
			return fmt.Errorf("exec: node %d oversubscribed: %d cores > %d", n, used, e.spec.Node.Cores)
		}
		if ways > e.spec.Node.LLCWays {
			return fmt.Errorf("exec: node %d LLC oversubscribed: %d ways > %d", n, ways, e.spec.Node.LLCWays)
		}
	}
	j.State = Running
	j.Start = e.q.Now()
	j.lastT = j.Start
	j.remaining = 1
	j.shares = make([]nodeShare, len(j.Nodes))
	j.finishFn = func() { e.finish(j) }
	e.jobs[j.ID] = j
	j.phaseMul = 1
	for i, n := range j.Nodes {
		e.insertResident(n, resident{job: j, cores: j.CoresByNode[i], slot: i})
		e.markDirty(n)
	}
	if e.PhasesOn && j.Prog.PhaseAmp > 0 && j.Prog.PhasePeriodSec > 0 {
		j.phaseMul = 1 + j.Prog.PhaseAmp
		j.flipFn = func() { e.flipPhase(j) }
		e.q.At(e.q.Now()+j.Prog.PhasePeriodSec, j.flipFn)
	}
	e.recompute()
	return nil
}

// flipPhase toggles the job between its high- and low-bandwidth phases
// and arranges the next transition. The flip closure is created once at
// launch, so steady-state phase simulation allocates nothing.
//
//sns:hotpath
func (e *Engine) flipPhase(j *Job) {
	if j.State != Running {
		return
	}
	if j.phaseMul > 1 {
		j.phaseMul = 1 - j.Prog.PhaseAmp
	} else {
		j.phaseMul = 1 + j.Prog.PhaseAmp
	}
	for _, n := range j.Nodes {
		e.markDirty(n)
	}
	e.recompute()
	e.q.At(e.q.Now()+j.Prog.PhasePeriodSec, j.flipFn)
}

// SetJobWays forces the node-level LLC allocation of a running job — the
// profiler's CAT manipulation. Passing 0 restores the launch allocation.
func (e *Engine) SetJobWays(id int, ways units.Ways) error {
	j, ok := e.jobs[id]
	if !ok || j.State != Running {
		return fmt.Errorf("exec: job %d not running", id)
	}
	if ways < 0 || ways > e.spec.Node.LLCWays {
		return fmt.Errorf("exec: way override %d out of range", ways)
	}
	j.wayOverride = ways
	for _, n := range j.Nodes {
		e.markDirty(n)
	}
	e.recompute()
	return nil
}

// JobMetrics returns the job's instantaneous simulated PMU reading.
func (e *Engine) JobMetrics(id int) (pmu.Metrics, error) {
	j, ok := e.jobs[id]
	if !ok {
		return pmu.Metrics{}, fmt.Errorf("exec: unknown job %d", id)
	}
	return j.metrics, nil
}

// JobCounters returns cumulative counters, advanced to the current time.
func (e *Engine) JobCounters(id int) (pmu.Counters, error) {
	j, ok := e.jobs[id]
	if !ok {
		return pmu.Counters{}, fmt.Errorf("exec: unknown job %d", id)
	}
	if j.State == Running {
		e.advance(j)
	}
	return j.counters, nil
}

// NodeBandwidth returns the instantaneous achieved memory bandwidth on a
// node (traffic actually flowing, weighted by each job's compute
// fraction). Residents are summed in job-ID order, so the reading is
// bit-reproducible across runs.
func (e *Engine) NodeBandwidth(n int) units.GBps {
	bw := 0.0
	for _, r := range e.nodes[n] {
		bw += r.job.shares[r.slot].grant.Float64() * r.job.computeFrac
	}
	return units.GBpsOf(bw)
}

// NodeActiveCores returns the number of occupied cores on a node.
func (e *Engine) NodeActiveCores(n int) int {
	c := 0
	for _, r := range e.nodes[n] {
		c += r.cores
	}
	return c
}

// NodeAllocWays returns the summed CAT way allocation of the node's
// residents (launch-time allocations; profiler way-overrides are
// deliberate capacity violations and do not count).
func (e *Engine) NodeAllocWays(n int) units.Ways {
	w := units.Ways(0)
	for _, r := range e.nodes[n] {
		w += r.job.Ways
	}
	return w
}

// NodeResidentsConsistent reports whether the node's resident list
// holds strictly ID-ascending entries with positive core counts and
// placement slots that point back at this node — the ordering invariant
// every deterministic recompute pass relies on. It takes no callback so
// the invariant auditor can call it allocation-free from the recompute
// hook.
func (e *Engine) NodeResidentsConsistent(n int) bool {
	prev := -1
	for _, r := range e.nodes[n] {
		if r.job == nil || r.job.ID <= prev || r.cores <= 0 {
			return false
		}
		if r.slot < 0 || r.slot >= len(r.job.Nodes) || r.job.Nodes[r.slot] != n {
			return false
		}
		prev = r.job.ID
	}
	return true
}

// Monitor installs a periodic recorder sampling every node's bandwidth
// and occupancy, mirroring the paper's 30-second monitoring episodes.
// Sampling stops after horizon (0 = run forever while events remain).
func (e *Engine) Monitor(rec *pmu.Recorder, horizon float64) {
	var tick func()
	tick = func() {
		now := e.q.Now()
		for n := range e.nodes {
			rec.Record(pmu.NodeSample{
				Time: units.SecondsOf(now), Node: n,
				BandwidthGB: e.NodeBandwidth(n),
				ActiveCores: units.CoresOf(e.NodeActiveCores(n)),
			})
		}
		if horizon > 0 && now+rec.Interval > horizon {
			return
		}
		if e.q.Len() > 0 { // stop ticking once the workload has drained
			e.q.At(now+rec.Interval, tick)
		}
	}
	e.q.At(e.q.Now(), tick)
}

// Run drives the simulation until the event queue empties or the horizon
// passes. It returns the number of events processed.
func (e *Engine) Run(horizon float64) int { return e.q.Run(horizon) }

// advance brings a running job's progress and counters up to now.
//
//sns:hotpath
func (e *Engine) advance(j *Job) {
	now := e.q.Now()
	dt := now - j.lastT
	if dt <= 0 {
		return
	}
	j.remaining -= j.rate * dt
	if j.remaining < 0 {
		j.remaining = 0
	}
	cores := float64(j.TotalCores())
	j.counters.Elapsed += units.SecondsOf(dt)
	j.counters.Cycles += units.CyclesOf(e.spec.Node.FreqGHz.Float64() * cores * dt)
	j.counters.Instructions += units.InstrOf(j.perCoreRate * j.computeFrac * cores * dt)
	j.counters.CommSeconds += units.SecondsOf((1 - j.computeFrac) * dt)
	traffic := 0.0
	for i := range j.shares {
		traffic += j.shares[i].grant.Float64()
	}
	j.counters.TrafficGB += units.GBOf(traffic * j.computeFrac * dt)
	j.lastT = now
}

// insertionSortInts sorts s ascending. The inputs here (dirty nodes,
// typically 1-2 entries) are tiny, and unlike sort.Ints this never
// escapes to an interface value.
//
//sns:hotpath
func insertionSortInts(s []int) {
	for i := 1; i < len(s); i++ {
		for k := i; k > 0 && s[k-1] > s[k]; k-- {
			s[k-1], s[k] = s[k], s[k-1]
		}
	}
}

// insertionSortJobs sorts jobs by ID. The affected list is assembled
// from per-node lists that are already ID-sorted, so it arrives nearly
// sorted and insertion sort runs in close to linear time.
//
//sns:hotpath
func insertionSortJobs(s []*Job) {
	for i := 1; i < len(s); i++ {
		for k := i; k > 0 && s[k-1].ID > s[k].ID; k-- {
			s[k-1], s[k] = s[k], s[k-1]
		}
	}
}

// recompute resolves contention on the marked-dirty nodes and refreshes
// the rates and finish events of every job touching them. Jobs are
// advanced and refreshed in ascending ID order and nodes resolved in
// ascending node order — the same deterministic order the event queue's
// tie-breaking depends on.
//
//sns:hotpath
func (e *Engine) recompute() {
	e.epoch++
	e.affected = e.affected[:0]
	insertionSortInts(e.dirtyList)
	for _, n := range e.dirtyList {
		for _, r := range e.nodes[n] {
			if r.job.seen != e.epoch {
				r.job.seen = e.epoch
				//lint:allocfree affected scratch reaches resident-job count during warm-up, then stable
				e.affected = append(e.affected, r.job)
			}
		}
	}
	insertionSortJobs(e.affected)
	// Advance all affected jobs under their previous rates first.
	for _, j := range e.affected {
		e.advance(j)
	}
	// Resolve each dirty node.
	for _, n := range e.dirtyList {
		e.resolveNode(n)
	}
	for _, n := range e.dirtyList {
		e.dirtyMark[n] = false
	}
	e.dirtyList = e.dirtyList[:0]
	// Refresh job-level rates and finish events.
	for _, j := range e.affected {
		e.refreshJob(j)
	}
	if e.audit != nil {
		//lint:allocfree auditor hook is nil in production; the runtime gate vets audited runs
		e.audit()
	}
}

// SetAudit installs a read-only hook run after every recompute, i.e. at
// every event that changes any node's population or allocation. The
// invariant auditor attaches here.
func (e *Engine) SetAudit(fn func()) { e.audit = fn }

// growFloats returns s resized to n, reusing capacity.
//
//sns:hotpath
func growFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		//lint:allocfree capacity-miss growth path only; steady state reuses the backing array
		return make([]float64, n)
	}
	return s[:n]
}

// resolveNode computes every resident job's share of the node's LLC and
// memory bandwidth. Residents are visited in job-ID order.
//
//sns:hotpath
func (e *Engine) resolveNode(n int) {
	res := e.nodes[n]
	if len(res) == 0 {
		return
	}
	sc := &e.scratch

	spec := e.spec.Node
	totalCores := 0
	for _, r := range res {
		totalCores += r.cores
	}

	// LLC ways: CAT-managed jobs keep their partitions; the remainder
	// is the free pool. With only managed jobs the pool is given away
	// in equal shares and reclaimed when a new job arrives (Section
	// 4.4) — except to jobs under a profiler way-override, whose
	// allocation must stay exact. Unmanaged jobs (CE/CS) split the
	// pool in proportion to their core-weighted miss traffic: in an
	// uncontrolled shared cache, occupancy follows eviction pressure,
	// so a streaming thrasher squeezes out a reuse-friendly neighbor.
	sc.ways = growFloats(sc.ways, len(res))
	sc.unmanaged = sc.unmanaged[:0]
	sc.giveaway = sc.giveaway[:0]
	managedTotal := 0.0
	for i, r := range res {
		j := r.job
		w := j.Ways
		if j.wayOverride > 0 {
			w = j.wayOverride
		}
		if w > 0 {
			sc.ways[i] = w.Float64()
			managedTotal += w.Float64()
			if j.wayOverride == 0 {
				//lint:allocfree per-node scratch bounded by resident jobs, stable after warm-up
				sc.giveaway = append(sc.giveaway, i)
			}
		} else {
			sc.ways[i] = 0
			//lint:allocfree per-node scratch bounded by resident jobs, stable after warm-up
			sc.unmanaged = append(sc.unmanaged, i)
		}
	}
	pool := spec.LLCWays.Float64() - managedTotal
	if pool < 0 {
		pool = 0
	}
	if len(sc.unmanaged) > 0 {
		weight := 0.0
		for _, i := range sc.unmanaged {
			weight += float64(res[i].cores) * (0.05 + res[i].job.Prog.BWPerCoreRef)
		}
		for _, i := range sc.unmanaged {
			pressure := float64(res[i].cores) * (0.05 + res[i].job.Prog.BWPerCoreRef)
			sc.ways[i] = pool * pressure / weight
		}
	} else if pool > 0 && len(sc.giveaway) > 0 {
		share := pool / float64(len(sc.giveaway))
		for _, i := range sc.giveaway {
			sc.ways[i] += share
		}
	}

	// Memory bandwidth: demands are water-filled against the roofline
	// for the node's active core count.
	sc.demands = growFloats(sc.demands, len(res))
	sc.rawDemands = growFloats(sc.rawDemands, len(res))
	sc.effWays = growFloats(sc.effWays, len(res))
	for i, r := range res {
		j := r.job
		eff := j.Prog.EffectiveWays(sc.ways[i], r.cores)
		sc.effWays[i] = eff
		spread := j.SpanNodes() > 1
		d := float64(r.cores) * j.Prog.BWDemandPerCore(eff, totalCores, spec.Cores.Int(), spread)
		if j.phaseMul > 0 {
			d *= j.phaseMul
		}
		sc.rawDemands[i] = d
		// MBA throttling caps what the job may request; the slowdown
		// from running under the cap shows up through the throttle
		// ratio against the raw (unthrottled) demand below.
		if j.BWCap > 0 && d > j.BWCap.Float64() {
			d = j.BWCap.Float64()
		}
		sc.demands[i] = d
	}
	sc.grants = growFloats(sc.grants, len(res))
	if cap(sc.order) < len(res) {
		//lint:allocfree capacity-miss growth path only; steady state reuses the backing array
		sc.order = make([]int, len(res))
	}
	hw.WaterFillInto(sc.grants, spec.StreamBandwidth(units.CoresOf(totalCores)).Float64(), sc.demands, sc.order[:len(res)])

	// I/O bandwidth to the shared file system is a third contended
	// resource, water-filled against the node's injection limit.
	sc.ioDemands = growFloats(sc.ioDemands, len(res))
	for i, r := range res {
		sc.ioDemands[i] = float64(r.cores) * r.job.Prog.IOBWPerCore
	}
	sc.ioGrants = growFloats(sc.ioGrants, len(res))
	hw.WaterFillInto(sc.ioGrants, spec.IOBandwidth.Float64(), sc.ioDemands, sc.order[:len(res)])

	for i, r := range res {
		j := r.job
		spread := j.SpanNodes() > 1
		throttle := 1.0
		if sc.rawDemands[i] > 0 && sc.grants[i] < sc.rawDemands[i] {
			throttle = sc.grants[i] / sc.rawDemands[i]
		}
		if sc.ioDemands[i] > 0 && sc.ioGrants[i] < sc.ioDemands[i] {
			if t := sc.ioGrants[i] / sc.ioDemands[i]; t < throttle {
				throttle = t
			}
		}
		ipc := j.Prog.IPC(sc.effWays[i], totalCores, spec.Cores.Int())
		j.shares[r.slot] = nodeShare{
			rate:    ipc * spec.FreqGHz.Float64() * throttle,
			grant:   units.GBpsOf(sc.grants[i]),
			demand:  units.GBpsOf(sc.rawDemands[i]),
			ioGrant: units.GBpsOf(sc.ioGrants[i]),
			missPct: j.Prog.MissPct(sc.effWays[i], spread),
			effWays: sc.effWays[i],
			cores:   r.cores,
		}
	}
}

// refreshJob recomputes a job's completion rate from its per-node shares
// and reschedules its finish event.
//
//sns:hotpath
func (e *Engine) refreshJob(j *Job) {
	if j.State != Running {
		return
	}
	// Gating rate: the slowest node limits lock-step parallel progress.
	minRate := -1.0
	missSum, grantSum, ioSum, wayseffSum := 0.0, 0.0, 0.0, 0.0
	for i := range j.Nodes {
		sh := &j.shares[i]
		if minRate < 0 || sh.rate < minRate {
			minRate = sh.rate
		}
		missSum += sh.missPct
		grantSum += sh.grant.Float64()
		ioSum += sh.ioGrant.Float64()
		wayseffSum += sh.effWays
	}
	nn := float64(len(j.Nodes))
	j.perCoreRate = minRate

	work := j.Prog.WorkPerProcess(j.SpanNodes())
	comm := j.Prog.CommSeconds(j.SpanNodes())
	j.commInflation = e.commInflation(j)
	comm *= j.commInflation

	var computeSec float64
	if minRate > 0 {
		computeSec = work / minRate
	}
	total := computeSec + comm
	if minRate <= 0 || total <= 0 {
		j.rate = 0
		j.computeFrac = 0
	} else {
		j.rate = 1 / total
		j.computeFrac = computeSec / total
	}
	j.metrics = pmu.Metrics{
		IPC:           units.IPCOf(j.perCoreRate / e.spec.Node.FreqGHz.Float64() * j.computeFrac),
		BWPerNode:     units.GBpsOf(grantSum / nn * j.computeFrac),
		BWTotal:       units.GBpsOf(grantSum * j.computeFrac),
		IOPerNode:     units.GBpsOf(ioSum / nn * j.computeFrac),
		MissPct:       missSum / nn,
		ComputeFrac:   j.computeFrac,
		EffectiveWays: wayseffSum / nn,
	}
	// Reschedule completion.
	e.q.Cancel(j.finishEv)
	j.finishEv = nil
	if j.rate > 0 {
		at := e.q.Now() + j.remaining/j.rate
		j.finishEv = e.q.At(at, j.finishFn)
	}
}

// commInflation estimates NIC contention: on each of the job's nodes, sum
// the uncontended NIC-utilization fractions of all spread jobs; the worst
// node stretches this job's communication.
//
//sns:hotpath
func (e *Engine) commInflation(j *Job) float64 {
	if j.SpanNodes() <= 1 {
		return 1
	}
	worst := 1.0
	for _, n := range j.Nodes {
		utils := e.scratch.utils[:0]
		for _, r := range e.nodes[n] {
			other := r.job
			if other.SpanNodes() <= 1 {
				continue
			}
			w := other.Prog.WorkPerProcess(other.SpanNodes())
			c := other.Prog.CommSeconds(other.SpanNodes())
			rr := other.perCoreRate
			if rr <= 0 {
				// Not yet rated (fresh launch): use solo rate.
				rr = other.Prog.IPCMax * e.spec.Node.FreqGHz.Float64()
			}
			//lint:allocfree utils scratch reuses e.scratch.utils backing array after warm-up
			utils = append(utils, c/(w/rr+c))
		}
		e.scratch.utils = utils
		if f := interconnect.Inflation(utils); f > worst {
			worst = f
		}
	}
	return worst
}

// Cancel aborts a running job immediately: its resources are released,
// co-runners re-rate, and OnFinish listeners fire with the job in
// Cancelled state. Used for failure injection and operator kills.
func (e *Engine) Cancel(id int) error {
	j, ok := e.jobs[id]
	if !ok || j.State != Running {
		return fmt.Errorf("exec: job %d not running", id)
	}
	e.advance(j)
	j.State = Cancelled
	j.Finish = e.q.Now()
	j.rate = 0
	e.q.Cancel(j.finishEv)
	j.finishEv = nil
	for _, n := range j.Nodes {
		e.removeResident(n, j.ID)
		e.markDirty(n)
	}
	e.recompute()
	for _, fn := range e.onFinish {
		fn(j)
	}
	return nil
}

// finish completes a job: releases its nodes and notifies listeners.
func (e *Engine) finish(j *Job) {
	if j.State != Running {
		return
	}
	e.advance(j)
	j.State = Done
	j.Finish = e.q.Now()
	j.rate = 0
	e.q.Cancel(j.finishEv)
	j.finishEv = nil
	for _, n := range j.Nodes {
		e.removeResident(n, j.ID)
		e.markDirty(n)
	}
	e.recompute()
	for _, fn := range e.onFinish {
		fn(j)
	}
}
