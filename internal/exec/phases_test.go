package exec

import (
	"math"
	"testing"

	"spreadnshare/internal/hw"

	"spreadnshare/internal/units"
)

func TestPhasesOffByDefault(t *testing.T) {
	cat := catalog(t)
	spec := hw.DefaultClusterSpec()
	mg := prog(t, cat, "MG")
	// RunSolo uses a default engine: phases off, calibrated time exact.
	j, err := RunSolo(spec, mg, 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(j.RunTime()-mg.TargetSoloSec) > 1e-6 {
		t.Errorf("unphased run %.3f s, want calibrated %.3f s", j.RunTime(), mg.TargetSoloSec)
	}
}

func TestPhasedSoloRunDiffers(t *testing.T) {
	cat := catalog(t)
	spec := hw.DefaultClusterSpec()
	mg := prog(t, cat, "MG")

	e, err := New(spec)
	if err != nil {
		t.Fatal(err)
	}
	e.PhasesOn = true
	j := &Job{ID: 1, Prog: mg, Procs: 16, Nodes: []int{0}, CoresByNode: []int{16}}
	if err := e.Launch(j); err != nil {
		t.Fatal(err)
	}
	e.Run(0)
	// MG is bandwidth-saturated on one node, so phase swings change the
	// throttle and the run time departs from the calibrated average —
	// slightly faster, in fact: the instruction rate under a fixed
	// bandwidth grant is convex in the demand multiplier (low-demand
	// phases gain more than high-demand phases lose).
	if math.Abs(j.RunTime()-mg.TargetSoloSec) < 1e-6 {
		t.Errorf("phased saturated run %.3f s identical to calibrated; phases inactive", j.RunTime())
	}
	if j.RunTime() < mg.TargetSoloSec*0.7 || j.RunTime() > mg.TargetSoloSec*1.3 {
		t.Errorf("phased run %.2f s implausible vs calibrated %.2f s", j.RunTime(), mg.TargetSoloSec)
	}
}

func TestPhasesNoEffectWhenUncontended(t *testing.T) {
	cat := catalog(t)
	spec := hw.DefaultClusterSpec()
	// CG on one node is far below the bandwidth roofline, so phase
	// swings in demand never throttle: run time matches calibration.
	cg := prog(t, cat, "CG")
	e, err := New(spec)
	if err != nil {
		t.Fatal(err)
	}
	e.PhasesOn = true
	j := &Job{ID: 1, Prog: cg, Procs: 16, Nodes: []int{0}, CoresByNode: []int{16}}
	if err := e.Launch(j); err != nil {
		t.Fatal(err)
	}
	e.Run(0)
	if math.Abs(j.RunTime()-cg.TargetSoloSec) > 1e-6*cg.TargetSoloSec {
		t.Errorf("uncontended phased CG %.3f s, want %.3f s", j.RunTime(), cg.TargetSoloSec)
	}
}

func TestPhaseBurstHurtsCorunnerWithoutMBA(t *testing.T) {
	cat := catalog(t)
	spec := hw.DefaultClusterSpec()
	bw := prog(t, cat, "BW")
	mg := prog(t, cat, "MG")

	run := func(phases bool, cap units.GBps) float64 {
		e, err := New(spec)
		if err != nil {
			t.Fatal(err)
		}
		e.PhasesOn = phases
		hog := &Job{ID: 1, Prog: bw, Procs: 14, Nodes: []int{0}, CoresByNode: []int{14}, BWCap: cap}
		victim := &Job{ID: 2, Prog: mg, Procs: 14, Nodes: []int{0}, CoresByNode: []int{14}}
		if err := e.Launch(hog); err != nil {
			t.Fatal(err)
		}
		if err := e.Launch(victim); err != nil {
			t.Fatal(err)
		}
		e.Run(0)
		return victim.RunTime()
	}
	steady := run(false, 0)
	bursty := run(true, 0)
	// Both high-demand jobs split the saturated node either way; bursts
	// shift the water-fill split back and forth but stay in the same
	// regime.
	if math.Abs(bursty-steady)/steady > 0.15 {
		t.Errorf("bursty hog moved victim time by >15%%: %.2f vs %.2f", bursty, steady)
	}
	// An MBA cap on the bursty hog must help the victim.
	capped := run(true, 40)
	if capped >= bursty {
		t.Errorf("victim with capped bursty hog %.2f s not faster than uncapped %.2f s",
			capped, bursty)
	}
}
